// purification shows how BBPSSW recurrence purification recovers the
// fidelity lost on the space-ground architecture's lossy paths: it takes
// real end-to-end transmissivities from a routed scenario, distributes
// pairs, and pumps them round by round, reporting fidelity against raw-pair
// cost.
package main

import (
	"fmt"
	"log"
	"time"

	"qntn/internal/qntn"
	"qntn/internal/quantum"
)

func main() {
	params := qntn.DefaultParams()
	sc, err := qntn.NewSpaceGround(108, params)
	if err != nil {
		log.Fatal(err)
	}

	// Sample a few served requests to get realistic path transmissivities.
	res, err := sc.RunServe(qntn.ServeConfig{RequestsPerStep: 30, Steps: 12, Horizon: 24 * time.Hour, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	var worst, best float64 = 2, 0
	for _, o := range res.Metrics.Outcomes {
		if !o.Served {
			continue
		}
		if o.EndToEndEta < worst {
			worst = o.EndToEndEta
		}
		if o.EndToEndEta > best {
			best = o.EndToEndEta
		}
	}
	fmt.Printf("space-ground path transmissivities observed: worst %.3f, mean %.3f, best %.3f\n\n",
		worst, res.MeanPathEta, best)

	for _, eta := range []float64{worst, res.MeanPathEta, best} {
		pair, err := quantum.DistributeBellPair(eta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("path η=%.3f: raw fidelity %.4f\n", eta, quantum.BellFidelity(pair))
		ladder, err := quantum.PurifyLadder(pair, 3, quantum.BBPSSW)
		if err != nil {
			log.Fatal(err)
		}
		cost := 1.0
		for r, step := range ladder {
			cost = (cost + 1) / step.SuccessProbability
			fmt.Printf("  round %d: fidelity %.4f (p=%.3f, ≈%.1f raw pairs per output)\n",
				r+1, step.FidelityAfter, step.SuccessProbability, cost)
		}
		fmt.Println()
	}
	fmt.Println("one round of pumping lifts the mean space-ground path above the paper's")
	fmt.Println("0.96 average fidelity — at roughly 2.6 raw pairs per delivered pair.")
}
