// movement_sheets demonstrates the paper's STK workflow end to end with
// this repo's substitutes: propagate the Table II constellation, export
// 30-second movement sheets to CSV (what the paper pulls out of STK),
// reload them, and verify that a scenario replaying the sheets produces
// exactly the same link decisions as direct propagation.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"qntn/internal/orbit"
	"qntn/internal/qntn"
	"qntn/internal/trace"
)

func main() {
	const nSats = 12
	const span = 2 * time.Hour

	// 1. Propagate and record movement sheets (STK: "run the simulation,
	//    record positions at 30 s intervals").
	elems, err := orbit.PaperConstellation(nSats)
	if err != nil {
		log.Fatal(err)
	}
	sheets, err := orbit.GenerateSheets(elems, span, orbit.DefaultSampleInterval)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("propagated %d satellites, %d samples each\n", len(sheets), len(sheets[0].Samples))

	// 2. Export and re-import the CSV interchange format.
	var buf bytes.Buffer
	if err := trace.Write(&buf, sheets); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("movement-sheet CSV: %d bytes\n", buf.Len())
	reloaded, err := trace.Read(&buf)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Build one scenario from the reloaded sheets and one from direct
	//    propagation; their link decisions must match at every step.
	params := qntn.DefaultParams()
	replay, err := qntn.NewSpaceGroundFromSheets(reloaded, params)
	if err != nil {
		log.Fatal(err)
	}
	direct, err := qntn.NewSpaceGround(nSats, params)
	if err != nil {
		log.Fatal(err)
	}

	mismatches, links := 0, 0
	ttu := direct.GroundIDs[qntn.NetworkTTU][0]
	for at := time.Duration(0); at < span; at += params.StepInterval {
		for _, sat := range direct.RelayIDs {
			e1, ok1 := direct.EvaluateLink(ttu, sat, at)
			e2, ok2 := replay.EvaluateLink(ttu, sat, at)
			if ok1 != ok2 || (ok1 && e1 != e2) {
				mismatches++
			}
			if ok1 {
				links++
			}
		}
	}
	fmt.Printf("checked %d step×satellite combinations: %d usable links, %d mismatches\n",
		nSats*int(span/params.StepInterval), links, mismatches)
	if mismatches == 0 {
		fmt.Println("sheet replay is bit-identical to direct propagation — the CSV")
		fmt.Println("interchange loses nothing, so recorded ephemerides (or real STK")
		fmt.Println("exports in the same format) can drive the simulator directly.")
	}
}
