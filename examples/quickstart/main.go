// Quickstart: assemble the QNTN air-ground architecture, route one
// entanglement distribution request from Tennessee Tech to Oak Ridge with
// the paper's Bellman-Ford algorithm, and measure the end-to-end
// entanglement fidelity both in closed form and by explicit density-matrix
// evolution.
package main

import (
	"fmt"
	"log"

	"qntn/internal/qntn"
	"qntn/internal/quantum"
)

func main() {
	params := qntn.DefaultParams()
	scenario, err := qntn.NewAirGround(params)
	if err != nil {
		log.Fatal(err)
	}

	// Snapshot the topology at t=0 (the HAP hovers, so the air-ground
	// topology is static) and converge the routing tables.
	tables, graph, err := scenario.Routes(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %d nodes, %d usable links\n", graph.NumNodes(), graph.NumEdges())

	src := scenario.GroundIDs[qntn.NetworkTTU][0]  // TTU-01
	dst := scenario.GroundIDs[qntn.NetworkORNL][0] // ORNL-01
	path, err := tables.Path(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("route %s → %s: %v\n", src, dst, path)

	etas, err := graph.EdgeEtas(path)
	if err != nil {
		log.Fatal(err)
	}
	for i, eta := range etas {
		fmt.Printf("  hop %s → %s: transmissivity %.4f\n", path[i], path[i+1], eta)
	}

	// Closed-form fidelity under the platform-source model.
	fast := qntn.PathFidelity(etas, params.FidelityModel)
	// Oracle: evolve |Φ+><Φ+| through the amplitude-damping Kraus
	// operators of the paper's Eq. (3)-(4) and evaluate Eq. (5).
	exact, err := qntn.PathFidelityExact(etas, params.FidelityModel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("end-to-end fidelity: %.4f (closed form) / %.4f (density matrix)\n", fast, exact)

	// The same number from first principles for a single equivalent link.
	etaTot := 1.0
	for _, e := range etas {
		etaTot *= e
	}
	rho, err := quantum.DistributeBellPair(etaTot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("endpoint-source alternative: %.4f\n", quantum.BellFidelity(rho))
}
