// fidelity_sweep regenerates the paper's Fig. 5 from first principles:
// for transmissivities 0..1 it prepares a Bell pair, damps one arm through
// the amplitude-damping channel of Eq. (3)-(4), and evaluates the Uhlmann
// fidelity of Eq. (5) — printing the curve and the threshold the paper
// reads off it.
package main

import (
	"fmt"
	"log"
	"os"

	"qntn/internal/experiments"
)

func main() {
	points, err := experiments.Fig5(0.01)
	if err != nil {
		log.Fatal(err)
	}

	xs := make([]float64, len(points))
	ys := make([]float64, len(points))
	for i, p := range points {
		xs[i], ys[i] = p.Eta, p.FidelityRoot
	}
	if err := experiments.RenderSeries(os.Stdout,
		"transmissivity vs entanglement fidelity (Fig. 5)",
		"transmissivity η", "fidelity F", xs, ys); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nselected points (root and literal-Eq.5 squared conventions):")
	for _, eta := range []int{0, 25, 50, 64, 70, 90, 100} {
		p := points[eta]
		fmt.Printf("  η=%.2f  F=%.4f  F²=%.4f\n", p.Eta, p.FidelityRoot, p.FidelitySquared)
	}

	threshold, err := experiments.Fig5Threshold(points, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfidelity exceeds 0.90 from η=%.2f; the paper adopts the conservative threshold 0.70\n", threshold)
}
