// hybrid explores the paper's future-work direction: a combined
// architecture in which the HAP provides the always-on baseline while the
// satellite layer adds alternative high-fidelity routes. It compares the
// three architectures on the same workload.
package main

import (
	"fmt"
	"log"
	"time"

	"qntn/internal/qntn"
)

func main() {
	params := qntn.DefaultParams()
	cfg := qntn.ServeConfig{RequestsPerStep: 50, Steps: 20, Horizon: 24 * time.Hour, Seed: 11}

	type build func() (*qntn.Scenario, error)
	builds := []struct {
		name string
		fn   build
	}{
		{"space-ground (108 sats)", func() (*qntn.Scenario, error) { return qntn.NewSpaceGround(108, params) }},
		{"air-ground (1 HAP)", func() (*qntn.Scenario, error) { return qntn.NewAirGround(params) }},
		{"hybrid (HAP + 108 sats)", func() (*qntn.Scenario, error) { return qntn.NewHybrid(108, params) }},
	}

	fmt.Printf("%-26s %10s %10s %10s\n", "architecture", "served", "fidelity", "min fid")
	for _, b := range builds {
		sc, err := b.fn()
		if err != nil {
			log.Fatal(err)
		}
		res, err := sc.RunServe(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s %9.2f%% %10.4f %10.4f\n",
			b.name, res.ServedPercent, res.MeanFidelity, res.FidelitySummary.Min)
	}

	fmt.Println("\nthe hybrid keeps the HAP's 100% availability and lets routing opportunistically")
	fmt.Println("use near-zenith satellites when they beat the HAP's ~22° elevation links.")
}
