// hap_vs_leo reproduces the paper's bottom line (Table III) at example
// scale: the space-ground architecture with 108 satellites versus the
// air-ground HAP, compared on coverage, served requests, and entanglement
// fidelity over a compressed horizon so the example finishes in seconds.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"qntn/internal/experiments"
	"qntn/internal/qntn"
)

func main() {
	params := qntn.DefaultParams()
	cfg := qntn.ServeConfig{
		RequestsPerStep: 50,
		Steps:           20,
		Horizon:         24 * time.Hour,
		Seed:            1,
	}
	// 3-hour coverage window keeps the example fast; cmd/qntnsim table3
	// runs the full day.
	rows, err := experiments.Table3(params, cfg, 3*time.Hour)
	if err != nil {
		log.Fatal(err)
	}

	cells := make([][]string, len(rows))
	for i, r := range rows {
		cells[i] = []string{
			r.Architecture,
			experiments.FormatPercent(r.CoveragePercent),
			experiments.FormatPercent(r.ServedPercent),
			fmt.Sprintf("%.4f", r.MeanFidelity),
		}
	}
	if err := experiments.RenderTable(os.Stdout, "QNTN architecture comparison (example scale)",
		[]string{"architecture", "coverage", "served", "fidelity"}, cells); err != nil {
		log.Fatal(err)
	}

	space, air := rows[0], rows[1]
	fmt.Printf("\nair-ground improves coverage by %.2f points, request serving by %.2f points,\n",
		air.CoveragePercent-space.CoveragePercent, air.ServedPercent-space.ServedPercent)
	fmt.Printf("and fidelity by %.3f — at the cost of HAP endurance and weather sensitivity\n",
		air.MeanFidelity-space.MeanFidelity)
	fmt.Println("(run `qntnsim ablations` for the turbulence sensitivity study).")
}
