// satellite_constellation builds the paper's 108-satellite Table II
// Walker-Delta constellation, propagates it across several hours, and
// reports when the three Tennessee networks are bridged — including the
// individual connected intervals and which satellite provides the best link
// during a pass.
package main

import (
	"fmt"
	"log"
	"time"

	"qntn/internal/geo"
	"qntn/internal/orbit"
	"qntn/internal/qntn"
)

func main() {
	params := qntn.DefaultParams()
	scenario, err := qntn.NewSpaceGround(orbit.MaxPaperSatellites, params)
	if err != nil {
		log.Fatal(err)
	}

	const window = 6 * time.Hour
	cov, err := scenario.Coverage(window)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("constellation: %d satellites (Table II), 500 km / 53°\n", len(scenario.RelayIDs))
	fmt.Printf("window: %v — bridged %.2f%% of the time across %d passes\n\n",
		window, cov.Percent(), len(cov.Intervals))

	for i, iv := range cov.Intervals {
		if i >= 8 {
			fmt.Printf("... %d more intervals\n", len(cov.Intervals)-i)
			break
		}
		mid := iv.Start + iv.Duration()/2
		sat, eta := bestSatellite(scenario, mid)
		fmt.Printf("pass %2d: %8v — %8v (%6v)  best relay %s (η=%.3f)\n",
			i+1, iv.Start, iv.End, iv.Duration(), sat, eta)
	}

	// Ground track of the best satellite right now.
	if len(cov.Intervals) > 0 {
		mid := cov.Intervals[0].Start + cov.Intervals[0].Duration()/2
		id, _ := bestSatellite(scenario, mid)
		node := scenario.Net.Node(id)
		sub := geo.ToLLA(node.PositionAt(mid))
		fmt.Printf("\nat %v, %s is over (%.2f°, %.2f°) at %.0f km altitude\n",
			mid, id, sub.LatDeg, sub.LonDeg, sub.AltM/1000)
	}
}

// bestSatellite returns the relay with the highest usable transmissivity to
// TTU at time t.
func bestSatellite(sc *qntn.Scenario, t time.Duration) (string, float64) {
	ttu := sc.GroundIDs[qntn.NetworkTTU][0]
	bestID, bestEta := "none", 0.0
	for _, sat := range sc.RelayIDs {
		if eta, ok := sc.EvaluateLink(ttu, sat, t); ok && eta > bestEta {
			bestID, bestEta = sat, eta
		}
	}
	return bestID, bestEta
}
