// statewide scales the paper's question up: with Nashville, Memphis, and
// Knoxville added to the three QNTN cities, how many HAPs does the
// air-ground architecture need — and where do they go — versus what the
// satellite constellation provides for free? It exercises the custom
// scenario API, the greedy placement optimizer, and per-pair coverage.
package main

import (
	"fmt"
	"log"
	"time"

	"qntn/internal/qntn"
)

func main() {
	params := qntn.DefaultParams()
	lans := qntn.ExtendedNetworks()
	fmt.Printf("region: %d local networks\n", len(lans))
	for _, lan := range lans {
		c := lan.Centroid()
		fmt.Printf("  %-5s %d nodes around (%.3f°, %.3f°)\n", lan.Name, len(lan.Nodes), c.LatDeg, c.LonDeg)
	}

	placement, err := qntn.PlaceHAPs(params, lans, 6, 0.15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngreedy placement: %d platforms reach %d/%d LAN pairs\n",
		len(placement.Positions), placement.ConnectedPairs, placement.TotalPairs)
	for i, pos := range placement.Positions {
		fmt.Printf("  HAP-%d hovers at (%.3f°, %.3f°)\n", i+1, pos.LatDeg, pos.LonDeg)
	}
	fmt.Println("  (Memphis stays unreachable: no 30 km platform spans the ≈290 km")
	fmt.Println("   gap from Nashville and there is no intermediate LAN to chain through)")

	fleet, err := qntn.NewMultiHAP(params, lans, placement.Positions)
	if err != nil {
		log.Fatal(err)
	}
	detail, err := fleet.DetailedCoverage(time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-pair availability over one hour (HAP fleet):")
	for _, pc := range detail.Pairs {
		fmt.Printf("  %-4s ↔ %-4s %7.2f%%\n", pc.NetworkA, pc.NetworkB, pc.Result.Percent())
	}

	space, err := qntn.NewExtendedSpaceGround(108, params)
	if err != nil {
		log.Fatal(err)
	}
	spaceCov, err := space.Coverage(3 * time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n108-satellite constellation, all 15 pairs at once: %.2f%% of a 3 h window\n", spaceCov.Percent())
	fmt.Println("statewide, the trade inverts: satellites reach everywhere part-time;")
	fmt.Println("HAPs serve their neighborhoods full-time but never reach Memphis.")
}
