package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"qntn/internal/orbit"
)

func TestRoundTrip(t *testing.T) {
	sats, err := orbit.PaperConstellation(6)
	if err != nil {
		t.Fatal(err)
	}
	sheets, err := orbit.GenerateSheets(sats, 5*time.Minute, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, sheets); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sheets) {
		t.Fatalf("sheet count %d, want %d", len(got), len(sheets))
	}
	for i, s := range sheets {
		g := got[i]
		if g.Name != s.Name {
			t.Fatalf("sheet %d name %q, want %q", i, g.Name, s.Name)
		}
		if g.Interval != s.Interval {
			t.Fatalf("sheet %d interval %v, want %v", i, g.Interval, s.Interval)
		}
		if len(g.Samples) != len(s.Samples) {
			t.Fatalf("sheet %d sample count %d, want %d", i, len(g.Samples), len(s.Samples))
		}
		for j := range s.Samples {
			if g.Samples[j].T != s.Samples[j].T {
				t.Fatalf("sheet %d sample %d time %v, want %v", i, j, g.Samples[j].T, s.Samples[j].T)
			}
			if d := g.Samples[j].ECEF.Distance(s.Samples[j].ECEF); math.Abs(d) > 1e-6 {
				t.Fatalf("sheet %d sample %d position drifted %g m", i, j, d)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad header": "a,b,c,d,e\n",
		"bad time":   "name,t_seconds,x_m,y_m,z_m\nS,xx,1,2,3\n",
		"bad coord":  "name,t_seconds,x_m,y_m,z_m\nS,0,oops,2,3\n",
		"ragged":     "name,t_seconds,x_m,y_m,z_m\nS,0,1,2\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestReadRejectsNonFinite: strconv.ParseFloat accepts "NaN" and "Inf"
// spellings, which would poison interval inference and every downstream
// geometry computation — Read must reject them with the offending row
// number.
func TestReadRejectsNonFinite(t *testing.T) {
	cases := map[string]struct {
		in      string
		wantRow string
	}{
		"nan time":  {"name,t_seconds,x_m,y_m,z_m\nS,NaN,1,2,3\n", "row 2"},
		"+inf time": {"name,t_seconds,x_m,y_m,z_m\nS,+Inf,1,2,3\n", "row 2"},
		"-inf time": {"name,t_seconds,x_m,y_m,z_m\nS,-Inf,1,2,3\n", "row 2"},
		"nan coord": {"name,t_seconds,x_m,y_m,z_m\nS,0,nan,2,3\n", "row 2"},
		"inf coord": {"name,t_seconds,x_m,y_m,z_m\nS,0,1,Infinity,3\n", "row 2"},
		"later row": {"name,t_seconds,x_m,y_m,z_m\nS,0,1,2,3\nS,30,1,2,NaN\n", "row 3"},
		"-inf z":    {"name,t_seconds,x_m,y_m,z_m\nS,0,1,2,-inf\n", "row 2"},
	}
	for name, tc := range cases {
		_, err := Read(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: non-finite value accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), "non-finite") {
			t.Errorf("%s: error %q does not name the non-finite value", name, err)
		}
		if !strings.Contains(err.Error(), tc.wantRow) {
			t.Errorf("%s: error %q does not carry %q", name, err, tc.wantRow)
		}
	}
}

func TestReadSortsOutOfOrderSamples(t *testing.T) {
	in := "name,t_seconds,x_m,y_m,z_m\n" +
		"S,60,1,0,0\n" +
		"S,0,2,0,0\n" +
		"S,30,3,0,0\n"
	sheets, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(sheets) != 1 {
		t.Fatalf("%d sheets", len(sheets))
	}
	s := sheets[0]
	if s.Interval != 30*time.Second {
		t.Fatalf("interval %v", s.Interval)
	}
	if s.Samples[0].ECEF.X != 2 || s.Samples[1].ECEF.X != 3 || s.Samples[2].ECEF.X != 1 {
		t.Fatalf("samples not sorted: %+v", s.Samples)
	}
}

func TestReadSingleSample(t *testing.T) {
	in := "name,t_seconds,x_m,y_m,z_m\nS,0,1,2,3\n"
	sheets, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if sheets[0].Interval != time.Second {
		t.Fatalf("default interval %v", sheets[0].Interval)
	}
}

func TestReadMultipleSheetsPreservesOrder(t *testing.T) {
	in := "name,t_seconds,x_m,y_m,z_m\n" +
		"B,0,1,0,0\nA,0,2,0,0\nB,30,3,0,0\nA,30,4,0,0\n"
	sheets, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(sheets) != 2 || sheets[0].Name != "B" || sheets[1].Name != "A" {
		t.Fatalf("sheet order wrong: %v, %v", sheets[0].Name, sheets[1].Name)
	}
}
