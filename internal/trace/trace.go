// Package trace serializes satellite movement sheets to and from CSV. It is
// the file-interchange substitute for the STK export/import step in the
// paper's workflow: cmd/constellation writes these files and the simulator
// can load them instead of propagating orbits in-process.
//
// Format (one file may hold many satellites):
//
//	name,t_seconds,x_m,y_m,z_m
//	SAT-001,0,1234.5,...,...
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"time"

	"qntn/internal/geo"
	"qntn/internal/orbit"
)

// header is the CSV header row.
var header = []string{"name", "t_seconds", "x_m", "y_m", "z_m"}

// Write encodes the sheets as CSV to w.
func Write(w io.Writer, sheets []*orbit.MovementSheet) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, s := range sheets {
		for _, sm := range s.Samples {
			rec := []string{
				s.Name,
				strconv.FormatFloat(sm.T.Seconds(), 'f', -1, 64),
				strconv.FormatFloat(sm.ECEF.X, 'g', 17, 64),
				strconv.FormatFloat(sm.ECEF.Y, 'g', 17, 64),
				strconv.FormatFloat(sm.ECEF.Z, 'g', 17, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("trace: write sample: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Read decodes movement sheets from CSV. Samples for each satellite are
// sorted by time; the sample interval is inferred from the first two
// samples of each sheet (sheets with a single sample get a 1s interval).
func Read(r io.Reader) ([]*orbit.MovementSheet, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(header)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty file")
	}
	if !equalRow(rows[0], header) {
		return nil, fmt.Errorf("trace: unexpected header %v", rows[0])
	}
	byName := make(map[string][]orbit.Sample)
	var order []string
	for i, row := range rows[1:] {
		secs, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: bad time %q: %w", i+2, row[1], err)
		}
		// ParseFloat accepts "NaN" and "Inf" spellings, which would poison
		// interval inference and every downstream geometry computation —
		// reject them at the boundary.
		if math.IsNaN(secs) || math.IsInf(secs, 0) {
			return nil, fmt.Errorf("trace: row %d: non-finite time %q", i+2, row[1])
		}
		var v geo.Vec3
		for j, dst := range []*float64{&v.X, &v.Y, &v.Z} {
			f, err := strconv.ParseFloat(row[2+j], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d: bad coordinate %q: %w", i+2, row[2+j], err)
			}
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return nil, fmt.Errorf("trace: row %d: non-finite coordinate %q", i+2, row[2+j])
			}
			*dst = f
		}
		name := row[0]
		if _, seen := byName[name]; !seen {
			order = append(order, name)
		}
		byName[name] = append(byName[name], orbit.Sample{
			T:    time.Duration(secs * float64(time.Second)),
			ECEF: v,
		})
	}
	sheets := make([]*orbit.MovementSheet, 0, len(order))
	for _, name := range order {
		samples := byName[name]
		sort.Slice(samples, func(i, j int) bool { return samples[i].T < samples[j].T })
		interval := time.Second
		if len(samples) >= 2 {
			interval = samples[1].T - samples[0].T
		}
		if interval <= 0 {
			return nil, fmt.Errorf("trace: sheet %q has non-increasing timestamps", name)
		}
		sheets = append(sheets, &orbit.MovementSheet{Name: name, Interval: interval, Samples: samples})
	}
	return sheets, nil
}

func equalRow(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
