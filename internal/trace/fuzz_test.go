package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"qntn/internal/orbit"
)

// FuzzRead exercises the CSV decoder with arbitrary inputs: it must never
// panic, and any successfully parsed sheet set must re-encode and re-parse
// to the same shape.
func FuzzRead(f *testing.F) {
	f.Add("name,t_seconds,x_m,y_m,z_m\nS,0,1,2,3\n")
	f.Add("name,t_seconds,x_m,y_m,z_m\nS,60,1,0,0\nS,0,2,0,0\n")
	f.Add("")
	f.Add("garbage")
	f.Add("name,t_seconds,x_m,y_m,z_m\nS,xx,1,2,3\n")
	f.Add("name,t_seconds,x_m,y_m,z_m\nS,NaN,1,2,3\n")
	f.Add("name,t_seconds,x_m,y_m,z_m\nS,+Inf,1,2,3\n")
	f.Add("name,t_seconds,x_m,y_m,z_m\nS,0,NaN,2,3\n")
	f.Add("name,t_seconds,x_m,y_m,z_m\nS,0,1,2,-Infinity\n")

	elems, err := orbit.PaperConstellation(6)
	if err != nil {
		f.Fatal(err)
	}
	sheets, err := orbit.GenerateSheets(elems[:1], 2*time.Minute, 30*time.Second)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, sheets); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())

	f.Fuzz(func(t *testing.T, in string) {
		parsed, err := Read(strings.NewReader(in))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var out bytes.Buffer
		if err := Write(&out, parsed); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("re-parse of re-encoded input failed: %v", err)
		}
		if len(again) != len(parsed) {
			t.Fatalf("sheet count changed across round trip: %d vs %d", len(again), len(parsed))
		}
		for i := range parsed {
			if len(again[i].Samples) != len(parsed[i].Samples) {
				t.Fatalf("sheet %d sample count changed", i)
			}
		}
	})
}
