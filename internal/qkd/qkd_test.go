package qkd

import (
	"math"
	"testing"
	"testing/quick"

	"qntn/internal/quantum"
)

func TestBinaryEntropy(t *testing.T) {
	cases := map[float64]float64{
		0:    0,
		1:    0,
		0.5:  1,
		0.11: 0.49992, // standard QKD threshold neighborhood
	}
	for p, want := range cases {
		if got := BinaryEntropy(p); math.Abs(got-want) > 1e-4 {
			t.Errorf("H2(%g) = %g, want %g", p, got, want)
		}
	}
	// Symmetry H2(p) = H2(1-p).
	for _, p := range []float64{0.1, 0.25, 0.4} {
		if math.Abs(BinaryEntropy(p)-BinaryEntropy(1-p)) > 1e-12 {
			t.Errorf("H2 not symmetric at %g", p)
		}
	}
}

func TestDetectorValidate(t *testing.T) {
	if err := DefaultDetector().Validate(); err != nil {
		t.Fatalf("default detector invalid: %v", err)
	}
	bad := []DetectorParams{
		{},
		{GateRateHz: 1e6},
		{GateRateHz: 1e6, MeanPhotonNumber: 0.5, DarkCountProbability: 2},
		{GateRateHz: 1e6, MeanPhotonNumber: 0.5, MisalignmentError: 0.9, ErrorCorrectionEfficiency: 1.1},
		{GateRateHz: 1e6, MeanPhotonNumber: 0.5, ErrorCorrectionEfficiency: 0.5},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad detector %d accepted", i)
		}
	}
}

func TestBB84HighTransmissivity(t *testing.T) {
	res, err := BB84(0.9, DefaultDetector())
	if err != nil {
		t.Fatal(err)
	}
	if res.SecretKeyRateHz <= 0 {
		t.Fatal("high-transmissivity link should produce key")
	}
	// QBER should be close to the misalignment floor.
	if res.QBER < 0.009 || res.QBER > 0.02 {
		t.Fatalf("QBER %g, want near the 1%% misalignment floor", res.QBER)
	}
	if res.SiftedRateHz > DefaultDetector().GateRateHz/2 {
		t.Fatal("sifted rate cannot exceed half the gate rate")
	}
}

func TestBB84MonotoneInEta(t *testing.T) {
	d := DefaultDetector()
	prev := -1.0
	for eta := 0.05; eta <= 1.0001; eta += 0.05 {
		res, err := BB84(math.Min(eta, 1), d)
		if err != nil {
			t.Fatal(err)
		}
		if res.SecretKeyRateHz < prev {
			t.Fatalf("key rate not monotone at eta=%g", eta)
		}
		prev = res.SecretKeyRateHz
	}
}

func TestBB84DarkCountFloorKillsKey(t *testing.T) {
	// When dark counts dominate the signal the QBER approaches 50% and
	// the key rate collapses to zero.
	d := DefaultDetector()
	d.DarkCountProbability = 1e-3
	res, err := BB84(1e-6, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.SecretKeyRateHz != 0 {
		t.Fatalf("dark-count-dominated link produced key: %+v", res)
	}
	if res.QBER < 0.4 {
		t.Fatalf("QBER %g, want near 0.5", res.QBER)
	}
}

func TestBB84RejectsBadEta(t *testing.T) {
	for _, eta := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := BB84(eta, DefaultDetector()); err == nil {
			t.Errorf("eta=%v accepted", eta)
		}
	}
}

func TestBB84ZeroChannel(t *testing.T) {
	d := DefaultDetector()
	d.DarkCountProbability = 0
	res, err := BB84(0, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Gain != 0 || res.SecretKeyRateHz != 0 {
		t.Fatalf("dead channel produced clicks: %+v", res)
	}
}

func TestQBERFromIdealBell(t *testing.T) {
	ez, ex, err := QBERFromState(quantum.PhiPlus().Density())
	if err != nil {
		t.Fatal(err)
	}
	if ez > 1e-12 || ex > 1e-12 {
		t.Fatalf("ideal Bell pair has QBER z=%g x=%g", ez, ex)
	}
}

func TestQBERFromWernerClosedForm(t *testing.T) {
	// Werner state p: QBER_z = QBER_x = (1-p)/2.
	for _, p := range []float64{0.2, 0.5, 0.8, 1} {
		ez, ex, err := QBERFromState(quantum.WernerState(p))
		if err != nil {
			t.Fatal(err)
		}
		want := (1 - p) / 2
		if math.Abs(ez-want) > 1e-10 || math.Abs(ex-want) > 1e-10 {
			t.Errorf("Werner(%g): QBER z=%g x=%g, want %g", p, ez, ex, want)
		}
	}
}

func TestQBERFromDampedPair(t *testing.T) {
	// One-arm amplitude damping with transmissivity eta: Z errors only
	// from the decayed |11> component: ez = (1-eta)/2; X errors from the
	// reduced coherence: ex = (1 - sqrt(eta))/2... verify numerically
	// against the matrix elements rather than trusting the closed form.
	for _, eta := range []float64{0.5, 0.7, 0.9} {
		rho, err := quantum.DistributeBellPair(eta)
		if err != nil {
			t.Fatal(err)
		}
		ez, ex, err := QBERFromState(rho)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ez-(1-eta)/2) > 1e-10 {
			t.Errorf("eta=%g: ez=%g, want %g", eta, ez, (1-eta)/2)
		}
		if ex <= 0 || ex >= 0.5 {
			t.Errorf("eta=%g: ex=%g out of range", eta, ex)
		}
		if ex <= ez/2 {
			t.Errorf("eta=%g: coherence error %g implausibly small vs %g", eta, ex, ez)
		}
	}
}

func TestQBERRejectsWrongDim(t *testing.T) {
	if _, _, err := QBERFromState(quantum.Identity(2)); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestBBM92IdealPairs(t *testing.T) {
	d := DefaultDetector()
	d.MisalignmentError = 0
	res, err := BBM92(quantum.PhiPlus().Density(), 1e6, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.SecretFraction-1) > 1e-12 {
		t.Fatalf("ideal pairs secret fraction %g", res.SecretFraction)
	}
	if math.Abs(res.SecretKeyRateHz-0.5e6) > 1e-6 {
		t.Fatalf("ideal key rate %g, want 0.5e6", res.SecretKeyRateHz)
	}
}

func TestBBM92WornOutPairsNoKey(t *testing.T) {
	res, err := BBM92(quantum.WernerState(0.4), 1e6, DefaultDetector())
	if err != nil {
		t.Fatal(err)
	}
	if res.SecretKeyRateHz != 0 {
		t.Fatalf("30%%-QBER pairs produced key: %+v", res)
	}
}

func TestRelayBBM92(t *testing.T) {
	d := DefaultDetector()
	res, err := RelayBBM92(0.956, 0.956, d)
	if err != nil {
		t.Fatal(err)
	}
	// Coincidence post-selection removes loss: QBER is set by the 1%
	// misalignment only (two arms ≈ 2%).
	if res.QBERz < 0.015 || res.QBERz > 0.025 {
		t.Fatalf("relay QBER %g, want ≈0.02", res.QBERz)
	}
	if res.SecretKeyRateHz <= 0 {
		t.Fatal("HAP-grade links should produce key")
	}
	// Pair rate scales with the product of transmissivities.
	res2, err := RelayBBM92(0.5, 0.956, d)
	if err != nil {
		t.Fatal(err)
	}
	if res2.PairRateHz >= res.PairRateHz {
		t.Fatal("lower transmissivity should lower the pair rate")
	}
	if _, err := RelayBBM92(-0.1, 0.9, d); err == nil {
		t.Fatal("bad eta accepted")
	}
}

func TestBBM92RejectsNegativeRate(t *testing.T) {
	if _, err := BBM92(quantum.PhiPlus().Density(), -1, DefaultDetector()); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestBB84SecretFractionInUnitRange(t *testing.T) {
	f := func(seed int64) bool {
		eta := math.Abs(math.Sin(float64(seed)))
		res, err := BB84(eta, DefaultDetector())
		if err != nil {
			return false
		}
		return res.SecretFraction >= 0 && res.SecretFraction <= 1 &&
			res.QBER >= 0 && res.QBER <= 0.5+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
