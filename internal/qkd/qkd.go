// Package qkd estimates quantum key distribution rates over the QNTN's
// optical channels: weak-coherent-pulse BB84 with the infinite-decoy GLLP
// secret fraction, and entanglement-based BBM92 fed by the same two-qubit
// states the entanglement-distribution experiments produce.
//
// The paper's related work frames regional quantum networking almost
// entirely through QKD services; this package makes the QNTN architectures
// directly comparable on that axis.
package qkd

import (
	"fmt"
	"math"

	"qntn/internal/quantum"
)

// DetectorParams lumps the transmitter/receiver hardware of a QKD link.
type DetectorParams struct {
	// GateRateHz is the pulse (BB84) or pair-generation (BBM92) rate.
	GateRateHz float64
	// MeanPhotonNumber is the WCP intensity μ for BB84.
	MeanPhotonNumber float64
	// DarkCountProbability is the per-gate dark/background click
	// probability Y0.
	DarkCountProbability float64
	// MisalignmentError is the intrinsic optical error probability.
	MisalignmentError float64
	// ErrorCorrectionEfficiency is the f ≥ 1 inefficiency factor of the
	// error-correcting code.
	ErrorCorrectionEfficiency float64
}

// DefaultDetector returns parameters typical of satellite-QKD literature:
// 100 MHz source, μ = 0.5, 10⁻⁶ dark probability, 1% misalignment,
// f = 1.16 (CASCADE).
func DefaultDetector() DetectorParams {
	return DetectorParams{
		GateRateHz:                100e6,
		MeanPhotonNumber:          0.5,
		DarkCountProbability:      1e-6,
		MisalignmentError:         0.01,
		ErrorCorrectionEfficiency: 1.16,
	}
}

// Validate reports whether the parameters are physical.
func (d DetectorParams) Validate() error {
	switch {
	case d.GateRateHz <= 0:
		return fmt.Errorf("qkd: non-positive gate rate %g", d.GateRateHz)
	case d.MeanPhotonNumber <= 0:
		return fmt.Errorf("qkd: non-positive mean photon number %g", d.MeanPhotonNumber)
	case d.DarkCountProbability < 0 || d.DarkCountProbability >= 1:
		return fmt.Errorf("qkd: dark count probability %g outside [0,1)", d.DarkCountProbability)
	case d.MisalignmentError < 0 || d.MisalignmentError > 0.5:
		return fmt.Errorf("qkd: misalignment error %g outside [0,0.5]", d.MisalignmentError)
	case d.ErrorCorrectionEfficiency < 1:
		return fmt.Errorf("qkd: error correction efficiency %g below 1", d.ErrorCorrectionEfficiency)
	}
	return nil
}

// BinaryEntropy returns H2(p) in bits, 0 at p ∈ {0, 1}.
func BinaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// BB84Result itemizes a decoy-state BB84 key-rate estimate.
type BB84Result struct {
	// Gain is the overall click probability per gate Q_μ.
	Gain float64
	// QBER is the overall quantum bit error rate E_μ.
	QBER float64
	// SingleGain and SingleQBER are the single-photon contributions
	// (infinite-decoy estimates).
	SingleGain float64
	SingleQBER float64
	// SiftedRateHz is the post-basis-sifting bit rate.
	SiftedRateHz float64
	// SecretFraction is the GLLP fraction r (clamped at 0).
	SecretFraction float64
	// SecretKeyRateHz is the asymptotic secret key rate.
	SecretKeyRateHz float64
}

// BB84 evaluates the asymptotic decoy-state BB84 key rate over a channel
// with total transmissivity eta (including receiver efficiency), using the
// standard GLLP formula with infinite-decoy single-photon estimates:
//
//	Q_μ = Y0 + 1 − e^(−ημ)
//	E_μ = (½·Y0 + e_mis·(1 − e^(−ημ))) / Q_μ
//	Y1 = Y0 + η,  Q1 = Y1·μ·e^(−μ),  e1 = (½·Y0 + e_mis·η) / Y1
//	r  = (Q1/Q_μ)(1 − H2(e1)) − f·H2(E_μ)
func BB84(eta float64, d DetectorParams) (BB84Result, error) {
	if err := d.Validate(); err != nil {
		return BB84Result{}, err
	}
	if eta < 0 || eta > 1 || math.IsNaN(eta) {
		return BB84Result{}, fmt.Errorf("qkd: transmissivity %g outside [0,1]", eta)
	}
	y0 := d.DarkCountProbability
	mu := d.MeanPhotonNumber
	sig := 1 - math.Exp(-eta*mu)

	var res BB84Result
	res.Gain = y0 + sig
	if res.Gain <= 0 {
		return res, nil
	}
	res.QBER = (0.5*y0 + d.MisalignmentError*sig) / res.Gain

	y1 := y0 + eta
	res.SingleGain = y1 * mu * math.Exp(-mu)
	if y1 > 0 {
		res.SingleQBER = (0.5*y0 + d.MisalignmentError*eta) / y1
	}

	res.SiftedRateHz = 0.5 * d.GateRateHz * res.Gain
	r := (res.SingleGain/res.Gain)*(1-BinaryEntropy(res.SingleQBER)) -
		d.ErrorCorrectionEfficiency*BinaryEntropy(res.QBER)
	if r < 0 {
		r = 0
	}
	res.SecretFraction = r
	res.SecretKeyRateHz = res.SiftedRateHz * r
	return res, nil
}

// QBERFromState returns the Z- and X-basis error rates of a shared
// two-qubit state: the probability the two parties' measurement outcomes
// disagree in each basis.
func QBERFromState(rho *quantum.Matrix) (ez, ex float64, err error) {
	if rho.N != 4 {
		return 0, 0, fmt.Errorf("qkd: QBER needs a 2-qubit state, got dim %d", rho.N)
	}
	// Z basis: populations of |01> and |10>.
	ez = real(rho.At(1, 1)) + real(rho.At(2, 2))
	// X basis: rotate both qubits by Hadamard, then the same populations.
	h := quantum.Lift(quantum.Hadamard(), 0, 2).Mul(quantum.Lift(quantum.Hadamard(), 1, 2))
	rx := quantum.ApplyUnitary(rho, h)
	ex = real(rx.At(1, 1)) + real(rx.At(2, 2))
	return clamp01(ez), clamp01(ex), nil
}

// BBM92Result itemizes an entanglement-based key-rate estimate.
type BBM92Result struct {
	PairRateHz      float64
	QBERz           float64
	QBERx           float64
	SiftedRateHz    float64
	SecretFraction  float64
	SecretKeyRateHz float64
}

// BBM92 evaluates the asymptotic entanglement-based (BBM92) key rate for a
// shared state rho delivered at pairRateHz, with the standard
// r = 1 − f·H2(ez) − H2(ex) secret fraction.
func BBM92(rho *quantum.Matrix, pairRateHz float64, d DetectorParams) (BBM92Result, error) {
	if err := d.Validate(); err != nil {
		return BBM92Result{}, err
	}
	if pairRateHz < 0 {
		return BBM92Result{}, fmt.Errorf("qkd: negative pair rate %g", pairRateHz)
	}
	ez, ex, err := QBERFromState(rho)
	if err != nil {
		return BBM92Result{}, err
	}
	res := BBM92Result{PairRateHz: pairRateHz, QBERz: ez, QBERx: ex}
	res.SiftedRateHz = 0.5 * pairRateHz
	r := 1 - d.ErrorCorrectionEfficiency*BinaryEntropy(ez) - BinaryEntropy(ex)
	if r < 0 {
		r = 0
	}
	res.SecretFraction = r
	res.SecretKeyRateHz = res.SiftedRateHz * r
	return res, nil
}

// RelayBBM92 evaluates BBM92 for a platform entanglement source beaming
// one photon down each arm with transmissivities eta1 and eta2: the pair
// delivery rate is GateRate·η1·η2 and the shared state is the doubly
// amplitude-damped Bell pair renormalized on coincidence.
//
// Post-selecting on both photons arriving removes the loss-induced vacuum
// component, so the coincidence state is the Bell pair itself up to the
// misalignment error, which is applied as independent bit-flip noise.
func RelayBBM92(eta1, eta2 float64, d DetectorParams) (BBM92Result, error) {
	if err := d.Validate(); err != nil {
		return BBM92Result{}, err
	}
	for _, e := range []float64{eta1, eta2} {
		if e < 0 || e > 1 || math.IsNaN(e) {
			return BBM92Result{}, fmt.Errorf("qkd: transmissivity %g outside [0,1]", e)
		}
	}
	rho := quantum.PhiPlus().Density()
	// Misalignment as independent depolarizing-like bit flips on each arm
	// with probability e_mis.
	rho = flipNoise(rho, d.MisalignmentError)
	pairRate := d.GateRateHz * eta1 * eta2
	return BBM92(rho, pairRate, d)
}

// flipNoise applies independent X flips with probability p to both qubits.
func flipNoise(rho *quantum.Matrix, p float64) *quantum.Matrix {
	if p <= 0 {
		return rho
	}
	x := quantum.PauliX()
	for q := 0; q < 2; q++ {
		xq := quantum.Lift(x, q, 2)
		flipped := quantum.ApplyUnitary(rho, xq)
		rho = rho.Scale(complex(1-p, 0)).Add(flipped.Scale(complex(p, 0)))
	}
	return rho
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
