package telemetry

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

// FuzzEventRoundTrip mirrors FuzzParamsRoundTrip: any event the writer
// accepts must read back equal, and any event Validate rejects must never
// reach the wire.
func FuzzEventRoundTrip(f *testing.F) {
	f.Add("serve/space-ground/108/seed=1", 0, 30.0, int64(5886), int64(12), int64(3000), int64(2000), int64(3), int64(1), true, true, int64(8), int64(2), 0.9125)
	f.Add("coverage/air-ground/2", 239, 7170.0, int64(45), int64(9), int64(0), int64(0), int64(0), int64(0), false, false, int64(0), int64(0), 0.0)
	f.Add("", -1, math.NaN(), int64(-1), int64(0), int64(0), int64(0), int64(0), int64(0), false, false, int64(0), int64(0), math.Inf(1))
	f.Fuzz(func(t *testing.T, label string, step int, ts float64,
		pairs, links, horizon, rang, relax, down int64,
		weather, covered bool, served, dropped int64, fid float64) {
		e := Event{
			Label: label, Step: step, TSeconds: ts,
			PairsEvaluated: pairs, LinksAdmitted: links,
			HorizonRejects: horizon, RangeRejects: rang,
			RelaxRounds: relax, NodesDown: down,
			Weather: weather, Covered: covered,
			Served: served, Dropped: dropped, MeanFidelity: fid,
		}
		s := NewEventSink()
		s.Record(e)
		var b bytes.Buffer
		err := s.WriteNDJSON(&b)
		if e.Validate() != nil {
			if err == nil {
				t.Fatalf("invalid event written: %+v", e)
			}
			return
		}
		if err != nil {
			t.Fatalf("valid event rejected by writer: %v", err)
		}
		got, err := ReadNDJSON(&b)
		if err != nil {
			t.Fatalf("written stream rejected by reader: %v\n%s", err, b.String())
		}
		if len(got) != 1 || !reflect.DeepEqual(got[0], e) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, e)
		}
	})
}

// FuzzReadNDJSON throws arbitrary bytes at the reader: it must never panic,
// and everything it accepts must survive a write/read cycle unchanged
// (parse-validate-reserialize idempotence).
func FuzzReadNDJSON(f *testing.F) {
	f.Add([]byte(`{"label":"x","step":0,"t_s":0,"pairs_evaluated":1,"links_admitted":0,"horizon_rejects":0,"range_rejects":0}`))
	f.Add([]byte("{\"label\":\"a\",\"step\":0,\"t_s\":0,\"pairs_evaluated\":0,\"links_admitted\":0,\"horizon_rejects\":0,\"range_rejects\":0}\n\n{\"label\":\"b\",\"step\":1,\"t_s\":30,\"pairs_evaluated\":0,\"links_admitted\":0,\"horizon_rejects\":0,\"range_rejects\":0}"))
	f.Add([]byte(`{"label":"x","t_s":1e999}`))
	f.Add([]byte("not json at all"))
	f.Add([]byte("{}{}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadNDJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, e := range events {
			if e.Validate() != nil {
				t.Fatalf("reader accepted invalid event %d: %+v", i, e)
			}
		}
		s := NewEventSink()
		for _, e := range events {
			s.Record(e)
		}
		var b bytes.Buffer
		if err := s.WriteNDJSON(&b); err != nil {
			t.Fatalf("accepted events rejected on rewrite: %v", err)
		}
		again, err := ReadNDJSON(&b)
		if err != nil {
			t.Fatalf("rewritten stream rejected: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("event count changed across rewrite: %d vs %d", len(again), len(events))
		}
	})
}

// FuzzManifestRoundTrip checks the manifest codec the same way: arbitrary
// JSON either fails to parse or round-trips byte-identically, and NaN/Inf
// never survive.
func FuzzManifestRoundTrip(f *testing.F) {
	f.Add([]byte(`{"command":"fig7","seed":1,"go_version":"go1.24.0","gomaxprocs":1,"num_cpu":1,"wall_ns":5}`))
	f.Add([]byte(`{"command":"degrade","params_hash":"097853f3676ca929","seed":-3,"go_version":"x","gomaxprocs":8,"num_cpu":8,"wall_ns":0,"cpu_seconds":1.25,"phases":[{"name":"degrade","wall_ns":7}],"summary":{"a":1}}`))
	f.Add([]byte(`{"command":"x","cpu_seconds":-1}`))
	f.Add([]byte(`{"command":"x","summary":{"k":1e999}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadManifest(bytes.NewReader(data))
		if err != nil {
			return
		}
		if m.Validate() != nil {
			t.Fatalf("reader returned invalid manifest: %+v", m)
		}
		var b1 bytes.Buffer
		if err := WriteManifest(&b1, m); err != nil {
			t.Fatalf("accepted manifest rejected on write: %v", err)
		}
		if strings.Contains(b1.String(), "NaN") || strings.Contains(b1.String(), "Inf") {
			t.Fatalf("non-finite value escaped to the wire:\n%s", b1.String())
		}
		first := append([]byte(nil), b1.Bytes()...) // ReadManifest drains the buffer
		m2, err := ReadManifest(&b1)
		if err != nil {
			t.Fatalf("rewritten manifest rejected: %v", err)
		}
		var b2 bytes.Buffer
		if err := WriteManifest(&b2, m2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, b2.Bytes()) {
			t.Fatalf("manifest not byte-stable:\n%s\nvs\n%s", first, b2.String())
		}
	})
}
