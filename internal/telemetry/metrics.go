// Package telemetry is a zero-overhead-when-disabled instrumentation layer
// for the simulator: atomic counters, gauges and fixed-bucket histograms
// behind a Registry, a Span timer for run phases, an NDJSON event sink for
// per-step records, and a run manifest codec.
//
// Every handle type is safe to use through a nil pointer: Add/Inc/Observe on
// a nil Counter/Gauge/Histogram, Record on a nil EventSink and lookups on a
// nil Registry are all no-ops that cost a single pointer comparison and never
// allocate. Hot paths therefore hold plain pointers and call unconditionally;
// disabling telemetry is simply not installing a Registry.
//
// All mutation is by atomic add, which is commutative, so counter totals are
// invariant under worker count and scheduling. Wall-clock measurements are
// deliberately confined to Span/Manifest and never enter the Registry or the
// event stream, keeping those byte-identical across runs of the same
// configuration.
package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready to
// use; a nil *Counter discards all updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//qntn:hotpath
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
//
//qntn:hotpath
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count; 0 for a nil counter.
//
//qntn:hotpath
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a signed instantaneous value. The zero value is ready to use; a
// nil *Gauge discards all updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
//
//qntn:hotpath
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds n (may be negative).
//
//qntn:hotpath
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value; 0 for a nil gauge.
//
//qntn:hotpath
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations x with x <= bounds[i] (and greater than every lower bound);
// one implicit overflow bucket catches the rest. Bounds are fixed at
// creation. A nil *Histogram discards all observations; NaN observations are
// dropped (they belong to no bucket and would poison the sum).
type Histogram struct {
	bounds []float64       // ascending upper bounds; implicit +Inf bucket after
	counts []atomic.Uint64 // len(bounds)+1
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records x into the matching bucket.
//
//qntn:hotpath
func (h *Histogram) Observe(x float64) {
	if h == nil || math.IsNaN(x) {
		return
	}
	i := 0
	for i < len(h.bounds) && x > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations; 0 for a nil histogram.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations; 0 for a nil histogram.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	b := make([]float64, len(h.bounds))
	copy(b, h.bounds)
	return b
}

// BucketCounts returns a copy of the per-bucket counts; the final element is
// the overflow bucket.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

func (h *Histogram) merge(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	// Bucket-wise merge requires identical bounds; shards created via
	// Registry.Histogram with the same name always satisfy this. On a
	// mismatch only count and sum are preserved (into the overflow bucket).
	if len(h.counts) == len(src.counts) {
		for i := range src.counts {
			h.counts[i].Add(src.counts[i].Load())
		}
	} else {
		h.counts[len(h.counts)-1].Add(src.count.Load())
	}
	h.count.Add(src.count.Load())
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + src.Sum())
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}
