package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"unicode/utf8"
)

// Event is one per-step telemetry record. The schema is fixed (a struct, not
// a map) so records cost one append on the hot path and encode
// deterministically. Label identifies the run segment that produced the step
// (e.g. "serve/space-ground/108/seed=1"); (Label, Step) is unique within a
// segment, and segments that repeat a label (e.g. degradation levels) are
// recorded sequentially, so a stable sort on (Label, Step) makes the flushed
// stream invariant under worker count.
type Event struct {
	Label          string  `json:"label"`
	Step           int     `json:"step"`
	TSeconds       float64 `json:"t_s"`
	PairsEvaluated int64   `json:"pairs_evaluated"`
	LinksAdmitted  int64   `json:"links_admitted"`
	HorizonRejects int64   `json:"horizon_rejects"`
	RangeRejects   int64   `json:"range_rejects"`
	IndexCulled    int64   `json:"index_culled,omitempty"`
	RelaxRounds    int64   `json:"relax_rounds,omitempty"`
	NodesDown      int64   `json:"nodes_down,omitempty"`
	Weather        bool    `json:"weather,omitempty"`
	Covered        bool    `json:"covered,omitempty"`
	Served         int64   `json:"served,omitempty"`
	Dropped        int64   `json:"dropped,omitempty"`
	// Arrivals counts requests arriving in the window that ends at this
	// step; QueueDepth is the number still waiting after the step's drain.
	// Both are produced by the request-level traffic engine.
	Arrivals     int64   `json:"arrivals,omitempty"`
	QueueDepth   int64   `json:"queue_depth,omitempty"`
	MeanFidelity float64 `json:"mean_fidelity,omitempty"`
}

// Validate rejects events that cannot round-trip safely: non-finite floats
// (the same rule trace.Read applies to CSV traces), negative counts, and
// empty labels.
func (e Event) Validate() error {
	if e.Label == "" {
		return fmt.Errorf("telemetry: event has empty label")
	}
	if !utf8.ValidString(e.Label) {
		// encoding/json would silently rewrite invalid bytes to U+FFFD,
		// breaking write/read round trips.
		return fmt.Errorf("telemetry: event label %q is not valid UTF-8", e.Label)
	}
	if e.Step < 0 {
		return fmt.Errorf("telemetry: event %q: negative step %d", e.Label, e.Step)
	}
	if math.IsNaN(e.TSeconds) || math.IsInf(e.TSeconds, 0) || e.TSeconds < 0 {
		return fmt.Errorf("telemetry: event %q step %d: non-finite or negative t_s %v", e.Label, e.Step, e.TSeconds)
	}
	if math.IsNaN(e.MeanFidelity) || math.IsInf(e.MeanFidelity, 0) {
		return fmt.Errorf("telemetry: event %q step %d: non-finite mean_fidelity %v", e.Label, e.Step, e.MeanFidelity)
	}
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"pairs_evaluated", e.PairsEvaluated},
		{"links_admitted", e.LinksAdmitted},
		{"horizon_rejects", e.HorizonRejects},
		{"range_rejects", e.RangeRejects},
		{"index_culled", e.IndexCulled},
		{"relax_rounds", e.RelaxRounds},
		{"nodes_down", e.NodesDown},
		{"served", e.Served},
		{"dropped", e.Dropped},
		{"arrivals", e.Arrivals},
		{"queue_depth", e.QueueDepth},
	} {
		if c.v < 0 {
			return fmt.Errorf("telemetry: event %q step %d: negative %s %d", e.Label, e.Step, c.name, c.v)
		}
	}
	return nil
}

// EventSink collects events for one run. Record is safe for concurrent use
// and a no-op on a nil sink; the stream is only ordered at flush time.
type EventSink struct {
	mu     sync.Mutex
	events []Event
}

// NewEventSink returns an empty sink.
func NewEventSink() *EventSink {
	return &EventSink{}
}

// Record appends an event. No-op on a nil sink.
func (s *EventSink) Record(e Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Len reports the number of recorded events; 0 for a nil sink.
func (s *EventSink) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// Merge appends src's events. Shards are merged in a fixed index order;
// combined with the stable flush sort this keeps the stream worker-count
// invariant.
func (s *EventSink) Merge(src *EventSink) {
	if s == nil || src == nil {
		return
	}
	src.mu.Lock()
	events := src.events
	src.mu.Unlock()
	s.mu.Lock()
	s.events = append(s.events, events...)
	s.mu.Unlock()
}

// Events returns a stably sorted copy of the recorded events.
func (s *EventSink) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	s.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].Step < out[j].Step
	})
	return out
}

// WriteEvent validates e and writes its single-line JSON encoding to w —
// the per-record core WriteNDJSON loops over, exported so streaming
// producers (the serve daemon) emit records under the same validation the
// batch writer applies.
func WriteEvent(w io.Writer, e Event) error {
	if err := e.Validate(); err != nil {
		return err
	}
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteNDJSON flushes the sorted event stream as newline-delimited JSON,
// validating every record first.
func (s *EventSink) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, e := range s.Events() {
		if err := WriteEvent(bw, e); err != nil {
			return fmt.Errorf("row %d: %w", i+1, err)
		}
	}
	return bw.Flush()
}

// ReadNDJSON parses an NDJSON event stream, rejecting unknown fields and
// any record that fails Validate, with row-numbered errors the way
// trace.Read reports malformed CSV rows.
func ReadNDJSON(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	row := 0
	for sc.Scan() {
		row++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("telemetry: row %d: %w", row, err)
		}
		// Trailing garbage after the JSON object on the same line.
		if dec.More() {
			return nil, fmt.Errorf("telemetry: row %d: trailing data after event", row)
		}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("row %d: %w", row, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading events: %w", err)
	}
	return out, nil
}
