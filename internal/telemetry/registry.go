package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry hands out named metric handles. Create-or-get is mutex-protected
// and intended for setup paths; the returned handles are lock-free. All
// lookups on a nil *Registry return nil handles, which discard updates, so a
// single nil check at wiring time disables an entire instrumentation tree.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use. Bounds on later calls are
// ignored — the first registration wins. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Merge folds src's values into r: counters and gauges add, histograms merge
// bucket-wise (creating missing ones with src's bounds). Merging shards in a
// fixed order after all writers have finished yields identical totals
// regardless of how work was distributed, because every operation commutes.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	src.mu.Lock()
	defer src.mu.Unlock()
	for name, c := range src.counters {
		r.Counter(name).Add(c.Value())
	}
	for name, g := range src.gauges {
		r.Gauge(name).Add(g.Value())
	}
	for name, h := range src.hists {
		r.Histogram(name, h.bounds).merge(h)
	}
}

// Metric is one entry of a Registry snapshot.
type Metric struct {
	Name string
	Kind string // "counter", "gauge" or "histogram"
	// Value holds the counter or gauge reading (as float64 for uniformity).
	Value float64
	// Histogram fields; nil/zero for scalar kinds.
	Bounds  []float64
	Buckets []uint64
	Count   uint64
	Sum     float64
}

// Snapshot returns all metrics sorted by (name, kind). Sorting makes every
// textual dump deterministic.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: float64(g.Value())})
	}
	for name, h := range r.hists {
		out = append(out, Metric{
			Name: name, Kind: "histogram",
			Bounds: h.Bounds(), Buckets: h.BucketCounts(),
			Count: h.Count(), Sum: h.Sum(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// formatValue renders a metric value without an exponent (counters and
// gauges are integers at heart; shortest-form 'f' keeps fractional sums
// exact too).
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// WriteText writes a human-readable metric dump, one metric per line,
// deterministically ordered.
func (r *Registry) WriteText(w io.Writer) error {
	for _, m := range r.Snapshot() {
		var err error
		switch m.Kind {
		case "histogram":
			var b strings.Builder
			for i, bound := range m.Bounds {
				fmt.Fprintf(&b, " le(%g)=%d", bound, m.Buckets[i])
			}
			fmt.Fprintf(&b, " le(+Inf)=%d", m.Buckets[len(m.Buckets)-1])
			_, err = fmt.Fprintf(w, "histogram %s count=%d sum=%s%s\n", m.Name, m.Count, formatValue(m.Sum), b.String())
		default:
			_, err = fmt.Fprintf(w, "%s %s %s\n", m.Kind, m.Name, formatValue(m.Value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus writes the metrics in Prometheus text exposition format
// under a qntn_ prefix, deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.Snapshot() {
		name := "qntn_" + m.Name
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, m.Kind); err != nil {
			return err
		}
		var err error
		switch m.Kind {
		case "histogram":
			cum := uint64(0)
			for i, bound := range m.Bounds {
				cum += m.Buckets[i]
				if _, err = fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, bound, cum); err != nil {
					return err
				}
			}
			cum += m.Buckets[len(m.Buckets)-1]
			if _, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_sum %s\n", name, formatValue(m.Sum)); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count %d\n", name, m.Count)
		default:
			_, err = fmt.Fprintf(w, "%s %s\n", name, formatValue(m.Value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}
