package telemetry

// Collector bundles the two run-scoped sinks — the metric registry and the
// event stream — into the unit that gets wired through a simulation. A nil
// *Collector (the default) disables instrumentation entirely; a Collector
// with a nil Events field collects metrics but no per-step events.
type Collector struct {
	Registry *Registry
	Events   *EventSink
}

// NewCollector returns a collector with a fresh registry and event sink.
func NewCollector() *Collector {
	return &Collector{Registry: NewRegistry(), Events: NewEventSink()}
}

// Reg returns the registry, nil on a nil collector.
func (c *Collector) Reg() *Registry {
	if c == nil {
		return nil
	}
	return c.Registry
}

// Sink returns the event sink, nil on a nil collector.
func (c *Collector) Sink() *EventSink {
	if c == nil {
		return nil
	}
	return c.Events
}

// Shards returns n fresh collectors mirroring c's shape (events enabled only
// if c has them). Parallel tasks each write to their own shard — sharded by
// task index, not by worker, so the partition is independent of scheduling —
// and MergeShards folds them back in index order.
func (c *Collector) Shards(n int) []*Collector {
	if c == nil {
		return nil
	}
	shards := make([]*Collector, n)
	for i := range shards {
		s := &Collector{Registry: NewRegistry()}
		if c.Events != nil {
			s.Events = NewEventSink()
		}
		shards[i] = s
	}
	return shards
}

// MergeShards folds the shards into c in index order. Counter totals are
// order-invariant by commutativity; event order is normalized by the sink's
// stable flush sort, so the merged output is worker-count invariant.
func (c *Collector) MergeShards(shards []*Collector) {
	if c == nil {
		return
	}
	for _, s := range shards {
		if s == nil {
			continue
		}
		c.Registry.Merge(s.Registry)
		if c.Events != nil {
			c.Events.Merge(s.Events)
		}
	}
}
