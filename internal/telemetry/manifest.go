package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime/metrics"
	"sort"
)

// Manifest records everything needed to identify and reproduce a run:
// the command, a stable hash of its parameters, the seed, the build, the
// machine shape, and coarse timings. Wall/CPU times live here — and only
// here — so metric and event output stays bit-identical across repeat runs.
type Manifest struct {
	Command     string             `json:"command"`
	ParamsHash  string             `json:"params_hash,omitempty"`
	Seed        int64              `json:"seed"`
	GitDescribe string             `json:"git_describe,omitempty"`
	GoVersion   string             `json:"go_version"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	NumCPU      int                `json:"num_cpu"`
	WallNs      int64              `json:"wall_ns"`
	CPUSeconds  float64            `json:"cpu_seconds,omitempty"`
	Phases      []Phase            `json:"phases,omitempty"`
	Summary     map[string]float64 `json:"summary,omitempty"`
}

// Validate rejects manifests with non-finite or negative numeric fields,
// mirroring the event codec.
func (m Manifest) Validate() error {
	if m.Command == "" {
		return fmt.Errorf("telemetry: manifest has empty command")
	}
	if m.GOMAXPROCS < 0 || m.NumCPU < 0 {
		return fmt.Errorf("telemetry: manifest: negative processor count")
	}
	if m.WallNs < 0 {
		return fmt.Errorf("telemetry: manifest: negative wall_ns %d", m.WallNs)
	}
	if math.IsNaN(m.CPUSeconds) || math.IsInf(m.CPUSeconds, 0) || m.CPUSeconds < 0 {
		return fmt.Errorf("telemetry: manifest: non-finite or negative cpu_seconds %v", m.CPUSeconds)
	}
	for _, p := range m.Phases {
		if p.Name == "" {
			return fmt.Errorf("telemetry: manifest: phase with empty name")
		}
		if p.WallNs < 0 {
			return fmt.Errorf("telemetry: manifest: phase %q: negative wall_ns %d", p.Name, p.WallNs)
		}
	}
	keys := make([]string, 0, len(m.Summary))
	for k := range m.Summary {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if v := m.Summary[k]; math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("telemetry: manifest: non-finite summary value %q=%v", k, v)
		}
	}
	return nil
}

// WriteManifest writes m as indented JSON after validating it. Map keys are
// sorted by encoding/json, so output is deterministic for a given manifest.
func WriteManifest(w io.Writer, m Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: encoding manifest: %w", err)
	}
	if _, err := w.Write(append(b, '\n')); err != nil {
		return err
	}
	return nil
}

// ReadManifest parses and validates a manifest, rejecting unknown fields
// and NaN/Inf values the way the event codec does.
func ReadManifest(r io.Reader) (Manifest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("telemetry: decoding manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, err
	}
	return m, nil
}

// ProcessCPUSeconds returns the process's total CPU time so far as reported
// by runtime/metrics, or 0 when the metric is unavailable. Best effort:
// meant for the manifest's coarse cpu_seconds field, not for benchmarking.
func ProcessCPUSeconds() float64 {
	const name = "/cpu/classes/total:cpu-seconds"
	samples := []metrics.Sample{{Name: name}}
	metrics.Read(samples)
	if samples[0].Value.Kind() != metrics.KindFloat64 {
		return 0
	}
	v := samples[0].Value.Float64()
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0
	}
	return v
}
