package telemetry

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilHandlesAreSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Bounds() != nil || h.BucketCounts() != nil {
		t.Fatal("nil histogram has state")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry handed out a handle")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry has a snapshot")
	}
	r.Merge(NewRegistry()) // must not panic
	var s *EventSink
	s.Record(Event{Label: "x"})
	if s.Len() != 0 || s.Events() != nil {
		t.Fatal("nil sink has events")
	}
	s.Merge(NewEventSink()) // must not panic
	var sp *Span
	if ph := sp.End(); ph != (Phase{}) {
		t.Fatalf("nil span ended to %+v", ph)
	}
	var col *Collector
	if col.Reg() != nil || col.Sink() != nil || col.Shards(3) != nil {
		t.Fatal("nil collector has parts")
	}
	col.MergeShards(nil) // must not panic
}

func TestNilHandlesDoNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector bookkeeping allocates; AllocsPerRun is meaningless")
	}
	var c *Counter
	var g *Gauge
	var h *Histogram
	var s *EventSink
	ev := Event{Label: "x"}
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(5)
		g.Set(1)
		h.Observe(0.5)
		s.Record(ev)
	}); n != 0 {
		t.Fatalf("nil handles allocated %v times per run", n)
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	if r.Counter("hits") != c {
		t.Fatal("create-or-get returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
	if r.Gauge("depth") != g {
		t.Fatal("create-or-get returned a different gauge")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, x := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(x)
	}
	h.Observe(math.NaN()) // dropped
	want := []uint64{2, 2, 2, 2}
	if got := h.BucketCounts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	if h.Sum() != 117 {
		t.Fatalf("sum = %v, want 117", h.Sum())
	}
	if got := h.Bounds(); !reflect.DeepEqual(got, []float64{1, 2, 4}) {
		t.Fatalf("bounds = %v", got)
	}
}

func TestHistogramFirstBoundsWin(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("lat", []float64{1, 2})
	h2 := r.Histogram("lat", []float64{10, 20, 30})
	if h1 != h2 {
		t.Fatal("create-or-get returned a different histogram")
	}
	if got := h2.Bounds(); !reflect.DeepEqual(got, []float64{1, 2}) {
		t.Fatalf("bounds = %v, want first registration's", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram([]float64{0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-2000) > 1e-9 {
		t.Fatalf("sum = %v, want 2000", h.Sum())
	}
}

func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("c").Add(10)
	b.Counter("c").Add(5)
	b.Counter("only_b").Inc()
	a.Gauge("g").Set(2)
	b.Gauge("g").Set(3)
	a.Histogram("h", []float64{1}).Observe(0.5)
	b.Histogram("h", []float64{1}).Observe(2)
	a.Merge(b)
	if v := a.Counter("c").Value(); v != 15 {
		t.Fatalf("merged counter = %d, want 15", v)
	}
	if v := a.Counter("only_b").Value(); v != 1 {
		t.Fatalf("merged new counter = %d, want 1", v)
	}
	if v := a.Gauge("g").Value(); v != 5 {
		t.Fatalf("merged gauge = %d, want 5 (gauges add on merge)", v)
	}
	h := a.Histogram("h", nil)
	if h.Count() != 2 || h.Sum() != 2.5 {
		t.Fatalf("merged histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	if got := h.BucketCounts(); !reflect.DeepEqual(got, []uint64{1, 1}) {
		t.Fatalf("merged buckets = %v", got)
	}
}

func TestHistogramMergeBoundsMismatch(t *testing.T) {
	dst := newHistogram([]float64{1, 2})
	src := newHistogram([]float64{5})
	src.Observe(0.5)
	src.Observe(10)
	dst.merge(src)
	if dst.Count() != 2 || dst.Sum() != 10.5 {
		t.Fatalf("count=%d sum=%v", dst.Count(), dst.Sum())
	}
	// Mismatched shards fold entirely into the overflow bucket.
	if got := dst.BucketCounts(); !reflect.DeepEqual(got, []uint64{0, 0, 2}) {
		t.Fatalf("buckets = %v", got)
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz").Inc()
	r.Gauge("aa").Set(1)
	r.Histogram("mm", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name > snap[i].Name {
			t.Fatalf("snapshot unsorted: %q after %q", snap[i].Name, snap[i-1].Name)
		}
	}
	if snap[0].Name != "aa" || snap[0].Kind != "gauge" || snap[0].Value != 1 {
		t.Fatalf("snap[0] = %+v", snap[0])
	}
	if snap[1].Name != "mm" || snap[1].Kind != "histogram" || snap[1].Count != 1 {
		t.Fatalf("snap[1] = %+v", snap[1])
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("pairs_total").Add(2186064) // large enough to tempt %g into an exponent
	r.Histogram("fid", []float64{0.5, 0.9}).Observe(0.7)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := "histogram fid count=1 sum=0.7 le(0.5)=0 le(0.9)=1 le(+Inf)=0\n" +
		"counter pairs_total 2186064\n"
	if b.String() != want {
		t.Fatalf("WriteText:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("steps_total").Add(240)
	h := r.Histogram("fid", []float64{0.5, 0.9})
	h.Observe(0.4)
	h.Observe(0.7)
	h.Observe(0.95)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE qntn_fid histogram",
		"qntn_fid_bucket{le=\"0.5\"} 1",
		"qntn_fid_bucket{le=\"0.9\"} 2",  // cumulative
		"qntn_fid_bucket{le=\"+Inf\"} 3", // cumulative incl. overflow
		"qntn_fid_count 3",
		"# TYPE qntn_steps_total counter",
		"qntn_steps_total 240",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestEventSinkSortAndMerge(t *testing.T) {
	s := NewEventSink()
	s.Record(Event{Label: "b", Step: 1})
	s.Record(Event{Label: "a", Step: 2})
	other := NewEventSink()
	other.Record(Event{Label: "a", Step: 1})
	s.Merge(other)
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	ev := s.Events()
	want := []Event{{Label: "a", Step: 1}, {Label: "a", Step: 2}, {Label: "b", Step: 1}}
	if !reflect.DeepEqual(ev, want) {
		t.Fatalf("events = %+v", ev)
	}
}

func TestEventValidate(t *testing.T) {
	ok := Event{Label: "serve/x/6/seed=1", Step: 3, TSeconds: 90, PairsEvaluated: 10}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		e    Event
	}{
		{"empty label", Event{}},
		{"negative step", Event{Label: "x", Step: -1}},
		{"nan t_s", Event{Label: "x", TSeconds: math.NaN()}},
		{"inf t_s", Event{Label: "x", TSeconds: math.Inf(1)}},
		{"negative t_s", Event{Label: "x", TSeconds: -1}},
		{"nan fidelity", Event{Label: "x", MeanFidelity: math.NaN()}},
		{"inf fidelity", Event{Label: "x", MeanFidelity: math.Inf(-1)}},
		{"negative pairs", Event{Label: "x", PairsEvaluated: -1}},
		{"negative served", Event{Label: "x", Served: -2}},
	}
	for _, c := range cases {
		if err := c.e.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.e)
		}
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	s := NewEventSink()
	events := []Event{
		{Label: "coverage/space-ground/108", Step: 0, TSeconds: 0, PairsEvaluated: 5886, LinksAdmitted: 12, HorizonRejects: 3000, RangeRejects: 2000, Covered: true},
		{Label: "serve/air-ground/2/seed=7", Step: 4, TSeconds: 120, PairsEvaluated: 45, LinksAdmitted: 9, RelaxRounds: 3, Served: 8, Dropped: 2, MeanFidelity: 0.9125},
		{Label: "serve/air-ground/2/seed=7", Step: 5, TSeconds: 150, NodesDown: 1, Weather: true},
	}
	for _, e := range events {
		s.Record(e)
	}
	var b bytes.Buffer
	if err := s.WriteNDJSON(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNDJSON(&b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s.Events()) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", got, s.Events())
	}
}

func TestReadNDJSONRejects(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"unknown field", `{"label":"x","step":0,"t_s":0,"pairs_evaluated":0,"links_admitted":0,"horizon_rejects":0,"range_rejects":0,"bogus":1}`, "row 1"},
		{"trailing data", `{"label":"x","step":0,"t_s":0,"pairs_evaluated":0,"links_admitted":0,"horizon_rejects":0,"range_rejects":0} {"x":1}`, "row 1"},
		{"not json", "hello", "row 1"},
		{"invalid event", `{"label":"","step":0,"t_s":0,"pairs_evaluated":0,"links_admitted":0,"horizon_rejects":0,"range_rejects":0}`, "empty label"},
		{"second row bad", "{\"label\":\"x\",\"step\":0,\"t_s\":0,\"pairs_evaluated\":0,\"links_admitted\":0,\"horizon_rejects\":0,\"range_rejects\":0}\n{\"label\":\"x\",\"step\":-3,\"t_s\":0,\"pairs_evaluated\":0,\"links_admitted\":0,\"horizon_rejects\":0,\"range_rejects\":0}", "row 2"},
	}
	for _, c := range cases {
		_, err := ReadNDJSON(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
	// Blank lines are tolerated.
	got, err := ReadNDJSON(strings.NewReader("\n\n{\"label\":\"x\",\"step\":0,\"t_s\":0,\"pairs_evaluated\":0,\"links_admitted\":0,\"horizon_rejects\":0,\"range_rejects\":0}\n\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("blank lines: got %d events, err %v", len(got), err)
	}
}

func TestWriteNDJSONRejectsInvalid(t *testing.T) {
	s := NewEventSink()
	s.Record(Event{Label: "x", TSeconds: math.Inf(1)})
	var b bytes.Buffer
	if err := s.WriteNDJSON(&b); err == nil {
		t.Fatal("invalid event written")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := Manifest{
		Command:     "fig7",
		ParamsHash:  "097853f3676ca929",
		Seed:        42,
		GitDescribe: "09e21c8-dirty",
		GoVersion:   "go1.24.0",
		GOMAXPROCS:  4,
		NumCPU:      8,
		WallNs:      1234567,
		CPUSeconds:  1.5,
		Phases:      []Phase{{Name: "fig7", WallNs: 1234567}},
		Summary:     map[string]float64{"snapshot_steps_total": 240, "served_fidelity_sum": 100.25},
	}
	var b bytes.Buffer
	if err := WriteManifest(&b, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(&b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", got, m)
	}
}

func TestManifestValidate(t *testing.T) {
	cases := []struct {
		name string
		m    Manifest
	}{
		{"empty command", Manifest{}},
		{"negative gomaxprocs", Manifest{Command: "x", GOMAXPROCS: -1}},
		{"negative wall", Manifest{Command: "x", WallNs: -1}},
		{"nan cpu", Manifest{Command: "x", CPUSeconds: math.NaN()}},
		{"negative cpu", Manifest{Command: "x", CPUSeconds: -1}},
		{"unnamed phase", Manifest{Command: "x", Phases: []Phase{{}}}},
		{"negative phase wall", Manifest{Command: "x", Phases: []Phase{{Name: "p", WallNs: -1}}}},
		{"inf summary", Manifest{Command: "x", Summary: map[string]float64{"k": math.Inf(1)}}},
	}
	for _, c := range cases {
		if err := c.m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.m)
		}
		var b bytes.Buffer
		if err := WriteManifest(&b, c.m); err == nil {
			t.Errorf("%s: WriteManifest accepted %+v", c.name, c.m)
		}
	}
	if _, err := ReadManifest(strings.NewReader(`{"command":"x","bogus":1}`)); err == nil {
		t.Fatal("unknown manifest field accepted")
	}
}

func TestSpanProducesPhase(t *testing.T) {
	now := time.Unix(100, 0)
	clock := func() time.Time { return now }
	sp := StartSpan("unit", clock)
	now = now.Add(250 * time.Millisecond)
	ph := sp.End()
	if ph.Name != "unit" {
		t.Fatalf("phase name %q", ph.Name)
	}
	if want := int64(250 * time.Millisecond); ph.WallNs != want {
		t.Fatalf("wall %d, want %d", ph.WallNs, want)
	}
}

func TestProcessCPUSeconds(t *testing.T) {
	if v := ProcessCPUSeconds(); v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("ProcessCPUSeconds = %v", v)
	}
}

func TestCollectorShardsAndMerge(t *testing.T) {
	c := NewCollector()
	shards := c.Shards(3)
	if len(shards) != 3 {
		t.Fatalf("%d shards", len(shards))
	}
	for i, s := range shards {
		if s.Events == nil {
			t.Fatalf("shard %d missing event sink", i)
		}
		s.Registry.Counter("work").Add(uint64(i + 1))
		s.Events.Record(Event{Label: "shard", Step: i})
	}
	c.MergeShards(shards)
	if v := c.Registry.Counter("work").Value(); v != 6 {
		t.Fatalf("merged counter = %d, want 6", v)
	}
	if c.Events.Len() != 3 {
		t.Fatalf("merged events = %d, want 3", c.Events.Len())
	}

	// Metrics-only collector produces metrics-only shards.
	mo := &Collector{Registry: NewRegistry()}
	for _, s := range mo.Shards(2) {
		if s.Events != nil {
			t.Fatal("metrics-only collector grew an event sink in its shard")
		}
	}
}

// TestMergeOrderInvariance pins the commutativity claim the sweep engine
// relies on: folding the same shard values in any order yields identical
// registry snapshots and (after the stable flush sort) identical event
// streams.
func TestMergeOrderInvariance(t *testing.T) {
	build := func(order []int) ([]Metric, []Event) {
		c := NewCollector()
		shards := c.Shards(4)
		for i, s := range shards {
			s.Registry.Counter("pairs").Add(uint64(100 * (i + 1)))
			// Exact binary fractions keep the float sum independent of
			// addition order; the production invariant additionally fixes
			// the merge order, but the test permutes it.
			s.Registry.Histogram("fid", []float64{0.5}).Observe(0.25 * float64(i+1))
			s.Events.Record(Event{Label: "seg", Step: i, TSeconds: float64(i)})
		}
		perm := make([]*Collector, len(shards))
		for i, j := range order {
			perm[i] = shards[j]
		}
		c.MergeShards(perm)
		return c.Registry.Snapshot(), c.Events.Events()
	}
	m1, e1 := build([]int{0, 1, 2, 3})
	m2, e2 := build([]int{3, 1, 0, 2})
	if !reflect.DeepEqual(m1, m2) {
		t.Fatalf("metric snapshots differ across merge order:\n%+v\nvs\n%+v", m1, m2)
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Fatalf("event streams differ across merge order:\n%+v\nvs\n%+v", e1, e2)
	}
}
