package telemetry

import "time"

// Phase is a completed Span: a named wall-clock duration. Phases live only
// in the run manifest — never in the Registry or event stream — so that
// those stay bit-identical across runs of the same configuration.
type Phase struct {
	Name   string `json:"name"`
	WallNs int64  `json:"wall_ns"`
}

// Span measures the duration of a run phase against a caller-injected
// clock. Nothing under internal/ reads the wall clock directly (the detrand
// analyzer forbids it); cmd/qntnsim passes time.Now, tests pass a fake.
type Span struct {
	name  string
	clock func() time.Time
	start time.Time
}

// StartSpan starts timing a named phase against the given clock.
func StartSpan(name string, clock func() time.Time) *Span {
	return &Span{name: name, clock: clock, start: clock()}
}

// End stops the span and returns it as a manifest Phase. A nil span ends to
// a zero Phase.
func (s *Span) End() Phase {
	if s == nil {
		return Phase{}
	}
	return Phase{Name: s.name, WallNs: s.clock().Sub(s.start).Nanoseconds()}
}
