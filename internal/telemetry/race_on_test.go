//go:build race

package telemetry

// raceEnabled reports whether the race detector is compiled in. Strict
// allocation-count assertions skip under race: the detector's shadow-memory
// bookkeeping allocates, so AllocsPerRun no longer measures our code.
const raceEnabled = true
