// Package astro provides the minimal solar ephemeris needed to model the
// daylight constraint on free-space quantum links: entangled-photon and QKD
// downlinks are, in practice, only feasible against a dark sky (Micius
// operates at night), so night-gating is the first realism step beyond the
// paper's ideal-conditions assumption.
//
// The simulation has no absolute calendar date; the Sun is modeled with a
// fixed declination (0 by default — equinox) and a mean-solar hour angle
// that puts local solar midnight at the simulation epoch for longitude 0.
package astro

import (
	"math"
	"time"

	"qntn/internal/geo"
)

// MeanSolarDay is the duration of one mean solar day.
const MeanSolarDay = 24 * time.Hour

// CivilTwilightRad is the conventional civil-twilight depression angle
// (6° below the horizon). Quantum downlinks are commonly considered
// feasible once the Sun is below roughly this angle.
const CivilTwilightRad = 6 * math.Pi / 180

// Sun models the simulation's sun.
type Sun struct {
	// DeclinationRad is the solar declination (0 = equinox, ±23.44° at
	// the solstices).
	DeclinationRad float64
}

// DirectionECEF returns the unit vector from the Earth's center toward the
// Sun at time t after the epoch. At t = 0 the Sun is over longitude 180°
// (solar midnight at Greenwich); it moves westward one revolution per mean
// solar day.
func (s Sun) DirectionECEF(t time.Duration) geo.Vec3 {
	// Subsolar longitude: starts at 180° and decreases (sun moves west).
	lon := math.Pi - 2*math.Pi*float64(t)/float64(MeanSolarDay)
	dec := s.DeclinationRad
	return geo.Vec3{
		X: math.Cos(dec) * math.Cos(lon),
		Y: math.Cos(dec) * math.Sin(lon),
		Z: math.Sin(dec),
	}
}

// Elevation returns the solar elevation angle at the observer at time t.
func (s Sun) Elevation(obs geo.LLA, t time.Duration) float64 {
	_, _, up := geo.ENU(obs)
	dir := s.DirectionECEF(t)
	return math.Asin(clamp(up.Dot(dir), -1, 1))
}

// IsDark reports whether the Sun is at least twilightRad below the
// observer's horizon at time t.
func (s Sun) IsDark(obs geo.LLA, t time.Duration, twilightRad float64) bool {
	return s.Elevation(obs, t) < -twilightRad
}

// DarkFraction returns the fraction of the given period during which the
// observer is dark, sampled at the given step.
func (s Sun) DarkFraction(obs geo.LLA, period, step time.Duration, twilightRad float64) float64 {
	if step <= 0 || period <= 0 {
		return 0
	}
	dark, total := 0, 0
	for t := time.Duration(0); t < period; t += step {
		total++
		if s.IsDark(obs, t, twilightRad) {
			dark++
		}
	}
	return float64(dark) / float64(total)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
