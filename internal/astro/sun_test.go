package astro

import (
	"math"
	"testing"
	"time"

	"qntn/internal/geo"
)

func TestSunDirectionUnitVector(t *testing.T) {
	s := Sun{}
	for _, at := range []time.Duration{0, 3 * time.Hour, 12 * time.Hour, 23 * time.Hour} {
		if n := s.DirectionECEF(at).Norm(); math.Abs(n-1) > 1e-12 {
			t.Fatalf("sun direction norm %g at %v", n, at)
		}
	}
}

func TestSolarNoonAndMidnightAtGreenwich(t *testing.T) {
	s := Sun{}
	greenwich := geo.LLA{LatDeg: 0, LonDeg: 0}
	// Epoch is solar midnight at Greenwich: sun at nadir.
	if el := s.Elevation(greenwich, 0); math.Abs(el+math.Pi/2) > 1e-9 {
		t.Fatalf("midnight elevation %g°, want -90°", geo.Deg(el))
	}
	// Twelve hours later: solar noon, sun at zenith (equinox, equator).
	if el := s.Elevation(greenwich, 12*time.Hour); math.Abs(el-math.Pi/2) > 1e-9 {
		t.Fatalf("noon elevation %g°, want 90°", geo.Deg(el))
	}
	// Six hours: sunrise, elevation ≈ 0.
	if el := s.Elevation(greenwich, 6*time.Hour); math.Abs(el) > 0.01 {
		t.Fatalf("sunrise elevation %g°", geo.Deg(el))
	}
}

func TestEquinoxDarkFractionIsHalf(t *testing.T) {
	s := Sun{}
	for _, lat := range []float64{0, 36, -36, 60} {
		obs := geo.LLA{LatDeg: lat, LonDeg: -85}
		frac := s.DarkFraction(obs, 24*time.Hour, time.Minute, 0)
		if math.Abs(frac-0.5) > 0.01 {
			t.Fatalf("equinox dark fraction at lat %g = %g, want 0.5", lat, frac)
		}
	}
}

func TestSolsticeAsymmetry(t *testing.T) {
	summer := Sun{DeclinationRad: geo.Rad(23.44)}
	tn := geo.LLA{LatDeg: 36, LonDeg: -85}
	dark := summer.DarkFraction(tn, 24*time.Hour, time.Minute, 0)
	// Tennessee summer nights are short: well under half the day.
	if dark >= 0.5 || dark < 0.3 {
		t.Fatalf("summer dark fraction %g", dark)
	}
	winter := Sun{DeclinationRad: geo.Rad(-23.44)}
	if w := winter.DarkFraction(tn, 24*time.Hour, time.Minute, 0); w <= dark {
		t.Fatalf("winter nights (%g) should exceed summer (%g)", w, dark)
	}
}

func TestTwilightMarginShrinksDarkness(t *testing.T) {
	s := Sun{}
	tn := geo.LLA{LatDeg: 36, LonDeg: -85}
	plain := s.DarkFraction(tn, 24*time.Hour, time.Minute, 0)
	civil := s.DarkFraction(tn, 24*time.Hour, time.Minute, CivilTwilightRad)
	if civil >= plain {
		t.Fatalf("twilight margin should shrink darkness: %g vs %g", civil, plain)
	}
	if civil < 0.4 {
		t.Fatalf("civil-twilight dark fraction %g implausibly small", civil)
	}
}

func TestIsDarkConsistentWithElevation(t *testing.T) {
	s := Sun{}
	tn := geo.LLA{LatDeg: 36, LonDeg: -85}
	for at := time.Duration(0); at < 24*time.Hour; at += 37 * time.Minute {
		dark := s.IsDark(tn, at, CivilTwilightRad)
		el := s.Elevation(tn, at)
		if dark != (el < -CivilTwilightRad) {
			t.Fatalf("IsDark inconsistent at %v", at)
		}
	}
}

func TestDarkFractionDegenerateInputs(t *testing.T) {
	s := Sun{}
	if s.DarkFraction(geo.LLA{}, 0, time.Minute, 0) != 0 {
		t.Fatal("zero period should give 0")
	}
	if s.DarkFraction(geo.LLA{}, time.Hour, 0, 0) != 0 {
		t.Fatal("zero step should give 0")
	}
}
