package qntn

import (
	"testing"
	"time"

	"qntn/internal/astro"
	"qntn/internal/geo"
)

func TestDarknessGatingAirGround(t *testing.T) {
	p := DefaultParams()
	p.RequireDarkness = true
	sc, err := NewAirGround(p)
	if err != nil {
		t.Fatal(err)
	}
	cov, err := sc.Coverage(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Night gating cuts the always-on HAP to roughly the dark fraction
	// of the day (just under half with the civil-twilight margin).
	if pct := cov.Percent(); pct < 35 || pct > 50 {
		t.Fatalf("night-only air-ground coverage %.2f%%, want ≈40-50%%", pct)
	}
}

func TestDarknessGatingSpaceGround(t *testing.T) {
	p := DefaultParams()
	day, err := NewSpaceGround(108, p)
	if err != nil {
		t.Fatal(err)
	}
	p.RequireDarkness = true
	night, err := NewSpaceGround(108, p)
	if err != nil {
		t.Fatal(err)
	}
	// A 9-hour window starting at the epoch spans both Tennessee night
	// (epoch ≈ 18:20 local) and the following morning.
	const window = 9 * time.Hour
	dayCov, err := day.Coverage(window)
	if err != nil {
		t.Fatal(err)
	}
	nightCov, err := night.Coverage(window)
	if err != nil {
		t.Fatal(err)
	}
	if nightCov.Percent() >= dayCov.Percent() {
		t.Fatalf("darkness constraint did not reduce coverage: %.2f vs %.2f",
			nightCov.Percent(), dayCov.Percent())
	}
	if nightCov.Percent() <= 0 {
		t.Fatal("night-only coverage should not vanish entirely")
	}
}

func TestDarknessGatingLinkLevel(t *testing.T) {
	p := DefaultParams()
	p.RequireDarkness = true
	sc, err := NewAirGround(p)
	if err != nil {
		t.Fatal(err)
	}
	sun := astro.Sun{}
	ttu := geo.LLA{LatDeg: 36.1757, LonDeg: -85.5066}
	host := sc.GroundIDs[NetworkTTU][0]
	sawDark, sawLight := false, false
	for at := time.Duration(0); at < 24*time.Hour; at += 30 * time.Minute {
		_, usable := sc.EvaluateLink(host, HAPID, at)
		dark := sun.IsDark(ttu, at, astro.CivilTwilightRad)
		if usable != dark {
			t.Fatalf("at %v: usable=%v but dark=%v", at, usable, dark)
		}
		if dark {
			sawDark = true
		} else {
			sawLight = true
		}
	}
	if !sawDark || !sawLight {
		t.Fatal("expected both day and night samples across 24h")
	}
}

func TestDarknessDoesNotAffectFiber(t *testing.T) {
	p := DefaultParams()
	p.RequireDarkness = true
	sc, err := NewAirGround(p)
	if err != nil {
		t.Fatal(err)
	}
	// Daytime instant at Tennessee (epoch = Greenwich solar midnight;
	// Tennessee is ~5.7 h behind, so ~18h local midnight → 6h local noon
	// is epoch+~17.7h... just scan for a lit instant).
	ids := sc.GroundIDs[NetworkTTU]
	sun := astro.Sun{}
	ttu := geo.LLA{LatDeg: 36.1757, LonDeg: -85.5066}
	for at := time.Duration(0); at < 24*time.Hour; at += time.Hour {
		if !sun.IsDark(ttu, at, astro.CivilTwilightRad) {
			if _, ok := sc.EvaluateLink(ids[0], ids[1], at); !ok {
				t.Fatal("daylight should not break intra-LAN fiber")
			}
			return
		}
	}
	t.Fatal("never found a lit instant")
}

func TestTwilightParamValidation(t *testing.T) {
	p := DefaultParams()
	p.TwilightRad = -0.1
	if err := p.Validate(); err == nil {
		t.Fatal("negative twilight accepted")
	}
	p = DefaultParams()
	p.TwilightRad = 2
	if err := p.Validate(); err == nil {
		t.Fatal("twilight beyond π/2 accepted")
	}
}
