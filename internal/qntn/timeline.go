package qntn

import (
	"fmt"
	"time"

	"qntn/internal/netsim"
	"qntn/internal/orbit"
	"qntn/internal/quantum"
	"qntn/internal/stats"
)

// SpeedOfLightMPerS is the vacuum speed of light used for heralding
// latency.
const SpeedOfLightMPerS = 299792458.0

// ServeDESResult extends ServeResult with the timing metrics of the
// event-driven experiment.
type ServeDESResult struct {
	ServeResult
	// MeanLatency / MaxLatency summarize heralding latency over served
	// requests.
	MeanLatency time.Duration
	MaxLatency  time.Duration
	// EventsProcessed is the number of discrete events executed.
	EventsProcessed int
}

// PathLengthM returns the summed straight-line hop length of a path at
// virtual time t.
func (sc *Scenario) PathLengthM(path []string, t time.Duration) (float64, error) {
	var total float64
	for i := 0; i+1 < len(path); i++ {
		a := sc.Net.Node(path[i])
		b := sc.Net.Node(path[i+1])
		if a == nil || b == nil {
			return 0, fmt.Errorf("qntn: path references unknown node %q or %q", path[i], path[i+1])
		}
		total += a.PositionAt(t).Distance(b.PositionAt(t))
	}
	return total, nil
}

// HeraldingLatency models the time until both endpoints hold a confirmed
// pair: photons propagate outward over the path (L/c) and the classical
// heralding message travels back (another L/c), plus a fixed processing
// delay per hop.
func (sc *Scenario) HeraldingLatency(pathLengthM float64, hops int) time.Duration {
	prop := 2 * pathLengthM / SpeedOfLightMPerS
	latency := time.Duration(prop * float64(time.Second))
	latency += time.Duration(hops) * sc.Params.ProcessingDelayPerHop
	return latency
}

// TimeAwarePathFidelity extends PathFidelity with memory dephasing during
// the heralding wait: the pair's qubits sit in end-node memories for the
// storage duration, decohering with coherence time t2 (t2 <= 0 means ideal
// memories). The source split is chosen exactly as in PathFidelity —
// dephasing applies identically to every split, so the argmax is
// unchanged.
func TimeAwarePathFidelity(etas []float64, model FidelityModel, storage, t2 time.Duration) (float64, error) {
	if len(etas) == 0 {
		return 1, nil
	}
	if t2 <= 0 || storage <= 0 {
		return PathFidelity(etas, model), nil
	}
	var left, right float64
	switch model {
	case SourceAtEndpoint:
		left, right = 1, product(etas)
	default: // SourceAtBestSplit
		best, bestSplit := -1.0, 0
		for split := 0; split <= len(etas); split++ {
			f := quantum.AnalyticBellFidelityBothArms(product(etas[:split]), product(etas[split:]))
			if f > best {
				best, bestSplit = f, split
			}
		}
		left, right = product(etas[:bestSplit]), product(etas[bestSplit:])
	}
	return quantum.StoredBellFidelity(left, right, storage, t2)
}

// RunServeDES executes the serve experiment through the discrete-event
// simulator: topology-update events fire at each sampled step, requests
// are attempted at the event instant, and each served request is charged a
// heralding latency during which its memories dephase (when MemoryT2 is
// set). With ideal memories the serving and fidelity results are identical
// to RunServe; the DES adds the timing dimension.
func (sc *Scenario) RunServeDES(cfg ServeConfig) (*ServeDESResult, error) {
	if cfg.RequestsPerStep <= 0 || cfg.Steps <= 0 {
		return nil, fmt.Errorf("qntn: serve config requires positive requests and steps")
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = orbit.Day
	}
	res := &ServeDESResult{}
	res.Config = cfg
	wl, err := NewWorkload(sc, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// sampleTimes is the shared source of the per-step instants; deriving
	// the step gap locally once dropped every sample past the horizon when
	// the Horizon/Steps division underflowed and the StepInterval fallback
	// pushed the samples beyond it (see TestServeDESSamplesAllSteps).
	times := cfg.sampleTimes(sc.Params)

	var fids, etas, latencies []float64
	var simErr error
	sim := netsim.NewSimulator()
	serveStep := func(s *netsim.Simulator) {
		at := s.Now()
		tables, graph, err := sc.Routes(at)
		if err != nil {
			simErr = err
			s.Stop()
			return
		}
		for _, req := range wl.Batch(cfg.RequestsPerStep) {
			out := netsim.Outcome{Request: req, At: at}
			if tables.Reachable(req.Src, req.Dst) {
				path, err := tables.Path(req.Src, req.Dst)
				if err != nil {
					simErr = err
					s.Stop()
					return
				}
				hopEtas, err := graph.EdgeEtas(path)
				if err != nil {
					simErr = err
					s.Stop()
					return
				}
				length, err := sc.PathLengthM(path, at)
				if err != nil {
					simErr = err
					s.Stop()
					return
				}
				latency := sc.HeraldingLatency(length, len(hopEtas))
				fid, err := TimeAwarePathFidelity(hopEtas, sc.Params.FidelityModel, latency, sc.Params.MemoryT2)
				if err != nil {
					simErr = err
					s.Stop()
					return
				}
				out.Served = true
				out.Path = path
				out.EndToEndEta = product(hopEtas)
				out.PathLengthM = length
				out.Latency = latency
				out.Fidelity = fid
				fids = append(fids, fid)
				etas = append(etas, out.EndToEndEta)
				latencies = append(latencies, latency.Seconds())
				if latency > res.MaxLatency {
					res.MaxLatency = latency
				}
			}
			res.Metrics.Record(out)
		}
	}
	for _, at := range times {
		if err := sim.Schedule(at, "serve-step", serveStep); err != nil {
			return nil, err
		}
	}
	runUntil := cfg.Horizon
	if last := times[len(times)-1]; last > runUntil {
		runUntil = last
	}
	if err := sim.Run(runUntil); err != nil {
		return nil, err
	}
	if simErr != nil {
		return nil, simErr
	}

	res.ServedPercent = 100 * res.Metrics.ServedFraction()
	res.MeanFidelity = res.Metrics.MeanServedFidelity()
	res.FidelitySummary = stats.Summarize(fids)
	res.MeanPathEta = stats.Mean(etas)
	if len(latencies) > 0 {
		res.MeanLatency = time.Duration(stats.Mean(latencies) * float64(time.Second))
	}
	res.EventsProcessed = sim.Processed
	return res, nil
}
