package qntn

import (
	"testing"
	"time"
)

func BenchmarkSnapshot108Satellites(b *testing.B) {
	sc, err := NewSpaceGround(108, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Graph(time.Duration(i) * 30 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoutesAirGround(b *testing.B) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sc.Routes(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoutes108Satellites(b *testing.B) {
	sc, err := NewSpaceGround(108, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sc.Routes(time.Duration(i) * 30 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoverageHour108Satellites(b *testing.B) {
	sc, err := NewSpaceGround(108, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Coverage(time.Hour); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPathFidelityBestSplit(b *testing.B) {
	etas := []float64{0.93, 0.88, 0.95}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PathFidelity(etas, SourceAtBestSplit)
	}
}

func BenchmarkPathFidelityExact(b *testing.B) {
	etas := []float64{0.93, 0.88, 0.95}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PathFidelityExact(etas, SourceAtBestSplit); err != nil {
			b.Fatal(err)
		}
	}
}
