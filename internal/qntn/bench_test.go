package qntn

import (
	"testing"
	"time"

	"qntn/internal/netsim"
	"qntn/internal/routing"
	"qntn/internal/telemetry"
)

func BenchmarkSnapshot108Satellites(b *testing.B) {
	sc, err := NewSpaceGround(108, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var m allocMeter
	m.start()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Graph(time.Duration(i) * 30 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
	allocs, bytes := m.stop()
	recordSweepBench(b, "Snapshot108", 1, allocs, bytes)
}

// BenchmarkSnapshotInto108Satellites measures the arena-reuse path: the
// same topology work as BenchmarkSnapshot108Satellites, but into one
// caller-owned graph — the steady state of RunServe and Coverage.
func BenchmarkSnapshotInto108Satellites(b *testing.B) {
	sc, err := NewSpaceGround(108, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	g := routing.NewGraph()
	b.ReportAllocs()
	b.ResetTimer()
	var m allocMeter
	m.start()
	for i := 0; i < b.N; i++ {
		if err := sc.GraphInto(g, time.Duration(i)*30*time.Second); err != nil {
			b.Fatal(err)
		}
	}
	allocs, bytes := m.stop()
	recordSweepBench(b, "SnapshotInto108", 1, allocs, bytes)
}

// BenchmarkSnapshotInto108TelemetrySatellites is the enabled half of the
// telemetry overhead pair: the same steady-state loop as
// BenchmarkSnapshotInto108Satellites (the nil-sink baseline), but with a
// metrics-only collector attached, so BENCH_sweep.json documents the cost
// of instrumentation — a handful of atomic adds per step — next to the
// uninstrumented numbers.
func BenchmarkSnapshotInto108TelemetrySatellites(b *testing.B) {
	p := DefaultParams()
	p.Telemetry = &telemetry.Collector{Registry: telemetry.NewRegistry()}
	sc, err := NewSpaceGround(108, p)
	if err != nil {
		b.Fatal(err)
	}
	g := routing.NewGraph()
	var st netsim.SnapshotStats
	b.ReportAllocs()
	b.ResetTimer()
	var m allocMeter
	m.start()
	for i := 0; i < b.N; i++ {
		if err := sc.Net.SnapshotIntoStats(g, time.Duration(i)*30*time.Second, &st); err != nil {
			b.Fatal(err)
		}
	}
	allocs, bytes := m.stop()
	recordSweepBench(b, "SnapshotInto108Telemetry", 1, allocs, bytes)
}

func BenchmarkRoutesAirGround(b *testing.B) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var m allocMeter
	m.start()
	for i := 0; i < b.N; i++ {
		if _, _, err := sc.Routes(0); err != nil {
			b.Fatal(err)
		}
	}
	allocs, bytes := m.stop()
	recordSweepBench(b, "RoutesAirGround", 1, allocs, bytes)
}

func BenchmarkRoutes108Satellites(b *testing.B) {
	sc, err := NewSpaceGround(108, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var m allocMeter
	m.start()
	for i := 0; i < b.N; i++ {
		if _, _, err := sc.Routes(time.Duration(i) * 30 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
	allocs, bytes := m.stop()
	recordSweepBench(b, "Routes108", 1, allocs, bytes)
}

func BenchmarkCoverageHour108Satellites(b *testing.B) {
	sc, err := NewSpaceGround(108, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var m allocMeter
	m.start()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Coverage(time.Hour); err != nil {
			b.Fatal(err)
		}
	}
	allocs, bytes := m.stop()
	recordSweepBench(b, "CoverageHour108", 1, allocs, bytes)
}

func BenchmarkPathFidelityBestSplit(b *testing.B) {
	etas := []float64{0.93, 0.88, 0.95}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PathFidelity(etas, SourceAtBestSplit)
	}
}

func BenchmarkPathFidelityExact(b *testing.B) {
	etas := []float64{0.93, 0.88, 0.95}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PathFidelityExact(etas, SourceAtBestSplit); err != nil {
			b.Fatal(err)
		}
	}
}
