package qntn

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"qntn/internal/fault"
	"qntn/internal/netsim"
	"qntn/internal/routing"
	"qntn/internal/telemetry"
)

func telemetryTestParams() Params {
	p := DefaultParams()
	p.Turbulence = nil // keep the physics cheap; instrumentation is what's under test
	p.StepInterval = 5 * time.Minute
	return p
}

func counterValue(t *testing.T, c *telemetry.Collector, name string) uint64 {
	t.Helper()
	return c.Registry.Counter(name).Value()
}

// TestInstrumentedServeMatchesUninstrumented is the tentpole equivalence
// claim: attaching a collector must not perturb a single result bit, and the
// counters/events it fills must be internally consistent with the run.
func TestInstrumentedServeMatchesUninstrumented(t *testing.T) {
	p := telemetryTestParams()
	cfg := ServeConfig{RequestsPerStep: 6, Steps: 5, Horizon: time.Hour, Seed: 9}

	plain, err := NewSpaceGround(12, p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.RunServe(cfg)
	if err != nil {
		t.Fatal(err)
	}

	pt := p
	col := telemetry.NewCollector()
	pt.Telemetry = col
	sc, err := NewSpaceGround(12, pt)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Telemetry() != col {
		t.Fatal("scenario assembled from instrumented params is not instrumented")
	}
	got, err := sc.RunServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("instrumented serve diverged from uninstrumented:\n%+v\nvs\n%+v", got, want)
	}

	steps := uint64(cfg.Steps)
	if v := counterValue(t, col, "snapshot_steps_total"); v != steps {
		t.Errorf("snapshot_steps_total = %d, want %d", v, steps)
	}
	served := counterValue(t, col, "requests_served_total")
	dropped := counterValue(t, col, "requests_dropped_total")
	if served+dropped != steps*uint64(cfg.RequestsPerStep) {
		t.Errorf("served %d + dropped %d != %d requests", served, dropped, steps*uint64(cfg.RequestsPerStep))
	}
	wantServed := uint64(float64(steps*uint64(cfg.RequestsPerStep)) * want.ServedPercent / 100)
	if served != wantServed {
		t.Errorf("requests_served_total = %d, ServedPercent implies %d", served, wantServed)
	}
	fid := col.Registry.Histogram("served_fidelity", nil)
	if fid.Count() != served {
		t.Errorf("served_fidelity count %d != requests_served_total %d", fid.Count(), served)
	}
	if counterValue(t, col, "relax_rounds_total") < steps {
		t.Error("relax_rounds_total below one round per step")
	}

	// Every step emits exactly one event with the full snapshot accounting.
	events := col.Events.Events()
	if len(events) != cfg.Steps {
		t.Fatalf("%d events, want %d", len(events), cfg.Steps)
	}
	n := len(sc.Net.Nodes())
	wantPairs := int64(n * (n - 1) / 2)
	var evServed, evDropped int64
	for i, e := range events {
		if e.Label != "serve/space-ground/12/seed=9" {
			t.Fatalf("event label %q", e.Label)
		}
		if e.Step != i {
			t.Fatalf("event %d has step %d", i, e.Step)
		}
		if e.PairsEvaluated != wantPairs {
			t.Fatalf("event %d: pairs %d, want %d", i, e.PairsEvaluated, wantPairs)
		}
		if e.HorizonRejects+e.RangeRejects > e.PairsEvaluated {
			t.Fatalf("event %d: more prefilter rejects than pairs: %+v", i, e)
		}
		if e.LinksAdmitted <= 0 {
			t.Fatalf("event %d admitted no links", i)
		}
		evServed += e.Served
		evDropped += e.Dropped
	}
	if uint64(evServed) != served || uint64(evDropped) != dropped {
		t.Errorf("event served/dropped %d/%d disagree with counters %d/%d", evServed, evDropped, served, dropped)
	}
}

// TestInstrumentedCoverageMatchesUninstrumented: same claim for Coverage.
func TestInstrumentedCoverageMatchesUninstrumented(t *testing.T) {
	p := telemetryTestParams()
	const horizon = 2 * time.Hour

	plain, err := NewSpaceGround(18, p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Coverage(horizon)
	if err != nil {
		t.Fatal(err)
	}

	pt := p
	col := telemetry.NewCollector()
	pt.Telemetry = col
	sc, err := NewSpaceGround(18, pt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.Coverage(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("instrumented coverage diverged:\n%+v\nvs\n%+v", got, want)
	}

	if v := counterValue(t, col, "coverage_steps_total"); v != uint64(want.Steps) {
		t.Errorf("coverage_steps_total = %d, want %d", v, want.Steps)
	}
	if v := counterValue(t, col, "coverage_covered_steps_total"); v != uint64(want.CoveredSteps) {
		t.Errorf("coverage_covered_steps_total = %d, want %d", v, want.CoveredSteps)
	}
	events := col.Events.Events()
	if len(events) != want.Steps {
		t.Fatalf("%d events, want %d", len(events), want.Steps)
	}
	coveredEvents := 0
	for _, e := range events {
		if e.Label != "coverage/space-ground/18" {
			t.Fatalf("event label %q", e.Label)
		}
		if e.Covered {
			coveredEvents++
		}
	}
	if coveredEvents != want.CoveredSteps {
		t.Errorf("%d covered events, result says %d covered steps", coveredEvents, want.CoveredSteps)
	}
}

// telemetryDump flattens a collector into comparable byte blobs (metrics
// text + NDJSON event stream); wall-clock never enters either.
func telemetryDump(t *testing.T, col *telemetry.Collector) (string, string) {
	t.Helper()
	var metrics, events bytes.Buffer
	if err := col.Registry.WriteText(&metrics); err != nil {
		t.Fatal(err)
	}
	if err := col.Events.WriteNDJSON(&events); err != nil {
		t.Fatal(err)
	}
	return metrics.String(), events.String()
}

// TestServeSweepTelemetryWorkerInvariance: the merged telemetry of a
// parallel serve sweep — metrics and the sorted event stream — must be
// byte-identical at 1, 2 and 8 workers, alongside the results themselves.
func TestServeSweepTelemetryWorkerInvariance(t *testing.T) {
	p := telemetryTestParams()
	cfg := ServeConfig{RequestsPerStep: 5, Steps: 4, Horizon: time.Hour, Seed: 3}
	sizes := []int{6, 12, 24}

	var baseMetrics, baseEvents string
	var basePoints []ServePoint
	for i, workers := range []int{1, 2, 8} {
		col := telemetry.NewCollector()
		pw := p
		pw.Telemetry = col
		points, err := ServeSweepParallel(pw, sizes, cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		metrics, events := telemetryDump(t, col)
		if events == "" {
			t.Fatal("sweep recorded no events")
		}
		if i == 0 {
			baseMetrics, baseEvents, basePoints = metrics, events, points
			continue
		}
		if !reflect.DeepEqual(points, basePoints) {
			t.Errorf("results at %d workers diverged", workers)
		}
		if metrics != baseMetrics {
			t.Errorf("metrics at %d workers diverged:\n%s\nvs\n%s", workers, metrics, baseMetrics)
		}
		if events != baseEvents {
			t.Errorf("event stream at %d workers diverged", workers)
		}
	}
}

// TestCoverageSweepTelemetryWorkerInvariance: same contract for the chunked
// coverage sweep (the horizon spans multiple 32-step chunks).
func TestCoverageSweepTelemetryWorkerInvariance(t *testing.T) {
	p := telemetryTestParams()
	sizes := []int{6, 18}
	duration := 3 * time.Hour // 36 five-minute steps -> 2 chunks

	var baseMetrics, baseEvents string
	for i, workers := range []int{1, 2, 8} {
		col := telemetry.NewCollector()
		pw := p
		pw.Telemetry = col
		if _, err := CoverageSweepParallel(pw, sizes, duration, workers); err != nil {
			t.Fatal(err)
		}
		metrics, events := telemetryDump(t, col)
		if events == "" {
			t.Fatal("sweep recorded no events")
		}
		if i == 0 {
			baseMetrics, baseEvents = metrics, events
			continue
		}
		if metrics != baseMetrics {
			t.Errorf("metrics at %d workers diverged:\n%s\nvs\n%s", workers, metrics, baseMetrics)
		}
		if events != baseEvents {
			t.Errorf("event stream at %d workers diverged", workers)
		}
	}
}

// TestReplicatedSweepTelemetryWorkerInvariance: replicas of the same size
// share an architecture and relay count, so the seed-qualified serve labels
// are what keeps their event streams disjoint and the merge order-free.
func TestReplicatedSweepTelemetryWorkerInvariance(t *testing.T) {
	p := telemetryTestParams()
	cfg := ServeConfig{RequestsPerStep: 4, Steps: 3, Horizon: time.Hour, Seed: 5}
	sizes := []int{6, 12}

	var baseMetrics, baseEvents string
	for i, workers := range []int{1, 8} {
		col := telemetry.NewCollector()
		pw := p
		pw.Telemetry = col
		if _, err := ServeSweepReplicated(pw, sizes, cfg, 3, workers); err != nil {
			t.Fatal(err)
		}
		metrics, events := telemetryDump(t, col)
		if i == 0 {
			baseMetrics, baseEvents = metrics, events
			continue
		}
		if metrics != baseMetrics {
			t.Errorf("metrics at %d workers diverged", workers)
		}
		if events != baseEvents {
			t.Errorf("event stream at %d workers diverged", workers)
		}
	}

	// 2 sizes x 3 replicas x 3 steps, every (label, step) key distinct.
	col := telemetry.NewCollector()
	pw := p
	pw.Telemetry = col
	if _, err := ServeSweepReplicated(pw, sizes, cfg, 3, 2); err != nil {
		t.Fatal(err)
	}
	events := col.Events.Events()
	if len(events) != 2*3*3 {
		t.Fatalf("%d events, want 18", len(events))
	}
	seen := make(map[string]bool, len(events))
	for _, e := range events {
		key := e.Label + "#" + string(rune('0'+e.Step))
		if seen[key] {
			t.Fatalf("duplicate event key %q", key)
		}
		seen[key] = true
	}
}

// TestFaultTelemetry: a faulted run must surface outages and weather in both
// the counters and the event stream — and still match the uninstrumented
// faulted run bit for bit.
func TestFaultTelemetry(t *testing.T) {
	p := telemetryTestParams()
	p.Fault = fault.Config{
		SatMTBF:  2 * time.Hour,
		SatMTTR:  time.Hour,
		WeatherP: 0.4,
		Seed:     5,
	}
	cfg := ServeConfig{RequestsPerStep: 5, Steps: 8, Horizon: 6 * time.Hour, Seed: 2}

	plain, err := NewSpaceGround(24, p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.RunServe(cfg)
	if err != nil {
		t.Fatal(err)
	}

	pt := p
	col := telemetry.NewCollector()
	pt.Telemetry = col
	sc, err := NewSpaceGround(24, pt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.RunServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("instrumented faulted serve diverged from uninstrumented")
	}

	downSteps := counterValue(t, col, "fault_node_down_steps_total")
	weatherSteps := counterValue(t, col, "fault_weather_steps_total")
	if downSteps == 0 && weatherSteps == 0 {
		t.Fatal("fault injection left no telemetry trace")
	}
	var evDown uint64
	var evWeather uint64
	for _, e := range col.Events.Events() {
		evDown += uint64(e.NodesDown)
		if e.Weather {
			evWeather++
		}
	}
	if evDown != downSteps {
		t.Errorf("event nodes_down sum %d != fault_node_down_steps_total %d", evDown, downSteps)
	}
	if evWeather != weatherSteps {
		t.Errorf("%d weather events != fault_weather_steps_total %d", evWeather, weatherSteps)
	}
}

// TestSnapshotZeroAllocsUninstrumented pins the "zero overhead when
// disabled" claim at the allocation level: the default (no collector)
// snapshot path must not allocate in steady state — the same property the
// Snapshot108 benchmark tracks, asserted here so `go test` catches a
// regression without running benchmarks.
func TestSnapshotZeroAllocsUninstrumented(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector bookkeeping allocates; AllocsPerRun is meaningless")
	}
	sc, err := NewSpaceGround(24, telemetryTestParams())
	if err != nil {
		t.Fatal(err)
	}
	g := routing.NewGraph()
	// Warm the pooled evaluator and graph storage.
	for i := 0; i < 3; i++ {
		if err := sc.GraphInto(g, time.Duration(i)*time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(20, func() {
		if err := sc.GraphInto(g, 5*time.Minute); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("uninstrumented GraphInto allocates %v times per snapshot", n)
	}
}

// TestSnapshotZeroAllocsMetricsOnly: counters alone (no event sink) must
// also stay allocation-free per step — the cost of metrics is a handful of
// atomic adds.
func TestSnapshotZeroAllocsMetricsOnly(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector bookkeeping allocates; AllocsPerRun is meaningless")
	}
	p := telemetryTestParams()
	col := &telemetry.Collector{Registry: telemetry.NewRegistry()}
	p.Telemetry = col
	sc, err := NewSpaceGround(24, p)
	if err != nil {
		t.Fatal(err)
	}
	g := routing.NewGraph()
	var st netsim.SnapshotStats
	for i := 0; i < 3; i++ {
		if err := sc.Net.SnapshotIntoStats(g, time.Duration(i)*time.Minute, &st); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(20, func() {
		if err := sc.Net.SnapshotIntoStats(g, 5*time.Minute, &st); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("metrics-only snapshot allocates %v times per step", n)
	}
	if st.Pairs == 0 || st.Admitted == 0 {
		t.Fatalf("snapshot stats not populated: %+v", st)
	}
}

// TestInstrumentDetach: Instrument(nil) must fully detach, restoring the
// uninstrumented fast path.
func TestInstrumentDetach(t *testing.T) {
	p := telemetryTestParams()
	col := telemetry.NewCollector()
	p.Telemetry = col
	sc, err := NewSpaceGround(6, p)
	if err != nil {
		t.Fatal(err)
	}
	sc.Instrument(nil)
	if sc.Telemetry() != nil || sc.Net.Instruments() != nil {
		t.Fatal("Instrument(nil) left instrumentation attached")
	}
	if _, err := sc.RunServe(ServeConfig{RequestsPerStep: 2, Steps: 2, Horizon: time.Hour, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, col, "snapshot_steps_total"); got != 0 {
		t.Fatalf("detached run still counted %d steps", got)
	}
	if col.Events.Len() != 0 {
		t.Fatalf("detached run recorded %d events", col.Events.Len())
	}
}

// TestParamsHash: stable across calls, sensitive to parameter changes, and
// blind to the runtime-only Telemetry field.
func TestParamsHash(t *testing.T) {
	p := DefaultParams()
	h1 := ParamsHash(p)
	if len(h1) != 16 {
		t.Fatalf("hash %q is not 16 hex chars", h1)
	}
	if h2 := ParamsHash(p); h2 != h1 {
		t.Fatalf("hash unstable: %q vs %q", h1, h2)
	}
	q := p
	q.StepInterval = 2 * p.StepInterval
	if ParamsHash(q) == h1 {
		t.Fatal("hash ignores StepInterval")
	}
	r := p
	r.Telemetry = telemetry.NewCollector()
	if ParamsHash(r) != h1 {
		t.Fatal("hash depends on the runtime-only Telemetry field")
	}
}

// TestBellmanFordRounds: the scratch must report how many relaxation rounds
// the last Run took — at least one on any non-trivial graph, and bounded by
// the node count.
func TestBellmanFordRounds(t *testing.T) {
	var scratch routing.BellmanFordScratch
	g := routing.NewGraph()
	for _, id := range []string{"a", "b", "c"} {
		g.AddNode(id)
	}
	g.AddEdge("a", "b", 1)
	g.AddEdge("b", "c", 1)
	scratch.Run(g, 0)
	if r := scratch.Rounds(); r < 1 || r > 3 {
		t.Fatalf("Rounds() = %d after a 3-node run", r)
	}
}

// TestServeLabelsDisambiguateSeeds pins the label format the sweep
// invariance relies on.
func TestServeLabelsDisambiguateSeeds(t *testing.T) {
	sc, err := NewSpaceGround(6, telemetryTestParams())
	if err != nil {
		t.Fatal(err)
	}
	a, b := sc.serveLabel(1), sc.serveLabel(2)
	if a == b {
		t.Fatalf("labels for different seeds collide: %q", a)
	}
	if !strings.Contains(a, "space-ground") || !strings.Contains(a, "seed=1") {
		t.Fatalf("label %q missing architecture or seed", a)
	}
}
