// Package oracletest provides reusable differential-testing helpers that
// pit the event-driven execution path against the brute-force stepped
// simulation, which remains the semantic oracle: two scenarios are built
// from identical parameters — differing only in Params.EventDriven — and
// every experiment result must be reflect.DeepEqual-identical between them.
//
// The helpers grew out of the PR-3 snapshot equivalence harness
// (snapshot_equiv_test.go) and extend it from single-snapshot graph
// equality to whole-experiment equality: Coverage intervals, per-pair
// coverage breakdowns with link-transition counts, and full serve results
// including metrics and fidelity summaries. Any future execution path
// (GPU offload, distributed stepping, ...) can reuse the same archetype
// catalog and assertions.
package oracletest

import (
	"reflect"
	"testing"
	"time"

	"qntn/internal/fault"
	"qntn/internal/orbit"
	"qntn/internal/qntn"
)

// Builder constructs a scenario from a parameter set. The same builder is
// invoked twice per assertion — once for the stepped oracle, once for the
// event-driven subject — so it must be deterministic in its inputs.
type Builder func(p qntn.Params) (*qntn.Scenario, error)

// Archetype is one named scenario family of the differential suite.
type Archetype struct {
	Name string
	// Build constructs the scenario.
	Build Builder
	// Duration is the coverage horizon the suite exercises the archetype
	// over — scaled down for the large constellations so the stepped
	// oracle stays affordable in tier-1 test time.
	Duration time.Duration
	// Darkness enables the night-only operation constraint, exercising
	// darkness boundaries where ground stations join and leave service.
	Darkness bool
	// HAPOutage is the HAP availability loss probability (0 disables).
	HAPOutage float64
}

// Archetypes returns the suite's scenario catalog: the paper's SpaceGround
// constellation sizes (6/24/54/108), the AirGround HAP architecture, the
// Hybrid future-work mix, and a two-shell Walker constellation with the
// +grid inter-satellite-link topology — the global-scale regime the spatial
// index targets (96 satellites, over the index's node cutoff). Darkness and
// HAP-outage settings mirror the snapshot equivalence suite so both
// harnesses stress the same regimes.
func Archetypes() []Archetype {
	spaceGround := func(n int) Builder {
		return func(p qntn.Params) (*qntn.Scenario, error) { return qntn.NewSpaceGround(n, p) }
	}
	walker := qntn.WalkerSpec{
		Shells: []orbit.WalkerShell{
			{TotalSats: 48, Planes: 8, Phasing: 1, InclinationDeg: 53, AltitudeM: 550e3},
			{TotalSats: 48, Planes: 8, Phasing: 1, InclinationDeg: 60, AltitudeM: 600e3},
		},
		ISLGrid: true,
	}
	return []Archetype{
		{Name: "space-ground-6", Build: spaceGround(6), Duration: 12 * time.Hour},
		{Name: "space-ground-24", Build: spaceGround(24), Duration: 8 * time.Hour},
		{Name: "space-ground-54-darkness", Build: spaceGround(54), Duration: 6 * time.Hour, Darkness: true},
		{Name: "space-ground-108", Build: spaceGround(108), Duration: 4 * time.Hour},
		{Name: "air-ground", Build: qntn.NewAirGround, Duration: 12 * time.Hour, Darkness: true, HAPOutage: 0.3},
		{Name: "hybrid-12", Build: func(p qntn.Params) (*qntn.Scenario, error) { return qntn.NewHybrid(12, p) },
			Duration: 8 * time.Hour, Darkness: true, HAPOutage: 0.25},
		{Name: "walker-96-islgrid", Build: func(p qntn.Params) (*qntn.Scenario, error) { return qntn.NewWalker(walker, p) },
			Duration: 3 * time.Hour},
	}
}

// Params returns the archetype's parameter set: defaults plus its darkness
// and HAP-outage settings.
func (a Archetype) Params() qntn.Params {
	p := qntn.DefaultParams()
	p.RequireDarkness = a.Darkness
	p.HAPOutageProbability = a.HAPOutage
	return p
}

// FaultConfig returns the suite's shared fault mix: platform outages on
// every node kind plus attenuating weather, aggressive enough that every
// fault gate fires within a few simulated hours.
func FaultConfig(seed int64) fault.Config {
	return fault.Config{
		SatMTBF: 2 * time.Hour, SatMTTR: 20 * time.Minute,
		HAPMTBF: 3 * time.Hour, HAPMTTR: 30 * time.Minute,
		GroundMTBF: 6 * time.Hour, GroundMTTR: 15 * time.Minute,
		WeatherP: 0.2, WeatherAttenuation: 0.5,
		Seed: seed,
	}
}

// Pair builds the scenario twice from identical parameters: the stepped
// oracle (EventDriven off) and the event-driven subject (EventDriven on).
func Pair(t testing.TB, build Builder, p qntn.Params) (stepped, event *qntn.Scenario) {
	t.Helper()
	p.EventDriven = false
	stepped, err := build(p)
	if err != nil {
		t.Fatalf("oracletest: building stepped oracle: %v", err)
	}
	pe := p
	pe.EventDriven = true
	event, err = build(pe)
	if err != nil {
		t.Fatalf("oracletest: building event-driven subject: %v", err)
	}
	return stepped, event
}

// AssertCoverageEqual requires Coverage to be DeepEqual-identical between
// the two paths and returns the oracle result for further inspection.
func AssertCoverageEqual(t testing.TB, build Builder, p qntn.Params, duration time.Duration) *qntn.CoverageResult {
	t.Helper()
	stepped, event := Pair(t, build, p)
	want, err := stepped.Coverage(duration)
	if err != nil {
		t.Fatalf("oracletest: stepped coverage: %v", err)
	}
	got, err := event.Coverage(duration)
	if err != nil {
		t.Fatalf("oracletest: event-driven coverage: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("oracletest: event-driven coverage diverged from stepped oracle\n got: %+v\nwant: %+v", got, want)
	}
	return want
}

// AssertDetailedCoverageEqual requires DetailedCoverage — per-pair
// intervals and link-transition counts included — to be DeepEqual-identical
// between the two paths.
func AssertDetailedCoverageEqual(t testing.TB, build Builder, p qntn.Params, duration time.Duration) *qntn.CoverageDetail {
	t.Helper()
	stepped, event := Pair(t, build, p)
	want, err := stepped.DetailedCoverage(duration)
	if err != nil {
		t.Fatalf("oracletest: stepped detailed coverage: %v", err)
	}
	got, err := event.DetailedCoverage(duration)
	if err != nil {
		t.Fatalf("oracletest: event-driven detailed coverage: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("oracletest: event-driven detailed coverage diverged from stepped oracle\n got: %+v\nwant: %+v", got, want)
	}
	return want
}

// AssertServeEqual requires RunServe — metrics, fidelity summary, and path
// transmissivities included — to be DeepEqual-identical between the two
// paths.
func AssertServeEqual(t testing.TB, build Builder, p qntn.Params, cfg qntn.ServeConfig) *qntn.ServeResult {
	t.Helper()
	stepped, event := Pair(t, build, p)
	want, err := stepped.RunServe(cfg)
	if err != nil {
		t.Fatalf("oracletest: stepped serve: %v", err)
	}
	got, err := event.RunServe(cfg)
	if err != nil {
		t.Fatalf("oracletest: event-driven serve: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("oracletest: event-driven serve diverged from stepped oracle\n got: %+v\nwant: %+v", got, want)
	}
	return want
}

// AssertIndexEquivalence requires Coverage to be DeepEqual-identical
// between spatial-index candidate generation (the default) and the dense n²
// scan (Params.DisableSpatialIndex), on both the stepped and the
// event-driven execution path. DisableSpatialIndex is the only knob toggled
// between the two builds; on scenarios below the index's node cutoff the
// toggle is a no-op and the assertion is vacuous but still cheap.
func AssertIndexEquivalence(t testing.TB, build Builder, p qntn.Params, duration time.Duration) {
	t.Helper()
	for _, eventDriven := range []bool{false, true} {
		pi := p
		pi.EventDriven = eventDriven
		pi.DisableSpatialIndex = false
		indexed, err := build(pi)
		if err != nil {
			t.Fatalf("oracletest: building indexed scenario: %v", err)
		}
		pd := pi
		pd.DisableSpatialIndex = true
		dense, err := build(pd)
		if err != nil {
			t.Fatalf("oracletest: building dense scenario: %v", err)
		}
		want, err := dense.Coverage(duration)
		if err != nil {
			t.Fatalf("oracletest: dense coverage: %v", err)
		}
		got, err := indexed.Coverage(duration)
		if err != nil {
			t.Fatalf("oracletest: indexed coverage: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("oracletest: spatial index diverged from dense scan (eventDriven=%v)\n got: %+v\nwant: %+v",
				eventDriven, got, want)
		}
	}
}

// AssertAllEqual runs the three experiment assertions back to back and
// requires a non-degenerate run: an oracle that covers zero steps in every
// experiment would vacuously pass, so at least one topology evaluation must
// have happened.
func AssertAllEqual(t testing.TB, build Builder, p qntn.Params, duration time.Duration, cfg qntn.ServeConfig) {
	t.Helper()
	cov := AssertCoverageEqual(t, build, p, duration)
	AssertDetailedCoverageEqual(t, build, p, duration)
	AssertServeEqual(t, build, p, cfg)
	if cov.Steps == 0 {
		t.Fatalf("oracletest: degenerate run: zero coverage steps at duration %v", duration)
	}
}
