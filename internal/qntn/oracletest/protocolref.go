package oracletest

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"
	"time"

	"qntn/internal/netsim"
	"qntn/internal/orbit"
	"qntn/internal/qntn"
	"qntn/internal/quantum/protocol"
	"qntn/internal/routing"
	"qntn/internal/stats"
)

// This file is the slow, obviously-correct scalar reference for the
// entanglement-protocol layer. ReferenceProtocolServe re-derives the
// protocol-enabled serve experiment from first principles — a fresh routing
// snapshot per step (Scenario.Routes, no pooling), clone-and-delete disjoint
// route extraction with the map-packed baseline Dijkstra, and verbatim
// re-implementations of the Werner closed forms and the distillation
// schedule — sharing with the production path only the seed derivation
// (protocol.PairKey / ChainSeed / Draw), which both sides must agree on by
// definition. The differential matrix in the qntn package pins the pooled
// fast path (DisjointScratch, EdgeEtasInto, the byte-fold pair key, the
// insertion-sorted attempt buffer) reflect.DeepEqual-identical to this
// reference across archetypes, fault mixes, both execution engines and
// several worker counts.

// refClampWerner forces a projection fidelity into [1/4, 1], NaN to floor —
// protocol.ClampWerner restated.
func refClampWerner(f float64) float64 {
	if math.IsNaN(f) || f < 0.25 {
		return 0.25
	}
	if f > 1 {
		return 1
	}
	return f
}

// refWernerP is the Werner mixing parameter p = (4F−1)/3.
func refWernerP(w float64) float64 { return (4*w - 1) / 3 }

// refSwapWerner is the Bell-state-measurement composition: mixing
// parameters multiply.
func refSwapWerner(w1, w2 float64) float64 {
	p := refWernerP(refClampWerner(w1)) * refWernerP(refClampWerner(w2))
	return (1 + 3*p) / 4
}

// refDephaseWerner applies both-qubit phase damping over the storage wait:
// g = exp(−2·wait/T2), F = p·(1+g)/2 + (1−p)/4.
func refDephaseWerner(w float64, wait, t2 time.Duration) float64 {
	cw := refClampWerner(w)
	if t2 <= 0 || wait <= 0 {
		return cw
	}
	g := math.Exp(-2 * wait.Seconds() / t2.Seconds())
	p := refWernerP(cw)
	return p*(1+g)/2 + (1-p)/4
}

// refPurifyWerner is one DEJMPS-style recurrence round on Werner inputs.
func refPurifyWerner(w1, w2 float64) (out, pSuccess float64) {
	f1, f2 := refClampWerner(w1), refClampWerner(w2)
	num := f1*f2 + (1-f1)*(1-f2)/9
	den := f1*f2 + f1*(1-f2)/3 + f2*(1-f1)/3 + 5*(1-f1)*(1-f2)/9
	if math.IsNaN(den) || den <= 0 {
		return f1, 0
	}
	return num / den, den
}

// refDistill is the greedy pumping schedule over descending-sorted attempt
// fidelities: bank the best pair, pump each further pair into it, keep
// max(output, bank) on an accepted round, and on a failed round both pairs
// are destroyed so the next attempt becomes the new bank.
func refDistill(att []float64, chainSeed int64) (w float64, ok bool, rounds, accepted int) {
	if len(att) == 0 {
		return 0, false, 0, 0
	}
	bank := att[0]
	valid := true
	var r uint64
	for i := 1; i < len(att); i++ {
		if !valid {
			bank = att[i]
			valid = true
			continue
		}
		fOut, pOK := refPurifyWerner(bank, att[i])
		rounds++
		if protocol.Draw(chainSeed, protocol.PurifyStream, r) < pOK {
			accepted++
			if fOut > bank {
				bank = fOut
			}
		} else {
			valid = false
		}
		r++
	}
	return bank, valid, rounds, accepted
}

// refDisjointPaths is clone-and-delete disjoint route extraction, the same
// procedure the routing package's scratch differential test uses as its
// reference: the primary path first, then repeatedly delete every incident
// edge of consumed interior vertices (and the direct src–dst edge when the
// consumed path is a single hop) and re-run the baseline Dijkstra on −log η
// until the budget is filled or the endpoints disconnect.
func refDisjointPaths(g *routing.Graph, primary []string, k int) ([][]string, error) {
	work := g.Clone()
	src, dst := primary[0], primary[len(primary)-1]
	consume := func(path []string) {
		for i := 1; i+1 < len(path); i++ {
			for _, nb := range work.Neighbors(path[i]) {
				work.RemoveEdge(path[i], nb)
			}
		}
		if len(path) == 2 {
			work.RemoveEdge(src, dst)
		}
	}
	paths := [][]string{primary}
	consume(primary)
	for len(paths) < k {
		res, err := routing.Dijkstra(work, src, routing.NegLogEtaCost(0))
		if err != nil {
			return nil, err
		}
		path, err := res.PathTo(dst)
		if err != nil {
			break // unreachable in the residual graph: done
		}
		paths = append(paths, path)
		consume(path)
	}
	return paths, nil
}

// refProtocolVerdict evaluates the protocol layer for one routed request:
// the naive restatement of the production pipeline. A single-edge route
// bypasses the layer (no memory storage, no swaps); otherwise each disjoint
// route attempts an elementary pair per hop connected by drawn swaps, the
// survivor dephases for the route's heralding latency, and the surviving
// attempts are distilled best-first.
func refProtocolVerdict(sc *qntn.Scenario, g *routing.Graph, path []string, req netsim.Request, at time.Duration) (served bool, fidelity, primaryEta float64, err error) {
	model := sc.Params.FidelityModel
	cfg := sc.Params.Protocol
	if len(path) <= 2 {
		etas, err := g.EdgeEtas(path)
		if err != nil {
			return false, 0, 0, err
		}
		return true, qntn.PathFidelity(etas, model), refProduct(etas), nil
	}
	chainSeed := protocol.ChainSeed(cfg.Seed, protocol.PairKey(req.Src, req.Dst, req.ID, int64(at)))
	paths, err := refDisjointPaths(g, path, cfg.Paths())
	if err != nil {
		return false, 0, 0, err
	}
	var att []float64
	for j, p := range paths {
		etas, err := g.EdgeEtas(p)
		if err != nil {
			return false, 0, 0, err
		}
		if j == 0 {
			primaryEta = refProduct(etas)
		}
		w := refClampWerner(square(qntn.PathFidelity(etas[:1], model)))
		ok := true
		for s := 0; s+1 < len(etas); s++ {
			if protocol.Draw(chainSeed, uint64(j), uint64(s)) >= cfg.SwapSuccess {
				ok = false
				break
			}
			w = refSwapWerner(w, refClampWerner(square(qntn.PathFidelity(etas[s+1:s+2], model))))
		}
		if !ok {
			continue
		}
		// A single-hop attempt (a disjoint alternative that happens to be
		// the direct src–dst edge) never sits in memory waiting for a swap
		// partner, so only multi-hop survivors dephase — mirroring the
		// production pipeline's len(etas) >= 2 guard.
		if len(etas) >= 2 {
			lengthM, err := sc.PathLengthM(p, at)
			if err != nil {
				return false, 0, 0, err
			}
			w = refDephaseWerner(w, sc.HeraldingLatency(lengthM, len(etas)), cfg.MemoryT2)
		}
		att = append(att, w)
	}
	sort.SliceStable(att, func(i, j int) bool { return att[i] > att[j] })
	w, ok, _, _ := refDistill(att, chainSeed)
	if !ok {
		return false, 0, primaryEta, nil
	}
	r := math.Sqrt(refClampWerner(w))
	return true, r, primaryEta, nil
}

func square(f float64) float64 { return f * f }

func refProduct(xs []float64) float64 {
	p := 1.0
	for _, x := range xs {
		p *= x
	}
	return p
}

// ReferenceProtocolServe re-derives the protocol-enabled serve experiment
// naively: the same workload draws and sample instants as RunServe, a fresh
// unpooled routing snapshot per step, and the scalar protocol reference
// above per served request. The result must be reflect.DeepEqual-identical
// to Scenario.RunServe on both execution engines.
func ReferenceProtocolServe(sc *qntn.Scenario, cfg qntn.ServeConfig) (*qntn.ServeResult, error) {
	if cfg.RequestsPerStep <= 0 || cfg.Steps <= 0 {
		return nil, fmt.Errorf("oracletest: serve config requires positive requests and steps")
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = orbit.Day
	}
	res := &qntn.ServeResult{Config: cfg}
	wl, err := qntn.NewWorkload(sc, cfg.Seed)
	if err != nil {
		return nil, err
	}
	gap := cfg.Horizon / time.Duration(cfg.Steps)
	if gap <= 0 {
		gap = sc.Params.TopologyStep()
	}
	var fids, etas []float64
	for step := 0; step < cfg.Steps; step++ {
		at := time.Duration(step) * gap
		tables, graph, err := sc.Routes(at)
		if err != nil {
			return nil, err
		}
		for _, req := range wl.Batch(cfg.RequestsPerStep) {
			out := netsim.Outcome{Request: req, At: at}
			if tables.Reachable(req.Src, req.Dst) {
				path, err := tables.Path(req.Src, req.Dst)
				if err != nil {
					return nil, err
				}
				served, fid, primaryEta, err := refProtocolVerdict(sc, graph, path, req, at)
				if err != nil {
					return nil, err
				}
				if served {
					out.Served = true
					out.Path = path
					out.EndToEndEta = primaryEta
					out.Fidelity = fid
					fids = append(fids, fid)
					etas = append(etas, primaryEta)
				}
			}
			res.Metrics.Record(out)
		}
	}
	res.ServedPercent = 100 * res.Metrics.ServedFraction()
	res.MeanFidelity = res.Metrics.MeanServedFidelity()
	res.FidelitySummary = stats.Summarize(fids)
	res.MeanPathEta = stats.Mean(etas)
	return res, nil
}

// AssertProtocolServeEqual runs the protocol differential for one
// (builder, params, config) point: the stepped fast path, the event-driven
// fast path and the scalar reference must all be DeepEqual-identical. It
// returns the reference result so callers can assert non-degeneracy.
func AssertProtocolServeEqual(t testing.TB, build Builder, p qntn.Params, cfg qntn.ServeConfig) *qntn.ServeResult {
	t.Helper()
	if !p.Protocol.Enabled() {
		t.Fatalf("oracletest: protocol differential needs an enabled Params.Protocol")
	}
	stepped, event := Pair(t, build, p)
	want, err := ReferenceProtocolServe(stepped, cfg)
	if err != nil {
		t.Fatalf("oracletest: scalar protocol reference: %v", err)
	}
	got, err := stepped.RunServe(cfg)
	if err != nil {
		t.Fatalf("oracletest: stepped protocol serve: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("oracletest: stepped protocol serve diverged from scalar reference\n got: %+v\nwant: %+v", got, want)
	}
	gotEvent, err := event.RunServe(cfg)
	if err != nil {
		t.Fatalf("oracletest: event-driven protocol serve: %v", err)
	}
	if !reflect.DeepEqual(gotEvent, want) {
		t.Fatalf("oracletest: event-driven protocol serve diverged from scalar reference\n got: %+v\nwant: %+v", gotEvent, want)
	}
	return want
}
