package qntn

import (
	"fmt"
	"math"
	"sort"
	"time"

	"qntn/internal/geo"
	"qntn/internal/netsim"
	"qntn/internal/orbit"
)

// This file implements the visibility-window precomputation behind the
// event-driven simulation path (see eventloop.go for the engine that
// consumes it). The design principle is exactness by conservative superset:
// for every pair that can ever form a link, the scan produces runs of grid
// steps that provably contain every instant at which the pair's cheap
// candidate predicate — the same horizon test and squared-range gate the
// stepped evaluator uses as prefilters — holds. Instants inside a run are
// evaluated with the exact stepEval physics, so the event-driven results are
// bit-identical to the brute-force stepped path; instants outside a run are
// provably rejected by a prefilter the stepped path would apply too.
//
// The stepped path remains the semantic oracle: the differential test suite
// (oracle_equiv_test.go, package oracletest) asserts DeepEqual equality of
// the two paths across every scenario archetype.

// sampleGrid is the uniform sampling lattice of one simulation run:
// steps instants at(k) = k·gap for k in [0, steps).
type sampleGrid struct {
	gap   time.Duration
	steps int
}

// at returns the instant of grid index k.
func (g sampleGrid) at(k int) time.Duration { return time.Duration(k) * g.gap }

// ceilIndex returns the smallest k with at(k) >= t, clamped to [0, steps].
// Half-open fault spans [Start, End) map to index intervals
// [ceilIndex(Start), ceilIndex(End)) under this rounding.
func (g sampleGrid) ceilIndex(t time.Duration) int {
	if t <= 0 {
		return 0
	}
	k := int((t + g.gap - 1) / g.gap)
	if k > g.steps {
		k = g.steps
	}
	return k
}

// coverageGrid returns the grid Coverage and DetailedCoverage iterate: steps
// at 0, step, …, the largest multiple with at(k)+step <= duration (zero
// steps when the duration is shorter than one step). Both execution paths
// derive their loop bounds from this single definition, pinning the
// off-by-one behavior for durations that are not multiples of the step.
func coverageGrid(step, duration time.Duration) sampleGrid {
	g := sampleGrid{gap: step}
	if duration >= step {
		g.steps = int((duration-step)/step) + 1
	}
	return g
}

// candGateSlack pads the squared-range candidate gates by a relative margin
// dwarfing float rounding, so a pair the exact evaluator computes at a few
// ulps inside its gate can never fall outside the candidate set. (The gates
// already carry MaxUsableRangeM2's own conservative margin; the slack makes
// the superset property independent of it.)
const candGateSlack = 1e-9

// idxRun is an inclusive run [lo, hi] of grid indices.
type idxRun struct{ lo, hi int }

// runBuilder accumulates maximal runs from a strictly increasing sequence of
// observed indices.
type runBuilder struct {
	lo, hi int
	runs   []idxRun
}

func newRunBuilder() runBuilder { return runBuilder{lo: -1} }

// observe records index k as candidate-true; ks must strictly increase.
func (rb *runBuilder) observe(k int) {
	if rb.lo < 0 {
		rb.lo, rb.hi = k, k
		return
	}
	if k == rb.hi+1 {
		rb.hi = k
		return
	}
	rb.runs = append(rb.runs, idxRun{rb.lo, rb.hi})
	rb.lo, rb.hi = k, k
}

// finish flushes the open run and returns the accumulated runs.
func (rb *runBuilder) finish() []idxRun {
	if rb.lo >= 0 {
		rb.runs = append(rb.runs, idxRun{rb.lo, rb.hi})
		rb.lo = -1
	}
	return rb.runs
}

// mergeRuns sorts runs by lo and merges overlapping or adjacent ones, so the
// result is strictly ordered with gaps of at least two indices.
func mergeRuns(runs []idxRun) []idxRun {
	if len(runs) < 2 {
		return runs
	}
	sort.Slice(runs, func(a, b int) bool { return runs[a].lo < runs[b].lo })
	out := runs[:1]
	for _, r := range runs[1:] {
		last := &out[len(out)-1]
		if r.lo <= last.hi+1 {
			if r.hi > last.hi {
				last.hi = r.hi
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}

// candPair is one windowed node pair plus its candidate predicate: for
// ground↔relay pairs the ground host's horizon test and the padded
// squared-range gate; for relay↔relay pairs the gate alone. For horizon
// pairs i is always the ground host (the frame owner) and j the relay.
type candPair struct {
	i, j    int
	gate    float64
	horizon bool
	frame   geo.Frame
}

// pairCandidate evaluates the candidate predicate on explicit positions.
func pairCandidate(p *candPair, pi, pj geo.Vec3) bool {
	if p.horizon && !p.frame.AboveHorizon(pj) {
		return false
	}
	d := pj.Sub(pi)
	return d.Dot(d) <= p.gate
}

// elementsProvider is implemented by satellite nodes that can expose their
// orbital elements (netsim.SatelliteNode, cachedSatellite). A zero-value
// Elements return (sheet replay) yields no speed bound, forcing dense scans.
type elementsProvider interface{ Elements() orbit.Elements }

func nodeElements(nd netsim.Node) (orbit.Elements, bool) {
	ep, ok := nd.(elementsProvider)
	if !ok {
		return orbit.Elements{}, false
	}
	return ep.Elements(), true
}

// windowScan holds the precomputed candidate runs of one scenario on one
// grid, plus the memoized moving-node positions the event engine replays
// when refreshing evaluator caches.
type windowScan struct {
	sc    *Scenario
	nodes []netsim.Node
	grid  sampleGrid

	// static marks nodes whose position the evaluator treats as fixed:
	// ground hosts, HAP platforms, and any Ground-kind node (the stepped
	// evaluator freezes ground positions at t = 0).
	static    []bool
	staticPos []geo.Vec3
	slot      []int // node index -> slot in pos, -1 for static nodes
	movers    []int // node indices of moving nodes
	pos       [][]geo.Vec3
	filled    [][]bool

	pairs []candPair
	runs  [][]idxRun // aligned with pairs; merged, ordered, gaps >= 2

	// Per-mover memo of the three analytic fit samples (see analyticRuns):
	// every same-altitude pair shares the same sample instants, so each
	// node needs propagating only once per rate, not once per pair.
	aRate float64
	aPos  [][3]geo.Vec3
	aHave []bool

	// Mover-pair spatial sweep state (see sweepMoverPairs): a strided pass
	// over the grid binning movers into sweepGrid and marking, in pairMark,
	// every mover-ordinal pair that ever comes within the inflated range
	// shell. Unmarked pairs of speed-bounded movers are provably windowless
	// and scanMovingMoving skips them. wild marks movers without a usable
	// speed bound, whose pairs are always scanned.
	sweepGrid    pairGrid
	pairMark     []uint64
	wild         []bool
	sweepScratch []int32
}

// analyticSamples returns moving node i's positions at the three analytic
// fit instants t(m) = m·(π/2)/rate, memoized per (node, rate).
func (ws *windowScan) analyticSamples(i int, rate float64) [3]geo.Vec3 {
	if ws.aRate != rate {
		ws.aRate = rate
		clear(ws.aHave)
	}
	s := ws.slot[i]
	if !ws.aHave[s] {
		for m := 0; m < 3; m++ {
			t := time.Duration(float64(m) * (math.Pi / 2) / rate * float64(time.Second))
			ws.aPos[s][m] = ws.nodes[i].PositionAt(t)
		}
		ws.aHave[s] = true
	}
	return ws.aPos[s]
}

// scanWindows classifies the nodes and computes the candidate runs of every
// pair that can ever link (fiber pairs are static and handled separately by
// the event engine).
func (sc *Scenario) scanWindows(nodes []netsim.Node, grid sampleGrid) *windowScan {
	ws := &windowScan{}
	ws.scan(sc, nodes, grid)
	return ws
}

// scan (re)computes the window state into ws, reusing its backing arrays —
// pooled engines replay many runs per scenario, and the position-memo slabs
// dominate a fresh scan's allocations.
func (ws *windowScan) scan(sc *Scenario, nodes []netsim.Node, grid sampleGrid) {
	n := len(nodes)
	ws.sc, ws.nodes, ws.grid = sc, nodes, grid
	ws.static = grow(ws.static, n)
	ws.staticPos = grow(ws.staticPos, n)
	ws.slot = grow(ws.slot, n)
	ws.movers = ws.movers[:0]
	ws.pairs = ws.pairs[:0]
	ws.runs = ws.runs[:0]
	for i, nd := range nodes {
		ws.slot[i] = -1
		switch nd.(type) {
		case *netsim.GroundHost, *netsim.HAPNode:
			ws.static[i] = true
		default:
			ws.static[i] = nd.Kind() == netsim.Ground
		}
		if ws.static[i] {
			ws.staticPos[i] = nd.PositionAt(0)
		} else {
			ws.slot[i] = len(ws.movers)
			ws.movers = append(ws.movers, i)
		}
	}
	if grid.steps == 0 {
		return
	}
	ws.aRate = 0
	ws.aPos = grow(ws.aPos, len(ws.movers))
	ws.aHave = grow(ws.aHave, len(ws.movers))
	clear(ws.aHave)
	ws.pos = grow(ws.pos, len(ws.movers))
	ws.filled = grow(ws.filled, len(ws.movers))
	for s := range ws.pos {
		ws.pos[s] = grow(ws.pos[s], grid.steps)
		if f := ws.filled[s]; cap(f) >= grid.steps {
			f = f[:grid.steps]
			clear(f)
			ws.filled[s] = f
		} else {
			ws.filled[s] = make([]bool, grid.steps)
		}
	}
	ws.scanStaticStatic()
	ws.scanMovingStatic()
	ws.scanMovingMoving()
}

// posAt returns the memoized position of moving node i at grid index k.
//
//qntn:hotpath
func (ws *windowScan) posAt(i, k int) geo.Vec3 {
	s := ws.slot[i]
	if ws.filled[s][k] {
		return ws.pos[s][k]
	}
	p := ws.nodes[i].PositionAt(ws.grid.at(k))
	ws.pos[s][k] = p
	ws.filled[s][k] = true
	return p
}

// posOf returns node i's position at an arbitrary instant, honoring the
// evaluator's static-node convention.
func (ws *windowScan) posOf(i int, t time.Duration) geo.Vec3 {
	if ws.static[i] {
		return ws.staticPos[i]
	}
	return ws.nodes[i].PositionAt(t)
}

func (ws *windowScan) addPair(p candPair, runs []idxRun) {
	ws.pairs = append(ws.pairs, p)
	ws.runs = append(ws.runs, runs)
}

// relayGroundGate returns the padded candidate gate for a ground↔relay pair
// by relay kind, and whether such a link is possible at all.
func (ws *windowScan) relayGroundGate(relayKind netsim.NodeKind) (float64, bool) {
	switch relayKind {
	case netsim.Satellite:
		return ws.sc.spaceMaxRangeM2 * (1 + candGateSlack), true
	case netsim.HAP:
		return ws.sc.hapMaxRangeM2 * (1 + candGateSlack), true
	}
	return 0, false
}

// scanStaticStatic windows the ground-host ↔ HAP pairs, whose geometry never
// changes: the candidate predicate at the frozen geometry decides between a
// full-span run and no window at all. (Ground↔ground is fiber; HAP↔HAP and
// ground-kind nodes without a GroundHost never link.)
func (ws *windowScan) scanStaticStatic() {
	full := idxRun{0, ws.grid.steps - 1}
	gate, _ := ws.relayGroundGate(netsim.HAP)
	for i, a := range ws.nodes {
		if !ws.static[i] || a.Kind() != netsim.Ground {
			continue
		}
		gh, ok := a.(*netsim.GroundHost)
		if !ok {
			continue
		}
		frame := geo.NewFrame(gh.LLA())
		for j, b := range ws.nodes {
			if !ws.static[j] || b.Kind() != netsim.HAP {
				continue
			}
			p := candPair{i: i, j: j, gate: gate, horizon: true, frame: frame}
			if pairCandidate(&p, ws.staticPos[i], ws.staticPos[j]) {
				ws.addPair(p, []idxRun{full})
			}
		}
	}
}

// scanMovingStatic windows every moving relay against the static nodes with
// one Lipschitz-adaptive walk per mover: all static targets are clustered
// (centroid + radius), and whenever the mover's distance to the centroid
// exceeds sqrt(maxGate) + radius, the walk skips ahead by the number of
// steps the mover's bounded speed provably cannot close the gap in — every
// skipped step is candidate-false for every target because the range gate
// alone already fails. In-reach steps check each target's full predicate.
func (ws *windowScan) scanMovingStatic() {
	type target struct {
		idx    int
		ground bool
		frame  geo.Frame
		pos    geo.Vec3
	}
	var targets []target
	for i, nd := range ws.nodes {
		if !ws.static[i] {
			continue
		}
		switch nd.Kind() {
		case netsim.Ground:
			gh, ok := nd.(*netsim.GroundHost)
			if !ok {
				continue // custom ground nodes have no uplink frame
			}
			targets = append(targets, target{idx: i, ground: true, frame: geo.NewFrame(gh.LLA()), pos: ws.staticPos[i]})
		case netsim.HAP:
			targets = append(targets, target{idx: i, pos: ws.staticPos[i]})
		}
	}
	if len(targets) == 0 {
		return
	}
	var c geo.Vec3
	for _, tg := range targets {
		c = c.Add(tg.pos)
	}
	c = c.Scale(1 / float64(len(targets)))
	radius := 0.0
	for _, tg := range targets {
		if d := tg.pos.Distance(c); d > radius {
			radius = d
		}
	}
	gapS := ws.grid.gap.Seconds()
	type check struct {
		pair candPair
		rb   runBuilder
	}
	for _, mi := range ws.movers {
		mk := ws.nodes[mi].Kind()
		var checks []check
		maxGate := 0.0
		for _, tg := range targets {
			var p candPair
			if tg.ground {
				gate, ok := ws.relayGroundGate(mk)
				if !ok {
					continue
				}
				p = candPair{i: tg.idx, j: mi, gate: gate, horizon: true, frame: tg.frame}
			} else {
				if mk != netsim.Satellite {
					continue // moving HAP ↔ static HAP never links
				}
				p = candPair{i: tg.idx, j: mi, gate: ws.sc.satHAPMaxRangeM2 * (1 + candGateSlack)}
			}
			if p.gate > maxGate {
				maxGate = p.gate
			}
			checks = append(checks, check{pair: p, rb: newRunBuilder()})
		}
		if len(checks) == 0 {
			continue
		}
		v := 0.0
		if elems, ok := nodeElements(ws.nodes[mi]); ok {
			v = elems.MaxSpeedMPerS()
		}
		reach := math.Sqrt(maxGate) + radius
		for k := 0; k < ws.grid.steps; {
			p := ws.posAt(mi, k)
			if d := p.Distance(c); d > reach {
				skip := 1
				if v > 0 && gapS > 0 {
					if s := int((d - reach) / (v * gapS)); s > 1 {
						skip = s
					}
				}
				k += skip
				continue
			}
			for ci := range checks {
				ch := &checks[ci]
				if pairCandidate(&ch.pair, ws.staticPos[ch.pair.i], p) {
					ch.rb.observe(k)
				}
			}
			k++
		}
		for ci := range checks {
			if runs := checks[ci].rb.finish(); len(runs) > 0 {
				ws.addPair(checks[ci].pair, runs)
			}
		}
	}
}

// scanMovingMoving windows the relay↔relay pairs: analytically for circular
// same-altitude two-body satellite pairs (the paper's constellations),
// otherwise by a pairwise Lipschitz walk. At constellation scale the spatial
// sweep first marks the pairs that ever come near range; unmarked pairs of
// speed-bounded movers are provably windowless and are skipped, which turns
// the quadratic per-pair scan into work near-linear in visible pairs.
func (ws *windowScan) scanMovingMoving() {
	swept := ws.sweepMoverPairs()
	for a := 0; a < len(ws.movers); a++ {
		for b := a + 1; b < len(ws.movers); b++ {
			if swept && !ws.wild[a] && !ws.wild[b] && !ws.pairMarked(a, b) {
				continue
			}
			ws.scanMovingPair(ws.movers[a], ws.movers[b])
		}
	}
}

// moverSweepMinMovers is the mover count below which scanMovingMoving keeps
// the plain quadratic loop — the sweep's setup costs more than it saves.
// Package variable so tests can force the sweep on small scenarios.
var moverSweepMinMovers = 24

// sweepMoverPairs runs the strided spatial sweep and reports whether the
// pairMark bitmap is valid.
//
// Correctness: suppose a speed-bounded mover pair produces a run. Then some
// instant t* ∈ [−padS, durS+padS] (seconds) has pair distance within
// sqrt(gate+eps) — pairwiseRuns observes a grid instant with d² ≤ gate, and
// an analyticRuns run exists only when a sub-(gate+eps) arc of the
// continuous distance intersects the padded horizon, with padS = gapS/8+1e-6
// matching analyticRuns' pad and eps ≤ 4e-9·a² its fit slack. The sweep
// samples every stride-th grid instant, so some sampled t0 has
// |t*−t0| ≤ stride·gapS + padS, during which each endpoint moves at most
// vmax·|t*−t0|. The pair's sampled distance is therefore at most
//
//	sqrt(gate) + sqrt(eps) + 2·vmax·(stride·gapS + padS) < reach,
//
// and sweepGrid's cell edge is at least reach, so the pair differs by at
// most one cell per axis at t0 and neighborsAfter marks it. Contrapositive:
// unmarked speed-bounded pairs have no run, and skipping them leaves the
// window set — and hence every event-driven result — identical.
func (ws *windowScan) sweepMoverPairs() bool {
	m := len(ws.movers)
	if m < moverSweepMinMovers || ws.sc.Params.DisableSpatialIndex || ws.grid.steps == 0 {
		return false
	}
	ws.wild = grow(ws.wild, m)
	sats, haps := 0, 0
	vmax, maxNorm := 0.0, 0.0
	for s, i := range ws.movers {
		switch ws.nodes[i].Kind() {
		case netsim.Satellite:
			sats++
		case netsim.HAP:
			haps++
		}
		wild := true
		if elems, ok := nodeElements(ws.nodes[i]); ok {
			if v := elems.MaxSpeedMPerS(); v > 0 {
				wild = false
				if v > vmax {
					vmax = v
				}
			}
		}
		ws.wild[s] = wild
		if nm := ws.nodes[i].PositionAt(0).Norm(); nm > maxNorm {
			maxNorm = nm
		}
	}
	// The widest gate any mover pair can use; a non-finite applicable gate
	// means distance never proves a pair windowless.
	maxGate := 0.0
	if sats >= 2 {
		maxGate = ws.sc.spaceMaxRangeM2
	}
	if haps >= 1 && sats >= 1 && ws.sc.satHAPMaxRangeM2 > maxGate {
		maxGate = ws.sc.satHAPMaxRangeM2
	}
	gapS := ws.grid.gap.Seconds()
	if !(maxGate > 0) || math.IsInf(maxGate, 1) || vmax <= 0 || gapS <= 0 {
		return false
	}
	padS := gapS/8 + 1e-6
	stride := int(math.Sqrt(maxGate) / (2 * vmax * gapS))
	if stride < 1 {
		stride = 1
	}
	if stride > 64 {
		stride = 64
	}
	// 7e-5·maxNorm dominates sqrt(eps) = sqrt(4e-9)·a for every circular
	// pair (a ≤ maxNorm); the relative factor and +1 m absorb float
	// rounding against the exact gates.
	reach := math.Sqrt(maxGate)*(1+1e-6) + 7e-5*maxNorm + 2*vmax*(float64(stride)*gapS+padS) + 1.0
	g := &ws.sweepGrid
	g.configure(reach, maxNorm)
	words := (m*m + 63) / 64
	ws.pairMark = grow(ws.pairMark, words)
	clear(ws.pairMark)
	g.beginBuild(m)
	for k := 0; k < ws.grid.steps; k += stride {
		for s, i := range ws.movers {
			g.cell[s] = g.cellIndex(ws.posAt(i, k))
		}
		g.finishBuild(m)
		for a := 0; a < m; a++ {
			nbrs := g.neighborsAfter(int32(a), ws.sweepScratch[:0])
			for _, b := range nbrs {
				id := a*m + int(b)
				ws.pairMark[id>>6] |= 1 << (id & 63)
			}
			ws.sweepScratch = nbrs
		}
	}
	return true
}

// pairMarked reports whether mover-ordinal pair (a, b), a < b, was marked by
// the sweep.
func (ws *windowScan) pairMarked(a, b int) bool {
	id := a*len(ws.movers) + b
	return ws.pairMark[id>>6]&(1<<(id&63)) != 0
}

// analyticCircularPair reports whether the pair's squared distance is the
// exact single-harmonic form analyticRuns assumes.
func analyticCircularPair(a, b orbit.Elements) bool {
	return a.Eccentricity == 0 && b.Eccentricity == 0 &&
		!a.ApplyJ2 && !b.ApplyJ2 &&
		a.SemiMajorAxisM == b.SemiMajorAxisM &&
		a.SemiMajorAxisM > geo.EarthRadiusM
}

func (ws *windowScan) scanMovingPair(i, j int) {
	ki, kj := ws.nodes[i].Kind(), ws.nodes[j].Kind()
	var gate float64
	switch {
	case ki == netsim.Satellite && kj == netsim.Satellite:
		if ws.sc.islAdj != nil && !ws.sc.islAllowedID(ws.nodes[i].ID(), ws.nodes[j].ID()) {
			return // the ISL grid topology forbids this pair outright
		}
		gate = ws.sc.spaceMaxRangeM2 * (1 + candGateSlack)
	case (ki == netsim.Satellite && kj == netsim.HAP) || (ki == netsim.HAP && kj == netsim.Satellite):
		gate = ws.sc.satHAPMaxRangeM2 * (1 + candGateSlack)
	default:
		return // HAP↔HAP (and unknown kinds) never link
	}
	p := candPair{i: i, j: j, gate: gate}
	ei, oki := nodeElements(ws.nodes[i])
	ej, okj := nodeElements(ws.nodes[j])
	var runs []idxRun
	if oki && okj && analyticCircularPair(ei, ej) {
		runs = ws.analyticRuns(i, j, ei, gate)
	} else {
		runs = ws.pairwiseRuns(i, j, gate)
	}
	if len(runs) > 0 {
		ws.addPair(p, runs)
	}
}

// analyticRuns computes the candidate runs of a circular same-altitude
// two-body satellite pair in closed form. Both positions are unit vectors
// rotating at the shared mean motion n, scaled by the semi-major axis, so
// their dot product contains only a constant and a 2n harmonic and the
// squared ECI distance is exactly d²(t) = D0 + X·cos(2nt) + Y·sin(2nt); the
// ECEF rotation preserves distances, so the ECEF form is identical. Three
// samples at 2nt ∈ {0, π/2, π} recover the coefficients and the sub-gate
// arcs follow from acos. The fit slack and the time pad keep the runs a
// conservative superset of the true candidate set — the engine re-evaluates
// every in-window instant exactly, so padding costs work, never correctness.
func (ws *windowScan) analyticRuns(i, j int, e orbit.Elements, gate float64) []idxRun {
	rate := 2 * e.MeanMotion()
	pi, pj := ws.analyticSamples(i, rate), ws.analyticSamples(j, rate)
	var s [3]float64
	for m := 0; m < 3; m++ {
		d := pj[m].Sub(pi[m])
		s[m] = d.Dot(d)
	}
	d0 := (s[0] + s[2]) / 2
	x := s[0] - d0
	y := s[1] - d0
	r := math.Hypot(x, y)
	eps := 4e-9 * e.SemiMajorAxisM * e.SemiMajorAxisM
	steps := ws.grid.steps
	if d0-r > gate+eps {
		return nil // the pair never comes within range
	}
	if d0+r <= gate+eps {
		return []idxRun{{0, steps - 1}} // the pair never leaves range
	}
	// The candidate condition d²(t) <= gate+eps is cos(2nt−ψ) <= c, whose
	// solutions are the arcs 2nt−ψ ∈ [w, 2π−w] (mod 2π).
	c := (gate + eps - d0) / r
	if c < -1 {
		c = -1
	} else if c > 1 {
		c = 1
	}
	w := math.Acos(c)
	psi := math.Atan2(y, x)
	gapS := ws.grid.gap.Seconds()
	padS := gapS/8 + 1e-6
	durS := ws.grid.at(steps - 1).Seconds()
	twoPi := 2 * math.Pi
	var runs []idxRun
	mStart := int(math.Floor(((-padS)*rate-psi-(twoPi-w))/twoPi)) - 1
	for m := mStart; ; m++ {
		start := (w + psi + twoPi*float64(m)) / rate
		end := (twoPi - w + psi + twoPi*float64(m)) / rate
		if start > durS+padS {
			break
		}
		if end < -padS {
			continue
		}
		lo := int(math.Ceil((start - padS) / gapS))
		hi := int(math.Floor((end + padS) / gapS))
		if lo < 0 {
			lo = 0
		}
		if hi > steps-1 {
			hi = steps - 1
		}
		if lo <= hi {
			runs = append(runs, idxRun{lo, hi})
		}
	}
	return mergeRuns(runs)
}

// pairwiseRuns is the dense fallback for moving pairs without the analytic
// form: a Lipschitz walk on the pair's own distance, skipping ahead when the
// combined speed bound proves the gate cannot close in time. Without bounds
// for both nodes (sheet replay, custom nodes) every step is checked.
func (ws *windowScan) pairwiseRuns(i, j int, gate float64) []idxRun {
	v := 0.0
	ei, oki := nodeElements(ws.nodes[i])
	ej, okj := nodeElements(ws.nodes[j])
	if oki && okj {
		vi, vj := ei.MaxSpeedMPerS(), ej.MaxSpeedMPerS()
		if vi > 0 && vj > 0 {
			v = vi + vj
		}
	}
	gapS := ws.grid.gap.Seconds()
	reach := math.Sqrt(gate)
	rb := newRunBuilder()
	for k := 0; k < ws.grid.steps; {
		d := ws.posAt(j, k).Sub(ws.posAt(i, k))
		d2 := d.Dot(d)
		if d2 <= gate {
			rb.observe(k)
			k++
			continue
		}
		skip := 1
		if v > 0 && gapS > 0 {
			if s := int((math.Sqrt(d2) - reach) / (v * gapS)); s > 1 {
				skip = s
			}
		}
		k += skip
	}
	return rb.finish()
}

// candAt evaluates pair p's candidate predicate at an arbitrary instant —
// the refinement and property-test probe.
func (ws *windowScan) candAt(p int, t time.Duration) bool {
	pr := &ws.pairs[p]
	return pairCandidate(pr, ws.posOf(pr.i, t), ws.posOf(pr.j, t))
}

// Window is one refined visibility window. Start is an instant at which the
// candidate predicate holds, with a predicate sign change bracketed within
// windowRefineTol below it (unless ClippedStart: the window was already open
// at t = 0). End is the first located instant at which the predicate no
// longer holds, again within windowRefineTol of the true crossing (unless
// ClippedEnd: the window was still open at the evaluation horizon).
type Window struct {
	Start        time.Duration
	End          time.Duration
	ClippedStart bool
	ClippedEnd   bool
}

// PairWindows lists the refined visibility windows of one node pair, sorted
// and non-overlapping.
type PairWindows struct {
	A, B    string
	Windows []Window
}

// windowRefineTol is the bisection tolerance of window refinement.
const windowRefineTol = time.Millisecond

// bisect refines a predicate crossing inside (lo, hi]. For rising crossings
// the predicate is false at lo and true at hi; for falling crossings true at
// lo and false at hi. Either way the invariant is maintained and hi is
// returned once the bracket is within windowRefineTol.
func (ws *windowScan) bisect(p int, lo, hi time.Duration, rising bool) time.Duration {
	for hi-lo > windowRefineTol {
		mid := lo + (hi-lo)/2
		if ws.candAt(p, mid) == rising {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// refinePair converts pair p's candidate runs into refined windows. Runs are
// conservative supersets, so each endpoint first snaps to the outermost
// predicate-true grid index (padding-only runs vanish) and then bisects into
// the adjacent grid gap, which brackets a sign change by construction.
func (ws *windowScan) refinePair(p int, duration time.Duration) []Window {
	var out []Window
	for _, r := range ws.runs[p] {
		firstK, lastK := -1, -1
		for k := r.lo; k <= r.hi; k++ {
			if ws.candAt(p, ws.grid.at(k)) {
				firstK = k
				break
			}
		}
		if firstK < 0 {
			continue
		}
		for k := r.hi; k >= firstK; k-- {
			if ws.candAt(p, ws.grid.at(k)) {
				lastK = k
				break
			}
		}
		var w Window
		if firstK == 0 {
			w.ClippedStart = true
		} else {
			w.Start = ws.bisect(p, ws.grid.at(firstK-1), ws.grid.at(firstK), true)
		}
		if lastK == ws.grid.steps-1 {
			w.End, w.ClippedEnd = duration, true
		} else {
			w.End = ws.bisect(p, ws.grid.at(lastK), ws.grid.at(lastK+1), false)
		}
		out = append(out, w)
	}
	return out
}

// VisibilityWindows computes the refined visibility windows of every node
// pair that can link during the given horizon, on the scenario's coverage
// grid (one sample per StepInterval). Windows are sorted and non-overlapping
// per pair and lie within [0, duration]; pairs are sorted by ID. Fiber pairs
// are omitted (their connectivity is static).
func (sc *Scenario) VisibilityWindows(duration time.Duration) ([]PairWindows, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("qntn: non-positive windows duration %v", duration)
	}
	nodes := sc.Net.Nodes()
	ws := sc.scanWindows(nodes, coverageGrid(sc.Params.StepInterval, duration))
	var out []PairWindows
	for p := range ws.pairs {
		wins := ws.refinePair(p, duration)
		if len(wins) == 0 {
			continue
		}
		out = append(out, PairWindows{
			A:       nodes[ws.pairs[p].i].ID(),
			B:       nodes[ws.pairs[p].j].ID(),
			Windows: wins,
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].A != out[b].A {
			return out[a].A < out[b].A
		}
		return out[a].B < out[b].B
	})
	return out, nil
}
