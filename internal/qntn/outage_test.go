package qntn

import (
	"math"
	"testing"
	"time"
)

func TestOutageZeroProbabilityAlwaysAvailable(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cov, err := sc.Coverage(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Percent() != 100 {
		t.Fatalf("no-outage coverage %.2f%%", cov.Percent())
	}
}

func TestOutageFrequencyMatchesProbability(t *testing.T) {
	p := DefaultParams()
	p.HAPOutageProbability = 0.2
	sc, err := NewAirGround(p)
	if err != nil {
		t.Fatal(err)
	}
	cov, err := sc.Coverage(12 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Coverage should track availability: ≈80% within sampling noise.
	if got := cov.Percent(); math.Abs(got-80) > 4 {
		t.Fatalf("coverage %.2f%% with 20%% outage, want ≈80%%", got)
	}
	// Outages fragment the day into many intervals.
	if len(cov.Intervals) < 20 {
		t.Fatalf("only %d intervals — outages not fragmenting coverage", len(cov.Intervals))
	}
}

func TestOutageDeterministic(t *testing.T) {
	p := DefaultParams()
	p.HAPOutageProbability = 0.3
	sc1, err := NewAirGround(p)
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := NewAirGround(p)
	if err != nil {
		t.Fatal(err)
	}
	host := sc1.GroundIDs[NetworkTTU][0]
	for at := time.Duration(0); at < 2*time.Hour; at += 30 * time.Second {
		_, ok1 := sc1.EvaluateLink(host, HAPID, at)
		_, ok2 := sc2.EvaluateLink(host, HAPID, at)
		if ok1 != ok2 {
			t.Fatalf("outage pattern not deterministic at %v", at)
		}
	}
}

func TestOutageSeedChangesPattern(t *testing.T) {
	p := DefaultParams()
	p.HAPOutageProbability = 0.3
	scA, err := NewAirGround(p)
	if err != nil {
		t.Fatal(err)
	}
	p.OutageSeed = 12345
	scB, err := NewAirGround(p)
	if err != nil {
		t.Fatal(err)
	}
	host := scA.GroundIDs[NetworkTTU][0]
	same := true
	for at := time.Duration(0); at < 4*time.Hour; at += 30 * time.Second {
		_, ok1 := scA.EvaluateLink(host, HAPID, at)
		_, ok2 := scB.EvaluateLink(host, HAPID, at)
		if ok1 != ok2 {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical outage patterns")
	}
}

func TestOutageDoesNotAffectSatellites(t *testing.T) {
	p := DefaultParams()
	p.HAPOutageProbability = 1 // HAPs always down
	space, err := NewSpaceGround(108, p)
	if err != nil {
		t.Fatal(err)
	}
	cov, err := space.Coverage(2 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Percent() <= 0 {
		t.Fatal("satellite links must ignore HAP outage probability")
	}
	// And a fully-out HAP yields zero air-ground coverage.
	air, err := NewAirGround(p)
	if err != nil {
		t.Fatal(err)
	}
	airCov, err := air.Coverage(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if airCov.Percent() != 0 {
		t.Fatalf("always-out HAP still covers %.2f%%", airCov.Percent())
	}
}

func TestOutageProbabilityValidation(t *testing.T) {
	p := DefaultParams()
	p.HAPOutageProbability = -0.1
	if err := p.Validate(); err == nil {
		t.Fatal("negative outage probability accepted")
	}
	p.HAPOutageProbability = 1.5
	if err := p.Validate(); err == nil {
		t.Fatal("outage probability above 1 accepted")
	}
}
