package qntn

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"qntn/internal/fault"
)

// faultyParams is the shared fault mix for the equivalence suite: platform
// outages on every kind plus attenuating weather, aggressive enough that
// every gate fires within a short window.
func faultyParams(seed int64) Params {
	p := fastSweepParams()
	p.Fault = fault.Config{
		SatMTBF: 2 * time.Hour, SatMTTR: 20 * time.Minute,
		HAPMTBF: 3 * time.Hour, HAPMTTR: 30 * time.Minute,
		GroundMTBF: 6 * time.Hour, GroundMTTR: 15 * time.Minute,
		WeatherP: 0.2, WeatherAttenuation: 0.5,
		Seed: seed,
	}
	return p
}

// TestFaultDisabledLeavesModelUndecorated: a zero fault config must not
// install the decorator at all — fault-free runs stay byte-identical to the
// baseline by construction, not by equivalence of two code paths.
func TestFaultDisabledLeavesModelUndecorated(t *testing.T) {
	sc, err := NewSpaceGround(6, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, wrapped := sc.Net.Model().(*fault.Model); wrapped {
		t.Fatal("zero fault config installed the fault decorator")
	}
	fsc, err := NewSpaceGround(6, faultyParams(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, wrapped := fsc.Net.Model().(*fault.Model); !wrapped {
		t.Fatal("enabled fault config did not install the fault decorator")
	}
}

// TestFaultIdleDecoratorIsIdentity: even when the decorator IS installed
// but the schedule contains no outages and no weather, every graph must be
// DeepEqual to the undecorated baseline — the wrapper adds gating, never
// physics.
func TestFaultIdleDecoratorIsIdentity(t *testing.T) {
	p := DefaultParams()
	base, err := NewSpaceGround(12, p)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := NewSpaceGround(12, p)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := fault.NewSchedule(fault.Config{Seed: 9}, wrapped.Net.Nodes())
	if err != nil {
		t.Fatal(err)
	}
	wrapped.Net.SetModel(fault.NewModel(scenarioModel{wrapped}, sched, p.TransmissivityThreshold))
	for s := 0; s < 40; s++ {
		at := time.Duration(s) * 4 * time.Minute
		want, err := base.Graph(at)
		if err != nil {
			t.Fatal(err)
		}
		got, err := wrapped.Graph(at)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("t=%v: idle fault decorator changed the graph\ngot:  %v\nwant: %v",
				at, edgeMap(got), edgeMap(want))
		}
	}
}

// TestFaultSnapshotFastPathMatchesReference extends the PR-3 bit-identity
// contract to faulted scenarios: the pooled batched evaluator, the reused
// arena graph, and independent per-pair EvaluateLink calls must agree on
// every edge at every instant while platforms fail and weather rolls in.
func TestFaultSnapshotFastPathMatchesReference(t *testing.T) {
	t.Run("space-ground-12", func(t *testing.T) {
		sc, err := NewSpaceGround(12, faultyParams(7))
		if err != nil {
			t.Fatal(err)
		}
		assertStepEquivalence(t, sc, 80, 5*time.Minute)
	})
	t.Run("air-ground", func(t *testing.T) {
		p := faultyParams(3)
		p.HAPOutageProbability = 0.2 // stack the legacy outage model under the fault layer
		sc, err := NewAirGround(p)
		if err != nil {
			t.Fatal(err)
		}
		assertStepEquivalence(t, sc, 80, 6*time.Minute)
	})
	t.Run("hybrid-12", func(t *testing.T) {
		sc, err := NewHybrid(12, faultyParams(5))
		if err != nil {
			t.Fatal(err)
		}
		assertStepEquivalence(t, sc, 60, 7*time.Minute)
	})
}

// TestFaultSweepWorkerCountInvariance: fault-injected sweeps are a pure
// function of (params, sizes, config), not of how the time axis is chunked
// across workers.
func TestFaultSweepWorkerCountInvariance(t *testing.T) {
	p := faultyParams(11)
	sizes := []int{6, 24}

	covBase, err := CoverageSweepParallel(p, sizes, 4*time.Hour, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ServeConfig{RequestsPerStep: 6, Steps: 5, Horizon: 2 * time.Hour, Seed: 2}
	srvBase, err := ServeSweepParallel(p, sizes, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		cov, err := CoverageSweepParallel(p, sizes, 4*time.Hour, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(covBase, cov) {
			t.Errorf("faulted coverage sweep at %d workers diverged from 1 worker", workers)
		}
		srv, err := ServeSweepParallel(p, sizes, cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(srvBase, srv) {
			t.Errorf("faulted serve sweep at %d workers diverged from 1 worker", workers)
		}
	}
}

// TestFaultRunsAreReproducible: two independently assembled scenarios with
// the same fault seed produce identical coverage; a different seed moves
// the outages.
func TestFaultRunsAreReproducible(t *testing.T) {
	a, err := NewSpaceGround(24, faultyParams(13))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSpaceGround(24, faultyParams(13))
	if err != nil {
		t.Fatal(err)
	}
	resA, err := a.Coverage(6 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := b.Coverage(6 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resA, resB) {
		t.Error("same fault seed produced different coverage results")
	}

	c, err := NewSpaceGround(24, faultyParams(14))
	if err != nil {
		t.Fatal(err)
	}
	resC, err := c.Coverage(6 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(resA, resC) {
		t.Error("different fault seeds produced identical coverage results")
	}
}

// TestFaultDegradesAirGroundCoverage: the HAP architecture covers 100% of
// the window fault-free; with the HAP failing hard it cannot.
func TestFaultDegradesAirGroundCoverage(t *testing.T) {
	clean, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cleanRes, err := clean.Coverage(12 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	p := DefaultParams()
	p.Fault = fault.AtIntensity(0.4, 1)
	degraded, err := NewAirGround(p)
	if err != nil {
		t.Fatal(err)
	}
	degRes, err := degraded.Coverage(12 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if degRes.Percent() >= cleanRes.Percent() {
		t.Errorf("40%% platform unavailability left coverage at %.2f%% (clean %.2f%%)",
			degRes.Percent(), cleanRes.Percent())
	}
	if degRes.Percent() <= 0 {
		t.Error("degraded HAP should still cover part of the window")
	}
}

// TestParamsFaultRoundTrip: a non-zero fault block must survive the JSON
// codec exactly (durations are encoded in seconds, so stay on whole
// seconds here), and a zero block must be omitted entirely for corpus
// compatibility.
func TestParamsFaultRoundTrip(t *testing.T) {
	p := DefaultParams()
	p.Fault = fault.Config{
		SatMTBF: 2 * time.Hour, SatMTTR: 10 * time.Minute,
		HAPMTBF: 3 * time.Hour, HAPMTTR: 5 * time.Minute,
		GroundMTBF: 24 * time.Hour, GroundMTTR: time.Minute,
		WeatherP: 0.25, WeatherMeanDuration: 45 * time.Minute,
		WeatherAttenuation: 0.5, Seed: 17, Horizon: 48 * time.Hour,
	}
	var buf bytes.Buffer
	if err := SaveParams(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fault != p.Fault {
		t.Errorf("fault block did not round-trip:\ngot  %+v\nwant %+v", got.Fault, p.Fault)
	}

	buf.Reset()
	if err := SaveParams(&buf, DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "fault") {
		t.Error("zero fault config leaked a fault block into the JSON")
	}
	raw, err := LoadParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Fault != (fault.Config{}) {
		t.Errorf("zero fault config came back non-zero: %+v", raw.Fault)
	}
}
