package qntn

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"qntn/internal/atmosphere"
)

func TestParamsJSONRoundTrip(t *testing.T) {
	orig := DefaultParams()
	orig.MemoryT2 = 42 * time.Millisecond
	orig.RequireDarkness = true
	orig.TwilightRad = 0.2
	hv := atmosphere.HV57().Scaled(0.5)
	orig.Turbulence = &hv
	orig.FidelityModel = SourceAtEndpoint

	var buf bytes.Buffer
	if err := SaveParams(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := LoadParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.WavelengthM-orig.WavelengthM) > 1e-18 {
		t.Fatalf("wavelength %g vs %g", got.WavelengthM, orig.WavelengthM)
	}
	if got.SpaceBeamWaistM != orig.SpaceBeamWaistM ||
		got.TransmissivityThreshold != orig.TransmissivityThreshold {
		t.Fatal("optics fields drifted")
	}
	if math.Abs(got.MinElevationRad-orig.MinElevationRad) > 1e-12 {
		t.Fatalf("elevation %g vs %g", got.MinElevationRad, orig.MinElevationRad)
	}
	if got.StepInterval != orig.StepInterval || got.MemoryT2 != orig.MemoryT2 {
		t.Fatalf("durations drifted: %v/%v vs %v/%v", got.StepInterval, got.MemoryT2, orig.StepInterval, orig.MemoryT2)
	}
	if !got.RequireDarkness || math.Abs(got.TwilightRad-orig.TwilightRad) > 1e-12 {
		t.Fatal("darkness fields drifted")
	}
	if got.FidelityModel != SourceAtEndpoint {
		t.Fatal("fidelity model drifted")
	}
	if got.Turbulence == nil || got.Turbulence.Scale != 0.5 || got.Turbulence.GroundCn2 != hv.GroundCn2 {
		t.Fatalf("turbulence drifted: %+v", got.Turbulence)
	}
}

func TestParamsJSONNoTurbulence(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveParams(&buf, DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "turbulence") {
		t.Fatal("nil turbulence should be omitted")
	}
	got, err := LoadParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Turbulence != nil {
		t.Fatal("turbulence materialized from nothing")
	}
}

func TestLoadParamsRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":       "{",
		"unknown field":  `{"wavelength_nm": 532, "bogus": 1}`,
		"unknown model":  `{"fidelity_model": "psychic"}`,
		"invalid params": `{"wavelength_nm": -5}`,
	}
	for name, in := range cases {
		if _, err := LoadParams(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoadParamsDefaultsFidelityModel(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveParams(&buf, DefaultParams()); err != nil {
		t.Fatal(err)
	}
	s := strings.Replace(buf.String(), `"fidelity_model": "source-at-best-split"`, `"fidelity_model": ""`, 1)
	got, err := LoadParams(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.FidelityModel != SourceAtBestSplit {
		t.Fatal("empty model should default to best-split")
	}
}
