package qntn

import (
	"fmt"
	"time"

	"qntn/internal/netsim"
	"qntn/internal/orbit"
	"qntn/internal/routing"
	"qntn/internal/stats"
	"qntn/internal/telemetry"
)

// ServeConfig parameterizes the paper's §IV-B/§IV-C experiments:
// RequestsPerStep random inter-LAN requests are attempted at each of Steps
// topology instants spread evenly over Horizon, and the served fraction and
// average fidelity of resolved requests are reported.
type ServeConfig struct {
	RequestsPerStep int           // paper: 100
	Steps           int           // paper: 100 "time steps of satellite movement"
	Horizon         time.Duration // period the steps sample; default one day
	Seed            int64
}

// DefaultServeConfig returns the paper's workload.
func DefaultServeConfig() ServeConfig {
	return ServeConfig{RequestsPerStep: 100, Steps: 100, Horizon: orbit.Day, Seed: 1}
}

// withDefaults returns the config with the paper's one-day horizon applied
// when none is set — the normalization RunServe performs, hoisted so sweeps
// can precompute the sample times it implies.
func (cfg ServeConfig) withDefaults() ServeConfig {
	if cfg.Horizon <= 0 {
		cfg.Horizon = orbit.Day
	}
	return cfg
}

// validate checks the workload shape.
func (cfg ServeConfig) validate() error {
	if cfg.RequestsPerStep <= 0 || cfg.Steps <= 0 {
		return fmt.Errorf("qntn: serve config requires positive requests and steps")
	}
	return nil
}

// stepGap returns the spacing between this config's sample instants:
// Horizon/Steps, falling back to the scenario's topology-update cadence
// when the integer division underflows to zero (Horizon shorter than Steps
// nanoseconds). Every sampleTimes-derived loop — RunServe, RunServeDES, the
// event-driven serve grid — must use this single definition; duplicating
// the fallback is how the DES path once drifted a step short (see the
// shared regression test).
func (cfg ServeConfig) stepGap(p Params) time.Duration {
	cfg = cfg.withDefaults()
	gap := cfg.Horizon / time.Duration(cfg.Steps)
	if gap <= 0 {
		gap = p.TopologyStep()
	}
	return gap
}

// sampleTimes returns the topology instants RunServe will evaluate under
// these parameters: Steps instants spread stepGap apart from t = 0.
func (cfg ServeConfig) sampleTimes(p Params) []time.Duration {
	cfg = cfg.withDefaults()
	stepGap := cfg.stepGap(p)
	times := make([]time.Duration, cfg.Steps)
	for step := range times {
		times[step] = time.Duration(step) * stepGap
	}
	return times
}

// ServeResult aggregates one serve experiment.
type ServeResult struct {
	Config  ServeConfig
	Metrics netsim.Metrics
	// ServedPercent is the paper's "percentage of served requests".
	ServedPercent float64
	// MeanFidelity is the average end-to-end fidelity over served
	// requests.
	MeanFidelity float64
	// FidelitySummary describes the served-fidelity distribution.
	FidelitySummary stats.Summary
	// MeanPathEta is the average end-to-end transmissivity of served
	// requests.
	MeanPathEta float64
}

// RunServe executes the serve experiment against the scenario. At each
// step it snapshots the topology, converges the Algorithm 1 routing tables
// once, and attempts every request of the batch: a request is served when a
// path exists; its fidelity follows the scenario's FidelityModel applied to
// the path's per-hop transmissivities.
func (sc *Scenario) RunServe(cfg ServeConfig) (*ServeResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if sc.Params.EventDriven && sc.tel == nil {
		return sc.runServeEventDriven(cfg)
	}
	res := &ServeResult{Config: cfg}
	wl, err := NewWorkload(sc, cfg.Seed)
	if err != nil {
		return nil, err
	}

	// sampleTimes is the single source of truth for the instants this run
	// evaluates — sweeps precompute the same list to propagate ephemerides
	// exactly there, so duplicating its stepGap fallback here would let the
	// two drift apart.
	times := cfg.sampleTimes(sc.Params)

	// One graph and one Bellman-Ford scratch serve every step: the node
	// set is fixed, so per-step work reuses their storage. pe is nil unless
	// the entanglement-protocol layer is enabled; the nil branch below is
	// the pre-protocol code verbatim.
	graph := routing.NewGraph()
	var scratch routing.BellmanFordScratch
	pe := sc.newProtoEval()

	tel := sc.tel
	var label string
	if tel != nil {
		label = sc.serveLabel(cfg.Seed)
	}

	var fids, etas []float64
	for step, at := range times {
		var st netsim.SnapshotStats
		if tel != nil {
			if err := sc.Net.SnapshotIntoStats(graph, at, &st); err != nil {
				return nil, err
			}
		} else if err := sc.GraphInto(graph, at); err != nil {
			return nil, err
		}
		tables := scratch.Run(graph, sc.Params.RoutingEpsilon)
		stepServed, stepDropped := 0, 0
		var stepFidSum float64
		for _, req := range wl.Batch(cfg.RequestsPerStep) {
			out := netsim.Outcome{Request: req, At: at}
			if tables.Reachable(req.Src, req.Dst) {
				path, err := tables.Path(req.Src, req.Dst)
				if err != nil {
					return nil, fmt.Errorf("qntn: step %d request %d: %w", step, req.ID, err)
				}
				if pe != nil {
					po, err := pe.outcome(graph, path, req, at)
					if err != nil {
						return nil, fmt.Errorf("qntn: step %d request %d: %w", step, req.ID, err)
					}
					if tel != nil {
						tel.addProto(&po)
					}
					if po.served {
						out.Served = true
						out.Path = path
						out.EndToEndEta = po.primaryEta
						out.Fidelity = po.fidelity
						fids = append(fids, out.Fidelity)
						etas = append(etas, out.EndToEndEta)
						stepServed++
						stepFidSum += out.Fidelity
						if tel != nil {
							tel.fidelity.Observe(out.Fidelity)
						}
					} else {
						stepDropped++
					}
				} else {
					hopEtas, err := graph.EdgeEtas(path)
					if err != nil {
						return nil, fmt.Errorf("qntn: step %d request %d: %w", step, req.ID, err)
					}
					out.Served = true
					out.Path = path
					out.EndToEndEta = product(hopEtas)
					out.Fidelity = PathFidelity(hopEtas, sc.Params.FidelityModel)
					fids = append(fids, out.Fidelity)
					etas = append(etas, out.EndToEndEta)
					stepServed++
					stepFidSum += out.Fidelity
					if tel != nil {
						tel.fidelity.Observe(out.Fidelity)
					}
				}
			} else {
				stepDropped++
			}
			res.Metrics.Record(out)
		}
		if tel != nil {
			rounds := scratch.Rounds()
			tel.relaxRounds.Add(uint64(rounds))
			tel.requestsServed.Add(uint64(stepServed))
			tel.requestsDropped.Add(uint64(stepDropped))
			sc.recordStepEvent(label, step, at, &st, func(e *telemetry.Event) {
				e.RelaxRounds = int64(rounds)
				e.Served = int64(stepServed)
				e.Dropped = int64(stepDropped)
				if stepServed > 0 {
					e.MeanFidelity = stepFidSum / float64(stepServed)
				}
			})
		}
	}
	res.ServedPercent = 100 * res.Metrics.ServedFraction()
	res.MeanFidelity = res.Metrics.MeanServedFidelity()
	res.FidelitySummary = stats.Summarize(fids)
	res.MeanPathEta = stats.Mean(etas)
	return res, nil
}
