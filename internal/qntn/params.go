// Package qntn assembles the paper's two regional-network architectures —
// space-ground (LEO constellation) and air-ground (HAP) — over the three
// Tennessee local networks of Table I, and implements the paper's three
// evaluation metrics: daily coverage percentage (Eq. 6-7), percentage of
// served entanglement distribution requests, and average end-to-end
// entanglement fidelity.
package qntn

import (
	"fmt"
	"math"
	"time"

	"qntn/internal/astro"
	"qntn/internal/atmosphere"
	"qntn/internal/channel"
	"qntn/internal/fault"
	"qntn/internal/quantum/protocol"
	"qntn/internal/telemetry"
)

// Params collects every tunable of the study. DefaultParams matches the
// paper's stated configuration where given (apertures, elevation mask,
// threshold, fiber attenuation, altitudes) and calibrates the remaining
// free parameters of the FSO model to the paper's "ideal conditions"
// assumption — see DESIGN.md, "Calibration".
type Params struct {
	// WavelengthM is the optical wavelength of all FSO terminals.
	WavelengthM float64
	// GroundApertureRadiusM is the radius of ground and satellite
	// telescopes (paper: 120 cm aperture → 0.6 m radius).
	GroundApertureRadiusM float64
	// HAPApertureRadiusM is the HAP telescope radius (paper: 30 cm → 0.15 m).
	HAPApertureRadiusM float64
	// SpaceBeamWaistM is the transmit beam waist of satellite/ground
	// space-link terminals (chosen near the spot-minimizing waist for the
	// typical slant range).
	SpaceBeamWaistM float64
	// HAPBeamWaistM is the HAP transmit beam waist.
	HAPBeamWaistM float64
	// ReceiverEfficiency is the lumped η_eff of every FSO receiver.
	ReceiverEfficiency float64
	// ZenithOpticalDepth parameterizes clear-sky extinction.
	ZenithOpticalDepth float64
	// Turbulence, when non-nil, enables turbulent beam broadening. The
	// paper's evaluation assumes ideal (nil) conditions.
	Turbulence *atmosphere.HufnagelValley
	// PointingJitterRad adds rms pointing error (0 = ideal).
	PointingJitterRad float64

	// FiberAttenuationDBPerKm is the paper's 0.15 dB/km.
	FiberAttenuationDBPerKm float64

	// TransmissivityThreshold gates link establishment (paper: 0.7, from
	// the Fig. 5 analysis).
	TransmissivityThreshold float64
	// MinElevationRad is the ground-terminal elevation mask (paper: π/9).
	MinElevationRad float64
	// ISLClearanceAltM is the minimum altitude an inter-satellite
	// line-of-sight must clear; ISLs grazing below it are blocked.
	ISLClearanceAltM float64

	// SatelliteAltitudeM and InclinationDeg configure the constellation
	// (paper: 500 km, 53°).
	SatelliteAltitudeM float64
	InclinationDeg     float64
	// UseJ2 enables secular J2 perturbations in satellite propagation
	// (STK's default). Two-body is the default here because the paper's
	// one-day horizon is insensitive to J2 (verified in the orbit tests
	// and the design ablation).
	UseJ2 bool

	// HAPPosition is the platform location (paper: 35.6692, -85.0662 at
	// 30 km).
	HAPLatDeg float64
	HAPLonDeg float64
	HAPAltM   float64

	// StepInterval is the topology-update period (paper: 30 s STK
	// sampling).
	StepInterval time.Duration

	// MemoryT2 is the coherence time of the end-node quantum memories
	// used by the time-aware (DES) serving experiment: while the
	// classical heralding signal is in flight, stored qubits dephase.
	// Zero means ideal memories — the paper's assumption.
	MemoryT2 time.Duration
	// ProcessingDelayPerHop adds a fixed classical processing delay per
	// path hop to the heralding latency (zero under the paper's ideal
	// assumptions).
	ProcessingDelayPerHop time.Duration

	// HAPOutageProbability is the per-step probability that a HAP is
	// unavailable (station-keeping vibration, gusts, maintenance) — the
	// reliability weakness the paper's §II-D discussion attributes to the
	// air-ground architecture. Outages are derived deterministically from
	// (platform, step, OutageSeed) so runs stay reproducible. Zero (the
	// paper's ideal assumption) disables outages.
	HAPOutageProbability float64
	// OutageSeed varies the deterministic outage pattern.
	OutageSeed int64

	// Fault configures the deterministic fault-injection layer: satellite
	// outages, HAP station-keeping gaps, ground-station downtime and
	// weather blackouts, precomputed from Fault.Seed into an immutable
	// schedule (see internal/fault). The zero value — the paper's ideal
	// assumption — leaves the scenario's link model undecorated, so
	// fault-free runs are byte-identical to the baseline.
	Fault fault.Config

	// RequireDarkness, when true, gates every ground↔relay FSO link on
	// the ground station being dark (Sun below TwilightRad under the
	// equinox sun model) — the daylight-background constraint the paper's
	// ideal-conditions assumption waives. See internal/astro.
	RequireDarkness bool
	// TwilightRad is the solar depression angle required for darkness
	// (civil twilight, 6°, when zero and RequireDarkness is set).
	TwilightRad float64

	// FidelityModel selects how end-to-end fidelity is computed from a
	// path's link transmissivities.
	FidelityModel FidelityModel

	// Protocol configures the entanglement-protocol layer (T2 memories,
	// seed-derived swap chains, k-path purification — see
	// internal/quantum/protocol): when enabled, every multi-hop request in
	// RunServe/RunArrivals/RunTraffic runs the full swap-and-distill
	// pipeline instead of the instantaneous path-fidelity formula. The zero
	// value — the paper's assumption — disables the layer; disabled runs
	// never branch into it, so their output is byte-identical to the
	// pre-protocol behavior by construction.
	Protocol protocol.Config

	// RoutingEpsilon is the ε of the 1/(η+ε) cost metric.
	RoutingEpsilon float64

	// Telemetry, when non-nil, instruments every scenario assembled from
	// these parameters (see Scenario.Instrument). Runtime wiring only: the
	// collector is excluded from the JSON codec, ParamsHash and Validate,
	// and the nil default costs nothing on any hot path.
	Telemetry *telemetry.Collector

	// EventDriven, when true, runs Coverage, DetailedCoverage and RunServe
	// through the event-driven visibility-window engine (see windows.go and
	// eventloop.go) instead of brute-force per-step snapshot rebuilds. The
	// results are identical — the stepped path remains the semantic oracle,
	// asserted by the differential test suite — only faster. Runtime wiring
	// only, like Telemetry: excluded from the JSON codec, ParamsHash and
	// Validate. Telemetry-instrumented runs always use the stepped path
	// (per-step snapshot stats have no event-driven equivalent).
	EventDriven bool

	// DisableSpatialIndex forces dense n² candidate generation in both the
	// per-step evaluator and the window precomputation, bypassing the ECEF
	// grid index (see spatialindex.go). The index is exact — results are
	// byte-identical either way, asserted by the equivalence suite — so
	// this exists for differential testing and as an escape hatch. Runtime
	// wiring only, like Telemetry: excluded from the JSON codec, ParamsHash
	// and Validate.
	DisableSpatialIndex bool
}

// FidelityModel selects the entanglement source placement used when
// converting a routed path into an end-to-end Bell-pair fidelity.
type FidelityModel int

const (
	// SourceAtBestSplit (default) places the entangled-photon source at
	// the path position maximizing fidelity — in practice the relay
	// platform, beaming one photon down each arm (Micius-style). Each arm
	// accumulates the product of its link transmissivities as amplitude
	// damping.
	SourceAtBestSplit FidelityModel = iota
	// SourceAtEndpoint keeps the source at the requesting node: a single
	// arm traverses every link, accumulating the full product
	// transmissivity (F = (1+sqrt(η_path))/2).
	SourceAtEndpoint
)

// String implements fmt.Stringer.
func (m FidelityModel) String() string {
	switch m {
	case SourceAtBestSplit:
		return "source-at-best-split"
	case SourceAtEndpoint:
		return "source-at-endpoint"
	default:
		return fmt.Sprintf("FidelityModel(%d)", int(m))
	}
}

// DefaultParams returns the calibrated configuration described in
// DESIGN.md.
func DefaultParams() Params {
	return Params{
		WavelengthM:           532e-9,
		GroundApertureRadiusM: 0.60,
		HAPApertureRadiusM:    0.15,
		// The space-link waist is the calibration lever for the coverage
		// gate: 0.255 m puts the 0.7-transmissivity crossing near 25°
		// elevation, reproducing the paper's 55.17% full-day coverage for
		// 108 satellites (see DESIGN.md, "Calibration").
		SpaceBeamWaistM:         0.255,
		HAPBeamWaistM:           channel.OptimalWaist(532e-9, 80e3), // ≈0.116 m
		ReceiverEfficiency:      0.995,
		ZenithOpticalDepth:      0.015,
		FiberAttenuationDBPerKm: channel.PaperFiberAttenuationDBPerKm,
		TransmissivityThreshold: 0.7,
		MinElevationRad:         math.Pi / 9,
		ISLClearanceAltM:        20e3,
		SatelliteAltitudeM:      500e3,
		InclinationDeg:          53,
		HAPLatDeg:               35.6692,
		HAPLonDeg:               -85.0662,
		HAPAltM:                 30e3,
		StepInterval:            30 * time.Second,
		FidelityModel:           SourceAtBestSplit,
		RoutingEpsilon:          1e-6,
	}
}

// Validate reports whether the parameters are self-consistent.
func (p Params) Validate() error {
	switch {
	case p.WavelengthM <= 0:
		return fmt.Errorf("qntn: non-positive wavelength")
	case p.GroundApertureRadiusM <= 0 || p.HAPApertureRadiusM <= 0:
		return fmt.Errorf("qntn: non-positive aperture radius")
	case p.SpaceBeamWaistM <= 0 || p.SpaceBeamWaistM > p.GroundApertureRadiusM:
		return fmt.Errorf("qntn: space beam waist %g outside (0, %g]", p.SpaceBeamWaistM, p.GroundApertureRadiusM)
	case p.HAPBeamWaistM <= 0 || p.HAPBeamWaistM > p.HAPApertureRadiusM:
		return fmt.Errorf("qntn: HAP beam waist %g outside (0, %g]", p.HAPBeamWaistM, p.HAPApertureRadiusM)
	case p.ReceiverEfficiency <= 0 || p.ReceiverEfficiency > 1:
		return fmt.Errorf("qntn: receiver efficiency %g outside (0,1]", p.ReceiverEfficiency)
	case p.ZenithOpticalDepth < 0:
		return fmt.Errorf("qntn: negative zenith optical depth")
	case p.FiberAttenuationDBPerKm < 0:
		return fmt.Errorf("qntn: negative fiber attenuation")
	case p.TransmissivityThreshold < 0 || p.TransmissivityThreshold > 1:
		return fmt.Errorf("qntn: transmissivity threshold %g outside [0,1]", p.TransmissivityThreshold)
	case p.MinElevationRad < 0 || p.MinElevationRad >= math.Pi/2:
		return fmt.Errorf("qntn: elevation mask %g outside [0, π/2)", p.MinElevationRad)
	case p.SatelliteAltitudeM <= 0:
		return fmt.Errorf("qntn: non-positive satellite altitude")
	case p.HAPAltM <= 0:
		return fmt.Errorf("qntn: non-positive HAP altitude")
	case p.StepInterval <= 0:
		return fmt.Errorf("qntn: non-positive step interval")
	case p.MemoryT2 < 0:
		return fmt.Errorf("qntn: negative memory T2")
	case p.ProcessingDelayPerHop < 0:
		return fmt.Errorf("qntn: negative per-hop processing delay")
	case p.TwilightRad < 0 || p.TwilightRad >= math.Pi/2:
		return fmt.Errorf("qntn: twilight angle %g outside [0, π/2)", p.TwilightRad)
	case p.HAPOutageProbability < 0 || p.HAPOutageProbability > 1:
		return fmt.Errorf("qntn: HAP outage probability %g outside [0,1]", p.HAPOutageProbability)
	}
	if err := p.Fault.Validate(); err != nil {
		return fmt.Errorf("qntn: %w", err)
	}
	if err := p.Protocol.Validate(); err != nil {
		return fmt.Errorf("qntn: %w", err)
	}
	return nil
}

// TopologyStep returns the topology-update cadence every run path derives
// its sampling from: StepInterval when positive, else the paper's 30 s STK
// sampling default. Validate rejects a non-positive StepInterval on the
// constructor paths, but parameters assembled by hand or mutated after
// construction (tests, zero-valued configs) still reach the run loops —
// this single fallback is what keeps a zero interval from degenerating
// into a rejected ScheduleEvery cadence or a divide-by-zero step index.
func (p Params) TopologyStep() time.Duration {
	if p.StepInterval > 0 {
		return p.StepInterval
	}
	return 30 * time.Second
}

// twilight returns the effective twilight depression angle.
func (p Params) twilight() float64 {
	if p.TwilightRad == 0 {
		return astro.CivilTwilightRad
	}
	return p.TwilightRad
}

// extinction returns the atmosphere model implied by the parameters.
func (p Params) extinction() atmosphere.Extinction {
	return atmosphere.Extinction{ZenithOpticalDepth: p.ZenithOpticalDepth}
}

// SpaceDownlinkFSO returns the FSO configuration of a satellite→ground (or
// satellite→satellite) link: space terminal transmits with the space beam
// waist, ground-class aperture receives.
func (p Params) SpaceDownlinkFSO() channel.FSOConfig {
	return channel.FSOConfig{
		WavelengthM:        p.WavelengthM,
		TxApertureRadiusM:  p.GroundApertureRadiusM,
		TxWaistM:           p.SpaceBeamWaistM,
		RxApertureRadiusM:  p.GroundApertureRadiusM,
		ReceiverEfficiency: p.ReceiverEfficiency,
		Extinction:         p.extinction(),
		Turbulence:         p.Turbulence,
		PointingJitterRad:  p.PointingJitterRad,
	}
}

// HAPDownlinkFSO returns the FSO configuration of a HAP→ground link: the
// HAP transmits through its 30 cm telescope toward a 120 cm ground
// receiver.
func (p Params) HAPDownlinkFSO() channel.FSOConfig {
	return channel.FSOConfig{
		WavelengthM:        p.WavelengthM,
		TxApertureRadiusM:  p.HAPApertureRadiusM,
		TxWaistM:           p.HAPBeamWaistM,
		RxApertureRadiusM:  p.GroundApertureRadiusM,
		ReceiverEfficiency: p.ReceiverEfficiency,
		Extinction:         p.extinction(),
		Turbulence:         p.Turbulence,
		PointingJitterRad:  p.PointingJitterRad,
	}
}

// Fiber returns the fiber model for intra-network ground links.
func (p Params) Fiber() channel.Fiber {
	return channel.Fiber{AttenuationDBPerKm: p.FiberAttenuationDBPerKm}
}

// LinkPolicy returns the gating policy for FSO links with a ground
// endpoint.
func (p Params) LinkPolicy() channel.LinkPolicy {
	return channel.LinkPolicy{
		MinTransmissivity: p.TransmissivityThreshold,
		MinElevationRad:   p.MinElevationRad,
	}
}
