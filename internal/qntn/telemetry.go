package qntn

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"time"

	"qntn/internal/netsim"
	"qntn/internal/telemetry"
)

// fidelityBuckets are the served-fidelity histogram bounds: coarse below the
// paper's useful range, fine near the 0.9+ region its analysis cares about.
var fidelityBuckets = []float64{0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95, 0.99}

// scenarioTelemetry holds the scenario-level counter handles resolved once
// at instrumentation time, so hot loops touch pre-looked-up pointers only.
type scenarioTelemetry struct {
	collector       *telemetry.Collector
	relaxRounds     *telemetry.Counter
	requestsServed  *telemetry.Counter
	requestsDropped *telemetry.Counter
	coverageSteps   *telemetry.Counter
	coverageCovered *telemetry.Counter
	fidelity        *telemetry.Histogram
	// Entanglement-protocol layer counters (zero unless Params.Protocol is
	// enabled): swap draws taken / failed, distillation rounds drawn /
	// postselected.
	protoSwaps          *telemetry.Counter
	protoSwapFailures   *telemetry.Counter
	protoPurifyRounds   *telemetry.Counter
	protoPurifyAccepted *telemetry.Counter
}

// addProto accumulates one protocol verdict's draw counters.
func (t *scenarioTelemetry) addProto(po *protoOutcome) {
	t.protoSwaps.Add(uint64(po.swapAttempts))
	t.protoSwapFailures.Add(uint64(po.swapFailures))
	t.protoPurifyRounds.Add(uint64(po.purifyRounds))
	t.protoPurifyAccepted.Add(uint64(po.purifyAccepted))
}

// Instrument attaches a telemetry collector to the scenario: the network
// gains per-snapshot counters, and RunServe/Coverage additionally record
// per-step events (when the collector carries an event sink) and
// scenario-level counters. Passing nil detaches instrumentation. Scenarios
// assembled from Params with a non-nil Telemetry field are instrumented
// automatically; sweeps re-instrument with per-task shards to stay
// worker-count invariant.
func (sc *Scenario) Instrument(c *telemetry.Collector) {
	if c == nil || c.Registry == nil {
		sc.tel = nil
		sc.Net.SetInstruments(nil)
		return
	}
	reg := c.Registry
	sc.Net.SetInstruments(netsim.NewInstruments(reg))
	sc.tel = &scenarioTelemetry{
		collector:       c,
		relaxRounds:     reg.Counter("relax_rounds_total"),
		requestsServed:  reg.Counter("requests_served_total"),
		requestsDropped: reg.Counter("requests_dropped_total"),
		coverageSteps:   reg.Counter("coverage_steps_total"),
		coverageCovered: reg.Counter("coverage_covered_steps_total"),
		fidelity:        reg.Histogram("served_fidelity", fidelityBuckets),

		protoSwaps:          reg.Counter("protocol_swaps_total"),
		protoSwapFailures:   reg.Counter("protocol_swap_failures_total"),
		protoPurifyRounds:   reg.Counter("protocol_purify_rounds_total"),
		protoPurifyAccepted: reg.Counter("protocol_purify_accepted_total"),
	}
}

// Telemetry returns the collector the scenario is instrumented with, or nil.
func (sc *Scenario) Telemetry() *telemetry.Collector {
	if sc.tel == nil {
		return nil
	}
	return sc.tel.collector
}

// serveLabel names the event stream of one serve run. The seed
// disambiguates replicated runs of the same scenario (same architecture and
// relay count), keeping (label, step) keys collision-free within a sweep.
func (sc *Scenario) serveLabel(seed int64) string {
	return fmt.Sprintf("serve/%s/%d/seed=%d", sc.Arch, len(sc.RelayIDs), seed)
}

// coverageLabel names the event stream of one coverage run.
func (sc *Scenario) coverageLabel() string {
	return fmt.Sprintf("coverage/%s/%d", sc.Arch, len(sc.RelayIDs))
}

// recordStepEvent emits one per-step event when the scenario's collector
// has an event sink. The snapshot-derived fields come from st; callers fill
// the experiment-specific fields via fill.
func (sc *Scenario) recordStepEvent(label string, step int, at time.Duration, st *netsim.SnapshotStats, fill func(*telemetry.Event)) {
	tel := sc.tel
	if tel == nil {
		return
	}
	sink := tel.collector.Sink()
	if sink == nil {
		return
	}
	e := telemetry.Event{
		Label:          label,
		Step:           step,
		TSeconds:       at.Seconds(),
		PairsEvaluated: int64(st.Pairs),
		LinksAdmitted:  int64(st.Admitted),
		HorizonRejects: st.HorizonRejects,
		RangeRejects:   st.RangeRejects,
		IndexCulled:    st.IndexCulled,
		NodesDown:      int64(st.NodesDown),
		Weather:        st.Weather,
	}
	if fill != nil {
		fill(&e)
	}
	sink.Record(e)
}

// ParamsHash returns a stable hex hash of the canonical JSON encoding of p
// — the manifest's reproducibility key. Runtime-only fields (Telemetry) are
// excluded by construction because the codec never serializes them.
func ParamsHash(p Params) string {
	var buf bytes.Buffer
	if err := SaveParams(&buf, p); err != nil {
		return ""
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())
	return fmt.Sprintf("%016x", h.Sum64())
}
