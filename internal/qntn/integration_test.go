package qntn

import (
	"math"
	"testing"
	"time"
)

// TestIntegrationPaperPipeline exercises the full reproduction pipeline at
// reduced scale and pins the qualitative results the paper reports. It is
// the repository's end-to-end smoke test.
func TestIntegrationPaperPipeline(t *testing.T) {
	p := DefaultParams()

	// 1. Space-ground at 108 satellites: partial coverage, partial
	//    serving, fidelity in the low 0.9s.
	space, err := NewSpaceGround(108, p)
	if err != nil {
		t.Fatal(err)
	}
	const window = 4 * time.Hour
	spaceCov, err := space.Coverage(window)
	if err != nil {
		t.Fatal(err)
	}
	if pct := spaceCov.Percent(); pct < 30 || pct > 80 {
		t.Fatalf("space coverage %.2f%% outside the expected band", pct)
	}
	cfg := ServeConfig{RequestsPerStep: 30, Steps: 20, Horizon: 24 * time.Hour, Seed: 42}
	spaceServe, err := space.RunServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if spaceServe.ServedPercent <= 20 || spaceServe.ServedPercent >= 90 {
		t.Fatalf("space served %.2f%%", spaceServe.ServedPercent)
	}
	if spaceServe.MeanFidelity < 0.88 || spaceServe.MeanFidelity > 0.96 {
		t.Fatalf("space fidelity %.4f", spaceServe.MeanFidelity)
	}

	// 2. Air-ground: total coverage, total serving, fidelity ≈ 0.98.
	air, err := NewAirGround(p)
	if err != nil {
		t.Fatal(err)
	}
	airCov, err := air.Coverage(window)
	if err != nil {
		t.Fatal(err)
	}
	airServe, err := air.RunServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if airCov.Percent() != 100 || airServe.ServedPercent != 100 {
		t.Fatalf("air-ground %.2f%%/%.2f%%, want 100/100", airCov.Percent(), airServe.ServedPercent)
	}
	if math.Abs(airServe.MeanFidelity-0.9786) > 0.005 {
		t.Fatalf("air fidelity %.4f, want ≈0.9786", airServe.MeanFidelity)
	}

	// 3. Every Table III ordering holds.
	if !(airCov.Percent() > spaceCov.Percent() &&
		airServe.ServedPercent > spaceServe.ServedPercent &&
		airServe.MeanFidelity > spaceServe.MeanFidelity) {
		t.Fatal("air-ground does not dominate space-ground")
	}

	// 4. Whole pipeline is reproducible: identical reruns bit-for-bit.
	spaceCov2, err := space.Coverage(window)
	if err != nil {
		t.Fatal(err)
	}
	if spaceCov2.Covered != spaceCov.Covered || spaceCov2.CoveredSteps != spaceCov.CoveredSteps {
		t.Fatal("coverage not reproducible")
	}
	spaceServe2, err := space.RunServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if spaceServe2.ServedPercent != spaceServe.ServedPercent ||
		spaceServe2.MeanFidelity != spaceServe.MeanFidelity {
		t.Fatal("serving not reproducible")
	}
	for i, o := range spaceServe2.Metrics.Outcomes {
		ref := spaceServe.Metrics.Outcomes[i]
		if o.Request != ref.Request || o.Served != ref.Served || o.Fidelity != ref.Fidelity {
			t.Fatalf("outcome %d diverged between identical runs", i)
		}
	}
}
