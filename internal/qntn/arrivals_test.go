package qntn

import (
	"testing"
	"time"
)

func TestRunArrivalsAirGround(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ArrivalConfig{RatePerHour: 240, Horizon: 2 * time.Hour, Seed: 3}
	res, err := sc.RunArrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Poisson count: mean 480, generous band.
	if res.Arrivals < 300 || res.Arrivals > 700 {
		t.Fatalf("arrivals %d outside Poisson band", res.Arrivals)
	}
	// Always-on HAP: everything served on arrival, no queueing.
	if res.Served != res.Arrivals || res.ServedImmediately != res.Arrivals {
		t.Fatalf("air-ground should serve all on arrival: %+v", res)
	}
	if res.MeanWait != 0 || res.MaxQueueDepth != 0 {
		t.Fatalf("air-ground should never queue: %+v", res)
	}
	if res.MeanFidelity < 0.97 || res.MeanFidelity > 0.99 {
		t.Fatalf("air-ground arrival fidelity %g", res.MeanFidelity)
	}
	// Events: arrivals + 241 topology updates.
	if res.EventsProcessed < res.Arrivals {
		t.Fatalf("events %d below arrivals", res.EventsProcessed)
	}
}

func TestRunArrivalsSpaceGroundQueues(t *testing.T) {
	sc, err := NewSpaceGround(108, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ArrivalConfig{RatePerHour: 120, Horizon: 3 * time.Hour, Seed: 5}
	res, err := sc.RunArrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrivals == 0 {
		t.Fatal("no arrivals generated")
	}
	// Coverage gaps force queueing: some requests wait, queue depth grows.
	if res.ServedImmediately >= res.Served {
		t.Fatalf("expected some queued service: %+v", res)
	}
	if res.MaxQueueDepth == 0 {
		t.Fatal("queue never grew despite coverage gaps")
	}
	if res.MeanWait <= 0 || res.MeanWait > time.Hour {
		t.Fatalf("mean wait %v implausible", res.MeanWait)
	}
	if res.MaxWait < res.MeanWait {
		t.Fatal("max wait below mean")
	}
	// Nearly everything is eventually served at 108 satellites (gaps are
	// minutes, horizon is hours); only the tail is censored.
	if res.ServedPercent() < 80 {
		t.Fatalf("served %.2f%% over 3 h", res.ServedPercent())
	}
}

func TestRunArrivalsDeterministic(t *testing.T) {
	sc, err := NewSpaceGround(36, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ArrivalConfig{RatePerHour: 60, Horizon: time.Hour, Seed: 9}
	r1, err := sc.RunArrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sc.RunArrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Arrivals != r2.Arrivals || r1.Served != r2.Served ||
		r1.MeanWait != r2.MeanWait || r1.MeanFidelity != r2.MeanFidelity {
		t.Fatalf("arrival sim not deterministic: %+v vs %+v", r1, r2)
	}
	cfg.Seed = 10
	r3, err := sc.RunArrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Arrivals == r1.Arrivals && r3.MeanWait == r1.MeanWait {
		t.Fatal("different seed produced identical run")
	}
}

func TestRunArrivalsRejectsBadConfig(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.RunArrivals(ArrivalConfig{RatePerHour: 0, Horizon: time.Hour}); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestArrivalResultServedPercent(t *testing.T) {
	r := ArrivalResult{Arrivals: 200, Served: 150}
	if r.ServedPercent() != 75 {
		t.Fatalf("served percent %g", r.ServedPercent())
	}
	if (&ArrivalResult{}).ServedPercent() != 0 {
		t.Fatal("empty result should be 0%")
	}
}
