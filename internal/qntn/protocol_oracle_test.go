package qntn_test

// The entanglement-protocol differential suite: every archetype runs the
// protocol-enabled serve experiment on the pooled fast path (stepped and
// event-driven) and on the scalar oracletest reference — cloned graphs, map
// Dijkstra, verbatim Werner formulas — and all three must be
// reflect.DeepEqual-identical, with faults off and on, plus a worker-count
// invariance sweep anchored to the same reference. It complements the
// formula-level physics anchors in internal/quantum/protocol: those pin the
// closed forms against density matrices, this pins the pipeline — disjoint
// extraction, buffer reuse, draw indexing, distillation ordering — against
// a naive restatement.

import (
	"reflect"
	"testing"
	"time"

	"qntn/internal/qntn"
	"qntn/internal/qntn/oracletest"
	"qntn/internal/quantum/protocol"
)

// protocolOracleConfig is the protocol mix the differential matrix runs:
// lossy swaps so chains fail visibly, a T2 in the regime of multi-hop
// heralding latencies so dephasing moves fidelities, and a purification
// budget that exercises disjoint extraction past the primary route.
func protocolOracleConfig() protocol.Config {
	return protocol.Config{
		MemoryT2:    20 * time.Millisecond,
		SwapSuccess: 0.85,
		PurifyPaths: 3,
		Seed:        5,
	}
}

// TestProtocolMatchesScalarReference is the core protocol differential
// matrix: every archetype, faults off and on, stepped and event-driven
// against the scalar reference. Durations are capped so the per-request
// clone-and-delete reference stays affordable in tier-1 time.
func TestProtocolMatchesScalarReference(t *testing.T) {
	totalServed := 0
	for _, arch := range oracletest.Archetypes() {
		arch := arch
		duration := arch.Duration
		if duration > 4*time.Hour {
			duration = 4 * time.Hour
		}
		cfg := oracleServeConfig(duration)
		t.Run(arch.Name, func(t *testing.T) {
			p := arch.Params()
			p.Protocol = protocolOracleConfig()
			want := oracletest.AssertProtocolServeEqual(t, arch.Build, p, cfg)
			totalServed += int(float64(len(want.Metrics.Outcomes)) * want.Metrics.ServedFraction())
		})
		t.Run(arch.Name+"-faults", func(t *testing.T) {
			p := arch.Params()
			p.Fault = oracletest.FaultConfig(11)
			p.Protocol = protocolOracleConfig()
			want := oracletest.AssertProtocolServeEqual(t, arch.Build, p, cfg)
			totalServed += int(float64(len(want.Metrics.Outcomes)) * want.Metrics.ServedFraction())
		})
	}
	if totalServed == 0 {
		t.Fatalf("degenerate matrix: no archetype served a single protocol request")
	}
}

// TestProtocolServeSweepWorkers pins the protocol-enabled serve sweep at 1,
// 2 and 8 workers on both execution paths, and anchors every per-size point
// to the scalar reference — worker-count invariance alone could pass with a
// deterministic bug shared by all counts.
func TestProtocolServeSweepWorkers(t *testing.T) {
	sizes := []int{6, 24}
	cfg := qntn.ServeConfig{RequestsPerStep: 15, Steps: 30, Horizon: 6 * time.Hour, Seed: 3}
	p := qntn.DefaultParams()
	p.Protocol = protocolOracleConfig()
	want, err := qntn.ServeSweepParallel(p, sizes, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range sizes {
		sc, err := qntn.NewSpaceGround(n, p)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := oracletest.ReferenceProtocolServe(sc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want[i].Result, *ref) {
			t.Fatalf("size %d: sweep result diverged from scalar reference\n got: %+v\nwant: %+v", n, want[i].Result, *ref)
		}
	}
	for _, workers := range []int{2, 8} {
		got, err := qntn.ServeSweepParallel(p, sizes, cfg, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: protocol serve sweep not worker-invariant", workers)
		}
	}
	pe := p
	pe.EventDriven = true
	for _, workers := range []int{1, 2, 8} {
		got, err := qntn.ServeSweepParallel(pe, sizes, cfg, workers)
		if err != nil {
			t.Fatalf("event-driven workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("event-driven workers=%d: protocol serve sweep diverged from stepped", workers)
		}
	}
}

// TestProtocolArrivalsDeterministic pins the queued-admission protocol
// path: two identical protocol-enabled RunArrivals runs must agree exactly,
// and enabling the protocol can only reduce the served count (a protocol
// failure leaves the request queued; it never serves anything the
// protocol-off path would not).
func TestProtocolArrivalsDeterministic(t *testing.T) {
	p := qntn.DefaultParams()
	p.Protocol = protocolOracleConfig()
	cfg := qntn.ArrivalConfig{RatePerHour: 60, Horizon: 4 * time.Hour, Seed: 9}
	run := func(p qntn.Params) *qntn.ArrivalResult {
		sc, err := qntn.NewSpaceGround(24, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sc.RunArrivals(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first, second := run(p), run(p)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("protocol arrivals not deterministic\nfirst: %+v\nsecond: %+v", first, second)
	}
	off := run(qntn.DefaultParams())
	if first.Served > off.Served {
		t.Fatalf("protocol-on served %d > protocol-off %d — failures must only defer requests", first.Served, off.Served)
	}
	if first.Arrivals != off.Arrivals {
		t.Fatalf("protocol toggled the arrival stream: %d vs %d", first.Arrivals, off.Arrivals)
	}
}
