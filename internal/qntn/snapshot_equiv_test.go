package qntn

import (
	"reflect"
	"testing"
	"time"

	"qntn/internal/fault"
	"qntn/internal/routing"
)

// referenceGraph builds the topology at time at from independent per-pair
// EvaluateLink calls — the scalar physics path, with none of the per-step
// caching the batched evaluator performs.
func referenceGraph(t *testing.T, sc *Scenario, at time.Duration) *routing.Graph {
	t.Helper()
	g := routing.NewGraph()
	nodes := sc.Net.Nodes()
	for _, n := range nodes {
		g.AddNode(n.ID())
	}
	g.ResetEdges()
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if eta, ok := sc.EvaluateLink(nodes[i].ID(), nodes[j].ID(), at); ok {
				if err := g.AddEdge(nodes[i].ID(), nodes[j].ID(), eta); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return g
}

// edgeMap flattens a graph for failure diagnostics.
func edgeMap(g *routing.Graph) map[string]float64 {
	ids := g.Nodes()
	m := make(map[string]float64)
	g.EachEdge(func(i, j int, eta float64) {
		m[ids[i]+"~"+ids[j]] = eta
	})
	return m
}

// assertStepEquivalence drives the scenario through steps topology instants
// and requires the fast path (fresh Snapshot graphs and one arena-reused
// graph) to be DeepEqual — node order, edge set, and bit-exact
// transmissivities — to the reference graph at every instant.
func assertStepEquivalence(t *testing.T, sc *Scenario, steps int, stepGap time.Duration) {
	t.Helper()
	reused := routing.NewGraph()
	edges := 0
	for s := 0; s < steps; s++ {
		at := time.Duration(s) * stepGap
		want := referenceGraph(t, sc, at)
		edges += want.NumEdges()

		fresh, err := sc.Graph(at)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fresh, want) {
			t.Fatalf("step %d (t=%v): fresh snapshot != reference\nfast: %v\nref:  %v",
				s, at, edgeMap(fresh), edgeMap(want))
		}
		if err := sc.GraphInto(reused, at); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reused, want) {
			t.Fatalf("step %d (t=%v): reused snapshot != reference\nfast: %v\nref:  %v",
				s, at, edgeMap(reused), edgeMap(want))
		}
	}
	if edges == 0 {
		t.Fatal("degenerate equivalence run: no edges at any step")
	}
}

func TestSnapshotFastPathMatchesReference(t *testing.T) {
	cases := []struct {
		name    string
		sats    int
		steps   int
		stepGap time.Duration
		tweak   func(*Params)
	}{
		{name: "space-ground-6", sats: 6, steps: 120, stepGap: 30 * time.Second},
		{name: "space-ground-24", sats: 24, steps: 40, stepGap: 3 * time.Minute},
		{name: "space-ground-54-darkness", sats: 54, steps: 25, stepGap: 11 * time.Minute,
			tweak: func(p *Params) { p.RequireDarkness = true }},
		{name: "space-ground-108", sats: 108, steps: 100, stepGap: 7 * time.Minute},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := DefaultParams()
			if tc.tweak != nil {
				tc.tweak(&p)
			}
			sc, err := NewSpaceGround(tc.sats, p)
			if err != nil {
				t.Fatal(err)
			}
			assertStepEquivalence(t, sc, tc.steps, tc.stepGap)
		})
	}
}

func TestSnapshotFastPathMatchesReferenceAirGround(t *testing.T) {
	p := DefaultParams()
	p.RequireDarkness = true
	p.HAPOutageProbability = 0.3
	sc, err := NewAirGround(p)
	if err != nil {
		t.Fatal(err)
	}
	assertStepEquivalence(t, sc, 120, 12*time.Minute)
}

func TestSnapshotFastPathMatchesReferenceHybrid(t *testing.T) {
	p := DefaultParams()
	p.RequireDarkness = true
	p.HAPOutageProbability = 0.25
	sc, err := NewHybrid(12, p)
	if err != nil {
		t.Fatal(err)
	}
	assertStepEquivalence(t, sc, 100, 9*time.Minute)
}

// TestSnapshotIndexMatchesDense compares the index-backed fast path against
// the dense fast path (DisableSpatialIndex) graph by graph — node order,
// edge set, and bit-exact transmissivities — across the scenarios where the
// index is active, with and without a fault schedule, including the Walker
// ISL-grid constellation over the multi-continent ground set.
func TestSnapshotIndexMatchesDense(t *testing.T) {
	builders := map[string]func(p Params) (*Scenario, error){
		"space-ground-54-darkness": func(p Params) (*Scenario, error) {
			p.RequireDarkness = true
			return NewSpaceGround(54, p)
		},
		"space-ground-108": func(p Params) (*Scenario, error) { return NewSpaceGround(108, p) },
		"walker-96-global": func(p Params) (*Scenario, error) { return NewWalker(walkerTestSpec(), p) },
	}
	for name, build := range builders {
		for _, faults := range []bool{false, true} {
			sub := name
			if faults {
				sub += "-faults"
			}
			t.Run(sub, func(t *testing.T) {
				p := DefaultParams()
				if faults {
					p.Fault = fault.Config{
						SatMTBF: 90 * time.Minute, SatMTTR: 15 * time.Minute,
						GroundMTBF: 4 * time.Hour, GroundMTTR: 20 * time.Minute,
						WeatherP: 0.25, WeatherAttenuation: 0.5, Seed: 5,
					}
				}
				indexed, err := build(p)
				if err != nil {
					t.Fatal(err)
				}
				pd := p
				pd.DisableSpatialIndex = true
				dense, err := build(pd)
				if err != nil {
					t.Fatal(err)
				}
				gi, gd := routing.NewGraph(), routing.NewGraph()
				edges := 0
				for s := 0; s < 30; s++ {
					at := time.Duration(s) * 9 * time.Minute
					if err := indexed.GraphInto(gi, at); err != nil {
						t.Fatal(err)
					}
					if err := dense.GraphInto(gd, at); err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(gi, gd) {
						t.Fatalf("step %d (t=%v): indexed snapshot != dense snapshot\nidx:   %v\ndense: %v",
							s, at, edgeMap(gi), edgeMap(gd))
					}
					edges += gi.NumEdges()
				}
				if edges == 0 {
					t.Fatal("degenerate dense-vs-index run: no edges at any step")
				}
			})
		}
	}
}

// TestSnapshotReusedAcrossScenarios checks that one arena graph survives
// being handed to scenarios with different node sets back to back — the
// SnapshotInto node-set mismatch path.
func TestSnapshotReusedAcrossScenarios(t *testing.T) {
	p := DefaultParams()
	g := routing.NewGraph()
	for _, sats := range []int{6, 18, 6, 12} {
		sc, err := NewSpaceGround(sats, p)
		if err != nil {
			t.Fatal(err)
		}
		at := 17 * time.Minute
		if err := sc.GraphInto(g, at); err != nil {
			t.Fatal(err)
		}
		want := referenceGraph(t, sc, at)
		if !reflect.DeepEqual(g, want) {
			t.Fatalf("%d satellites: reused-across-scenarios snapshot != reference", sats)
		}
	}
}

// TestScratchTablesMatchBellmanFordOverTime converges the routing tables
// with a reused scratch at many instants and compares against the
// allocating BellmanFord entry point.
func TestScratchTablesMatchBellmanFordOverTime(t *testing.T) {
	sc, err := NewSpaceGround(12, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	g := routing.NewGraph()
	var scratch routing.BellmanFordScratch
	for s := 0; s < 50; s++ {
		at := time.Duration(s) * 10 * time.Minute
		if err := sc.GraphInto(g, at); err != nil {
			t.Fatal(err)
		}
		got := scratch.Run(g, sc.Params.RoutingEpsilon)
		want := routing.BellmanFord(g, sc.Params.RoutingEpsilon)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: scratch tables != BellmanFord tables", s)
		}
	}
}

var benchEdgeCount int

func BenchmarkSnapshotReference12(b *testing.B) {
	// Scalar per-pair baseline at 12 satellites, for comparison against
	// BenchmarkSnapshot-style fast-path numbers in profiles.
	sc, err := NewSpaceGround(12, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	nodes := sc.Net.Nodes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := time.Duration(i%100) * 30 * time.Second
		n := 0
		for x := 0; x < len(nodes); x++ {
			for y := x + 1; y < len(nodes); y++ {
				if _, ok := sc.EvaluateLink(nodes[x].ID(), nodes[y].ID(), at); ok {
					n++
				}
			}
		}
		benchEdgeCount = n
	}
}
