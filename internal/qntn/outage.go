package qntn

import (
	"time"

	"qntn/internal/netsim"
)

// FNV-1a 64-bit parameters (hash/fnv's New64a), inlined so the per-step
// availability check needs no heap-allocated digest.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// hapAvailable reports whether the given HAP is operational at time t
// under the configured outage probability. Availability is a pure function
// of (platform ID, step index, OutageSeed): a 64-bit FNV-1a hash is mapped
// to [0,1) and compared against the outage probability, giving an
// uncorrelated, reproducible outage sequence per platform without shared
// RNG state (EvaluateLink stays side-effect free and safe to call in any
// order). The digest is computed inline over the same byte sequence
// hash/fnv would see — platform ID, then step and seed little-endian — so
// outage sequences are unchanged from the hash.Hash64 implementation.
//
//qntn:hotpath one call per HAP per step from the evaluator reset
func (sc *Scenario) hapAvailable(hap netsim.Node, t time.Duration) bool {
	p := sc.Params.HAPOutageProbability
	if p <= 0 {
		return true
	}
	if p >= 1 {
		return false
	}
	// TopologyStep rather than StepInterval directly: a zero interval on a
	// hand-assembled Params would otherwise divide by zero here.
	step := int64(t / sc.Params.TopologyStep())
	h := fnvOffset64
	id := hap.ID()
	for i := 0; i < len(id); i++ {
		h = (h ^ uint64(id[i])) * fnvPrime64
	}
	h = fnvMix64(h, uint64(step))
	h = fnvMix64(h, uint64(sc.Params.OutageSeed))
	u := float64(h>>11) / float64(1<<53) // uniform in [0,1)
	return u >= p
}

// fnvMix64 folds v's eight little-endian bytes into the running FNV-1a
// hash, exactly as writing them to a hash/fnv digest would.
//
//qntn:hotpath
func fnvMix64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ uint64(byte(v>>(8*i)))) * fnvPrime64
	}
	return h
}
