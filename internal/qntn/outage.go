package qntn

import (
	"hash/fnv"
	"time"

	"qntn/internal/netsim"
)

// hapAvailable reports whether the given HAP is operational at time t
// under the configured outage probability. Availability is a pure function
// of (platform ID, step index, OutageSeed): a 64-bit FNV hash is mapped to
// [0,1) and compared against the outage probability, giving an
// uncorrelated, reproducible outage sequence per platform without shared
// RNG state (EvaluateLink stays side-effect free and safe to call in any
// order).
func (sc *Scenario) hapAvailable(hap netsim.Node, t time.Duration) bool {
	p := sc.Params.HAPOutageProbability
	if p <= 0 {
		return true
	}
	if p >= 1 {
		return false
	}
	step := int64(t / sc.Params.StepInterval)
	h := fnv.New64a()
	var buf [8]byte
	write64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	h.Write([]byte(hap.ID()))
	write64(uint64(step))
	write64(uint64(sc.Params.OutageSeed))
	u := float64(h.Sum64()>>11) / float64(1<<53) // uniform in [0,1)
	return u >= p
}
