package qntn

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"qntn/internal/orbit"
	"qntn/internal/telemetry"
)

// Daemon is the long-running serve process behind `qntnsim serve-daemon`:
// an HTTP/JSON front end over the traffic engine. Queries share one
// ephemeris cache per horizon — the full 108-satellite Table II catalog is
// propagated once at the query's topology instants and every subsequent
// constellation size is a prefix slice of it — and each query's telemetry
// is folded into the daemon-lifetime registry served at /metrics.
//
// The wall clock is injected (the project's detrand invariant: nothing
// under internal/ reads time.Now directly), so the daemon itself stays
// deterministic under test; only the throughput gauge consumes it.
type Daemon struct {
	params Params
	clock  func() time.Time
	reg    *telemetry.Registry
	mux    *http.ServeMux

	queries     *telemetry.Counter
	queryErrors *telemetry.Counter
	evaluated   *telemetry.Counter
	served      *telemetry.Counter
	inflight    *telemetry.Gauge
	evalPerSec  *telemetry.Gauge

	mu     sync.Mutex
	caches map[string]*EphemerisCache
}

// NewDaemon validates the parameters and assembles the daemon's routes.
// clock supplies wall time for the throughput gauge; pass time.Now from
// the command layer.
func NewDaemon(p Params, clock func() time.Time) (*Daemon, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if clock == nil {
		return nil, fmt.Errorf("qntn: daemon needs a clock")
	}
	reg := telemetry.NewRegistry()
	d := &Daemon{
		params:      p,
		clock:       clock,
		reg:         reg,
		mux:         http.NewServeMux(),
		queries:     reg.Counter("daemon_queries_total"),
		queryErrors: reg.Counter("daemon_query_errors_total"),
		evaluated:   reg.Counter("daemon_requests_evaluated_total"),
		served:      reg.Counter("daemon_requests_served_total"),
		inflight:    reg.Gauge("daemon_inflight_queries"),
		evalPerSec:  reg.Gauge("daemon_requests_evaluated_per_sec"),
	}
	d.mux.HandleFunc("POST /v1/traffic", d.handleTraffic)
	d.mux.HandleFunc("GET /metrics", d.handleMetrics)
	d.mux.HandleFunc("GET /healthz", d.handleHealthz)
	return d, nil
}

// Handler returns the daemon's HTTP handler; mount it on an http.Server.
func (d *Daemon) Handler() http.Handler { return d.mux }

// Registry returns the daemon-lifetime metric registry (the /metrics
// source).
func (d *Daemon) Registry() *telemetry.Registry { return d.reg }

// RequestsEvaluated returns the lifetime count of admission attempts
// across all queries — the throughput benchmark's numerator.
func (d *Daemon) RequestsEvaluated() uint64 { return d.evaluated.Value() }

// TrafficQuery is the request body of POST /v1/traffic: a scenario plus a
// traffic configuration. Horizon is a Go duration string ("6h", "90m");
// empty means the engine's one-day default.
type TrafficQuery struct {
	// Arch selects the architecture: "space-ground" (default), "air-ground"
	// or "hybrid".
	Arch string `json:"arch,omitempty"`
	// Satellites is the constellation size for the space-ground and hybrid
	// architectures.
	Satellites         int     `json:"satellites,omitempty"`
	RatePerHourPerSite float64 `json:"rate_per_hour_per_site"`
	DiurnalAmplitude   float64 `json:"diurnal_amplitude,omitempty"`
	PeakHour           float64 `json:"peak_hour,omitempty"`
	Horizon            string  `json:"horizon,omitempty"`
	Seed               int64   `json:"seed,omitempty"`
	Workers            int     `json:"workers,omitempty"`
}

// ephemeris returns the shared satellite cache for the given horizon,
// building it on first use: the full catalog propagated at every topology
// instant the query will evaluate.
func (d *Daemon) ephemeris(horizon time.Duration) (*EphemerisCache, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := horizon.String()
	if c, ok := d.caches[key]; ok {
		return c, nil
	}
	step := d.params.TopologyStep()
	var times []time.Duration
	for t := time.Duration(0); t <= horizon; t += step {
		times = append(times, t)
	}
	c, err := NewEphemerisCache(orbit.MaxPaperSatellites, d.params, times)
	if err != nil {
		return nil, err
	}
	if d.caches == nil {
		d.caches = make(map[string]*EphemerisCache)
	}
	d.caches[key] = c
	return c, nil
}

// prepare resolves a query into a runnable (scenario, traffic config)
// pair. Space-ground scenarios assemble from the shared ephemeris cache;
// the cached positions are the propagator's own output, so cached and
// freshly built scenarios produce byte-identical results.
func (d *Daemon) prepare(q TrafficQuery) (*Scenario, TrafficConfig, error) {
	cfg := TrafficConfig{
		RatePerHourPerSite: q.RatePerHourPerSite,
		Diurnal:            DiurnalProfile{Amplitude: q.DiurnalAmplitude, PeakHour: q.PeakHour},
		Seed:               q.Seed,
		Workers:            q.Workers,
	}
	if q.Horizon != "" {
		h, err := time.ParseDuration(q.Horizon)
		if err != nil {
			return nil, cfg, fmt.Errorf("qntn: traffic horizon: %w", err)
		}
		cfg.Horizon = h
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, cfg, err
	}
	switch q.Arch {
	case "", "space-ground":
		cache, err := d.ephemeris(cfg.Horizon)
		if err != nil {
			return nil, cfg, err
		}
		sc, err := cache.Scenario(q.Satellites)
		if err != nil {
			return nil, cfg, err
		}
		return sc, cfg, nil
	case "air-ground":
		sc, err := NewAirGround(d.params)
		return sc, cfg, err
	case "hybrid":
		sc, err := NewHybrid(q.Satellites, d.params)
		return sc, cfg, err
	default:
		return nil, cfg, fmt.Errorf("qntn: unknown architecture %q (want space-ground, air-ground or hybrid)", q.Arch)
	}
}

// fail records a query error and writes the HTTP error response.
func (d *Daemon) fail(w http.ResponseWriter, code int, err error) {
	d.queryErrors.Inc()
	http.Error(w, err.Error(), code)
}

// handleTraffic runs one traffic query and streams the per-step event
// records back as NDJSON — the same strict codec the library's telemetry
// flush uses, so daemon output is byte-identical to an in-process run.
// Summary figures ride in X-Qntn-* response headers.
func (d *Daemon) handleTraffic(w http.ResponseWriter, r *http.Request) {
	d.inflight.Add(1)
	defer d.inflight.Add(-1)
	d.queries.Inc()

	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var q TrafficQuery
	if err := dec.Decode(&q); err != nil {
		d.fail(w, http.StatusBadRequest, fmt.Errorf("qntn: traffic query: %w", err))
		return
	}
	sc, cfg, err := d.prepare(q)
	if err != nil {
		d.fail(w, http.StatusBadRequest, err)
		return
	}
	col := telemetry.NewCollector()
	sc.Instrument(col)
	start := d.clock()
	res, err := sc.RunTraffic(cfg)
	if err != nil {
		d.fail(w, http.StatusInternalServerError, err)
		return
	}
	elapsed := d.clock().Sub(start)

	d.reg.Merge(col.Registry)
	d.evaluated.Add(uint64(res.RequestsEvaluated))
	d.served.Add(uint64(res.Served))
	if s := elapsed.Seconds(); s > 0 {
		d.evalPerSec.Set(int64(float64(res.RequestsEvaluated) / s))
	}

	h := w.Header()
	h.Set("Content-Type", "application/x-ndjson")
	h.Set("X-Qntn-Sites", strconv.Itoa(res.Sites))
	h.Set("X-Qntn-Arrivals", strconv.Itoa(res.Arrivals))
	h.Set("X-Qntn-Served", strconv.Itoa(res.Served))
	h.Set("X-Qntn-Served-Immediately", strconv.Itoa(res.ServedImmediately))
	h.Set("X-Qntn-Requests-Evaluated", strconv.Itoa(res.RequestsEvaluated))
	h.Set("X-Qntn-Steps", strconv.Itoa(res.Steps))
	if err := col.Events.WriteNDJSON(w); err != nil {
		// Headers and part of the body may be gone already; nothing to
		// repair mid-stream. The error counter still records it.
		d.queryErrors.Inc()
	}
}

// handleMetrics serves the daemon-lifetime registry in Prometheus text
// format.
func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := d.reg.WritePrometheus(w); err != nil {
		d.queryErrors.Inc()
	}
}

// handleHealthz is the liveness probe.
func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}
