package qntn

import (
	"testing"
	"time"
)

func TestDetailedCoverageAirGround(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	detail, err := sc.DetailedCoverage(30 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if detail.All.Percent() != 100 {
		t.Fatalf("all-pairs coverage %.2f%%", detail.All.Percent())
	}
	if len(detail.Pairs) != 3 {
		t.Fatalf("%d pairs", len(detail.Pairs))
	}
	for _, p := range detail.Pairs {
		if p.Result.Percent() != 100 {
			t.Fatalf("pair %s-%s coverage %.2f%%", p.NetworkA, p.NetworkB, p.Result.Percent())
		}
	}
	// Static topology: only the initial link batch, no later transitions.
	if detail.LinkTransitions != 0 {
		t.Fatalf("static air-ground topology flapped %d times", detail.LinkTransitions)
	}
}

func TestDetailedCoverageSpaceGround(t *testing.T) {
	sc, err := NewSpaceGround(108, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	const window = 2 * time.Hour
	detail, err := sc.DetailedCoverage(window)
	if err != nil {
		t.Fatal(err)
	}
	// Consistency with the plain coverage path.
	ref, err := sc.Coverage(window)
	if err != nil {
		t.Fatal(err)
	}
	if detail.All.CoveredSteps != ref.CoveredSteps {
		t.Fatalf("detailed all-pairs %d steps vs reference %d", detail.All.CoveredSteps, ref.CoveredSteps)
	}
	// Each pair individually covers at least as much as the all-pairs
	// intersection.
	for _, p := range detail.Pairs {
		if p.Result.CoveredSteps < detail.All.CoveredSteps {
			t.Fatalf("pair %s-%s covered %d < all-pairs %d",
				p.NetworkA, p.NetworkB, p.Result.CoveredSteps, detail.All.CoveredSteps)
		}
	}
	// A moving constellation must produce link churn.
	if detail.LinkTransitions == 0 {
		t.Fatal("no link transitions over two hours of satellite motion")
	}
	// The pair explanation of Fig. 7 > Fig. 6: at least one pair covers
	// strictly more than the three-way intersection (almost surely over
	// 2h; if equal the serving argument degenerates but does not break).
	better := false
	for _, p := range detail.Pairs {
		if p.Result.CoveredSteps > detail.All.CoveredSteps {
			better = true
		}
	}
	if !better {
		t.Log("note: no pair exceeded the all-pairs coverage in this window")
	}
}

func TestDetailedCoverageRejectsBadDuration(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.DetailedCoverage(0); err == nil {
		t.Fatal("zero duration accepted")
	}
}
