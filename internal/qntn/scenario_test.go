package qntn

import (
	"math"
	"testing"
	"time"

	"qntn/internal/geo"
	"qntn/internal/orbit"
)

func TestNewAirGroundTopology(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if sc.Arch != AirGround {
		t.Fatal("architecture mismatch")
	}
	if sc.Net.NumNodes() != 32 { // 31 ground + 1 HAP
		t.Fatalf("node count %d, want 32", sc.Net.NumNodes())
	}
	if len(sc.RelayIDs) != 1 || sc.RelayIDs[0] != HAPID {
		t.Fatalf("relay IDs %v", sc.RelayIDs)
	}
	g, err := sc.Graph(0)
	if err != nil {
		t.Fatal(err)
	}
	// Every ground host must have a usable HAP link (the paper's fixed
	// air-ground connectivity).
	for lan, ids := range sc.GroundIDs {
		for _, id := range ids {
			eta, ok := g.Eta(id, HAPID)
			if !ok {
				t.Fatalf("%s host %s has no HAP link", lan, id)
			}
			if eta < 0.7 || eta > 1 {
				t.Fatalf("HAP link eta %g for %s", eta, id)
			}
		}
	}
	if !sc.Bridged(g) {
		t.Fatal("air-ground should be bridged")
	}
}

func TestHAPElevationAboveMask(t *testing.T) {
	// The paper's HAP position must clear the π/9 elevation mask from all
	// three cities — otherwise the architecture could not serve 100%.
	p := DefaultParams()
	hap := geo.LLA{LatDeg: p.HAPLatDeg, LonDeg: p.HAPLonDeg, AltM: p.HAPAltM}
	for _, lan := range GroundNetworks() {
		for i, node := range lan.Nodes {
			el := geo.Look(node, hap.ECEF()).ElevationRad
			if el < p.MinElevationRad {
				t.Errorf("%s node %d sees HAP at %.1f°, below the mask", lan.Name, i, geo.Deg(el))
			}
		}
	}
}

func TestNewSpaceGroundTopology(t *testing.T) {
	sc, err := NewSpaceGround(12, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if sc.Net.NumNodes() != 43 { // 31 ground + 12 satellites
		t.Fatalf("node count %d, want 43", sc.Net.NumNodes())
	}
	if len(sc.RelayIDs) != 12 || sc.RelayIDs[0] != "SAT-001" {
		t.Fatalf("relay IDs %v", sc.RelayIDs)
	}
	if _, err := NewSpaceGround(7, DefaultParams()); err == nil {
		t.Fatal("invalid satellite count accepted")
	}
}

func TestFiberLinksIntraLANOnly(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.Graph(0)
	if err != nil {
		t.Fatal(err)
	}
	// Intra-LAN pairs all linked.
	for _, ids := range sc.GroundIDs {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if _, ok := g.Eta(ids[i], ids[j]); !ok {
					t.Fatalf("missing fiber link %s-%s", ids[i], ids[j])
				}
			}
		}
	}
	// Cross-LAN ground pairs never directly linked.
	if _, ok := g.Eta(sc.GroundIDs[NetworkTTU][0], sc.GroundIDs[NetworkEPB][0]); ok {
		t.Fatal("cross-LAN fiber link should not exist")
	}
	if _, ok := g.Eta(sc.GroundIDs[NetworkTTU][0], sc.GroundIDs[NetworkORNL][0]); ok {
		t.Fatal("cross-LAN fiber link should not exist")
	}
}

func TestEvaluateLinkSymmetricAndGuarded(t *testing.T) {
	sc, err := NewSpaceGround(6, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ttu := sc.GroundIDs[NetworkTTU][0]
	for _, at := range []time.Duration{0, 15 * time.Minute, 3 * time.Hour} {
		for _, sat := range sc.RelayIDs {
			e1, ok1 := sc.EvaluateLink(ttu, sat, at)
			e2, ok2 := sc.EvaluateLink(sat, ttu, at)
			if ok1 != ok2 || math.Abs(e1-e2) > 1e-15 {
				t.Fatalf("link evaluation not symmetric for %s-%s at %v", ttu, sat, at)
			}
		}
	}
	if _, ok := sc.EvaluateLink("nope", ttu, 0); ok {
		t.Fatal("unknown node should have no link")
	}
	if _, ok := sc.EvaluateLink(ttu, ttu, 0); ok {
		t.Fatal("self link should not exist")
	}
}

func TestSatelliteLinksComeAndGo(t *testing.T) {
	// Over a day, any given satellite should be sometimes usable and
	// mostly not (it spends most of its orbit away from Tennessee).
	sc, err := NewSpaceGround(6, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ttu := sc.GroundIDs[NetworkTTU][0]
	sat := sc.RelayIDs[0]
	up, down := 0, 0
	for at := time.Duration(0); at < 24*time.Hour; at += 5 * time.Minute {
		if _, ok := sc.EvaluateLink(ttu, sat, at); ok {
			up++
		} else {
			down++
		}
	}
	if up == 0 {
		t.Fatal("satellite never visible over a day")
	}
	if down == 0 {
		t.Fatal("satellite always visible — gating is broken")
	}
	if up > down {
		t.Fatalf("satellite usable %d/%d sample points — far too permissive", up, up+down)
	}
}

func TestSpaceLinkRespectsElevationMask(t *testing.T) {
	p := DefaultParams()
	sc, err := NewSpaceGround(108, p)
	if err != nil {
		t.Fatal(err)
	}
	host := sc.groundByID[sc.GroundIDs[NetworkTTU][0]]
	found := false
	for at := time.Duration(0); at < 6*time.Hour; at += time.Minute {
		for _, sat := range sc.relays {
			la := geo.Look(host.LLA(), sat.PositionAt(at))
			_, usable := sc.EvaluateLink(host.ID(), sat.ID(), at)
			if usable {
				found = true
				if la.ElevationRad < p.MinElevationRad {
					t.Fatalf("usable link below elevation mask (%.1f°)", geo.Deg(la.ElevationRad))
				}
			}
		}
	}
	if !found {
		t.Fatal("no usable satellite link found in 6 hours — gating too strict")
	}
}

func TestNewSpaceGroundFromSheetsMatchesDirect(t *testing.T) {
	p := DefaultParams()
	direct, err := NewSpaceGround(6, p)
	if err != nil {
		t.Fatal(err)
	}
	elems, err := orbit.PaperConstellation(6)
	if err != nil {
		t.Fatal(err)
	}
	sheets, err := orbit.GenerateSheets(elems, 2*time.Hour, p.StepInterval)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := NewSpaceGroundFromSheets(sheets, p)
	if err != nil {
		t.Fatal(err)
	}
	// At exact sample instants, the two scenarios agree on every link.
	ttu := direct.GroundIDs[NetworkTTU][0]
	for at := time.Duration(0); at <= 2*time.Hour-p.StepInterval; at += p.StepInterval {
		for _, sat := range direct.RelayIDs {
			e1, ok1 := direct.EvaluateLink(ttu, sat, at)
			e2, ok2 := replay.EvaluateLink(ttu, sat, at)
			if ok1 != ok2 || math.Abs(e1-e2) > 1e-9 {
				t.Fatalf("sheet replay diverges at %v for %s: (%v,%v) vs (%v,%v)", at, sat, e1, ok1, e2, ok2)
			}
		}
	}
	if _, err := NewSpaceGroundFromSheets(nil, p); err == nil {
		t.Fatal("empty sheet list accepted")
	}
}

func TestNewHybridTopology(t *testing.T) {
	sc, err := NewHybrid(6, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if sc.Arch != Hybrid {
		t.Fatal("architecture mismatch")
	}
	if sc.Net.NumNodes() != 38 { // 31 ground + HAP + 6 sats
		t.Fatalf("node count %d, want 38", sc.Net.NumNodes())
	}
	g, err := sc.Graph(0)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Bridged(g) {
		t.Fatal("hybrid should inherit the HAP's full bridging")
	}
}

func TestNetworkOf(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if sc.NetworkOf("TTU-01") != NetworkTTU {
		t.Fatal("NetworkOf ground host wrong")
	}
	if sc.NetworkOf(HAPID) != "" || sc.NetworkOf("nope") != "" {
		t.Fatal("NetworkOf relay/unknown should be empty")
	}
}

func TestUseJ2ChangesPropagationButNotHeadline(t *testing.T) {
	p := DefaultParams()
	plain, err := NewSpaceGround(108, p)
	if err != nil {
		t.Fatal(err)
	}
	p.UseJ2 = true
	j2, err := NewSpaceGround(108, p)
	if err != nil {
		t.Fatal(err)
	}
	// Positions diverge over hours...
	sat := plain.Net.Node("SAT-001")
	satJ2 := j2.Net.Node("SAT-001")
	if sat.PositionAt(6*time.Hour).Distance(satJ2.PositionAt(6*time.Hour)) < 1e3 {
		t.Fatal("J2 flag had no effect on propagation")
	}
	// ...but the coverage statistic stays close (the design rationale for
	// the two-body default).
	const window = 3 * time.Hour
	covPlain, err := plain.Coverage(window)
	if err != nil {
		t.Fatal(err)
	}
	covJ2, err := j2.Coverage(window)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(covPlain.Percent() - covJ2.Percent()); diff > 10 {
		t.Fatalf("J2 moved coverage by %.2f points", diff)
	}
}
