package qntn

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"qntn/internal/netsim"
	"qntn/internal/orbit"
	"qntn/internal/quantum/protocol"
	"qntn/internal/routing"
)

// benchJSONPath, when set, makes TestMain write every sweep benchmark
// result (plus derived parallel speedups) to the given file as JSON:
//
//	go test -bench=Sweep -benchtime=1x -run='^$' ./internal/qntn -args -benchjson=BENCH_sweep.json
//
// The emitter only records; it never asserts a speedup, because the
// attainable speedup is a property of the host (on a single-CPU box it is
// 1x by construction). CI archives the file so multi-core runs document
// the scaling.
var benchJSONPath = flag.String("benchjson", "", "write sweep benchmark results to this JSON file")

type sweepBenchRecord struct {
	// Name is the benchmark family ("CoverageSweep", "ServeSweep").
	Name string `json:"name"`
	// Workers is the pool size the family ran with.
	Workers int `json:"workers"`
	// Iterations and NsPerOp mirror the standard benchmark output.
	Iterations int     `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp mirror -benchmem, measured as monotonic
	// runtime.MemStats deltas (Mallocs, TotalAlloc) around the b.N loop.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	// SpeedupVs1 is NsPerOp(workers=1) / NsPerOp, filled in at flush time
	// when the single-worker baseline was benchmarked in the same run.
	SpeedupVs1 float64 `json:"speedup_vs_1,omitempty"`
}

var sweepBench struct {
	sync.Mutex
	records []sweepBenchRecord
}

// allocMeter measures allocation totals across a benchmark loop via
// monotonic runtime.MemStats counters. testing.B does not expose its
// -benchmem accounting programmatically, so the emitter meters itself; the
// numbers track the standard output closely for loops long enough to
// amortize the two ReadMemStats calls.
type allocMeter struct {
	mallocs uint64
	bytes   uint64
}

func (m *allocMeter) start() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.mallocs, m.bytes = ms.Mallocs, ms.TotalAlloc
}

// stop returns the allocation count and byte delta since start.
func (m *allocMeter) stop() (allocs, bytes uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs - m.mallocs, ms.TotalAlloc - m.bytes
}

// recordSweepBench captures a finished benchmark's timing and allocation
// counts for the JSON emitter. Call it after the b.N loop, with the deltas
// from an allocMeter started just before the loop.
func recordSweepBench(b *testing.B, family string, workers int, allocs, bytes uint64) {
	b.Helper()
	rec := sweepBenchRecord{
		Name:        family,
		Workers:     workers,
		Iterations:  b.N,
		NsPerOp:     float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		AllocsPerOp: float64(allocs) / float64(b.N),
		BytesPerOp:  float64(bytes) / float64(b.N),
	}
	sweepBench.Lock()
	sweepBench.records = append(sweepBench.records, rec)
	sweepBench.Unlock()
}

// snapshot108PrePR pins the last measurement of
// BenchmarkSnapshot108Satellites before the per-step fast path (map-backed
// graphs, scalar per-pair link physics; Intel Xeon @ 2.10 GHz), so the
// emitted report documents the gain next to the fresh numbers.
var snapshot108PrePR = sweepBenchRecord{
	Name:        "Snapshot108/pre-fast-path",
	Workers:     1,
	Iterations:  1,
	NsPerOp:     3344511,
	AllocsPerOp: 340,
	BytesPerOp:  52472,
}

// flushSweepBench derives speedups and writes the JSON report.
func flushSweepBench(path string) error {
	sweepBench.Lock()
	defer sweepBench.Unlock()
	baseline := make(map[string]float64)
	for _, r := range sweepBench.records {
		if r.Workers == 1 {
			baseline[r.Name] = r.NsPerOp
		}
	}
	for i, r := range sweepBench.records {
		if base, ok := baseline[r.Name]; ok && r.NsPerOp > 0 {
			sweepBench.records[i].SpeedupVs1 = base / r.NsPerOp
		}
	}
	report := struct {
		GOMAXPROCS int `json:"gomaxprocs"`
		NumCPU     int `json:"num_cpu"`
		// Snapshot108PrePR and the two derived fields document the
		// per-step fast path against the pinned pre-fast-path numbers.
		Snapshot108PrePR        *sweepBenchRecord  `json:"snapshot108_pre_fast_path,omitempty"`
		Snapshot108Speedup      float64            `json:"snapshot108_speedup_vs_pre_fast_path,omitempty"`
		Snapshot108AllocsFactor float64            `json:"snapshot108_allocs_ratio_vs_pre_fast_path,omitempty"`
		// CoverageDay108EventSpeedup documents the event-driven engine
		// against the brute-force stepped path on the paper's hardest
		// coverage run (108 satellites, full day).
		CoverageDay108EventSpeedup float64 `json:"coverage_day108_event_speedup_vs_stepped,omitempty"`
		// Walker1kPairsVisitedRatio is the fraction of the n(n-1)/2 node
		// pairs the spatial index actually visits per step on the
		// 1008-satellite Walker run (dense generation visits 1.0);
		// Walker1kDayCostRatio is NsPerOp(n=1008)/NsPerOp(n=504) over the
		// same daylong grid — ~2 when per-step cost is linear in the
		// satellite count, ~4 if it were quadratic.
		Walker1kPairsVisitedRatio float64 `json:"walker1k_pairs_visited_ratio,omitempty"`
		Walker1kDayCostRatio      float64 `json:"walker1k_day_cost_ratio,omitempty"`
		// ServeDaemonEvalPerSec is the serve daemon's end-to-end admission
		// throughput — requests evaluated per wall-clock second across the
		// HTTP round trip, captured by BenchmarkServeDaemonThroughput.
		ServeDaemonEvalPerSec float64            `json:"serve_daemon_requests_evaluated_per_sec,omitempty"`
		Benchmarks            []sweepBenchRecord `json:"benchmarks"`
	}{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Benchmarks: sweepBench.records,
	}
	for _, r := range sweepBench.records {
		if r.Name == "Snapshot108" && r.Workers == 1 && r.NsPerOp > 0 {
			pre := snapshot108PrePR
			report.Snapshot108PrePR = &pre
			report.Snapshot108Speedup = pre.NsPerOp / r.NsPerOp
			if pre.AllocsPerOp > 0 {
				report.Snapshot108AllocsFactor = r.AllocsPerOp / pre.AllocsPerOp
			}
			break
		}
	}
	var day108Stepped, day108Event float64
	for _, r := range sweepBench.records {
		switch r.Name {
		case "CoverageDay108/stepped":
			day108Stepped = r.NsPerOp
		case "CoverageDay108/event":
			day108Event = r.NsPerOp
		}
	}
	if day108Stepped > 0 && day108Event > 0 {
		report.CoverageDay108EventSpeedup = day108Stepped / day108Event
	}
	report.Walker1kPairsVisitedRatio = walker1kPairsVisitedRatio
	var walker504, walker1008 float64
	for _, r := range sweepBench.records {
		switch r.Name {
		case "CoverageDayWalker1k/n=504":
			walker504 = r.NsPerOp
		case "CoverageDayWalker1k/n=1008":
			walker1008 = r.NsPerOp
		}
	}
	if walker504 > 0 && walker1008 > 0 {
		report.Walker1kDayCostRatio = walker1008 / walker504
	}
	report.ServeDaemonEvalPerSec = serveDaemonEvalPerSec
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func TestMain(m *testing.M) {
	code := m.Run()
	if *benchJSONPath != "" {
		if err := flushSweepBench(*benchJSONPath); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

// benchWorkerCounts are the pool sizes each sweep family is measured at.
var benchWorkerCounts = []int{1, 2, 4}

// BenchmarkCoverageSweep measures the Fig. 6 sweep (all 18 paper sizes over
// a two-hour window) at several worker counts.
func BenchmarkCoverageSweep(b *testing.B) {
	p := DefaultParams()
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var m allocMeter
			m.start()
			for i := 0; i < b.N; i++ {
				if _, err := CoverageSweepParallel(p, PaperSweepSizes(), 2*time.Hour, workers); err != nil {
					b.Fatal(err)
				}
			}
			allocs, bytes := m.stop()
			recordSweepBench(b, "CoverageSweep", workers, allocs, bytes)
		})
	}
}

// BenchmarkServeSweep measures the Fig. 7/8 sweep (all 18 paper sizes, a
// quarter of the paper workload) at several worker counts.
func BenchmarkServeSweep(b *testing.B) {
	p := DefaultParams()
	cfg := ServeConfig{RequestsPerStep: 25, Steps: 25, Seed: 1}
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var m allocMeter
			m.start()
			for i := 0; i < b.N; i++ {
				if _, err := ServeSweepParallel(p, PaperSweepSizes(), cfg, workers); err != nil {
					b.Fatal(err)
				}
			}
			allocs, bytes := m.stop()
			recordSweepBench(b, "ServeSweep", workers, allocs, bytes)
		})
	}
}

// BenchmarkCoverageDay108 measures the paper's hardest coverage run — the
// 108-satellite constellation over a full day — on both execution paths:
// the brute-force stepped simulation and the event-driven visibility-window
// engine (identical results; see the oracle equivalence suite). One warmup
// run precedes the timed loop so both paths are measured at their reusable
// steady state.
func BenchmarkCoverageDay108(b *testing.B) {
	for _, mode := range []struct {
		name  string
		event bool
	}{{"stepped", false}, {"event", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p := DefaultParams()
			p.EventDriven = mode.event
			sc, err := NewSpaceGround(108, p)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sc.FullDayCoverage(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var m allocMeter
			m.start()
			for i := 0; i < b.N; i++ {
				if _, err := sc.FullDayCoverage(); err != nil {
					b.Fatal(err)
				}
			}
			allocs, bytes := m.stop()
			recordSweepBench(b, "CoverageDay108/"+mode.name, 1, allocs, bytes)
		})
	}
}

// walker1kPairsVisitedRatio is captured by BenchmarkCoverageDayWalker1k's
// 1008-satellite case and emitted by flushSweepBench.
var walker1kPairsVisitedRatio float64

// BenchmarkCoverageDayWalker1k measures daylong stepped coverage of
// global-scale Walker constellations over the multi-continent ground set —
// the regime the spatial index targets. The two sizes pin the scaling: with
// dense n² candidate generation the per-step cost would quadruple from
// n=504 to n=1008; with the index it roughly doubles (the JSON report
// derives the ratio). The 1008-satellite case also records the index's
// selectivity — the fraction of node pairs visited per step.
func BenchmarkCoverageDayWalker1k(b *testing.B) {
	shell := func(inclinationDeg, altitudeM float64) orbit.WalkerShell {
		return orbit.WalkerShell{TotalSats: 504, Planes: 12, Phasing: 1,
			InclinationDeg: inclinationDeg, AltitudeM: altitudeM}
	}
	cases := []struct {
		name   string
		shells []orbit.WalkerShell
	}{
		{"n=504", []orbit.WalkerShell{shell(53, 550e3)}},
		{"n=1008", []orbit.WalkerShell{shell(53, 550e3), shell(70, 600e3)}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			spec := WalkerSpec{Shells: tc.shells, ISLGrid: true, Ground: GlobalGroundNetworks()}
			sc, err := NewWalker(spec, DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			g := routing.NewGraph()
			var st netsim.SnapshotStats
			if err := sc.Net.SnapshotIntoStats(g, 0, &st); err != nil {
				b.Fatal(err)
			}
			if tc.name == "n=1008" && st.Pairs > 0 {
				walker1kPairsVisitedRatio = float64(int64(st.Pairs)-st.IndexCulled) / float64(st.Pairs)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var m allocMeter
			m.start()
			for i := 0; i < b.N; i++ {
				if _, err := sc.FullDayCoverage(); err != nil {
					b.Fatal(err)
				}
			}
			allocs, bytes := m.stop()
			recordSweepBench(b, "CoverageDayWalker1k/"+tc.name, 1, allocs, bytes)
		})
	}
}

// serveDaemonEvalPerSec is captured by BenchmarkServeDaemonThroughput and
// emitted by flushSweepBench: admission attempts per wall-clock second
// through the daemon's full HTTP round trip.
var serveDaemonEvalPerSec float64

// BenchmarkServeDaemonThroughput measures the serve daemon end to end: each
// iteration posts one fixed space-ground traffic query over HTTP and drains
// the NDJSON response. One warmup query before the timed loop populates the
// shared ephemeris cache, so the loop measures steady-state query cost —
// the figure an operator sizing a deployment cares about. The derived
// requests-evaluated/sec rate lands in the JSON report.
func BenchmarkServeDaemonThroughput(b *testing.B) {
	d, err := NewDaemon(DefaultParams(), testClock())
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	const query = `{"arch":"space-ground","satellites":54,"rate_per_hour_per_site":30,"horizon":"30m","seed":9}`
	post := func() {
		resp, err := http.Post(srv.URL+"/v1/traffic", "application/json", strings.NewReader(query))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("traffic query status %d", resp.StatusCode)
		}
	}
	post() // warm the ephemeris cache

	evalBefore := d.RequestsEvaluated()
	b.ReportAllocs()
	b.ResetTimer()
	var m allocMeter
	m.start()
	for i := 0; i < b.N; i++ {
		post()
	}
	allocs, bytes := m.stop()
	evaluated := d.RequestsEvaluated() - evalBefore
	if secs := b.Elapsed().Seconds(); secs > 0 {
		serveDaemonEvalPerSec = float64(evaluated) / secs
		b.ReportMetric(serveDaemonEvalPerSec, "evals/s")
	}
	recordSweepBench(b, "ServeDaemonThroughput", 1, allocs, bytes)
}

// BenchmarkEphemerisCache measures building the shared 108-satellite cache
// for a day of 30-second samples — the cost the sweeps now pay once instead
// of once per size.
func BenchmarkEphemerisCache(b *testing.B) {
	p := DefaultParams()
	var times []time.Duration
	for at := time.Duration(0); at < 24*time.Hour; at += 30 * time.Second {
		times = append(times, at)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewEphemerisCache(108, p, times); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeProtocol108 measures the protocol layer's serving overhead
// on the paper's largest constellation: the same RunServe workload with the
// entanglement protocol disabled (the seed model's hot path, byte-identical
// to pre-protocol behavior) and enabled (disjoint-route extraction, swap
// draws, dephasing and distillation per served request). The off/on pair in
// BENCH_sweep.json is the documented cost of protocol realism.
func BenchmarkServeProtocol108(b *testing.B) {
	cfg := ServeConfig{RequestsPerStep: 25, Steps: 25, Seed: 1}
	variants := []struct {
		name  string
		proto protocol.Config
	}{
		{name: "off"},
		{name: "on", proto: protocol.Config{
			MemoryT2:    20 * time.Millisecond,
			SwapSuccess: 0.85,
			PurifyPaths: 3,
			Seed:        5,
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			p := DefaultParams()
			p.Protocol = v.proto
			sc, err := NewSpaceGround(108, p)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sc.RunServe(cfg); err != nil { // warm the ephemerides
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var m allocMeter
			m.start()
			for i := 0; i < b.N; i++ {
				if _, err := sc.RunServe(cfg); err != nil {
					b.Fatal(err)
				}
			}
			allocs, bytes := m.stop()
			recordSweepBench(b, "ServeProtocol108/"+v.name, 1, allocs, bytes)
		})
	}
}
