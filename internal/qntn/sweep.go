package qntn

import (
	"fmt"
	"time"

	"qntn/internal/netsim"
)

// CoveragePoint is one mark of the paper's Fig. 6 sweep.
type CoveragePoint struct {
	Satellites int
	Result     CoverageResult
}

// PaperSweepSizes returns the paper's constellation sizes: 6, 12, ..., 108.
func PaperSweepSizes() []int {
	sizes := make([]int, 0, 18)
	for n := 6; n <= 108; n += 6 {
		sizes = append(sizes, n)
	}
	return sizes
}

// CoverageSweep computes the Fig. 6 curve — full-period coverage percentage
// as a function of constellation size — for every requested prefix of the
// Table II catalog.
//
// Because the paper's constellations are nested prefixes of Table II, the
// sweep propagates the full 108-satellite scenario once, caches which
// satellites cover which LAN (and which satellite pairs hold a usable ISL)
// at every step, and then answers each size with a union-find over the
// cached booleans. This is exactly equivalent to running
// Scenario.Coverage per size, at a small fraction of the cost; the
// equivalence is asserted in the test suite.
func CoverageSweep(p Params, sizes []int, duration time.Duration) ([]CoveragePoint, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("qntn: empty size list")
	}
	maxN := 0
	for _, n := range sizes {
		if n > maxN {
			maxN = n
		}
	}
	sc, err := NewSpaceGround(maxN, p)
	if err != nil {
		return nil, err
	}
	if duration <= 0 {
		return nil, fmt.Errorf("qntn: non-positive duration %v", duration)
	}
	step := p.StepInterval
	nLAN := len(sc.LANs)

	// Representative hosts per LAN for the early-exit coverage check.
	lanHosts := make([][]netsim.Node, nLAN)
	for li, lan := range sc.LANs {
		for _, id := range sc.GroundIDs[lan.Name] {
			lanHosts[li] = append(lanHosts[li], sc.Net.Node(id))
		}
	}
	sats := sc.relays

	results := make([]CoverageResult, len(sizes))
	for i := range results {
		results[i].Total = duration
	}

	coversLAN := make([]bool, maxN*nLAN)
	islNbr := make([][]int, maxN)
	uf := newUnionFind(nLAN + maxN)

	for at := time.Duration(0); at+step <= duration; at += step {
		// Phase 1: evaluate physics once for the largest constellation.
		for si, sat := range sats {
			islNbr[si] = islNbr[si][:0]
			for li := range lanHosts {
				covered := false
				for _, h := range lanHosts[li] {
					if _, ok := sc.evaluateLink(h, sat, at); ok {
						covered = true
						break
					}
				}
				coversLAN[si*nLAN+li] = covered
			}
		}
		for i := 0; i < len(sats); i++ {
			for j := i + 1; j < len(sats); j++ {
				if _, ok := sc.evaluateLink(sats[i], sats[j], at); ok {
					islNbr[i] = append(islNbr[i], j)
				}
			}
		}

		// Phase 2: answer each size from the cache.
		for ri, n := range sizes {
			res := &results[ri]
			res.Steps++
			if !bridgedPrefix(uf, coversLAN, islNbr, nLAN, n) {
				continue
			}
			res.CoveredSteps++
			res.Covered += step
			start := at
			end := at + step
			if k := len(res.Intervals); k > 0 && res.Intervals[k-1].End == start {
				res.Intervals[k-1].End = end
			} else {
				res.Intervals = append(res.Intervals, Interval{Start: start, End: end})
			}
		}
	}

	points := make([]CoveragePoint, len(sizes))
	for i, n := range sizes {
		points[i] = CoveragePoint{Satellites: n, Result: results[i]}
	}
	return points, nil
}

// bridgedPrefix checks whether the first n satellites bridge all LANs,
// reusing a preallocated union-find (elements 0..nLAN-1 are LANs,
// nLAN+i is satellite i).
func bridgedPrefix(uf *unionFind, coversLAN []bool, islNbr [][]int, nLAN, n int) bool {
	uf.reset(nLAN + n)
	for si := 0; si < n; si++ {
		for li := 0; li < nLAN; li++ {
			if coversLAN[si*nLAN+li] {
				uf.union(li, nLAN+si)
			}
		}
		for _, j := range islNbr[si] {
			if j < n {
				uf.union(nLAN+si, nLAN+j)
			}
		}
	}
	root := uf.find(0)
	for li := 1; li < nLAN; li++ {
		if uf.find(li) != root {
			return false
		}
	}
	return true
}

// reset reinitializes the first n elements of the union-find.
func (uf *unionFind) reset(n int) {
	for i := 0; i < n; i++ {
		uf.parent[i] = i
		uf.size[i] = 1
	}
}

// ServePoint is one mark of the paper's Fig. 7 / Fig. 8 sweeps.
type ServePoint struct {
	Satellites int
	Result     ServeResult
}

// ServeSweep runs the serve experiment (Fig. 7: served percentage; Fig. 8:
// average fidelity) for each constellation size. Sizes are evaluated
// independently with identical workload seeds so the request sequences
// match across sizes.
func ServeSweep(p Params, sizes []int, cfg ServeConfig) ([]ServePoint, error) {
	points := make([]ServePoint, 0, len(sizes))
	for _, n := range sizes {
		sc, err := NewSpaceGround(n, p)
		if err != nil {
			return nil, err
		}
		res, err := sc.RunServe(cfg)
		if err != nil {
			return nil, fmt.Errorf("qntn: serve sweep at %d satellites: %w", n, err)
		}
		points = append(points, ServePoint{Satellites: n, Result: *res})
	}
	return points, nil
}
