package qntn

import (
	"context"
	"fmt"
	"time"

	"qntn/internal/netsim"
	"qntn/internal/runner"
	"qntn/internal/stats"
)

// CoveragePoint is one mark of the paper's Fig. 6 sweep.
type CoveragePoint struct {
	Satellites int
	Result     CoverageResult
}

// PaperSweepSizes returns the paper's constellation sizes: 6, 12, ..., 108.
func PaperSweepSizes() []int {
	sizes := make([]int, 0, 18)
	for n := 6; n <= 108; n += 6 {
		sizes = append(sizes, n)
	}
	return sizes
}

// CoverageSweep computes the Fig. 6 curve with the default worker count
// (one per CPU). See CoverageSweepParallel.
func CoverageSweep(p Params, sizes []int, duration time.Duration) ([]CoveragePoint, error) {
	return CoverageSweepParallel(p, sizes, duration, 0)
}

// coverageChunkSteps is the number of topology steps one worker task
// evaluates. The partition is fixed (independent of the worker count), so
// the chunk merge — and therefore the result — is bit-identical for any
// parallelism.
const coverageChunkSteps = 32

// CoverageSweepParallel computes the Fig. 6 curve — full-period coverage
// percentage as a function of constellation size — for every requested
// prefix of the Table II catalog, fanning the time axis out over a bounded
// worker pool (workers <= 0 selects one per CPU).
//
// Because the paper's constellations are nested prefixes of Table II, the
// sweep propagates the full catalog once (EphemerisCache), caches which
// satellites cover which LAN (and which satellite pairs hold a usable ISL)
// at every step, and answers each size with a union-find over the cached
// booleans. Steps are independent, so they are evaluated in fixed
// contiguous chunks by the worker pool and the per-chunk partial results
// are merged in time order — exactly equivalent to running
// Scenario.Coverage per size sequentially, which the test suite asserts.
func CoverageSweepParallel(p Params, sizes []int, duration time.Duration, workers int) ([]CoveragePoint, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("qntn: empty size list")
	}
	if duration <= 0 {
		return nil, fmt.Errorf("qntn: non-positive duration %v", duration)
	}
	maxN := 0
	for _, n := range sizes {
		if n > maxN {
			maxN = n
		}
	}
	step := p.StepInterval
	var times []time.Duration
	for at := time.Duration(0); at+step <= duration; at += step {
		times = append(times, at)
	}
	cache, err := NewEphemerisCache(maxN, p, times)
	if err != nil {
		return nil, err
	}
	sc, err := cache.Scenario(maxN)
	if err != nil {
		return nil, err
	}
	nLAN := len(sc.LANs)

	// Dense node indices (into the network's node order) for the step
	// evaluator: representative hosts per LAN for the early-exit coverage
	// check, and every relay.
	nodes := sc.Net.Nodes()
	nodeIndex := make(map[string]int, len(nodes))
	for i, node := range nodes {
		nodeIndex[node.ID()] = i
	}
	lanHosts := make([][]int, nLAN)
	for li, lan := range sc.LANs {
		for _, id := range sc.GroundIDs[lan.Name] {
			lanHosts[li] = append(lanHosts[li], nodeIndex[id])
		}
	}
	satIdx := make([]int, len(sc.relays))
	for si, r := range sc.relays {
		satIdx[si] = nodeIndex[r.ID()]
	}
	nSats := len(satIdx)

	numChunks := (len(times) + coverageChunkSteps - 1) / coverageChunkSteps
	partials := make([][]CoverageResult, numChunks)
	err = runner.Map(context.Background(), numChunks, workers, func(_ context.Context, ci int) error {
		lo := ci * coverageChunkSteps
		hi := lo + coverageChunkSteps
		if hi > len(times) {
			hi = len(times)
		}
		res := make([]CoverageResult, len(sizes))
		coversLAN := make([]bool, maxN*nLAN)
		islNbr := make([][]int, maxN)
		uf := newUnionFind(nLAN + maxN)

		// Scenario-shared instrumentation: counters are atomic (order
		// invariant), and events carry the global step index, so the chunk
		// partition leaves telemetry output worker-count invariant.
		tel := sc.tel
		ins := sc.Net.Instruments()
		var label string
		if tel != nil {
			label = fmt.Sprintf("coverage-sweep/%s/%d", sc.Arch, len(sc.RelayIDs))
		}

		for k, at := range times[lo:hi] {
			// Phase 1: evaluate physics once for the largest constellation,
			// through the network's step evaluator (one per worker) so
			// positions, geodetic conversions and darkness are computed once
			// per instant — and fault decoration, when installed, applies
			// here exactly as in snapshots.
			pairs, admitted := 0, 0
			ev := sc.Net.BeginStep(at)
			for si, sat := range satIdx {
				islNbr[si] = islNbr[si][:0]
				for li := range lanHosts {
					covered := false
					for _, h := range lanHosts[li] {
						pairs++
						if _, ok := ev.EvaluatePair(h, sat); ok {
							covered = true
							admitted++
							break
						}
					}
					coversLAN[si*nLAN+li] = covered
				}
			}
			for i := 0; i < nSats; i++ {
				for j := i + 1; j < nSats; j++ {
					pairs++
					if _, ok := ev.EvaluatePair(satIdx[i], satIdx[j]); ok {
						islNbr[i] = append(islNbr[i], j)
						admitted++
					}
				}
			}
			if tel != nil {
				st := netsim.SnapshotStats{Pairs: pairs, Admitted: admitted}
				netsim.DrainStepStats(ev, &st)
				ins.Observe(&st)
				sc.recordStepEvent(label, lo+k, at, &st, nil)
			}
			ev.Close()

			// Phase 2: answer each size from the cache.
			for ri, n := range sizes {
				accumulate(&res[ri], at, step, bridgedPrefix(uf, coversLAN, islNbr, nLAN, n))
			}
		}
		partials[ci] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Merge chunks in time order; joining intervals that touch across a
	// chunk boundary reproduces the sequential accumulation exactly.
	points := make([]CoveragePoint, len(sizes))
	for ri, n := range sizes {
		merged := CoverageResult{Total: duration}
		for _, part := range partials {
			r := part[ri]
			merged.Steps += r.Steps
			merged.CoveredSteps += r.CoveredSteps
			merged.Covered += r.Covered
			for _, iv := range r.Intervals {
				if k := len(merged.Intervals); k > 0 && merged.Intervals[k-1].End == iv.Start {
					merged.Intervals[k-1].End = iv.End
				} else {
					merged.Intervals = append(merged.Intervals, iv)
				}
			}
		}
		points[ri] = CoveragePoint{Satellites: n, Result: merged}
	}
	return points, nil
}

// bridgedPrefix checks whether the first n satellites bridge all LANs,
// reusing a preallocated union-find (elements 0..nLAN-1 are LANs,
// nLAN+i is satellite i).
func bridgedPrefix(uf *unionFind, coversLAN []bool, islNbr [][]int, nLAN, n int) bool {
	uf.reset(nLAN + n)
	for si := 0; si < n; si++ {
		for li := 0; li < nLAN; li++ {
			if coversLAN[si*nLAN+li] {
				uf.union(li, nLAN+si)
			}
		}
		for _, j := range islNbr[si] {
			if j < n {
				uf.union(nLAN+si, nLAN+j)
			}
		}
	}
	root := uf.find(0)
	for li := 1; li < nLAN; li++ {
		if uf.find(li) != root {
			return false
		}
	}
	return true
}

// reset reinitializes the first n elements of the union-find.
func (uf *unionFind) reset(n int) {
	for i := 0; i < n; i++ {
		uf.parent[i] = i
		uf.size[i] = 1
	}
}

// ServePoint is one mark of the paper's Fig. 7 / Fig. 8 sweeps.
type ServePoint struct {
	Satellites int
	Result     ServeResult
}

// ServeSweep runs the serve sweep with the default worker count (one per
// CPU). See ServeSweepParallel.
func ServeSweep(p Params, sizes []int, cfg ServeConfig) ([]ServePoint, error) {
	return ServeSweepParallel(p, sizes, cfg, 0)
}

// ServeSweepParallel runs the serve experiment (Fig. 7: served percentage;
// Fig. 8: average fidelity) for each constellation size, fanning sizes out
// over a bounded worker pool (workers <= 0 selects one per CPU). Sizes are
// evaluated independently with identical workload seeds so the request
// sequences match across sizes — which is also what makes the fan-out
// trivially deterministic: every size owns its output slot and its own
// Workload generator, and all sizes share one immutable propagated
// ephemeris instead of re-propagating the constellation per point.
func ServeSweepParallel(p Params, sizes []int, cfg ServeConfig, workers int) ([]ServePoint, error) {
	if len(sizes) == 0 {
		return nil, nil
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	maxN := 0
	for _, n := range sizes {
		if n > maxN {
			maxN = n
		}
	}
	cache, err := NewEphemerisCache(maxN, p, cfg.sampleTimes(p))
	if err != nil {
		return nil, err
	}
	// Each size writes telemetry into its own shard — sharded by task, not
	// by worker, so the partition is scheduling-independent — and the shards
	// merge back in size order after the fan-out. Nil when uninstrumented.
	shards := p.Telemetry.Shards(len(sizes))
	points := make([]ServePoint, len(sizes))
	err = runner.Map(context.Background(), len(sizes), workers, func(_ context.Context, i int) error {
		sc, err := cache.Scenario(sizes[i])
		if err != nil {
			return err
		}
		if shards != nil {
			sc.Instrument(shards[i])
		}
		res, err := sc.RunServe(cfg)
		if err != nil {
			return fmt.Errorf("qntn: serve sweep at %d satellites: %w", sizes[i], err)
		}
		points[i] = ServePoint{Satellites: sizes[i], Result: *res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	p.Telemetry.MergeShards(shards)
	return points, nil
}

// ServeStats aggregates one sweep size over independent workload replicas.
type ServeStats struct {
	Satellites int
	Replicas   int
	// ServedPercent and MeanFidelity summarize the per-replica headline
	// metrics.
	ServedPercent stats.Summary
	MeanFidelity  stats.Summary
}

// ServeSweepReplicated runs the serve sweep over independent workload
// replicas and reports per-size distributions — the error bars the paper's
// single-seed Figs. 7-8 lack. Replica r uses the seed derived by
// runner.TaskSeed(cfg.Seed, r), except replica 0, which keeps cfg.Seed so a
// single-replica run reproduces ServeSweep exactly. Within one replica
// every size shares the replica's seed (the paper's matched-workload
// convention); across replicas the splitmix64 derivation guarantees
// distinct, uncorrelated streams without any shared RNG state between
// workers. The (size, replica) grid is fanned out over the worker pool.
func ServeSweepReplicated(p Params, sizes []int, cfg ServeConfig, replicas, workers int) ([]ServeStats, error) {
	if replicas <= 0 {
		return nil, fmt.Errorf("qntn: need at least one replica, got %d", replicas)
	}
	if len(sizes) == 0 {
		return nil, nil
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	maxN := 0
	for _, n := range sizes {
		if n > maxN {
			maxN = n
		}
	}
	cache, err := NewEphemerisCache(maxN, p, cfg.sampleTimes(p))
	if err != nil {
		return nil, err
	}
	served := make([][]float64, len(sizes))
	fidelity := make([][]float64, len(sizes))
	for i := range sizes {
		served[i] = make([]float64, replicas)
		fidelity[i] = make([]float64, replicas)
	}
	// One telemetry shard per (size, replica) cell, merged in flattened
	// grid order. Nil when uninstrumented.
	shards := p.Telemetry.Shards(len(sizes) * replicas)
	err = runner.Grid(context.Background(), len(sizes), replicas, workers, func(_ context.Context, si, r int) error {
		rcfg := cfg
		if r > 0 {
			rcfg.Seed = runner.TaskSeed(cfg.Seed, uint64(r))
		}
		sc, err := cache.Scenario(sizes[si])
		if err != nil {
			return err
		}
		if shards != nil {
			sc.Instrument(shards[si*replicas+r])
		}
		res, err := sc.RunServe(rcfg)
		if err != nil {
			return fmt.Errorf("qntn: replicated sweep at %d satellites, replica %d: %w", sizes[si], r, err)
		}
		served[si][r] = res.ServedPercent
		fidelity[si][r] = res.MeanFidelity
		return nil
	})
	if err != nil {
		return nil, err
	}
	p.Telemetry.MergeShards(shards)
	out := make([]ServeStats, len(sizes))
	for i, n := range sizes {
		out[i] = ServeStats{
			Satellites:    n,
			Replicas:      replicas,
			ServedPercent: stats.Summarize(served[i]),
			MeanFidelity:  stats.Summarize(fidelity[i]),
		}
	}
	return out, nil
}
