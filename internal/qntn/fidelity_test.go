package qntn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qntn/internal/quantum"
)

func TestPathFidelityEmptyPath(t *testing.T) {
	for _, m := range []FidelityModel{SourceAtBestSplit, SourceAtEndpoint} {
		if f := PathFidelity(nil, m); f != 1 {
			t.Errorf("%v: empty path fidelity %g, want 1", m, f)
		}
	}
}

func TestPathFidelityMatchesExact(t *testing.T) {
	// The closed-form PathFidelity must agree with full density-matrix
	// evolution for both source placements.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		etas := make([]float64, n)
		for i := range etas {
			etas[i] = 0.5 + 0.5*rng.Float64()
		}
		for _, m := range []FidelityModel{SourceAtBestSplit, SourceAtEndpoint} {
			fast := PathFidelity(etas, m)
			exact, err := PathFidelityExact(etas, m)
			if err != nil {
				return false
			}
			if math.Abs(fast-exact) > 1e-9 {
				t.Logf("seed %d model %v: fast %g exact %g (etas %v)", seed, m, fast, exact, etas)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBestSplitAtLeastEndpoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		etas := make([]float64, n)
		for i := range etas {
			etas[i] = rng.Float64()
		}
		return PathFidelity(etas, SourceAtBestSplit) >= PathFidelity(etas, SourceAtEndpoint)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPathFidelitySingleHop(t *testing.T) {
	// One lossless hop on either side: both models agree with the one-arm
	// closed form.
	for _, eta := range []float64{0.5, 0.7, 0.95, 1} {
		want := quantum.AnalyticBellFidelity(eta)
		if got := PathFidelity([]float64{eta}, SourceAtEndpoint); math.Abs(got-want) > 1e-12 {
			t.Errorf("endpoint single hop eta=%g: %g want %g", eta, got, want)
		}
		// Best split on a single hop can place the source at either end —
		// same value.
		if got := PathFidelity([]float64{eta}, SourceAtBestSplit); got < want-1e-12 {
			t.Errorf("best-split single hop eta=%g: %g below endpoint %g", eta, got, want)
		}
	}
}

func TestPathFidelityTwoHopBalancedSplit(t *testing.T) {
	// For a symmetric relay path the best split is at the relay, giving
	// the both-arms closed form.
	eta := 0.9
	want := quantum.AnalyticBellFidelityBothArms(eta, eta)
	got := PathFidelity([]float64{eta, eta}, SourceAtBestSplit)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("balanced split %g, want %g", got, want)
	}
	// And it strictly beats the endpoint placement for lossy links.
	if got <= PathFidelity([]float64{eta, eta}, SourceAtEndpoint) {
		t.Fatal("relay placement should strictly beat endpoint placement")
	}
}

func TestPathFidelityMonotoneInHopQuality(t *testing.T) {
	for _, m := range []FidelityModel{SourceAtBestSplit, SourceAtEndpoint} {
		lo := PathFidelity([]float64{0.7, 0.8}, m)
		hi := PathFidelity([]float64{0.9, 0.8}, m)
		if hi <= lo {
			t.Errorf("%v: improving a hop did not improve fidelity", m)
		}
	}
}

func TestPathFidelityPerfectPath(t *testing.T) {
	for _, m := range []FidelityModel{SourceAtBestSplit, SourceAtEndpoint} {
		if f := PathFidelity([]float64{1, 1, 1}, m); math.Abs(f-1) > 1e-12 {
			t.Errorf("%v: lossless path fidelity %g", m, f)
		}
	}
}

func TestPathFidelityUnknownModelFallsBack(t *testing.T) {
	if f := PathFidelity([]float64{0.8}, FidelityModel(99)); f <= 0 || f > 1 {
		t.Fatalf("unknown model fidelity %g", f)
	}
	if _, err := PathFidelityExact([]float64{0.8}, FidelityModel(99)); err == nil {
		t.Fatal("exact path should reject unknown model")
	}
}
