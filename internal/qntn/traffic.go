package qntn

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"qntn/internal/netsim"
	"qntn/internal/runner"
	"qntn/internal/stats"
	"qntn/internal/telemetry"
)

// DiurnalProfile shapes the traffic rate over the day as a raised cosine:
// rate(t) = base · (1 + Amplitude·cos(2π·(hour(t) − PeakHour)/24)). The
// zero value is a flat profile.
type DiurnalProfile struct {
	// Amplitude is the relative swing in [0, 1): 0.5 means the peak rate
	// is 1.5× the base and the trough 0.5×.
	Amplitude float64
	// PeakHour is the hour of simulated day the rate peaks, in [0, 24).
	PeakHour float64
}

// Multiplier returns the rate multiplier at simulated time t.
func (d DiurnalProfile) Multiplier(t time.Duration) float64 {
	if d.Amplitude == 0 {
		return 1
	}
	return 1 + d.Amplitude*math.Cos(2*math.Pi*(t.Hours()-d.PeakHour)/24)
}

// TrafficConfig parameterizes the request-level synthetic traffic engine:
// every ground site emits its own Poisson arrival stream of inter-LAN
// requests, modulated by a shared diurnal profile.
type TrafficConfig struct {
	// RatePerHourPerSite is the base mean arrival rate of each ground
	// site's stream.
	RatePerHourPerSite float64
	// Diurnal modulates the instantaneous rate over the day.
	Diurnal DiurnalProfile
	// Horizon is the simulated period; default one day.
	Horizon time.Duration
	Seed    int64
	// Workers bounds the generation fan-out (0 = GOMAXPROCS). Streams are
	// generated per site from independent seeds and merged in a canonical
	// order, so the result is identical for any worker count.
	Workers int
}

// withDefaults applies the one-day default horizon.
func (cfg TrafficConfig) withDefaults() TrafficConfig {
	if cfg.Horizon <= 0 {
		cfg.Horizon = 24 * time.Hour
	}
	return cfg
}

// validate checks the traffic shape.
func (cfg TrafficConfig) validate() error {
	switch {
	case cfg.RatePerHourPerSite <= 0:
		return fmt.Errorf("qntn: traffic rate must be positive, got %g", cfg.RatePerHourPerSite)
	case cfg.Diurnal.Amplitude < 0 || cfg.Diurnal.Amplitude >= 1:
		return fmt.Errorf("qntn: diurnal amplitude %g outside [0,1)", cfg.Diurnal.Amplitude)
	case cfg.Diurnal.PeakHour < 0 || cfg.Diurnal.PeakHour >= 24:
		return fmt.Errorf("qntn: diurnal peak hour %g outside [0,24)", cfg.Diurnal.PeakHour)
	}
	return nil
}

// trafficArrival is one request in the merged arrival stream.
type trafficArrival struct {
	at   time.Duration
	site int // canonical site index, the merge tie-breaker
	req  netsim.Request
}

// trafficSite is one ground host together with its eligible destinations
// (every ground host in a different LAN), both in canonical order.
type trafficSite struct {
	id   string
	dsts []string
}

// trafficSites enumerates the scenario's ground sites in canonical order:
// LANs in declaration order, host IDs in Table I order within each.
func (sc *Scenario) trafficSites() ([]trafficSite, error) {
	type host struct {
		id  string
		lan string
	}
	var hosts []host
	lans := make(map[string]bool)
	for _, lan := range sc.LANs {
		for _, id := range sc.GroundIDs[lan.Name] {
			hosts = append(hosts, host{id: id, lan: lan.Name})
			lans[lan.Name] = true
		}
	}
	if len(lans) < 2 {
		return nil, fmt.Errorf("qntn: traffic needs ground sites in at least two local networks, scenario has %d site(s) across %d network(s)", len(hosts), len(lans))
	}
	sites := make([]trafficSite, len(hosts))
	for i, h := range hosts {
		s := trafficSite{id: h.id}
		for _, other := range hosts {
			if other.lan != h.lan {
				s.dsts = append(s.dsts, other.id)
			}
		}
		sites[i] = s
	}
	return sites, nil
}

// siteStream samples one ground site's arrival stream: a Poisson process
// at the profile's peak rate thinned down to the instantaneous diurnal
// rate (Lewis–Shedler), with a uniformly random inter-LAN destination per
// accepted arrival. The RNG is seeded from
// runner.TaskSeed(cfg.Seed, runner.FNV64a(site.id)), so each stream is a
// pure function of (config, site ID): adding or removing other sites, or
// changing the worker count, never perturbs it.
func siteStream(site trafficSite, index int, cfg TrafficConfig) []trafficArrival {
	peakMult := 1 + cfg.Diurnal.Amplitude
	meanGapS := 3600 / (cfg.RatePerHourPerSite * peakMult)
	rng := rand.New(rand.NewSource(runner.TaskSeed(cfg.Seed, runner.FNV64a(site.id))))
	var out []trafficArrival
	for at := time.Duration(0); ; {
		at += time.Duration(rng.ExpFloat64() * meanGapS * float64(time.Second))
		if at >= cfg.Horizon {
			break
		}
		if rng.Float64()*peakMult > cfg.Diurnal.Multiplier(at) {
			continue // thinned: above the instantaneous rate
		}
		dst := site.dsts[rng.Intn(len(site.dsts))]
		out = append(out, trafficArrival{at: at, site: index, req: netsim.Request{Src: site.id, Dst: dst}})
	}
	return out
}

// generateTraffic samples every site's stream (fanned out over the worker
// pool) and merges them into one deterministic arrival order: time-sorted,
// ties broken by canonical site index, per-site order preserved. Request
// IDs number the merged stream sequentially from 1.
func (sc *Scenario) generateTraffic(cfg TrafficConfig) ([]trafficArrival, error) {
	sites, err := sc.trafficSites()
	if err != nil {
		return nil, err
	}
	perSite := make([][]trafficArrival, len(sites))
	err = runner.Map(context.Background(), len(sites), cfg.Workers, func(_ context.Context, i int) error {
		perSite[i] = siteStream(sites[i], i, cfg)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var merged []trafficArrival
	for _, s := range perSite {
		merged = append(merged, s...)
	}
	sort.SliceStable(merged, func(i, j int) bool {
		if merged[i].at != merged[j].at {
			return merged[i].at < merged[j].at
		}
		return merged[i].site < merged[j].site
	})
	for i := range merged {
		merged[i].req.ID = i + 1
	}
	return merged, nil
}

// TrafficResult summarizes one traffic-engine run.
type TrafficResult struct {
	Config TrafficConfig
	// Sites is the number of ground sites emitting streams.
	Sites int
	// Arrivals counts generated requests; Served those delivered within
	// the horizon; QueuedAtEnd the censored tail still waiting.
	Arrivals    int
	Served      int
	QueuedAtEnd int
	// ServedImmediately counts requests delivered by the arrival handler
	// (serve-site classification, as in ArrivalResult).
	ServedImmediately int
	// RequestsEvaluated counts admission attempts: one per arrival plus
	// one per queued request per topology drain — the daemon's throughput
	// unit.
	RequestsEvaluated int
	// Steps is the number of topology updates over the horizon.
	Steps int
	// Wait statistics over served requests.
	MeanWait time.Duration
	MaxWait  time.Duration
	// MeanFidelity at the moment of service.
	MeanFidelity float64
	// MaxQueueDepth is the largest number of requests simultaneously
	// waiting.
	MaxQueueDepth int
}

// ServedPercent returns the delivered fraction.
func (r *TrafficResult) ServedPercent() float64 {
	if r.Arrivals == 0 {
		return 0
	}
	return 100 * float64(r.Served) / float64(r.Arrivals)
}

// trafficLabel names the event stream of one traffic run.
func (sc *Scenario) trafficLabel(seed int64) string {
	return fmt.Sprintf("traffic/%s/%d/seed=%d", sc.Arch, len(sc.RelayIDs), seed)
}

// RunTraffic executes the traffic engine against the scenario: the merged
// per-site arrival streams feed the same batched admission core as
// RunArrivals — pooled snapshot per topology update, Dijkstra memo, FIFO
// drain. Instrumented scenarios additionally record one event per topology
// step (arrivals in the window, served, queue depth, snapshot counters) on
// the collector's sink, which is what the serve daemon streams back as
// NDJSON. Everything is seeded; a run is a pure function of
// (scenario, config).
func (sc *Scenario) RunTraffic(cfg TrafficConfig) (*TrafficResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	arrivals, err := sc.generateTraffic(cfg)
	if err != nil {
		return nil, err
	}
	sites, err := sc.trafficSites()
	if err != nil {
		return nil, err
	}
	res := &TrafficResult{Config: cfg, Sites: len(sites), Arrivals: len(arrivals)}

	tel := sc.tel
	var label string
	if tel != nil {
		label = sc.trafficLabel(cfg.Seed)
	}

	ad := newAdmission(sc)
	step := sc.Params.TopologyStep()
	next := time.Duration(0)
	i := 0
	stepIdx := 0
	lastServed, lastArrivals := 0, 0
	var lastFidSum float64
	for next <= cfg.Horizon || i < len(arrivals) {
		// Updates run before same-instant arrivals, as in RunArrivals.
		if next <= cfg.Horizon && (i >= len(arrivals) || next <= arrivals[i].at) {
			var st netsim.SnapshotStats
			var stp *netsim.SnapshotStats
			if tel != nil {
				stp = &st
			}
			if err := ad.refresh(next, stp); err != nil {
				return nil, err
			}
			if _, err := ad.drain(next); err != nil {
				return nil, err
			}
			if tel != nil {
				// i arrivals ran strictly before this update (same-instant
				// arrivals are still pending), so i - lastArrivals is the
				// window count.
				served := ad.served - lastServed
				fidSum := ad.fidSum - lastFidSum
				tel.requestsServed.Add(uint64(served))
				sc.recordStepEvent(label, stepIdx, next, &st, func(e *telemetry.Event) {
					e.Arrivals = int64(i - lastArrivals)
					e.Served = int64(served)
					e.QueueDepth = int64(len(ad.queue))
					if served > 0 {
						e.MeanFidelity = fidSum / float64(served)
					}
				})
				lastServed = ad.served
				lastArrivals = i
				lastFidSum = ad.fidSum
			}
			next += step
			stepIdx++
		} else {
			if err := ad.arrive(arrivals[i].at, arrivals[i].req); err != nil {
				return nil, err
			}
			i++
		}
	}

	res.Steps = stepIdx
	res.Served = ad.served
	res.ServedImmediately = ad.immediate
	res.RequestsEvaluated = ad.evaluated
	res.QueuedAtEnd = len(ad.queue)
	res.MaxQueueDepth = ad.maxQueue
	res.MaxWait = ad.maxWait
	res.MeanWait = secs(stats.Mean(ad.waits))
	res.MeanFidelity = stats.Mean(ad.fids)
	if tel != nil {
		tel.requestsDropped.Add(uint64(res.QueuedAtEnd))
		for _, f := range ad.fids {
			tel.fidelity.Observe(f)
		}
		if ad.pe != nil {
			tel.addProto(&ad.proto)
		}
	}
	return res, nil
}
