package qntn

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"qntn/internal/fault"
	"qntn/internal/geo"
	"qntn/internal/netsim"
)

// This file white-box tests the visibility-window machinery of windows.go:
// property-based endpoint refinement over randomized constellations, the
// grid and span boundary tables, and window clipping at the scenario
// bounds. The engine-level delta regression and the shared step-grid
// regression live in eventloop_test.go; the black-box differential oracle
// lives in oracle_equiv_test.go.

// assertCrossing checks that a refined window endpoint brackets a candidate
// predicate sign change: for a rising (window-start) endpoint the predicate
// holds at e and fails at the last grid instant before it; falling
// (window-end) endpoints mirror that. An independent nanosecond-resolution
// bisection then relocates the crossing from the same bracket, and e must
// lie within windowRefineTol of it.
func assertCrossing(t *testing.T, ws *windowScan, p int, e time.Duration, rising bool) {
	t.Helper()
	g := ws.grid
	kp := int((e - 1) / g.gap) // largest grid index with at(kp) < e
	lo := g.at(kp)
	if ws.candAt(p, e) != rising {
		t.Fatalf("pair %d endpoint %v (rising=%v): predicate %v at the endpoint", p, e, rising, !rising)
	}
	if ws.candAt(p, lo) == rising {
		t.Fatalf("pair %d endpoint %v (rising=%v): no sign change against grid instant %v", p, e, rising, lo)
	}
	rlo, rhi := lo, e
	for rhi-rlo > 1 {
		mid := rlo + (rhi-rlo)/2
		if ws.candAt(p, mid) == rising {
			rhi = mid
		} else {
			rlo = mid
		}
	}
	if d := e - rhi; d < 0 || d > windowRefineTol+time.Microsecond {
		t.Fatalf("pair %d endpoint %v (rising=%v): crossing refined to %v, %v away (tolerance %v)",
			p, e, rising, rhi, d, windowRefineTol)
	}
}

// checkWindowInvariants asserts the refined windows of one pair are sorted,
// non-overlapping, within [0, duration], and that every non-clipped
// endpoint brackets a predicate sign change within the refinement
// tolerance.
func checkWindowInvariants(t *testing.T, ws *windowScan, p int, wins []Window, duration time.Duration) {
	t.Helper()
	prevEnd := time.Duration(-1)
	for _, w := range wins {
		if w.Start < 0 || w.End > duration || w.Start > w.End {
			t.Fatalf("pair %d: window %+v outside [0, %v] or inverted", p, w, duration)
		}
		if w.Start <= prevEnd {
			t.Fatalf("pair %d: windows unsorted or overlapping at %+v (previous end %v)", p, w, prevEnd)
		}
		prevEnd = w.End
		if w.ClippedStart {
			if w.Start != 0 {
				t.Fatalf("pair %d: clipped start at %v, want 0", p, w.Start)
			}
			if !ws.candAt(p, 0) {
				t.Fatalf("pair %d: clipped start but predicate false at t=0", p)
			}
		} else {
			assertCrossing(t, ws, p, w.Start, true)
		}
		if w.ClippedEnd {
			if w.End != duration {
				t.Fatalf("pair %d: clipped end at %v, want %v", p, w.End, duration)
			}
			if last := ws.grid.at(ws.grid.steps - 1); !ws.candAt(p, last) {
				t.Fatalf("pair %d: clipped end but predicate false at the last grid instant %v", p, last)
			}
		} else {
			assertCrossing(t, ws, p, w.End, false)
		}
	}
}

// TestVisibilityWindowProperties is the property-based refinement test:
// random constellation sizes, altitudes, inclinations and step intervals
// (J2 on half the seeds, forcing the dense pairwise scan instead of the
// analytic arcs), and for every pair's every refined window endpoint a
// bracketed predicate sign change within the refinement tolerance.
func TestVisibilityWindowProperties(t *testing.T) {
	grandTotal := 0
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := DefaultParams()
		p.Turbulence = nil
		p.SatelliteAltitudeM = 400e3 + rng.Float64()*800e3
		p.InclinationDeg = 30 + rng.Float64()*60
		p.StepInterval = time.Duration(10+rng.Intn(111)) * time.Second
		p.UseJ2 = seed%2 == 1
		n := 6 * (1 + rng.Intn(4))
		duration := time.Duration(2+rng.Intn(5)) * time.Hour
		sc, err := NewSpaceGround(n, p)
		if err != nil {
			t.Fatal(err)
		}
		ws := sc.scanWindows(sc.Net.Nodes(), coverageGrid(p.StepInterval, duration))
		total := 0
		for pi := range ws.pairs {
			wins := ws.refinePair(pi, duration)
			checkWindowInvariants(t, ws, pi, wins, duration)
			total += len(wins)
		}
		t.Logf("seed=%d: %d satellites, %v, %d pairs, %d windows", seed, n, duration, len(ws.pairs), total)
		grandTotal += total
	}
	// Sparse draws (a six-satellite ring at an unlucky altitude) can
	// legitimately produce no windows; the ensemble cannot.
	if grandTotal == 0 {
		t.Fatal("no refined windows across any seed — the property test never exercised refinement")
	}
}

// TestVisibilityWindowsExported pins the exported API's ordering contract:
// pairs sorted by ID, windows sorted and in bounds.
func TestVisibilityWindowsExported(t *testing.T) {
	p := DefaultParams()
	p.Turbulence = nil
	sc, err := NewSpaceGround(6, p)
	if err != nil {
		t.Fatal(err)
	}
	duration := 4 * time.Hour
	pws, err := sc.VisibilityWindows(duration)
	if err != nil {
		t.Fatal(err)
	}
	if len(pws) == 0 {
		t.Fatal("no pair windows")
	}
	for i, pw := range pws {
		if i > 0 {
			prev := pws[i-1]
			if prev.A > pw.A || (prev.A == pw.A && prev.B >= pw.B) {
				t.Fatalf("pair listing unsorted: %s-%s after %s-%s", pw.A, pw.B, prev.A, prev.B)
			}
		}
		prevEnd := time.Duration(-1)
		for _, w := range pw.Windows {
			if w.Start < 0 || w.End > duration || w.Start <= prevEnd {
				t.Fatalf("pair %s-%s: window %+v out of bounds or unsorted", pw.A, pw.B, w)
			}
			prevEnd = w.End
		}
	}
	if _, err := sc.VisibilityWindows(0); err == nil {
		t.Fatal("zero duration accepted")
	}
}

// TestCoverageGridBoundaries pins the shared loop-bound definition both
// execution paths derive their coverage grids from.
func TestCoverageGridBoundaries(t *testing.T) {
	step := 30 * time.Second
	cases := []struct {
		duration time.Duration
		steps    int
	}{
		{0, 0},
		{step - 1, 0},                // shorter than one step: no samples
		{step, 1},                    // exactly one step
		{step + 1, 1},                // a fraction past one step
		{2*step + step/2, 2},         // mid-step remainder is dropped
		{10 * step, 10},              // exact multiple
		{10*step - 1, 9},             // one short of the multiple
	}
	for _, c := range cases {
		g := coverageGrid(step, c.duration)
		if g.steps != c.steps {
			t.Errorf("coverageGrid(%v, %v).steps = %d, want %d", step, c.duration, g.steps, c.steps)
		}
		if g.steps > 0 && g.at(g.steps-1)+step > c.duration {
			t.Errorf("coverageGrid(%v, %v): last step at %v overruns the duration", step, c.duration, g.at(g.steps-1))
		}
	}
}

// TestCeilIndexBoundaries pins the span→index rounding, in particular the
// exact-sample-instant cases the fault events rely on.
func TestCeilIndexBoundaries(t *testing.T) {
	g := sampleGrid{gap: 30 * time.Second, steps: 10}
	cases := []struct {
		t time.Duration
		k int
	}{
		{-time.Second, 0},
		{0, 0},
		{time.Nanosecond, 1},
		{30*time.Second - 1, 1},
		{30 * time.Second, 1}, // exactly on a sample instant: that instant
		{30*time.Second + 1, 2},
		{270 * time.Second, 9},
		{271 * time.Second, 10}, // past the last instant: clamped to steps
		{time.Hour, 10},
	}
	for _, c := range cases {
		if k := g.ceilIndex(c.t); k != c.k {
			t.Errorf("ceilIndex(%v) = %d, want %d", c.t, k, c.k)
		}
	}
}

// TestSpanEventsBoundaries pins the span→event conversion edge cases:
// zero-length spans vanish, spans ending exactly on a sample instant free
// the node at that instant, touching quantized spans coalesce into one
// interval, and spans beyond the grid are dropped.
func TestSpanEventsBoundaries(t *testing.T) {
	g := sampleGrid{gap: 30 * time.Second, steps: 10}
	collect := func(spans []fault.Span) [][2]int {
		var out [][2]int
		spanEvents(g, spans, func(on, off int) { out = append(out, [2]int{on, off}) })
		return out
	}
	sec := time.Second
	cases := []struct {
		name  string
		spans []fault.Span
		want  [][2]int
	}{
		{"zero-length", []fault.Span{{Start: 45 * sec, End: 45 * sec}}, nil},
		{"sub-gap interior", []fault.Span{{Start: 31 * sec, End: 59 * sec}}, nil}, // quantizes to an empty index interval
		{"exact instants", []fault.Span{{Start: 30 * sec, End: 90 * sec}}, [][2]int{{1, 3}}},
		{"clip at start", []fault.Span{{Start: -10 * sec, End: 60 * sec}}, [][2]int{{0, 2}}},
		{"open past end", []fault.Span{{Start: 240 * sec, End: time.Hour}}, [][2]int{{8, 10}}},
		{"fully past end", []fault.Span{{Start: 400 * sec, End: time.Hour}}, nil},
		{"touching spans coalesce", []fault.Span{{Start: 0, End: 60 * sec}, {Start: 60 * sec, End: 120 * sec}}, [][2]int{{0, 4}}},
		{"gapped spans stay apart", []fault.Span{{Start: 0, End: 30 * sec}, {Start: 91 * sec, End: 150 * sec}}, [][2]int{{0, 1}, {4, 5}}},
	}
	for _, c := range cases {
		got := collect(c.spans)
		if len(got) != len(c.want) {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: interval %d = %v, want %v", c.name, i, got[i], c.want[i])
			}
		}
	}
}

// TestRefinePairRunBoundaries tampers with a real scan's runs to pin two
// refinement edge cases: a padding-only run (no candidate-true grid index)
// must produce no window, and extending a run with padding indices —
// provably candidate-false by the conservative-superset property — must
// leave the refined windows identical.
func TestRefinePairRunBoundaries(t *testing.T) {
	p := DefaultParams()
	p.Turbulence = nil
	sc, err := NewSpaceGround(24, p)
	if err != nil {
		t.Fatal(err)
	}
	duration := 6 * time.Hour
	ws := sc.scanWindows(sc.Net.Nodes(), coverageGrid(p.StepInterval, duration))

	// Find a pair with an interior run: one that starts late enough to have
	// a guaranteed candidate-false region before it (indices outside every
	// run are provably candidate-false) and ends before the grid does.
	pi := -1
	var run idxRun
	for cand := range ws.pairs {
		for _, r := range ws.runs[cand] {
			if r.lo >= 2 && r.hi <= ws.grid.steps-3 {
				pi, run = cand, r
				break
			}
		}
		if pi >= 0 {
			break
		}
	}
	if pi < 0 {
		t.Fatal("no pair with an interior run found")
	}

	savedRuns := ws.runs[pi]
	defer func() { ws.runs[pi] = savedRuns }()

	want := ws.refinePair(pi, duration)

	// A padding-only run over candidate-false indices refines to nothing.
	ws.runs[pi] = []idxRun{{run.lo - 2, run.lo - 2}}
	if wins := ws.refinePair(pi, duration); len(wins) != 0 {
		t.Fatalf("padding-only run produced windows: %+v", wins)
	}

	// Padding the real runs by one provably-false index on each side (run
	// gaps are at least two indices wide, so the padded index belongs to no
	// neighboring run) must refine to the identical windows.
	padded := make([]idxRun, len(savedRuns))
	for ri, r := range savedRuns {
		if r.lo > 0 {
			r.lo--
		}
		if r.hi < ws.grid.steps-1 {
			r.hi++
		}
		padded[ri] = r
	}
	ws.runs[pi] = padded
	got := ws.refinePair(pi, duration)
	if len(got) != len(want) {
		t.Fatalf("padding changed the window count: %d != %d", len(got), len(want))
	}
	for wi := range got {
		if got[wi] != want[wi] {
			t.Fatalf("padding changed window %d: %+v != %+v", wi, got[wi], want[wi])
		}
	}
}

// linearNode is a test relay moving on a straight line at constant speed —
// exact single-crossing geometry for the boundary tests below. It exposes
// no orbital elements, so the scan has no speed bound and must fall back to
// the dense pairwise walk.
type linearNode struct {
	id   string
	pos  geo.Vec3
	vel  geo.Vec3 // meters per second along each axis
}

func (n *linearNode) ID() string            { return n.id }
func (n *linearNode) Kind() netsim.NodeKind { return netsim.Satellite }
func (n *linearNode) Network() string       { return "" }
func (n *linearNode) PositionAt(t time.Duration) geo.Vec3 {
	return n.pos.Add(n.vel.Scale(t.Seconds()))
}

// TestSingleInstantWindow pins two window boundary cases with controlled
// flyby geometry: a pass so fast that only one grid instant lies in range
// (a zero-length window at grid resolution) must still refine to a valid
// bracketing window, and a pass entering range exactly on a sample instant
// must open within the refinement tolerance of it.
func TestSingleInstantWindow(t *testing.T) {
	p := DefaultParams()
	p.Turbulence = nil
	gap := p.StepInterval
	duration := 20 * gap

	// The usable FSO range for satellite pairs, read off a probe scenario
	// built from the same parameters.
	probe, err := NewSpaceGround(6, p)
	if err != nil {
		t.Fatal(err)
	}
	rangeM := math.Sqrt(probe.spaceMaxRangeM2)

	anchor := geo.Vec3{X: geo.EarthRadiusM + 500e3}
	const k = 7 // the grid instant the flyby centers on
	build := func(d0, v float64) *windowScan {
		// The flyby node approaches the anchor along x: distance |d0 - v·t|.
		a := &linearNode{id: "ANCHOR", pos: anchor}
		b := &linearNode{
			id:  "FLYBY",
			pos: anchor.Add(geo.Vec3{X: d0}),
			vel: geo.Vec3{X: -v},
		}
		sc, err := assemble(SpaceGround, p, []netsim.Node{a, b})
		if err != nil {
			t.Fatal(err)
		}
		return sc.scanWindows(sc.Net.Nodes(), coverageGrid(gap, duration))
	}
	findPair := func(ws *windowScan) int {
		for pi, pr := range ws.pairs {
			if !pr.horizon && ws.nodes[pr.i].Kind() == netsim.Satellite && ws.nodes[pr.j].Kind() == netsim.Satellite {
				return pi
			}
		}
		t.Fatal("no satellite pair windowed")
		return -1
	}

	// Closest approach at t = k·gap, in range for gap/2 around it: exactly
	// one grid instant in range.
	v := 4 * rangeM / gap.Seconds()
	ws := build(v*float64(k)*gap.Seconds(), v)
	pi := findPair(ws)
	wins := ws.refinePair(pi, duration)
	if len(wins) != 1 {
		t.Fatalf("single-instant flyby produced %d windows, want 1", len(wins))
	}
	w := wins[0]
	if at := ws.grid.at(k); w.Start > at || w.End < at {
		t.Fatalf("window %+v does not bracket the in-range instant %v", w, at)
	}
	if w.End-w.Start >= gap {
		t.Fatalf("single-instant window spans %v, want under one step %v", w.End-w.Start, gap)
	}
	checkWindowInvariants(t, ws, pi, wins, duration)

	// Entry crossing exactly on the sample instant k·gap (the candidate
	// gate's padding keeps the predicate true there despite rounding).
	ws = build(rangeM+v*float64(k)*gap.Seconds(), v)
	pi = findPair(ws)
	wins = ws.refinePair(pi, duration)
	if len(wins) != 1 {
		t.Fatalf("on-instant flyby produced %d windows, want 1", len(wins))
	}
	w = wins[0]
	at := ws.grid.at(k)
	if w.Start > at || at-w.Start > gap/100 {
		t.Fatalf("window opening %v not within %v below the on-instant crossing %v", w.Start, gap/100, at)
	}
	checkWindowInvariants(t, ws, pi, wins, duration)
}

// TestWindowClippingAtScenarioBounds: with a one-step grid every window is
// clipped on both sides and spans exactly [0, duration].
func TestWindowClippingAtScenarioBounds(t *testing.T) {
	p := DefaultParams()
	p.Turbulence = nil
	// 24 satellites: dense enough that some ISL pairs are in range at t=0
	// (the 6-satellite ring's in-plane neighbors are too far apart).
	sc, err := NewSpaceGround(24, p)
	if err != nil {
		t.Fatal(err)
	}
	duration := p.StepInterval // exactly one grid step
	ws := sc.scanWindows(sc.Net.Nodes(), coverageGrid(p.StepInterval, duration))
	if ws.grid.steps != 1 {
		t.Fatalf("grid has %d steps, want 1", ws.grid.steps)
	}
	total := 0
	for pi := range ws.pairs {
		for _, w := range ws.refinePair(pi, duration) {
			total++
			if !w.ClippedStart || !w.ClippedEnd || w.Start != 0 || w.End != duration {
				t.Fatalf("pair %d: one-step window %+v, want clipped [0, %v]", pi, w, duration)
			}
		}
	}
	if total == 0 {
		t.Fatal("no windows on the one-step grid (expected at least the ISL pairs in range at t=0)")
	}
}

// TestMoverSweepMatchesDenseWindows forces the coarse mover-pair sweep on
// at a small constellation (by lowering its mover-count floor) and requires
// the resulting window sets — down to refined endpoint times — to be
// DeepEqual to a dense scan with the sweep and index disabled. The sweep
// may only skip pairs that provably never enter range, so window sets must
// be identical.
func TestMoverSweepMatchesDenseWindows(t *testing.T) {
	defer func(old int) { moverSweepMinMovers = old }(moverSweepMinMovers)
	moverSweepMinMovers = 2

	builders := map[string]func(p Params) (*Scenario, error){
		"space-ground-24": func(p Params) (*Scenario, error) { return NewSpaceGround(24, p) },
		"hybrid-12":       func(p Params) (*Scenario, error) { return NewHybrid(12, p) },
		"walker-96-global": func(p Params) (*Scenario, error) {
			return NewWalker(walkerTestSpec(), p)
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			p := DefaultParams()
			swept, err := build(p)
			if err != nil {
				t.Fatal(err)
			}
			pd := p
			pd.DisableSpatialIndex = true
			dense, err := build(pd)
			if err != nil {
				t.Fatal(err)
			}
			duration := 3 * time.Hour
			got, err := swept.VisibilityWindows(duration)
			if err != nil {
				t.Fatal(err)
			}
			want, err := dense.VisibilityWindows(duration)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("swept window set diverged from dense scan\n got %d pairs\nwant %d pairs", len(got), len(want))
			}
			if len(want) == 0 {
				t.Fatal("degenerate sweep run: no pair windows")
			}
		})
	}
}
