package qntn

import (
	"testing"
	"time"

	"qntn/internal/geo"
)

func TestExtendedNetworks(t *testing.T) {
	nets := ExtendedNetworks()
	if len(nets) != 6 {
		t.Fatalf("%d networks, want 6", len(nets))
	}
	names := map[string]bool{}
	for _, n := range nets {
		names[n.Name] = true
		if len(n.Nodes) == 0 {
			t.Fatalf("%s has no nodes", n.Name)
		}
	}
	for _, want := range []string{NetworkTTU, NetworkEPB, NetworkORNL, "NASH", "MEM", "KNOX"} {
		if !names[want] {
			t.Fatalf("missing network %s", want)
		}
	}
	// Memphis is far west: ≈ 290+ km from Nashville.
	var nash, mem LocalNetwork
	for _, n := range nets {
		switch n.Name {
		case "NASH":
			nash = n
		case "MEM":
			mem = n
		}
	}
	if d := geo.GreatCircleM(nash.Centroid(), mem.Centroid()) / 1000; d < 250 || d > 350 {
		t.Fatalf("Nashville-Memphis separation %g km", d)
	}
}

func TestNewCustomScenarioValidation(t *testing.T) {
	p := DefaultParams()
	if _, err := NewCustomScenario(AirGround, p, nil, nil); err == nil {
		t.Fatal("empty LAN list accepted")
	}
	lans := GroundNetworks()
	dup := append([]LocalNetwork{}, lans...)
	dup[1].Name = dup[0].Name
	if _, err := NewCustomScenario(AirGround, p, dup, nil); err == nil {
		t.Fatal("duplicate LAN name accepted")
	}
	empty := append([]LocalNetwork{}, lans...)
	empty[2].Nodes = nil
	if _, err := NewCustomScenario(AirGround, p, empty, nil); err == nil {
		t.Fatal("empty LAN accepted")
	}
}

func TestNewMultiHAP(t *testing.T) {
	p := DefaultParams()
	positions := []geo.LLA{
		{LatDeg: p.HAPLatDeg, LonDeg: p.HAPLonDeg}, // altitude defaulted
		{LatDeg: 36.0, LonDeg: -86.4, AltM: 25e3},
	}
	sc, err := NewMultiHAP(p, GroundNetworks(), positions)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.RelayIDs) != 2 || sc.RelayIDs[0] != "HAP-1" || sc.RelayIDs[1] != "HAP-2" {
		t.Fatalf("relay IDs %v", sc.RelayIDs)
	}
	// Defaulted altitude applied.
	if alt := geo.ToLLA(sc.Net.Node("HAP-1").PositionAt(0)).AltM; alt < 29e3 || alt > 31e3 {
		t.Fatalf("HAP-1 altitude %g", alt)
	}
	if alt := geo.ToLLA(sc.Net.Node("HAP-2").PositionAt(0)).AltM; alt < 24e3 || alt > 26e3 {
		t.Fatalf("HAP-2 altitude %g", alt)
	}
	if _, err := NewMultiHAP(p, GroundNetworks(), nil); err == nil {
		t.Fatal("empty fleet accepted")
	}
}

func TestSingleHAPEquivalence(t *testing.T) {
	// A one-platform fleet at the paper position behaves like NewAirGround.
	p := DefaultParams()
	fleet, err := NewMultiHAP(p, GroundNetworks(), []geo.LLA{{LatDeg: p.HAPLatDeg, LonDeg: p.HAPLonDeg}})
	if err != nil {
		t.Fatal(err)
	}
	paper, err := NewAirGround(p)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := fleet.Graph(0)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := paper.Graph(0)
	if err != nil {
		t.Fatal(err)
	}
	if gf.NumEdges() != gp.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", gf.NumEdges(), gp.NumEdges())
	}
	if !fleet.Bridged(gf) {
		t.Fatal("single-HAP fleet should bridge the paper region")
	}
}

func TestPlaceHAPsPaperRegion(t *testing.T) {
	// One platform suffices for the paper's three cities, and the greedy
	// search must find it.
	p := DefaultParams()
	res, err := PlaceHAPs(p, GroundNetworks(), 3, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions) != 1 {
		t.Fatalf("placed %d HAPs for the paper region, want 1", len(res.Positions))
	}
	if res.ConnectedPairs != res.TotalPairs || res.TotalPairs != 3 {
		t.Fatalf("connectivity %d/%d", res.ConnectedPairs, res.TotalPairs)
	}
	// And the solution actually works as a scenario.
	sc, err := NewMultiHAP(p, GroundNetworks(), res.Positions)
	if err != nil {
		t.Fatal(err)
	}
	cov, err := sc.Coverage(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Percent() != 100 {
		t.Fatalf("optimized placement covers %.2f%%", cov.Percent())
	}
}

func TestPlaceHAPsStatewide(t *testing.T) {
	// The statewide finding: Memphis cannot be joined by any HAP fleet
	// (no platform footprint spans the Nashville-Memphis gap and there is
	// no intermediate LAN), so greedy placement saturates at 10/15 pairs.
	p := DefaultParams()
	res, err := PlaceHAPs(p, ExtendedNetworks(), 6, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPairs != 15 {
		t.Fatalf("total pairs %d", res.TotalPairs)
	}
	if res.ConnectedPairs != 10 {
		t.Fatalf("connected pairs %d, want 10 (Memphis isolated)", res.ConnectedPairs)
	}
	if len(res.Positions) > 4 {
		t.Fatalf("greedy used %d platforms", len(res.Positions))
	}
}

func TestPlaceHAPsRejectsBadInput(t *testing.T) {
	p := DefaultParams()
	if _, err := PlaceHAPs(p, GroundNetworks(), 0, 0.2); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := PlaceHAPs(p, GroundNetworks(), 2, 0); err == nil {
		t.Fatal("zero grid step accepted")
	}
	if _, err := PlaceHAPs(p, GroundNetworks()[:1], 2, 0.2); err == nil {
		t.Fatal("single LAN accepted")
	}
}

func TestExtendedSpaceGroundBridgesStatewide(t *testing.T) {
	// Satellites cover the whole state whenever one is up: over a few
	// hours the extended region gets nonzero coverage.
	sc, err := NewExtendedSpaceGround(108, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.LANs) != 6 {
		t.Fatalf("%d LANs", len(sc.LANs))
	}
	cov, err := sc.Coverage(2 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Percent() <= 0 {
		t.Fatal("statewide space-ground coverage is zero")
	}
}

func TestConnectedPairsHelper(t *testing.T) {
	// Three LANs; one platform serving {0,1}, another {1,2}: chains give
	// all three pairs.
	if got := connectedPairs([]uint64{0b011, 0b110}, 3); got != 3 {
		t.Fatalf("chained pairs %d, want 3", got)
	}
	if got := connectedPairs([]uint64{0b011}, 3); got != 1 {
		t.Fatalf("single link pairs %d, want 1", got)
	}
	if got := connectedPairs(nil, 3); got != 0 {
		t.Fatalf("empty fleet pairs %d", got)
	}
}
