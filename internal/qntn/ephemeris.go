package qntn

import (
	"fmt"
	"time"

	"qntn/internal/geo"
	"qntn/internal/netsim"
	"qntn/internal/orbit"
)

// propagationHook, when non-nil, observes every propagation pass over the
// satellite catalog (one call per NewSpaceGround or NewEphemerisCache with
// the catalog size). Tests install it to assert that nested-prefix sweeps
// propagate the constellation exactly once instead of once per size.
var propagationHook func(nSats int)

// cachedSatellite is a Table II satellite whose ECEF positions at a fixed
// set of sample times were propagated up front. Lookups at a sample time
// return the precomputed position (bit-identical to propagating on demand,
// since the cache stores the propagator's own output); any other time falls
// back to direct Keplerian propagation. The struct is immutable after
// construction, so one instance is safely shared by every prefix scenario
// of a sweep, across worker goroutines.
type cachedSatellite struct {
	id    string
	elems orbit.Elements
	index map[time.Duration]int // sample time -> slot in pos
	pos   []geo.Vec3
}

// ID implements netsim.Node.
func (s *cachedSatellite) ID() string { return s.id }

// Kind implements netsim.Node.
func (s *cachedSatellite) Kind() netsim.NodeKind { return netsim.Satellite }

// Network implements netsim.Node.
func (s *cachedSatellite) Network() string { return "" }

// PositionAt implements netsim.Node.
func (s *cachedSatellite) PositionAt(t time.Duration) geo.Vec3 {
	if i, ok := s.index[t]; ok {
		return s.pos[i]
	}
	return s.elems.PositionECEF(t)
}

// Elements returns the satellite's orbital elements, letting the window
// engine bound its speed (same contract as netsim.SatelliteNode.Elements).
func (s *cachedSatellite) Elements() orbit.Elements { return s.elems }

// EphemerisCache holds the first nSats satellites of the paper's Table II
// catalog with their positions propagated once at a fixed set of sample
// times. Because the paper's constellations are nested prefixes of the
// catalog, every sweep size is a slice of the same cached fleet: an
// 18-point sweep propagates 108 orbits once instead of 1,026 times.
type EphemerisCache struct {
	params Params
	sats   []netsim.Node
}

// NewEphemerisCache validates the parameters once, propagates the first
// nSats catalog satellites at every sample time, and returns the shared
// fleet. The times slice is the set of topology instants the experiment
// will evaluate (duplicates are tolerated).
func NewEphemerisCache(nSats int, p Params, times []time.Duration) (*EphemerisCache, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	elems, err := orbit.PaperConstellationWith(nSats, p.SatelliteAltitudeM, p.InclinationDeg)
	if err != nil {
		return nil, err
	}
	if propagationHook != nil {
		propagationHook(len(elems))
	}
	index := make(map[time.Duration]int, len(times))
	var uniq []time.Duration
	for _, t := range times {
		if _, dup := index[t]; dup {
			continue
		}
		index[t] = len(uniq)
		uniq = append(uniq, t)
	}
	cache := &EphemerisCache{params: p, sats: make([]netsim.Node, len(elems))}
	for i, e := range elems {
		e.ApplyJ2 = p.UseJ2
		sat := &cachedSatellite{
			id:    fmt.Sprintf("SAT-%03d", i+1),
			elems: e,
			index: index,
			pos:   make([]geo.Vec3, len(uniq)),
		}
		for k, t := range uniq {
			sat.pos[k] = e.PositionECEF(t)
		}
		cache.sats[i] = sat
	}
	return cache, nil
}

// MaxSatellites returns the cached catalog size.
func (c *EphemerisCache) MaxSatellites() int { return len(c.sats) }

// Scenario assembles the space-ground scenario over the first n cached
// satellites. Parameters were validated when the cache was built, and the
// satellite nodes are shared (immutable) rather than re-propagated, so this
// is cheap enough to call once per sweep point.
func (c *EphemerisCache) Scenario(n int) (*Scenario, error) {
	if n < 1 || n > len(c.sats) {
		return nil, fmt.Errorf("qntn: cached scenario size %d outside [1, %d]", n, len(c.sats))
	}
	return assembleTrusted(SpaceGround, c.params, GroundNetworks(), c.sats[:n])
}
