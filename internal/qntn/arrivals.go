package qntn

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"qntn/internal/netsim"
	"qntn/internal/routing"
	"qntn/internal/stats"
)

// ArrivalConfig parameterizes the arrival-driven experiment: entanglement
// requests arrive as a Poisson process and queue until their LAN pair is
// bridged — the operational view of the paper's "all requests are served
// while in range" assumption.
type ArrivalConfig struct {
	// RatePerHour is the mean Poisson arrival rate of inter-LAN requests.
	RatePerHour float64
	// Horizon is the simulated period.
	Horizon time.Duration
	Seed    int64
}

// DefaultArrivalConfig returns a moderate request load over one day.
func DefaultArrivalConfig() ArrivalConfig {
	return ArrivalConfig{RatePerHour: 120, Horizon: 24 * time.Hour, Seed: 1}
}

// ArrivalResult summarizes the arrival-driven run.
type ArrivalResult struct {
	Config ArrivalConfig
	// Arrivals counts generated requests; Served counts those delivered
	// within the horizon; the rest are censored in queue.
	Arrivals int
	Served   int
	// ServedImmediately counts requests delivered by the arrival handler
	// itself — the pair was bridged the moment the request arrived. The
	// classification is by serve site, not by zero wait: a queued request
	// drained at the exact instant it arrived also has zero wait but did
	// pass through the queue.
	ServedImmediately int
	// RequestsEvaluated counts admission attempts: one per arrival plus
	// one per queued request per drain — the unit the serve daemon's
	// throughput gauge reports.
	RequestsEvaluated int
	// Wait statistics over served requests.
	MeanWait time.Duration
	MaxWait  time.Duration
	// MeanFidelity at the moment of service.
	MeanFidelity float64
	// MaxQueueDepth is the largest number of requests simultaneously
	// waiting.
	MaxQueueDepth int
	// EventsProcessed counts discrete events (arrivals + topology
	// updates).
	EventsProcessed int
}

// ServedPercent returns the delivered fraction.
func (r *ArrivalResult) ServedPercent() float64 {
	if r.Arrivals == 0 {
		return 0
	}
	return 100 * float64(r.Served) / float64(r.Arrivals)
}

// queuedRequest is a waiting arrival.
type queuedRequest struct {
	req     netsim.Request
	arrived time.Duration
}

// admission is the batched request-scheduling core shared by RunArrivals
// and RunTraffic: one pooled graph rebuilt in place at each topology
// instant (the GraphInto/SnapshotInto fast path, spatial index included),
// a single-source Dijkstra memo valid until the next rebuild, and the FIFO
// wait queue with its drain loop. Batching admission per topology update
// keeps the per-step cost amortized: the graph storage, the memo map and
// the queue backing array are all reused across the run.
type admission struct {
	sc    *Scenario
	graph *routing.Graph
	memo  map[string]*routing.SingleSourceResult
	queue []queuedRequest
	// pe is nil unless the entanglement-protocol layer is enabled; a
	// request whose protocol attempt fails stays queued and redraws at the
	// next drain instant (PairKey includes the evaluation time).
	pe    *protoEval
	proto protoOutcome // accumulated draw counters over the run

	served    int
	immediate int
	evaluated int // admission attempts: arrivals plus drain retries
	maxQueue  int
	maxWait   time.Duration
	waits     []float64 // seconds, in serve order
	fids      []float64 // fidelity at serve time, in serve order
	fidSum    float64
}

func newAdmission(sc *Scenario) *admission {
	return &admission{
		sc:    sc,
		graph: routing.NewGraph(),
		memo:  make(map[string]*routing.SingleSourceResult),
		pe:    sc.newProtoEval(),
	}
}

// refresh rebuilds the topology at t into the pooled graph and invalidates
// the routing memo. A non-nil st routes the rebuild through
// SnapshotIntoStats so instrumented runs get per-step evaluator counters.
func (ad *admission) refresh(t time.Duration, st *netsim.SnapshotStats) error {
	if st != nil {
		if err := ad.sc.Net.SnapshotIntoStats(ad.graph, t, st); err != nil {
			return err
		}
	} else if err := ad.sc.GraphInto(ad.graph, t); err != nil {
		return err
	}
	clear(ad.memo)
	return nil
}

// tryServe attempts to deliver q against the current topology. onArrival
// marks the serve site — true from the arrival handler, false from the
// drain loop — which is what the immediate classification reports.
func (ad *admission) tryServe(now time.Duration, q queuedRequest, onArrival bool) (bool, error) {
	ad.evaluated++
	sp, ok := ad.memo[q.req.Src]
	if !ok {
		var err error
		sp, err = routing.Dijkstra(ad.graph, q.req.Src, routing.InverseEtaCost(ad.sc.Params.RoutingEpsilon))
		if err != nil {
			return false, err
		}
		ad.memo[q.req.Src] = sp
	}
	if math.IsInf(sp.Dist[q.req.Dst], 1) {
		return false, nil
	}
	path, err := sp.PathTo(q.req.Dst)
	if err != nil {
		return false, err
	}
	etas, err := ad.graph.EdgeEtas(path)
	if err != nil {
		return false, err
	}
	f := PathFidelity(etas, ad.sc.Params.FidelityModel)
	if ad.pe != nil {
		po, err := ad.pe.outcome(ad.graph, path, q.req, now)
		if err != nil {
			return false, err
		}
		ad.proto.swapAttempts += po.swapAttempts
		ad.proto.swapFailures += po.swapFailures
		ad.proto.purifyRounds += po.purifyRounds
		ad.proto.purifyAccepted += po.purifyAccepted
		if !po.served {
			// Swap chain or distillation failed: the request stays queued
			// and redraws at the next topology instant.
			return false, nil
		}
		f = po.fidelity
	}
	wait := now - q.arrived
	ad.served++
	if onArrival {
		ad.immediate++
	}
	ad.waits = append(ad.waits, wait.Seconds())
	if wait > ad.maxWait {
		ad.maxWait = wait
	}
	ad.fids = append(ad.fids, f)
	ad.fidSum += f
	return true, nil
}

// arrive admits one new request: served on the spot or appended to the
// wait queue.
func (ad *admission) arrive(now time.Duration, req netsim.Request) error {
	q := queuedRequest{req: req, arrived: now}
	ok, err := ad.tryServe(now, q, true)
	if err != nil {
		return err
	}
	if !ok {
		ad.queue = append(ad.queue, q)
		if len(ad.queue) > ad.maxQueue {
			ad.maxQueue = len(ad.queue)
		}
	}
	return nil
}

// drain retries every queued request against the refreshed topology,
// keeping the still-unroutable ones in FIFO order, and returns the number
// served.
func (ad *admission) drain(now time.Duration) (int, error) {
	before := ad.served
	remaining := ad.queue[:0]
	for _, q := range ad.queue {
		ok, err := ad.tryServe(now, q, false)
		if err != nil {
			return 0, err
		}
		if !ok {
			remaining = append(remaining, q)
		}
	}
	ad.queue = remaining
	return ad.served - before, nil
}

// RunArrivals executes the arrival-driven experiment: Poisson arrivals
// interleave with the periodic topology updates; each arrival is served
// against the most recent topology or queued, and every topology update
// drains the queue of newly reachable requests. All randomness is seeded;
// runs are reproducible.
//
// The loop is a deterministic two-stream merge over the pooled-snapshot
// fast path. It replays the retired event-heap implementation exactly —
// same arrival draws, same update instants (0, step, … ≤ Horizon), and at
// a time tie the update runs first, the heap's FIFO order when every
// update was enqueued before any arrival — so results are byte-identical
// to the reference (see the differential test in arrivals_ref_test.go).
func (sc *Scenario) RunArrivals(cfg ArrivalConfig) (*ArrivalResult, error) {
	if cfg.RatePerHour <= 0 {
		return nil, fmt.Errorf("qntn: arrival rate must be positive")
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 24 * time.Hour
	}
	res := &ArrivalResult{Config: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))
	wl, err := NewWorkload(sc, cfg.Seed+1)
	if err != nil {
		return nil, err
	}

	// Poisson arrival instants: exponential interarrivals, drawn in the
	// exact order the event-heap implementation drew them.
	meanGapS := 3600 / cfg.RatePerHour
	var arrivals []time.Duration
	for at := time.Duration(0); ; {
		at += time.Duration(rng.ExpFloat64() * meanGapS * float64(time.Second))
		if at >= cfg.Horizon {
			break
		}
		arrivals = append(arrivals, at)
	}

	ad := newAdmission(sc)
	step := sc.Params.TopologyStep()
	next := time.Duration(0) // next topology-update instant
	i := 0
	for next <= cfg.Horizon || i < len(arrivals) {
		if next <= cfg.Horizon && (i >= len(arrivals) || next <= arrivals[i]) {
			if err := ad.refresh(next, nil); err != nil {
				return nil, err
			}
			if _, err := ad.drain(next); err != nil {
				return nil, err
			}
			next += step
		} else {
			res.Arrivals++
			if err := ad.arrive(arrivals[i], wl.Next()); err != nil {
				return nil, err
			}
			i++
		}
		res.EventsProcessed++
	}

	res.Served = ad.served
	res.ServedImmediately = ad.immediate
	res.RequestsEvaluated = ad.evaluated
	res.MaxQueueDepth = ad.maxQueue
	res.MaxWait = ad.maxWait
	res.MeanWait = secs(stats.Mean(ad.waits))
	res.MeanFidelity = stats.Mean(ad.fids)
	return res, nil
}
