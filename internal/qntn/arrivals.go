package qntn

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"qntn/internal/netsim"
	"qntn/internal/routing"
	"qntn/internal/stats"
)

// ArrivalConfig parameterizes the arrival-driven experiment: entanglement
// requests arrive as a Poisson process and queue until their LAN pair is
// bridged — the operational view of the paper's "all requests are served
// while in range" assumption.
type ArrivalConfig struct {
	// RatePerHour is the mean Poisson arrival rate of inter-LAN requests.
	RatePerHour float64
	// Horizon is the simulated period.
	Horizon time.Duration
	Seed    int64
}

// DefaultArrivalConfig returns a moderate request load over one day.
func DefaultArrivalConfig() ArrivalConfig {
	return ArrivalConfig{RatePerHour: 120, Horizon: 24 * time.Hour, Seed: 1}
}

// ArrivalResult summarizes the arrival-driven run.
type ArrivalResult struct {
	Config ArrivalConfig
	// Arrivals counts generated requests; Served counts those delivered
	// within the horizon; the rest are censored in queue.
	Arrivals int
	Served   int
	// ServedImmediately counts requests whose pair was bridged on
	// arrival.
	ServedImmediately int
	// Wait statistics over served requests.
	MeanWait time.Duration
	MaxWait  time.Duration
	// MeanFidelity at the moment of service.
	MeanFidelity float64
	// MaxQueueDepth is the largest number of requests simultaneously
	// waiting.
	MaxQueueDepth int
	// EventsProcessed counts discrete events (arrivals + topology
	// updates).
	EventsProcessed int
}

// ServedPercent returns the delivered fraction.
func (r *ArrivalResult) ServedPercent() float64 {
	if r.Arrivals == 0 {
		return 0
	}
	return 100 * float64(r.Served) / float64(r.Arrivals)
}

// queuedRequest is a waiting arrival.
type queuedRequest struct {
	req     netsim.Request
	arrived time.Duration
}

// RunArrivals executes the arrival-driven experiment on the discrete-event
// simulator: Poisson arrivals interleave with the 30-second topology
// updates; each arrival is served against the most recent topology or
// queued, and every topology update drains the queue of newly reachable
// requests. All randomness is seeded; runs are reproducible.
func (sc *Scenario) RunArrivals(cfg ArrivalConfig) (*ArrivalResult, error) {
	if cfg.RatePerHour <= 0 {
		return nil, fmt.Errorf("qntn: arrival rate must be positive")
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 24 * time.Hour
	}
	res := &ArrivalResult{Config: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))
	wl := NewWorkload(sc, cfg.Seed+1)

	sim := netsim.NewSimulator()
	var simErr error

	// Topology state, refreshed by update events.
	var graph *routing.Graph
	var dijkstraMemo map[string]*routing.SingleSourceResult
	var queue []queuedRequest
	var waits, fids []float64

	refreshTopology := func(s *netsim.Simulator) bool {
		g, err := sc.Graph(s.Now())
		if err != nil {
			simErr = err
			s.Stop()
			return false
		}
		graph = g
		dijkstraMemo = make(map[string]*routing.SingleSourceResult)
		return true
	}

	// tryServe attempts to deliver req against the current topology.
	tryServe := func(now time.Duration, q queuedRequest) (bool, error) {
		src := q.req.Src
		sp, ok := dijkstraMemo[src]
		if !ok {
			var err error
			sp, err = routing.Dijkstra(graph, src, routing.InverseEtaCost(sc.Params.RoutingEpsilon))
			if err != nil {
				return false, err
			}
			dijkstraMemo[src] = sp
		}
		if math.IsInf(sp.Dist[q.req.Dst], 1) {
			return false, nil
		}
		path, err := sp.PathTo(q.req.Dst)
		if err != nil {
			return false, err
		}
		etas, err := graph.EdgeEtas(path)
		if err != nil {
			return false, err
		}
		wait := now - q.arrived
		res.Served++
		if wait == 0 {
			res.ServedImmediately++
		}
		waits = append(waits, wait.Seconds())
		if wait > res.MaxWait {
			res.MaxWait = wait
		}
		fids = append(fids, PathFidelity(etas, sc.Params.FidelityModel))
		return true, nil
	}

	// Topology updates drain the queue.
	step := sc.Params.StepInterval
	if err := sim.ScheduleEvery(0, step, cfg.Horizon, "topology-update", func(s *netsim.Simulator) {
		if !refreshTopology(s) {
			return
		}
		remaining := queue[:0]
		for _, q := range queue {
			ok, err := tryServe(s.Now(), q)
			if err != nil {
				simErr = err
				s.Stop()
				return
			}
			if !ok {
				remaining = append(remaining, q)
			}
		}
		queue = remaining
	}); err != nil {
		return nil, err
	}

	// Poisson arrivals: pre-draw the arrival times (exponential
	// interarrivals) and schedule them.
	meanGapS := 3600 / cfg.RatePerHour
	for at := time.Duration(0); ; {
		gap := time.Duration(rng.ExpFloat64() * meanGapS * float64(time.Second))
		at += gap
		if at >= cfg.Horizon {
			break
		}
		if err := sim.Schedule(at, "arrival", func(s *netsim.Simulator) {
			res.Arrivals++
			q := queuedRequest{req: wl.Next(), arrived: s.Now()}
			ok, err := tryServe(s.Now(), q)
			if err != nil {
				simErr = err
				s.Stop()
				return
			}
			if !ok {
				queue = append(queue, q)
				if len(queue) > res.MaxQueueDepth {
					res.MaxQueueDepth = len(queue)
				}
			}
		}); err != nil {
			return nil, err
		}
	}

	if err := sim.Run(cfg.Horizon); err != nil {
		return nil, err
	}
	if simErr != nil {
		return nil, simErr
	}
	res.MeanWait = secs(stats.Mean(waits))
	res.MeanFidelity = stats.Mean(fids)
	res.EventsProcessed = sim.Processed
	return res, nil
}
