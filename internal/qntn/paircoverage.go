package qntn

import (
	"fmt"
	"time"

	"qntn/internal/netsim"
	"qntn/internal/routing"
)

// PairCoverage reports the coverage of one LAN pair — the S_ij view of the
// paper's coverage definition, which requires a link between every pair of
// local networks.
type PairCoverage struct {
	NetworkA string
	NetworkB string
	Result   CoverageResult
}

// CoverageDetail is the per-pair breakdown of a coverage run plus topology
// churn statistics.
type CoverageDetail struct {
	// All is the paper's all-pairs coverage (identical to
	// Scenario.Coverage).
	All CoverageResult
	// Pairs holds one entry per unordered LAN pair, ordered
	// (TTU,EPB), (TTU,ORNL), (EPB,ORNL).
	Pairs []PairCoverage
	// LinkTransitions counts link up/down events across the run
	// (excluding the initial topology).
	LinkTransitions int
}

// bridgedPairs computes, for one snapshot, which LAN pairs are connected.
// Returns the pair map and whether all LANs share one component.
func (sc *Scenario) bridgedPairs(g *routing.Graph) (map[[2]string]bool, bool) {
	uf := newUnionFind(g.NumNodes())
	g.EachEdge(func(i, j int, _ float64) { uf.union(i, j) })
	roots := make(map[string]int, len(sc.LANs))
	for _, lan := range sc.LANs {
		ids := sc.GroundIDs[lan.Name]
		if len(ids) == 0 {
			return nil, false
		}
		i0, ok := g.IndexOf(ids[0])
		if !ok {
			return nil, false
		}
		roots[lan.Name] = uf.find(i0)
	}
	pairs := make(map[[2]string]bool)
	all := true
	for i := 0; i < len(sc.LANs); i++ {
		for j := i + 1; j < len(sc.LANs); j++ {
			a, b := sc.LANs[i].Name, sc.LANs[j].Name
			ok := roots[a] == roots[b]
			pairs[[2]string{a, b}] = ok
			if !ok {
				all = false
			}
		}
	}
	return pairs, all
}

// DetailedCoverage runs the coverage analysis with per-pair breakdown and
// link-churn accounting over the given duration.
func (sc *Scenario) DetailedCoverage(duration time.Duration) (*CoverageDetail, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("qntn: non-positive coverage duration %v", duration)
	}
	if sc.Params.EventDriven && sc.tel == nil {
		return sc.detailedCoverageEventDriven(duration)
	}
	step := sc.Params.StepInterval
	detail := &CoverageDetail{All: CoverageResult{Total: duration}}
	for i := 0; i < len(sc.LANs); i++ {
		for j := i + 1; j < len(sc.LANs); j++ {
			detail.Pairs = append(detail.Pairs, PairCoverage{
				NetworkA: sc.LANs[i].Name,
				NetworkB: sc.LANs[j].Name,
				Result:   CoverageResult{Total: duration},
			})
		}
	}
	tracker := netsim.NewLinkTracker()
	first := true
	g := routing.NewGraph() // reused across steps; the tracker copies edges
	for at := time.Duration(0); at+step <= duration; at += step {
		if err := sc.GraphInto(g, at); err != nil {
			return nil, err
		}
		changes := tracker.Observe(at, g)
		if !first {
			detail.LinkTransitions += len(changes)
		}
		first = false

		pairs, all := sc.bridgedPairs(g)
		accumulate(&detail.All, at, step, all)
		for k := range detail.Pairs {
			pc := &detail.Pairs[k]
			accumulate(&pc.Result, at, step, pairs[[2]string{pc.NetworkA, pc.NetworkB}])
		}
	}
	return detail, nil
}

// accumulate folds one step into a CoverageResult.
func accumulate(res *CoverageResult, at, step time.Duration, covered bool) {
	res.Steps++
	if !covered {
		return
	}
	res.CoveredSteps++
	res.Covered += step
	end := at + step
	if n := len(res.Intervals); n > 0 && res.Intervals[n-1].End == at {
		res.Intervals[n-1].End = end
	} else {
		res.Intervals = append(res.Intervals, Interval{Start: at, End: end})
	}
}
