package qntn

import (
	"math"
	"testing"
	"time"
)

func TestDefaultParamsValid(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	if err := p.SpaceDownlinkFSO().Validate(); err != nil {
		t.Fatalf("space FSO config invalid: %v", err)
	}
	if err := p.HAPDownlinkFSO().Validate(); err != nil {
		t.Fatalf("HAP FSO config invalid: %v", err)
	}
	if err := p.Fiber().Validate(); err != nil {
		t.Fatalf("fiber config invalid: %v", err)
	}
}

func TestDefaultParamsMatchPaperConstants(t *testing.T) {
	p := DefaultParams()
	if p.GroundApertureRadiusM != 0.60 {
		t.Errorf("ground aperture radius %g, paper uses 120 cm apertures", p.GroundApertureRadiusM)
	}
	if p.HAPApertureRadiusM != 0.15 {
		t.Errorf("HAP aperture radius %g, paper uses 30 cm apertures", p.HAPApertureRadiusM)
	}
	if math.Abs(p.MinElevationRad-math.Pi/9) > 1e-12 {
		t.Errorf("elevation mask %g, paper uses π/9", p.MinElevationRad)
	}
	if p.TransmissivityThreshold != 0.7 {
		t.Errorf("threshold %g, paper uses 0.7", p.TransmissivityThreshold)
	}
	if p.FiberAttenuationDBPerKm != 0.15 {
		t.Errorf("fiber attenuation %g, paper uses 0.15 dB/km", p.FiberAttenuationDBPerKm)
	}
	if p.SatelliteAltitudeM != 500e3 {
		t.Errorf("satellite altitude %g, paper uses 500 km", p.SatelliteAltitudeM)
	}
	if p.InclinationDeg != 53 {
		t.Errorf("inclination %g, paper uses 53°", p.InclinationDeg)
	}
	if p.HAPLatDeg != 35.6692 || p.HAPLonDeg != -85.0662 || p.HAPAltM != 30e3 {
		t.Errorf("HAP position (%g, %g, %g) differs from paper", p.HAPLatDeg, p.HAPLonDeg, p.HAPAltM)
	}
	if p.StepInterval != 30*time.Second {
		t.Errorf("step interval %v, paper records at 30 s", p.StepInterval)
	}
}

func TestParamsValidateRejects(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.WavelengthM = 0 },
		func(p *Params) { p.GroundApertureRadiusM = -1 },
		func(p *Params) { p.HAPApertureRadiusM = 0 },
		func(p *Params) { p.SpaceBeamWaistM = 0 },
		func(p *Params) { p.SpaceBeamWaistM = p.GroundApertureRadiusM * 2 },
		func(p *Params) { p.HAPBeamWaistM = p.HAPApertureRadiusM * 2 },
		func(p *Params) { p.ReceiverEfficiency = 0 },
		func(p *Params) { p.ReceiverEfficiency = 1.1 },
		func(p *Params) { p.ZenithOpticalDepth = -0.1 },
		func(p *Params) { p.FiberAttenuationDBPerKm = -1 },
		func(p *Params) { p.TransmissivityThreshold = 1.5 },
		func(p *Params) { p.MinElevationRad = math.Pi },
		func(p *Params) { p.SatelliteAltitudeM = 0 },
		func(p *Params) { p.HAPAltM = -1 },
		func(p *Params) { p.StepInterval = 0 },
	}
	for i, mutate := range mutations {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestFidelityModelString(t *testing.T) {
	if SourceAtBestSplit.String() != "source-at-best-split" {
		t.Error("best-split name wrong")
	}
	if SourceAtEndpoint.String() != "source-at-endpoint" {
		t.Error("endpoint name wrong")
	}
	if FidelityModel(99).String() == "" {
		t.Error("unknown model should still render")
	}
}

func TestArchitectureString(t *testing.T) {
	if SpaceGround.String() != "space-ground" || AirGround.String() != "air-ground" || Hybrid.String() != "hybrid" {
		t.Fatal("architecture names wrong")
	}
	if Architecture(42).String() == "" {
		t.Fatal("unknown architecture should render")
	}
}
