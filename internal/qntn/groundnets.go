package qntn

import (
	"fmt"

	"qntn/internal/geo"
)

// Canonical local-network names.
const (
	NetworkTTU  = "TTU"  // Tennessee Tech University (5 nodes)
	NetworkEPB  = "EPB"  // EPB commercial network, Chattanooga (15 nodes)
	NetworkORNL = "ORNL" // Oak Ridge National Laboratory (11 nodes)
)

// LocalNetwork is one of the three quantum LANs of the QNTN.
type LocalNetwork struct {
	Name  string
	Nodes []geo.LLA
}

// Centroid returns the mean position of the network's nodes (at ground
// altitude).
func (n LocalNetwork) Centroid() geo.LLA {
	var lat, lon float64
	for _, p := range n.Nodes {
		lat += p.LatDeg
		lon += p.LonDeg
	}
	k := float64(len(n.Nodes))
	if k == 0 {
		return geo.LLA{}
	}
	return geo.LLA{LatDeg: lat / k, LonDeg: lon / k}
}

// GroundNetworks returns the three local networks with the exact node
// coordinates of the paper's Table I.
func GroundNetworks() []LocalNetwork {
	return []LocalNetwork{
		{
			Name: NetworkTTU,
			Nodes: []geo.LLA{
				{LatDeg: 36.1757, LonDeg: -85.5066},
				{LatDeg: 36.1751, LonDeg: -85.5067},
				{LatDeg: 36.1754, LonDeg: -85.5074},
				{LatDeg: 36.1755, LonDeg: -85.5058},
				{LatDeg: 36.1756, LonDeg: -85.5080},
			},
		},
		{
			Name: NetworkEPB,
			Nodes: []geo.LLA{
				{LatDeg: 35.04159, LonDeg: -85.2799},
				{LatDeg: 35.04169, LonDeg: -85.2801},
				{LatDeg: 35.04179, LonDeg: -85.2803},
				{LatDeg: 35.04189, LonDeg: -85.2805},
				{LatDeg: 35.04199, LonDeg: -85.2807},
				{LatDeg: 35.04051, LonDeg: -85.2806},
				{LatDeg: 35.04061, LonDeg: -85.2807},
				{LatDeg: 35.04071, LonDeg: -85.2808},
				{LatDeg: 35.04081, LonDeg: -85.2809},
				{LatDeg: 35.04091, LonDeg: -85.2810},
				{LatDeg: 35.03971, LonDeg: -85.2810},
				{LatDeg: 35.03981, LonDeg: -85.2811},
				{LatDeg: 35.03991, LonDeg: -85.2812},
				{LatDeg: 35.04001, LonDeg: -85.2813},
				{LatDeg: 35.04011, LonDeg: -85.2814},
			},
		},
		{
			Name: NetworkORNL,
			Nodes: []geo.LLA{
				{LatDeg: 35.91, LonDeg: -84.3},
				{LatDeg: 35.91, LonDeg: -84.303},
				{LatDeg: 35.918, LonDeg: -84.304},
				{LatDeg: 35.92, LonDeg: -84.321},
				{LatDeg: 35.927, LonDeg: -84.313},
				{LatDeg: 35.9238, LonDeg: -84.316},
				{LatDeg: 35.9285, LonDeg: -84.31283},
				{LatDeg: 35.9294, LonDeg: -84.3101},
				{LatDeg: 35.9293, LonDeg: -84.3106},
				{LatDeg: 35.9298, LonDeg: -84.3106},
				{LatDeg: 35.9309, LonDeg: -84.308},
			},
		},
	}
}

// NodeID builds the canonical host identifier for node index i (0-based)
// of the named network, e.g. "TTU-01".
func NodeID(network string, i int) string {
	return fmt.Sprintf("%s-%02d", network, i+1)
}

// GlobalGroundNetworks returns the paper's three Tennessee LANs plus five
// metro networks on other continents — the multi-continent ground set the
// global-backbone related work studies. Each metro LAN is a small campus
// cluster (~100 m node spacing) around the city center.
func GlobalGroundNetworks() []LocalNetwork {
	nets := GroundNetworks()
	metro := func(name string, lat, lon float64) LocalNetwork {
		return LocalNetwork{
			Name: name,
			Nodes: []geo.LLA{
				{LatDeg: lat, LonDeg: lon},
				{LatDeg: lat + 0.001, LonDeg: lon},
				{LatDeg: lat, LonDeg: lon + 0.001},
				{LatDeg: lat + 0.001, LonDeg: lon + 0.001},
			},
		}
	}
	return append(nets,
		metro("GVA", 46.2044, 6.1432),    // Geneva
		metro("TKO", 35.6762, 139.6503),  // Tokyo
		metro("SYD", -33.8688, 151.2093), // Sydney
		metro("BLR", 12.9716, 77.5946),   // Bengaluru
		metro("SPO", -23.5505, -46.6333), // São Paulo
	)
}
