package qntn

import (
	"fmt"
	"time"

	"qntn/internal/fault"
	"qntn/internal/netsim"
	"qntn/internal/routing"
	"qntn/internal/stats"
)

// This file implements the event engine that drives Coverage,
// DetailedCoverage and RunServe from the precomputed visibility windows of
// windows.go: instead of rebuilding the topology graph from scratch at every
// step, the engine applies a sorted stream of window open/close, platform
// down/up and weather on/off events as incremental graph deltas
// (AddEdgeByIndex / RemoveEdgeByIndex), and re-evaluates only the pairs
// whose windows are currently open — with the exact stepEval physics, so
// every emitted result is DeepEqual-identical to the stepped path's.

// evKind orders simultaneous events deterministically. After coalescing, no
// entity sees two events at the same step, so the order is a tiebreak for
// replay stability only.
type evKind uint8

const (
	evWeatherOn evKind = iota
	evWeatherOff
	evNodeDown
	evNodeUp
	evPairClose
	evPairOpen
)

// event is one topology transition at a grid step: a pair window opening or
// closing, a platform going down or coming back, or a weather blackout edge.
type event struct {
	step int
	kind evKind
	i    int // node index for down/up
	pair int // pair ordinal for open/close
}

// spanEvents converts half-open time spans into coalesced [on, off) index
// intervals on the grid and emits them through emit. Adjacent or overlapping
// spans that quantize onto touching index intervals are merged first —
// otherwise a down(k) and up(k) pair at the same step would leave the node
// up where the schedule says down.
func spanEvents(grid sampleGrid, spans []fault.Span, emit func(on, off int)) {
	type iv struct{ on, off int }
	var ivs []iv
	for _, sp := range spans {
		on, off := grid.ceilIndex(sp.Start), grid.ceilIndex(sp.End)
		if on >= off || on >= grid.steps {
			continue
		}
		if n := len(ivs); n > 0 && on <= ivs[n-1].off {
			if off > ivs[n-1].off {
				ivs[n-1].off = off
			}
			continue
		}
		ivs = append(ivs, iv{on, off})
	}
	for _, v := range ivs {
		emit(v.on, v.off)
	}
}

// fiberEdge is one static ground↔ground link admitted by the fiber physics.
// present tracks whether it is currently installed in the graph (both
// endpoints up); its transmissivity never changes.
type fiberEdge struct {
	i, j    int
	eta     float64
	present bool
}

// eventEngine replays one scenario run as incremental topology updates.
type eventEngine struct {
	sc   *Scenario
	ws   *windowScan
	se   *stepEval
	grid sampleGrid
	g    *routing.Graph

	fm       *fault.Model // nil without fault injection
	down     []bool
	weather  bool
	isGround []bool

	// stamp[i] is the grid step node i's evaluator caches were last
	// refreshed at (every node is fresh at step 0 from the initial reset).
	stamp []int

	fiber   []fiberEdge
	fiberOf [][]int // node index -> indices into fiber
	ufDirty bool

	events    []event
	evScratch []event // counting-sort double buffer
	evCounts  []int   // counting-sort bucket offsets, one per grid step
	cursor    int

	active []int   // pair ordinals with open windows
	apos   []int   // pair ordinal -> index in active, -1 when closed
	has    []bool  // pair ordinal -> edge currently in the graph

	stepChanges int
	transitions int

	baseUF *unionFind // fiber-only template, rebuilt when ufDirty
	uf     *unionFind
	lanIdx [][]int
	lanBad bool
}

// newEventEngine scans the scenario's windows on the given grid, builds the
// sorted event stream (windows merged with fault outage and weather spans),
// and installs the static fiber topology. Engines come from the scenario's
// pool — Close returns them — so repeated event-driven runs reuse the
// window scan's position-memo slabs and the event buffers.
func (sc *Scenario) newEventEngine(grid sampleGrid) (*eventEngine, error) {
	nodes := sc.Net.Nodes()
	n := len(nodes)
	eng, _ := sc.engPool.Get().(*eventEngine)
	if eng == nil {
		eng = &eventEngine{
			ws:     &windowScan{},
			g:      routing.NewGraph(),
			baseUF: &unionFind{},
			uf:     &unionFind{},
		}
	}
	eng.sc = sc
	eng.grid = grid
	eng.ws.scan(sc, nodes, grid)
	eng.down = grow(eng.down, n)
	clear(eng.down)
	eng.weather = false
	eng.isGround = grow(eng.isGround, n)
	eng.stamp = grow(eng.stamp, n)
	clear(eng.stamp)
	eng.fiber = eng.fiber[:0]
	eng.fiberOf = grow(eng.fiberOf, n)
	for i := range eng.fiberOf {
		eng.fiberOf[i] = eng.fiberOf[i][:0]
	}
	eng.events = eng.events[:0]
	eng.cursor = 0
	eng.active = eng.active[:0]
	eng.stepChanges, eng.transitions = 0, 0
	eng.lanIdx = eng.lanIdx[:0]
	eng.lanBad = false
	eng.fm, _ = sc.Net.Model().(*fault.Model)
	eng.g.Reset()
	for i, nd := range nodes {
		eng.g.AddNode(nd.ID())
		eng.isGround[i] = nd.Kind() == netsim.Ground
	}
	eng.g.ResetEdges()

	// The initial full reset leaves every node's caches fresh at step 0.
	eng.se = sc.beginStep(nodes, 0)

	// Static fiber topology: evaluated once, installed up front (the
	// initial topology produces no link transitions, matching the stepped
	// tracker's first observation), then toggled only by down/up events.
	for i := 0; i < n; i++ {
		if !eng.isGround[i] {
			continue
		}
		for j := i + 1; j < n; j++ {
			if !eng.isGround[j] {
				continue
			}
			eta, ok := eng.se.fiberPair(i, j)
			if !ok {
				continue
			}
			fi := len(eng.fiber)
			eng.fiber = append(eng.fiber, fiberEdge{i: i, j: j, eta: eta, present: true})
			eng.fiberOf[i] = append(eng.fiberOf[i], fi)
			eng.fiberOf[j] = append(eng.fiberOf[j], fi)
			if err := eng.g.AddEdgeByIndex(i, j, eta); err != nil {
				eng.Close()
				return nil, err
			}
		}
	}
	eng.ufDirty = true

	// LAN membership as dense indices, for the fast bridged check.
	for _, lan := range sc.LANs {
		ids := sc.GroundIDs[lan.Name]
		if len(ids) == 0 {
			eng.lanBad = true
			break
		}
		idx := make([]int, len(ids))
		for k, id := range ids {
			ii, ok := eng.g.IndexOf(id)
			if !ok {
				eng.lanBad = true
				break
			}
			idx[k] = ii
		}
		if eng.lanBad {
			break
		}
		eng.lanIdx = append(eng.lanIdx, idx)
	}

	eng.buildEvents(nodes)
	eng.apos = grow(eng.apos, len(eng.ws.pairs))
	for p := range eng.apos {
		eng.apos[p] = -1
	}
	eng.has = grow(eng.has, len(eng.ws.pairs))
	clear(eng.has)
	return eng, nil
}

// Close returns the borrowed evaluator to the scenario's step pool and the
// engine itself to the scenario's engine pool. The engine must not be used
// after Close.
func (eng *eventEngine) Close() {
	if eng.se != nil {
		eng.se.Close()
		eng.se = nil
	}
	eng.sc.engPool.Put(eng)
}

// buildEvents merges the window runs with the fault schedule's outage and
// weather spans into one stream sorted by (step, kind, node, pair).
func (eng *eventEngine) buildEvents(nodes []netsim.Node) {
	steps := eng.grid.steps
	for p, runs := range eng.ws.runs {
		for _, r := range runs {
			eng.events = append(eng.events, event{step: r.lo, kind: evPairOpen, pair: p})
			if r.hi+1 < steps {
				eng.events = append(eng.events, event{step: r.hi + 1, kind: evPairClose, pair: p})
			}
		}
	}
	if eng.fm != nil {
		sched := eng.fm.Schedule()
		for i, nd := range nodes {
			spanEvents(eng.grid, sched.DownSpans(nd.ID()), func(on, off int) {
				eng.events = append(eng.events, event{step: on, kind: evNodeDown, i: i})
				if off < steps {
					eng.events = append(eng.events, event{step: off, kind: evNodeUp, i: i})
				}
			})
		}
		spanEvents(eng.grid, sched.WeatherSpans(), func(on, off int) {
			eng.events = append(eng.events, event{step: on, kind: evWeatherOn})
			if off < steps {
				eng.events = append(eng.events, event{step: off, kind: evWeatherOff})
			}
		})
	}
	eng.sortEvents()
}

// eventLess orders events within one step: kind, then node, then pair.
func eventLess(a, b event) bool {
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.i != b.i {
		return a.i < b.i
	}
	return a.pair < b.pair
}

// sortEvents orders the stream by (step, kind, node, pair). The stream is
// tens of thousands of events for a constellation day, so a comparison sort
// is measurable setup overhead; a counting sort on the step followed by
// insertion sorts inside each step's tiny bucket is linear in practice.
func (eng *eventEngine) sortEvents() {
	evs := eng.events
	counts := grow(eng.evCounts, eng.grid.steps)
	clear(counts)
	for _, ev := range evs {
		counts[ev.step]++
	}
	sum := 0
	for s := range counts {
		c := counts[s]
		counts[s] = sum
		sum += c
	}
	out := grow(eng.evScratch, len(evs))
	for _, ev := range evs {
		out[counts[ev.step]] = ev
		counts[ev.step]++
	}
	// counts[s] is now the end of bucket s; its start is the previous end.
	start := 0
	for _, end := range counts {
		bucket := out[start:end]
		start = end
		for i := 1; i < len(bucket); i++ {
			for j := i; j > 0 && eventLess(bucket[j], bucket[j-1]); j-- {
				bucket[j], bucket[j-1] = bucket[j-1], bucket[j]
			}
		}
	}
	eng.events, eng.evScratch, eng.evCounts = out, evs, counts
}

// apply executes one event against the engine state.
func (eng *eventEngine) apply(ev event) {
	switch ev.kind {
	case evWeatherOn:
		eng.weather = true
	case evWeatherOff:
		eng.weather = false
	case evNodeDown:
		eng.down[ev.i] = true
		for _, fi := range eng.fiberOf[ev.i] {
			fe := &eng.fiber[fi]
			if fe.present {
				fe.present = false
				eng.g.RemoveEdgeByIndex(fe.i, fe.j)
				eng.stepChanges++
				eng.ufDirty = true
			}
		}
	case evNodeUp:
		eng.down[ev.i] = false
		for _, fi := range eng.fiberOf[ev.i] {
			fe := &eng.fiber[fi]
			if !fe.present && !eng.down[fe.i] && !eng.down[fe.j] {
				fe.present = true
				// The indices predate the graph, so re-adding cannot fail.
				_ = eng.g.AddEdgeByIndex(fe.i, fe.j, fe.eta)
				eng.stepChanges++
				eng.ufDirty = true
			}
		}
	case evPairOpen:
		eng.apos[ev.pair] = len(eng.active)
		eng.active = append(eng.active, ev.pair)
	case evPairClose:
		at := eng.apos[ev.pair]
		last := len(eng.active) - 1
		moved := eng.active[last]
		eng.active[at] = moved
		eng.apos[moved] = at
		eng.active = eng.active[:last]
		eng.apos[ev.pair] = -1
		if eng.has[ev.pair] {
			eng.has[ev.pair] = false
			pr := &eng.ws.pairs[ev.pair]
			eng.g.RemoveEdgeByIndex(pr.i, pr.j)
			eng.stepChanges++
		}
	}
}

// ensureFresh refreshes node i's evaluator caches for grid step k: moving
// nodes replay the scan's memoized positions (bit-identical to PositionAt),
// everything else re-derives its per-step bits (darkness, HAP availability).
//
//qntn:hotpath twice per active pair per step, deduplicated by stamp
func (eng *eventEngine) ensureFresh(i, k int) {
	if eng.stamp[i] == k {
		return
	}
	eng.stamp[i] = k
	if eng.ws.slot[i] >= 0 {
		eng.se.refreshRelayAt(i, eng.ws.posAt(i, k))
	} else {
		eng.se.refreshNode(i)
	}
}

// evalPair evaluates one active pair with the exact stepped physics plus the
// fault decoration, replicating fault.Model's step evaluator: down gate,
// inner physics, weather gate.
//
//qntn:hotpath once per active pair per step
func (eng *eventEngine) evalPair(i, j int) (float64, bool) {
	if eng.down[i] || eng.down[j] {
		return 0, false
	}
	eta, ok := eng.se.EvaluatePair(i, j)
	if !ok {
		return 0, false
	}
	if eng.weather && eng.isGround[i] != eng.isGround[j] {
		return eng.fm.ApplyWeather(eta)
	}
	return eta, true
}

// runStep advances the engine to grid step k (steps must be visited in
// order): pending events are applied, then every open-window pair is
// re-evaluated and the graph delta applied. After the call eng.g holds
// exactly the snapshot GraphInto would build at at(k).
func (eng *eventEngine) runStep(k int) error {
	eng.stepChanges = 0
	eng.se.setInstant(eng.grid.at(k))
	for eng.cursor < len(eng.events) && eng.events[eng.cursor].step == k {
		eng.apply(eng.events[eng.cursor])
		eng.cursor++
	}
	for _, p := range eng.active {
		pr := &eng.ws.pairs[p]
		eng.ensureFresh(pr.i, k)
		eng.ensureFresh(pr.j, k)
		eta, ok := eng.evalPair(pr.i, pr.j)
		if ok {
			if !eng.has[p] {
				eng.has[p] = true
				eng.stepChanges++
			}
			if err := eng.g.AddEdgeByIndex(pr.i, pr.j, eta); err != nil {
				return err
			}
		} else if eng.has[p] {
			eng.has[p] = false
			eng.g.RemoveEdgeByIndex(pr.i, pr.j)
			eng.stepChanges++
		}
	}
	// The first topology is an observation, not a transition — matching
	// the stepped path's LinkTracker, which skips its first snapshot.
	if k > 0 {
		eng.transitions += eng.stepChanges
	}
	return nil
}

// bridged reports whether all LANs are connected in the current topology,
// equivalently to Scenario.bridgedInto on the engine's graph: a precomputed
// fiber-only union-find template is copied and the open FSO edges unioned in.
func (eng *eventEngine) bridged() bool {
	if eng.lanBad {
		return false
	}
	if eng.ufDirty {
		eng.baseUF.ensure(eng.g.NumNodes())
		for _, fe := range eng.fiber {
			if fe.present {
				eng.baseUF.union(fe.i, fe.j)
			}
		}
		eng.ufDirty = false
	}
	eng.uf.copyFrom(eng.baseUF)
	for _, p := range eng.active {
		if eng.has[p] {
			pr := &eng.ws.pairs[p]
			eng.uf.union(pr.i, pr.j)
		}
	}
	root := -1
	for _, lan := range eng.lanIdx {
		r := eng.uf.find(lan[0])
		for _, ii := range lan[1:] {
			if eng.uf.find(ii) != r {
				return false
			}
		}
		if root == -1 {
			root = r
		} else if r != root {
			return false
		}
	}
	return true
}

// coverageEventDriven is Coverage on the event engine; the caller has
// validated the duration.
func (sc *Scenario) coverageEventDriven(duration time.Duration) (*CoverageResult, error) {
	step := sc.Params.StepInterval
	res := &CoverageResult{Total: duration}
	grid := coverageGrid(step, duration)
	if grid.steps == 0 {
		return res, nil
	}
	eng, err := sc.newEventEngine(grid)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	for k := 0; k < grid.steps; k++ {
		if err := eng.runStep(k); err != nil {
			return nil, err
		}
		accumulate(res, grid.at(k), step, eng.bridged())
	}
	return res, nil
}

// detailedCoverageEventDriven is DetailedCoverage on the event engine; the
// caller has validated the duration. Link transitions come from the engine's
// own delta accounting, which counts exactly the appear/disappear changes
// the stepped tracker reports (transmissivity-only changes count for
// neither).
func (sc *Scenario) detailedCoverageEventDriven(duration time.Duration) (*CoverageDetail, error) {
	step := sc.Params.StepInterval
	detail := &CoverageDetail{All: CoverageResult{Total: duration}}
	for i := 0; i < len(sc.LANs); i++ {
		for j := i + 1; j < len(sc.LANs); j++ {
			detail.Pairs = append(detail.Pairs, PairCoverage{
				NetworkA: sc.LANs[i].Name,
				NetworkB: sc.LANs[j].Name,
				Result:   CoverageResult{Total: duration},
			})
		}
	}
	grid := coverageGrid(step, duration)
	if grid.steps == 0 {
		return detail, nil
	}
	eng, err := sc.newEventEngine(grid)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	for k := 0; k < grid.steps; k++ {
		if err := eng.runStep(k); err != nil {
			return nil, err
		}
		at := grid.at(k)
		pairs, all := sc.bridgedPairs(eng.g)
		accumulate(&detail.All, at, step, all)
		for pi := range detail.Pairs {
			pc := &detail.Pairs[pi]
			accumulate(&pc.Result, at, step, pairs[[2]string{pc.NetworkA, pc.NetworkB}])
		}
	}
	detail.LinkTransitions = eng.transitions
	return detail, nil
}

// runServeEventDriven is RunServe on the event engine; cfg has been
// validated and defaulted by the caller.
func (sc *Scenario) runServeEventDriven(cfg ServeConfig) (*ServeResult, error) {
	res := &ServeResult{Config: cfg}
	wl, err := NewWorkload(sc, cfg.Seed)
	if err != nil {
		return nil, err
	}
	grid := sampleGrid{gap: cfg.stepGap(sc.Params), steps: cfg.Steps}
	eng, err := sc.newEventEngine(grid)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	var scratch routing.BellmanFordScratch
	pe := sc.newProtoEval()
	var fids, etas []float64
	for k := 0; k < grid.steps; k++ {
		if err := eng.runStep(k); err != nil {
			return nil, err
		}
		at := grid.at(k)
		tables := scratch.Run(eng.g, sc.Params.RoutingEpsilon)
		for _, req := range wl.Batch(cfg.RequestsPerStep) {
			out := netsim.Outcome{Request: req, At: at}
			if tables.Reachable(req.Src, req.Dst) {
				path, err := tables.Path(req.Src, req.Dst)
				if err != nil {
					return nil, fmt.Errorf("qntn: step %d request %d: %w", k, req.ID, err)
				}
				if pe != nil {
					po, err := pe.outcome(eng.g, path, req, at)
					if err != nil {
						return nil, fmt.Errorf("qntn: step %d request %d: %w", k, req.ID, err)
					}
					if po.served {
						out.Served = true
						out.Path = path
						out.EndToEndEta = po.primaryEta
						out.Fidelity = po.fidelity
						fids = append(fids, out.Fidelity)
						etas = append(etas, out.EndToEndEta)
					}
				} else {
					hopEtas, err := eng.g.EdgeEtas(path)
					if err != nil {
						return nil, fmt.Errorf("qntn: step %d request %d: %w", k, req.ID, err)
					}
					out.Served = true
					out.Path = path
					out.EndToEndEta = product(hopEtas)
					out.Fidelity = PathFidelity(hopEtas, sc.Params.FidelityModel)
					fids = append(fids, out.Fidelity)
					etas = append(etas, out.EndToEndEta)
				}
			}
			res.Metrics.Record(out)
		}
	}
	res.ServedPercent = 100 * res.Metrics.ServedFraction()
	res.MeanFidelity = res.Metrics.MeanServedFidelity()
	res.FidelitySummary = stats.Summarize(fids)
	res.MeanPathEta = stats.Mean(etas)
	return res, nil
}
