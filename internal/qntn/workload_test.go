package qntn

import (
	"strings"
	"testing"
)

// mustWorkload builds a workload over a scenario that is known to satisfy
// the two-LAN constraint, failing the test otherwise.
func mustWorkload(t *testing.T, sc *Scenario, seed int64) *Workload {
	t.Helper()
	wl, err := NewWorkload(sc, seed)
	if err != nil {
		t.Fatalf("NewWorkload: %v", err)
	}
	return wl
}

// TestNewWorkloadSingleLAN pins the constructor guard for the degenerate
// scenario shapes Next used to mishandle: with ground hosts from a single
// LAN it spun forever rejecting intra-LAN draws, and with no ground hosts
// at all it panicked in rand.Intn(0). Both must now fail fast with a
// descriptive error.
func TestNewWorkloadSingleLAN(t *testing.T) {
	lans := GroundNetworks()
	sc := &Scenario{
		LANs:      lans[:1],
		GroundIDs: map[string][]string{lans[0].Name: {"TTU-01", "TTU-02"}},
	}
	wl, err := NewWorkload(sc, 1)
	if err == nil {
		t.Fatal("NewWorkload accepted a single-LAN scenario; Next would loop forever")
	}
	if wl != nil {
		t.Fatal("NewWorkload returned a workload alongside an error")
	}
	if !strings.Contains(err.Error(), "at least two local networks") {
		t.Fatalf("error does not describe the constraint: %v", err)
	}
	if !strings.Contains(err.Error(), "2 host(s) across 1 network(s)") {
		t.Fatalf("error does not report the scenario shape: %v", err)
	}
}

// TestNewWorkloadNoGroundHosts covers the empty ground set (the rand.Intn
// panic case), including a scenario that declares LANs but maps no hosts
// to them.
func TestNewWorkloadNoGroundHosts(t *testing.T) {
	for name, sc := range map[string]*Scenario{
		"no LANs":  {},
		"no hosts": {LANs: GroundNetworks(), GroundIDs: map[string][]string{}},
	} {
		if _, err := NewWorkload(sc, 1); err == nil {
			t.Fatalf("%s: NewWorkload accepted a scenario with no ground hosts; Next would panic", name)
		}
	}
}

// TestNewWorkloadPaperScenario checks the paper's three-LAN scenarios still
// construct cleanly after the error-return change.
func TestNewWorkloadPaperScenario(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	wl, err := NewWorkload(sc, 9)
	if err != nil {
		t.Fatalf("NewWorkload on the paper scenario: %v", err)
	}
	req := wl.Next()
	if err := wl.Validate(req); err != nil {
		t.Fatalf("first request invalid: %v", err)
	}
}
