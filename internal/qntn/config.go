package qntn

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"qntn/internal/atmosphere"
	"qntn/internal/fault"
	"qntn/internal/quantum/protocol"
)

// paramsJSON is the serialized form of Params: durations in seconds,
// enums as strings, turbulence optional.
type paramsJSON struct {
	WavelengthNM            float64    `json:"wavelength_nm"`
	GroundApertureRadiusM   float64    `json:"ground_aperture_radius_m"`
	HAPApertureRadiusM      float64    `json:"hap_aperture_radius_m"`
	SpaceBeamWaistM         float64    `json:"space_beam_waist_m"`
	HAPBeamWaistM           float64    `json:"hap_beam_waist_m"`
	ReceiverEfficiency      float64    `json:"receiver_efficiency"`
	ZenithOpticalDepth      float64    `json:"zenith_optical_depth"`
	Turbulence              *hvJSON    `json:"turbulence,omitempty"`
	PointingJitterRad       float64    `json:"pointing_jitter_rad"`
	FiberAttenuationDBPerKm float64    `json:"fiber_attenuation_db_per_km"`
	TransmissivityThreshold float64    `json:"transmissivity_threshold"`
	MinElevationDeg         float64    `json:"min_elevation_deg"`
	ISLClearanceAltM        float64    `json:"isl_clearance_alt_m"`
	SatelliteAltitudeKM     float64    `json:"satellite_altitude_km"`
	InclinationDeg          float64    `json:"inclination_deg"`
	UseJ2                   bool       `json:"use_j2"`
	HAPLatDeg               float64    `json:"hap_lat_deg"`
	HAPLonDeg               float64    `json:"hap_lon_deg"`
	HAPAltKM                float64    `json:"hap_alt_km"`
	StepIntervalS           float64    `json:"step_interval_s"`
	MemoryT2S               float64    `json:"memory_t2_s"`
	ProcessingDelayPerHopS  float64    `json:"processing_delay_per_hop_s"`
	RequireDarkness         bool       `json:"require_darkness"`
	TwilightDeg             float64    `json:"twilight_deg"`
	HAPOutageProbability    float64    `json:"hap_outage_probability"`
	OutageSeed              int64      `json:"outage_seed"`
	Fault                   *faultJSON `json:"fault,omitempty"`
	FidelityModel           string     `json:"fidelity_model"`
	RoutingEpsilon          float64    `json:"routing_epsilon"`
	// Protocol is emitted only when the entanglement-protocol layer is
	// enabled, so protocol-off parameter files (and their ParamsHash) are
	// byte-identical to the pre-protocol format.
	Protocol *protocolJSON `json:"protocol,omitempty"`
}

// protocolJSON is the serialized form of protocol.Config: durations in
// seconds.
type protocolJSON struct {
	MemoryT2S   float64 `json:"memory_t2_s"`
	SwapSuccess float64 `json:"swap_success"`
	PurifyPaths int     `json:"purify_paths"`
	Seed        int64   `json:"seed"`
}

// faultJSON is the serialized form of fault.Config: durations in seconds.
// It is emitted only when the config is non-zero, so fault-free parameter
// files are byte-identical to the pre-fault format.
type faultJSON struct {
	SatMTBFS           float64 `json:"sat_mtbf_s"`
	SatMTTRS           float64 `json:"sat_mttr_s"`
	HAPMTBFS           float64 `json:"hap_mtbf_s"`
	HAPMTTRS           float64 `json:"hap_mttr_s"`
	GroundMTBFS        float64 `json:"ground_mtbf_s"`
	GroundMTTRS        float64 `json:"ground_mttr_s"`
	WeatherP           float64 `json:"weather_p"`
	WeatherMeanS       float64 `json:"weather_mean_s"`
	WeatherAttenuation float64 `json:"weather_attenuation"`
	Seed               int64   `json:"seed"`
	HorizonS           float64 `json:"horizon_s"`
}

type hvJSON struct {
	WindSpeedMS float64 `json:"wind_speed_ms"`
	GroundCn2   float64 `json:"ground_cn2"`
	Scale       float64 `json:"scale"`
}

// serveConfigJSON is the serialized form of ServeConfig: the horizon in
// seconds, everything else verbatim.
type serveConfigJSON struct {
	RequestsPerStep int     `json:"requests_per_step"`
	Steps           int     `json:"steps"`
	HorizonS        float64 `json:"horizon_s"`
	Seed            int64   `json:"seed"`
}

// SaveServeConfig serializes cfg as indented JSON.
func SaveServeConfig(w io.Writer, cfg ServeConfig) error {
	j := serveConfigJSON{
		RequestsPerStep: cfg.RequestsPerStep,
		Steps:           cfg.Steps,
		HorizonS:        cfg.Horizon.Seconds(),
		Seed:            cfg.Seed,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(j)
}

// LoadServeConfig parses JSON produced by SaveServeConfig and validates the
// workload shape. A zero or missing horizon means the paper's default (one
// day), resolved at run time.
func LoadServeConfig(r io.Reader) (ServeConfig, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var j serveConfigJSON
	if err := dec.Decode(&j); err != nil {
		return ServeConfig{}, fmt.Errorf("qntn: parse serve config: %w", err)
	}
	cfg := ServeConfig{
		RequestsPerStep: j.RequestsPerStep,
		Steps:           j.Steps,
		Horizon:         time.Duration(j.HorizonS * float64(time.Second)),
		Seed:            j.Seed,
	}
	if err := cfg.validate(); err != nil {
		return ServeConfig{}, err
	}
	return cfg, nil
}

const (
	degPerRad = 180 / 3.141592653589793
)

// secsToDuration converts a seconds value from a JSON file to a Duration.
func secsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// SaveParams serializes p as indented JSON.
func SaveParams(w io.Writer, p Params) error {
	j := paramsJSON{
		WavelengthNM:            p.WavelengthM * 1e9,
		GroundApertureRadiusM:   p.GroundApertureRadiusM,
		HAPApertureRadiusM:      p.HAPApertureRadiusM,
		SpaceBeamWaistM:         p.SpaceBeamWaistM,
		HAPBeamWaistM:           p.HAPBeamWaistM,
		ReceiverEfficiency:      p.ReceiverEfficiency,
		ZenithOpticalDepth:      p.ZenithOpticalDepth,
		PointingJitterRad:       p.PointingJitterRad,
		FiberAttenuationDBPerKm: p.FiberAttenuationDBPerKm,
		TransmissivityThreshold: p.TransmissivityThreshold,
		MinElevationDeg:         p.MinElevationRad * degPerRad,
		ISLClearanceAltM:        p.ISLClearanceAltM,
		SatelliteAltitudeKM:     p.SatelliteAltitudeM / 1000,
		InclinationDeg:          p.InclinationDeg,
		UseJ2:                   p.UseJ2,
		HAPLatDeg:               p.HAPLatDeg,
		HAPLonDeg:               p.HAPLonDeg,
		HAPAltKM:                p.HAPAltM / 1000,
		StepIntervalS:           p.StepInterval.Seconds(),
		MemoryT2S:               p.MemoryT2.Seconds(),
		ProcessingDelayPerHopS:  p.ProcessingDelayPerHop.Seconds(),
		RequireDarkness:         p.RequireDarkness,
		TwilightDeg:             p.TwilightRad * degPerRad,
		HAPOutageProbability:    p.HAPOutageProbability,
		OutageSeed:              p.OutageSeed,
		FidelityModel:           p.FidelityModel.String(),
		RoutingEpsilon:          p.RoutingEpsilon,
	}
	if p.Turbulence != nil {
		j.Turbulence = &hvJSON{
			WindSpeedMS: p.Turbulence.WindSpeedMS,
			GroundCn2:   p.Turbulence.GroundCn2,
			Scale:       p.Turbulence.Scale,
		}
	}
	if p.Protocol.Enabled() {
		j.Protocol = &protocolJSON{
			MemoryT2S:   p.Protocol.MemoryT2.Seconds(),
			SwapSuccess: p.Protocol.SwapSuccess,
			PurifyPaths: p.Protocol.PurifyPaths,
			Seed:        p.Protocol.Seed,
		}
	}
	if p.Fault != (fault.Config{}) {
		j.Fault = &faultJSON{
			SatMTBFS:           p.Fault.SatMTBF.Seconds(),
			SatMTTRS:           p.Fault.SatMTTR.Seconds(),
			HAPMTBFS:           p.Fault.HAPMTBF.Seconds(),
			HAPMTTRS:           p.Fault.HAPMTTR.Seconds(),
			GroundMTBFS:        p.Fault.GroundMTBF.Seconds(),
			GroundMTTRS:        p.Fault.GroundMTTR.Seconds(),
			WeatherP:           p.Fault.WeatherP,
			WeatherMeanS:       p.Fault.WeatherMeanDuration.Seconds(),
			WeatherAttenuation: p.Fault.WeatherAttenuation,
			Seed:               p.Fault.Seed,
			HorizonS:           p.Fault.Horizon.Seconds(),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(j)
}

// LoadParams parses JSON produced by SaveParams (or hand-written with the
// same fields) and validates the result.
func LoadParams(r io.Reader) (Params, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var j paramsJSON
	if err := dec.Decode(&j); err != nil {
		return Params{}, fmt.Errorf("qntn: parse params: %w", err)
	}
	p := Params{
		WavelengthM:             j.WavelengthNM * 1e-9,
		GroundApertureRadiusM:   j.GroundApertureRadiusM,
		HAPApertureRadiusM:      j.HAPApertureRadiusM,
		SpaceBeamWaistM:         j.SpaceBeamWaistM,
		HAPBeamWaistM:           j.HAPBeamWaistM,
		ReceiverEfficiency:      j.ReceiverEfficiency,
		ZenithOpticalDepth:      j.ZenithOpticalDepth,
		PointingJitterRad:       j.PointingJitterRad,
		FiberAttenuationDBPerKm: j.FiberAttenuationDBPerKm,
		TransmissivityThreshold: j.TransmissivityThreshold,
		MinElevationRad:         j.MinElevationDeg / degPerRad,
		ISLClearanceAltM:        j.ISLClearanceAltM,
		SatelliteAltitudeM:      j.SatelliteAltitudeKM * 1000,
		InclinationDeg:          j.InclinationDeg,
		UseJ2:                   j.UseJ2,
		HAPLatDeg:               j.HAPLatDeg,
		HAPLonDeg:               j.HAPLonDeg,
		HAPAltM:                 j.HAPAltKM * 1000,
		StepInterval:            time.Duration(j.StepIntervalS * float64(time.Second)),
		MemoryT2:                time.Duration(j.MemoryT2S * float64(time.Second)),
		ProcessingDelayPerHop:   time.Duration(j.ProcessingDelayPerHopS * float64(time.Second)),
		RequireDarkness:         j.RequireDarkness,
		TwilightRad:             j.TwilightDeg / degPerRad,
		HAPOutageProbability:    j.HAPOutageProbability,
		OutageSeed:              j.OutageSeed,
		RoutingEpsilon:          j.RoutingEpsilon,
	}
	switch j.FidelityModel {
	case "", SourceAtBestSplit.String():
		p.FidelityModel = SourceAtBestSplit
	case SourceAtEndpoint.String():
		p.FidelityModel = SourceAtEndpoint
	default:
		return Params{}, fmt.Errorf("qntn: unknown fidelity model %q", j.FidelityModel)
	}
	if j.Turbulence != nil {
		p.Turbulence = &atmosphere.HufnagelValley{
			WindSpeedMS: j.Turbulence.WindSpeedMS,
			GroundCn2:   j.Turbulence.GroundCn2,
			Scale:       j.Turbulence.Scale,
		}
	}
	if j.Protocol != nil {
		p.Protocol = protocol.Config{
			MemoryT2:    secsToDuration(j.Protocol.MemoryT2S),
			SwapSuccess: j.Protocol.SwapSuccess,
			PurifyPaths: j.Protocol.PurifyPaths,
			Seed:        j.Protocol.Seed,
		}
	}
	if j.Fault != nil {
		p.Fault = fault.Config{
			SatMTBF:             secsToDuration(j.Fault.SatMTBFS),
			SatMTTR:             secsToDuration(j.Fault.SatMTTRS),
			HAPMTBF:             secsToDuration(j.Fault.HAPMTBFS),
			HAPMTTR:             secsToDuration(j.Fault.HAPMTTRS),
			GroundMTBF:          secsToDuration(j.Fault.GroundMTBFS),
			GroundMTTR:          secsToDuration(j.Fault.GroundMTTRS),
			WeatherP:            j.Fault.WeatherP,
			WeatherMeanDuration: secsToDuration(j.Fault.WeatherMeanS),
			WeatherAttenuation:  j.Fault.WeatherAttenuation,
			Seed:                j.Fault.Seed,
			Horizon:             secsToDuration(j.Fault.HorizonS),
		}
	}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}
