package qntn

import (
	"math"
	"testing"
	"time"
)

func TestCoverageSweepMatchesPerSizeCoverage(t *testing.T) {
	// The prefix-cached sweep must agree exactly with running the generic
	// Coverage per constellation size.
	p := DefaultParams()
	sizes := []int{6, 36, 108}
	const window = 90 * time.Minute
	points, err := CoverageSweep(p, sizes, window)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(sizes) {
		t.Fatalf("%d points", len(points))
	}
	for i, n := range sizes {
		sc, err := NewSpaceGround(n, p)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := sc.Coverage(window)
		if err != nil {
			t.Fatal(err)
		}
		got := points[i].Result
		if got.CoveredSteps != ref.CoveredSteps || got.Covered != ref.Covered {
			t.Fatalf("n=%d: sweep %d steps (%v) vs reference %d steps (%v)",
				n, got.CoveredSteps, got.Covered, ref.CoveredSteps, ref.Covered)
		}
		if len(got.Intervals) != len(ref.Intervals) {
			t.Fatalf("n=%d: interval count %d vs %d", n, len(got.Intervals), len(ref.Intervals))
		}
		for k := range got.Intervals {
			if got.Intervals[k] != ref.Intervals[k] {
				t.Fatalf("n=%d interval %d: %+v vs %+v", n, k, got.Intervals[k], ref.Intervals[k])
			}
		}
	}
}

func TestCoverageSweepMoreSatellitesNeverWorse(t *testing.T) {
	// Adding satellites can only add links, so coverage is monotone in the
	// catalog prefix length.
	points, err := CoverageSweep(DefaultParams(), PaperSweepSizes(), 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].Result.CoveredSteps < points[i-1].Result.CoveredSteps {
			t.Fatalf("coverage decreased from %d to %d satellites", points[i-1].Satellites, points[i].Satellites)
		}
	}
}

func TestCoverageSweepRejectsBadInput(t *testing.T) {
	if _, err := CoverageSweep(DefaultParams(), nil, time.Hour); err == nil {
		t.Fatal("empty sizes accepted")
	}
	if _, err := CoverageSweep(DefaultParams(), []int{6}, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := CoverageSweep(DefaultParams(), []int{7}, time.Hour); err == nil {
		t.Fatal("invalid size accepted")
	}
}

func TestPaperSweepSizes(t *testing.T) {
	sizes := PaperSweepSizes()
	if len(sizes) != 18 || sizes[0] != 6 || sizes[17] != 108 {
		t.Fatalf("sweep sizes %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i]-sizes[i-1] != 6 {
			t.Fatalf("sweep stride wrong at %d", i)
		}
	}
}

func TestServeSweepShape(t *testing.T) {
	cfg := ServeConfig{RequestsPerStep: 10, Steps: 6, Horizon: 24 * time.Hour, Seed: 5}
	points, err := ServeSweep(DefaultParams(), []int{6, 108}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points", len(points))
	}
	small, big := points[0].Result, points[1].Result
	if big.ServedPercent < small.ServedPercent {
		t.Fatalf("108 sats serve %.2f%% < 6 sats %.2f%%", big.ServedPercent, small.ServedPercent)
	}
	if big.ServedPercent <= 0 {
		t.Fatal("108 satellites should serve some requests")
	}
	if big.MeanFidelity <= 0 || big.MeanFidelity >= 1 {
		t.Fatalf("fidelity %g out of range", big.MeanFidelity)
	}
	if math.IsNaN(small.MeanFidelity) {
		t.Fatal("NaN fidelity for small constellation")
	}
}
