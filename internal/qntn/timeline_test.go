package qntn

import (
	"math"
	"testing"
	"time"
)

func TestRunServeDESMatchesRunServeWithIdealMemory(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickServeCfg()
	plain, err := sc.RunServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	des, err := sc.RunServeDES(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if des.ServedPercent != plain.ServedPercent {
		t.Fatalf("served %g vs %g", des.ServedPercent, plain.ServedPercent)
	}
	if math.Abs(des.MeanFidelity-plain.MeanFidelity) > 1e-12 {
		t.Fatalf("fidelity %g vs %g with ideal memories", des.MeanFidelity, plain.MeanFidelity)
	}
	if des.EventsProcessed != cfg.Steps {
		t.Fatalf("events processed %d, want %d", des.EventsProcessed, cfg.Steps)
	}
}

func TestRunServeDESLatencyPlausible(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.RunServeDES(quickServeCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Air-ground paths are ~150-170 km of optics; heralding is two
	// passes plus nothing else → roughly a millisecond.
	if res.MeanLatency < 500*time.Microsecond || res.MeanLatency > 5*time.Millisecond {
		t.Fatalf("mean HAP latency %v implausible", res.MeanLatency)
	}
	if res.MaxLatency < res.MeanLatency {
		t.Fatal("max latency below mean")
	}
	for _, o := range res.Metrics.Outcomes {
		if !o.Served {
			continue
		}
		if o.PathLengthM < 100e3 || o.PathLengthM > 400e3 {
			t.Fatalf("path length %g m implausible for air-ground", o.PathLengthM)
		}
		if o.Latency <= 0 {
			t.Fatal("served outcome without latency")
		}
	}
}

func TestRunServeDESSpaceLatencyLargerThanAir(t *testing.T) {
	p := DefaultParams()
	air, err := NewAirGround(p)
	if err != nil {
		t.Fatal(err)
	}
	space, err := NewSpaceGround(108, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickServeCfg()
	airRes, err := air.RunServeDES(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spaceRes, err := space.RunServeDES(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Satellites at 500+ km are necessarily farther than a 30 km HAP:
	// the paper's latency argument for the air-ground architecture.
	if spaceRes.MeanLatency <= airRes.MeanLatency {
		t.Fatalf("space latency %v not above air latency %v", spaceRes.MeanLatency, airRes.MeanLatency)
	}
}

func TestMemoryDecoherenceReducesFidelity(t *testing.T) {
	ideal := DefaultParams()
	lossy := DefaultParams()
	lossy.MemoryT2 = 10 * time.Millisecond // comparable to ms-scale latency
	cfg := quickServeCfg()

	scIdeal, err := NewAirGround(ideal)
	if err != nil {
		t.Fatal(err)
	}
	scLossy, err := NewAirGround(lossy)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := scIdeal.RunServeDES(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := scLossy.RunServeDES(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rl.MeanFidelity >= ri.MeanFidelity {
		t.Fatalf("decoherence did not reduce fidelity: %g vs %g", rl.MeanFidelity, ri.MeanFidelity)
	}
	if rl.ServedPercent != ri.ServedPercent {
		t.Fatal("decoherence should not change reachability")
	}
}

func TestProcessingDelayAddsLatency(t *testing.T) {
	base := DefaultParams()
	delayed := DefaultParams()
	delayed.ProcessingDelayPerHop = 5 * time.Millisecond
	cfg := quickServeCfg()

	scBase, err := NewAirGround(base)
	if err != nil {
		t.Fatal(err)
	}
	scDelayed, err := NewAirGround(delayed)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := scBase.RunServeDES(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := scDelayed.RunServeDES(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two hops → +10 ms.
	gap := rd.MeanLatency - rb.MeanLatency
	if gap < 9*time.Millisecond || gap > 11*time.Millisecond {
		t.Fatalf("processing delay contributed %v, want ≈10ms", gap)
	}
}

func TestTimeAwarePathFidelity(t *testing.T) {
	etas := []float64{0.95, 0.9}
	// No storage or ideal memory → identical to PathFidelity.
	for _, m := range []FidelityModel{SourceAtBestSplit, SourceAtEndpoint} {
		f, err := TimeAwarePathFidelity(etas, m, 0, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(f-PathFidelity(etas, m)) > 1e-12 {
			t.Fatalf("%v: zero storage changed fidelity", m)
		}
		f, err = TimeAwarePathFidelity(etas, m, time.Second, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(f-PathFidelity(etas, m)) > 1e-12 {
			t.Fatalf("%v: ideal memory changed fidelity", m)
		}
	}
	// Monotone in storage time.
	prev := 2.0
	for _, ms := range []int{0, 1, 5, 20, 100} {
		f, err := TimeAwarePathFidelity(etas, SourceAtBestSplit, time.Duration(ms)*time.Millisecond, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if f >= prev {
			t.Fatalf("fidelity not decreasing at storage %dms", ms)
		}
		prev = f
	}
	// Long storage converges to the dephased floor, still ≥ 0.5 is not
	// guaranteed but must stay in (0,1).
	f, err := TimeAwarePathFidelity(etas, SourceAtBestSplit, time.Hour, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if f <= 0 || f >= 1 {
		t.Fatalf("fully dephased fidelity %g out of range", f)
	}
	// Empty path unaffected.
	if f, _ := TimeAwarePathFidelity(nil, SourceAtBestSplit, time.Hour, time.Millisecond); f != 1 {
		t.Fatal("empty path should stay perfect")
	}
}

func TestPathLengthM(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ttu := sc.GroundIDs[NetworkTTU][0]
	ornl := sc.GroundIDs[NetworkORNL][0]
	l, err := sc.PathLengthM([]string{ttu, HAPID, ornl}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// TTU→HAP ≈ 75 km, HAP→ORNL ≈ 80 km.
	if l < 130e3 || l > 200e3 {
		t.Fatalf("path length %g m", l)
	}
	if _, err := sc.PathLengthM([]string{ttu, "nope"}, 0); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestHeraldingLatency(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// 150 km path → 2·150e3/c ≈ 1.0007 ms.
	got := sc.HeraldingLatency(150e3, 2)
	seconds := 2 * 150e3 / SpeedOfLightMPerS
	want := time.Duration(seconds * float64(time.Second))
	if got != want {
		t.Fatalf("latency %v, want %v", got, want)
	}
}
