package qntn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"qntn/internal/geo"
	"qntn/internal/netsim"
	"qntn/internal/orbit"
	"qntn/internal/routing"
)

// bruteNeighbors returns, for a built grid, the union of neighborsAfter over
// all nodes as a pair set — the index's candidate relation, before any
// scenario-level filtering.
func gridPairSet(g *pairGrid, n int) map[[2]int32]bool {
	pairs := make(map[[2]int32]bool)
	var scratch []int32
	for i := 0; i < n; i++ {
		scratch = g.neighborsAfter(int32(i), scratch[:0])
		for _, j := range scratch {
			pairs[[2]int32{int32(i), j}] = true
		}
	}
	return pairs
}

// buildGrid bins the positions and builds the CSR layout, the way
// buildCandidates does for mover nodes.
func buildGrid(g *pairGrid, pos []geo.Vec3) {
	g.beginBuild(len(pos))
	for i, p := range pos {
		g.cell[i] = g.cellIndex(p)
	}
	g.finishBuild(len(pos))
}

// assertGridSuperset checks the index's one invariant: every pair within
// rangeM appears in some 3×3×3 neighborhood scan.
func assertGridSuperset(t *testing.T, g *pairGrid, pos []geo.Vec3, rangeM float64) {
	t.Helper()
	pairs := gridPairSet(g, len(pos))
	for i := 0; i < len(pos); i++ {
		for j := i + 1; j < len(pos); j++ {
			d := pos[i].Sub(pos[j]).Norm()
			if !(d <= rangeM) {
				continue
			}
			if !pairs[[2]int32{int32(i), int32(j)}] {
				t.Fatalf("grid dropped in-range pair (%d,%d): distance %.3f m ≤ range %.3f m\n pi=%+v\n pj=%+v",
					i, j, d, rangeM, pos[i], pos[j])
			}
		}
	}
}

// TestPairGridSupersetRandom drives the grid with random point clouds at
// several universe scales and range-to-universe ratios, including positions
// far outside the configured universe and degenerate coordinates. The grid
// must never drop an in-range pair.
func TestPairGridSupersetRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		maxNorm := 1e3 * math.Pow(10, rng.Float64()*4) // 1 km .. 10 000 km
		rangeM := maxNorm * (0.01 + rng.Float64()*0.5)
		n := 10 + rng.Intn(120)
		pos := make([]geo.Vec3, n)
		for i := range pos {
			scale := maxNorm
			if rng.Intn(8) == 0 {
				scale = 3 * maxNorm // outside the configured universe
			}
			pos[i] = geo.Vec3{
				X: (rng.Float64()*2 - 1) * scale,
				Y: (rng.Float64()*2 - 1) * scale,
				Z: (rng.Float64()*2 - 1) * scale,
			}
		}
		var g pairGrid
		g.configure(rangeM, maxNorm)
		buildGrid(&g, pos)
		assertGridSuperset(t, &g, pos, rangeM)
	}
}

// TestPairGridDegenerateCoordinates: NaN and infinite positions must bin
// somewhere (clamped) without panicking, and must not disturb other pairs.
func TestPairGridDegenerateCoordinates(t *testing.T) {
	pos := []geo.Vec3{
		{X: math.NaN(), Y: math.Inf(1), Z: math.Inf(-1)},
		{X: 100, Y: 100, Z: 100},
		{X: 150, Y: 100, Z: 100},
	}
	var g pairGrid
	g.configure(200, 1000)
	buildGrid(&g, pos)
	if !gridPairSet(&g, len(pos))[[2]int32{1, 2}] {
		t.Fatal("in-range pair (1,2) lost next to degenerate node 0")
	}
}

// FuzzPairGridBoundary perturbs positions sitting exactly on cell boundaries
// by tiny offsets — the regime where float rounding could flip a cell
// assignment — and asserts the superset invariant holds regardless of which
// side of the boundary each node lands on.
func FuzzPairGridBoundary(f *testing.F) {
	f.Add(int64(1), 0.0)
	f.Add(int64(2), 1e-9)
	f.Add(int64(3), -1e-9)
	f.Add(int64(4), 0.5)
	f.Add(int64(5), -123.456)
	f.Fuzz(func(t *testing.T, seed int64, offset float64) {
		if math.IsNaN(offset) || math.IsInf(offset, 0) {
			offset = 0
		}
		const rangeM = 1000.0
		const maxNorm = 8000.0
		var g pairGrid
		g.configure(rangeM, maxNorm)
		cellM := 1 / g.invCell
		rng := rand.New(rand.NewSource(seed))
		n := 32
		pos := make([]geo.Vec3, n)
		boundary := func() float64 {
			// An exact cell boundary, shifted by the fuzzed offset and a
			// small random jitter so pairs straddle boundaries both ways.
			b := g.originM + float64(rng.Intn(int(g.dim)+1))*cellM
			return b + offset + (rng.Float64()*2-1)*rangeM/4
		}
		for i := range pos {
			pos[i] = geo.Vec3{X: boundary(), Y: boundary(), Z: boundary()}
		}
		buildGrid(&g, pos)
		assertGridSuperset(t, &g, pos, rangeM)
	})
}

// walkerTestSpec is the two-shell ISL-grid constellation the white-box index
// tests share: 96 satellites (over the index cutoff) in two shells plus the
// multi-continent ground set.
func walkerTestSpec() WalkerSpec {
	return WalkerSpec{
		Shells: []orbit.WalkerShell{
			{TotalSats: 48, Planes: 8, Phasing: 1, InclinationDeg: 53, AltitudeM: 550e3},
			{TotalSats: 48, Planes: 8, Phasing: 1, InclinationDeg: 70, AltitudeM: 600e3},
		},
		ISLGrid: true,
		Ground:  GlobalGroundNetworks(),
	}
}

// TestCandidatePairsNeverDropAcceptedPair is the end-to-end property test:
// across scenario archetypes and many topology instants, every pair the
// dense evaluator accepts must appear in the candidate list, the candidate
// list must be strictly ascending (the dense visit order), and the culled
// count must reconcile with n(n-1)/2.
func TestCandidatePairsNeverDropAcceptedPair(t *testing.T) {
	p := DefaultParams()
	scSG, err := NewSpaceGround(54, p)
	if err != nil {
		t.Fatal(err)
	}
	scW, err := NewWalker(walkerTestSpec(), p)
	if err != nil {
		t.Fatal(err)
	}
	for name, sc := range map[string]*Scenario{"space-ground-54": scSG, "walker-96": scW} {
		t.Run(name, func(t *testing.T) {
			n := sc.Net.NumNodes()
			accepted := 0
			for s := 0; s < 16; s++ {
				at := time.Duration(s) * 11 * time.Minute
				ev := sc.Net.BeginStep(at)
				pe, ok := ev.(netsim.PairEnumerator)
				if !ok {
					t.Fatal("step evaluator does not enumerate pairs")
				}
				cand, ok := pe.CandidatePairs()
				if !ok {
					t.Fatalf("spatial index inactive at %d nodes", n)
				}
				inCand := make(map[netsim.PackedPair]bool, len(cand))
				for k, c := range cand {
					if k > 0 && cand[k-1] >= c {
						t.Fatalf("candidates not strictly ascending at %d: %v then %v", k, cand[k-1], c)
					}
					inCand[c] = true
				}
				for i := 0; i < n; i++ {
					for j := i + 1; j < n; j++ {
						if _, ok := ev.EvaluatePair(i, j); ok {
							accepted++
							if !inCand[netsim.PackPair(i, j)] {
								t.Fatalf("t=%v: accepted pair (%d,%d) missing from candidates", at, i, j)
							}
						}
					}
				}
				if ps, ok := ev.(netsim.PairStatser); ok {
					_, _, culled := ps.PairStats()
					if want := int64(n)*int64(n-1)/2 - int64(len(cand)); culled != want {
						t.Fatalf("t=%v: indexCulled %d, want %d (pairs %d, candidates %d)",
							at, culled, want, n*(n-1)/2, len(cand))
					}
					if culled <= 0 {
						t.Fatalf("t=%v: index culled nothing (%d candidates of %d pairs)", at, len(cand), n*(n-1)/2)
					}
				} else {
					t.Fatal("step evaluator does not report pair stats")
				}
				ev.Close()
			}
			if accepted == 0 {
				t.Fatal("degenerate property run: no pair accepted at any instant")
			}
		})
	}
}

// TestCandidatePairsDisabled: the enumeration must report ok=false — forcing
// the dense fallback — below the node cutoff and under DisableSpatialIndex.
func TestCandidatePairsDisabled(t *testing.T) {
	check := func(t *testing.T, sc *Scenario) {
		t.Helper()
		ev := sc.Net.BeginStep(0)
		defer ev.Close()
		if cand, ok := ev.(netsim.PairEnumerator).CandidatePairs(); ok {
			t.Fatalf("spatial index unexpectedly active: %d candidates", len(cand))
		}
	}
	t.Run("below-cutoff", func(t *testing.T) {
		sc, err := NewSpaceGround(6, DefaultParams()) // 37 nodes < cutoff
		if err != nil {
			t.Fatal(err)
		}
		check(t, sc)
	})
	t.Run("disabled", func(t *testing.T) {
		p := DefaultParams()
		p.DisableSpatialIndex = true
		sc, err := NewSpaceGround(108, p)
		if err != nil {
			t.Fatal(err)
		}
		check(t, sc)
	})
}

// TestSnapshotZeroAllocsSpatialIndex: the index-backed snapshot must stay
// allocation-free in steady state, with the index demonstrably active.
func TestSnapshotZeroAllocsSpatialIndex(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector bookkeeping allocates; AllocsPerRun is meaningless")
	}
	sc, err := NewSpaceGround(108, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	g := routing.NewGraph()
	var st netsim.SnapshotStats
	for i := 0; i < 3; i++ {
		if err := sc.Net.SnapshotIntoStats(g, time.Duration(i)*time.Minute, &st); err != nil {
			t.Fatal(err)
		}
	}
	if st.IndexCulled <= 0 {
		t.Fatalf("spatial index culled nothing at 108 satellites: %+v", st)
	}
	if n := testing.AllocsPerRun(20, func() {
		if err := sc.Net.SnapshotIntoStats(g, 5*time.Minute, &st); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("index-backed snapshot allocates %v times per step", n)
	}
}

// TestWalkerGridAdjacency pins the +grid ISL topology: four neighbors per
// satellite (ring fore/aft plus the same slot in both adjacent planes),
// symmetric, sorted, and never crossing shells.
func TestWalkerGridAdjacency(t *testing.T) {
	spec := walkerTestSpec()
	sc, err := NewWalker(spec, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if sc.islAdj == nil {
		t.Fatal("ISLGrid spec produced no adjacency")
	}
	if got, want := len(sc.islAdj), 96; got != want {
		t.Fatalf("adjacency covers %d satellites, want %d", got, want)
	}
	for id, nbrs := range sc.islAdj {
		if len(nbrs) != 4 {
			t.Fatalf("%s has %d grid neighbors, want 4: %v", id, len(nbrs), nbrs)
		}
		for k, nb := range nbrs {
			if k > 0 && nbrs[k-1] >= nb {
				t.Fatalf("%s neighbors not sorted: %v", id, nbrs)
			}
			found := false
			for _, back := range sc.islAdj[nb] {
				if back == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %s lists %s but not vice versa", id, nb)
			}
		}
	}
	// Shell 0 is SAT-0001..SAT-0048, shell 1 the rest: no edge may cross.
	shell := func(id string) int {
		var k int
		if _, err := fmt.Sscanf(id, "SAT-%04d", &k); err != nil {
			t.Fatalf("bad satellite ID %q: %v", id, err)
		}
		if k <= 48 {
			return 0
		}
		return 1
	}
	for id, nbrs := range sc.islAdj {
		for _, nb := range nbrs {
			if shell(id) != shell(nb) {
				t.Fatalf("grid edge crosses shells: %s ~ %s", id, nb)
			}
		}
	}
}
