package qntn

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"qntn/internal/astro"
	"qntn/internal/channel"
	"qntn/internal/fault"
	"qntn/internal/geo"
	"qntn/internal/netsim"
	"qntn/internal/orbit"
	"qntn/internal/routing"
)

// Architecture selects between the paper's two interconnection approaches.
type Architecture int

const (
	// SpaceGround uses a LEO constellation (paper §II-B).
	SpaceGround Architecture = iota
	// AirGround uses a single hovering HAP (paper §II-C).
	AirGround
	// Hybrid combines both relay layers — the paper's future-work
	// direction, implemented here as an extension.
	Hybrid
)

// String implements fmt.Stringer.
func (a Architecture) String() string {
	switch a {
	case SpaceGround:
		return "space-ground"
	case AirGround:
		return "air-ground"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Architecture(%d)", int(a))
	}
}

// HAPID is the identifier of the air-ground relay node.
const HAPID = "HAP-1"

// Scenario is a fully assembled QNTN instance: a set of local networks
// (the paper's three Table I LANs by default) plus the relay layer of the
// chosen architecture, with the link physics bound to the calibrated
// parameters.
type Scenario struct {
	Arch   Architecture
	Params Params
	Net    *netsim.Network

	// LANs are the local networks.
	LANs []LocalNetwork
	// GroundIDs maps network name to its host IDs in Table I order.
	GroundIDs map[string][]string
	// RelayIDs lists satellite and/or HAP node IDs.
	RelayIDs []string

	fiber        channel.Fiber
	spaceFSO     channel.FSOConfig
	hapFSO       channel.FSOConfig
	satHAPFSO    channel.FSOConfig
	policy       channel.LinkPolicy
	groundByID   map[string]*netsim.GroundHost
	relays       []netsim.Node
	satAltM      float64
	islClearance float64
	sun          astro.Sun

	// islAdj, when non-nil, restricts inter-satellite links to an explicit
	// grid topology: each satellite ID maps to its sorted allowed-partner
	// IDs (symmetric). nil means any satellite pair may link — the paper's
	// default. See WalkerSpec.ISLGrid.
	islAdj map[string][]string

	// Squared-slant-range prefilter gates derived from the transmissivity
	// threshold (see channel.FSOConfig.MaxUsableRangeM2): beyond the gate
	// a link provably fails the threshold, so the fast path skips the full
	// FSO evaluation.
	spaceMaxRangeM2  float64
	hapMaxRangeM2    float64
	satHAPMaxRangeM2 float64

	// stepPool recycles stepEval instances across topology steps (and
	// across concurrent sweep workers — each worker holds its own).
	stepPool sync.Pool

	// engPool recycles event engines across event-driven runs; the window
	// scan's position-memo slabs dominate a fresh engine's allocations.
	engPool sync.Pool

	// tel is the scenario-level instrumentation, nil (free) by default.
	// See Instrument.
	tel *scenarioTelemetry
}

// NewSpaceGround assembles the space-ground architecture with the first
// nSats satellites of the paper's Table II slot pattern at the altitude and
// inclination configured in p (the paper's 500 km / 53° by default).
func NewSpaceGround(nSats int, p Params) (*Scenario, error) {
	elems, err := orbit.PaperConstellationWith(nSats, p.SatelliteAltitudeM, p.InclinationDeg)
	if err != nil {
		return nil, err
	}
	if propagationHook != nil {
		propagationHook(len(elems))
	}
	sats := make([]netsim.Node, len(elems))
	for i, e := range elems {
		e.ApplyJ2 = p.UseJ2
		sats[i] = netsim.NewSatelliteNode(fmt.Sprintf("SAT-%03d", i+1), e)
	}
	return assemble(SpaceGround, p, sats)
}

// NewSpaceGroundFromSheets assembles the space-ground architecture from
// recorded movement sheets (the paper's STK import path).
func NewSpaceGroundFromSheets(sheets []*orbit.MovementSheet, p Params) (*Scenario, error) {
	if len(sheets) == 0 {
		return nil, fmt.Errorf("qntn: no movement sheets")
	}
	sats := make([]netsim.Node, len(sheets))
	for i, sh := range sheets {
		sats[i] = netsim.NewSatelliteFromSheet(sh.Name, sh)
	}
	return assemble(SpaceGround, p, sats)
}

// NewAirGround assembles the air-ground architecture with the single HAP of
// the paper's §II-C.
func NewAirGround(p Params) (*Scenario, error) {
	hap := netsim.NewHAPNode(HAPID, geo.LLA{LatDeg: p.HAPLatDeg, LonDeg: p.HAPLonDeg, AltM: p.HAPAltM})
	return assemble(AirGround, p, []netsim.Node{hap})
}

// NewHybrid assembles a scenario containing both the HAP and the first
// nSats Table II satellites — the paper's future-work hybrid architecture.
func NewHybrid(nSats int, p Params) (*Scenario, error) {
	elems, err := orbit.PaperConstellationWith(nSats, p.SatelliteAltitudeM, p.InclinationDeg)
	if err != nil {
		return nil, err
	}
	relays := make([]netsim.Node, 0, len(elems)+1)
	relays = append(relays, netsim.NewHAPNode(HAPID, geo.LLA{LatDeg: p.HAPLatDeg, LonDeg: p.HAPLonDeg, AltM: p.HAPAltM}))
	for i, e := range elems {
		e.ApplyJ2 = p.UseJ2
		relays = append(relays, netsim.NewSatelliteNode(fmt.Sprintf("SAT-%03d", i+1), e))
	}
	return assemble(Hybrid, p, relays)
}

// WalkerSpec configures a multi-shell Walker-Delta scenario — the
// global-scale constellations of the related work (Mantri et al.'s
// backbone, the transatlantic relay study), far beyond the paper's Table II
// catalog.
type WalkerSpec struct {
	// Shells lists the Walker shells, concatenated in order.
	Shells []orbit.WalkerShell
	// ISLGrid, when true, restricts inter-satellite links to the +grid
	// topology: each satellite may link only to its two intra-plane ring
	// neighbors and the same slot of the two adjacent planes of its own
	// shell. When false any satellite pair in range may link (the paper's
	// default).
	ISLGrid bool
	// Ground selects the local networks; nil means the paper's Table I
	// Tennessee networks (see also GlobalGroundNetworks).
	Ground []LocalNetwork
}

// NewWalker assembles a space-ground scenario over a multi-shell Walker
// constellation. Satellite IDs are "SAT-0001"... in shell-concatenated
// plane-major order.
func NewWalker(spec WalkerSpec, p Params) (*Scenario, error) {
	elems, err := orbit.WalkerShells(spec.Shells)
	if err != nil {
		return nil, err
	}
	if propagationHook != nil {
		propagationHook(len(elems))
	}
	sats := make([]netsim.Node, len(elems))
	ids := make([]string, len(elems))
	for i, e := range elems {
		e.ApplyJ2 = p.UseJ2
		ids[i] = fmt.Sprintf("SAT-%04d", i+1)
		sats[i] = netsim.NewSatelliteNode(ids[i], e)
	}
	lans := spec.Ground
	if lans == nil {
		lans = GroundNetworks()
	}
	sc, err := assembleWith(SpaceGround, p, lans, sats)
	if err != nil {
		return nil, err
	}
	if spec.ISLGrid {
		sc.islAdj = walkerGridAdjacency(spec.Shells, ids)
	}
	sc.warm()
	return sc, nil
}

// walkerGridAdjacency builds the symmetric +grid ISL allowlist over the
// concatenated shells: intra-plane ring neighbors plus the same slot of the
// two adjacent planes, no cross-shell links. Neighbor lists are sorted by
// node index (= lexicographic for the fixed-width IDs).
func walkerGridAdjacency(shells []orbit.WalkerShell, ids []string) map[string][]string {
	adj := make(map[string][]string, len(ids))
	base := 0
	for _, sh := range shells {
		perPlane := sh.TotalSats / sh.Planes
		for p := 0; p < sh.Planes; p++ {
			for s := 0; s < perPlane; s++ {
				i := base + p*perPlane + s
				var nbrs []int
				add := func(j int) {
					if j == i {
						return
					}
					for _, k := range nbrs {
						if k == j {
							return
						}
					}
					nbrs = append(nbrs, j)
				}
				add(base + p*perPlane + (s+1)%perPlane)
				add(base + p*perPlane + (s-1+perPlane)%perPlane)
				add(base + ((p+1)%sh.Planes)*perPlane + s)
				add(base + ((p-1+sh.Planes)%sh.Planes)*perPlane + s)
				sort.Ints(nbrs)
				out := make([]string, len(nbrs))
				for k, j := range nbrs {
					out[k] = ids[j]
				}
				adj[ids[i]] = out
			}
		}
		base += sh.TotalSats
	}
	return adj
}

// islAllowedID reports whether the grid topology permits an ISL between the
// two satellite IDs. Lists are symmetric, so one side suffices.
func (sc *Scenario) islAllowedID(aID, bID string) bool {
	for _, id := range sc.islAdj[aID] {
		if id == bID {
			return true
		}
	}
	return false
}

// NewCustomScenario assembles a scenario over an arbitrary set of local
// networks and relay nodes — the extension point for studies beyond the
// paper's three-LAN region (see ExtendedNetworks and the statewide
// experiment). LAN names must be unique and non-empty.
func NewCustomScenario(arch Architecture, p Params, lans []LocalNetwork, relays []netsim.Node) (*Scenario, error) {
	if len(lans) < 2 {
		return nil, fmt.Errorf("qntn: need at least two local networks, got %d", len(lans))
	}
	seen := make(map[string]bool, len(lans))
	for _, lan := range lans {
		if lan.Name == "" || seen[lan.Name] {
			return nil, fmt.Errorf("qntn: duplicate or empty LAN name %q", lan.Name)
		}
		if len(lan.Nodes) == 0 {
			return nil, fmt.Errorf("qntn: LAN %q has no nodes", lan.Name)
		}
		seen[lan.Name] = true
	}
	sc, err := assembleWith(arch, p, lans, relays)
	if err != nil {
		return nil, err
	}
	sc.warm()
	return sc, nil
}

func assemble(arch Architecture, p Params, relays []netsim.Node) (*Scenario, error) {
	sc, err := assembleWith(arch, p, GroundNetworks(), relays)
	if err != nil {
		return nil, err
	}
	sc.warm()
	return sc, nil
}

// warm initializes the pooled step evaluator — per-node caches, spatial-grid
// geometry, one priming candidate build — as part of scenario construction,
// so the first snapshot runs at allocation-free steady state. Every public
// constructor calls it as its last step, after any post-assembly topology
// (the Walker ISL allowlist) is in place, since the evaluator's static
// caches are keyed on the node set alone.
func (sc *Scenario) warm() {
	sc.Net.BeginStep(0).Close()
}

func assembleWith(arch Architecture, p Params, lans []LocalNetwork, relays []netsim.Node) (*Scenario, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return assembleTrusted(arch, p, lans, relays)
}

// assembleTrusted assembles a scenario from already-validated parameters —
// the path EphemerisCache.Scenario takes so a sweep validates once instead
// of once per size.
func assembleTrusted(arch Architecture, p Params, lans []LocalNetwork, relays []netsim.Node) (*Scenario, error) {
	sc := &Scenario{
		Arch:         arch,
		Params:       p,
		LANs:         lans,
		GroundIDs:    make(map[string][]string),
		fiber:        p.Fiber(),
		spaceFSO:     p.SpaceDownlinkFSO(),
		hapFSO:       p.HAPDownlinkFSO(),
		policy:       p.LinkPolicy(),
		groundByID:   make(map[string]*netsim.GroundHost),
		satAltM:      p.SatelliteAltitudeM,
		islClearance: p.ISLClearanceAltM,
	}
	sc.satHAPFSO = sc.spaceFSO
	sc.satHAPFSO.RxApertureRadiusM = p.HAPApertureRadiusM
	sc.spaceMaxRangeM2 = sc.spaceFSO.MaxUsableRangeM2(p.TransmissivityThreshold)
	sc.hapMaxRangeM2 = sc.hapFSO.MaxUsableRangeM2(p.TransmissivityThreshold)
	sc.satHAPMaxRangeM2 = sc.satHAPFSO.MaxUsableRangeM2(p.TransmissivityThreshold)
	sc.Net = netsim.NewNetwork(scenarioModel{sc})

	for _, lan := range sc.LANs {
		for i, pos := range lan.Nodes {
			id := NodeID(lan.Name, i)
			host := netsim.NewGroundHost(id, lan.Name, pos)
			if err := sc.Net.Add(host); err != nil {
				return nil, err
			}
			sc.GroundIDs[lan.Name] = append(sc.GroundIDs[lan.Name], id)
			sc.groundByID[id] = host
		}
	}
	for _, r := range relays {
		if err := sc.Net.Add(r); err != nil {
			return nil, err
		}
		sc.RelayIDs = append(sc.RelayIDs, r.ID())
		sc.relays = append(sc.relays, r)
	}
	// The fault decorator needs the final node set to precompute per-node
	// schedules, so it wraps the model after assembly. A disabled config
	// installs nothing, keeping fault-free runs byte-identical to the
	// baseline.
	if p.Fault.Enabled() {
		sched, err := fault.NewSchedule(p.Fault, sc.Net.Nodes())
		if err != nil {
			return nil, err
		}
		sc.Net.SetModel(fault.NewModel(scenarioModel{sc}, sched, p.TransmissivityThreshold))
	}
	if p.Telemetry != nil {
		sc.Instrument(p.Telemetry)
	}
	return sc, nil
}

// EvaluateLink exposes the scenario's link model for a node pair at time
// t — through the network's installed model, so fault decoration applies
// here exactly as it does to snapshots. Unknown IDs yield no link.
func (sc *Scenario) EvaluateLink(aID, bID string, t time.Duration) (float64, bool) {
	a, b := sc.Net.Node(aID), sc.Net.Node(bID)
	if a == nil || b == nil || aID == bID {
		return 0, false
	}
	return sc.Net.Model().Evaluate(a, b, t)
}

// evaluateLink implements the link physics + gating for every node-pair
// combination. It is the netsim.LinkModel of the scenario.
func (sc *Scenario) evaluateLink(a, b netsim.Node, t time.Duration) (float64, bool) {
	// Order so that a.Kind() <= b.Kind() (Ground < Satellite < HAP).
	if a.Kind() > b.Kind() {
		a, b = b, a
	}
	switch {
	case a.Kind() == netsim.Ground && b.Kind() == netsim.Ground:
		return sc.fiberLink(a, b)
	case a.Kind() == netsim.Ground && b.Kind() == netsim.Satellite:
		return sc.groundSpaceLink(a, b, t, sc.spaceFSO)
	case a.Kind() == netsim.Ground && b.Kind() == netsim.HAP:
		return sc.groundSpaceLink(a, b, t, sc.hapFSO)
	case a.Kind() == netsim.Satellite && b.Kind() == netsim.Satellite:
		return sc.interSatelliteLink(a, b, t)
	case a.Kind() == netsim.Satellite && b.Kind() == netsim.HAP:
		return sc.satelliteHAPLink(a, b, t)
	default:
		return 0, false
	}
}

// fiberLink connects ground hosts of the same local network over fiber.
// Hosts in different networks have no direct channel (the paper's LANs are
// fiber-internal; interconnection is the relays' job).
func (sc *Scenario) fiberLink(a, b netsim.Node) (float64, bool) {
	if a.Network() != b.Network() || a.Network() == "" {
		return 0, false
	}
	d := a.PositionAt(0).Distance(b.PositionAt(0))
	eta := sc.fiber.Transmissivity(d)
	if eta < sc.Params.TransmissivityThreshold {
		return 0, false
	}
	return eta, true
}

// groundSpaceLink gates a ground↔relay FSO link on the elevation mask, the
// darkness constraint (when enabled), and the transmissivity threshold.
// The transmissivity is the downlink value (relay transmits, ground
// receives): in the platform-source distribution model entangled photons
// always travel downward.
func (sc *Scenario) groundSpaceLink(ground, relay netsim.Node, t time.Duration, cfg channel.FSOConfig) (float64, bool) {
	gh, ok := ground.(*netsim.GroundHost)
	if !ok {
		return 0, false
	}
	if sc.Params.RequireDarkness && !sc.sun.IsDark(gh.LLA(), t, sc.Params.twilight()) {
		return 0, false
	}
	if relay.Kind() == netsim.HAP && !sc.hapAvailable(relay, t) {
		return 0, false
	}
	relayPos := relay.PositionAt(t)
	look := geo.Look(gh.LLA(), relayPos)
	if look.ElevationRad < sc.Params.MinElevationRad {
		return 0, false
	}
	relayAlt := geo.ToLLA(relayPos).AltM
	eta := cfg.Transmissivity(channel.FSOGeometry{
		RangeM:       look.SlantRangeM,
		ElevationRad: look.ElevationRad,
		LoAltM:       gh.LLA().AltM,
		HiAltM:       relayAlt,
	})
	if eta < sc.Params.TransmissivityThreshold {
		return 0, false
	}
	return eta, true
}

// interSatelliteLink gates an ISL on geometric line of sight (clearing the
// atmosphere) and the transmissivity threshold; no elevation mask applies
// between spaceborne terminals.
func (sc *Scenario) interSatelliteLink(a, b netsim.Node, t time.Duration) (float64, bool) {
	if sc.islAdj != nil && !sc.islAllowedID(a.ID(), b.ID()) {
		return 0, false
	}
	pa, pb := a.PositionAt(t), b.PositionAt(t)
	if !geo.LineOfSight(pa, pb, sc.islClearance) {
		return 0, false
	}
	// One geodetic conversion per endpoint; the grazing elevation is
	// ElevationBetween inlined on the hoisted conversions (seen from the
	// lower endpoint).
	la, lb := geo.ToLLA(pa), geo.ToLLA(pb)
	loLLA, hiPos := la, pb
	if pa.Norm() > pb.Norm() {
		loLLA, hiPos = lb, pa
	}
	eta := sc.spaceFSO.Transmissivity(channel.FSOGeometry{
		RangeM:       pa.Distance(pb),
		ElevationRad: geo.NewFrame(loLLA).Look(hiPos).ElevationRad,
		LoAltM:       la.AltM,
		HiAltM:       lb.AltM,
	})
	if eta < sc.Params.TransmissivityThreshold {
		return 0, false
	}
	return eta, true
}

// satelliteHAPLink supports the hybrid architecture: satellite transmits
// with the space terminal, the HAP receives through its small aperture.
func (sc *Scenario) satelliteHAPLink(sat, hap netsim.Node, t time.Duration) (float64, bool) {
	ps, ph := sat.PositionAt(t), hap.PositionAt(t)
	// One geodetic conversion per endpoint, and the elevation mask — the
	// most selective gate — ahead of line of sight and the FSO evaluation.
	sLLA, hLLA := geo.ToLLA(ps), geo.ToLLA(ph)
	loLLA, hiPos := sLLA, ph
	if ps.Norm() > ph.Norm() {
		loLLA, hiPos = hLLA, ps
	}
	elev := geo.NewFrame(loLLA).Look(hiPos).ElevationRad
	if elev < sc.Params.MinElevationRad {
		return 0, false
	}
	if !geo.LineOfSight(ps, ph, sc.islClearance) {
		return 0, false
	}
	eta := sc.satHAPFSO.Transmissivity(channel.FSOGeometry{
		RangeM:       ps.Distance(ph),
		ElevationRad: elev,
		LoAltM:       hLLA.AltM,
		HiAltM:       sLLA.AltM,
	})
	if eta < sc.Params.TransmissivityThreshold {
		return 0, false
	}
	return eta, true
}

// Graph returns the usable-link transmissivity graph at virtual time t.
func (sc *Scenario) Graph(t time.Duration) (*routing.Graph, error) {
	return sc.Net.Snapshot(t)
}

// GraphInto stores the usable-link graph at time t into g, reusing its
// storage across calls (see netsim.Network.SnapshotInto). The steady state
// of a caller stepping one graph through time allocates nothing.
func (sc *Scenario) GraphInto(g *routing.Graph, t time.Duration) error {
	return sc.Net.SnapshotInto(g, t)
}

// Routes computes the converged Algorithm 1 routing tables for the topology
// at time t.
func (sc *Scenario) Routes(t time.Duration) (*routing.Tables, *routing.Graph, error) {
	g, err := sc.Graph(t)
	if err != nil {
		return nil, nil, err
	}
	return routing.BellmanFord(g, sc.Params.RoutingEpsilon), g, nil
}

// NetworkOf returns the LAN name of a ground host ID ("" for relays and
// unknown IDs).
func (sc *Scenario) NetworkOf(id string) string {
	if h, ok := sc.groundByID[id]; ok {
		return h.Network()
	}
	return ""
}
