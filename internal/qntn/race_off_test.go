//go:build !race

package qntn

const raceEnabled = false
