package qntn

import (
	"math"
	"reflect"
	"testing"
	"time"

	"qntn/internal/runner"
)

// installPropagationHook counts catalog propagations for the duration of a
// test. Tests using it must not run in parallel with each other.
func installPropagationHook(t *testing.T) *[]int {
	t.Helper()
	var calls []int
	propagationHook = func(n int) { calls = append(calls, n) }
	t.Cleanup(func() { propagationHook = nil })
	return &calls
}

func fastSweepParams() Params {
	p := DefaultParams()
	p.Turbulence = nil // keep the physics cheap; determinism is what's under test
	p.StepInterval = 5 * time.Minute
	return p
}

// TestServeSweepMatchesSequentialRuns is the tentpole equivalence claim for
// the serve sweep: the cached, parallel fan-out must reproduce — field for
// field — what a fresh scenario per size produces sequentially.
func TestServeSweepMatchesSequentialRuns(t *testing.T) {
	p := fastSweepParams()
	cfg := ServeConfig{RequestsPerStep: 8, Steps: 6, Horizon: 2 * time.Hour, Seed: 11}
	sizes := []int{6, 18, 36}

	got, err := ServeSweepParallel(p, sizes, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range sizes {
		sc, err := NewSpaceGround(n, p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sc.RunServe(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i].Result, *want) {
			t.Errorf("size %d: parallel sweep diverged from sequential RunServe\n got %+v\nwant %+v", n, got[i].Result, *want)
		}
	}
}

// TestServeSweepWorkerCountInvariance: byte-identical results at 1, 2, and
// 8 workers — the determinism contract of the runner fan-out.
func TestServeSweepWorkerCountInvariance(t *testing.T) {
	p := fastSweepParams()
	cfg := ServeConfig{RequestsPerStep: 8, Steps: 6, Horizon: 2 * time.Hour, Seed: 3}
	sizes := []int{6, 12, 24, 48}

	base, err := ServeSweepParallel(p, sizes, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := ServeSweepParallel(p, sizes, cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("serve sweep at %d workers diverged from 1 worker", workers)
		}
	}
}

// TestCoverageSweepWorkerCountInvariance: the chunked time axis must merge
// to identical CoverageResults (including interval lists) at any
// parallelism.
func TestCoverageSweepWorkerCountInvariance(t *testing.T) {
	p := fastSweepParams()
	sizes := []int{6, 30, 60}
	duration := 6 * time.Hour

	base, err := CoverageSweepParallel(p, sizes, duration, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := CoverageSweepParallel(p, sizes, duration, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("coverage sweep at %d workers diverged from 1 worker", workers)
		}
	}
}

// TestServeSweepPropagatesOnce is the regression test for the re-propagation
// bug: an n-size sweep must propagate the catalog exactly once, at the
// largest requested size, instead of once per size.
func TestServeSweepPropagatesOnce(t *testing.T) {
	calls := installPropagationHook(t)
	p := fastSweepParams()
	cfg := ServeConfig{RequestsPerStep: 4, Steps: 3, Horizon: time.Hour, Seed: 1}

	if _, err := ServeSweepParallel(p, []int{6, 12, 24}, cfg, 2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*calls, []int{24}) {
		t.Fatalf("propagation passes = %v, want exactly one at the max size [24]", *calls)
	}
}

// TestCoverageSweepPropagatesOnce: same invariant for the coverage sweep.
func TestCoverageSweepPropagatesOnce(t *testing.T) {
	calls := installPropagationHook(t)
	p := fastSweepParams()

	if _, err := CoverageSweepParallel(p, []int{6, 12, 18}, 2*time.Hour, 2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*calls, []int{18}) {
		t.Fatalf("propagation passes = %v, want exactly one at the max size [18]", *calls)
	}
}

// TestCachedSatellitePositions: at cached sample times the cache must return
// the propagator's own output bit for bit, and at any other time it must
// fall back to direct propagation.
func TestCachedSatellitePositions(t *testing.T) {
	p := DefaultParams()
	times := []time.Duration{0, 10 * time.Minute, 10 * time.Minute, time.Hour}
	cache, err := NewEphemerisCache(12, p, times)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewSpaceGround(12, p)
	if err != nil {
		t.Fatal(err)
	}
	probe := append(times, 17*time.Minute, 3*time.Hour) // last two miss the cache
	for i, node := range cache.sats {
		ref := sc.relays[i]
		if node.ID() != ref.ID() {
			t.Fatalf("satellite %d: cached ID %q, direct ID %q", i, node.ID(), ref.ID())
		}
		for _, at := range probe {
			got, want := node.PositionAt(at), ref.PositionAt(at)
			if got != want {
				t.Fatalf("satellite %s at %v: cached %v, direct %v", node.ID(), at, got, want)
			}
		}
	}
}

// TestEphemerisCacheScenarioBounds rejects sizes outside the cached
// catalog.
func TestEphemerisCacheScenarioBounds(t *testing.T) {
	cache, err := NewEphemerisCache(12, DefaultParams(), []time.Duration{0})
	if err != nil {
		t.Fatal(err)
	}
	if got := cache.MaxSatellites(); got != 12 {
		t.Fatalf("MaxSatellites = %d, want 12", got)
	}
	for _, n := range []int{0, -1, 13} {
		if _, err := cache.Scenario(n); err == nil {
			t.Errorf("Scenario(%d) accepted out-of-range size", n)
		}
	}
	if _, err := cache.Scenario(12); err != nil {
		t.Errorf("Scenario(12) rejected in-range size: %v", err)
	}
}

// TestServeSweepReplicated checks the replica seed contract: replica 0
// reproduces the plain sweep, extra replicas broaden the distribution
// deterministically, and the whole thing is worker-count invariant.
func TestServeSweepReplicated(t *testing.T) {
	p := fastSweepParams()
	cfg := ServeConfig{RequestsPerStep: 6, Steps: 4, Horizon: time.Hour, Seed: 5}
	sizes := []int{12, 36}

	single, err := ServeSweepReplicated(p, sizes, cfg, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ServeSweepParallel(p, sizes, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sizes {
		if single[i].Replicas != 1 {
			t.Fatalf("size %d: Replicas = %d, want 1", sizes[i], single[i].Replicas)
		}
		if got, want := single[i].ServedPercent.Mean, plain[i].Result.ServedPercent; got != want {
			t.Errorf("size %d: single-replica served %%%v, plain sweep %v — replica 0 must keep cfg.Seed", sizes[i], got, want)
		}
		if got, want := single[i].MeanFidelity.Mean, plain[i].Result.MeanFidelity; got != want {
			t.Errorf("size %d: single-replica fidelity %v, plain sweep %v", sizes[i], got, want)
		}
	}

	multiA, err := ServeSweepReplicated(p, sizes, cfg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	multiB, err := ServeSweepReplicated(p, sizes, cfg, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(multiA, multiB) {
		t.Error("replicated sweep diverged between 1 and 8 workers")
	}
	for i := range sizes {
		if multiA[i].ServedPercent.N != 4 {
			t.Fatalf("size %d: summary over %d samples, want 4", sizes[i], multiA[i].ServedPercent.N)
		}
		if math.IsNaN(multiA[i].ServedPercent.Std) {
			t.Fatalf("size %d: NaN spread", sizes[i])
		}
	}

	if _, err := ServeSweepReplicated(p, sizes, cfg, 0, 1); err == nil {
		t.Error("zero replicas accepted")
	}
}

// TestReplicaSeedsAreDerived pins how ServeSweepReplicated seeds each
// replica so the derivation cannot drift without a test noticing.
func TestReplicaSeedsAreDerived(t *testing.T) {
	base := int64(5)
	want := []int64{base, runner.TaskSeed(base, 1), runner.TaskSeed(base, 2)}
	for r := 1; r < len(want); r++ {
		if want[r] == base || want[r] == want[r-1] {
			t.Fatalf("derived replica seeds collide: %v", want)
		}
	}
}
