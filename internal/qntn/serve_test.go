package qntn

import (
	"math"
	"testing"
	"time"

	"qntn/internal/netsim"
)

func quickServeCfg() ServeConfig {
	return ServeConfig{RequestsPerStep: 20, Steps: 10, Horizon: 24 * time.Hour, Seed: 7}
}

func TestAirGroundServesEverything(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.RunServe(quickServeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedPercent != 100 {
		t.Fatalf("air-ground served %.2f%%, want 100%%", res.ServedPercent)
	}
	// Paper: average fidelity 0.98.
	if res.MeanFidelity < 0.96 || res.MeanFidelity > 0.995 {
		t.Fatalf("air-ground fidelity %.4f outside the paper's regime (≈0.98)", res.MeanFidelity)
	}
	if len(res.Metrics.Outcomes) != 200 {
		t.Fatalf("outcome count %d", len(res.Metrics.Outcomes))
	}
	for _, o := range res.Metrics.Outcomes {
		if !o.Served {
			t.Fatalf("unserved request %+v in air-ground", o.Request)
		}
		if len(o.Path) < 3 {
			t.Fatalf("inter-LAN path too short: %v", o.Path)
		}
		if o.EndToEndEta <= 0 || o.EndToEndEta > 1 {
			t.Fatalf("path eta %g", o.EndToEndEta)
		}
	}
}

func TestAirGroundPathsUseHAP(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.RunServe(quickServeCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Metrics.Outcomes {
		usesHAP := false
		for _, hop := range o.Path {
			if hop == HAPID {
				usesHAP = true
			}
		}
		if !usesHAP {
			t.Fatalf("inter-LAN path avoids the HAP: %v", o.Path)
		}
	}
}

func TestSpaceGroundServePartial(t *testing.T) {
	sc, err := NewSpaceGround(108, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.RunServe(quickServeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedPercent <= 0 || res.ServedPercent >= 100 {
		t.Fatalf("space-ground served %.2f%% should be partial", res.ServedPercent)
	}
	if res.MeanFidelity < 0.85 || res.MeanFidelity >= 1 {
		t.Fatalf("space-ground fidelity %.4f implausible", res.MeanFidelity)
	}
	// Served paths traverse at least one satellite.
	for _, o := range res.Metrics.Outcomes {
		if !o.Served {
			continue
		}
		viaSat := false
		for _, hop := range o.Path {
			if len(hop) >= 3 && hop[:3] == "SAT" {
				viaSat = true
			}
		}
		if !viaSat {
			t.Fatalf("served inter-LAN path avoids satellites: %v", o.Path)
		}
	}
}

func TestServeDeterministic(t *testing.T) {
	sc, err := NewSpaceGround(54, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sc.RunServe(quickServeCfg())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sc.RunServe(quickServeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r1.ServedPercent != r2.ServedPercent || math.Abs(r1.MeanFidelity-r2.MeanFidelity) > 1e-15 {
		t.Fatal("serve experiment is not deterministic for a fixed seed")
	}
	cfg := quickServeCfg()
	cfg.Seed = 99
	r3, err := sc.RunServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Different seed should (almost surely) give a different workload; the
	// outcomes object must differ in its request sequence.
	same := true
	for i := range r1.Metrics.Outcomes {
		if r1.Metrics.Outcomes[i].Request != r3.Metrics.Outcomes[i].Request {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestServeRejectsBadConfig(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.RunServe(ServeConfig{RequestsPerStep: 0, Steps: 10}); err == nil {
		t.Fatal("zero requests accepted")
	}
	if _, err := sc.RunServe(ServeConfig{RequestsPerStep: 10, Steps: 0}); err == nil {
		t.Fatal("zero steps accepted")
	}
}

// TestRunServeEvaluatesSampleTimes is the regression test for the
// duplicated stepGap fallback: RunServe must evaluate exactly the instants
// cfg.sampleTimes reports — the list sweeps use to pre-propagate
// ephemerides — including the degenerate tiny-horizon case where the
// integer division Horizon/Steps collapses to zero and the StepInterval
// fallback kicks in.
func TestRunServeEvaluatesSampleTimes(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  ServeConfig
	}{
		{"paper-shaped", ServeConfig{RequestsPerStep: 3, Steps: 7, Horizon: 5 * time.Hour, Seed: 1}},
		{"default horizon", ServeConfig{RequestsPerStep: 2, Steps: 4, Seed: 1}},
		{"tiny horizon", ServeConfig{RequestsPerStep: 2, Steps: 5, Horizon: 3 * time.Nanosecond, Seed: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := tc.cfg.sampleTimes(sc.Params)
			if len(want) != tc.cfg.Steps {
				t.Fatalf("sampleTimes produced %d instants, want %d", len(want), tc.cfg.Steps)
			}
			res, err := sc.RunServe(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(res.Metrics.Outcomes); got != tc.cfg.Steps*tc.cfg.RequestsPerStep {
				t.Fatalf("%d outcomes, want %d", got, tc.cfg.Steps*tc.cfg.RequestsPerStep)
			}
			for k, o := range res.Metrics.Outcomes {
				if at := want[k/tc.cfg.RequestsPerStep]; o.At != at {
					t.Fatalf("outcome %d evaluated at %v, sampleTimes says %v", k, o.At, at)
				}
			}
		})
	}
	// The tiny-horizon fallback must actually spread the steps out.
	tiny := ServeConfig{RequestsPerStep: 1, Steps: 5, Horizon: 3 * time.Nanosecond}.sampleTimes(sc.Params)
	if tiny[1] != sc.Params.StepInterval {
		t.Errorf("degenerate stepGap fallback gave %v, want StepInterval %v", tiny[1], sc.Params.StepInterval)
	}
}

func TestDefaultServeConfigMatchesPaper(t *testing.T) {
	cfg := DefaultServeConfig()
	if cfg.RequestsPerStep != 100 || cfg.Steps != 100 {
		t.Fatalf("default serve config %+v, paper uses 100 requests × 100 steps", cfg)
	}
}

func TestServeFidelitySummaryConsistent(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.RunServe(quickServeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.FidelitySummary.N != 200 {
		t.Fatalf("summary N %d", res.FidelitySummary.N)
	}
	if math.Abs(res.FidelitySummary.Mean-res.MeanFidelity) > 1e-12 {
		t.Fatal("summary mean disagrees with MeanFidelity")
	}
	if res.FidelitySummary.Min > res.FidelitySummary.Max {
		t.Fatal("summary min > max")
	}
}

func TestWorkload(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	wl := mustWorkload(t, sc, 3)
	batch := wl.Batch(500)
	if len(batch) != 500 {
		t.Fatalf("batch size %d", len(batch))
	}
	seenPairs := map[[2]string]bool{}
	for _, r := range batch {
		if err := wl.Validate(r); err != nil {
			t.Fatalf("generated request invalid: %v", err)
		}
		seenPairs[[2]string{sc.NetworkOf(r.Src), sc.NetworkOf(r.Dst)}] = true
	}
	// All six ordered LAN pairs should occur in 500 draws.
	if len(seenPairs) != 6 {
		t.Fatalf("only %d LAN pair kinds in 500 requests", len(seenPairs))
	}
	// Validate rejects bad requests.
	if err := wl.Validate(netsim.Request{Src: "TTU-01", Dst: "TTU-02"}); err == nil {
		t.Fatal("intra-LAN request accepted")
	}
	if err := wl.Validate(netsim.Request{Src: "nope", Dst: "TTU-01"}); err == nil {
		t.Fatal("unknown host accepted")
	}
	// Request IDs increase.
	if batch[0].ID >= batch[1].ID {
		t.Fatal("request IDs should increase")
	}
}
