package qntn

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"qntn/internal/telemetry"
)

// trafficNDJSON runs the traffic engine on a freshly instrumented scenario
// and returns the flushed NDJSON event stream plus the result.
func trafficNDJSON(t *testing.T, build func() (*Scenario, error), cfg TrafficConfig) ([]byte, *TrafficResult) {
	t.Helper()
	sc, err := build()
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.NewCollector()
	sc.Instrument(col)
	res, err := sc.RunTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := col.Events.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// TestTrafficDeterministicAcrossWorkers is the engine's determinism gate:
// one seed must produce byte-identical NDJSON event streams — and
// identical results — at 1, 2 and 8 generation workers, because per-site
// streams are seeded independently and merged in canonical order.
func TestTrafficDeterministicAcrossWorkers(t *testing.T) {
	build := func() (*Scenario, error) { return NewSpaceGround(54, DefaultParams()) }
	base := TrafficConfig{
		RatePerHourPerSite: 12,
		Diurnal:            DiurnalProfile{Amplitude: 0.4, PeakHour: 18},
		Horizon:            2 * time.Hour,
		Seed:               5,
	}
	var refBytes []byte
	var refRes *TrafficResult
	for _, workers := range []int{1, 2, 8} {
		cfg := base
		cfg.Workers = workers
		gotBytes, gotRes := trafficNDJSON(t, build, cfg)
		if len(gotBytes) == 0 {
			t.Fatalf("workers=%d produced no events", workers)
		}
		if refBytes == nil {
			refBytes, refRes = gotBytes, gotRes
			continue
		}
		if !bytes.Equal(gotBytes, refBytes) {
			t.Fatalf("workers=%d NDJSON diverged from workers=1", workers)
		}
		// Results carry the config (including Workers), so compare the
		// physics fields.
		gotCmp, refCmp := *gotRes, *refRes
		gotCmp.Config, refCmp.Config = TrafficConfig{}, TrafficConfig{}
		if !reflect.DeepEqual(gotCmp, refCmp) {
			t.Fatalf("workers=%d result diverged:\n got %+v\nwant %+v", workers, gotCmp, refCmp)
		}
	}

	// Same seed replays byte-identically; a different seed does not.
	again, _ := trafficNDJSON(t, build, base)
	if !bytes.Equal(again, refBytes) {
		t.Fatal("same-seed rerun diverged")
	}
	reseeded := base
	reseeded.Seed = 6
	other, otherRes := trafficNDJSON(t, build, reseeded)
	if bytes.Equal(other, refBytes) && otherRes.Arrivals == refRes.Arrivals {
		t.Fatal("different seed produced an identical run")
	}
}

// TestTrafficStreamsIndependentOfConstellation pins the purity contract:
// per-site streams depend only on (config, ground sites), so two
// scenarios differing solely in relay layer generate identical arrivals.
func TestTrafficStreamsIndependentOfConstellation(t *testing.T) {
	cfg := TrafficConfig{RatePerHourPerSite: 20, Horizon: time.Hour, Seed: 3}.withDefaults()
	small, err := NewSpaceGround(24, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	large, err := NewSpaceGround(108, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	a, err := small.generateTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := large.generateTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("arrival streams depend on the relay layer")
	}
	if len(a) == 0 {
		t.Fatal("no arrivals generated")
	}
	// Merged stream invariants: sorted by (time, site), IDs sequential.
	for i := range a {
		if a[i].req.ID != i+1 {
			t.Fatalf("request IDs not sequential at %d: %d", i, a[i].req.ID)
		}
		if i > 0 && (a[i].at < a[i-1].at || (a[i].at == a[i-1].at && a[i].site < a[i-1].site)) {
			t.Fatalf("merge order violated at %d", i)
		}
	}
}

// TestTrafficDiurnalShape checks the Lewis–Shedler thinning actually bends
// the arrival rate: with a strong profile peaking at hour 6, the peak
// quarter of the day must out-arrive the trough quarter.
func TestTrafficDiurnalShape(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := TrafficConfig{
		RatePerHourPerSite: 30,
		Diurnal:            DiurnalProfile{Amplitude: 0.9, PeakHour: 6},
		Horizon:            24 * time.Hour,
		Seed:               8,
	}
	arr, err := sc.generateTraffic(cfg.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	peak, trough := 0, 0
	for _, a := range arr {
		switch h := a.at.Hours(); {
		case h >= 3 && h < 9: // around the peak at 6
			peak++
		case h >= 15 && h < 21: // around the trough at 18
			trough++
		}
	}
	if peak <= 2*trough {
		t.Fatalf("diurnal profile too weak: peak window %d vs trough window %d", peak, trough)
	}

	// Multiplier endpoints.
	d := cfg.Diurnal
	if m := d.Multiplier(6 * time.Hour); m < 1.89 || m > 1.91 {
		t.Fatalf("peak multiplier %g", m)
	}
	if m := d.Multiplier(18 * time.Hour); m < 0.09 || m > 0.11 {
		t.Fatalf("trough multiplier %g", m)
	}
	if m := (DiurnalProfile{}).Multiplier(13 * time.Hour); m != 1 {
		t.Fatalf("flat profile multiplier %g", m)
	}
}

// TestTrafficServes runs the full engine on the always-bridged air-ground
// architecture: everything arrives served on the spot, and the per-step
// events reconcile with the result totals.
func TestTrafficServes(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.NewCollector()
	sc.Instrument(col)
	cfg := TrafficConfig{RatePerHourPerSite: 8, Horizon: time.Hour, Seed: 2}
	res, err := sc.RunTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sites != 31 {
		t.Fatalf("expected the paper's 31 ground sites, got %d", res.Sites)
	}
	if res.Arrivals == 0 || res.Served != res.Arrivals || res.ServedImmediately != res.Served {
		t.Fatalf("air-ground should serve everything immediately: %+v", res)
	}
	if res.QueuedAtEnd != 0 || res.MaxQueueDepth != 0 || res.MeanWait != 0 {
		t.Fatalf("air-ground should never queue: %+v", res)
	}
	if res.Steps != 121 { // one hour at 30 s, endpoints inclusive
		t.Fatalf("expected 121 topology steps, got %d", res.Steps)
	}
	if res.RequestsEvaluated != res.Arrivals {
		t.Fatalf("no drains expected: evaluated %d vs arrivals %d", res.RequestsEvaluated, res.Arrivals)
	}

	events := col.Events.Events()
	var evArrivals, evServed int64
	for _, e := range events {
		evArrivals += e.Arrivals
		evServed += e.Served
		if e.QueueDepth != 0 {
			t.Fatalf("step %d reports queue depth %d", e.Step, e.QueueDepth)
		}
	}
	// Arrivals after the final in-horizon update are not covered by any
	// event window; everything else must reconcile.
	if evArrivals > int64(res.Arrivals) || evServed > int64(res.Served) {
		t.Fatalf("events overcount: arrivals %d>%d or served %d>%d", evArrivals, res.Arrivals, evServed, res.Served)
	}
	if evServed < evArrivals {
		t.Fatalf("evented served %d below evented arrivals %d on an always-bridged scenario", evServed, evArrivals)
	}
}

// TestTrafficRejectsBadConfig covers the validation surface.
func TestTrafficRejectsBadConfig(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range map[string]TrafficConfig{
		"zero rate":      {RatePerHourPerSite: 0},
		"amplitude >= 1": {RatePerHourPerSite: 10, Diurnal: DiurnalProfile{Amplitude: 1}},
		"negative amp":   {RatePerHourPerSite: 10, Diurnal: DiurnalProfile{Amplitude: -0.1}},
		"peak hour 24":   {RatePerHourPerSite: 10, Diurnal: DiurnalProfile{Amplitude: 0.5, PeakHour: 24}},
	} {
		if _, err := sc.RunTraffic(cfg); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}

	// Single-LAN scenarios cannot form inter-LAN traffic.
	lans := GroundNetworks()
	degenerate := &Scenario{LANs: lans[:1], GroundIDs: map[string][]string{lans[0].Name: {"TTU-01"}}}
	if _, err := degenerate.RunTraffic(TrafficConfig{RatePerHourPerSite: 10}); err == nil {
		t.Fatal("single-LAN scenario accepted")
	}
}
