package qntn

import (
	"math"
	"time"

	"qntn/internal/channel"
	"qntn/internal/geo"
	"qntn/internal/netsim"
)

// scenarioModel binds a Scenario to netsim's link-model interfaces. The
// per-pair Evaluate is the reference physics; BeginStep returns the batched
// fast path, which reproduces Evaluate's results exactly (the snapshot
// equivalence tests assert bit-identity pair by pair).
type scenarioModel struct{ sc *Scenario }

// Evaluate implements netsim.LinkModel.
func (m scenarioModel) Evaluate(a, b netsim.Node, t time.Duration) (float64, bool) {
	return m.sc.evaluateLink(a, b, t)
}

// BeginStep implements netsim.StepModel.
func (m scenarioModel) BeginStep(nodes []netsim.Node, t time.Duration) netsim.StepEvaluator {
	return m.sc.beginStep(nodes, t)
}

// beginStep returns a step evaluator for the given node set at instant t,
// drawing from the scenario's pool so steady-state snapshots allocate
// nothing. The caller must Close the evaluator to return it to the pool.
// Evaluators are independent, so concurrent sweep workers can each hold
// one.
//
//qntn:hotpath one call per topology step of every sweep worker
func (sc *Scenario) beginStep(nodes []netsim.Node, t time.Duration) *stepEval {
	se, _ := sc.stepPool.Get().(*stepEval)
	if se == nil {
		//qntn:coldpath pool miss: first checkout constructs the evaluator
		se = &stepEval{sc: sc}
	}
	if !se.sameNodes(nodes) {
		//qntn:coldpath static caches rebuild only when the node set changes
		se.init(nodes)
	}
	se.reset(t)
	return se
}

// stepEval is the per-instant link-evaluation fast path: it hoists every
// per-node quantity out of the O(N²) pair loop — each relay's position,
// geodetic conversion and observation frame, each ground host's darkness
// and each HAP's availability are computed exactly once per timestep — and
// then answers pair queries from the cache. Cheap conservative prefilters
// (horizon test, squared-range gate) reject most pairs before the full FSO
// evaluation; pairs that survive run the exact reference computation, so
// results are bit-identical to Scenario.evaluateLink.
type stepEval struct {
	sc    *Scenario
	nodes []netsim.Node

	// Static per-node data (valid while the node set is unchanged).
	kind    []netsim.NodeKind
	network []string
	ground  []*netsim.GroundHost
	gFrame  []geo.Frame // ground hosts: observation frame
	gAltM   []float64   // ground hosts: geodetic altitude
	gPos    []geo.Vec3  // ground-kind nodes: PositionAt(0)

	// Per-step data (valid for one instant t).
	t     time.Duration
	pos   []geo.Vec3  // relays: PositionAt(t)
	normM []float64   // relays: pos.Norm()
	lla   []geo.LLA   // relays: geo.ToLLA(pos)
	frame []geo.Frame // relays: observation frame at lla
	dark  []bool      // ground hosts: IsDark (when RequireDarkness)
	avail []bool      // HAPs: hapAvailable(t)

	// Spatial index (geometry and static assignments valid while the node
	// set is unchanged; see spatialindex.go). staticCell holds the cell of
	// nodes fixed in ECEF (ground hosts, HAPs) so only movers re-bin per
	// step; -1 marks a mover. fiberStart/fiberList are the CSR adjacency of
	// same-network ground pairs (j > i), which are not FSO-range-gated and
	// therefore bypass the grid. islNbr, when non-nil, restricts
	// satellite↔satellite links to the scenario's ISL grid topology.
	grid       pairGrid
	staticCell []int32
	fiberStart []int32
	fiberList  []int32
	islNbr     [][]int32

	// Per-step candidate list, built lazily on the first CandidatePairs
	// call so callers that evaluate targeted pairs (the sweep engine, the
	// event-driven engine) never pay for it.
	cand        []netsim.PackedPair
	scratch     []int32
	candBuilt   bool
	indexCulled int64

	// Per-step prefilter hit counts, drained via PairStats. Plain ints:
	// an evaluator is single-goroutine between BeginStep and Close, and
	// incrementing them is noise next to the geometry they sit beside.
	horizonRejects int64
	rangeRejects   int64
}

// PairStats implements netsim.PairStatser: the number of pairs this step
// rejected by the horizon and squared-range prefilters, plus the number the
// spatial index culled from the candidate set before evaluation.
//
//qntn:hotpath
func (se *stepEval) PairStats() (horizonRejects, rangeRejects, indexCulled int64) {
	return se.horizonRejects, se.rangeRejects, se.indexCulled
}

// CandidatePairs implements netsim.PairEnumerator: a sorted conservative
// superset of the step's usable pairs, or ok=false when the node set is too
// small, the index is disabled, or a range bound is unusable — callers then
// fall back to the dense scan. The list is built lazily and cached for the
// step.
//
//qntn:hotpath
func (se *stepEval) CandidatePairs() ([]netsim.PackedPair, bool) {
	if !se.grid.ok {
		return nil, false
	}
	if !se.candBuilt {
		se.buildCandidates()
	}
	return se.cand, true
}

// buildCandidates bins this step's node positions into the grid (static
// nodes reuse their precomputed cells) and gathers, per node i, the sorted
// candidate partners j > i: static fiber partners plus grid neighbors
// within one cell. Ground↔ground grid hits are dropped — same-network pairs
// came from the fiber list and cross-network pairs can never link — so the
// gather is duplicate-free. Emitting per-i sorted runs yields a globally
// ascending packed list, i.e. exact dense-loop order.
//
//qntn:hotpath
func (se *stepEval) buildCandidates() {
	se.candBuilt = true
	n := len(se.nodes)
	g := &se.grid
	g.beginBuild(n)
	for i := 0; i < n; i++ {
		if c := se.staticCell[i]; c >= 0 {
			g.cell[i] = c
		} else {
			g.cell[i] = g.cellIndex(se.pos[i])
		}
	}
	g.finishBuild(n)
	se.cand = se.cand[:0]
	for i := 0; i < n; i++ {
		s := se.scratch[:0]
		for _, j := range se.fiberList[se.fiberStart[i]:se.fiberStart[i+1]] {
			//qntn:coldpath amortized growth: scratch capacity is stable
			s = append(s, j)
		}
		nf := len(s)
		s = g.neighborsAfter(int32(i), s)
		if se.kind[i] == netsim.Ground {
			// Drop ground↔ground grid hits: they landed after the fiber
			// prefix, which already holds the only linkable ones.
			w := nf
			for _, j := range s[nf:] {
				if se.kind[j] == netsim.Ground {
					continue
				}
				s[w] = j
				w++
			}
			s = s[:w]
		}
		insertionSortI32(s)
		for _, j := range s {
			//qntn:coldpath amortized growth: candidate capacity is stable
			se.cand = append(se.cand, netsim.PackPair(i, int(j)))
		}
		se.scratch = s
	}
	se.indexCulled = int64(n)*int64(n-1)/2 - int64(len(se.cand))
}

// sameNodes reports whether the evaluator's static caches were built for
// exactly this node slice (node identity, not just IDs).
//
//qntn:hotpath
func (se *stepEval) sameNodes(nodes []netsim.Node) bool {
	if len(se.nodes) != len(nodes) {
		return false
	}
	for i, n := range nodes {
		if se.nodes[i] != n {
			return false
		}
	}
	return true
}

// grow returns s resized to n elements, reusing its backing array when
// possible. Contents are unspecified — callers overwrite every element.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// init rebuilds the static per-node caches.
func (se *stepEval) init(nodes []netsim.Node) {
	n := len(nodes)
	se.nodes = append(se.nodes[:0], nodes...)
	se.kind = grow(se.kind, n)
	se.network = grow(se.network, n)
	se.ground = grow(se.ground, n)
	se.gFrame = grow(se.gFrame, n)
	se.gAltM = grow(se.gAltM, n)
	se.gPos = grow(se.gPos, n)
	se.pos = grow(se.pos, n)
	se.normM = grow(se.normM, n)
	se.lla = grow(se.lla, n)
	se.frame = grow(se.frame, n)
	se.dark = grow(se.dark, n)
	se.avail = grow(se.avail, n)
	for i, node := range nodes {
		se.kind[i] = node.Kind()
		se.network[i] = node.Network()
		gh, _ := node.(*netsim.GroundHost)
		se.ground[i] = gh
		if gh != nil {
			se.gFrame[i] = geo.NewFrame(gh.LLA())
			se.gAltM[i] = gh.LLA().AltM
		}
		if se.kind[i] == netsim.Ground {
			se.gPos[i] = node.PositionAt(0)
		}
	}
	se.initSpatial(nodes)
}

// initSpatial rebuilds the static spatial-index state for a new node set:
// grid geometry, fixed cell assignments, the fiber adjacency, and the ISL
// allowlist. Cold path — runs only when the node set changes.
func (se *stepEval) initSpatial(nodes []netsim.Node) {
	n := len(nodes)
	sc := se.sc
	se.islNbr = nil
	if sc.islAdj != nil {
		se.islNbr = growZero(se.islNbr, n)
		byID := make(map[string]int, n)
		for i, node := range nodes {
			byID[node.ID()] = i
		}
		for i, node := range nodes {
			ids := sc.islAdj[node.ID()]
			nbr := se.islNbr[i][:0]
			for _, id := range ids {
				if j, ok := byID[id]; ok {
					nbr = append(nbr, int32(j))
				}
			}
			se.islNbr[i] = nbr
		}
	}
	se.grid.ok = false
	se.candBuilt = false
	if n < spatialIndexMinNodes || sc.Params.DisableSpatialIndex {
		return
	}
	// All FSO range bounds must be finite and positive: an infinite bound
	// (threshold ≤ 0 or a degenerate beam) means distance never gates a
	// link and only the dense scan is safe.
	maxGate := sc.spaceMaxRangeM2
	if sc.hapMaxRangeM2 > maxGate {
		maxGate = sc.hapMaxRangeM2
	}
	if sc.satHAPMaxRangeM2 > maxGate {
		maxGate = sc.satHAPMaxRangeM2
	}
	if !(maxGate > 0) || math.IsInf(maxGate, 1) {
		return
	}
	maxNorm := 0.0
	for _, node := range nodes {
		if nm := node.PositionAt(0).Norm(); nm > maxNorm {
			maxNorm = nm
		}
	}
	se.grid.configure(math.Sqrt(maxGate), maxNorm)
	se.staticCell = grow(se.staticCell, n)
	for i, node := range nodes {
		se.staticCell[i] = -1
		if se.kind[i] == netsim.Ground {
			se.staticCell[i] = se.grid.cellIndex(se.gPos[i])
		} else if _, hap := node.(*netsim.HAPNode); hap {
			se.staticCell[i] = se.grid.cellIndex(node.PositionAt(0))
		}
	}
	se.fiberStart = grow(se.fiberStart, n+1)
	se.fiberList = se.fiberList[:0]
	for i := 0; i < n; i++ {
		se.fiberStart[i] = int32(len(se.fiberList))
		if se.kind[i] != netsim.Ground || se.network[i] == "" {
			continue
		}
		for j := i + 1; j < n; j++ {
			if se.kind[j] == netsim.Ground && se.network[j] == se.network[i] {
				se.fiberList = append(se.fiberList, int32(j))
			}
		}
	}
	se.fiberStart[n] = int32(len(se.fiberList))

	// Prime the per-step arrays with one candidate build at t=0, so the
	// first real snapshot runs at steady state: grid buckets, gather
	// scratch, and the candidate list all reach working capacity here, on
	// the cold path, instead of allocating inside the first hot step. A
	// little headroom on the variable-length arrays absorbs instants with
	// slightly larger candidate sets than t=0.
	for i, node := range nodes {
		if se.staticCell[i] < 0 {
			se.pos[i] = node.PositionAt(0)
		}
	}
	se.buildCandidates()
	if c := 3 * len(se.cand) / 2; cap(se.cand) < c {
		se.cand = make([]netsim.PackedPair, 0, c)
	}
	se.candBuilt = false
	se.indexCulled = 0
}

// growZero is grow for slice-of-slice scratch: reused entries keep their
// backing arrays, new entries start nil.
func growZero(s [][]int32, n int) [][]int32 {
	if cap(s) >= n {
		s = s[:n]
		return s
	}
	out := make([][]int32, n)
	copy(out, s)
	return out
}

// reset recomputes the per-step caches for instant t: one position, norm,
// geodetic conversion and frame per relay; one darkness bit per ground
// host; one availability bit per HAP.
//
//qntn:hotpath
func (se *stepEval) reset(t time.Duration) {
	se.t = t
	se.horizonRejects = 0
	se.rangeRejects = 0
	se.indexCulled = 0
	se.candBuilt = false
	sc := se.sc
	requireDark := sc.Params.RequireDarkness
	var twilightRad float64
	if requireDark {
		twilightRad = sc.Params.twilight()
	}
	for i, node := range se.nodes {
		if se.kind[i] == netsim.Ground {
			if requireDark && se.ground[i] != nil {
				se.dark[i] = sc.sun.IsDark(se.ground[i].LLA(), t, twilightRad)
			}
			continue
		}
		p := node.PositionAt(t)
		se.pos[i] = p
		se.normM[i] = p.Norm()
		l := geo.ToLLA(p)
		se.lla[i] = l
		se.frame[i] = geo.NewFrame(l)
		if se.kind[i] == netsim.HAP {
			se.avail[i] = sc.hapAvailable(node, t)
		}
	}
}

// setInstant rebinds the evaluator to instant t without touching any cached
// per-node data. The event-driven engine uses it together with refreshNode /
// refreshRelayAt to refresh only the nodes that participate in open
// visibility windows, instead of reset's full per-node sweep.
func (se *stepEval) setInstant(t time.Duration) {
	se.t = t
	se.horizonRejects = 0
	se.rangeRejects = 0
	se.indexCulled = 0
	se.candBuilt = false
}

// refreshNode recomputes the per-step cache entries of node i at the
// evaluator's current instant — exactly reset's per-node body for one node.
func (se *stepEval) refreshNode(i int) {
	sc := se.sc
	t := se.t
	if se.kind[i] == netsim.Ground {
		if sc.Params.RequireDarkness && se.ground[i] != nil {
			se.dark[i] = sc.sun.IsDark(se.ground[i].LLA(), t, sc.Params.twilight())
		}
		return
	}
	se.refreshRelayAt(i, se.nodes[i].PositionAt(t))
}

// refreshRelayAt installs a relay position computed elsewhere (e.g. the
// window engine's memoized propagation) and derives the dependent caches,
// exactly as reset would from PositionAt. i must be a relay (non-Ground).
func (se *stepEval) refreshRelayAt(i int, p geo.Vec3) {
	se.pos[i] = p
	se.normM[i] = p.Norm()
	l := geo.ToLLA(p)
	se.lla[i] = l
	se.frame[i] = geo.NewFrame(l)
	if se.kind[i] == netsim.HAP {
		se.avail[i] = se.sc.hapAvailable(se.nodes[i], se.t)
	}
}

// Close implements netsim.StepEvaluator, returning the evaluator to its
// scenario's pool.
//
//qntn:hotpath
func (se *stepEval) Close() { se.sc.stepPool.Put(se) }

// EvaluatePair implements netsim.StepEvaluator. It mirrors the dispatch of
// Scenario.evaluateLink exactly (order so kind[a] <= kind[b], then switch
// on the kind pair).
//
//qntn:hotpath every node pair of every step goes through here
func (se *stepEval) EvaluatePair(i, j int) (float64, bool) {
	a, b := i, j
	if se.kind[a] > se.kind[b] {
		a, b = b, a
	}
	switch {
	case se.kind[a] == netsim.Ground && se.kind[b] == netsim.Ground:
		return se.fiberPair(a, b)
	case se.kind[a] == netsim.Ground && se.kind[b] == netsim.Satellite:
		return se.groundRelayPair(a, b, &se.sc.spaceFSO, se.sc.spaceMaxRangeM2)
	case se.kind[a] == netsim.Ground && se.kind[b] == netsim.HAP:
		return se.groundRelayPair(a, b, &se.sc.hapFSO, se.sc.hapMaxRangeM2)
	case se.kind[a] == netsim.Satellite && se.kind[b] == netsim.Satellite:
		return se.islPair(a, b)
	case se.kind[a] == netsim.Satellite && se.kind[b] == netsim.HAP:
		return se.satHAPPair(a, b)
	default:
		return 0, false
	}
}

// fiberPair mirrors Scenario.fiberLink on cached positions.
//
//qntn:hotpath
func (se *stepEval) fiberPair(a, b int) (float64, bool) {
	if se.network[a] != se.network[b] || se.network[a] == "" {
		return 0, false
	}
	eta := se.sc.fiber.Transmissivity(se.gPos[a].Distance(se.gPos[b]))
	if eta < se.sc.Params.TransmissivityThreshold {
		return 0, false
	}
	return eta, true
}

// groundRelayPair mirrors Scenario.groundSpaceLink on cached geometry, with
// two conservative prefilters ahead of the full evaluation: the horizon
// test (a relay below the host's horizon cannot meet the non-negative
// elevation mask) and the squared-range gate (beyond it the transmissivity
// provably falls below the threshold).
//
//qntn:hotpath
func (se *stepEval) groundRelayPair(a, b int, cfg *channel.FSOConfig, maxRangeM2 float64) (float64, bool) {
	gh := se.ground[a]
	if gh == nil {
		return 0, false
	}
	sc := se.sc
	if sc.Params.RequireDarkness && !se.dark[a] {
		return 0, false
	}
	if se.kind[b] == netsim.HAP && !se.avail[b] {
		return 0, false
	}
	f := &se.gFrame[a]
	if !f.AboveHorizon(se.pos[b]) {
		se.horizonRejects++
		return 0, false
	}
	look := f.Look(se.pos[b])
	if look.ElevationRad < sc.Params.MinElevationRad {
		return 0, false
	}
	if look.SlantRangeM*look.SlantRangeM > maxRangeM2 {
		se.rangeRejects++
		return 0, false
	}
	eta := cfg.Transmissivity(channel.FSOGeometry{
		RangeM:       look.SlantRangeM,
		ElevationRad: look.ElevationRad,
		LoAltM:       se.gAltM[a],
		HiAltM:       se.lla[b].AltM,
	})
	if eta < sc.Params.TransmissivityThreshold {
		return 0, false
	}
	return eta, true
}

// islPair mirrors Scenario.interSatelliteLink on cached geometry, with the
// squared-range gate applied before the line-of-sight test (at the paper's
// threshold the gate rejects the large majority of satellite pairs). When
// the scenario restricts ISLs to a grid topology, non-neighbors are
// rejected first.
//
//qntn:hotpath
func (se *stepEval) islPair(a, b int) (float64, bool) {
	sc := se.sc
	if se.islNbr != nil && !se.islAllowed(a, b) {
		return 0, false
	}
	pa, pb := se.pos[a], se.pos[b]
	d := pb.Sub(pa)
	if d.Dot(d) > sc.spaceMaxRangeM2 {
		se.rangeRejects++
		return 0, false
	}
	if !geo.LineOfSight(pa, pb, sc.islClearance) {
		return 0, false
	}
	lo, hi := a, b
	if se.normM[lo] > se.normM[hi] {
		lo, hi = hi, lo
	}
	eta := sc.spaceFSO.Transmissivity(channel.FSOGeometry{
		RangeM:       pa.Distance(pb),
		ElevationRad: se.frame[lo].Look(se.pos[hi]).ElevationRad,
		LoAltM:       se.lla[a].AltM,
		HiAltM:       se.lla[b].AltM,
	})
	if eta < sc.Params.TransmissivityThreshold {
		return 0, false
	}
	return eta, true
}

// islAllowed reports whether the grid topology permits an ISL between a and
// b. Neighbor lists are symmetric and at most a handful of entries, so a
// linear scan from a's side suffices.
//
//qntn:hotpath
func (se *stepEval) islAllowed(a, b int) bool {
	for _, j := range se.islNbr[a] {
		if int(j) == b {
			return true
		}
	}
	return false
}

// satHAPPair mirrors Scenario.satelliteHAPLink on cached geometry, with the
// squared-range gate first.
//
//qntn:hotpath
func (se *stepEval) satHAPPair(a, b int) (float64, bool) {
	sc := se.sc
	ps, ph := se.pos[a], se.pos[b]
	d := ph.Sub(ps)
	if d.Dot(d) > sc.satHAPMaxRangeM2 {
		se.rangeRejects++
		return 0, false
	}
	lo, hi := a, b
	if se.normM[lo] > se.normM[hi] {
		lo, hi = hi, lo
	}
	elev := se.frame[lo].Look(se.pos[hi]).ElevationRad
	if elev < sc.Params.MinElevationRad {
		return 0, false
	}
	if !geo.LineOfSight(ps, ph, sc.islClearance) {
		return 0, false
	}
	eta := sc.satHAPFSO.Transmissivity(channel.FSOGeometry{
		RangeM:       ps.Distance(ph),
		ElevationRad: elev,
		LoAltM:       se.lla[b].AltM,
		HiAltM:       se.lla[a].AltM,
	})
	if eta < sc.Params.TransmissivityThreshold {
		return 0, false
	}
	return eta, true
}
