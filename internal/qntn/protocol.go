package qntn

import (
	"strconv"
	"time"

	"qntn/internal/netsim"
	"qntn/internal/quantum/protocol"
	"qntn/internal/routing"
	"qntn/internal/runner"
)

// protoOutcome is the protocol layer's verdict on one request attempt.
type protoOutcome struct {
	// served reports whether at least one pair survived swapping and
	// distillation; fidelity is its root-convention fidelity when it did.
	served   bool
	fidelity float64
	// primaryEta is the end-to-end transmissivity of the primary route —
	// what the protocol-off path reports as EndToEndEta.
	primaryEta float64
	// Draw counters, for telemetry.
	swapAttempts   int
	swapFailures   int
	purifyRounds   int
	purifyAccepted int
}

// protoEval evaluates the entanglement-protocol layer for one run. All
// buffers are reused across requests, so the per-request evaluation is
// allocation-free after warm-up (asserted in protocol_alloc_test.go); one
// protoEval must therefore never be shared across goroutines — each sweep
// task builds its own, exactly like the Bellman-Ford scratch.
type protoEval struct {
	sc     *Scenario
	cfg    protocol.Config
	k      int
	ds     routing.DisjointScratch
	etaBuf []float64
	att    []float64
	key    []byte
}

// newProtoEval returns the run's protocol evaluator, or nil when the layer
// is disabled. Callers branch on nil and keep disabled runs on exactly the
// pre-protocol statements, which is what makes protocol-off output
// byte-identical by construction rather than by test.
func (sc *Scenario) newProtoEval() *protoEval {
	if !sc.Params.Protocol.Enabled() {
		return nil
	}
	return &protoEval{sc: sc, cfg: sc.Params.Protocol, k: sc.Params.Protocol.Paths()}
}

// pairKey folds the request identity into the draw-seed task index over a
// reused buffer: the same bytes — "src|dst|id|atNanos" — that
// protocol.PairKey hashes, pinned equal by TestPairKeyMatchesBytesFold.
//
//qntn:hotpath once per protocol request evaluation
func (pe *protoEval) pairKey(req netsim.Request, at time.Duration) uint64 {
	b := pe.key[:0]
	b = append(b, req.Src...) //qntn:coldpath amortized growth: key buffer is reused
	b = append(b, '|')        //qntn:coldpath amortized growth: key buffer is reused
	b = append(b, req.Dst...) //qntn:coldpath amortized growth: key buffer is reused
	b = append(b, '|')        //qntn:coldpath amortized growth: key buffer is reused
	b = strconv.AppendInt(b, int64(req.ID), 10)
	b = append(b, '|') //qntn:coldpath amortized growth: key buffer is reused
	b = strconv.AppendInt(b, int64(at), 10)
	pe.key = b
	return runner.FNV64aBytes(b)
}

// outcome runs the full protocol pipeline for one request routed over the
// primary path at topology instant at:
//
//  1. Zero-swap routes (a single edge, e.g. same-LAN fiber) bypass the
//     layer entirely — no heralding wait, no draws, fidelity exactly the
//     seed model's. A naive implementation that charged the 2L/c heralding
//     wait and a swap loop to a direct route would dephase pairs that never
//     sit in memory; the zero-hop regression test pins the bypass.
//  2. Otherwise up to k internally-vertex-disjoint routes are extracted
//     (primary first). Each route attempts an elementary pair per hop,
//     connected by per-relay swaps whose success draws derive from
//     (Config.Seed, request identity, attempt, swap); the surviving
//     end-to-end pair dephases in T2 memories for the route's heralding
//     latency.
//  3. Surviving attempts are sorted best-first and distilled pairwise
//     (protocol.Distill); the request is served iff a pair survives.
//
// The scalar reference in oracletest reimplements this pipeline naively
// (cloned graphs, map Dijkstra, verbatim formulas); the differential matrix
// pins the two DeepEqual-identical.
func (pe *protoEval) outcome(g *routing.Graph, path []string, req netsim.Request, at time.Duration) (protoOutcome, error) {
	var out protoOutcome
	model := pe.sc.Params.FidelityModel
	if len(path) <= 2 {
		etas, err := g.EdgeEtasInto(pe.etaBuf[:0], path)
		pe.etaBuf = etas
		if err != nil {
			return out, err
		}
		out.served = true
		out.fidelity = PathFidelity(etas, model)
		out.primaryEta = product(etas)
		return out, nil
	}
	chainSeed := protocol.ChainSeed(pe.cfg.Seed, pe.pairKey(req, at))
	paths, err := pe.ds.Extract(g, path, pe.k)
	if err != nil {
		return out, err
	}
	pe.att = pe.att[:0]
	for j, p := range paths {
		etas, err := g.EdgeEtasInto(pe.etaBuf[:0], p)
		pe.etaBuf = etas
		if err != nil {
			return out, err
		}
		if j == 0 {
			out.primaryEta = product(etas)
		}
		w := protocol.WernerFromRoot(PathFidelity(etas[:1], model))
		ok := true
		for s := 0; s+1 < len(etas); s++ {
			out.swapAttempts++
			if protocol.Draw(chainSeed, uint64(j), uint64(s)) >= pe.cfg.SwapSuccess {
				out.swapFailures++
				ok = false
				break
			}
			w = protocol.SwapWerner(w, protocol.WernerFromRoot(PathFidelity(etas[s+1:s+2], model)))
		}
		if !ok {
			continue
		}
		if len(etas) >= 2 {
			lengthM, err := pe.sc.PathLengthM(p, at)
			if err != nil {
				return out, err
			}
			w = protocol.DephaseWerner(w, pe.sc.HeraldingLatency(lengthM, len(etas)), pe.cfg.MemoryT2)
		}
		pe.att = append(pe.att, w)
	}
	// Best-first stable ordering (insertion sort over the tiny attempt
	// buffer; ≤ k elements, no allocation).
	att := pe.att
	for i := 1; i < len(att); i++ {
		for j := i; j > 0 && att[j] > att[j-1]; j-- {
			att[j], att[j-1] = att[j-1], att[j]
		}
	}
	w, served, rounds, accepted := protocol.Distill(att, chainSeed)
	out.purifyRounds += rounds
	out.purifyAccepted += accepted
	if !served {
		return out, nil
	}
	out.served = true
	out.fidelity = protocol.RootFromWerner(w)
	return out, nil
}
