package qntn_test

// The event-driven differential-oracle suite: every scenario archetype runs
// through Coverage, DetailedCoverage and RunServe on both execution paths —
// brute-force stepped (the oracle) and event-driven (the subject) — and the
// results must be reflect.DeepEqual-identical, with faults off and on, at
// several worker counts. The suite lives in an external test package so it
// exercises exactly the public API the oracletest helpers wrap; white-box
// window tests live in windows_test.go.

import (
	"reflect"
	"testing"
	"time"

	"qntn/internal/qntn"
	"qntn/internal/qntn/oracletest"
	"qntn/internal/telemetry"
)

// oracleServeConfig scales the paper workload down so six archetypes times
// two fault variants stay affordable next to the rest of tier 1.
func oracleServeConfig(horizon time.Duration) qntn.ServeConfig {
	return qntn.ServeConfig{RequestsPerStep: 20, Steps: 40, Horizon: horizon, Seed: 7}
}

// TestEventDrivenMatchesSteppedOracle is the core differential matrix:
// every archetype, faults off and on.
func TestEventDrivenMatchesSteppedOracle(t *testing.T) {
	for _, arch := range oracletest.Archetypes() {
		arch := arch
		t.Run(arch.Name, func(t *testing.T) {
			p := arch.Params()
			oracletest.AssertAllEqual(t, arch.Build, p, arch.Duration, oracleServeConfig(arch.Duration))
		})
		t.Run(arch.Name+"-faults", func(t *testing.T) {
			p := arch.Params()
			p.Fault = oracletest.FaultConfig(11)
			oracletest.AssertAllEqual(t, arch.Build, p, arch.Duration, oracleServeConfig(arch.Duration))
		})
	}
}

// TestSpatialIndexMatchesDense is the dense-vs-index differential matrix:
// every archetype, faults off and on, stepped and event-driven — toggling
// only Params.DisableSpatialIndex between otherwise identical builds. The
// spatial index is an exact candidate filter, so results must be
// byte-identical everywhere; durations are capped so the doubled build
// count stays affordable next to the engine matrix above.
func TestSpatialIndexMatchesDense(t *testing.T) {
	for _, arch := range oracletest.Archetypes() {
		arch := arch
		duration := arch.Duration
		if duration > 2*time.Hour {
			duration = 2 * time.Hour
		}
		t.Run(arch.Name, func(t *testing.T) {
			oracletest.AssertIndexEquivalence(t, arch.Build, arch.Params(), duration)
		})
		t.Run(arch.Name+"-faults", func(t *testing.T) {
			p := arch.Params()
			p.Fault = oracletest.FaultConfig(11)
			oracletest.AssertIndexEquivalence(t, arch.Build, p, duration)
		})
	}
}

// TestEventDrivenServeSweepWorkers runs the serve sweep — whose per-size
// scenarios route through RunServe and therefore through the event engine
// when EventDriven is set — at 1, 2 and 8 workers, and requires all six
// point sets (3 worker counts x 2 paths) to agree.
func TestEventDrivenServeSweepWorkers(t *testing.T) {
	sizes := []int{6, 24}
	cfg := qntn.ServeConfig{RequestsPerStep: 15, Steps: 30, Horizon: 6 * time.Hour, Seed: 3}
	p := qntn.DefaultParams()
	want, err := qntn.ServeSweepParallel(p, sizes, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		pe := p
		pe.EventDriven = true
		got, err := qntn.ServeSweepParallel(pe, sizes, cfg, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: event-driven serve sweep diverged from stepped\n got: %+v\nwant: %+v", workers, got, want)
		}
		if workers == 1 {
			continue
		}
		gotStepped, err := qntn.ServeSweepParallel(p, sizes, cfg, workers)
		if err != nil {
			t.Fatalf("workers=%d stepped: %v", workers, err)
		}
		if !reflect.DeepEqual(gotStepped, want) {
			t.Fatalf("workers=%d: stepped serve sweep not worker-invariant", workers)
		}
	}
}

// TestEventDrivenCoverageSweepWorkers pins the coverage sweep against
// per-size Coverage runs of both paths at 1, 2 and 8 workers. The sweep has
// its own cached fast path that bypasses Scenario.Coverage, so this is both
// a worker-invariance check and a three-way equivalence: sweep == stepped
// Coverage == event-driven Coverage for every size.
func TestEventDrivenCoverageSweepWorkers(t *testing.T) {
	sizes := []int{6, 12, 24}
	duration := 6 * time.Hour
	p := qntn.DefaultParams()
	var want []qntn.CoveragePoint
	for _, workers := range []int{1, 2, 8} {
		pts, err := qntn.CoverageSweepParallel(p, sizes, duration, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = pts
		} else if !reflect.DeepEqual(pts, want) {
			t.Fatalf("workers=%d: coverage sweep not worker-invariant", workers)
		}
	}
	for i, n := range sizes {
		build := func(p qntn.Params) (*qntn.Scenario, error) { return qntn.NewSpaceGround(n, p) }
		cov := oracletest.AssertCoverageEqual(t, build, p, duration)
		if !reflect.DeepEqual(*cov, want[i].Result) {
			t.Fatalf("size %d: sweep result %+v != per-size coverage result %+v", n, want[i].Result, *cov)
		}
	}
}

// TestEventDrivenRejectsTelemetry: instrumented scenarios must keep using
// the stepped path (the engine records no telemetry), transparently — same
// results, telemetry still collected.
func TestEventDrivenTelemetryFallsBackToStepped(t *testing.T) {
	p := qntn.DefaultParams()
	p.EventDriven = true
	sc, err := qntn.NewSpaceGround(6, p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sc.Coverage(2 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.NewCollector()
	pi := p
	pi.Telemetry = col
	sci, err := qntn.NewSpaceGround(6, pi)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sci.Coverage(2 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("instrumented coverage diverged\n got: %+v\nwant: %+v", got, want)
	}
	if steps := col.Registry.Counter("coverage_steps_total").Value(); steps != uint64(want.Steps) {
		t.Fatalf("instrumented run recorded %d coverage steps, want %d — telemetry not collected", steps, want.Steps)
	}
}
