package qntn

import (
	"math"
	"testing"

	"qntn/internal/geo"
)

func TestGroundNetworksShape(t *testing.T) {
	nets := GroundNetworks()
	if len(nets) != 3 {
		t.Fatalf("%d networks, want 3", len(nets))
	}
	want := map[string]int{NetworkTTU: 5, NetworkEPB: 15, NetworkORNL: 11}
	total := 0
	for _, n := range nets {
		if got := len(n.Nodes); got != want[n.Name] {
			t.Errorf("%s has %d nodes, want %d", n.Name, got, want[n.Name])
		}
		total += len(n.Nodes)
	}
	if total != 31 {
		t.Fatalf("total nodes %d, want 31", total)
	}
}

func TestGroundNetworksTableIAnchors(t *testing.T) {
	nets := GroundNetworks()
	// First coordinates of each network, straight from Table I.
	if p := nets[0].Nodes[0]; p.LatDeg != 36.1757 || p.LonDeg != -85.5066 {
		t.Errorf("TTU anchor %v", p)
	}
	if p := nets[1].Nodes[0]; p.LatDeg != 35.04159 || p.LonDeg != -85.2799 {
		t.Errorf("EPB anchor %v", p)
	}
	if p := nets[2].Nodes[0]; p.LatDeg != 35.91 || p.LonDeg != -84.3 {
		t.Errorf("ORNL anchor %v", p)
	}
}

func TestLANsAreCompact(t *testing.T) {
	// Every LAN must fit within a few km so that intra-LAN fiber links
	// stay above the transmissivity threshold.
	fiber := DefaultParams().Fiber()
	for _, lan := range GroundNetworks() {
		for i := range lan.Nodes {
			for j := i + 1; j < len(lan.Nodes); j++ {
				d := geo.GreatCircleM(lan.Nodes[i], lan.Nodes[j])
				if d > 3000 {
					t.Errorf("%s nodes %d-%d separated by %.0f m", lan.Name, i, j, d)
				}
				if eta := fiber.Transmissivity(d); eta < DefaultParams().TransmissivityThreshold {
					t.Errorf("%s intra-LAN fiber %d-%d below threshold (η=%.3f)", lan.Name, i, j, eta)
				}
			}
		}
	}
}

func TestLANSeparations(t *testing.T) {
	nets := GroundNetworks()
	c := map[string]geo.LLA{}
	for _, n := range nets {
		c[n.Name] = n.Centroid()
	}
	pairs := []struct {
		a, b  string
		minKM float64
		maxKM float64
	}{
		{NetworkTTU, NetworkEPB, 100, 160},
		{NetworkTTU, NetworkORNL, 80, 140},
		{NetworkEPB, NetworkORNL, 100, 160},
	}
	for _, p := range pairs {
		d := geo.GreatCircleM(c[p.a], c[p.b]) / 1000
		if d < p.minKM || d > p.maxKM {
			t.Errorf("%s-%s separation %.1f km outside [%g, %g]", p.a, p.b, d, p.minKM, p.maxKM)
		}
	}
}

func TestCentroid(t *testing.T) {
	lan := LocalNetwork{Name: "X", Nodes: []geo.LLA{{LatDeg: 1, LonDeg: 2}, {LatDeg: 3, LonDeg: 4}}}
	c := lan.Centroid()
	if math.Abs(c.LatDeg-2) > 1e-12 || math.Abs(c.LonDeg-3) > 1e-12 {
		t.Fatalf("centroid %v", c)
	}
	if (LocalNetwork{}).Centroid() != (geo.LLA{}) {
		t.Fatal("empty centroid should be zero")
	}
}

func TestNodeID(t *testing.T) {
	if got := NodeID(NetworkTTU, 0); got != "TTU-01" {
		t.Fatalf("NodeID %q", got)
	}
	if got := NodeID(NetworkEPB, 14); got != "EPB-15" {
		t.Fatalf("NodeID %q", got)
	}
}
