package qntn

import "qntn/internal/geo"

// This file implements the ECEF uniform grid behind candidate-pair
// generation. The cell edge is at least the maximum usable FSO range, so two
// nodes that can possibly link differ by at most one cell along each axis
// and the 3×3×3 neighborhood around a node's cell is a conservative
// superset of its in-range partners. Cells are flattened x-fastest, which
// makes the three x-adjacent cells of one (y, z) row contiguous in the CSR
// layout: a neighborhood scan is nine contiguous bucket ranges, not
// twenty-seven cell lookups.
//
// Determinism: nodes are placed into buckets in ascending index order, and
// the per-node gather sorts its candidates ascending before emission, so
// the packed candidate list is ascending — exactly the order the dense
// "for i { for j := i+1 }" loop visits pairs. The equivalence suite asserts
// the resulting graphs byte-identical to the dense scan.

// spatialIndexMinNodes is the node count below which the index is skipped:
// the dense n² scan on small scenarios is cheaper than building the grid.
const spatialIndexMinNodes = 48

// pairGridMaxDim caps the grid resolution per axis. dim³ cells are cleared
// per step, so the cap bounds the clear at ~128 KiB of int32 starts;
// enlarging cells beyond the range bound is always safe (the neighborhood
// stays a superset), just less selective.
const pairGridMaxDim = 32

// pairGrid is a uniform ECEF grid over the scenario's node universe. The
// geometry (origin, cell size, dimension) is configured once per node set;
// the per-step build reuses every backing array, so steady-state rebuilds
// allocate nothing.
type pairGrid struct {
	// ok reports whether the grid is configured and eligible this node set.
	ok bool
	// originM is the universe's minimum corner along each axis; invCell is
	// 1/cellM with cellM the effective cell edge in meters.
	originM float64
	invCell float64
	dim     int32
	// cell holds each node's flattened cell index for the current step.
	cell []int32
	// starts/bucket are the CSR cell→nodes layout; cursor is the per-cell
	// placement cursor reused across builds.
	starts []int32
	cursor []int32
	bucket []int32
}

// configure sets the grid geometry for a universe of half-extent
// maxNormM + cell and a minimum cell edge of rangeM. The relative margin
// absorbs float rounding in the axis computation (it dwarfs the 1e-9
// margins already inside the range bounds), and the cap on dim only ever
// enlarges cells, which keeps the neighborhood a superset.
func (g *pairGrid) configure(rangeM, maxNormM float64) {
	cellM := rangeM*(1+1e-6) + 1.0
	half := maxNormM + cellM
	dim := int32(2 * half / cellM)
	if dim < 1 {
		dim = 1
	}
	if dim > pairGridMaxDim {
		dim = pairGridMaxDim
	}
	g.dim = dim
	g.originM = -half
	// Effective cell edge 2·half/dim ≥ cellM because dim ≤ 2·half/cellM.
	g.invCell = float64(dim) / (2 * half)
	ncells := int(dim) * int(dim) * int(dim)
	g.starts = grow(g.starts, ncells+1)
	g.cursor = grow(g.cursor, ncells)
	g.ok = true
}

// axis maps one ECEF coordinate to its cell coordinate, clamped into
// [0, dim-1]. Clamping happens in float space before the int conversion
// (out-of-range float→int conversion is implementation-defined in Go), and
// is NaN-safe. Clamping is monotone, so it never increases the cell-
// coordinate difference of a pair: positions outside the configured
// universe still land in a conservative neighborhood.
//
//qntn:hotpath
func (g *pairGrid) axis(x float64) int32 {
	u := (x - g.originM) * g.invCell
	if !(u >= 0) {
		return 0
	}
	if max := float64(g.dim - 1); u > max {
		u = max
	}
	return int32(u)
}

// cellIndex flattens a position's cell coordinates x-fastest.
//
//qntn:hotpath
func (g *pairGrid) cellIndex(p geo.Vec3) int32 {
	cx := g.axis(p.X)
	cy := g.axis(p.Y)
	cz := g.axis(p.Z)
	return (cz*g.dim+cy)*g.dim + cx
}

// beginBuild prepares the per-node cell array for n nodes. The caller fills
// cell[0:n] and then calls finishBuild.
//
//qntn:hotpath
func (g *pairGrid) beginBuild(n int) {
	//qntn:coldpath amortized growth: capacity is stable across steps
	g.cell = grow(g.cell, n)
}

// finishBuild builds the CSR cell→nodes layout from cell[0:n] with a
// counting sort. Nodes are placed in ascending index order, so each cell's
// bucket slice is itself ascending.
//
//qntn:hotpath
func (g *pairGrid) finishBuild(n int) {
	ncells := int(g.dim) * int(g.dim) * int(g.dim)
	starts := g.starts[:ncells+1]
	for i := range starts {
		starts[i] = 0
	}
	for _, c := range g.cell[:n] {
		starts[c+1]++
	}
	for c := 1; c <= ncells; c++ {
		starts[c] += starts[c-1]
	}
	cursor := g.cursor[:ncells]
	copy(cursor, starts[:ncells])
	//qntn:coldpath amortized growth: capacity is stable across steps
	g.bucket = grow(g.bucket, n)
	for i := 0; i < n; i++ {
		c := g.cell[i]
		g.bucket[cursor[c]] = int32(i)
		cursor[c]++
	}
}

// neighborsAfter appends to dst every node j > i in the 3×3×3 cell
// neighborhood of node i's cell and returns the extended slice. Appended
// order is bucket order, not ascending — callers sort before emission.
//
//qntn:hotpath
func (g *pairGrid) neighborsAfter(i int32, dst []int32) []int32 {
	dim := g.dim
	c := g.cell[i]
	cx := c % dim
	cy := (c / dim) % dim
	cz := c / (dim * dim)
	x0, x1 := cx-1, cx+1
	if x0 < 0 {
		x0 = 0
	}
	if x1 > dim-1 {
		x1 = dim - 1
	}
	y0, y1 := cy-1, cy+1
	if y0 < 0 {
		y0 = 0
	}
	if y1 > dim-1 {
		y1 = dim - 1
	}
	z0, z1 := cz-1, cz+1
	if z0 < 0 {
		z0 = 0
	}
	if z1 > dim-1 {
		z1 = dim - 1
	}
	for z := z0; z <= z1; z++ {
		for y := y0; y <= y1; y++ {
			row := (z*dim + y) * dim
			lo := g.starts[row+x0]
			hi := g.starts[row+x1+1]
			for _, j := range g.bucket[lo:hi] {
				if j > i {
					//qntn:coldpath amortized growth: scratch capacity is stable
					dst = append(dst, j)
				}
			}
		}
	}
	return dst
}

// insertionSortI32 sorts s ascending in place without allocating. Candidate
// gathers are small (tens of entries), where insertion sort beats the
// allocation and indirection of sort.Slice.
//
//qntn:hotpath
func insertionSortI32(s []int32) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
