package qntn

import (
	"fmt"

	"qntn/internal/quantum"
)

// PathFidelity converts the per-hop transmissivities of a routed path into
// the end-to-end Bell-pair fidelity under the given source-placement model,
// using the closed forms of the amplitude-damping channel.
//
// For SourceAtBestSplit the source sits between two contiguous path
// segments; each photon accumulates the product of its segment's
// transmissivities as amplitude damping, and the split maximizing fidelity
// is chosen (physically: the source rides the relay platform, as on
// Micius). For SourceAtEndpoint a single photon traverses every hop.
func PathFidelity(etas []float64, model FidelityModel) float64 {
	if len(etas) == 0 {
		return 1
	}
	switch model {
	case SourceAtEndpoint:
		return quantum.AnalyticBellFidelity(product(etas))
	case SourceAtBestSplit:
		best := 0.0
		for split := 0; split <= len(etas); split++ {
			f := quantum.AnalyticBellFidelityBothArms(product(etas[:split]), product(etas[split:]))
			if f > best {
				best = f
			}
		}
		return best
	default:
		return quantum.AnalyticBellFidelity(product(etas))
	}
}

// PathFidelityExact performs the same computation by explicit density
// matrix evolution — preparing |Φ+><Φ+| and applying the per-hop
// amplitude-damping Kraus operators of the paper's Eq. (3)-(4) to the
// appropriate arm(s) — and measures the fidelity of Eq. (5) (root
// convention). It is the slow oracle used to validate PathFidelity.
func PathFidelityExact(etas []float64, model FidelityModel) (float64, error) {
	if len(etas) == 0 {
		return 1, nil
	}
	switch model {
	case SourceAtEndpoint:
		rho := quantum.PhiPlus().Density()
		for _, eta := range etas {
			var err error
			rho, err = quantum.DampBellArm(rho, eta)
			if err != nil {
				return 0, err
			}
		}
		return quantum.BellFidelity(rho), nil
	case SourceAtBestSplit:
		best := 0.0
		for split := 0; split <= len(etas); split++ {
			rho := quantum.PhiPlus().Density()
			// Left segment damps qubit 0, right segment damps qubit 1.
			for _, eta := range etas[:split] {
				ad, err := quantum.AmplitudeDamping(eta)
				if err != nil {
					return 0, err
				}
				rho = ad.OnQubit(0, 2).Apply(rho)
			}
			for _, eta := range etas[split:] {
				ad, err := quantum.AmplitudeDamping(eta)
				if err != nil {
					return 0, err
				}
				rho = ad.OnQubit(1, 2).Apply(rho)
			}
			if f := quantum.BellFidelity(rho); f > best {
				best = f
			}
		}
		return best, nil
	default:
		return 0, fmt.Errorf("qntn: unknown fidelity model %v", model)
	}
}

func product(xs []float64) float64 {
	p := 1.0
	for _, x := range xs {
		p *= x
	}
	return p
}
