package qntn

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"qntn/internal/netsim"
	"qntn/internal/routing"
	"qntn/internal/stats"
)

// runArrivalsReference is the retired event-heap implementation of
// RunArrivals, kept verbatim as the differential oracle for the pooled
// fast-path rewrite: fresh sc.Graph per topology update, netsim.Simulator
// event ordering, per-update Dijkstra memo. The only additions are the
// RequestsEvaluated counter and serve-site immediate classification, both
// of which are provably identical to the old accounting under the heap's
// update-before-arrival tie order.
func runArrivalsReference(sc *Scenario, cfg ArrivalConfig) (*ArrivalResult, error) {
	if cfg.Horizon <= 0 {
		cfg.Horizon = 24 * time.Hour
	}
	res := &ArrivalResult{Config: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))
	wl, err := NewWorkload(sc, cfg.Seed+1)
	if err != nil {
		return nil, err
	}

	sim := netsim.NewSimulator()
	var simErr error

	var graph *routing.Graph
	var dijkstraMemo map[string]*routing.SingleSourceResult
	var queue []queuedRequest
	var waits, fids []float64

	refreshTopology := func(s *netsim.Simulator) bool {
		g, err := sc.Graph(s.Now())
		if err != nil {
			simErr = err
			s.Stop()
			return false
		}
		graph = g
		dijkstraMemo = make(map[string]*routing.SingleSourceResult)
		return true
	}

	tryServe := func(now time.Duration, q queuedRequest, onArrival bool) (bool, error) {
		res.RequestsEvaluated++
		src := q.req.Src
		sp, ok := dijkstraMemo[src]
		if !ok {
			var err error
			sp, err = routing.Dijkstra(graph, src, routing.InverseEtaCost(sc.Params.RoutingEpsilon))
			if err != nil {
				return false, err
			}
			dijkstraMemo[src] = sp
		}
		if math.IsInf(sp.Dist[q.req.Dst], 1) {
			return false, nil
		}
		path, err := sp.PathTo(q.req.Dst)
		if err != nil {
			return false, err
		}
		etas, err := graph.EdgeEtas(path)
		if err != nil {
			return false, err
		}
		wait := now - q.arrived
		res.Served++
		if onArrival {
			res.ServedImmediately++
		}
		waits = append(waits, wait.Seconds())
		if wait > res.MaxWait {
			res.MaxWait = wait
		}
		fids = append(fids, PathFidelity(etas, sc.Params.FidelityModel))
		return true, nil
	}

	step := sc.Params.TopologyStep()
	if err := sim.ScheduleEvery(0, step, cfg.Horizon, "topology-update", func(s *netsim.Simulator) {
		if !refreshTopology(s) {
			return
		}
		remaining := queue[:0]
		for _, q := range queue {
			ok, err := tryServe(s.Now(), q, false)
			if err != nil {
				simErr = err
				s.Stop()
				return
			}
			if !ok {
				remaining = append(remaining, q)
			}
		}
		queue = remaining
	}); err != nil {
		return nil, err
	}

	meanGapS := 3600 / cfg.RatePerHour
	for at := time.Duration(0); ; {
		gap := time.Duration(rng.ExpFloat64() * meanGapS * float64(time.Second))
		at += gap
		if at >= cfg.Horizon {
			break
		}
		if err := sim.Schedule(at, "arrival", func(s *netsim.Simulator) {
			res.Arrivals++
			q := queuedRequest{req: wl.Next(), arrived: s.Now()}
			ok, err := tryServe(s.Now(), q, true)
			if err != nil {
				simErr = err
				s.Stop()
				return
			}
			if !ok {
				queue = append(queue, q)
				if len(queue) > res.MaxQueueDepth {
					res.MaxQueueDepth = len(queue)
				}
			}
		}); err != nil {
			return nil, err
		}
	}

	if err := sim.Run(cfg.Horizon); err != nil {
		return nil, err
	}
	if simErr != nil {
		return nil, simErr
	}
	res.MeanWait = secs(stats.Mean(waits))
	res.MeanFidelity = stats.Mean(fids)
	res.EventsProcessed = sim.Processed
	return res, nil
}

// TestRunArrivalsMatchesReference is the migration gate: the merged-loop
// fast path must reproduce the event-heap reference bit for bit — every
// counter, every wait and fidelity aggregate — across architectures,
// seeds, and a fault-decorated link model.
func TestRunArrivalsMatchesReference(t *testing.T) {
	faulted := DefaultParams()
	faulted.Fault.Seed = 11
	faulted.Fault.SatMTBF = 6 * time.Hour
	faulted.Fault.SatMTTR = 20 * time.Minute

	cases := []struct {
		name  string
		build func() (*Scenario, error)
		cfg   ArrivalConfig
	}{
		{
			name:  "air-ground",
			build: func() (*Scenario, error) { return NewAirGround(DefaultParams()) },
			cfg:   ArrivalConfig{RatePerHour: 240, Horizon: 90 * time.Minute, Seed: 3},
		},
		{
			name:  "space-ground-36",
			build: func() (*Scenario, error) { return NewSpaceGround(36, DefaultParams()) },
			cfg:   ArrivalConfig{RatePerHour: 90, Horizon: 2 * time.Hour, Seed: 7},
		},
		{
			name:  "space-ground-faulted",
			build: func() (*Scenario, error) { return NewSpaceGround(54, faulted) },
			cfg:   ArrivalConfig{RatePerHour: 120, Horizon: time.Hour, Seed: 21},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			got, err := sc.RunArrivals(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := runArrivalsReference(sc, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("fast path diverged from reference:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestRunArrivalsZeroStepInterval pins the cadence fallback: a zero
// StepInterval on hand-mutated params used to feed ScheduleEvery a
// degenerate interval and error out; it must now fall back to the 30 s
// default through Params.TopologyStep like every other run path.
func TestRunArrivalsZeroStepInterval(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sc.Params.StepInterval = 0
	cfg := ArrivalConfig{RatePerHour: 120, Horizon: 30 * time.Minute, Seed: 4}
	res, err := sc.RunArrivals(cfg)
	if err != nil {
		t.Fatalf("zero step interval should fall back, got error: %v", err)
	}
	// 30 s cadence over 30 min: 61 updates (0..horizon inclusive) plus the
	// arrivals.
	if got := res.EventsProcessed - res.Arrivals; got != 61 {
		t.Fatalf("expected 61 topology updates under the fallback cadence, got %d", got)
	}

	// The fallback must match an explicit 30 s interval bit for bit.
	sc.Params.StepInterval = 30 * time.Second
	want, err := sc.RunArrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("fallback cadence diverged from explicit 30 s interval:\n got %+v\nwant %+v", res, want)
	}
}

// TestArrivalImmediateClassificationBoundary pins the serve-site
// classification on the case the old wait==0 predicate got wrong: a queued
// request drained at the exact instant it arrived has zero wait but was
// not served on arrival.
func TestArrivalImmediateClassificationBoundary(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	src := sc.GroundIDs[sc.LANs[0].Name][0]
	dst := sc.GroundIDs[sc.LANs[1].Name][0]

	ad := newAdmission(sc)
	at := 30 * time.Second
	if err := ad.refresh(at, nil); err != nil {
		t.Fatal(err)
	}

	// A request that entered the queue at t and is drained at the same t:
	// zero wait, but served by the drain loop.
	ad.queue = append(ad.queue, queuedRequest{req: netsim.Request{ID: 1, Src: src, Dst: dst}, arrived: at})
	served, err := ad.drain(at)
	if err != nil {
		t.Fatal(err)
	}
	if served != 1 || ad.served != 1 {
		t.Fatalf("drain should serve the queued request, served %d", served)
	}
	if ad.maxWait != 0 || ad.waits[0] != 0 {
		t.Fatalf("boundary request should record zero wait, got %v", ad.maxWait)
	}
	if ad.immediate != 0 {
		t.Fatal("queued request drained at its arrival instant counted as immediate")
	}

	// The same pair served by the arrival handler is immediate.
	if err := ad.arrive(at, netsim.Request{ID: 2, Src: src, Dst: dst}); err != nil {
		t.Fatal(err)
	}
	if ad.served != 2 || ad.immediate != 1 {
		t.Fatalf("arrival-handler serve should be immediate: served %d immediate %d", ad.served, ad.immediate)
	}
}
