package qntn

import (
	"math"
	"testing"
	"time"
)

func TestAirGroundFullCoverage(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Coverage(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Percent(); math.Abs(got-100) > 1e-9 {
		t.Fatalf("air-ground coverage %.2f%%, want 100%%", got)
	}
	if len(res.Intervals) != 1 {
		t.Fatalf("air-ground coverage should be one contiguous interval, got %d", len(res.Intervals))
	}
	if res.Intervals[0].Start != 0 || res.Intervals[0].End != time.Hour {
		t.Fatalf("interval %+v", res.Intervals[0])
	}
	if res.Steps != 120 || res.CoveredSteps != 120 {
		t.Fatalf("steps %d/%d", res.CoveredSteps, res.Steps)
	}
}

func TestSpaceGroundPartialCoverage(t *testing.T) {
	sc, err := NewSpaceGround(108, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Coverage(2 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	pct := res.Percent()
	if pct <= 0 || pct >= 100 {
		t.Fatalf("space-ground 2h coverage %.2f%% should be partial", pct)
	}
	// Interval bookkeeping must be self-consistent.
	var sum time.Duration
	for i, iv := range res.Intervals {
		if iv.End <= iv.Start {
			t.Fatalf("interval %d is degenerate: %+v", i, iv)
		}
		if i > 0 && iv.Start < res.Intervals[i-1].End {
			t.Fatalf("intervals overlap: %+v then %+v", res.Intervals[i-1], iv)
		}
		sum += iv.Duration()
	}
	if sum != res.Covered {
		t.Fatalf("interval sum %v != covered %v", sum, res.Covered)
	}
	if res.Covered != time.Duration(res.CoveredSteps)*sc.Params.StepInterval {
		t.Fatal("covered duration inconsistent with covered steps")
	}
}

func TestSmallConstellationLowCoverage(t *testing.T) {
	// 6 satellites cannot out-cover 108.
	p := DefaultParams()
	small, err := NewSpaceGround(6, p)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewSpaceGround(108, p)
	if err != nil {
		t.Fatal(err)
	}
	const window = 3 * time.Hour
	smallCov, err := small.Coverage(window)
	if err != nil {
		t.Fatal(err)
	}
	bigCov, err := big.Coverage(window)
	if err != nil {
		t.Fatal(err)
	}
	if smallCov.Percent() > bigCov.Percent() {
		t.Fatalf("6 sats cover %.2f%% > 108 sats %.2f%%", smallCov.Percent(), bigCov.Percent())
	}
}

func TestCoverageRejectsBadDuration(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Coverage(0); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := sc.Coverage(-time.Hour); err == nil {
		t.Fatal("negative duration accepted")
	}
}

func TestBridgedRequiresRelays(t *testing.T) {
	// With no relays the ground LANs are mutually isolated.
	p := DefaultParams()
	sc, err := NewSpaceGround(6, p)
	if err != nil {
		t.Fatal(err)
	}
	// Find a time when no satellite covers Tennessee; scan for one.
	found := false
	for at := time.Duration(0); at < 12*time.Hour; at += 10 * time.Minute {
		g, err := sc.Graph(at)
		if err != nil {
			t.Fatal(err)
		}
		if !sc.Bridged(g) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("6-satellite constellation appears always bridged — implausible")
	}
}

func TestCoveragePercentZeroTotal(t *testing.T) {
	if (CoverageResult{}).Percent() != 0 {
		t.Fatal("zero-total coverage should report 0%")
	}
}

func TestIntervalDuration(t *testing.T) {
	iv := Interval{Start: time.Minute, End: 3 * time.Minute}
	if iv.Duration() != 2*time.Minute {
		t.Fatal("interval duration wrong")
	}
}
