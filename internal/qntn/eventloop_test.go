package qntn

import (
	"reflect"
	"testing"
	"time"

	"qntn/internal/routing"
)

// edgeSet flattens a graph's edges into an ID-keyed map, so graphs built
// with different node insertion histories compare by content.
func edgeSet(g *routing.Graph) map[[2]string]float64 {
	ids := g.Nodes()
	m := make(map[[2]string]float64)
	g.EachEdge(func(i, j int, eta float64) {
		a, b := ids[i], ids[j]
		if a > b {
			a, b = b, a
		}
		m[[2]string{a, b}] = eta
	})
	return m
}

// TestEventEngineDeltaMatchesRebuild is the delta-application regression:
// after an arbitrary event sequence — window opens and closes, platform
// outages, weather spans, darkness boundaries — the engine's incrementally
// maintained graph must equal a from-scratch GraphInto rebuild at every
// step, edge for edge and bit for bit in the transmissivities.
func TestEventEngineDeltaMatchesRebuild(t *testing.T) {
	p := faultyParams(5)
	p.RequireDarkness = true
	sc, err := NewSpaceGround(12, p)
	if err != nil {
		t.Fatal(err)
	}
	duration := 8 * time.Hour
	grid := coverageGrid(p.StepInterval, duration)
	eng, err := sc.newEventEngine(grid)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ref := routing.NewGraph()
	for k := 0; k < grid.steps; k++ {
		if err := eng.runStep(k); err != nil {
			t.Fatal(err)
		}
		if err := sc.GraphInto(ref, grid.at(k)); err != nil {
			t.Fatal(err)
		}
		got, want := edgeSet(eng.g), edgeSet(ref)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d (t=%v): delta-applied graph diverged from rebuild\n got %d edges: %v\nwant %d edges: %v",
				k, grid.at(k), len(got), got, len(want), want)
		}
	}
	if eng.g.NumNodes() != ref.NumNodes() {
		t.Fatalf("node count diverged: engine %d, rebuild %d", eng.g.NumNodes(), ref.NumNodes())
	}
}

// TestStepGapSharedDefinition pins the single step-gap definition all three
// serve drivers (stepped, event-driven, DES) derive their sample instants
// from, including the StepInterval fallback when Horizon/Steps underflows.
func TestStepGapSharedDefinition(t *testing.T) {
	p := DefaultParams()
	cases := []struct {
		name string
		cfg  ServeConfig
		gap  time.Duration
	}{
		{"exact division", ServeConfig{RequestsPerStep: 1, Steps: 10, Horizon: 300 * time.Second}, 30 * time.Second},
		{"default horizon", ServeConfig{RequestsPerStep: 1, Steps: 24}, time.Hour},
		{"underflow fallback", ServeConfig{RequestsPerStep: 1, Steps: 10, Horizon: 5 * time.Nanosecond}, p.StepInterval},
	}
	for _, c := range cases {
		if gap := c.cfg.stepGap(p); gap != c.gap {
			t.Errorf("%s: stepGap = %v, want %v", c.name, gap, c.gap)
		}
		times := c.cfg.sampleTimes(p)
		if len(times) != c.cfg.Steps {
			t.Errorf("%s: %d sample times, want %d", c.name, len(times), c.cfg.Steps)
		}
		for k, at := range times {
			if at != time.Duration(k)*c.gap {
				t.Errorf("%s: sample %d at %v, want %v", c.name, k, at, time.Duration(k)*c.gap)
			}
		}
	}
}

// TestServeDESSamplesAllSteps is the off-by-one drift regression: when the
// Horizon/Steps division underflows and the StepInterval fallback pushes
// the sample instants past the horizon, every driver must still evaluate
// all Steps samples — RunServeDES once derived the gap locally and silently
// dropped every sample beyond the horizon.
func TestServeDESSamplesAllSteps(t *testing.T) {
	p := fastSweepParams()
	sc, err := NewSpaceGround(6, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ServeConfig{RequestsPerStep: 2, Steps: 10, Horizon: 5 * time.Nanosecond, Seed: 1}
	wantOutcomes := cfg.RequestsPerStep * cfg.Steps
	times := cfg.sampleTimes(p)

	des, err := sc.RunServeDES(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(des.Metrics.Outcomes); got != wantOutcomes {
		t.Fatalf("RunServeDES recorded %d outcomes, want %d (samples dropped past the horizon)", got, wantOutcomes)
	}
	serve, err := sc.RunServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(serve.Metrics.Outcomes); got != wantOutcomes {
		t.Fatalf("RunServe recorded %d outcomes, want %d", got, wantOutcomes)
	}
	for i, out := range serve.Metrics.Outcomes {
		if at := times[i/cfg.RequestsPerStep]; out.At != at {
			t.Fatalf("RunServe outcome %d at %v, want sample instant %v", i, out.At, at)
		}
	}
	for i, out := range des.Metrics.Outcomes {
		if at := times[i/cfg.RequestsPerStep]; out.At != at {
			t.Fatalf("RunServeDES outcome %d at %v, want sample instant %v", i, out.At, at)
		}
	}

	// The event-driven path derives its grid from the same definition and
	// must reproduce the stepped result on the degenerate horizon too.
	pe := p
	pe.EventDriven = true
	sce, err := NewSpaceGround(6, pe)
	if err != nil {
		t.Fatal(err)
	}
	gotE, err := sce.RunServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotE, serve) {
		t.Fatalf("event-driven serve diverged on the fallback grid\n got: %+v\nwant: %+v", gotE, serve)
	}
}
