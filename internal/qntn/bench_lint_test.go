package qntn

import (
	"testing"

	"qntn/internal/lint"
)

// BenchmarkQntnlint measures the full linter pipeline over the module —
// `go list`, parsing, type-checking, cross-package fact computation and
// all analyzers — i.e. the same work one `make lint` run does. Tracking it
// alongside the simulation benchmarks keeps the cost of the pre-commit
// gate visible as the tree and the analyzer suite grow.
func BenchmarkQntnlint(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	var m allocMeter
	m.start()
	for i := 0; i < b.N; i++ {
		pkgs, err := lint.Load("qntn/...")
		if err != nil {
			b.Fatal(err)
		}
		diags, err := lint.RunAnalyzers(pkgs, lint.All())
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("qntnlint reported %d diagnostics on the tree; first: %+v", len(diags), diags[0])
		}
	}
	allocs, bytes := m.stop()
	recordSweepBench(b, "Qntnlint", 1, allocs, bytes)
}
