package qntn

import (
	"strings"
	"testing"
	"time"
)

func TestWaitingTimesAirGroundZero(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.WaitingTimes(WaitingConfig{Arrivals: 200, Horizon: time.Hour, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.ServedPercent != 100 || res.ImmediatePercent != 100 {
		t.Fatalf("air-ground should serve everything immediately: %+v", res)
	}
	if res.MeanWait != 0 || res.MaxWait != 0 {
		t.Fatalf("air-ground wait should be zero: %+v", res)
	}
}

func TestWaitingTimesSpaceGround(t *testing.T) {
	sc, err := NewSpaceGround(108, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.WaitingTimes(WaitingConfig{Arrivals: 300, Horizon: 3 * time.Hour, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Roughly half the arrivals land inside a coverage window.
	if res.ImmediatePercent < 20 || res.ImmediatePercent > 90 {
		t.Fatalf("immediate service %.2f%% implausible", res.ImmediatePercent)
	}
	if res.ImmediatePercent >= res.ServedPercent+1e-9 {
		t.Fatal("immediate cannot exceed served")
	}
	// Gaps between passes are minutes-scale at 108 satellites.
	if res.MeanWait <= 0 || res.MeanWait > time.Hour {
		t.Fatalf("mean wait %v implausible", res.MeanWait)
	}
	if res.MedianWait > res.P95Wait || res.P95Wait > res.MaxWait {
		t.Fatalf("wait quantiles out of order: %+v", res)
	}
}

// TestWaitingTimesSingleLANError is the regression test for the
// rand.Intn(0) panic: a scenario with fewer than two LANs has no pairs to
// draw arrivals for and must fail with a descriptive error, not crash.
func TestWaitingTimesSingleLANError(t *testing.T) {
	sc, err := assembleTrusted(AirGround, DefaultParams(), GroundNetworks()[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.WaitingTimes(WaitingConfig{Arrivals: 10, Horizon: time.Hour, Seed: 1})
	if err == nil {
		t.Fatalf("single-LAN waiting experiment succeeded: %+v", res)
	}
	if !strings.Contains(err.Error(), "LAN pair") || !strings.Contains(err.Error(), "1 local network") {
		t.Errorf("error %q should name the missing LAN pairs and the LAN count", err)
	}
}

// TestWaitUntilCoveredBoundaries pins the half-open interval semantics at
// the exact boundary instants: an arrival at iv.Start is served
// immediately, an arrival at iv.End has already missed the pass.
func TestWaitUntilCoveredBoundaries(t *testing.T) {
	intervals := []Interval{
		{Start: 10 * time.Minute, End: 20 * time.Minute},
		{Start: 40 * time.Minute, End: 50 * time.Minute},
	}
	cases := []struct {
		name     string
		at       time.Duration
		wantWait time.Duration
		wantOK   bool
	}{
		{"before first", 0, 10 * time.Minute, true},
		{"at start", 10 * time.Minute, 0, true},
		{"inside", 15 * time.Minute, 0, true},
		{"last covered instant", 20*time.Minute - 1, 0, true},
		{"at end", 20 * time.Minute, 20 * time.Minute, true},
		{"in gap", 30 * time.Minute, 10 * time.Minute, true},
		{"at second start", 40 * time.Minute, 0, true},
		{"at second end", 50 * time.Minute, 0, false},
		{"past everything", time.Hour, 0, false},
	}
	for _, tc := range cases {
		wait, ok := waitUntilCovered(intervals, tc.at)
		if wait != tc.wantWait || ok != tc.wantOK {
			t.Errorf("%s: waitUntilCovered(%v) = (%v, %v), want (%v, %v)",
				tc.name, tc.at, wait, ok, tc.wantWait, tc.wantOK)
		}
	}
	if wait, ok := waitUntilCovered(nil, 0); wait != 0 || ok {
		t.Errorf("no intervals: got (%v, %v), want (0, false)", wait, ok)
	}
}

func TestWaitingTimesFewerSatellitesWaitLonger(t *testing.T) {
	p := DefaultParams()
	small, err := NewSpaceGround(24, p)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewSpaceGround(108, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := WaitingConfig{Arrivals: 300, Horizon: 3 * time.Hour, Seed: 7}
	rs, err := small.WaitingTimes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := big.WaitingTimes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rs.MeanWait <= rb.MeanWait {
		t.Fatalf("24 sats wait %v not above 108 sats %v", rs.MeanWait, rb.MeanWait)
	}
	if rs.ImmediatePercent >= rb.ImmediatePercent {
		t.Fatalf("24 sats immediate %.1f%% not below 108 sats %.1f%%", rs.ImmediatePercent, rb.ImmediatePercent)
	}
}

func TestWaitUntilCovered(t *testing.T) {
	ivs := []Interval{
		{Start: 10 * time.Minute, End: 20 * time.Minute},
		{Start: 40 * time.Minute, End: 50 * time.Minute},
	}
	cases := []struct {
		at   time.Duration
		wait time.Duration
		ok   bool
	}{
		{0, 10 * time.Minute, true},
		{10 * time.Minute, 0, true},
		{15 * time.Minute, 0, true},
		{20 * time.Minute, 20 * time.Minute, true}, // end is exclusive
		{45 * time.Minute, 0, true},
		{50 * time.Minute, 0, false},
		{time.Hour, 0, false},
	}
	for _, c := range cases {
		wait, ok := waitUntilCovered(ivs, c.at)
		if wait != c.wait || ok != c.ok {
			t.Errorf("at %v: got (%v,%v), want (%v,%v)", c.at, wait, ok, c.wait, c.ok)
		}
	}
	if _, ok := waitUntilCovered(nil, 0); ok {
		t.Error("no intervals should mean never covered")
	}
}

func TestWaitingTimesRejectsBadConfig(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.WaitingTimes(WaitingConfig{Arrivals: 0}); err == nil {
		t.Fatal("zero arrivals accepted")
	}
}
