package qntn

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"qntn/internal/netsim"
	"qntn/internal/orbit"
)

// FuzzLoadParams exercises the JSON parameter loader: it must never panic,
// and anything it accepts must validate and survive a save/load round
// trip.
func FuzzLoadParams(f *testing.F) {
	var buf bytes.Buffer
	if err := SaveParams(&buf, DefaultParams()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("{}")
	f.Add(`{"wavelength_nm": 532}`)
	f.Add(`{"fidelity_model": "nonsense"}`)
	f.Add("not json at all")

	f.Fuzz(func(t *testing.T, in string) {
		p, err := LoadParams(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("LoadParams accepted invalid params: %v", err)
		}
		var out bytes.Buffer
		if err := SaveParams(&out, p); err != nil {
			t.Fatalf("save of accepted params failed: %v", err)
		}
		if _, err := LoadParams(&out); err != nil {
			t.Fatalf("round trip of accepted params failed: %v", err)
		}
	})
}

// approxEq allows the relative rounding the codec's unit conversions
// (nm↔m, deg↔rad, km↔m, s↔Duration) may introduce — about one ulp per
// multiply, nowhere near the factor-10³ error of a unit mix-up.
func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return diff <= 1e-9*scale
}

// paramsSemanticallyEqual compares every field of two Params: floats within
// approxEq, durations within 2 ns (the s↔ns conversion error bound for
// day-scale values), everything discrete exactly.
func paramsSemanticallyEqual(t *testing.T, a, b Params) {
	t.Helper()
	durationType := reflect.TypeOf(time.Duration(0))
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	for i := 0; i < va.NumField(); i++ {
		name := va.Type().Field(i).Name
		fa, fb := va.Field(i), vb.Field(i)
		switch {
		case fa.Kind() == reflect.Float64:
			if !approxEq(fa.Float(), fb.Float()) {
				t.Errorf("%s: %v != %v after round trip", name, fa.Float(), fb.Float())
			}
		case fa.Type() == durationType:
			if d := fa.Int() - fb.Int(); d < -2 || d > 2 {
				t.Errorf("%s: %v != %v after round trip", name, time.Duration(fa.Int()), time.Duration(fb.Int()))
			}
		case fa.Kind() == reflect.Ptr: // *atmosphere.HufnagelValley
			if fa.IsNil() != fb.IsNil() {
				t.Errorf("%s: nil-ness changed after round trip", name)
			} else if !fa.IsNil() {
				for j := 0; j < fa.Elem().NumField(); j++ {
					if !approxEq(fa.Elem().Field(j).Float(), fb.Elem().Field(j).Float()) {
						t.Errorf("%s.%s: %v != %v after round trip", name, fa.Elem().Type().Field(j).Name,
							fa.Elem().Field(j).Float(), fb.Elem().Field(j).Float())
					}
				}
			}
		case fa.Kind() == reflect.Struct: // fault.Config
			for j := 0; j < fa.NumField(); j++ {
				sa, sb := fa.Field(j), fb.Field(j)
				sname := name + "." + fa.Type().Field(j).Name
				switch {
				case sa.Kind() == reflect.Float64:
					if !approxEq(sa.Float(), sb.Float()) {
						t.Errorf("%s: %v != %v after round trip", sname, sa.Float(), sb.Float())
					}
				case sa.Type() == durationType:
					if d := sa.Int() - sb.Int(); d < -2 || d > 2 {
						t.Errorf("%s: %v != %v after round trip", sname, time.Duration(sa.Int()), time.Duration(sb.Int()))
					}
				default:
					if sa.Interface() != sb.Interface() {
						t.Errorf("%s: %v != %v after round trip", sname, sa.Interface(), sb.Interface())
					}
				}
			}
		default: // bool, int64 seed, FidelityModel enum
			if fa.Interface() != fb.Interface() {
				t.Errorf("%s: %v != %v after round trip", name, fa.Interface(), fb.Interface())
			}
		}
	}
}

// FuzzParamsRoundTrip drives the Params codec with structured inputs: any
// parameter set that validates must survive save → load with every field
// semantically intact (unit conversions may cost ulps, never meaning).
func FuzzParamsRoundTrip(f *testing.F) {
	f.Add(1550.0, 30.0, 5.0, int64(1), true)
	f.Add(810.0, 20.0, 120.0, int64(-7), false)
	f.Add(532.0, 0.5, 0.5, int64(0), true)

	f.Fuzz(func(t *testing.T, wavelengthNM, minElevDeg, stepS float64, seed int64, j2 bool) {
		// Gate the fuzzed magnitudes to physically meaningful ranges so the
		// unit conversions stay in exact float territory (a 10^300 step
		// interval overflows time.Duration before the codec ever sees it).
		if !(wavelengthNM > 0 && wavelengthNM < 1e5) ||
			!(minElevDeg >= 0 && minElevDeg < 90) ||
			!(stepS > 0 && stepS < 1e6) {
			return
		}
		p := DefaultParams()
		p.WavelengthM = wavelengthNM * 1e-9
		p.MinElevationRad = minElevDeg / degPerRad
		p.StepInterval = time.Duration(stepS * float64(time.Second))
		p.OutageSeed = seed
		p.UseJ2 = j2
		if p.Validate() != nil {
			return
		}
		var buf bytes.Buffer
		if err := SaveParams(&buf, p); err != nil {
			t.Fatalf("save: %v", err)
		}
		p2, err := LoadParams(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("load of saved params failed: %v\n%s", err, buf.String())
		}
		paramsSemanticallyEqual(t, p, p2)
	})
}

// FuzzProtocolParamsRoundTrip drives the entanglement-protocol block of the
// Params codec: any protocol configuration that validates — including the
// all-zero disabled one, which must stay omitted from the JSON — survives
// save → load with the discrete fields exact and the T2 duration within the
// s↔ns conversion error.
func FuzzProtocolParamsRoundTrip(f *testing.F) {
	f.Add(0.0, 0.0, 0, int64(0))        // disabled: the byte-identity default
	f.Add(0.02, 0.85, 3, int64(5))      // the differential suite's mix
	f.Add(0.0, 1.0, 0, int64(0))        // deterministic swaps, ideal memories
	f.Add(1e-9, 0.5, 64, int64(-1))     // tiny T2, max purify budget
	f.Add(86400.0, 0.001, 1, int64(42)) // day-scale T2, lossy swaps

	f.Fuzz(func(t *testing.T, t2S, swapSuccess float64, purifyPaths int, seed int64) {
		if !(t2S >= 0 && t2S < 1e7) {
			return
		}
		p := DefaultParams()
		p.Protocol.MemoryT2 = time.Duration(t2S * float64(time.Second))
		p.Protocol.SwapSuccess = swapSuccess
		p.Protocol.PurifyPaths = purifyPaths
		p.Protocol.Seed = seed
		if p.Validate() != nil {
			return
		}
		var buf bytes.Buffer
		if err := SaveParams(&buf, p); err != nil {
			t.Fatalf("save: %v", err)
		}
		if !p.Protocol.Enabled() && bytes.Contains(buf.Bytes(), []byte("protocol")) {
			t.Fatalf("disabled protocol config serialized:\n%s", buf.String())
		}
		p2, err := LoadParams(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("load of saved params failed: %v\n%s", err, buf.String())
		}
		if p2.Protocol.Enabled() != p.Protocol.Enabled() {
			t.Fatalf("protocol enablement changed: %v -> %v", p.Protocol.Enabled(), p2.Protocol.Enabled())
		}
		paramsSemanticallyEqual(t, p, p2)
	})
}

// FuzzServeConfigRoundTrip: any workload the ServeConfig codec accepts must
// survive save → load with the discrete fields exact and the horizon within
// the s↔ns conversion error.
func FuzzServeConfigRoundTrip(f *testing.F) {
	f.Add(100, 100, 86400.0, int64(1))
	f.Add(1, 1, 0.0, int64(-42))
	f.Add(7, 3, 1.5, int64(0))

	f.Fuzz(func(t *testing.T, requests, steps int, horizonS float64, seed int64) {
		if !(horizonS >= 0 && horizonS < 1e7) {
			return
		}
		cfg := ServeConfig{
			RequestsPerStep: requests,
			Steps:           steps,
			Horizon:         time.Duration(horizonS * float64(time.Second)),
			Seed:            seed,
		}
		if cfg.validate() != nil {
			return
		}
		var buf bytes.Buffer
		if err := SaveServeConfig(&buf, cfg); err != nil {
			t.Fatalf("save: %v", err)
		}
		cfg2, err := LoadServeConfig(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("load of saved config failed: %v\n%s", err, buf.String())
		}
		if cfg2.RequestsPerStep != cfg.RequestsPerStep || cfg2.Steps != cfg.Steps || cfg2.Seed != cfg.Seed {
			t.Fatalf("discrete fields changed: %+v -> %+v", cfg, cfg2)
		}
		if d := cfg2.Horizon - cfg.Horizon; d < -2 || d > 2 {
			t.Fatalf("horizon drifted %v -> %v", cfg.Horizon, cfg2.Horizon)
		}
	})
}

// FuzzVisibilityWindow perturbs the constellation's epoch and orbital
// elements — the phase offset shifts every satellite along its orbit and
// rotates its plane, which is how an epoch change expresses itself through
// two-body elements — and requires the event-driven engine to agree with
// the stepped oracle at every sample instant. DetailedCoverage carries the
// per-step interval structure and the link-transition count, so DeepEqual
// equality pins each instant's connectivity, not just the aggregate.
func FuzzVisibilityWindow(f *testing.F) {
	// Corpus: the snapshot-equivalence archetype sizes up to the paper's
	// 108-satellite Table II geometry, J2 on one entry to seed the dense
	// pairwise scan next to the analytic arcs.
	f.Add(uint8(1), 500.0, 53.0, 0.0, 30.0, false)
	f.Add(uint8(4), 500.0, 53.0, 0.01, 60.0, false)
	f.Add(uint8(9), 550.0, 60.0, -0.02, 120.0, true)
	f.Add(uint8(18), 500.0, 53.0, 0.003, 300.0, false)

	f.Fuzz(func(t *testing.T, planes uint8, altKm, incDeg, phaseRad, stepS float64, j2 bool) {
		n := int(planes) * 6
		if n < 6 || n > orbit.MaxPaperSatellites {
			return
		}
		if !(altKm >= 300 && altKm <= 2000) || !(incDeg >= 1 && incDeg <= 179) {
			return
		}
		if !(stepS >= 1 && stepS <= 3600) || !(math.Abs(phaseRad) <= math.Pi) {
			return
		}
		p := DefaultParams()
		p.Turbulence = nil
		p.SatelliteAltitudeM = altKm * 1e3
		p.InclinationDeg = incDeg
		p.StepInterval = time.Duration(stepS * float64(time.Second))
		p.UseJ2 = j2
		elems, err := orbit.PaperConstellationWith(n, p.SatelliteAltitudeM, p.InclinationDeg)
		if err != nil {
			return
		}
		duration := 40 * p.StepInterval
		build := func(p Params) (*Scenario, error) {
			sats := make([]netsim.Node, len(elems))
			for i, e := range elems {
				e.ApplyJ2 = p.UseJ2
				e.TrueAnomalyRad += phaseRad
				e.RAANRad += phaseRad / 7
				sats[i] = netsim.NewSatelliteNode(fmt.Sprintf("SAT-%03d", i+1), e)
			}
			return assemble(SpaceGround, p, sats)
		}
		sc, err := build(p)
		if err != nil {
			return
		}
		pe := p
		pe.EventDriven = true
		sce, err := build(pe)
		if err != nil {
			t.Fatalf("event-driven build failed where stepped succeeded: %v", err)
		}
		want, err := sc.DetailedCoverage(duration)
		if err != nil {
			t.Fatalf("stepped coverage: %v", err)
		}
		got, err := sce.DetailedCoverage(duration)
		if err != nil {
			t.Fatalf("event-driven coverage: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("event-driven coverage diverged from stepped oracle\nplanes=%d alt=%.1fkm inc=%.1f phase=%g step=%gs j2=%v\n got: %+v\nwant: %+v",
				planes, altKm, incDeg, phaseRad, stepS, j2, got, want)
		}
	})
}
