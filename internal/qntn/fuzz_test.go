package qntn

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadParams exercises the JSON parameter loader: it must never panic,
// and anything it accepts must validate and survive a save/load round
// trip.
func FuzzLoadParams(f *testing.F) {
	var buf bytes.Buffer
	if err := SaveParams(&buf, DefaultParams()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("{}")
	f.Add(`{"wavelength_nm": 532}`)
	f.Add(`{"fidelity_model": "nonsense"}`)
	f.Add("not json at all")

	f.Fuzz(func(t *testing.T, in string) {
		p, err := LoadParams(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("LoadParams accepted invalid params: %v", err)
		}
		var out bytes.Buffer
		if err := SaveParams(&out, p); err != nil {
			t.Fatalf("save of accepted params failed: %v", err)
		}
		if _, err := LoadParams(&out); err != nil {
			t.Fatalf("round trip of accepted params failed: %v", err)
		}
	})
}
