package qntn

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

// FuzzLoadParams exercises the JSON parameter loader: it must never panic,
// and anything it accepts must validate and survive a save/load round
// trip.
func FuzzLoadParams(f *testing.F) {
	var buf bytes.Buffer
	if err := SaveParams(&buf, DefaultParams()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("{}")
	f.Add(`{"wavelength_nm": 532}`)
	f.Add(`{"fidelity_model": "nonsense"}`)
	f.Add("not json at all")

	f.Fuzz(func(t *testing.T, in string) {
		p, err := LoadParams(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("LoadParams accepted invalid params: %v", err)
		}
		var out bytes.Buffer
		if err := SaveParams(&out, p); err != nil {
			t.Fatalf("save of accepted params failed: %v", err)
		}
		if _, err := LoadParams(&out); err != nil {
			t.Fatalf("round trip of accepted params failed: %v", err)
		}
	})
}

// approxEq allows the relative rounding the codec's unit conversions
// (nm↔m, deg↔rad, km↔m, s↔Duration) may introduce — about one ulp per
// multiply, nowhere near the factor-10³ error of a unit mix-up.
func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return diff <= 1e-9*scale
}

// paramsSemanticallyEqual compares every field of two Params: floats within
// approxEq, durations within 2 ns (the s↔ns conversion error bound for
// day-scale values), everything discrete exactly.
func paramsSemanticallyEqual(t *testing.T, a, b Params) {
	t.Helper()
	durationType := reflect.TypeOf(time.Duration(0))
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	for i := 0; i < va.NumField(); i++ {
		name := va.Type().Field(i).Name
		fa, fb := va.Field(i), vb.Field(i)
		switch {
		case fa.Kind() == reflect.Float64:
			if !approxEq(fa.Float(), fb.Float()) {
				t.Errorf("%s: %v != %v after round trip", name, fa.Float(), fb.Float())
			}
		case fa.Type() == durationType:
			if d := fa.Int() - fb.Int(); d < -2 || d > 2 {
				t.Errorf("%s: %v != %v after round trip", name, time.Duration(fa.Int()), time.Duration(fb.Int()))
			}
		case fa.Kind() == reflect.Ptr: // *atmosphere.HufnagelValley
			if fa.IsNil() != fb.IsNil() {
				t.Errorf("%s: nil-ness changed after round trip", name)
			} else if !fa.IsNil() {
				for j := 0; j < fa.Elem().NumField(); j++ {
					if !approxEq(fa.Elem().Field(j).Float(), fb.Elem().Field(j).Float()) {
						t.Errorf("%s.%s: %v != %v after round trip", name, fa.Elem().Type().Field(j).Name,
							fa.Elem().Field(j).Float(), fb.Elem().Field(j).Float())
					}
				}
			}
		case fa.Kind() == reflect.Struct: // fault.Config
			for j := 0; j < fa.NumField(); j++ {
				sa, sb := fa.Field(j), fb.Field(j)
				sname := name + "." + fa.Type().Field(j).Name
				switch {
				case sa.Kind() == reflect.Float64:
					if !approxEq(sa.Float(), sb.Float()) {
						t.Errorf("%s: %v != %v after round trip", sname, sa.Float(), sb.Float())
					}
				case sa.Type() == durationType:
					if d := sa.Int() - sb.Int(); d < -2 || d > 2 {
						t.Errorf("%s: %v != %v after round trip", sname, time.Duration(sa.Int()), time.Duration(sb.Int()))
					}
				default:
					if sa.Interface() != sb.Interface() {
						t.Errorf("%s: %v != %v after round trip", sname, sa.Interface(), sb.Interface())
					}
				}
			}
		default: // bool, int64 seed, FidelityModel enum
			if fa.Interface() != fb.Interface() {
				t.Errorf("%s: %v != %v after round trip", name, fa.Interface(), fb.Interface())
			}
		}
	}
}

// FuzzParamsRoundTrip drives the Params codec with structured inputs: any
// parameter set that validates must survive save → load with every field
// semantically intact (unit conversions may cost ulps, never meaning).
func FuzzParamsRoundTrip(f *testing.F) {
	f.Add(1550.0, 30.0, 5.0, int64(1), true)
	f.Add(810.0, 20.0, 120.0, int64(-7), false)
	f.Add(532.0, 0.5, 0.5, int64(0), true)

	f.Fuzz(func(t *testing.T, wavelengthNM, minElevDeg, stepS float64, seed int64, j2 bool) {
		// Gate the fuzzed magnitudes to physically meaningful ranges so the
		// unit conversions stay in exact float territory (a 10^300 step
		// interval overflows time.Duration before the codec ever sees it).
		if !(wavelengthNM > 0 && wavelengthNM < 1e5) ||
			!(minElevDeg >= 0 && minElevDeg < 90) ||
			!(stepS > 0 && stepS < 1e6) {
			return
		}
		p := DefaultParams()
		p.WavelengthM = wavelengthNM * 1e-9
		p.MinElevationRad = minElevDeg / degPerRad
		p.StepInterval = time.Duration(stepS * float64(time.Second))
		p.OutageSeed = seed
		p.UseJ2 = j2
		if p.Validate() != nil {
			return
		}
		var buf bytes.Buffer
		if err := SaveParams(&buf, p); err != nil {
			t.Fatalf("save: %v", err)
		}
		p2, err := LoadParams(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("load of saved params failed: %v\n%s", err, buf.String())
		}
		paramsSemanticallyEqual(t, p, p2)
	})
}

// FuzzServeConfigRoundTrip: any workload the ServeConfig codec accepts must
// survive save → load with the discrete fields exact and the horizon within
// the s↔ns conversion error.
func FuzzServeConfigRoundTrip(f *testing.F) {
	f.Add(100, 100, 86400.0, int64(1))
	f.Add(1, 1, 0.0, int64(-42))
	f.Add(7, 3, 1.5, int64(0))

	f.Fuzz(func(t *testing.T, requests, steps int, horizonS float64, seed int64) {
		if !(horizonS >= 0 && horizonS < 1e7) {
			return
		}
		cfg := ServeConfig{
			RequestsPerStep: requests,
			Steps:           steps,
			Horizon:         time.Duration(horizonS * float64(time.Second)),
			Seed:            seed,
		}
		if cfg.validate() != nil {
			return
		}
		var buf bytes.Buffer
		if err := SaveServeConfig(&buf, cfg); err != nil {
			t.Fatalf("save: %v", err)
		}
		cfg2, err := LoadServeConfig(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("load of saved config failed: %v\n%s", err, buf.String())
		}
		if cfg2.RequestsPerStep != cfg.RequestsPerStep || cfg2.Steps != cfg.Steps || cfg2.Seed != cfg.Seed {
			t.Fatalf("discrete fields changed: %+v -> %+v", cfg, cfg2)
		}
		if d := cfg2.Horizon - cfg.Horizon; d < -2 || d > 2 {
			t.Fatalf("horizon drifted %v -> %v", cfg.Horizon, cfg2.Horizon)
		}
	})
}
