package qntn

import (
	"fmt"
	"math"

	"qntn/internal/channel"
	"qntn/internal/geo"
	"qntn/internal/netsim"
	"qntn/internal/orbit"
)

// ExtendedNetworks returns the paper's three LANs plus three synthetic
// metropolitan LANs (Nashville, Memphis, Knoxville) used by the statewide
// extension study — the paper's stated goal is that the QNTN analysis
// "pave the way for other networks".
func ExtendedNetworks() []LocalNetwork {
	extra := []LocalNetwork{
		{
			Name: "NASH", // Nashville
			Nodes: []geo.LLA{
				{LatDeg: 36.1627, LonDeg: -86.7816},
				{LatDeg: 36.1650, LonDeg: -86.7840},
				{LatDeg: 36.1605, LonDeg: -86.7790},
				{LatDeg: 36.1680, LonDeg: -86.7770},
			},
		},
		{
			Name: "MEM", // Memphis
			Nodes: []geo.LLA{
				{LatDeg: 35.1495, LonDeg: -90.0490},
				{LatDeg: 35.1520, LonDeg: -90.0520},
				{LatDeg: 35.1470, LonDeg: -90.0455},
				{LatDeg: 35.1545, LonDeg: -90.0470},
			},
		},
		{
			Name: "KNOX", // Knoxville
			Nodes: []geo.LLA{
				{LatDeg: 35.9606, LonDeg: -83.9207},
				{LatDeg: 35.9630, LonDeg: -83.9235},
				{LatDeg: 35.9585, LonDeg: -83.9180},
				{LatDeg: 35.9655, LonDeg: -83.9190},
			},
		},
	}
	return append(GroundNetworks(), extra...)
}

// NewMultiHAP assembles an air-ground scenario over the given LANs with one
// HAP per position (all at Params.HAPAltM unless the position carries its
// own altitude).
func NewMultiHAP(p Params, lans []LocalNetwork, positions []geo.LLA) (*Scenario, error) {
	if len(positions) == 0 {
		return nil, fmt.Errorf("qntn: multi-HAP scenario needs at least one platform")
	}
	relays := make([]netsim.Node, 0, len(positions))
	for i, pos := range positions {
		if pos.AltM == 0 {
			pos.AltM = p.HAPAltM
		}
		relays = append(relays, netsim.NewHAPNode(fmt.Sprintf("HAP-%d", i+1), pos))
	}
	return NewCustomScenario(AirGround, p, lans, relays)
}

// NewExtendedSpaceGround assembles the space-ground architecture over the
// extended statewide LAN set.
func NewExtendedSpaceGround(nSats int, p Params) (*Scenario, error) {
	elems, err := orbit.PaperConstellationWith(nSats, p.SatelliteAltitudeM, p.InclinationDeg)
	if err != nil {
		return nil, err
	}
	sats := make([]netsim.Node, len(elems))
	for i, e := range elems {
		sats[i] = netsim.NewSatelliteNode(fmt.Sprintf("SAT-%03d", i+1), e)
	}
	return NewCustomScenario(SpaceGround, p, ExtendedNetworks(), sats)
}

// hapServes reports whether a HAP at pos can hold a usable link to every
// node of the LAN (elevation mask + transmissivity threshold, downlink
// budget).
func hapServes(p Params, cfg channel.FSOConfig, pos geo.LLA, lan LocalNetwork) bool {
	for _, node := range lan.Nodes {
		look := geo.Look(node, pos.ECEF())
		if look.ElevationRad < p.MinElevationRad {
			return false
		}
		eta := cfg.Transmissivity(channel.FSOGeometry{
			RangeM:       look.SlantRangeM,
			ElevationRad: look.ElevationRad,
			LoAltM:       node.AltM,
			HiAltM:       pos.AltM,
		})
		if eta < p.TransmissivityThreshold {
			return false
		}
	}
	return true
}

// PlacementResult describes an optimized HAP fleet.
type PlacementResult struct {
	Positions []geo.LLA
	// ConnectedPairs counts LAN pairs joined by the fleet (directly or
	// through LANs shared between platforms).
	ConnectedPairs int
	// TotalPairs is the number of LAN pairs.
	TotalPairs int
}

// PlaceHAPs greedily positions up to maxHAPs platforms (altitude
// Params.HAPAltM) over the bounding box of the LANs, maximizing the number
// of LAN pairs connected through the fleet. Candidates are evaluated on a
// grid with the given spacing in degrees. The greedy loop stops early once
// every pair is connected.
func PlaceHAPs(p Params, lans []LocalNetwork, maxHAPs int, gridStepDeg float64) (*PlacementResult, error) {
	if maxHAPs <= 0 {
		return nil, fmt.Errorf("qntn: need a positive HAP budget")
	}
	if gridStepDeg <= 0 {
		return nil, fmt.Errorf("qntn: need a positive grid step")
	}
	if len(lans) < 2 {
		return nil, fmt.Errorf("qntn: need at least two LANs")
	}
	cfg := p.HAPDownlinkFSO()

	// Candidate grid over the (slightly padded) LAN bounding box.
	minLat, maxLat := math.Inf(1), math.Inf(-1)
	minLon, maxLon := math.Inf(1), math.Inf(-1)
	for _, lan := range lans {
		for _, n := range lan.Nodes {
			minLat, maxLat = math.Min(minLat, n.LatDeg), math.Max(maxLat, n.LatDeg)
			minLon, maxLon = math.Min(minLon, n.LonDeg), math.Max(maxLon, n.LonDeg)
		}
	}
	const padDeg = 0.3
	minLat, maxLat = minLat-padDeg, maxLat+padDeg
	minLon, maxLon = minLon-padDeg, maxLon+padDeg

	// For every candidate, the set of LANs it serves (bitmask).
	type candidate struct {
		pos    geo.LLA
		serves uint64
	}
	var candidates []candidate
	for lat := minLat; lat <= maxLat; lat += gridStepDeg {
		for lon := minLon; lon <= maxLon; lon += gridStepDeg {
			pos := geo.LLA{LatDeg: lat, LonDeg: lon, AltM: p.HAPAltM}
			var mask uint64
			for li, lan := range lans {
				if hapServes(p, cfg, pos, lan) {
					mask |= 1 << uint(li)
				}
			}
			if bitsSet(mask) >= 2 { // useless unless it joins something
				candidates = append(candidates, candidate{pos: pos, serves: mask})
			}
		}
	}

	totalPairs := len(lans) * (len(lans) - 1) / 2
	res := &PlacementResult{TotalPairs: totalPairs}
	chosen := make([]uint64, 0, maxHAPs)
	for len(res.Positions) < maxHAPs {
		best := -1
		bestGain := 0
		for ci, c := range candidates {
			gain := connectedPairs(append(chosen, c.serves), len(lans)) - connectedPairs(chosen, len(lans))
			if gain > bestGain {
				bestGain = gain
				best = ci
			}
		}
		if best < 0 {
			break // no candidate improves connectivity
		}
		res.Positions = append(res.Positions, candidates[best].pos)
		chosen = append(chosen, candidates[best].serves)
		if connectedPairs(chosen, len(lans)) == totalPairs {
			break
		}
	}
	res.ConnectedPairs = connectedPairs(chosen, len(lans))
	if len(res.Positions) == 0 {
		return nil, fmt.Errorf("qntn: no HAP position serves two LANs (grid step %g°)", gridStepDeg)
	}
	return res, nil
}

// connectedPairs counts LAN pairs joined through the fleet: two LANs are
// connected when some chain of platforms (linked by shared LANs) touches
// both.
func connectedPairs(serves []uint64, nLAN int) int {
	uf := newUnionFind(nLAN)
	for _, mask := range serves {
		first := -1
		for li := 0; li < nLAN; li++ {
			if mask&(1<<uint(li)) == 0 {
				continue
			}
			if first < 0 {
				first = li
			} else {
				uf.union(first, li)
			}
		}
	}
	count := 0
	for i := 0; i < nLAN; i++ {
		for j := i + 1; j < nLAN; j++ {
			if uf.find(i) == uf.find(j) {
				count++
			}
		}
	}
	return count
}

func bitsSet(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
