package qntn

import (
	"fmt"
	"time"

	"qntn/internal/netsim"
	"qntn/internal/orbit"
	"qntn/internal/routing"
	"qntn/internal/telemetry"
)

// Interval is a half-open time span [Start, End) during which the regional
// network is fully bridged.
type Interval struct {
	Start time.Duration
	End   time.Duration
}

// Duration returns End - Start.
func (iv Interval) Duration() time.Duration { return iv.End - iv.Start }

// CoverageResult reports the paper's Eq. (6)-(7) coverage metrics for one
// architecture over one simulated period.
type CoverageResult struct {
	// Intervals are the connected spans (Eq. 6's k-intervals).
	Intervals []Interval
	// Covered is T_c, the summed duration of the intervals.
	Covered time.Duration
	// Total is the simulated period (T_day in the paper).
	Total time.Duration
	// Steps and CoveredSteps count topology evaluations.
	Steps        int
	CoveredSteps int
}

// Percent returns P = T_c / T_total × 100 (Eq. 7).
func (r CoverageResult) Percent() float64 {
	if r.Total <= 0 {
		return 0
	}
	return 100 * float64(r.Covered) / float64(r.Total)
}

// Bridged reports whether every pair of local networks is connected in the
// given topology snapshot: for every LAN pair (i, j) some node of i reaches
// some node of j. Because each LAN is internally fiber-connected, this is
// equivalent to all three LANs lying in one connected component, which is
// what the union-find below checks.
func (sc *Scenario) Bridged(g *routing.Graph) bool {
	return sc.bridgedInto(&unionFind{}, g)
}

// bridgedInto is Bridged with a caller-owned union-find, so per-step
// callers (Coverage, DetailedCoverage) reuse one scratch across snapshots.
func (sc *Scenario) bridgedInto(uf *unionFind, g *routing.Graph) bool {
	uf.ensure(g.NumNodes())
	g.EachEdge(func(i, j int, _ float64) { uf.union(i, j) })
	// All LANs must share one component (via any of their nodes; LAN
	// nodes are mutually fiber-connected so the first node suffices, but
	// we check every node defensively in case a LAN is internally split).
	root := -1
	for _, lan := range sc.LANs {
		ids := sc.GroundIDs[lan.Name]
		if len(ids) == 0 {
			return false
		}
		i0, ok := g.IndexOf(ids[0])
		if !ok {
			return false
		}
		r := uf.find(i0)
		for _, id := range ids[1:] {
			ii, ok := g.IndexOf(id)
			if !ok || uf.find(ii) != r {
				return false // LAN internally disconnected (or absent)
			}
		}
		if root == -1 {
			root = r
		} else if r != root {
			return false
		}
	}
	return true
}

// Coverage simulates the scenario for the given duration, updating the
// topology every Params.StepInterval (the paper's 30 s satellite movement
// step) through the discrete-event simulator, and returns the Eq. (6)-(7)
// coverage metrics. Each covered step contributes one step interval to T_c.
func (sc *Scenario) Coverage(duration time.Duration) (*CoverageResult, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("qntn: non-positive coverage duration %v", duration)
	}
	if sc.Params.EventDriven && sc.tel == nil {
		return sc.coverageEventDriven(duration)
	}
	step := sc.Params.StepInterval
	res := &CoverageResult{Total: duration}
	sim := netsim.NewSimulator()
	// One graph and one union-find are reused across every topology step.
	g := routing.NewGraph()
	uf := &unionFind{}
	tel := sc.tel
	var label string
	if tel != nil {
		label = sc.coverageLabel()
	}
	stepIndex := 0
	var simErr error
	err := sim.ScheduleEvery(0, step, duration-step, "topology-update", func(s *netsim.Simulator) {
		var st netsim.SnapshotStats
		if tel != nil {
			if err := sc.Net.SnapshotIntoStats(g, s.Now(), &st); err != nil {
				simErr = err
				s.Stop()
				return
			}
		} else if err := sc.GraphInto(g, s.Now()); err != nil {
			simErr = err
			s.Stop()
			return
		}
		covered := sc.bridgedInto(uf, g)
		accumulate(res, s.Now(), step, covered)
		if tel != nil {
			tel.coverageSteps.Inc()
			if covered {
				tel.coverageCovered.Inc()
			}
			sc.recordStepEvent(label, stepIndex, s.Now(), &st, func(e *telemetry.Event) {
				e.Covered = covered
			})
			stepIndex++
		}
	})
	if err != nil {
		return nil, err
	}
	if err := sim.Run(duration); err != nil {
		return nil, err
	}
	if simErr != nil {
		return nil, simErr
	}
	return res, nil
}

// FullDayCoverage runs Coverage over the paper's 24-hour horizon.
func (sc *Scenario) FullDayCoverage() (*CoverageResult, error) {
	return sc.Coverage(orbit.Day)
}

// unionFind is a plain disjoint-set with path halving and union by size.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

// ensure resizes the union-find to exactly n fresh singleton elements,
// reusing the backing arrays when possible.
func (uf *unionFind) ensure(n int) {
	if cap(uf.parent) < n {
		uf.parent = make([]int, n)
		uf.size = make([]int, n)
	}
	uf.parent = uf.parent[:n]
	uf.size = uf.size[:n]
	uf.reset(n)
}

// copyFrom makes uf an exact copy of src (same parents and sizes), reusing
// uf's backing arrays. The event engine uses it to restore a precomputed
// "fiber-only" union-find template each step instead of re-unioning the
// static fiber edges.
func (uf *unionFind) copyFrom(src *unionFind) {
	n := len(src.parent)
	if cap(uf.parent) < n {
		uf.parent = make([]int, n)
		uf.size = make([]int, n)
	}
	uf.parent = uf.parent[:n]
	uf.size = uf.size[:n]
	copy(uf.parent, src.parent)
	copy(uf.size, src.size)
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}
