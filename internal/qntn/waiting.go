package qntn

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"qntn/internal/stats"
)

// WaitingConfig parameterizes the queueing extension: the paper assumes
// infinite queue capacity and instant service while in range; this
// experiment quantifies what that queue actually costs — how long a
// request arriving at a random time waits until its LAN pair is bridged.
type WaitingConfig struct {
	// Arrivals is the number of requests, arriving uniformly at random
	// over the horizon.
	Arrivals int
	// Horizon is the observation period (default one day).
	Horizon time.Duration
	Seed    int64
}

// DefaultWaitingConfig matches the paper's workload scale.
func DefaultWaitingConfig() WaitingConfig {
	return WaitingConfig{Arrivals: 1000, Horizon: 24 * time.Hour, Seed: 1}
}

// WaitingResult summarizes queueing delay for one scenario.
type WaitingResult struct {
	Config WaitingConfig
	// ImmediatePercent is the fraction of requests served on arrival
	// (their LAN pair already bridged).
	ImmediatePercent float64
	// ServedPercent counts requests eventually served within the horizon
	// (unserved ones wait past the end and are censored).
	ServedPercent float64
	// Wait statistics over served requests, in seconds.
	MeanWait   time.Duration
	MedianWait time.Duration
	P95Wait    time.Duration
	MaxWait    time.Duration
}

// WaitingTimes runs the queueing experiment: per-pair coverage intervals
// are computed once, then each synthetic arrival waits for the next
// interval covering its pair.
func (sc *Scenario) WaitingTimes(cfg WaitingConfig) (*WaitingResult, error) {
	if cfg.Arrivals <= 0 {
		return nil, fmt.Errorf("qntn: waiting experiment needs positive arrivals")
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 24 * time.Hour
	}
	detail, err := sc.DetailedCoverage(cfg.Horizon)
	if err != nil {
		return nil, err
	}
	intervalsByPair := make(map[[2]string][]Interval, len(detail.Pairs))
	for _, p := range detail.Pairs {
		intervalsByPair[[2]string{p.NetworkA, p.NetworkB}] = p.Result.Intervals
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	pairs := make([][2]string, 0, len(intervalsByPair))
	for _, p := range detail.Pairs {
		pairs = append(pairs, [2]string{p.NetworkA, p.NetworkB})
	}
	// A scenario with fewer than two LANs yields no pairs; drawing an
	// arrival's pair would panic with rand.Intn(0).
	if len(pairs) == 0 {
		return nil, fmt.Errorf("qntn: waiting experiment needs at least one LAN pair, scenario has %d local network(s)", len(sc.LANs))
	}

	var waits []float64
	immediate, served := 0, 0
	for i := 0; i < cfg.Arrivals; i++ {
		at := time.Duration(rng.Int63n(int64(cfg.Horizon)))
		pair := pairs[rng.Intn(len(pairs))]
		wait, ok := waitUntilCovered(intervalsByPair[pair], at)
		if !ok {
			continue // censored: no coverage until the horizon
		}
		served++
		if wait == 0 {
			immediate++
		}
		waits = append(waits, wait.Seconds())
	}

	res := &WaitingResult{Config: cfg}
	res.ServedPercent = 100 * float64(served) / float64(cfg.Arrivals)
	res.ImmediatePercent = 100 * float64(immediate) / float64(cfg.Arrivals)
	if len(waits) > 0 {
		res.MeanWait = secs(stats.Mean(waits))
		res.MedianWait = secs(stats.Percentile(waits, 50))
		res.P95Wait = secs(stats.Percentile(waits, 95))
		sorted := append([]float64(nil), waits...)
		sort.Float64s(sorted)
		res.MaxWait = secs(sorted[len(sorted)-1])
	}
	return res, nil
}

// waitUntilCovered returns how long an arrival at `at` waits until the pair
// is covered, and false if no covering interval begins before the horizon
// ends.
func waitUntilCovered(intervals []Interval, at time.Duration) (time.Duration, bool) {
	for _, iv := range intervals {
		if at < iv.Start {
			return iv.Start - at, true
		}
		if at < iv.End {
			return 0, true
		}
	}
	return 0, false
}

func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
