package qntn

import (
	"reflect"
	"testing"
	"time"
)

// TestWorkloadSameSeedIdentical pins the determinism contract that the
// detrand analyzer enforces structurally: all randomness flows through
// injected seeded generators, so two workloads built from the same seed
// must emit byte-identical request streams.
func TestWorkloadSameSeedIdentical(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	a := mustWorkload(t, sc, 42).Batch(500)
	b := mustWorkload(t, sc, 42).Batch(500)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed workloads diverged")
	}
	c := mustWorkload(t, sc, 43).Batch(500)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical workloads; seed is not wired through")
	}
}

// TestRunArrivalsSameSeedIdentical runs the full arrival-driven experiment
// twice with one config and requires identical results — queue dynamics,
// waits, fidelities, event counts, everything.
func TestRunArrivalsSameSeedIdentical(t *testing.T) {
	sc, err := NewAirGround(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ArrivalConfig{RatePerHour: 240, Horizon: 90 * time.Minute, Seed: 7}
	r1, err := sc.RunArrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sc.RunArrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same-seed arrival runs diverged:\n%+v\n%+v", r1, r2)
	}
}
