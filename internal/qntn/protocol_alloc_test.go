package qntn

import (
	"reflect"
	"testing"
	"time"

	"qntn/internal/netsim"
	"qntn/internal/quantum/protocol"
	"qntn/internal/routing"
)

// protoTestConfig is the enabled protocol mix the white-box tests use.
func protoTestConfig() protocol.Config {
	return protocol.Config{
		MemoryT2:    20 * time.Millisecond,
		SwapSuccess: 0.85,
		PurifyPaths: 3,
		Seed:        5,
	}
}

// TestProtocolZeroHopBypass is the zero-hop regression: a request routed
// over a single edge — same-LAN fiber, or two directly linked ground
// stations — performs no swaps, waits zero time in memory, and keeps
// exactly the seed model's fidelity. An implementation that charged the
// 2L/c heralding wait and a swap loop to a direct route would dephase a
// pair that never sits in memory; this pins the bypass.
func TestProtocolZeroHopBypass(t *testing.T) {
	g := routing.NewGraph()
	if err := g.AddEdge("lanA-host", "lanA-switch", 0.92); err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Protocol = protoTestConfig()
	sc := &Scenario{Params: p}
	pe := sc.newProtoEval()
	if pe == nil {
		t.Fatal("protocol enabled but newProtoEval returned nil")
	}
	path := []string{"lanA-host", "lanA-switch"}
	req := netsim.Request{ID: 3, Src: path[0], Dst: path[1]}
	po, err := pe.outcome(g, path, req, 90*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !po.served {
		t.Fatal("zero-hop route must always serve: no swaps to fail")
	}
	etas := []float64{0.92}
	if want := PathFidelity(etas, p.FidelityModel); po.fidelity != want {
		t.Fatalf("zero-hop fidelity %v != seed model fidelity %v — bypass dephased or swapped a direct pair", po.fidelity, want)
	}
	if po.primaryEta != 0.92 {
		t.Fatalf("zero-hop eta %v != edge eta", po.primaryEta)
	}
	if po.swapAttempts != 0 || po.swapFailures != 0 || po.purifyRounds != 0 || po.purifyAccepted != 0 {
		t.Fatalf("zero-hop route consumed draws: %+v", po)
	}
}

// protoTestAttempt is one routable request at a found topology instant.
type protoTestAttempt struct {
	req  netsim.Request
	path []string
}

// protoTestTopology scans the day for the first topology instant with
// multi-hop routable workload requests — satellite passes are intermittent,
// so a fixed instant can land in a gap — and returns it with its routes and
// the routable batch.
func protoTestTopology(t *testing.T, sc *Scenario) (time.Duration, *routing.Graph, []protoTestAttempt) {
	t.Helper()
	for at := time.Duration(0); at < 24*time.Hour; at += 5 * time.Minute {
		tables, g, err := sc.Routes(at)
		if err != nil {
			t.Fatal(err)
		}
		wl, err := NewWorkload(sc, 7)
		if err != nil {
			t.Fatal(err)
		}
		var attempts []protoTestAttempt
		for _, req := range wl.Batch(50) {
			if !tables.Reachable(req.Src, req.Dst) {
				continue
			}
			path, err := tables.Path(req.Src, req.Dst)
			if err != nil {
				t.Fatal(err)
			}
			if len(path) > 2 { // multi-hop: the full pipeline, not the bypass
				attempts = append(attempts, protoTestAttempt{req, path})
			}
		}
		if len(attempts) > 0 {
			return at, g, attempts
		}
	}
	t.Fatal("no instant of the day has a multi-hop routable request")
	return 0, nil, nil
}

// TestProtocolOutcomeDeterministic: repeated evaluation of the same request
// at the same instant is identical (same draws), while a different instant
// redraws independently — the property that lets a queued request retry.
func TestProtocolOutcomeDeterministic(t *testing.T) {
	p := DefaultParams()
	p.Protocol = protoTestConfig()
	sc, err := NewSpaceGround(24, p)
	if err != nil {
		t.Fatal(err)
	}
	at, g, attempts := protoTestTopology(t, sc)
	pe := sc.newProtoEval()
	fresh := sc.newProtoEval()
	for _, a := range attempts {
		first, err := pe.outcome(g, a.path, a.req, at)
		if err != nil {
			t.Fatal(err)
		}
		second, err := pe.outcome(g, a.path, a.req, at)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("request %d: reused evaluator diverged: %+v vs %+v", a.req.ID, first, second)
		}
		viaFresh, err := fresh.outcome(g, a.path, a.req, at)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, viaFresh) {
			t.Fatalf("request %d: fresh evaluator diverged: %+v vs %+v", a.req.ID, first, viaFresh)
		}
	}
}

// TestProtocolOutcomeZeroAllocs: the per-request protocol evaluation —
// disjoint extraction, swap chain, dephasing, distillation — must be
// allocation-free once the evaluator's buffers are warm, so the pooled
// GraphInto/SnapshotInto serving fast path survives protocol enablement.
func TestProtocolOutcomeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector bookkeeping allocates; AllocsPerRun is meaningless")
	}
	p := DefaultParams()
	p.Protocol = protoTestConfig()
	sc, err := NewSpaceGround(24, p)
	if err != nil {
		t.Fatal(err)
	}
	at, g, attempts := protoTestTopology(t, sc)
	pe := sc.newProtoEval()
	for _, a := range attempts { // warm every buffer across path shapes
		if _, err := pe.outcome(g, a.path, a.req, at); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(20, func() {
		for _, a := range attempts {
			if _, err := pe.outcome(g, a.path, a.req, at); err != nil {
				t.Fatal(err)
			}
		}
	}); n != 0 {
		t.Fatalf("warm protocol evaluation allocates %v times per batch", n)
	}
}
