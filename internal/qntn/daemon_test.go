package qntn

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"qntn/internal/telemetry"
)

// testClock is a deterministic wall clock advancing one second per read,
// so throughput gauges get a nonzero elapsed time without real sleeping.
func testClock() func() time.Time {
	var ticks int
	return func() time.Time {
		ticks++
		return time.Unix(int64(ticks), 0)
	}
}

func newTestDaemon(t *testing.T) *Daemon {
	t.Helper()
	d, err := NewDaemon(DefaultParams(), testClock())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func postTraffic(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/traffic", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestDaemonMatchesLibrary is the daemon-vs-library equivalence gate on a
// fixed query set: the NDJSON body a daemon query streams must be byte
// identical to instrumenting the equivalent scenario in process and
// flushing its event sink — including space-ground queries, which the
// daemon serves from the shared ephemeris cache rather than a fresh
// propagation.
func TestDaemonMatchesLibrary(t *testing.T) {
	d := newTestDaemon(t)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	queries := []struct {
		body  string
		build func() (*Scenario, error)
		cfg   TrafficConfig
	}{
		{
			body:  `{"arch":"space-ground","satellites":36,"rate_per_hour_per_site":10,"diurnal_amplitude":0.5,"peak_hour":18,"horizon":"1h","seed":4,"workers":2}`,
			build: func() (*Scenario, error) { return NewSpaceGround(36, DefaultParams()) },
			cfg: TrafficConfig{
				RatePerHourPerSite: 10,
				Diurnal:            DiurnalProfile{Amplitude: 0.5, PeakHour: 18},
				Horizon:            time.Hour,
				Seed:               4,
				Workers:            2,
			},
		},
		{
			body:  `{"arch":"air-ground","rate_per_hour_per_site":6,"horizon":"45m","seed":11}`,
			build: func() (*Scenario, error) { return NewAirGround(DefaultParams()) },
			cfg:   TrafficConfig{RatePerHourPerSite: 6, Horizon: 45 * time.Minute, Seed: 11},
		},
	}
	for _, q := range queries {
		resp := postTraffic(t, srv.URL, q.body)
		gotBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %s: status %d: %s", q.body, resp.StatusCode, gotBody)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("content type %q", ct)
		}

		sc, err := q.build()
		if err != nil {
			t.Fatal(err)
		}
		col := telemetry.NewCollector()
		sc.Instrument(col)
		res, err := sc.RunTraffic(q.cfg)
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := col.Events.WriteNDJSON(&want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBody, want.Bytes()) {
			t.Fatalf("query %s: daemon NDJSON diverged from library run", q.body)
		}
		if got := resp.Header.Get("X-Qntn-Requests-Evaluated"); got == "" || got == "0" {
			t.Fatalf("missing requests-evaluated header, got %q", got)
		}
		events, err := telemetry.ReadNDJSON(bytes.NewReader(gotBody))
		if err != nil {
			t.Fatalf("daemon stream fails the strict reader: %v", err)
		}
		if len(events) != res.Steps {
			t.Fatalf("expected one event per step (%d), got %d", res.Steps, len(events))
		}
	}

	// Identical queries replay byte-identically across daemon calls.
	first := postTraffic(t, srv.URL, queries[0].body)
	b1, _ := io.ReadAll(first.Body)
	first.Body.Close()
	second := postTraffic(t, srv.URL, queries[0].body)
	b2, _ := io.ReadAll(second.Body)
	second.Body.Close()
	if !bytes.Equal(b1, b2) {
		t.Fatal("repeated daemon query diverged")
	}
}

// TestDaemonMetrics exercises /metrics and /healthz: query totals, the
// merged per-query engine counters, and the throughput gauge all surface
// in Prometheus text format.
func TestDaemonMetrics(t *testing.T) {
	d := newTestDaemon(t)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	resp := postTraffic(t, srv.URL, `{"arch":"air-ground","rate_per_hour_per_site":12,"horizon":"30m","seed":1}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traffic query status %d", resp.StatusCode)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", mresp.StatusCode)
	}
	text := string(metrics)
	for _, want := range []string{
		"qntn_daemon_queries_total 1",
		"qntn_daemon_query_errors_total 0",
		"qntn_daemon_requests_evaluated_total",
		"qntn_daemon_requests_evaluated_per_sec",
		"qntn_daemon_inflight_queries 0",
		// Folded in from the per-query collector.
		"qntn_snapshot_steps_total",
		"qntn_requests_served_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	if d.RequestsEvaluated() == 0 {
		t.Fatal("daemon evaluated counter never advanced")
	}

	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || string(hb) != "ok\n" {
		t.Fatalf("/healthz: %d %q", hresp.StatusCode, hb)
	}
}

// TestDaemonRejectsBadQueries covers the 4xx surface: malformed JSON,
// unknown fields (strict decoding), unknown architectures, bad horizons
// and invalid traffic shapes — all recorded on the error counter.
func TestDaemonRejectsBadQueries(t *testing.T) {
	d := newTestDaemon(t)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	bad := []string{
		`{`,
		`{"arch":"air-ground","rate_per_hour_per_site":10,"bogus":1}`,
		`{"arch":"submarine","rate_per_hour_per_site":10}`,
		`{"arch":"air-ground","rate_per_hour_per_site":10,"horizon":"soon"}`,
		`{"arch":"air-ground","rate_per_hour_per_site":0}`,
		`{"arch":"space-ground","satellites":0,"rate_per_hour_per_site":10}`,
		`{"arch":"air-ground","rate_per_hour_per_site":10,"diurnal_amplitude":1.5}`,
	}
	for _, body := range bad {
		resp := postTraffic(t, srv.URL, body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("query %s: status %d, want 400", body, resp.StatusCode)
		}
	}
	if got := d.reg.Counter("daemon_query_errors_total").Value(); got != uint64(len(bad)) {
		t.Fatalf("error counter %d, want %d", got, len(bad))
	}

	// GET on the traffic route is method-not-allowed, not a panic.
	resp, err := http.Get(srv.URL + "/v1/traffic")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/traffic: status %d", resp.StatusCode)
	}
}

// TestDaemonSharedEphemerisCache pins the cross-request cache: two
// space-ground queries with one horizon propagate the catalog once, and a
// different horizon builds a second cache entry.
func TestDaemonSharedEphemerisCache(t *testing.T) {
	propagations := 0
	propagationHook = func(int) { propagations++ }
	defer func() { propagationHook = nil }()

	d := newTestDaemon(t)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	for _, body := range []string{
		`{"arch":"space-ground","satellites":24,"rate_per_hour_per_site":5,"horizon":"30m","seed":1}`,
		`{"arch":"space-ground","satellites":108,"rate_per_hour_per_site":5,"horizon":"30m","seed":2}`,
	} {
		resp := postTraffic(t, srv.URL, body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	if propagations != 1 {
		t.Fatalf("expected one catalog propagation for a shared horizon, got %d", propagations)
	}

	resp := postTraffic(t, srv.URL, `{"arch":"space-ground","satellites":24,"rate_per_hour_per_site":5,"horizon":"45m","seed":1}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if propagations != 2 {
		t.Fatalf("expected a second propagation for a new horizon, got %d", propagations)
	}
}

// TestDaemonGracefulDrain pins the shutdown contract `qntnsim serve-daemon`
// relies on: http.Server.Shutdown (the SIGTERM path) waits for an
// in-flight query to stream its full response before returning.
func TestDaemonGracefulDrain(t *testing.T) {
	d := newTestDaemon(t)
	srv := httptest.NewServer(d.Handler())
	// No deferred Close: Shutdown below is the teardown under test.

	type result struct {
		status int
		body   []byte
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/traffic", "application/json",
			strings.NewReader(`{"arch":"space-ground","satellites":54,"rate_per_hour_per_site":20,"horizon":"2h","seed":3}`))
		if err != nil {
			done <- result{err: err}
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		done <- result{status: resp.StatusCode, body: body, err: err}
	}()

	// Let the query reach the handler, then drain.
	for i := 0; i < 1000 && d.reg.Counter("daemon_queries_total").Value() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Config.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}

	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight query failed during drain: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight query status %d", r.status)
	}
	if _, err := telemetry.ReadNDJSON(bytes.NewReader(r.body)); err != nil {
		t.Fatalf("drained response truncated: %v", err)
	}
}
