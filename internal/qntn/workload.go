package qntn

import (
	"fmt"
	"math/rand"

	"qntn/internal/netsim"
)

// Workload generates the paper's request pattern: uniformly random
// entanglement distribution requests whose source and destination lie in
// different local networks.
type Workload struct {
	rng    *rand.Rand
	ids    []string // all ground IDs
	lanOf  map[string]string
	nextID int
}

// NewWorkload builds a deterministic workload generator over the scenario's
// ground hosts. Every request is inter-LAN, so the scenario must contribute
// ground hosts from at least two local networks: with none, Next would
// panic in rand.Intn(0), and with a single LAN it would spin forever
// rejecting intra-LAN draws — both now surface as a constructor error (the
// mirror of the WaitingTimes guard).
func NewWorkload(sc *Scenario, seed int64) (*Workload, error) {
	w := &Workload{
		rng:   rand.New(rand.NewSource(seed)),
		lanOf: make(map[string]string),
	}
	lans := make(map[string]bool)
	for _, lan := range sc.LANs {
		for _, id := range sc.GroundIDs[lan.Name] {
			w.ids = append(w.ids, id)
			w.lanOf[id] = lan.Name
			lans[lan.Name] = true
		}
	}
	if len(lans) < 2 {
		return nil, fmt.Errorf("qntn: workload needs ground hosts in at least two local networks, scenario has %d host(s) across %d network(s)", len(w.ids), len(lans))
	}
	return w, nil
}

// Next returns one inter-LAN request.
func (w *Workload) Next() netsim.Request {
	for {
		src := w.ids[w.rng.Intn(len(w.ids))]
		dst := w.ids[w.rng.Intn(len(w.ids))]
		if w.lanOf[src] == w.lanOf[dst] {
			continue
		}
		w.nextID++
		return netsim.Request{ID: w.nextID, Src: src, Dst: dst}
	}
}

// Batch returns n inter-LAN requests.
func (w *Workload) Batch(n int) []netsim.Request {
	reqs := make([]netsim.Request, n)
	for i := range reqs {
		reqs[i] = w.Next()
	}
	return reqs
}

// Validate checks a request against the scenario's inter-LAN constraint.
func (w *Workload) Validate(r netsim.Request) error {
	sl, ok1 := w.lanOf[r.Src]
	dl, ok2 := w.lanOf[r.Dst]
	if !ok1 || !ok2 {
		return fmt.Errorf("qntn: request %d references unknown host", r.ID)
	}
	if sl == dl {
		return fmt.Errorf("qntn: request %d is intra-LAN (%s)", r.ID, sl)
	}
	return nil
}
