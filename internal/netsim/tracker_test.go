package netsim

import (
	"testing"
	"time"

	"qntn/internal/routing"
)

func graphWith(t *testing.T, edges map[[2]string]float64) *routing.Graph {
	t.Helper()
	g := routing.NewGraph()
	for k, eta := range edges {
		if err := g.AddEdge(k[0], k[1], eta); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestLinkTrackerInitialObservation(t *testing.T) {
	lt := NewLinkTracker()
	g := graphWith(t, map[[2]string]float64{{"a", "b"}: 0.9, {"b", "c"}: 0.8})
	batch := lt.Observe(0, g)
	if len(batch) != 2 {
		t.Fatalf("initial batch %v", batch)
	}
	for _, c := range batch {
		if !c.Up || c.Eta == 0 {
			t.Fatalf("initial change should be Up with eta: %+v", c)
		}
		if c.A >= c.B {
			t.Fatalf("endpoints not ordered: %+v", c)
		}
	}
	if lt.ActiveLinks() != 2 {
		t.Fatalf("active links %d", lt.ActiveLinks())
	}
}

func TestLinkTrackerDetectsTransitions(t *testing.T) {
	lt := NewLinkTracker()
	lt.Observe(0, graphWith(t, map[[2]string]float64{{"a", "b"}: 0.9}))

	// b-c appears, a-b drops.
	batch := lt.Observe(30*time.Second, graphWith(t, map[[2]string]float64{{"b", "c"}: 0.85}))
	if len(batch) != 2 {
		t.Fatalf("batch %v", batch)
	}
	var sawUp, sawDown bool
	for _, c := range batch {
		if c.At != 30*time.Second {
			t.Fatalf("timestamp %v", c.At)
		}
		if c.Up && c.A == "b" && c.B == "c" && c.Eta == 0.85 {
			sawUp = true
		}
		if !c.Up && c.A == "a" && c.B == "b" {
			sawDown = true
		}
	}
	if !sawUp || !sawDown {
		t.Fatalf("missing transitions: %+v", batch)
	}
	if lt.FlapCount("a", "b") != 2 { // up at 0, down at 30s
		t.Fatalf("a-b flap count %d", lt.FlapCount("a", "b"))
	}
	if lt.FlapCount("b", "a") != lt.FlapCount("a", "b") {
		t.Fatal("flap count should ignore endpoint order")
	}
}

func TestLinkTrackerStableTopologyNoChanges(t *testing.T) {
	lt := NewLinkTracker()
	g := graphWith(t, map[[2]string]float64{{"a", "b"}: 0.9})
	lt.Observe(0, g)
	if batch := lt.Observe(time.Minute, g); len(batch) != 0 {
		t.Fatalf("stable topology produced changes: %v", batch)
	}
	if got := len(lt.Changes()); got != 1 {
		t.Fatalf("total changes %d", got)
	}
}

func TestLinkTrackerOnScenarioChurn(t *testing.T) {
	// Eta changes alone (same link staying up) are not transitions.
	lt := NewLinkTracker()
	lt.Observe(0, graphWith(t, map[[2]string]float64{{"a", "b"}: 0.9}))
	if batch := lt.Observe(time.Minute, graphWith(t, map[[2]string]float64{{"a", "b"}: 0.7})); len(batch) != 0 {
		t.Fatalf("eta drift recorded as transition: %v", batch)
	}
}
