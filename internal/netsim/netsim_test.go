package netsim

import (
	"math"
	"testing"
	"time"

	"qntn/internal/geo"
	"qntn/internal/orbit"
	"qntn/internal/routing"
)

func TestSimulatorOrdersEvents(t *testing.T) {
	s := NewSimulator()
	var order []string
	add := func(name string) func(*Simulator) {
		return func(*Simulator) { order = append(order, name) }
	}
	if err := s.Schedule(30*time.Second, "b", add("b")); err != nil {
		t.Fatal(err)
	}
	if err := s.Schedule(10*time.Second, "a", add("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Schedule(30*time.Second, "c", add("c")); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("execution order %v", order)
	}
	if s.Now() != time.Minute {
		t.Fatalf("final time %v", s.Now())
	}
	if s.Processed != 3 {
		t.Fatalf("processed %d", s.Processed)
	}
}

func TestSimulatorSimultaneousEventsFIFO(t *testing.T) {
	s := NewSimulator()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		if err := s.Schedule(time.Second, "e", func(*Simulator) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestSimulatorRejectsPastEvents(t *testing.T) {
	s := NewSimulator()
	if err := s.Schedule(time.Minute, "x", func(*Simulator) {}); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := s.Schedule(time.Second, "past", func(*Simulator) {}); err == nil {
		t.Fatal("past event accepted")
	}
	if err := s.Schedule(time.Minute, "nil", nil); err == nil {
		t.Fatal("nil event accepted")
	}
}

func TestSimulatorRunUntilLeavesFutureEvents(t *testing.T) {
	s := NewSimulator()
	ran := 0
	for _, at := range []time.Duration{time.Second, time.Hour} {
		if err := s.Schedule(at, "e", func(*Simulator) { ran++ }); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if ran != 1 || s.Pending() != 1 {
		t.Fatalf("ran=%d pending=%d", ran, s.Pending())
	}
	// Resume.
	if err := s.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("ran=%d after resume", ran)
	}
}

func TestSimulatorStop(t *testing.T) {
	s := NewSimulator()
	ran := 0
	_ = s.Schedule(time.Second, "a", func(sim *Simulator) { ran++; sim.Stop() })
	_ = s.Schedule(2*time.Second, "b", func(*Simulator) { ran++ })
	if err := s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("stop did not halt the loop, ran=%d", ran)
	}
	if s.Pending() != 1 {
		t.Fatalf("pending=%d", s.Pending())
	}
}

func TestSimulatorEventsCanSchedule(t *testing.T) {
	s := NewSimulator()
	var ticks []time.Duration
	var tick func(*Simulator)
	tick = func(sim *Simulator) {
		ticks = append(ticks, sim.Now())
		if sim.Now() < 90*time.Second {
			_ = sim.Schedule(sim.Now()+30*time.Second, "tick", tick)
		}
	}
	_ = s.Schedule(0, "tick", tick)
	if err := s.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{0, 30 * time.Second, 60 * time.Second, 90 * time.Second}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v", ticks)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks %v", ticks)
		}
	}
}

func TestScheduleEvery(t *testing.T) {
	s := NewSimulator()
	n := 0
	if err := s.ScheduleEvery(0, 30*time.Second, 5*time.Minute, "step", func(*Simulator) { n++ }); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if n != 11 {
		t.Fatalf("step count %d, want 11", n)
	}
	if err := s.ScheduleEvery(0, 0, time.Minute, "bad", func(*Simulator) {}); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestNodeKinds(t *testing.T) {
	g := NewGroundHost("G1", "TTU", geo.LLA{LatDeg: 36.17, LonDeg: -85.5})
	h := NewHAPNode("HAP-1", geo.LLA{LatDeg: 35.67, LonDeg: -85.07, AltM: 30e3})
	sat := NewSatelliteNode("SAT-001", orbit.CircularLEO(500e3, 53, 0, 0))
	if g.Kind() != Ground || h.Kind() != HAP || sat.Kind() != Satellite {
		t.Fatal("node kinds wrong")
	}
	if g.Network() != "TTU" || h.Network() != "" || sat.Network() != "" {
		t.Fatal("network attribution wrong")
	}
	if Ground.String() != "ground" || Satellite.String() != "satellite" || HAP.String() != "hap" {
		t.Fatal("kind strings wrong")
	}
	// Ground and HAP do not move.
	if g.PositionAt(0) != g.PositionAt(time.Hour) {
		t.Fatal("ground host moved")
	}
	if h.PositionAt(0) != h.PositionAt(time.Hour) {
		t.Fatal("HAP moved")
	}
	// HAP altitude is honored.
	if alt := geo.ToLLA(h.PositionAt(0)).AltM; math.Abs(alt-30e3) > 1 {
		t.Fatalf("HAP altitude %g", alt)
	}
	// Satellites move.
	if sat.PositionAt(0) == sat.PositionAt(time.Minute) {
		t.Fatal("satellite did not move")
	}
}

func TestSatelliteFromSheetMatchesElements(t *testing.T) {
	e := orbit.CircularLEO(500e3, 53, 60, 120)
	sheet, err := orbit.GenerateSheet("S", e, time.Hour, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	fromSheet := NewSatelliteFromSheet("S", sheet)
	direct := NewSatelliteNode("S", e)
	// At exact sample times the two agree.
	for _, at := range []time.Duration{0, 30 * time.Second, 10 * time.Minute} {
		d := fromSheet.PositionAt(at).Distance(direct.PositionAt(at))
		if d > 1e-6 {
			t.Fatalf("sheet/element mismatch %g m at %v", d, at)
		}
	}
	// Between samples the sheet holds (zero-order), the direct propagation
	// moves.
	if fromSheet.PositionAt(31*time.Second) != fromSheet.PositionAt(59*time.Second) {
		t.Fatal("sheet should hold between samples")
	}
}

func TestNetworkAddAndSnapshot(t *testing.T) {
	// Simple distance-threshold link model for testing.
	model := LinkModelFunc(func(a, b Node, t time.Duration) (float64, bool) {
		d := a.PositionAt(t).Distance(b.PositionAt(t))
		if d < 100e3 {
			return 0.9, true
		}
		return 0, false
	})
	n := NewNetwork(model)
	near1 := NewGroundHost("A", "X", geo.LLA{LatDeg: 36, LonDeg: -85})
	near2 := NewGroundHost("B", "X", geo.LLA{LatDeg: 36.1, LonDeg: -85})
	far := NewGroundHost("C", "Y", geo.LLA{LatDeg: 40, LonDeg: -100})
	for _, nd := range []Node{near1, near2, far} {
		if err := n.Add(nd); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Add(NewGroundHost("A", "X", geo.LLA{})); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	if n.NumNodes() != 3 || n.Node("B") != near2 || n.Node("zz") != nil {
		t.Fatal("node lookup broken")
	}
	g, err := n.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("snapshot nodes %d", g.NumNodes())
	}
	if eta, ok := g.Eta("A", "B"); !ok || eta != 0.9 {
		t.Fatalf("A-B edge %v,%v", eta, ok)
	}
	if _, ok := g.Eta("A", "C"); ok {
		t.Fatal("far edge should not exist")
	}
	if len(n.ByKind(Ground)) != 3 || len(n.ByKind(Satellite)) != 0 {
		t.Fatal("ByKind broken")
	}
}

func TestMetrics(t *testing.T) {
	var m Metrics
	if m.ServedFraction() != 0 || m.MeanServedFidelity() != 0 {
		t.Fatal("empty metrics should be zero")
	}
	m.Record(Outcome{Request: Request{ID: 1}, Served: true, Fidelity: 0.9})
	m.Record(Outcome{Request: Request{ID: 2}, Served: false})
	m.Record(Outcome{Request: Request{ID: 3}, Served: true, Fidelity: 0.95})
	if got := m.ServedFraction(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("served fraction %g", got)
	}
	if got := m.MeanServedFidelity(); math.Abs(got-0.925) > 1e-12 {
		t.Fatalf("mean fidelity %g", got)
	}
}

// TestMetricsTable drives the aggregate accessors through the degenerate
// shapes experiment code hits in practice: no outcomes at all, a window
// where nothing was served, and mixes.
func TestMetricsTable(t *testing.T) {
	served := func(f float64) Outcome { return Outcome{Served: true, Fidelity: f} }
	unserved := Outcome{}
	cases := []struct {
		name         string
		outcomes     []Outcome
		wantFraction float64
		wantFidelity float64
	}{
		{"empty", nil, 0, 0},
		{"all unserved", []Outcome{unserved, unserved, unserved}, 0, 0},
		{"all served", []Outcome{served(0.9), served(0.7)}, 1, 0.8},
		{"half served", []Outcome{served(1), unserved, served(0.5), unserved}, 0.5, 0.75},
		{"single unserved", []Outcome{unserved}, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var m Metrics
			for _, o := range tc.outcomes {
				m.Record(o)
			}
			if got := m.ServedFraction(); math.Abs(got-tc.wantFraction) > 1e-12 {
				t.Errorf("ServedFraction = %g, want %g", got, tc.wantFraction)
			}
			if got := m.MeanServedFidelity(); math.Abs(got-tc.wantFidelity) > 1e-12 {
				t.Errorf("MeanServedFidelity = %g, want %g", got, tc.wantFidelity)
			}
		})
	}
}

// TestSetModelAndBeginStep covers the decorator hook: SetModel swaps the
// link model after assembly, and BeginStep adapts a plain LinkModel to the
// step-evaluator interface with per-pair semantics.
func TestSetModelAndBeginStep(t *testing.T) {
	always := LinkModelFunc(func(a, b Node, t time.Duration) (float64, bool) { return 0.9, true })
	never := LinkModelFunc(func(a, b Node, t time.Duration) (float64, bool) { return 0, false })
	n := NewNetwork(always)
	for _, nd := range []Node{
		NewGroundHost("A", "X", geo.LLA{LatDeg: 36, LonDeg: -85}),
		NewGroundHost("B", "X", geo.LLA{LatDeg: 36.1, LonDeg: -85}),
	} {
		if err := n.Add(nd); err != nil {
			t.Fatal(err)
		}
	}
	ev := n.BeginStep(0)
	if eta, ok := ev.EvaluatePair(0, 1); !ok || eta != 0.9 {
		t.Fatalf("adapter pair = (%g, %v), want (0.9, true)", eta, ok)
	}
	ev.Close()

	n.SetModel(never)
	if _, ok := n.Model().Evaluate(n.Node("A"), n.Node("B"), 0); ok {
		t.Fatal("SetModel did not swap the model")
	}
	g, err := n.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Fatalf("snapshot through swapped model has %d edges, want 0", g.NumEdges())
	}
}

func TestSnapshotIntoReuseAndNodeSetChange(t *testing.T) {
	// Time-varying model: the A-B edge exists only at t=0, so a reused
	// graph must drop it at the next step.
	model := LinkModelFunc(func(a, b Node, at time.Duration) (float64, bool) {
		if at == 0 && a.ID() != "C" && b.ID() != "C" {
			return 0.5, true
		}
		return 0, false
	})
	n := NewNetwork(model)
	for _, nd := range []Node{
		NewGroundHost("A", "X", geo.LLA{LatDeg: 36, LonDeg: -85}),
		NewGroundHost("B", "X", geo.LLA{LatDeg: 36.1, LonDeg: -85}),
	} {
		if err := n.Add(nd); err != nil {
			t.Fatal(err)
		}
	}
	g := routing.NewGraph()
	if err := n.SnapshotInto(g, 0); err != nil {
		t.Fatal(err)
	}
	if eta, ok := g.Eta("A", "B"); !ok || eta != 0.5 {
		t.Fatalf("A-B edge = %v,%v, want 0.5,true", eta, ok)
	}
	if err := n.SnapshotInto(g, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Eta("A", "B"); ok {
		t.Fatal("stale A-B edge survived SnapshotInto reuse")
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", g.NumEdges())
	}

	// Growing the network invalidates the reused graph's node set; the
	// next SnapshotInto must rebuild it.
	if err := n.Add(NewGroundHost("C", "Y", geo.LLA{LatDeg: 40, LonDeg: -100})); err != nil {
		t.Fatal(err)
	}
	if err := n.SnapshotInto(g, 0); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d after node-set change, want 3", g.NumNodes())
	}
	if eta, ok := g.Eta("A", "B"); !ok || eta != 0.5 {
		t.Fatalf("A-B edge after rebuild = %v,%v, want 0.5,true", eta, ok)
	}
	if _, ok := g.Eta("A", "C"); ok {
		t.Fatal("model excludes C but edge exists")
	}
}
