package netsim

import (
	"sort"
	"time"

	"qntn/internal/routing"
)

// LinkChange records one topology transition between consecutive
// snapshots.
type LinkChange struct {
	At   time.Duration
	A, B string // endpoint IDs, A < B
	// Up is true when the link appeared, false when it dropped.
	Up bool
	// Eta is the transmissivity after the change (0 for a drop).
	Eta float64
}

// LinkTracker diffs successive topology snapshots and accumulates link
// up/down events — the churn view of the dynamic satellite topology
// (QuNetSim's connect/disconnect callbacks, made deterministic).
type LinkTracker struct {
	prev    map[[2]string]float64
	changes []LinkChange
	// Flaps counts transitions per link.
	flaps map[[2]string]int
}

// NewLinkTracker returns an empty tracker.
func NewLinkTracker() *LinkTracker {
	return &LinkTracker{
		prev:  make(map[[2]string]float64),
		flaps: make(map[[2]string]int),
	}
}

// Observe ingests the snapshot taken at virtual time t and records the
// changes relative to the previous observation. The first observation
// records every existing link as an Up event at t.
func (lt *LinkTracker) Observe(t time.Duration, g *routing.Graph) []LinkChange {
	current := make(map[[2]string]float64)
	for _, a := range g.Nodes() {
		for _, b := range g.Neighbors(a) {
			if a < b {
				eta, _ := g.Eta(a, b)
				current[[2]string{a, b}] = eta
			}
		}
	}
	var batch []LinkChange
	for key, eta := range current {
		if _, existed := lt.prev[key]; !existed {
			batch = append(batch, LinkChange{At: t, A: key[0], B: key[1], Up: true, Eta: eta})
		}
	}
	for key := range lt.prev {
		if _, still := current[key]; !still {
			batch = append(batch, LinkChange{At: t, A: key[0], B: key[1], Up: false})
		}
	}
	sort.Slice(batch, func(i, j int) bool {
		if batch[i].A != batch[j].A {
			return batch[i].A < batch[j].A
		}
		if batch[i].B != batch[j].B {
			return batch[i].B < batch[j].B
		}
		return !batch[i].Up && batch[j].Up
	})
	for _, c := range batch {
		lt.flaps[[2]string{c.A, c.B}]++
	}
	lt.changes = append(lt.changes, batch...)
	lt.prev = current
	return batch
}

// Changes returns every recorded change in observation order.
func (lt *LinkTracker) Changes() []LinkChange {
	out := make([]LinkChange, len(lt.changes))
	copy(out, lt.changes)
	return out
}

// FlapCount returns the number of transitions observed for the link a-b.
func (lt *LinkTracker) FlapCount(a, b string) int {
	if a > b {
		a, b = b, a
	}
	return lt.flaps[[2]string{a, b}]
}

// ActiveLinks returns the number of links present in the latest
// observation.
func (lt *LinkTracker) ActiveLinks() int { return len(lt.prev) }
