package netsim

import "qntn/internal/telemetry"

// Instruments is the set of counters a Network flushes once per snapshot
// step. All fields are nil-safe telemetry handles, so a zero Instruments —
// or none installed at all — costs a single nil check per step and never
// allocates.
type Instruments struct {
	// Steps counts topology snapshots taken.
	Steps *telemetry.Counter
	// PairsEvaluated counts node pairs offered to the step evaluator.
	PairsEvaluated *telemetry.Counter
	// LinksAdmitted counts pairs that produced a usable link.
	LinksAdmitted *telemetry.Counter
	// HorizonRejects and RangeRejects count pairs discarded by the
	// evaluator's conservative geometric prefilters (reported via
	// PairStatser; zero for models that do not implement it).
	HorizonRejects *telemetry.Counter
	RangeRejects   *telemetry.Counter
	// IndexCulled counts pairs the spatial index excluded from evaluation
	// entirely (never offered to EvaluatePair); zero when no index ran.
	IndexCulled *telemetry.Counter
	// NodesDownSteps accumulates, over steps, the number of nodes held down
	// by fault injection (via FaultStatser). WeatherSteps counts steps spent
	// inside a weather blackout.
	NodesDownSteps *telemetry.Counter
	WeatherSteps   *telemetry.Counter
}

// NewInstruments registers the network's standard counters on reg. Returns
// nil when reg is nil, which disables per-step flushing entirely.
func NewInstruments(reg *telemetry.Registry) *Instruments {
	if reg == nil {
		return nil
	}
	return &Instruments{
		Steps:          reg.Counter("snapshot_steps_total"),
		PairsEvaluated: reg.Counter("pairs_evaluated_total"),
		LinksAdmitted:  reg.Counter("links_admitted_total"),
		HorizonRejects: reg.Counter("horizon_prefilter_rejects_total"),
		RangeRejects:   reg.Counter("range_prefilter_rejects_total"),
		IndexCulled:    reg.Counter("index_culled_pairs_total"),
		NodesDownSteps: reg.Counter("fault_node_down_steps_total"),
		WeatherSteps:   reg.Counter("fault_weather_steps_total"),
	}
}

// Observe flushes one step's stats into the counters: one atomic add per
// counter per step, regardless of pair count. Nil-safe.
//
//qntn:hotpath
func (ins *Instruments) Observe(st *SnapshotStats) {
	if ins == nil || st == nil {
		return
	}
	ins.Steps.Inc()
	ins.PairsEvaluated.Add(uint64(st.Pairs))
	ins.LinksAdmitted.Add(uint64(st.Admitted))
	ins.HorizonRejects.Add(uint64(st.HorizonRejects))
	ins.RangeRejects.Add(uint64(st.RangeRejects))
	ins.IndexCulled.Add(uint64(st.IndexCulled))
	ins.NodesDownSteps.Add(uint64(st.NodesDown))
	if st.Weather {
		ins.WeatherSteps.Inc()
	}
}

// SnapshotStats reports what happened during one topology snapshot.
type SnapshotStats struct {
	// Pairs is the number of node pairs evaluated, Admitted the number that
	// produced a usable link.
	Pairs    int
	Admitted int
	// HorizonRejects and RangeRejects are the evaluator's prefilter hits;
	// IndexCulled is the number of pairs the spatial index kept out of the
	// pair loop altogether (all zero when the evaluator does not implement
	// PairStatser).
	HorizonRejects int64
	RangeRejects   int64
	IndexCulled    int64
	// NodesDown and Weather describe fault state resolved for this step
	// (zero when the evaluator does not implement FaultStatser).
	NodesDown int
	Weather   bool
}

// PairStatser is optionally implemented by step evaluators that count
// geometric prefilter rejections. indexCulled is the number of pairs a
// spatial index removed from the candidate set before evaluation (zero when
// no index ran this step). Counts are for the current step and are drained
// before Close.
type PairStatser interface {
	PairStats() (horizonRejects, rangeRejects, indexCulled int64)
}

// FaultStatser is optionally implemented by step evaluators that resolve
// fault state per step.
type FaultStatser interface {
	FaultStats() (nodesDown int, weather bool)
}

// DrainStepStats fills st's evaluator-derived fields from ev's optional
// stats interfaces. Callers running their own pair loops over a BeginStep
// evaluator (rather than SnapshotInto) use this before Close.
//
//qntn:hotpath
func DrainStepStats(ev StepEvaluator, st *SnapshotStats) {
	if st == nil {
		return
	}
	if ps, ok := ev.(PairStatser); ok {
		st.HorizonRejects, st.RangeRejects, st.IndexCulled = ps.PairStats()
	}
	if fs, ok := ev.(FaultStatser); ok {
		st.NodesDown, st.Weather = fs.FaultStats()
	}
}

// SetInstruments installs (or, with nil, removes) the per-step counter set
// flushed by snapshots. Not safe to call concurrently with snapshots.
func (n *Network) SetInstruments(ins *Instruments) { n.ins = ins }

// Instruments returns the installed per-step counter set, or nil.
func (n *Network) Instruments() *Instruments { return n.ins }
