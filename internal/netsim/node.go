package netsim

import (
	"fmt"
	"time"

	"qntn/internal/geo"
	"qntn/internal/orbit"
)

// NodeKind discriminates the three host types of the paper's architecture.
type NodeKind int

const (
	// Ground is a stationary quantum host connected by fiber within its
	// local network.
	Ground NodeKind = iota
	// Satellite is a LEO relay following a movement sheet or orbit.
	Satellite
	// HAP is a high-altitude platform hovering at a fixed position.
	HAP
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case Ground:
		return "ground"
	case Satellite:
		return "satellite"
	case HAP:
		return "hap"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a network host with a (possibly time-dependent) position. It is
// the netsim equivalent of QuNetSim's Host class extended with location
// data, with Satellite and HAP specializations.
type Node interface {
	ID() string
	Kind() NodeKind
	// Network names the local network the node belongs to; relays
	// (satellites, HAPs) return "".
	Network() string
	// PositionAt returns the ECEF position at virtual time t.
	PositionAt(t time.Duration) geo.Vec3
}

// GroundHost is a stationary node of a local network.
type GroundHost struct {
	id      string
	network string
	pos     geo.LLA
	ecef    geo.Vec3
}

// NewGroundHost builds a ground host at the given geodetic position.
func NewGroundHost(id, network string, pos geo.LLA) *GroundHost {
	return &GroundHost{id: id, network: network, pos: pos, ecef: pos.ECEF()}
}

// ID implements Node.
func (g *GroundHost) ID() string { return g.id }

// Kind implements Node.
func (g *GroundHost) Kind() NodeKind { return Ground }

// Network implements Node.
func (g *GroundHost) Network() string { return g.network }

// PositionAt implements Node; ground hosts do not move.
func (g *GroundHost) PositionAt(time.Duration) geo.Vec3 { return g.ecef }

// LLA returns the host's geodetic position.
func (g *GroundHost) LLA() geo.LLA { return g.pos }

// HAPNode is a high-altitude platform hovering at a fixed point, per the
// paper's air-ground architecture.
type HAPNode struct {
	id   string
	pos  geo.LLA
	ecef geo.Vec3
}

// NewHAPNode builds a hovering HAP at the given geodetic position.
func NewHAPNode(id string, pos geo.LLA) *HAPNode {
	return &HAPNode{id: id, pos: pos, ecef: pos.ECEF()}
}

// ID implements Node.
func (h *HAPNode) ID() string { return h.id }

// Kind implements Node.
func (h *HAPNode) Kind() NodeKind { return HAP }

// Network implements Node.
func (h *HAPNode) Network() string { return "" }

// PositionAt implements Node; the HAP hovers in place.
func (h *HAPNode) PositionAt(time.Duration) geo.Vec3 { return h.ecef }

// LLA returns the platform's geodetic position.
func (h *HAPNode) LLA() geo.LLA { return h.pos }

// SatelliteNode follows a movement sheet (the paper's STK workflow) when
// one is attached, or propagates its orbital elements directly.
type SatelliteNode struct {
	id    string
	elems orbit.Elements
	sheet *orbit.MovementSheet
}

// NewSatelliteNode builds a satellite that propagates the given elements
// analytically.
func NewSatelliteNode(id string, elems orbit.Elements) *SatelliteNode {
	return &SatelliteNode{id: id, elems: elems}
}

// NewSatelliteFromSheet builds a satellite that replays a recorded movement
// sheet (zero-order hold between samples), exactly like the paper's
// upgraded QuNetSim consuming STK movement sheets.
func NewSatelliteFromSheet(id string, sheet *orbit.MovementSheet) *SatelliteNode {
	return &SatelliteNode{id: id, sheet: sheet}
}

// ID implements Node.
func (s *SatelliteNode) ID() string { return s.id }

// Kind implements Node.
func (s *SatelliteNode) Kind() NodeKind { return Satellite }

// Network implements Node.
func (s *SatelliteNode) Network() string { return "" }

// PositionAt implements Node.
func (s *SatelliteNode) PositionAt(t time.Duration) geo.Vec3 {
	if s.sheet != nil {
		return s.sheet.At(t)
	}
	return s.elems.PositionECEF(t)
}

// Elements returns the satellite's orbital elements (zero value when the
// node replays a sheet).
func (s *SatelliteNode) Elements() orbit.Elements { return s.elems }
