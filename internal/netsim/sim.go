// Package netsim is the discrete-event quantum-network simulator that
// replaces the paper's upgraded QuNetSim: typed nodes (ground hosts,
// satellites, HAPs) with time-dependent positions, dynamic link evaluation
// against a pluggable link model, periodic topology-update events (the
// paper's 30-second satellite movement steps), and request/served
// bookkeeping.
//
// Where QuNetSim moves satellites with a background thread, netsim is a
// deterministic event-queue simulation: every state change happens at a
// scheduled virtual time, so runs are exactly reproducible.
package netsim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback.
type Event struct {
	At   time.Duration
	Name string
	Fn   func(*Simulator)
	seq  int
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Simulator is a deterministic discrete-event executor over virtual time.
type Simulator struct {
	now     time.Duration
	queue   eventHeap
	nextSeq int
	stopped bool
	// Processed counts executed events (for diagnostics and tests).
	Processed int
}

// NewSimulator returns a simulator at virtual time zero.
func NewSimulator() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Schedule enqueues fn to run at virtual time at. Scheduling in the past is
// an error.
func (s *Simulator) Schedule(at time.Duration, name string, fn func(*Simulator)) error {
	if at < s.now {
		return fmt.Errorf("netsim: cannot schedule %q at %v, now is %v", name, at, s.now)
	}
	if fn == nil {
		return fmt.Errorf("netsim: nil event function for %q", name)
	}
	heap.Push(&s.queue, &Event{At: at, Name: name, Fn: fn, seq: s.nextSeq})
	s.nextSeq++
	return nil
}

// ScheduleEvery enqueues fn at start, start+interval, ... up to and
// including end.
func (s *Simulator) ScheduleEvery(start, interval, end time.Duration, name string, fn func(*Simulator)) error {
	if interval <= 0 {
		return fmt.Errorf("netsim: non-positive interval %v for %q", interval, name)
	}
	for at := start; at <= end; at += interval {
		if err := s.Schedule(at, name, fn); err != nil {
			return err
		}
	}
	return nil
}

// Stop halts the run loop after the current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events in time order until the queue empties, an event past
// `until` is reached (which remains queued), or Stop is called.
func (s *Simulator) Run(until time.Duration) error {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if next.At > until {
			break
		}
		heap.Pop(&s.queue)
		if next.At < s.now {
			return fmt.Errorf("netsim: event %q would move time backwards", next.Name)
		}
		s.now = next.At
		s.Processed++
		next.Fn(s)
	}
	if !s.stopped && s.now < until {
		s.now = until
	}
	return nil
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.queue) }
