package netsim

import (
	"fmt"
	"time"

	"qntn/internal/routing"
)

// LinkModel decides whether a usable quantum link exists between two nodes
// at a given time, and with what transmissivity. Implementations combine
// channel physics (fiber/FSO) with the gating policy (transmissivity
// threshold, elevation mask, line of sight).
type LinkModel interface {
	// Evaluate returns the link transmissivity and whether the link is
	// usable. The order of a and b is not significant.
	Evaluate(a, b Node, t time.Duration) (eta float64, ok bool)
}

// LinkModelFunc adapts a function to the LinkModel interface.
type LinkModelFunc func(a, b Node, t time.Duration) (float64, bool)

// Evaluate implements LinkModel.
func (f LinkModelFunc) Evaluate(a, b Node, t time.Duration) (float64, bool) {
	return f(a, b, t)
}

// StepEvaluator evaluates the node pairs of one topology instant by dense
// node index (the index into the node slice passed to BeginStep). It lets a
// model hoist per-node work — orbit propagation, geodetic conversion,
// darkness — out of the O(N²) pair loop.
type StepEvaluator interface {
	// EvaluatePair returns the transmissivity and usability of the link
	// between nodes i and j, exactly as LinkModel.Evaluate would for the
	// same pair and instant.
	EvaluatePair(i, j int) (eta float64, ok bool)
	// Close releases the evaluator's per-step resources (e.g. returns it
	// to a pool). The evaluator must not be used after Close.
	Close()
}

// StepModel is an optional LinkModel extension for models that can batch
// per-node work across one topology instant. Snapshot uses it when
// available; the per-pair Evaluate remains the reference semantics, and a
// StepModel's evaluator must reproduce them exactly.
type StepModel interface {
	LinkModel
	BeginStep(nodes []Node, t time.Duration) StepEvaluator
}

// PackedPair encodes an (i, j) dense node-index pair with i < j as
// i<<32 | j. Packed pairs sort in exactly the order the dense double loop
// "for i { for j := i+1 }" visits them, so an ascending packed slice
// replays the dense iteration order bit for bit.
type PackedPair uint64

// PackPair packs a dense index pair. Callers must pass i < j.
//
//qntn:hotpath
func PackPair(i, j int) PackedPair { return PackedPair(uint64(i)<<32 | uint64(j)) }

// Unpack returns the pair's dense indices.
//
//qntn:hotpath
func (p PackedPair) Unpack() (i, j int) { return int(p >> 32), int(p & 0xffffffff) }

// PairEnumerator is optionally implemented by step evaluators that can
// enumerate a candidate superset of the step's usable pairs (e.g. from a
// spatial index). The contract:
//
//   - pairs is sorted ascending — i.e. in dense double-loop order — so a
//     caller iterating it admits edges in exactly the order the full O(n²)
//     scan would;
//   - pairs is a conservative superset: every pair EvaluatePair would
//     accept appears in it (extra pairs are fine, EvaluatePair re-checks);
//   - the slice is owned by the evaluator and valid until Close;
//   - ok=false means no index is available this step and the caller must
//     fall back to the dense scan.
type PairEnumerator interface {
	CandidatePairs() (pairs []PackedPair, ok bool)
}

// Network is the node container: an ordered set of hosts plus the link
// model that induces the time-varying topology.
type Network struct {
	nodes []Node
	byID  map[string]Node
	model LinkModel
	ins   *Instruments
}

// NewNetwork returns an empty network using the given link model.
func NewNetwork(model LinkModel) *Network {
	return &Network{byID: make(map[string]Node), model: model}
}

// Add inserts a node; duplicate IDs are rejected.
func (n *Network) Add(node Node) error {
	if node == nil {
		return fmt.Errorf("netsim: nil node")
	}
	if _, dup := n.byID[node.ID()]; dup {
		return fmt.Errorf("netsim: duplicate node ID %q", node.ID())
	}
	n.nodes = append(n.nodes, node)
	n.byID[node.ID()] = node
	return nil
}

// Node returns the node with the given ID, or nil.
func (n *Network) Node(id string) Node { return n.byID[id] }

// Model returns the network's link model.
func (n *Network) Model() LinkModel { return n.model }

// SetModel replaces the network's link model — the hook a decorator (e.g. a
// fault injector built over the final node set) uses after assembly. Not
// safe to call concurrently with snapshots.
func (n *Network) SetModel(model LinkModel) { n.model = model }

// BeginStep returns a step evaluator over the network's nodes (in insertion
// order) at instant t: the model's batched evaluator when it implements
// StepModel, otherwise a per-pair adapter with identical semantics.
//
//qntn:hotpath
func (n *Network) BeginStep(t time.Duration) StepEvaluator {
	if sm, ok := n.model.(StepModel); ok {
		return sm.BeginStep(n.nodes, t)
	}
	//qntn:coldpath per-pair models have no fast path to protect
	return &pairStepEval{nodes: n.nodes, model: n.model, t: t}
}

// pairStepEval adapts a plain LinkModel to the StepEvaluator interface.
type pairStepEval struct {
	nodes []Node
	model LinkModel
	t     time.Duration
}

// EvaluatePair implements StepEvaluator.
//
//qntn:hotpath
func (pe *pairStepEval) EvaluatePair(i, j int) (float64, bool) {
	return pe.model.Evaluate(pe.nodes[i], pe.nodes[j], pe.t)
}

// Close implements StepEvaluator.
//
//qntn:hotpath
func (pe *pairStepEval) Close() {}

// Nodes returns the nodes in insertion order.
func (n *Network) Nodes() []Node {
	out := make([]Node, len(n.nodes))
	copy(out, n.nodes)
	return out
}

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return len(n.nodes) }

// ByKind returns nodes of the given kind in insertion order.
func (n *Network) ByKind(k NodeKind) []Node {
	var out []Node
	for _, node := range n.nodes {
		if node.Kind() == k {
			out = append(out, node)
		}
	}
	return out
}

// Snapshot evaluates every node pair at time t and returns the
// transmissivity graph of usable links. All nodes appear in the graph even
// if isolated, so routing can distinguish "unknown node" from
// "unreachable".
func (n *Network) Snapshot(t time.Duration) (*routing.Graph, error) {
	g := routing.NewGraph()
	if err := n.SnapshotInto(g, t); err != nil {
		return nil, err
	}
	return g, nil
}

// SnapshotInto evaluates every node pair at time t and stores the
// transmissivity graph of usable links in g, replacing g's previous
// contents. When g already holds exactly the network's node set (the
// steady state of a caller reusing one graph across topology steps), only
// the edges are reset and the snapshot allocates nothing. The result is
// identical to Snapshot's.
//
//qntn:hotpath
func (n *Network) SnapshotInto(g *routing.Graph, t time.Duration) error {
	return n.snapshotInto(g, t, nil)
}

// SnapshotIntoStats is SnapshotInto plus per-step accounting: when st is
// non-nil it is overwritten with the step's evaluation stats. Installed
// Instruments are flushed either way.
//
//qntn:hotpath
func (n *Network) SnapshotIntoStats(g *routing.Graph, t time.Duration, st *SnapshotStats) error {
	return n.snapshotInto(g, t, st)
}

// snapshotInto is the shared snapshot core: steady-state calls reset edges
// in place and allocate nothing.
//
//qntn:hotpath
func (n *Network) snapshotInto(g *routing.Graph, t time.Duration, st *SnapshotStats) error {
	//qntn:coldpath graph rebuild happens only when the node set changed
	if !n.graphMatches(g) {
		g.Reset()
		for _, node := range n.nodes {
			g.AddNode(node.ID())
		}
	}
	g.ResetEdges()
	ev := n.BeginStep(t)
	admitted := 0
	cands, indexed := candidatePairs(ev)
	if indexed {
		// Candidates are sorted ascending (= dense double-loop order), so
		// edges are admitted in exactly the order the full scan would use.
		for _, c := range cands {
			i, j := c.Unpack()
			if eta, ok := ev.EvaluatePair(i, j); ok {
				if err := g.AddEdgeByIndex(i, j, eta); err != nil {
					ev.Close()
					return fmt.Errorf("netsim: snapshot at %v: %w", t, err)
				}
				admitted++
			}
		}
	} else {
		for i := 0; i < len(n.nodes); i++ {
			for j := i + 1; j < len(n.nodes); j++ {
				if eta, ok := ev.EvaluatePair(i, j); ok {
					if err := g.AddEdgeByIndex(i, j, eta); err != nil {
						ev.Close()
						return fmt.Errorf("netsim: snapshot at %v: %w", t, err)
					}
					admitted++
				}
			}
		}
	}
	if st != nil || n.ins != nil {
		var s SnapshotStats
		s.Pairs = len(n.nodes) * (len(n.nodes) - 1) / 2
		s.Admitted = admitted
		DrainStepStats(ev, &s)
		n.ins.Observe(&s)
		if st != nil {
			*st = s
		}
	}
	ev.Close()
	return nil
}

// candidatePairs asks ev for an indexed candidate list when it implements
// PairEnumerator; ok=false means the caller must run the dense pair loop.
//
//qntn:hotpath
func candidatePairs(ev StepEvaluator) ([]PackedPair, bool) {
	if pe, ok := ev.(PairEnumerator); ok {
		return pe.CandidatePairs()
	}
	return nil, false
}

// graphMatches reports whether g's node list is exactly the network's node
// IDs in insertion order, so dense indices agree and edges can be added by
// index.
//
//qntn:hotpath
func (n *Network) graphMatches(g *routing.Graph) bool {
	if g.NumNodes() != len(n.nodes) {
		return false
	}
	for i, node := range n.nodes {
		if idx, ok := g.IndexOf(node.ID()); !ok || idx != i {
			return false
		}
	}
	return true
}

// Request is an entanglement distribution request between two hosts.
type Request struct {
	ID  int
	Src string
	Dst string
}

// Outcome records the result of attempting one request at one topology
// step.
type Outcome struct {
	Request  Request
	At       time.Duration
	Served   bool
	Fidelity float64
	Path     []string
	// EndToEndEta is the product of link transmissivities along Path.
	EndToEndEta float64
	// PathLengthM is the summed geometric length of the path's hops at
	// the serving instant (0 when not computed by the experiment).
	PathLengthM float64
	// Latency is the heralding latency charged to the request (0 when
	// the experiment does not model time).
	Latency time.Duration
}

// Metrics accumulates outcomes across a run.
type Metrics struct {
	Outcomes []Outcome
}

// Record appends an outcome.
func (m *Metrics) Record(o Outcome) { m.Outcomes = append(m.Outcomes, o) }

// ServedFraction returns the fraction of recorded requests that were
// served, or 0 when nothing was recorded.
func (m *Metrics) ServedFraction() float64 {
	if len(m.Outcomes) == 0 {
		return 0
	}
	served := 0
	for _, o := range m.Outcomes {
		if o.Served {
			served++
		}
	}
	return float64(served) / float64(len(m.Outcomes))
}

// MeanServedFidelity returns the average fidelity over served requests (the
// paper's "average entanglement fidelity for the resolved requests"), or 0
// if none were served.
func (m *Metrics) MeanServedFidelity() float64 {
	var sum float64
	n := 0
	for _, o := range m.Outcomes {
		if o.Served {
			sum += o.Fidelity
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
