package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"qntn/internal/qntn"
)

func TestExtensionLatencyStudy(t *testing.T) {
	cfg := qntn.ServeConfig{RequestsPerStep: 8, Steps: 4, Horizon: 24 * time.Hour, Seed: 5}
	rows, err := ExtensionLatencyStudy(qntn.DefaultParams(), 36, cfg, []time.Duration{0, 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byKey := map[string]LatencyRow{}
	for _, r := range rows {
		byKey[r.Architecture+"/"+r.MemoryT2.String()] = r
	}
	spaceIdeal := byKey["space-ground/0s"]
	spaceLossy := byKey["space-ground/10ms"]
	airIdeal := byKey["air-ground/0s"]
	airLossy := byKey["air-ground/10ms"]

	// Memory quality cannot change reachability, only fidelity.
	if spaceIdeal.ServedPercent != spaceLossy.ServedPercent {
		t.Fatal("memory T2 changed serving")
	}
	if spaceLossy.MeanFidelity >= spaceIdeal.MeanFidelity && spaceIdeal.ServedPercent > 0 {
		t.Fatal("dephasing did not reduce space fidelity")
	}
	if airLossy.MeanFidelity >= airIdeal.MeanFidelity {
		t.Fatal("dephasing did not reduce air fidelity")
	}
	// The paper's latency argument: HAPs at 30 km beat satellites at
	// 500 km.
	if airIdeal.MeanLatency >= spaceIdeal.MeanLatency && spaceIdeal.ServedPercent > 0 {
		t.Fatalf("air latency %v not below space %v", airIdeal.MeanLatency, spaceIdeal.MeanLatency)
	}
	// Latency itself is independent of memory quality.
	if airIdeal.MeanLatency != airLossy.MeanLatency {
		t.Fatal("memory T2 changed latency")
	}
}

func TestExtensionPurificationStudy(t *testing.T) {
	rows, err := ExtensionPurificationStudy([]float64{0.72, 0.92}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // (1 baseline + 2 rounds) × 2 etas
		t.Fatalf("%d rows", len(rows))
	}
	for _, eta := range []float64{0.72, 0.92} {
		var perRound []PurificationRow
		for _, r := range rows {
			if r.LinkEta == eta {
				perRound = append(perRound, r)
			}
		}
		if len(perRound) != 3 || perRound[0].Round != 0 {
			t.Fatalf("eta=%g rounds %+v", eta, perRound)
		}
		if perRound[1].Fidelity <= perRound[0].Fidelity {
			t.Errorf("eta=%g: first purification round did not improve", eta)
		}
		// Cost grows monotonically and the baseline costs exactly 1.
		prev := 0.0
		for _, r := range perRound {
			if r.ExpectedPairsConsumed <= prev {
				t.Errorf("eta=%g: pair cost not increasing: %+v", eta, perRound)
			}
			prev = r.ExpectedPairsConsumed
			if r.Fidelity <= 0 || r.Fidelity > 1 {
				t.Errorf("eta=%g round %d: fidelity %g", eta, r.Round, r.Fidelity)
			}
		}
		if perRound[0].ExpectedPairsConsumed != 1 {
			t.Errorf("baseline cost %g", perRound[0].ExpectedPairsConsumed)
		}
	}
	if _, err := ExtensionPurificationStudy([]float64{0.9}, 0); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"a", "b"}, [][]string{{"1", "2"}, {"x", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\nx,y\n"
	if b.String() != want {
		t.Fatalf("csv output %q", b.String())
	}
	if err := WriteCSV(&b, []string{"a"}, [][]string{{"1", "2"}}); err == nil {
		t.Fatal("ragged row accepted")
	}
}

func TestCSVEmitters(t *testing.T) {
	fig5, err := Fig5(0.25)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Fig5CSV(&b, fig5); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(b.String(), "\n"); lines != len(fig5)+1 {
		t.Fatalf("fig5 csv lines %d", lines)
	}

	points, err := qntn.CoverageSweep(qntn.DefaultParams(), []int{6}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := Fig6CSV(&b, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "satellites,coverage_percent") {
		t.Fatalf("fig6 csv header missing: %q", b.String())
	}

	serve, err := qntn.ServeSweep(qntn.DefaultParams(), []int{6},
		qntn.ServeConfig{RequestsPerStep: 5, Steps: 2, Horizon: 24 * time.Hour, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := Fig78CSV(&b, serve); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "served_percent") {
		t.Fatal("fig78 csv header missing")
	}

	b.Reset()
	if err := Table3CSV(&b, []Table3Row{{Architecture: "x", CoveragePercent: 1, ServedPercent: 2, MeanFidelity: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "x,1.0000,2.0000,0.500000") {
		t.Fatalf("table3 csv row: %q", b.String())
	}

	b.Reset()
	if err := LatencyCSV(&b, []LatencyRow{{Architecture: "a", MemoryT2: time.Millisecond, MeanLatency: time.Millisecond}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "memory_t2_s") {
		t.Fatal("latency csv header missing")
	}

	b.Reset()
	if err := PurificationCSV(&b, []PurificationRow{{LinkEta: 0.9, Round: 1, Fidelity: 0.99, SuccessProbability: 0.9, ExpectedPairsConsumed: 2.1}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "0.9000,1,0.990000,0.900000,2.1000") {
		t.Fatalf("purification csv row: %q", b.String())
	}
}

func TestPurificationRecoversSpaceFidelityDeficit(t *testing.T) {
	// The study's headline: one round of purification on the measured
	// space-ground path (eta ≈ 0.72) lifts fidelity above the paper's
	// 0.96 target.
	rows, err := ExtensionPurificationStudy([]float64{0.72}, 1)
	if err != nil {
		t.Fatal(err)
	}
	after := rows[1].Fidelity
	if after < 0.96 {
		t.Fatalf("one purification round reaches only %g", after)
	}
	if math.Abs(rows[0].Fidelity-0.9243) > 0.001 {
		t.Fatalf("baseline fidelity %g, want ≈0.9243", rows[0].Fidelity)
	}
}

func TestExtensionNightStudy(t *testing.T) {
	cfg := qntn.ServeConfig{RequestsPerStep: 10, Steps: 8, Horizon: 24 * time.Hour, Seed: 6}
	rows, err := ExtensionNightStudy(qntn.DefaultParams(), 36, cfg, 3*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byKey := map[string]NightRow{}
	for _, r := range rows {
		key := r.Architecture
		if r.NightOnly {
			key += "/night"
		}
		byKey[key] = r
	}
	// Night gating can only reduce coverage and serving.
	for _, arch := range []string{"space-ground", "air-ground"} {
		ideal, night := byKey[arch], byKey[arch+"/night"]
		if night.CoveragePercent > ideal.CoveragePercent+1e-9 {
			t.Fatalf("%s: night coverage above ideal", arch)
		}
		if night.ServedPercent > ideal.ServedPercent+1e-9 {
			t.Fatalf("%s: night serving above ideal", arch)
		}
	}
	// The HAP keeps a clear edge even at night.
	if byKey["air-ground/night"].ServedPercent <= byKey["space-ground/night"].ServedPercent {
		t.Fatal("air-ground should still beat space-ground under night gating")
	}
}

func TestExtensionOutageStudy(t *testing.T) {
	cfg := qntn.ServeConfig{RequestsPerStep: 10, Steps: 20, Horizon: 24 * time.Hour, Seed: 8}
	rows, err := ExtensionOutageStudy(qntn.DefaultParams(), cfg, 6*time.Hour, []float64{0, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	clean, flaky := rows[0], rows[1]
	if clean.CoveragePercent != 100 || clean.Intervals != 1 {
		t.Fatalf("outage-free baseline wrong: %+v", clean)
	}
	if flaky.CoveragePercent >= clean.CoveragePercent {
		t.Fatal("outages did not reduce coverage")
	}
	if math.Abs(flaky.CoveragePercent-80) > 6 {
		t.Fatalf("20%% outage coverage %.2f%%, want ≈80%%", flaky.CoveragePercent)
	}
	if flaky.Intervals < 10 {
		t.Fatalf("outages should fragment coverage, got %d intervals", flaky.Intervals)
	}
}

func TestExtensionArrivalStudy(t *testing.T) {
	rows, err := ExtensionArrivalStudy(qntn.DefaultParams(), 108, 2*time.Hour, []float64{120}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	space, air := rows[0], rows[1]
	// Queueing converts the space-ground architecture's coverage gaps
	// into waiting time instead of loss.
	if space.ServedPercent < 90 {
		t.Fatalf("queued space serving %.2f%%", space.ServedPercent)
	}
	if space.ImmediatePercent >= 95 {
		t.Fatalf("space immediate %.2f%% — gaps vanished?", space.ImmediatePercent)
	}
	if space.MeanWait <= 0 || space.MaxQueueDepth == 0 {
		t.Fatalf("space queueing dynamics missing: %+v", space)
	}
	if air.ImmediatePercent != 100 || air.MeanWait != 0 {
		t.Fatalf("air should never queue: %+v", air)
	}
	// Queue-drained requests are served at pass edges (low elevation), so
	// arrival fidelity sits below the instantaneous-serving average.
	if space.MeanFidelity >= 0.93 || space.MeanFidelity < 0.88 {
		t.Fatalf("space arrival fidelity %.4f outside expected band", space.MeanFidelity)
	}
}
