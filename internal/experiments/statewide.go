package experiments

import (
	"context"
	"fmt"
	"time"

	"qntn/internal/geo"
	"qntn/internal/qntn"
	"qntn/internal/runner"
)

// StatewideRow reports one architecture option for the six-LAN extended
// region (paper LANs + Nashville, Memphis, Knoxville).
type StatewideRow struct {
	Architecture string
	Platforms    int
	// ConnectedPairsPercent is the fraction of LAN pairs the
	// architecture can ever join (static for HAP fleets; for satellites
	// the fraction of pairs joined at least once during the window).
	ConnectedPairsPercent float64
	// CoveragePercent is the all-pairs coverage over the window.
	CoveragePercent float64
	// ServedPercent over the serve workload.
	ServedPercent float64
}

// ExtensionStatewideStudy extends the paper's comparison to a statewide
// six-LAN region: greedily placed HAP fleets of increasing size versus the
// 108-satellite constellation. The headline finding: no HAP fleet reaches
// Memphis (no 30 km platform footprint spans the ≈290 km gap west of
// Nashville and there is no intermediate LAN to chain through), while the
// constellation serves all fifteen pairs whenever a satellite is up.
func ExtensionStatewideStudy(p qntn.Params, cfg qntn.ServeConfig, window time.Duration, fleetSizes []int) ([]StatewideRow, error) {
	return ExtensionStatewideStudyParallel(p, cfg, window, fleetSizes, 0)
}

// ExtensionStatewideStudyParallel fans the architecture options — one task
// per HAP fleet size plus one for the constellation — out over the worker
// pool. Every option builds its own scenario and writes only its own row,
// so the table is identical for any worker count.
func ExtensionStatewideStudyParallel(p qntn.Params, cfg qntn.ServeConfig, window time.Duration, fleetSizes []int, workers int) ([]StatewideRow, error) {
	lans := qntn.ExtendedNetworks()
	totalPairs := len(lans) * (len(lans) - 1) / 2
	rows := make([]StatewideRow, len(fleetSizes)+1)

	err := runner.Map(context.Background(), len(rows), workers, func(_ context.Context, ti int) error {
		if ti < len(fleetSizes) {
			k := fleetSizes[ti]
			placement, err := qntn.PlaceHAPs(p, lans, k, 0.15)
			if err != nil {
				return err
			}
			positions := placement.Positions
			if len(positions) > k {
				positions = positions[:k]
			}
			sc, err := qntn.NewMultiHAP(p, lans, positions)
			if err != nil {
				return err
			}
			row, err := statewideRow(sc, cfg, window)
			if err != nil {
				return err
			}
			suffix := "HAPs"
			if len(positions) == 1 {
				suffix = "HAP"
			}
			row.Architecture = fmt.Sprintf("air-ground (%d %s)", len(positions), suffix)
			row.Platforms = len(positions)
			row.ConnectedPairsPercent = 100 * float64(placement.ConnectedPairs) / float64(totalPairs)
			rows[ti] = row
			return nil
		}

		space, err := qntn.NewExtendedSpaceGround(108, p)
		if err != nil {
			return err
		}
		row, err := statewideRow(space, cfg, window)
		if err != nil {
			return err
		}
		row.Architecture = "space-ground (108 sats)"
		row.Platforms = 108
		// Satellites join every pair whenever one is visible to both cities.
		detail, err := space.DetailedCoverage(window)
		if err != nil {
			return err
		}
		joined := 0
		for _, pc := range detail.Pairs {
			if pc.Result.CoveredSteps > 0 {
				joined++
			}
		}
		row.ConnectedPairsPercent = 100 * float64(joined) / float64(totalPairs)
		rows[ti] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func statewideRow(sc *qntn.Scenario, cfg qntn.ServeConfig, window time.Duration) (StatewideRow, error) {
	cov, err := sc.Coverage(window)
	if err != nil {
		return StatewideRow{}, err
	}
	serve, err := sc.RunServe(cfg)
	if err != nil {
		return StatewideRow{}, err
	}
	return StatewideRow{
		CoveragePercent: cov.Percent(),
		ServedPercent:   serve.ServedPercent,
	}, nil
}

// StatewidePlacement exposes the optimized fleet for rendering (positions
// with their coordinates).
func StatewidePlacement(p qntn.Params, maxHAPs int) ([]geo.LLA, int, int, error) {
	res, err := qntn.PlaceHAPs(p, qntn.ExtendedNetworks(), maxHAPs, 0.15)
	if err != nil {
		return nil, 0, 0, err
	}
	return res.Positions, res.ConnectedPairs, res.TotalPairs, nil
}
