package experiments

import (
	"time"

	"qntn/internal/orbit"
	"qntn/internal/qntn"
)

// Fig6 computes the paper's Fig. 6: coverage percentage of the space-ground
// network as a function of the number of satellites (6..108), over the
// given period (the paper uses a full day).
func Fig6(p qntn.Params, duration time.Duration) ([]qntn.CoveragePoint, error) {
	return qntn.CoverageSweep(p, qntn.PaperSweepSizes(), duration)
}

// Fig7And8 computes the paper's Fig. 7 (served entanglement distribution
// requests) and Fig. 8 (average entanglement fidelity of resolved requests)
// in one pass: both figures share the same workload of 100 random
// inter-LAN requests over 100 satellite-movement steps.
func Fig7And8(p qntn.Params, cfg qntn.ServeConfig) ([]qntn.ServePoint, error) {
	return qntn.ServeSweep(p, qntn.PaperSweepSizes(), cfg)
}

// Table3Row is one architecture row of the paper's Table III comparison.
type Table3Row struct {
	Architecture    string
	CoveragePercent float64
	ServedPercent   float64
	MeanFidelity    float64
}

// Table3 reproduces the paper's Table III: the space-ground architecture
// with 108 satellites versus the air-ground architecture, compared on
// full-day coverage, served requests, and average entanglement fidelity.
func Table3(p qntn.Params, cfg qntn.ServeConfig, coverageDuration time.Duration) ([]Table3Row, error) {
	if coverageDuration <= 0 {
		coverageDuration = orbit.Day
	}
	var rows []Table3Row

	space, err := qntn.NewSpaceGround(orbit.MaxPaperSatellites, p)
	if err != nil {
		return nil, err
	}
	spaceCov, err := space.Coverage(coverageDuration)
	if err != nil {
		return nil, err
	}
	spaceServe, err := space.RunServe(cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table3Row{
		Architecture:    qntn.SpaceGround.String(),
		CoveragePercent: spaceCov.Percent(),
		ServedPercent:   spaceServe.ServedPercent,
		MeanFidelity:    spaceServe.MeanFidelity,
	})

	air, err := qntn.NewAirGround(p)
	if err != nil {
		return nil, err
	}
	airCov, err := air.Coverage(coverageDuration)
	if err != nil {
		return nil, err
	}
	airServe, err := air.RunServe(cfg)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table3Row{
		Architecture:    qntn.AirGround.String(),
		CoveragePercent: airCov.Percent(),
		ServedPercent:   airServe.ServedPercent,
		MeanFidelity:    airServe.MeanFidelity,
	})
	return rows, nil
}
