package experiments

import (
	"context"
	"time"

	"qntn/internal/orbit"
	"qntn/internal/qntn"
	"qntn/internal/runner"
)

// Fig6 computes the paper's Fig. 6: coverage percentage of the space-ground
// network as a function of the number of satellites (6..108), over the
// given period (the paper uses a full day). Work is fanned out over the
// default worker pool; see Fig6Parallel to pin the worker count.
func Fig6(p qntn.Params, duration time.Duration) ([]qntn.CoveragePoint, error) {
	return Fig6Parallel(p, duration, 0)
}

// Fig6Parallel is Fig6 with an explicit worker count (<= 0 selects one per
// CPU). The result is identical for any worker count.
func Fig6Parallel(p qntn.Params, duration time.Duration, workers int) ([]qntn.CoveragePoint, error) {
	return qntn.CoverageSweepParallel(p, qntn.PaperSweepSizes(), duration, workers)
}

// Fig7And8 computes the paper's Fig. 7 (served entanglement distribution
// requests) and Fig. 8 (average entanglement fidelity of resolved requests)
// in one pass: both figures share the same workload of 100 random
// inter-LAN requests over 100 satellite-movement steps.
func Fig7And8(p qntn.Params, cfg qntn.ServeConfig) ([]qntn.ServePoint, error) {
	return Fig7And8Parallel(p, cfg, 0)
}

// Fig7And8Parallel is Fig7And8 with an explicit worker count (<= 0 selects
// one per CPU). The result is identical for any worker count.
func Fig7And8Parallel(p qntn.Params, cfg qntn.ServeConfig, workers int) ([]qntn.ServePoint, error) {
	return qntn.ServeSweepParallel(p, qntn.PaperSweepSizes(), cfg, workers)
}

// Fig7And8Stats runs the Fig. 7/8 sweep over independent workload replicas,
// yielding the per-size mean and spread the paper's single-seed figures
// lack. Replica seeds are derived deterministically from cfg.Seed.
func Fig7And8Stats(p qntn.Params, cfg qntn.ServeConfig, replicas, workers int) ([]qntn.ServeStats, error) {
	return qntn.ServeSweepReplicated(p, qntn.PaperSweepSizes(), cfg, replicas, workers)
}

// Table3Row is one architecture row of the paper's Table III comparison.
type Table3Row struct {
	Architecture    string
	CoveragePercent float64
	ServedPercent   float64
	MeanFidelity    float64
}

// Table3 reproduces the paper's Table III: the space-ground architecture
// with 108 satellites versus the air-ground architecture, compared on
// full-day coverage, served requests, and average entanglement fidelity.
func Table3(p qntn.Params, cfg qntn.ServeConfig, coverageDuration time.Duration) ([]Table3Row, error) {
	return Table3Parallel(p, cfg, coverageDuration, 0)
}

// Table3Parallel is Table3 with an explicit worker count. The four cells —
// coverage and serve for each architecture — are independent, so they fan
// out over the pool; each writes only its own slot and both cells of an
// architecture share one immutable scenario, so the table is identical for
// any worker count.
func Table3Parallel(p qntn.Params, cfg qntn.ServeConfig, coverageDuration time.Duration, workers int) ([]Table3Row, error) {
	if coverageDuration <= 0 {
		coverageDuration = orbit.Day
	}
	space, err := qntn.NewSpaceGround(orbit.MaxPaperSatellites, p)
	if err != nil {
		return nil, err
	}
	air, err := qntn.NewAirGround(p)
	if err != nil {
		return nil, err
	}

	rows := []Table3Row{
		{Architecture: qntn.SpaceGround.String()},
		{Architecture: qntn.AirGround.String()},
	}
	scenarios := []*qntn.Scenario{space, air}
	err = runner.Grid(context.Background(), len(scenarios), 2, workers, func(_ context.Context, row, cell int) error {
		sc := scenarios[row]
		if cell == 0 {
			cov, err := sc.Coverage(coverageDuration)
			if err != nil {
				return err
			}
			rows[row].CoveragePercent = cov.Percent()
			return nil
		}
		serve, err := sc.RunServe(cfg)
		if err != nil {
			return err
		}
		rows[row].ServedPercent = serve.ServedPercent
		rows[row].MeanFidelity = serve.MeanFidelity
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
