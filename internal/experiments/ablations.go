package experiments

import (
	"fmt"
	"math"
	"time"

	"qntn/internal/atmosphere"
	"qntn/internal/geo"
	"qntn/internal/orbit"
	"qntn/internal/qntn"
	"qntn/internal/routing"
	"qntn/internal/stats"
)

// RoutingMetricResult compares routing cost functions on identical
// topologies and workloads.
type RoutingMetricResult struct {
	Metric        string
	ServedPercent float64
	MeanFidelity  float64
	MeanPathEta   float64
	MeanHops      float64
}

// AblationRoutingMetric contrasts the paper's 1/(η+ε) additive metric with
// the product-optimal −log η metric and plain hop count. It runs on the
// hybrid (HAP + constellation) topology: with a single relay layer there is
// almost never more than one bridging relay, so every metric picks the same
// path; the hybrid offers genuine route diversity (HAP vs best satellite)
// and exposes the metrics' different choices. The same request workload is
// replayed for every metric.
func AblationRoutingMetric(p qntn.Params, nSats int, cfg qntn.ServeConfig) ([]RoutingMetricResult, error) {
	sc, err := qntn.NewHybrid(nSats, p)
	if err != nil {
		return nil, err
	}
	metrics := []struct {
		name string
		cost routing.CostFunc
	}{
		{"1/(eta+eps) (paper)", routing.InverseEtaCost(p.RoutingEpsilon)},
		{"-log(eta) (product-optimal)", routing.NegLogEtaCost(p.RoutingEpsilon)},
		{"hop count", routing.HopCountCost()},
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = orbit.Day
	}
	stepGap := cfg.Horizon / time.Duration(cfg.Steps)

	out := make([]RoutingMetricResult, 0, len(metrics))
	for _, m := range metrics {
		wl := qntn.NewWorkload(sc, cfg.Seed)
		var fids, etas, hops []float64
		attempted, served := 0, 0
		for step := 0; step < cfg.Steps; step++ {
			at := time.Duration(step) * stepGap
			g, err := sc.Graph(at)
			if err != nil {
				return nil, err
			}
			// One Dijkstra per distinct source in this step's batch.
			bySrc := make(map[string]*routing.SingleSourceResult)
			for _, req := range wl.Batch(cfg.RequestsPerStep) {
				attempted++
				res, ok := bySrc[req.Src]
				if !ok {
					res, err = routing.Dijkstra(g, req.Src, m.cost)
					if err != nil {
						return nil, err
					}
					bySrc[req.Src] = res
				}
				if math.IsInf(res.Dist[req.Dst], 1) {
					continue
				}
				path, err := res.PathTo(req.Dst)
				if err != nil {
					return nil, err
				}
				hopEtas, err := g.EdgeEtas(path)
				if err != nil {
					return nil, err
				}
				eta := 1.0
				for _, e := range hopEtas {
					eta *= e
				}
				served++
				fids = append(fids, qntn.PathFidelity(hopEtas, p.FidelityModel))
				etas = append(etas, eta)
				hops = append(hops, float64(len(hopEtas)))
			}
		}
		r := RoutingMetricResult{Metric: m.name}
		if attempted > 0 {
			r.ServedPercent = 100 * float64(served) / float64(attempted)
		}
		r.MeanFidelity = stats.Mean(fids)
		r.MeanPathEta = stats.Mean(etas)
		r.MeanHops = stats.Mean(hops)
		out = append(out, r)
	}
	return out, nil
}

// ConventionResult reports the two fidelity conventions side by side for
// one architecture.
type ConventionResult struct {
	Architecture string
	MeanRoot     float64
	MeanSquared  float64
}

// AblationFidelityConvention re-scores both architectures' served requests
// under the root and squared Uhlmann conventions — quantifying the
// discrepancy documented in DESIGN.md.
func AblationFidelityConvention(p qntn.Params, nSats int, cfg qntn.ServeConfig) ([]ConventionResult, error) {
	scenarios := make(map[string]*qntn.Scenario, 2)
	space, err := qntn.NewSpaceGround(nSats, p)
	if err != nil {
		return nil, err
	}
	scenarios[qntn.SpaceGround.String()] = space
	air, err := qntn.NewAirGround(p)
	if err != nil {
		return nil, err
	}
	scenarios[qntn.AirGround.String()] = air

	var out []ConventionResult
	for _, name := range []string{qntn.SpaceGround.String(), qntn.AirGround.String()} {
		res, err := scenarios[name].RunServe(cfg)
		if err != nil {
			return nil, err
		}
		var roots, squares []float64
		for _, o := range res.Metrics.Outcomes {
			if o.Served {
				roots = append(roots, o.Fidelity)
				squares = append(squares, o.Fidelity*o.Fidelity)
			}
		}
		out = append(out, ConventionResult{
			Architecture: name,
			MeanRoot:     stats.Mean(roots),
			MeanSquared:  stats.Mean(squares),
		})
	}
	return out, nil
}

// TurbulenceResult reports performance under a scaled Hufnagel-Valley
// turbulence profile.
type TurbulenceResult struct {
	Scale              float64
	SpaceServedPercent float64
	SpaceMeanFidelity  float64
	AirServedPercent   float64
	AirMeanFidelity    float64
}

// AblationTurbulence sweeps turbulence strength (0 = the paper's ideal
// assumption; 1 = nominal HV5/7; above 1 = degraded weather), addressing
// the paper's future-work question of how weather affects each
// architecture.
func AblationTurbulence(p qntn.Params, nSats int, cfg qntn.ServeConfig, scales []float64) ([]TurbulenceResult, error) {
	var out []TurbulenceResult
	for _, s := range scales {
		ps := p
		if s > 0 {
			hv := atmosphere.HV57().Scaled(s)
			ps.Turbulence = &hv
		} else {
			ps.Turbulence = nil
		}
		space, err := qntn.NewSpaceGround(nSats, ps)
		if err != nil {
			return nil, err
		}
		spaceRes, err := space.RunServe(cfg)
		if err != nil {
			return nil, err
		}
		air, err := qntn.NewAirGround(ps)
		if err != nil {
			return nil, err
		}
		airRes, err := air.RunServe(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, TurbulenceResult{
			Scale:              s,
			SpaceServedPercent: spaceRes.ServedPercent,
			SpaceMeanFidelity:  spaceRes.MeanFidelity,
			AirServedPercent:   airRes.ServedPercent,
			AirMeanFidelity:    airRes.MeanFidelity,
		})
	}
	return out, nil
}

// MaskResult reports coverage under one elevation mask.
type MaskResult struct {
	MaskDeg         float64
	CoveragePercent float64
}

// AblationElevationMask sweeps the ground-terminal elevation mask,
// quantifying how strongly the paper's π/9 choice drives the coverage
// result.
func AblationElevationMask(p qntn.Params, nSats int, duration time.Duration, masksDeg []float64) ([]MaskResult, error) {
	var out []MaskResult
	for _, deg := range masksDeg {
		pm := p
		pm.MinElevationRad = geo.Rad(deg)
		points, err := qntn.CoverageSweep(pm, []int{nSats}, duration)
		if err != nil {
			return nil, err
		}
		out = append(out, MaskResult{MaskDeg: deg, CoveragePercent: points[0].Result.Percent()})
	}
	return out, nil
}

// PlacementResult reports one (architecture, source placement) cell.
type PlacementResult struct {
	Architecture string
	Model        qntn.FidelityModel
	MeanFidelity float64
}

// AblationSourcePlacement contrasts the platform-source (best-split,
// Micius-style) model with keeping the entanglement source at the
// requesting endpoint.
func AblationSourcePlacement(p qntn.Params, nSats int, cfg qntn.ServeConfig) ([]PlacementResult, error) {
	var out []PlacementResult
	for _, model := range []qntn.FidelityModel{qntn.SourceAtBestSplit, qntn.SourceAtEndpoint} {
		pm := p
		pm.FidelityModel = model
		space, err := qntn.NewSpaceGround(nSats, pm)
		if err != nil {
			return nil, err
		}
		spaceRes, err := space.RunServe(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, PlacementResult{qntn.SpaceGround.String(), model, spaceRes.MeanFidelity})
		air, err := qntn.NewAirGround(pm)
		if err != nil {
			return nil, err
		}
		airRes, err := air.RunServe(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, PlacementResult{qntn.AirGround.String(), model, airRes.MeanFidelity})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: no placement results")
	}
	return out, nil
}

// OrbitDesignResult reports coverage for one constellation design point.
type OrbitDesignResult struct {
	AltitudeKM      float64
	InclinationDeg  float64
	CoveragePercent float64
}

// AblationOrbitDesign sweeps the constellation's altitude and inclination
// (keeping the Table II slot pattern and satellite count) to show how the
// paper's 500 km / 53° choice trades footprint size against link budget:
// higher orbits see more of Tennessee but their longer slant ranges push
// links below the transmissivity threshold.
func AblationOrbitDesign(p qntn.Params, nSats int, duration time.Duration, altitudesKM, inclinationsDeg []float64) ([]OrbitDesignResult, error) {
	var out []OrbitDesignResult
	for _, alt := range altitudesKM {
		for _, incl := range inclinationsDeg {
			pp := p
			pp.SatelliteAltitudeM = alt * 1000
			pp.InclinationDeg = incl
			points, err := qntn.CoverageSweep(pp, []int{nSats}, duration)
			if err != nil {
				return nil, err
			}
			out = append(out, OrbitDesignResult{
				AltitudeKM:      alt,
				InclinationDeg:  incl,
				CoveragePercent: points[0].Result.Percent(),
			})
		}
	}
	return out, nil
}
