package experiments

import (
	"context"
	"math"
	"time"

	"qntn/internal/atmosphere"
	"qntn/internal/geo"
	"qntn/internal/orbit"
	"qntn/internal/qntn"
	"qntn/internal/routing"
	"qntn/internal/runner"
	"qntn/internal/stats"
)

// RoutingMetricResult compares routing cost functions on identical
// topologies and workloads.
type RoutingMetricResult struct {
	Metric        string
	ServedPercent float64
	MeanFidelity  float64
	MeanPathEta   float64
	MeanHops      float64
}

// AblationRoutingMetric contrasts the paper's 1/(η+ε) additive metric with
// the product-optimal −log η metric and plain hop count. It runs on the
// hybrid (HAP + constellation) topology: with a single relay layer there is
// almost never more than one bridging relay, so every metric picks the same
// path; the hybrid offers genuine route diversity (HAP vs best satellite)
// and exposes the metrics' different choices. The same request workload is
// replayed for every metric.
func AblationRoutingMetric(p qntn.Params, nSats int, cfg qntn.ServeConfig) ([]RoutingMetricResult, error) {
	return AblationRoutingMetricParallel(p, nSats, cfg, 0)
}

// AblationRoutingMetricParallel fans the three metrics out over the worker
// pool. The scenario is shared (its link evaluation is pure) and each
// metric owns its workload generator and output slot, so the comparison is
// identical for any worker count.
func AblationRoutingMetricParallel(p qntn.Params, nSats int, cfg qntn.ServeConfig, workers int) ([]RoutingMetricResult, error) {
	sc, err := qntn.NewHybrid(nSats, p)
	if err != nil {
		return nil, err
	}
	metrics := []struct {
		name string
		cost routing.CostFunc
	}{
		{"1/(eta+eps) (paper)", routing.InverseEtaCost(p.RoutingEpsilon)},
		{"-log(eta) (product-optimal)", routing.NegLogEtaCost(p.RoutingEpsilon)},
		{"hop count", routing.HopCountCost()},
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = orbit.Day
	}
	stepGap := cfg.Horizon / time.Duration(cfg.Steps)

	out := make([]RoutingMetricResult, len(metrics))
	err = runner.Map(context.Background(), len(metrics), workers, func(_ context.Context, mi int) error {
		m := metrics[mi]
		wl, err := qntn.NewWorkload(sc, cfg.Seed)
		if err != nil {
			return err
		}
		var fids, etas, hops []float64
		attempted, served := 0, 0
		for step := 0; step < cfg.Steps; step++ {
			at := time.Duration(step) * stepGap
			g, err := sc.Graph(at)
			if err != nil {
				return err
			}
			// One Dijkstra per distinct source in this step's batch.
			bySrc := make(map[string]*routing.SingleSourceResult)
			for _, req := range wl.Batch(cfg.RequestsPerStep) {
				attempted++
				res, ok := bySrc[req.Src]
				if !ok {
					res, err = routing.Dijkstra(g, req.Src, m.cost)
					if err != nil {
						return err
					}
					bySrc[req.Src] = res
				}
				if math.IsInf(res.Dist[req.Dst], 1) {
					continue
				}
				path, err := res.PathTo(req.Dst)
				if err != nil {
					return err
				}
				hopEtas, err := g.EdgeEtas(path)
				if err != nil {
					return err
				}
				eta := 1.0
				for _, e := range hopEtas {
					eta *= e
				}
				served++
				fids = append(fids, qntn.PathFidelity(hopEtas, p.FidelityModel))
				etas = append(etas, eta)
				hops = append(hops, float64(len(hopEtas)))
			}
		}
		r := RoutingMetricResult{Metric: m.name}
		if attempted > 0 {
			r.ServedPercent = 100 * float64(served) / float64(attempted)
		}
		r.MeanFidelity = stats.Mean(fids)
		r.MeanPathEta = stats.Mean(etas)
		r.MeanHops = stats.Mean(hops)
		out[mi] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ConventionResult reports the two fidelity conventions side by side for
// one architecture.
type ConventionResult struct {
	Architecture string
	MeanRoot     float64
	MeanSquared  float64
}

// AblationFidelityConvention re-scores both architectures' served requests
// under the root and squared Uhlmann conventions — quantifying the
// discrepancy documented in DESIGN.md.
func AblationFidelityConvention(p qntn.Params, nSats int, cfg qntn.ServeConfig) ([]ConventionResult, error) {
	return AblationFidelityConventionParallel(p, nSats, cfg, 0)
}

// AblationFidelityConventionParallel fans the two architectures out over
// the worker pool; each task owns its scenario and output slot.
func AblationFidelityConventionParallel(p qntn.Params, nSats int, cfg qntn.ServeConfig, workers int) ([]ConventionResult, error) {
	space, err := qntn.NewSpaceGround(nSats, p)
	if err != nil {
		return nil, err
	}
	air, err := qntn.NewAirGround(p)
	if err != nil {
		return nil, err
	}
	scenarios := []*qntn.Scenario{space, air}
	names := []string{qntn.SpaceGround.String(), qntn.AirGround.String()}

	out := make([]ConventionResult, len(scenarios))
	err = runner.Map(context.Background(), len(scenarios), workers, func(_ context.Context, i int) error {
		res, err := scenarios[i].RunServe(cfg)
		if err != nil {
			return err
		}
		var roots, squares []float64
		for _, o := range res.Metrics.Outcomes {
			if o.Served {
				roots = append(roots, o.Fidelity)
				squares = append(squares, o.Fidelity*o.Fidelity)
			}
		}
		out[i] = ConventionResult{
			Architecture: names[i],
			MeanRoot:     stats.Mean(roots),
			MeanSquared:  stats.Mean(squares),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TurbulenceResult reports performance under a scaled Hufnagel-Valley
// turbulence profile.
type TurbulenceResult struct {
	Scale              float64
	SpaceServedPercent float64
	SpaceMeanFidelity  float64
	AirServedPercent   float64
	AirMeanFidelity    float64
}

// AblationTurbulence sweeps turbulence strength (0 = the paper's ideal
// assumption; 1 = nominal HV5/7; above 1 = degraded weather), addressing
// the paper's future-work question of how weather affects each
// architecture.
func AblationTurbulence(p qntn.Params, nSats int, cfg qntn.ServeConfig, scales []float64) ([]TurbulenceResult, error) {
	return AblationTurbulenceParallel(p, nSats, cfg, scales, 0)
}

// AblationTurbulenceParallel fans the turbulence scales out over the worker
// pool; each scale builds its own pair of scenarios and owns its output
// slot.
func AblationTurbulenceParallel(p qntn.Params, nSats int, cfg qntn.ServeConfig, scales []float64, workers int) ([]TurbulenceResult, error) {
	out := make([]TurbulenceResult, len(scales))
	err := runner.Map(context.Background(), len(scales), workers, func(_ context.Context, i int) error {
		s := scales[i]
		ps := p
		if s > 0 {
			hv := atmosphere.HV57().Scaled(s)
			ps.Turbulence = &hv
		} else {
			ps.Turbulence = nil
		}
		space, err := qntn.NewSpaceGround(nSats, ps)
		if err != nil {
			return err
		}
		spaceRes, err := space.RunServe(cfg)
		if err != nil {
			return err
		}
		air, err := qntn.NewAirGround(ps)
		if err != nil {
			return err
		}
		airRes, err := air.RunServe(cfg)
		if err != nil {
			return err
		}
		out[i] = TurbulenceResult{
			Scale:              s,
			SpaceServedPercent: spaceRes.ServedPercent,
			SpaceMeanFidelity:  spaceRes.MeanFidelity,
			AirServedPercent:   airRes.ServedPercent,
			AirMeanFidelity:    airRes.MeanFidelity,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MaskResult reports coverage under one elevation mask.
type MaskResult struct {
	MaskDeg         float64
	CoveragePercent float64
}

// AblationElevationMask sweeps the ground-terminal elevation mask,
// quantifying how strongly the paper's π/9 choice drives the coverage
// result.
func AblationElevationMask(p qntn.Params, nSats int, duration time.Duration, masksDeg []float64) ([]MaskResult, error) {
	return AblationElevationMaskParallel(p, nSats, duration, masksDeg, 0)
}

// AblationElevationMaskParallel fans the masks out over the worker pool.
// The inner coverage sweep runs single-worker: the outer fan-out already
// saturates the pool, and nesting pools would oversubscribe the CPUs.
func AblationElevationMaskParallel(p qntn.Params, nSats int, duration time.Duration, masksDeg []float64, workers int) ([]MaskResult, error) {
	out := make([]MaskResult, len(masksDeg))
	err := runner.Map(context.Background(), len(masksDeg), workers, func(_ context.Context, i int) error {
		pm := p
		pm.MinElevationRad = geo.Rad(masksDeg[i])
		points, err := qntn.CoverageSweepParallel(pm, []int{nSats}, duration, 1)
		if err != nil {
			return err
		}
		out[i] = MaskResult{MaskDeg: masksDeg[i], CoveragePercent: points[0].Result.Percent()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PlacementResult reports one (architecture, source placement) cell.
type PlacementResult struct {
	Architecture string
	Model        qntn.FidelityModel
	MeanFidelity float64
}

// AblationSourcePlacement contrasts the platform-source (best-split,
// Micius-style) model with keeping the entanglement source at the
// requesting endpoint.
func AblationSourcePlacement(p qntn.Params, nSats int, cfg qntn.ServeConfig) ([]PlacementResult, error) {
	return AblationSourcePlacementParallel(p, nSats, cfg, 0)
}

// AblationSourcePlacementParallel fans the model × architecture grid out
// over the worker pool; every cell builds its own scenario and owns its
// output slot, preserving the sequential row order (per model: space, then
// air).
func AblationSourcePlacementParallel(p qntn.Params, nSats int, cfg qntn.ServeConfig, workers int) ([]PlacementResult, error) {
	models := []qntn.FidelityModel{qntn.SourceAtBestSplit, qntn.SourceAtEndpoint}
	out := make([]PlacementResult, 2*len(models))
	err := runner.Grid(context.Background(), len(models), 2, workers, func(_ context.Context, mi, arch int) error {
		pm := p
		pm.FidelityModel = models[mi]
		var (
			sc   *qntn.Scenario
			name string
			err  error
		)
		if arch == 0 {
			sc, err = qntn.NewSpaceGround(nSats, pm)
			name = qntn.SpaceGround.String()
		} else {
			sc, err = qntn.NewAirGround(pm)
			name = qntn.AirGround.String()
		}
		if err != nil {
			return err
		}
		res, err := sc.RunServe(cfg)
		if err != nil {
			return err
		}
		out[mi*2+arch] = PlacementResult{name, models[mi], res.MeanFidelity}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// OrbitDesignResult reports coverage for one constellation design point.
type OrbitDesignResult struct {
	AltitudeKM      float64
	InclinationDeg  float64
	CoveragePercent float64
}

// AblationOrbitDesign sweeps the constellation's altitude and inclination
// (keeping the Table II slot pattern and satellite count) to show how the
// paper's 500 km / 53° choice trades footprint size against link budget:
// higher orbits see more of Tennessee but their longer slant ranges push
// links below the transmissivity threshold.
func AblationOrbitDesign(p qntn.Params, nSats int, duration time.Duration, altitudesKM, inclinationsDeg []float64) ([]OrbitDesignResult, error) {
	return AblationOrbitDesignParallel(p, nSats, duration, altitudesKM, inclinationsDeg, 0)
}

// AblationOrbitDesignParallel fans the altitude × inclination grid out over
// the worker pool; each design point owns its output slot and runs its
// inner coverage sweep single-worker (the grid saturates the pool).
func AblationOrbitDesignParallel(p qntn.Params, nSats int, duration time.Duration, altitudesKM, inclinationsDeg []float64, workers int) ([]OrbitDesignResult, error) {
	out := make([]OrbitDesignResult, len(altitudesKM)*len(inclinationsDeg))
	err := runner.Grid(context.Background(), len(altitudesKM), len(inclinationsDeg), workers, func(_ context.Context, ai, ii int) error {
		pp := p
		pp.SatelliteAltitudeM = altitudesKM[ai] * 1000
		pp.InclinationDeg = inclinationsDeg[ii]
		points, err := qntn.CoverageSweepParallel(pp, []int{nSats}, duration, 1)
		if err != nil {
			return err
		}
		out[ai*len(inclinationsDeg)+ii] = OrbitDesignResult{
			AltitudeKM:      altitudesKM[ai],
			InclinationDeg:  inclinationsDeg[ii],
			CoveragePercent: points[0].Result.Percent(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
