package experiments

import (
	"testing"
	"time"

	"qntn/internal/qntn"
)

func TestExtensionStatewideStudy(t *testing.T) {
	cfg := qntn.ServeConfig{RequestsPerStep: 20, Steps: 5, Horizon: 24 * time.Hour, Seed: 9}
	rows, err := ExtensionStatewideStudy(qntn.DefaultParams(), cfg, 90*time.Minute, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	oneHAP, threeHAP, space := rows[0], rows[1], rows[2]

	// More platforms reach more pairs and serve more requests.
	if threeHAP.ConnectedPairsPercent <= oneHAP.ConnectedPairsPercent {
		t.Fatal("three HAPs should reach more pairs than one")
	}
	if threeHAP.ServedPercent < oneHAP.ServedPercent {
		t.Fatal("three HAPs should serve at least as much as one")
	}
	// No HAP fleet reaches Memphis: reachable pairs capped at 10/15.
	if threeHAP.ConnectedPairsPercent > 100*10.0/15.0+1e-9 {
		t.Fatalf("HAP fleet reached %.2f%% of pairs — Memphis should be unreachable", threeHAP.ConnectedPairsPercent)
	}
	// All-pairs coverage is therefore zero for every HAP fleet.
	if oneHAP.CoveragePercent != 0 || threeHAP.CoveragePercent != 0 {
		t.Fatal("HAP fleets cannot achieve all-pairs statewide coverage")
	}
	// The constellation joins every pair at least once.
	if space.ConnectedPairsPercent != 100 {
		t.Fatalf("space reachable pairs %.2f%%", space.ConnectedPairsPercent)
	}
	if space.CoveragePercent <= 0 {
		t.Fatal("space statewide coverage should be positive")
	}
}

func TestStatewidePlacement(t *testing.T) {
	positions, connected, total, err := StatewidePlacement(qntn.DefaultParams(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if total != 15 || connected != 10 {
		t.Fatalf("connectivity %d/%d", connected, total)
	}
	if len(positions) == 0 || len(positions) > 5 {
		t.Fatalf("%d positions", len(positions))
	}
}

func TestExtensionMultipathStudy(t *testing.T) {
	cfg := qntn.ServeConfig{RequestsPerStep: 10, Steps: 5, Horizon: 24 * time.Hour, Seed: 4}
	rows, err := ExtensionMultipathStudy(qntn.DefaultParams(), 36, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Success probability is monotone in the path budget, and bounded.
	prev := 0.0
	for _, r := range rows {
		if r.MeanSuccessProbability < prev-1e-12 {
			t.Fatalf("success probability decreased: %+v", rows)
		}
		prev = r.MeanSuccessProbability
		if r.MeanSuccessProbability <= 0 || r.MeanSuccessProbability > 1 {
			t.Fatalf("success probability %g out of range", r.MeanSuccessProbability)
		}
		if r.MeanPathsFound < 1 || r.MeanPathsFound > float64(r.Paths) {
			t.Fatalf("paths found %g for budget %d", r.MeanPathsFound, r.Paths)
		}
	}
	// Redundancy must actually help on the hybrid (the HAP plus a
	// satellite give ≥2 disjoint routes much of the time).
	if rows[2].MeanSuccessProbability <= rows[0].MeanSuccessProbability {
		t.Fatal("three disjoint paths no better than one")
	}
}

func TestExtensionThroughputStudy(t *testing.T) {
	cfg := qntn.ServeConfig{RequestsPerStep: 10, Steps: 6, Horizon: 24 * time.Hour, Seed: 2}
	rows, err := ExtensionThroughputStudy(qntn.DefaultParams(), 108, cfg, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	space, air := rows[0], rows[1]
	// The HAP's higher path transmissivity gives it a higher per-request
	// rate, and full serving makes the effective rate gap even wider.
	if air.MeanServedPairRateHz <= space.MeanServedPairRateHz {
		t.Fatalf("air rate %g not above space %g", air.MeanServedPairRateHz, space.MeanServedPairRateHz)
	}
	if air.MeanEffectiveRateHz <= space.MeanEffectiveRateHz {
		t.Fatal("air effective rate should dominate")
	}
	for _, r := range rows {
		if r.WorstServedPairRateHz > r.MeanServedPairRateHz {
			t.Fatalf("%s: worst above mean", r.Architecture)
		}
		if r.MeanEffectiveRateHz > r.MeanServedPairRateHz+1e-9 {
			t.Fatalf("%s: effective above served mean", r.Architecture)
		}
	}
}
