package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"qntn/internal/qntn"
)

func TestFig5Sweep(t *testing.T) {
	points, err := Fig5(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 101 {
		t.Fatalf("point count %d, want 101", len(points))
	}
	if points[0].Eta != 0 || math.Abs(points[100].Eta-1) > 1e-9 {
		t.Fatalf("sweep range [%g, %g]", points[0].Eta, points[100].Eta)
	}
	// Monotone increasing fidelity, endpoints 0.5 and 1.
	prev := -1.0
	for _, p := range points {
		if p.FidelityRoot < prev {
			t.Fatalf("fidelity not monotone at eta=%g", p.Eta)
		}
		prev = p.FidelityRoot
		if math.Abs(p.FidelitySquared-p.FidelityRoot*p.FidelityRoot) > 1e-12 {
			t.Fatalf("squared inconsistent at eta=%g", p.Eta)
		}
	}
	if math.Abs(points[0].FidelityRoot-0.5) > 1e-9 {
		t.Fatalf("F(0) = %g, want 0.5", points[0].FidelityRoot)
	}
	if math.Abs(points[100].FidelityRoot-1) > 1e-9 {
		t.Fatalf("F(1) = %g, want 1", points[100].FidelityRoot)
	}
}

func TestFig5ThresholdIsPoint7(t *testing.T) {
	// The paper's headline reading of Fig. 5: transmissivity 0.7 is the
	// first sweep point with fidelity above 0.9.
	points, err := Fig5(0.01)
	if err != nil {
		t.Fatal(err)
	}
	eta, err := Fig5Threshold(points, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// F = (1+sqrt(eta))/2 crosses 0.9 exactly at eta = 0.64; the paper's
	// 0.7 is a conservative read of the same curve. Assert both: the
	// crossing sits at 0.64, and the paper's statement "0.7 yields
	// fidelity greater than 90%" holds.
	if math.Abs(eta-0.64) > 0.0101 {
		t.Fatalf("0.9-fidelity crossing at eta=%g, want ≈0.64", eta)
	}
	var at07 float64
	for _, p := range points {
		if math.Abs(p.Eta-0.7) < 1e-9 {
			at07 = p.FidelityRoot
		}
	}
	if at07 <= 0.9 {
		t.Fatalf("F(0.7) = %g, paper requires > 0.9", at07)
	}
	if _, err := Fig5Threshold(points, 1.1); err == nil {
		t.Fatal("unreachable target accepted")
	}
}

func TestFig5RejectsBadStep(t *testing.T) {
	for _, s := range []float64{0, -0.1, 1.5} {
		if _, err := Fig5(s); err == nil {
			t.Errorf("step %g accepted", s)
		}
	}
}

func TestFig6ShortWindow(t *testing.T) {
	points, err := Fig6(qntn.DefaultParams(), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 18 {
		t.Fatalf("%d points", len(points))
	}
	if points[17].Satellites != 108 {
		t.Fatalf("last point %d satellites", points[17].Satellites)
	}
}

func TestTable3ShortRun(t *testing.T) {
	cfg := qntn.ServeConfig{RequestsPerStep: 10, Steps: 5, Horizon: 24 * time.Hour, Seed: 2}
	rows, err := Table3(qntn.DefaultParams(), cfg, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	space, air := rows[0], rows[1]
	if space.Architecture != "space-ground" || air.Architecture != "air-ground" {
		t.Fatalf("row order %v / %v", space.Architecture, air.Architecture)
	}
	// The paper's qualitative result: air-ground dominates on every
	// metric.
	if air.CoveragePercent < space.CoveragePercent {
		t.Fatalf("air coverage %.2f < space %.2f", air.CoveragePercent, space.CoveragePercent)
	}
	if air.ServedPercent < space.ServedPercent {
		t.Fatalf("air served %.2f < space %.2f", air.ServedPercent, space.ServedPercent)
	}
	if air.MeanFidelity <= space.MeanFidelity {
		t.Fatalf("air fidelity %.4f <= space %.4f", air.MeanFidelity, space.MeanFidelity)
	}
	if air.CoveragePercent != 100 || air.ServedPercent != 100 {
		t.Fatalf("air-ground should be 100/100, got %.2f/%.2f", air.CoveragePercent, air.ServedPercent)
	}
}

func TestRenderTable(t *testing.T) {
	var b strings.Builder
	err := RenderTable(&b, "Title", []string{"A", "Bee"}, [][]string{{"1", "2"}, {"333", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Title", "A", "Bee", "333", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderSeries(t *testing.T) {
	var b strings.Builder
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 1, 4, 9}
	if err := RenderSeries(&b, "quad", "x", "y", xs, ys); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "quad") {
		t.Fatalf("series output missing marks:\n%s", out)
	}
	if err := RenderSeries(&b, "", "x", "y", xs, ys[:2]); err == nil {
		t.Fatal("misaligned series accepted")
	}
	if err := RenderSeries(&b, "", "x", "y", nil, nil); err == nil {
		t.Fatal("empty series accepted")
	}
	// Constant series should not divide by zero.
	if err := RenderSeries(&b, "flat", "x", "y", []float64{1, 2}, []float64{5, 5}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatHelpers(t *testing.T) {
	if FormatPercent(55.171) != "55.17%" {
		t.Fatalf("percent format %q", FormatPercent(55.171))
	}
	if FormatFidelity(0.9786) != "0.98" {
		t.Fatalf("fidelity format %q", FormatFidelity(0.9786))
	}
}

func TestAblationRoutingMetric(t *testing.T) {
	cfg := qntn.ServeConfig{RequestsPerStep: 10, Steps: 4, Horizon: 24 * time.Hour, Seed: 3}
	rows, err := AblationRoutingMetric(qntn.DefaultParams(), 36, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// All metrics serve the same request set on the same topology, so the
	// served percentage must be identical (reachability does not depend
	// on the metric).
	for _, r := range rows[1:] {
		if math.Abs(r.ServedPercent-rows[0].ServedPercent) > 1e-9 {
			t.Fatalf("served%% differs across metrics: %+v", rows)
		}
	}
	// The product-optimal metric cannot yield a worse mean path
	// transmissivity than hop count.
	var optimal, hops *RoutingMetricResult
	for i := range rows {
		switch {
		case strings.Contains(rows[i].Metric, "log"):
			optimal = &rows[i]
		case strings.Contains(rows[i].Metric, "hop"):
			hops = &rows[i]
		}
	}
	if optimal == nil || hops == nil {
		t.Fatal("expected metrics missing")
	}
	if optimal.MeanPathEta+1e-9 < hops.MeanPathEta {
		t.Fatalf("product-optimal eta %.4f below hop-count %.4f", optimal.MeanPathEta, hops.MeanPathEta)
	}
}

func TestAblationFidelityConvention(t *testing.T) {
	cfg := qntn.ServeConfig{RequestsPerStep: 10, Steps: 3, Horizon: 24 * time.Hour, Seed: 3}
	rows, err := AblationFidelityConvention(qntn.DefaultParams(), 36, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.MeanSquared >= r.MeanRoot && r.MeanRoot > 0 {
			t.Fatalf("%s: squared %g not below root %g", r.Architecture, r.MeanSquared, r.MeanRoot)
		}
	}
}

func TestAblationElevationMask(t *testing.T) {
	rows, err := AblationElevationMask(qntn.DefaultParams(), 108, time.Hour, []float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Lower mask → more coverage.
	if rows[0].CoveragePercent < rows[1].CoveragePercent || rows[1].CoveragePercent < rows[2].CoveragePercent {
		t.Fatalf("coverage not monotone in mask: %+v", rows)
	}
}

func TestAblationSourcePlacement(t *testing.T) {
	cfg := qntn.ServeConfig{RequestsPerStep: 8, Steps: 3, Horizon: 24 * time.Hour, Seed: 4}
	rows, err := AblationSourcePlacement(qntn.DefaultParams(), 36, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Best-split fidelity dominates endpoint fidelity per architecture.
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[r.Architecture+"/"+r.Model.String()] = r.MeanFidelity
	}
	for _, arch := range []string{"space-ground", "air-ground"} {
		best := byKey[arch+"/source-at-best-split"]
		end := byKey[arch+"/source-at-endpoint"]
		if best != 0 && end != 0 && best < end {
			t.Fatalf("%s: best-split %g below endpoint %g", arch, best, end)
		}
	}
}

func TestAblationTurbulence(t *testing.T) {
	cfg := qntn.ServeConfig{RequestsPerStep: 6, Steps: 2, Horizon: 24 * time.Hour, Seed: 4}
	rows, err := AblationTurbulence(qntn.DefaultParams(), 36, cfg, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	clear, turb := rows[0], rows[1]
	// Turbulence cannot improve anything.
	if turb.AirMeanFidelity > clear.AirMeanFidelity+1e-9 {
		t.Fatalf("turbulence improved air fidelity: %+v", rows)
	}
	if turb.SpaceServedPercent > clear.SpaceServedPercent+1e-9 {
		t.Fatalf("turbulence improved space serving: %+v", rows)
	}
}
