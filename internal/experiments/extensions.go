package experiments

import (
	"fmt"
	"time"

	"qntn/internal/qntn"
	"qntn/internal/quantum"
)

// LatencyRow reports one (architecture, memory quality) cell of the
// time-aware extension study.
type LatencyRow struct {
	Architecture  string
	MemoryT2      time.Duration // 0 = ideal
	ServedPercent float64
	MeanFidelity  float64
	MeanLatency   time.Duration
	MaxLatency    time.Duration
}

// ExtensionLatencyStudy runs the event-driven serving experiment with
// heralding latency and memory dephasing — the paper's latency discussion
// (§II-D) made quantitative. For each architecture and each memory
// coherence time, it reports serving, fidelity, and latency statistics.
func ExtensionLatencyStudy(p qntn.Params, nSats int, cfg qntn.ServeConfig, t2s []time.Duration) ([]LatencyRow, error) {
	type arch struct {
		name  string
		build func(qntn.Params) (*qntn.Scenario, error)
	}
	archs := []arch{
		{qntn.SpaceGround.String(), func(pp qntn.Params) (*qntn.Scenario, error) { return qntn.NewSpaceGround(nSats, pp) }},
		{qntn.AirGround.String(), qntn.NewAirGround},
	}
	var rows []LatencyRow
	for _, a := range archs {
		for _, t2 := range t2s {
			pp := p
			pp.MemoryT2 = t2
			sc, err := a.build(pp)
			if err != nil {
				return nil, err
			}
			res, err := sc.RunServeDES(cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: latency study (%s, T2=%v): %w", a.name, t2, err)
			}
			rows = append(rows, LatencyRow{
				Architecture:  a.name,
				MemoryT2:      t2,
				ServedPercent: res.ServedPercent,
				MeanFidelity:  res.MeanFidelity,
				MeanLatency:   res.MeanLatency,
				MaxLatency:    res.MaxLatency,
			})
		}
	}
	return rows, nil
}

// PurificationRow reports one recurrence round of the purification
// extension study.
type PurificationRow struct {
	LinkEta float64
	Round   int // 0 = unpurified
	// Fidelity of the surviving pair after Round rounds.
	Fidelity float64
	// SuccessProbability of the round (1 for round 0).
	SuccessProbability float64
	// ExpectedPairsConsumed is the expected number of raw pairs needed
	// per surviving pair, accounting for postselection failures.
	ExpectedPairsConsumed float64
}

// ExtensionPurificationStudy quantifies how BBPSSW recurrence purification
// recovers the fidelity lost on low-transmissivity paths — the natural
// remedy for the space-ground fidelity deficit identified in
// EXPERIMENTS.md. For each end-to-end transmissivity it pumps the pair for
// the given number of rounds with fresh copies.
func ExtensionPurificationStudy(etas []float64, rounds int) ([]PurificationRow, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("experiments: purification study requires positive rounds")
	}
	var rows []PurificationRow
	for _, eta := range etas {
		pair, err := quantum.DistributeBellPair(eta)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PurificationRow{
			LinkEta:               eta,
			Round:                 0,
			Fidelity:              quantum.BellFidelity(pair),
			SuccessProbability:    1,
			ExpectedPairsConsumed: 1,
		})
		results, err := quantum.PurifyLadder(pair, rounds, quantum.BBPSSW)
		if err != nil {
			return nil, err
		}
		// Expected raw-pair cost: each round consumes one fresh copy and
		// succeeds with probability p, so cost_k = (cost_{k-1} + 1)/p_k.
		cost := 1.0
		for r, res := range results {
			cost = (cost + 1) / res.SuccessProbability
			rows = append(rows, PurificationRow{
				LinkEta:               eta,
				Round:                 r + 1,
				Fidelity:              res.FidelityAfter,
				SuccessProbability:    res.SuccessProbability,
				ExpectedPairsConsumed: cost,
			})
		}
	}
	return rows, nil
}

// NightRow reports one (architecture, darkness policy) cell of the
// night-operation study.
type NightRow struct {
	Architecture    string
	NightOnly       bool
	CoveragePercent float64
	ServedPercent   float64
}

// ExtensionNightStudy quantifies the daylight-background constraint that
// the paper's ideal-conditions assumption waives: free-space quantum links
// in practice need a dark sky (Micius operates at night), so both
// architectures are re-evaluated with ground stations gated on darkness.
func ExtensionNightStudy(p qntn.Params, nSats int, cfg qntn.ServeConfig, coverageWindow time.Duration) ([]NightRow, error) {
	type arch struct {
		name  string
		build func(qntn.Params) (*qntn.Scenario, error)
	}
	archs := []arch{
		{qntn.SpaceGround.String(), func(pp qntn.Params) (*qntn.Scenario, error) { return qntn.NewSpaceGround(nSats, pp) }},
		{qntn.AirGround.String(), qntn.NewAirGround},
	}
	var rows []NightRow
	for _, a := range archs {
		for _, nightOnly := range []bool{false, true} {
			pp := p
			pp.RequireDarkness = nightOnly
			sc, err := a.build(pp)
			if err != nil {
				return nil, err
			}
			cov, err := sc.Coverage(coverageWindow)
			if err != nil {
				return nil, err
			}
			serve, err := sc.RunServe(cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, NightRow{
				Architecture:    a.name,
				NightOnly:       nightOnly,
				CoveragePercent: cov.Percent(),
				ServedPercent:   serve.ServedPercent,
			})
		}
	}
	return rows, nil
}

// OutageRow reports one HAP reliability level.
type OutageRow struct {
	OutageProbability float64
	CoveragePercent   float64
	ServedPercent     float64
	Intervals         int
}

// ExtensionOutageStudy sweeps the HAP outage probability — the paper's
// §II-D stability/maintenance concern made quantitative. Each step the
// platform is independently unavailable with the given probability;
// coverage tracks availability and the day fragments into many short
// connected intervals, which is what a downstream application would
// actually experience.
func ExtensionOutageStudy(p qntn.Params, cfg qntn.ServeConfig, window time.Duration, probs []float64) ([]OutageRow, error) {
	var rows []OutageRow
	for _, prob := range probs {
		pp := p
		pp.HAPOutageProbability = prob
		sc, err := qntn.NewAirGround(pp)
		if err != nil {
			return nil, err
		}
		cov, err := sc.Coverage(window)
		if err != nil {
			return nil, err
		}
		serve, err := sc.RunServe(cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, OutageRow{
			OutageProbability: prob,
			CoveragePercent:   cov.Percent(),
			ServedPercent:     serve.ServedPercent,
			Intervals:         len(cov.Intervals),
		})
	}
	return rows, nil
}

// ArrivalRow reports one (architecture, arrival rate) cell of the
// queueing-dynamics study.
type ArrivalRow struct {
	Architecture     string
	RatePerHour      float64
	ServedPercent    float64
	ImmediatePercent float64
	MeanWait         time.Duration
	MaxQueueDepth    int
	MeanFidelity     float64
}

// ExtensionArrivalStudy drives both architectures with Poisson request
// arrivals through the discrete-event simulator, exposing the queueing
// dynamics the paper's infinite-queue assumption hides: on the space-ground
// side requests pile up between passes and drain in bursts.
func ExtensionArrivalStudy(p qntn.Params, nSats int, horizon time.Duration, rates []float64, seed int64) ([]ArrivalRow, error) {
	type arch struct {
		name  string
		build func(qntn.Params) (*qntn.Scenario, error)
	}
	archs := []arch{
		{qntn.SpaceGround.String(), func(pp qntn.Params) (*qntn.Scenario, error) { return qntn.NewSpaceGround(nSats, pp) }},
		{qntn.AirGround.String(), qntn.NewAirGround},
	}
	var rows []ArrivalRow
	for _, a := range archs {
		sc, err := a.build(p)
		if err != nil {
			return nil, err
		}
		for _, rate := range rates {
			res, err := sc.RunArrivals(qntn.ArrivalConfig{RatePerHour: rate, Horizon: horizon, Seed: seed})
			if err != nil {
				return nil, err
			}
			immediate := 0.0
			if res.Arrivals > 0 {
				immediate = 100 * float64(res.ServedImmediately) / float64(res.Arrivals)
			}
			rows = append(rows, ArrivalRow{
				Architecture:     a.name,
				RatePerHour:      rate,
				ServedPercent:    res.ServedPercent(),
				ImmediatePercent: immediate,
				MeanWait:         res.MeanWait,
				MaxQueueDepth:    res.MaxQueueDepth,
				MeanFidelity:     res.MeanFidelity,
			})
		}
	}
	return rows, nil
}
