package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"qntn/internal/qntn"
	"qntn/internal/quantum/protocol"
)

// update regenerates the golden CSVs instead of comparing against them:
//
//	go test ./internal/experiments -run Golden -args -update
var update = flag.Bool("update", false, "rewrite golden CSV files")

// goldenParams/goldenServeConfig pin a reduced, fixed-seed configuration so
// the goldens stay cheap to regenerate while exercising the full
// experiment → CSV path.
func goldenParams() qntn.Params {
	return qntn.DefaultParams()
}

func goldenServeConfig() qntn.ServeConfig {
	return qntn.ServeConfig{RequestsPerStep: 10, Steps: 10, Seed: 1}
}

// checkGolden compares got against testdata/golden/<name>, byte for byte,
// rewriting the file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -args -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s diverged from golden output\n got:\n%s\nwant:\n%s", name, got, want)
	}
}

// goldenWorkerCounts are the parallelism levels every golden must match at
// — the byte-identical determinism claim of the sweep engine, checked at
// the CSV layer the paper artifacts are produced from.
var goldenWorkerCounts = []int{1, 2, 8}

func TestGoldenFig5CSV(t *testing.T) {
	points, err := Fig5(0.05)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Fig5CSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig5.csv", buf.Bytes())
}

func TestGoldenFig6CSV(t *testing.T) {
	p := goldenParams()
	for _, workers := range goldenWorkerCounts {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			points, err := Fig6Parallel(p, 90*time.Minute, workers)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := Fig6CSV(&buf, points); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "fig6.csv", buf.Bytes())
		})
	}
}

func TestGoldenFig78CSV(t *testing.T) {
	p := goldenParams()
	cfg := goldenServeConfig()
	for _, workers := range goldenWorkerCounts {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			points, err := Fig7And8Parallel(p, cfg, workers)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := Fig78CSV(&buf, points); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "fig78.csv", buf.Bytes())
		})
	}
}

func TestGoldenDegradationCSV(t *testing.T) {
	p := goldenParams()
	cfg := goldenServeConfig()
	sizes := []int{6, 12}
	levels := []float64{0, 0.25}
	for _, workers := range goldenWorkerCounts {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			rows, err := DegradationStudyParallel(p, cfg, 90*time.Minute, sizes, levels, workers)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := DegradationCSV(&buf, rows); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "degrade.csv", buf.Bytes())
		})
	}
}

func TestGoldenProtocolCSV(t *testing.T) {
	p := goldenParams()
	cfg := goldenServeConfig()
	base := protocol.Config{SwapSuccess: 0.85, Seed: 5}
	sizes := []int{6, 24}
	t2s := []time.Duration{10 * time.Millisecond, 100 * time.Millisecond}
	budgets := []int{1, 3}
	for _, workers := range goldenWorkerCounts {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			rows, err := ProtocolStudyParallel(p, cfg, base, sizes, t2s, budgets, workers)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := ProtocolCSV(&buf, rows); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "protocol.csv", buf.Bytes())
		})
	}
}

func TestGoldenTable3CSV(t *testing.T) {
	p := goldenParams()
	cfg := goldenServeConfig()
	for _, workers := range goldenWorkerCounts {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			rows, err := Table3Parallel(p, cfg, time.Hour, workers)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := Table3CSV(&buf, rows); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "table3.csv", buf.Bytes())
		})
	}
}
