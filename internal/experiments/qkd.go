package experiments

import (
	"fmt"
	"io"
	"math"

	"qntn/internal/channel"
	"qntn/internal/geo"
	"qntn/internal/qkd"
	"qntn/internal/qntn"
)

// QKDRow compares key-distribution strategies over one relay geometry.
type QKDRow struct {
	// Label names the geometry ("air-ground TTU↔ORNL", "space-ground
	// @40°", ...).
	Label string
	// Eta1, Eta2 are the two downlink transmissivities.
	Eta1, Eta2 float64
	// BBM92KeyRateHz is the entanglement-based (untrusted relay) secret
	// key rate.
	BBM92KeyRateHz float64
	// TrustedBB84KeyRateHz is the trusted-relay rate: independent BB84
	// links to each ground site, limited by the weaker leg.
	TrustedBB84KeyRateHz float64
	// QBER is the entanglement-based error rate.
	QBER float64
}

// ExtensionQKDStudy evaluates the QKD service (the application class the
// paper's related work centers on) over both architectures: the HAP
// geometry for each LAN pair, and satellites at representative elevations.
// Two strategies are compared per geometry — entanglement-based BBM92 with
// an untrusted relay, and trusted-relay decoy BB84.
func ExtensionQKDStudy(p qntn.Params, d qkd.DetectorParams) ([]QKDRow, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	var rows []QKDRow

	// Air-ground geometries: HAP downlinks to each LAN centroid.
	hapPos := geo.LLA{LatDeg: p.HAPLatDeg, LonDeg: p.HAPLonDeg, AltM: p.HAPAltM}
	hapCfg := p.HAPDownlinkFSO()
	nets := qntn.GroundNetworks()
	hapEta := make(map[string]float64, len(nets))
	for _, lan := range nets {
		look := geo.Look(lan.Centroid(), hapPos.ECEF())
		hapEta[lan.Name] = hapCfg.Transmissivity(channel.FSOGeometry{
			RangeM:       look.SlantRangeM,
			ElevationRad: look.ElevationRad,
			LoAltM:       0,
			HiAltM:       p.HAPAltM,
		})
	}
	for i := 0; i < len(nets); i++ {
		for j := i + 1; j < len(nets); j++ {
			row, err := qkdRow(
				fmt.Sprintf("air-ground %s↔%s", nets[i].Name, nets[j].Name),
				hapEta[nets[i].Name], hapEta[nets[j].Name], d)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}

	// Space-ground geometries: symmetric downlinks at representative
	// elevations.
	spaceCfg := p.SpaceDownlinkFSO()
	re := geo.EarthRadiusM
	h := p.SatelliteAltitudeM
	for _, deg := range []float64{25, 40, 60, 90} {
		e := geo.Rad(deg)
		slant := math.Sqrt((re+h)*(re+h)-re*re*math.Cos(e)*math.Cos(e)) - re*math.Sin(e)
		eta := spaceCfg.Transmissivity(channel.FSOGeometry{
			RangeM:       slant,
			ElevationRad: e,
			LoAltM:       0,
			HiAltM:       h,
		})
		row, err := qkdRow(fmt.Sprintf("space-ground @%0.f°", deg), eta, eta, d)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func qkdRow(label string, eta1, eta2 float64, d qkd.DetectorParams) (QKDRow, error) {
	bbm, err := qkd.RelayBBM92(eta1, eta2, d)
	if err != nil {
		return QKDRow{}, err
	}
	b1, err := qkd.BB84(eta1, d)
	if err != nil {
		return QKDRow{}, err
	}
	b2, err := qkd.BB84(eta2, d)
	if err != nil {
		return QKDRow{}, err
	}
	trusted := math.Min(b1.SecretKeyRateHz, b2.SecretKeyRateHz)
	return QKDRow{
		Label:                label,
		Eta1:                 eta1,
		Eta2:                 eta2,
		BBM92KeyRateHz:       bbm.SecretKeyRateHz,
		TrustedBB84KeyRateHz: trusted,
		QBER:                 bbm.QBERz,
	}, nil
}

// QKDCSV writes the QKD study.
func QKDCSV(w io.Writer, rows []QKDRow) error {
	cells := make([][]string, len(rows))
	for i, r := range rows {
		cells[i] = []string{
			r.Label,
			fmt.Sprintf("%.4f", r.Eta1),
			fmt.Sprintf("%.4f", r.Eta2),
			fmt.Sprintf("%.1f", r.BBM92KeyRateHz),
			fmt.Sprintf("%.1f", r.TrustedBB84KeyRateHz),
			fmt.Sprintf("%.5f", r.QBER),
		}
	}
	return WriteCSV(w, []string{"geometry", "eta1", "eta2", "bbm92_bps", "trusted_bb84_bps", "qber"}, cells)
}
