package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"qntn/internal/qntn"
)

func degradationInputs() (qntn.Params, qntn.ServeConfig, time.Duration) {
	p := qntn.DefaultParams()
	p.Turbulence = nil
	p.StepInterval = 5 * time.Minute
	cfg := qntn.ServeConfig{RequestsPerStep: 5, Steps: 4, Horizon: 2 * time.Hour, Seed: 3}
	return p, cfg, 2 * time.Hour
}

func TestDegradationStudySmoke(t *testing.T) {
	p, cfg, window := degradationInputs()
	sizes := []int{6}
	levels := []float64{0, 0.5}

	rows, err := DegradationStudyParallel(p, cfg, window, sizes, levels, 2)
	if err != nil {
		t.Fatal(err)
	}
	// (1 size + air-ground) × 2 levels.
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.CoveragePercent < 0 || r.CoveragePercent > 100 || r.ServedPercent < 0 || r.ServedPercent > 100 {
			t.Fatalf("percentages out of range: %+v", r)
		}
	}
	// Level 0 must reproduce the fault-free baseline experiments exactly.
	sc, err := qntn.NewAirGround(p)
	if err != nil {
		t.Fatal(err)
	}
	cov, err := sc.Coverage(window)
	if err != nil {
		t.Fatal(err)
	}
	base := rows[1] // air-ground row at u=0
	if base.Architecture != qntn.AirGround.String() || base.Unavailability != 0 {
		t.Fatalf("row layout changed: %+v", base)
	}
	if base.CoveragePercent != cov.Percent() {
		t.Errorf("u=0 air-ground coverage %.4f%% != baseline %.4f%%", base.CoveragePercent, cov.Percent())
	}
	// Heavy faults must degrade the air-ground architecture (it is a single
	// platform; u=0.5 halves its availability in expectation).
	deg := rows[3]
	if deg.Unavailability != 0.5 || deg.Architecture != qntn.AirGround.String() {
		t.Fatalf("row layout changed: %+v", deg)
	}
	if deg.CoveragePercent >= base.CoveragePercent {
		t.Errorf("u=0.5 coverage %.2f%% did not degrade from %.2f%%", deg.CoveragePercent, base.CoveragePercent)
	}
}

func TestDegradationStudyWorkerCountInvariance(t *testing.T) {
	p, cfg, window := degradationInputs()
	sizes := []int{6, 12}
	levels := []float64{0.2}

	a, err := DegradationStudyParallel(p, cfg, window, sizes, levels, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DegradationStudyParallel(p, cfg, window, sizes, levels, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("degradation study diverged between 1 and 8 workers")
	}
}

func TestDegradationStudyRejectsEmptyAxes(t *testing.T) {
	p, cfg, window := degradationInputs()
	if _, err := DegradationStudyParallel(p, cfg, window, nil, []float64{0}, 1); err == nil {
		t.Error("empty sizes accepted")
	}
	if _, err := DegradationStudyParallel(p, cfg, window, []int{6}, nil, 1); err == nil {
		t.Error("empty levels accepted")
	}
}

func TestDegradationCSV(t *testing.T) {
	rows := []DegradationPoint{
		{Architecture: "space-ground", Satellites: 6, Unavailability: 0.1,
			CoveragePercent: 42.5, Intervals: 7, ServedPercent: 33.25, MeanFidelity: 0.91},
	}
	var buf bytes.Buffer
	if err := DegradationCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d CSV lines, want 2", len(lines))
	}
	if lines[0] != "architecture,satellites,unavailability,coverage_percent,intervals,served_percent,mean_fidelity" {
		t.Errorf("header %q", lines[0])
	}
	if lines[1] != "space-ground,6,0.1000,42.5000,7,33.2500,0.910000" {
		t.Errorf("row %q", lines[1])
	}
}
