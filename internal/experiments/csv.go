package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"qntn/internal/qntn"
)

// WriteCSV emits headers plus rows as CSV — the machine-readable
// counterpart of RenderTable, for regenerating the paper's figures with an
// external plotter.
func WriteCSV(w io.Writer, headers []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return fmt.Errorf("experiments: write csv header: %w", err)
	}
	for _, r := range rows {
		if len(r) != len(headers) {
			return fmt.Errorf("experiments: csv row has %d cells, want %d", len(r), len(headers))
		}
		if err := cw.Write(r); err != nil {
			return fmt.Errorf("experiments: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fig5CSV writes the Fig. 5 sweep.
func Fig5CSV(w io.Writer, points []Fig5Point) error {
	rows := make([][]string, len(points))
	for i, p := range points {
		rows[i] = []string{
			strconv.FormatFloat(p.Eta, 'f', 4, 64),
			strconv.FormatFloat(p.FidelityRoot, 'f', 6, 64),
			strconv.FormatFloat(p.FidelitySquared, 'f', 6, 64),
		}
	}
	return WriteCSV(w, []string{"transmissivity", "fidelity_root", "fidelity_squared"}, rows)
}

// Fig6CSV writes the coverage sweep.
func Fig6CSV(w io.Writer, points []qntn.CoveragePoint) error {
	rows := make([][]string, len(points))
	for i, p := range points {
		rows[i] = []string{
			strconv.Itoa(p.Satellites),
			strconv.FormatFloat(p.Result.Percent(), 'f', 4, 64),
			strconv.FormatFloat(p.Result.Covered.Seconds(), 'f', 0, 64),
			strconv.Itoa(len(p.Result.Intervals)),
		}
	}
	return WriteCSV(w, []string{"satellites", "coverage_percent", "covered_seconds", "intervals"}, rows)
}

// Fig78CSV writes the serve sweep (Figs. 7 and 8 share the workload).
func Fig78CSV(w io.Writer, points []qntn.ServePoint) error {
	rows := make([][]string, len(points))
	for i, p := range points {
		rows[i] = []string{
			strconv.Itoa(p.Satellites),
			strconv.FormatFloat(p.Result.ServedPercent, 'f', 4, 64),
			strconv.FormatFloat(p.Result.MeanFidelity, 'f', 6, 64),
			strconv.FormatFloat(p.Result.MeanPathEta, 'f', 6, 64),
		}
	}
	return WriteCSV(w, []string{"satellites", "served_percent", "mean_fidelity", "mean_path_eta"}, rows)
}

// Table3CSV writes the architecture comparison.
func Table3CSV(w io.Writer, rows []Table3Row) error {
	cells := make([][]string, len(rows))
	for i, r := range rows {
		cells[i] = []string{
			r.Architecture,
			strconv.FormatFloat(r.CoveragePercent, 'f', 4, 64),
			strconv.FormatFloat(r.ServedPercent, 'f', 4, 64),
			strconv.FormatFloat(r.MeanFidelity, 'f', 6, 64),
		}
	}
	return WriteCSV(w, []string{"architecture", "coverage_percent", "served_percent", "mean_fidelity"}, cells)
}

// LatencyCSV writes the time-aware extension study.
func LatencyCSV(w io.Writer, rows []LatencyRow) error {
	cells := make([][]string, len(rows))
	for i, r := range rows {
		cells[i] = []string{
			r.Architecture,
			strconv.FormatFloat(r.MemoryT2.Seconds(), 'f', 6, 64),
			strconv.FormatFloat(r.ServedPercent, 'f', 4, 64),
			strconv.FormatFloat(r.MeanFidelity, 'f', 6, 64),
			strconv.FormatFloat(r.MeanLatency.Seconds(), 'f', 9, 64),
			strconv.FormatFloat(r.MaxLatency.Seconds(), 'f', 9, 64),
		}
	}
	return WriteCSV(w, []string{"architecture", "memory_t2_s", "served_percent", "mean_fidelity", "mean_latency_s", "max_latency_s"}, cells)
}

// PurificationCSV writes the purification extension study.
func PurificationCSV(w io.Writer, rows []PurificationRow) error {
	cells := make([][]string, len(rows))
	for i, r := range rows {
		cells[i] = []string{
			strconv.FormatFloat(r.LinkEta, 'f', 4, 64),
			strconv.Itoa(r.Round),
			strconv.FormatFloat(r.Fidelity, 'f', 6, 64),
			strconv.FormatFloat(r.SuccessProbability, 'f', 6, 64),
			strconv.FormatFloat(r.ExpectedPairsConsumed, 'f', 4, 64),
		}
	}
	return WriteCSV(w, []string{"link_eta", "round", "fidelity", "success_probability", "expected_pairs"}, cells)
}
