// Package experiments contains one runner per table and figure of the
// paper's evaluation (Fig. 5-8, Table III) plus the ablation studies listed
// in DESIGN.md, and text renderers that print the same rows/series the
// paper reports.
package experiments

import (
	"fmt"
	"math"

	"qntn/internal/quantum"
)

// Fig5Point is one sample of the paper's Fig. 5: the relationship between
// link transmissivity and the entanglement fidelity of a Bell pair
// distributed across that link.
type Fig5Point struct {
	Eta float64
	// FidelityRoot is the root-convention Uhlmann fidelity
	// (1+sqrt(eta))/2 — the convention matching the paper's reported
	// curve.
	FidelityRoot float64
	// FidelitySquared is the literal Eq. (5) value.
	FidelitySquared float64
}

// Fig5 sweeps transmissivity from 0 to 1 with the given step (the paper
// uses 0.01) and evaluates the resulting entanglement fidelity by explicit
// density-matrix evolution through the amplitude-damping channel.
func Fig5(step float64) ([]Fig5Point, error) {
	if step <= 0 || step > 1 {
		return nil, fmt.Errorf("experiments: fig5 step %g outside (0,1]", step)
	}
	var points []Fig5Point
	for eta := 0.0; eta <= 1+1e-12; eta += step {
		e := math.Min(eta, 1)
		rho, err := quantum.DistributeBellPair(e)
		if err != nil {
			return nil, err
		}
		f := quantum.BellFidelity(rho)
		points = append(points, Fig5Point{Eta: e, FidelityRoot: f, FidelitySquared: f * f})
	}
	return points, nil
}

// Fig5Threshold returns the smallest swept transmissivity whose
// root-convention fidelity meets the target (the paper reads 0.7 for a 0.9
// fidelity target off this curve). Returns an error if no point qualifies.
func Fig5Threshold(points []Fig5Point, targetFidelity float64) (float64, error) {
	for _, p := range points {
		if p.FidelityRoot >= targetFidelity {
			return p.Eta, nil
		}
	}
	return 0, fmt.Errorf("experiments: no transmissivity reaches fidelity %g", targetFidelity)
}
