package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// RenderTable writes an aligned ASCII table.
func RenderTable(w io.Writer, title string, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderSeries writes a simple ASCII line chart of y against x, the text
// stand-in for the paper's figures.
func RenderSeries(w io.Writer, title, xLabel, yLabel string, xs, ys []float64) error {
	if len(xs) != len(ys) || len(xs) == 0 {
		return fmt.Errorf("experiments: series must be non-empty and aligned (%d vs %d)", len(xs), len(ys))
	}
	const height, width = 16, 64
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, y := range ys {
		yMin = math.Min(yMin, y)
		yMax = math.Max(yMax, y)
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	xMin, xMax := xs[0], xs[0]
	for _, x := range xs {
		xMin = math.Min(xMin, x)
		xMax = math.Max(xMax, x)
	}
	if xMax == xMin {
		xMax = xMin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i := range xs {
		c := int(math.Round((xs[i] - xMin) / (xMax - xMin) * float64(width-1)))
		r := int(math.Round((ys[i] - yMin) / (yMax - yMin) * float64(height-1)))
		grid[height-1-r][c] = '*'
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for r, line := range grid {
		yTick := yMax - (yMax-yMin)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%10.3f |%s\n", yTick, string(line))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*.3g%*.3g\n", "", width/2, xMin, width-width/2, xMax)
	fmt.Fprintf(&b, "%10s  x: %s, y: %s\n", "", xLabel, yLabel)
	_, err := io.WriteString(w, b.String())
	return err
}

// FormatPercent renders a percentage with two decimals, e.g. "55.17%".
func FormatPercent(v float64) string { return fmt.Sprintf("%.2f%%", v) }

// FormatFidelity renders a fidelity with two decimals, matching the
// paper's precision.
func FormatFidelity(v float64) string { return fmt.Sprintf("%.2f", v) }
