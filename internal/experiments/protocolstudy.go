package experiments

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"qntn/internal/qntn"
	"qntn/internal/quantum/protocol"
)

// ProtocolPoint reports one (architecture, memory T2, purification budget)
// cell of the entanglement-protocol study, with Enabled false for the
// seed-model baseline row the protocol cells are compared against.
type ProtocolPoint struct {
	Architecture string
	// Satellites is the constellation size (the relay count for the hybrid
	// row).
	Satellites int
	Enabled    bool
	// MemoryT2 is the swap-chain memory coherence time of the cell (zero in
	// the baseline row, where no memory model applies).
	MemoryT2 time.Duration
	// SwapSuccess and PurifyPaths echo the protocol mix of the cell.
	SwapSuccess float64
	PurifyPaths int
	// ServedPercent drops as swap chains fail; MeanFidelity moves with both
	// dephasing (down) and purification (up) — the study's tradeoff axes.
	ServedPercent float64
	MeanFidelity  float64
	MeanPathEta   float64
}

// protocolHybridRelays is the hybrid-architecture relay count the study
// samples alongside the constellation sweep. Space-ground routes rarely
// offer a vertex-disjoint alternative (one satellite bridges the LANs), so
// the hybrid mix — where HAP and satellite routes coexist and purification
// actually consumes redundant paths — is what makes the purify-budget axis
// informative.
const protocolHybridRelays = 12

// ProtocolStudyParallel quantifies the fidelity/served tradeoff of the
// entanglement-protocol layer: for every space-ground constellation size
// plus the hybrid architecture it runs the serve experiment once with the
// protocol disabled (the paper's seed model) and once per (memory T2,
// purification budget) grid cell, all sweep rows through the parallel sweep
// engine. base carries the grid-invariant protocol knobs — swap success
// probability and draw seed; its MemoryT2 and PurifyPaths are overridden
// per cell. Deterministic for fixed inputs and worker-count invariant (the
// sweep engine's guarantee, pinned by the worker-matrix golden test).
func ProtocolStudyParallel(p qntn.Params, cfg qntn.ServeConfig, base protocol.Config, sizes []int, t2s []time.Duration, budgets []int, workers int) ([]ProtocolPoint, error) {
	if len(sizes) == 0 || len(t2s) == 0 || len(budgets) == 0 {
		return nil, fmt.Errorf("experiments: protocol study requires sizes, T2 levels and purify budgets")
	}
	cell := func(pc qntn.Params, point ProtocolPoint) ([]ProtocolPoint, error) {
		srv, err := qntn.ServeSweepParallel(pc, sizes, cfg, workers)
		if err != nil {
			return nil, err
		}
		rows := make([]ProtocolPoint, 0, len(sizes)+1)
		for i := range sizes {
			r := point
			r.Architecture = qntn.SpaceGround.String()
			r.Satellites = sizes[i]
			r.ServedPercent = srv[i].Result.ServedPercent
			r.MeanFidelity = srv[i].Result.MeanFidelity
			r.MeanPathEta = srv[i].Result.MeanPathEta
			rows = append(rows, r)
		}
		sc, err := qntn.NewHybrid(protocolHybridRelays, pc)
		if err != nil {
			return nil, err
		}
		hyb, err := sc.RunServe(cfg)
		if err != nil {
			return nil, err
		}
		r := point
		r.Architecture = qntn.Hybrid.String()
		r.Satellites = protocolHybridRelays
		r.ServedPercent = hyb.ServedPercent
		r.MeanFidelity = hyb.MeanFidelity
		r.MeanPathEta = hyb.MeanPathEta
		rows = append(rows, r)
		return rows, nil
	}
	pp := p
	pp.Protocol = protocol.Config{}
	rows, err := cell(pp, ProtocolPoint{})
	if err != nil {
		return nil, fmt.Errorf("experiments: protocol study baseline: %w", err)
	}
	for _, t2 := range t2s {
		for _, k := range budgets {
			pc := p
			pc.Protocol = base
			pc.Protocol.MemoryT2 = t2
			pc.Protocol.PurifyPaths = k
			if err := pc.Protocol.Validate(); err != nil {
				return nil, fmt.Errorf("experiments: protocol study cell (t2=%v, k=%d): %w", t2, k, err)
			}
			cellRows, err := cell(pc, ProtocolPoint{
				Enabled:     true,
				MemoryT2:    t2,
				SwapSuccess: pc.Protocol.SwapSuccess,
				PurifyPaths: pc.Protocol.Paths(),
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: protocol study cell (t2=%v, k=%d): %w", t2, k, err)
			}
			rows = append(rows, cellRows...)
		}
	}
	return rows, nil
}

// ProtocolCSV writes the protocol study.
func ProtocolCSV(w io.Writer, rows []ProtocolPoint) error {
	cells := make([][]string, len(rows))
	for i, r := range rows {
		proto := "off"
		if r.Enabled {
			proto = "on"
		}
		cells[i] = []string{
			r.Architecture,
			strconv.Itoa(r.Satellites),
			proto,
			strconv.FormatFloat(r.MemoryT2.Seconds(), 'f', 6, 64),
			strconv.FormatFloat(r.SwapSuccess, 'f', 4, 64),
			strconv.Itoa(r.PurifyPaths),
			strconv.FormatFloat(r.ServedPercent, 'f', 4, 64),
			strconv.FormatFloat(r.MeanFidelity, 'f', 6, 64),
			strconv.FormatFloat(r.MeanPathEta, 'f', 6, 64),
		}
	}
	return WriteCSV(w, []string{
		"architecture", "satellites", "protocol", "memory_t2_s", "swap_success",
		"purify_paths", "served_percent", "mean_fidelity", "mean_path_eta",
	}, cells)
}
