package experiments

import (
	"strings"
	"testing"

	"qntn/internal/qkd"
	"qntn/internal/qntn"
)

func TestExtensionQKDStudy(t *testing.T) {
	rows, err := ExtensionQKDStudy(qntn.DefaultParams(), qkd.DefaultDetector())
	if err != nil {
		t.Fatal(err)
	}
	// 3 LAN pairs + 4 satellite elevations.
	if len(rows) != 7 {
		t.Fatalf("%d rows", len(rows))
	}
	byLabel := map[string]QKDRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
		if r.BBM92KeyRateHz <= 0 {
			t.Errorf("%s: no BBM92 key", r.Label)
		}
		if r.TrustedBB84KeyRateHz <= 0 {
			t.Errorf("%s: no trusted BB84 key", r.Label)
		}
		if r.QBER <= 0 || r.QBER > 0.05 {
			t.Errorf("%s: QBER %g outside the misalignment-dominated regime", r.Label, r.QBER)
		}
	}
	// Key rate rises with satellite elevation.
	if byLabel["space-ground @25°"].BBM92KeyRateHz >= byLabel["space-ground @90°"].BBM92KeyRateHz {
		t.Fatal("key rate should grow with elevation")
	}
	// The HAP geometry beats the worst-case satellite geometry.
	if byLabel["air-ground TTU↔ORNL"].BBM92KeyRateHz <= byLabel["space-ground @25°"].BBM92KeyRateHz {
		t.Fatal("HAP should beat a 25°-elevation satellite")
	}
}

func TestExtensionQKDStudyRejectsBadDetector(t *testing.T) {
	if _, err := ExtensionQKDStudy(qntn.DefaultParams(), qkd.DetectorParams{}); err == nil {
		t.Fatal("invalid detector accepted")
	}
}

func TestQKDCSV(t *testing.T) {
	rows, err := ExtensionQKDStudy(qntn.DefaultParams(), qkd.DefaultDetector())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := QKDCSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "geometry,eta1,eta2,bbm92_bps") {
		t.Fatalf("csv header: %q", out[:40])
	}
	if strings.Count(out, "\n") != len(rows)+1 {
		t.Fatal("csv row count wrong")
	}
}
