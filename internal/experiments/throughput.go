package experiments

import (
	"qntn/internal/qntn"
	"qntn/internal/stats"
)

// ThroughputRow reports delivered-pair rates for one architecture.
type ThroughputRow struct {
	Architecture string
	// MeanServedPairRateHz is the average coincidence (delivered-pair)
	// rate over served requests: source rate × end-to-end transmissivity.
	MeanServedPairRateHz float64
	// MeanEffectiveRateHz averages over all requests, counting unserved
	// ones as zero — the rate a random request actually experiences.
	MeanEffectiveRateHz float64
	// WorstServedPairRateHz is the slowest served request's rate.
	WorstServedPairRateHz float64
}

// ExtensionThroughputStudy converts the serving experiment's
// transmissivities into delivered entanglement rates: a platform source
// emitting sourceRateHz pairs has a coincidence rate of
// sourceRate × η_path at the endpoints. This is the rate axis the paper's
// fidelity-only evaluation leaves out.
func ExtensionThroughputStudy(p qntn.Params, nSats int, cfg qntn.ServeConfig, sourceRateHz float64) ([]ThroughputRow, error) {
	type arch struct {
		name  string
		build func(qntn.Params) (*qntn.Scenario, error)
	}
	archs := []arch{
		{qntn.SpaceGround.String(), func(pp qntn.Params) (*qntn.Scenario, error) { return qntn.NewSpaceGround(nSats, pp) }},
		{qntn.AirGround.String(), qntn.NewAirGround},
	}
	var rows []ThroughputRow
	for _, a := range archs {
		sc, err := a.build(p)
		if err != nil {
			return nil, err
		}
		res, err := sc.RunServe(cfg)
		if err != nil {
			return nil, err
		}
		var served, all []float64
		worst := -1.0
		for _, o := range res.Metrics.Outcomes {
			if o.Served {
				rate := sourceRateHz * o.EndToEndEta
				served = append(served, rate)
				all = append(all, rate)
				if worst < 0 || rate < worst {
					worst = rate
				}
			} else {
				all = append(all, 0)
			}
		}
		if worst < 0 {
			worst = 0
		}
		rows = append(rows, ThroughputRow{
			Architecture:          a.name,
			MeanServedPairRateHz:  stats.Mean(served),
			MeanEffectiveRateHz:   stats.Mean(all),
			WorstServedPairRateHz: worst,
		})
	}
	return rows, nil
}
