package experiments

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"qntn/internal/fault"
	"qntn/internal/qntn"
)

// DegradationPoint reports one (architecture, constellation size, fault
// intensity) cell of the graceful-degradation study.
type DegradationPoint struct {
	Architecture string
	// Satellites is the constellation size (0 for the air-ground row — the
	// HAP architecture has no constellation to scale).
	Satellites int
	// Unavailability is the per-platform unavailable fraction u injected
	// via fault.AtIntensity (weather rides along at u/2).
	Unavailability  float64
	CoveragePercent float64
	// Intervals counts the connected coverage windows: faults fragment the
	// day, which is what a downstream application actually experiences.
	Intervals     int
	ServedPercent float64
	MeanFidelity  float64
}

// DegradationStudyParallel quantifies graceful degradation under the fault
// model: for each fault intensity it re-runs the paper's coverage and
// serving experiments across the space-ground constellation sizes (through
// the parallel sweep engine, so one catalog propagation serves every size)
// and the air-ground architecture. The fault seed in p is kept, so the
// study is deterministic for fixed inputs and worker-count independent.
func DegradationStudyParallel(p qntn.Params, cfg qntn.ServeConfig, window time.Duration, sizes []int, levels []float64, workers int) ([]DegradationPoint, error) {
	if len(sizes) == 0 || len(levels) == 0 {
		return nil, fmt.Errorf("experiments: degradation study requires sizes and fault levels")
	}
	var rows []DegradationPoint
	for _, u := range levels {
		pp := p
		pp.Fault = fault.AtIntensity(u, p.Fault.Seed)
		cov, err := qntn.CoverageSweepParallel(pp, sizes, window, workers)
		if err != nil {
			return nil, fmt.Errorf("experiments: degradation study (u=%g): %w", u, err)
		}
		srv, err := qntn.ServeSweepParallel(pp, sizes, cfg, workers)
		if err != nil {
			return nil, fmt.Errorf("experiments: degradation study (u=%g): %w", u, err)
		}
		for i := range sizes {
			rows = append(rows, DegradationPoint{
				Architecture:    qntn.SpaceGround.String(),
				Satellites:      sizes[i],
				Unavailability:  u,
				CoveragePercent: cov[i].Result.Percent(),
				Intervals:       len(cov[i].Result.Intervals),
				ServedPercent:   srv[i].Result.ServedPercent,
				MeanFidelity:    srv[i].Result.MeanFidelity,
			})
		}
		sc, err := qntn.NewAirGround(pp)
		if err != nil {
			return nil, err
		}
		hapCov, err := sc.Coverage(window)
		if err != nil {
			return nil, fmt.Errorf("experiments: degradation study (air-ground, u=%g): %w", u, err)
		}
		hapSrv, err := sc.RunServe(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: degradation study (air-ground, u=%g): %w", u, err)
		}
		rows = append(rows, DegradationPoint{
			Architecture:    qntn.AirGround.String(),
			Unavailability:  u,
			CoveragePercent: hapCov.Percent(),
			Intervals:       len(hapCov.Intervals),
			ServedPercent:   hapSrv.ServedPercent,
			MeanFidelity:    hapSrv.MeanFidelity,
		})
	}
	return rows, nil
}

// DegradationCSV writes the degradation study.
func DegradationCSV(w io.Writer, rows []DegradationPoint) error {
	cells := make([][]string, len(rows))
	for i, r := range rows {
		cells[i] = []string{
			r.Architecture,
			strconv.Itoa(r.Satellites),
			strconv.FormatFloat(r.Unavailability, 'f', 4, 64),
			strconv.FormatFloat(r.CoveragePercent, 'f', 4, 64),
			strconv.Itoa(r.Intervals),
			strconv.FormatFloat(r.ServedPercent, 'f', 4, 64),
			strconv.FormatFloat(r.MeanFidelity, 'f', 6, 64),
		}
	}
	return WriteCSV(w, []string{
		"architecture", "satellites", "unavailability",
		"coverage_percent", "intervals", "served_percent", "mean_fidelity",
	}, cells)
}
