package experiments

import (
	"context"
	"time"

	"qntn/internal/netsim"
	"qntn/internal/orbit"
	"qntn/internal/qntn"
	"qntn/internal/routing"
	"qntn/internal/runner"
	"qntn/internal/stats"
)

// MultipathRow reports redundancy statistics for one path budget.
type MultipathRow struct {
	// Paths is the disjoint-path budget k.
	Paths int
	// MeanPathsFound is the average number of edge-disjoint paths
	// actually available per served request.
	MeanPathsFound float64
	// MeanSuccessProbability is the average probability that at least
	// one attempt delivers a pair, treating each path's end-to-end
	// transmissivity as its success probability.
	MeanSuccessProbability float64
}

// ExtensionMultipathStudy measures what path redundancy buys on the hybrid
// topology (HAP + constellation, the only QNTN variant with genuine route
// diversity): for each request the k best edge-disjoint paths are
// extracted and the combined delivery probability computed. k = 1 is the
// paper's single-path routing.
func ExtensionMultipathStudy(p qntn.Params, nSats int, cfg qntn.ServeConfig, maxPaths int) ([]MultipathRow, error) {
	return ExtensionMultipathStudyParallel(p, nSats, cfg, maxPaths, 0)
}

// ExtensionMultipathStudyParallel is ExtensionMultipathStudy with an
// explicit worker count. The request batches are drawn sequentially up
// front (the workload RNG is a serial stream), then the per-step disjoint
// path extraction — the expensive part — fans out over the pool; per-step
// sample lists are concatenated in step order, so the result is identical
// for any worker count.
func ExtensionMultipathStudyParallel(p qntn.Params, nSats int, cfg qntn.ServeConfig, maxPaths int, workers int) ([]MultipathRow, error) {
	sc, err := qntn.NewHybrid(nSats, p)
	if err != nil {
		return nil, err
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = orbit.Day
	}
	stepGap := cfg.Horizon / time.Duration(cfg.Steps)

	wl, err := qntn.NewWorkload(sc, cfg.Seed)
	if err != nil {
		return nil, err
	}
	batches := make([][]netsim.Request, cfg.Steps)
	for step := range batches {
		batches[step] = wl.Batch(cfg.RequestsPerStep)
	}

	// Collect per-request disjoint path sets once, then score every
	// budget against them.
	type sample struct {
		etas []float64 // per-path end-to-end transmissivities, best first
	}
	perStep := make([][]sample, cfg.Steps)
	err = runner.Map(context.Background(), cfg.Steps, workers, func(_ context.Context, step int) error {
		at := time.Duration(step) * stepGap
		g, err := sc.Graph(at)
		if err != nil {
			return err
		}
		for _, req := range batches[step] {
			paths, err := routing.EdgeDisjointPaths(g, req.Src, req.Dst, maxPaths)
			if err != nil {
				return err
			}
			if len(paths) == 0 {
				continue
			}
			s := sample{}
			for _, path := range paths {
				eta, err := g.PathEta(path)
				if err != nil {
					return err
				}
				s.etas = append(s.etas, eta)
			}
			perStep[step] = append(perStep[step], s)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var samples []sample
	for _, ss := range perStep {
		samples = append(samples, ss...)
	}

	rows := make([]MultipathRow, 0, maxPaths)
	for k := 1; k <= maxPaths; k++ {
		var found, success []float64
		for _, s := range samples {
			n := k
			if n > len(s.etas) {
				n = len(s.etas)
			}
			found = append(found, float64(n))
			failAll := 1.0
			for _, eta := range s.etas[:n] {
				failAll *= 1 - eta
			}
			success = append(success, 1-failAll)
		}
		rows = append(rows, MultipathRow{
			Paths:                  k,
			MeanPathsFound:         stats.Mean(found),
			MeanSuccessProbability: stats.Mean(success),
		})
	}
	return rows, nil
}
