package experiments

import (
	"time"

	"qntn/internal/orbit"
	"qntn/internal/qntn"
	"qntn/internal/routing"
	"qntn/internal/stats"
)

// MultipathRow reports redundancy statistics for one path budget.
type MultipathRow struct {
	// Paths is the disjoint-path budget k.
	Paths int
	// MeanPathsFound is the average number of edge-disjoint paths
	// actually available per served request.
	MeanPathsFound float64
	// MeanSuccessProbability is the average probability that at least
	// one attempt delivers a pair, treating each path's end-to-end
	// transmissivity as its success probability.
	MeanSuccessProbability float64
}

// ExtensionMultipathStudy measures what path redundancy buys on the hybrid
// topology (HAP + constellation, the only QNTN variant with genuine route
// diversity): for each request the k best edge-disjoint paths are
// extracted and the combined delivery probability computed. k = 1 is the
// paper's single-path routing.
func ExtensionMultipathStudy(p qntn.Params, nSats int, cfg qntn.ServeConfig, maxPaths int) ([]MultipathRow, error) {
	sc, err := qntn.NewHybrid(nSats, p)
	if err != nil {
		return nil, err
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = orbit.Day
	}
	stepGap := cfg.Horizon / time.Duration(cfg.Steps)

	// Collect per-request disjoint path sets once, then score every
	// budget against them.
	type sample struct {
		etas []float64 // per-path end-to-end transmissivities, best first
	}
	var samples []sample
	wl := qntn.NewWorkload(sc, cfg.Seed)
	for step := 0; step < cfg.Steps; step++ {
		at := time.Duration(step) * stepGap
		g, err := sc.Graph(at)
		if err != nil {
			return nil, err
		}
		for _, req := range wl.Batch(cfg.RequestsPerStep) {
			paths, err := routing.EdgeDisjointPaths(g, req.Src, req.Dst, maxPaths)
			if err != nil {
				return nil, err
			}
			if len(paths) == 0 {
				continue
			}
			s := sample{}
			for _, path := range paths {
				eta, err := g.PathEta(path)
				if err != nil {
					return nil, err
				}
				s.etas = append(s.etas, eta)
			}
			samples = append(samples, s)
		}
	}

	rows := make([]MultipathRow, 0, maxPaths)
	for k := 1; k <= maxPaths; k++ {
		var found, success []float64
		for _, s := range samples {
			n := k
			if n > len(s.etas) {
				n = len(s.etas)
			}
			found = append(found, float64(n))
			failAll := 1.0
			for _, eta := range s.etas[:n] {
				failAll *= 1 - eta
			}
			success = append(success, 1-failAll)
		}
		rows = append(rows, MultipathRow{
			Paths:                  k,
			MeanPathsFound:         stats.Mean(found),
			MeanSuccessProbability: stats.Mean(success),
		})
	}
	return rows, nil
}
