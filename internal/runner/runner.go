// Package runner is the parallel experiment engine: every figure and table
// of the paper is an embarrassingly parallel sweep (constellation-size
// prefixes, ablation grids, per-architecture rows), and runner fans those
// independent points out over a bounded worker pool while keeping results
// bit-identical to a sequential run.
//
// Determinism contract: tasks receive only their index and must write their
// output into a slot owned by that index; scheduling order is never
// observable. Tasks that need randomness derive a private seed with
// TaskSeed (splitmix64 over the scenario seed and task index) and build
// their own rand.New(rand.NewSource(seed)) — worker goroutines never share
// a *rand.Rand. Under that contract the output of Map and Grid is
// independent of the worker count.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// DefaultParallelism is the worker count used when a caller passes
// workers <= 0: one worker per available CPU.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// Map runs fn(ctx, i) for every i in [0, n) on at most workers goroutines
// and waits for completion. Tasks are handed out dynamically (an atomic
// cursor, so skewed task costs still balance), panics inside fn are
// captured and returned as errors, and the first failure cancels the
// context passed to the remaining tasks — tasks not yet started are
// skipped. When several tasks fail, the error of the lowest task index is
// returned, so the reported failure does not depend on scheduling.
//
// workers <= 0 selects DefaultParallelism. A nil fn is rejected; n <= 0 is
// a no-op.
func Map(ctx context.Context, n, workers int, fn func(ctx context.Context, task int) error) error {
	if fn == nil {
		return fmt.Errorf("runner: nil task function")
	}
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = DefaultParallelism()
	}
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					return // first failure (or caller cancel) skips the rest
				}
				if err := runTask(ctx, i, fn); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	// No task failed; surface a caller-side cancellation if there was one
	// (our own cancel only fires after recording a task error above).
	return ctx.Err()
}

// runTask invokes one task with panic capture, so a panicking sweep point
// aborts the sweep with a diagnosable error instead of crashing the
// process from a worker goroutine.
func runTask(ctx context.Context, i int, fn func(context.Context, int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: task %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(ctx, i)
}

// Grid runs fn(ctx, r, c) for every cell of the rows x cols index grid,
// with the same pooling, panic-capture, and cancellation semantics as Map.
// Cell (r, c) is task index r*cols + c, which is also the index to feed
// TaskSeed when a cell needs its own RNG stream.
func Grid(ctx context.Context, rows, cols, workers int, fn func(ctx context.Context, row, col int) error) error {
	if fn == nil {
		return fmt.Errorf("runner: nil task function")
	}
	if rows <= 0 || cols <= 0 {
		return nil
	}
	return Map(ctx, rows*cols, workers, func(ctx context.Context, i int) error {
		return fn(ctx, i/cols, i%cols)
	})
}
