package runner

import (
	"sort"
	"testing"
)

func TestTaskSeedNoCollisionsInMillionDraws(t *testing.T) {
	// The sweep-seed invariant: no two task indices of the same sweep may
	// derive the same seed. One million indices is far beyond any sweep
	// this simulator runs (the paper's largest is 18 points).
	const n = 1_000_000
	for _, base := range []int64{0, 1, -1, 42, -987654321} {
		seeds := make([]int64, n)
		for i := range seeds {
			seeds[i] = TaskSeed(base, uint64(i))
		}
		sort.Slice(seeds, func(a, b int) bool { return seeds[a] < seeds[b] })
		for i := 1; i < n; i++ {
			if seeds[i] == seeds[i-1] {
				t.Fatalf("base %d: duplicate derived seed %d", base, seeds[i])
			}
		}
	}
}

func TestTaskSeedDependsOnBase(t *testing.T) {
	// Different scenario seeds must yield different derived streams.
	same := 0
	for i := uint64(0); i < 128; i++ {
		if TaskSeed(1, i) == TaskSeed(2, i) {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d/128 task indices collide across bases 1 and 2", same)
	}
}

func TestTaskSeedIsStable(t *testing.T) {
	// Experiment outputs depend on the derivation; freeze reference values
	// so an accidental algorithm change cannot slip through silently.
	if got, want := TaskSeed(0, 0), int64(mix64(splitmixGamma)); got != want {
		t.Fatalf("TaskSeed(0,0) = %d, want mix64(gamma) = %d", got, want)
	}
	// splitmix64's first output from seed 0 is a published reference
	// vector: mix64(gamma) must equal 0xE220A8397B1DCDAF.
	if got := uint64(TaskSeed(0, 0)); got != 0xE220A8397B1DCDAF {
		t.Fatalf("TaskSeed(0,0) = %#x, want the splitmix64 reference vector 0xE220A8397B1DCDAF", got)
	}
	if TaskSeed(9, 10) == TaskSeed(9, 11) {
		t.Fatal("adjacent task seeds equal")
	}
}

func TestTaskSeeds(t *testing.T) {
	seeds := TaskSeeds(5, 10)
	if len(seeds) != 10 {
		t.Fatalf("%d seeds", len(seeds))
	}
	for i, s := range seeds {
		if s != TaskSeed(5, uint64(i)) {
			t.Fatalf("seed %d mismatch", i)
		}
	}
	if TaskSeeds(5, 0) != nil || TaskSeeds(5, -1) != nil {
		t.Fatal("non-positive n should yield nil")
	}
}

func BenchmarkTaskSeed(b *testing.B) {
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += TaskSeed(1, uint64(i))
	}
	_ = sink
}
