package runner

// splitmix64 constants (Steele, Lea & Flood, "Fast Splittable Pseudorandom
// Number Generators", OOPSLA 2014). The golden-gamma increment is odd, so
// base + (task+1)*gamma is injective in the task index modulo 2^64, and the
// finalizer below is a bijection — together they guarantee that no two task
// indices of the same sweep ever derive the same seed.
const (
	splitmixGamma = 0x9E3779B97F4A7C15
	splitmixMulA  = 0xBF58476D1CE4E5B9
	splitmixMulB  = 0x94D049BB133111EB
)

// mix64 is the splitmix64 output finalizer: an invertible avalanche over
// the full 64-bit state.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= splitmixMulA
	z ^= z >> 27
	z *= splitmixMulB
	z ^= z >> 31
	return z
}

// TaskSeed derives the RNG seed of one sweep task from the scenario's base
// seed and the task index. The derivation is splitmix64-style: jump the
// base by (task+1) golden gammas, then avalanche. Collision-free across
// task indices for any fixed base, stable across releases (experiment
// outputs depend on it), and cheap enough to call per task.
//
// Sweep tasks must build private generators from this —
// rand.New(rand.NewSource(TaskSeed(seed, task))) — rather than sharing a
// *rand.Rand across workers, which would make results depend on
// scheduling.
func TaskSeed(base int64, task uint64) int64 {
	return int64(mix64(uint64(base) + (task+1)*splitmixGamma))
}

// FNV-1a constants (FNV-0 hash of "chongo <Landon Curt Noll> /\\../\\" and
// the 64-bit FNV prime). Inlined rather than importing hash/fnv so callers
// hashing short identifiers per task pay no allocation for the hasher.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// FNV64a hashes an identifier into a task index for TaskSeed. Named
// streams — fault platforms, traffic ground sites — derive their seeds as
// TaskSeed(base, FNV64a(id)), which keeps every stream a pure function of
// (base seed, identifier): adding or removing other streams never perturbs
// it. The hash is standard FNV-1a, stable across releases (experiment
// outputs depend on it).
func FNV64a(id string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= fnvPrime64
	}
	return h
}

// FNV64aBytes is FNV64a over a byte slice: identical output for identical
// bytes, but callable with a reused buffer so per-request hashing on the
// serving hot path (protocol pair keys) stays allocation-free.
func FNV64aBytes(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= fnvPrime64
	}
	return h
}

// TaskSeeds derives n distinct seeds from one base seed, one per task
// index, in index order.
func TaskSeeds(base int64, n int) []int64 {
	if n <= 0 {
		return nil
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = TaskSeed(base, uint64(i))
	}
	return seeds
}
