package runner

import (
	"context"
	"testing"
)

// FuzzTaskSeedInjective checks the collision-freedom invariant over
// arbitrary (base, i, j) triples: distinct task indices must always derive
// distinct seeds from the same base. This holds by construction (odd-gamma
// jump + bijective finalizer); the fuzzer guards the construction.
func FuzzTaskSeedInjective(f *testing.F) {
	f.Add(int64(1), uint64(0), uint64(1))
	f.Add(int64(0), uint64(0), uint64(1<<63))
	f.Add(int64(-1), uint64(17), uint64(18))
	f.Add(int64(123456789), uint64(999999), uint64(1000000))
	f.Fuzz(func(t *testing.T, base int64, i, j uint64) {
		si, sj := TaskSeed(base, i), TaskSeed(base, j)
		if i == j {
			if si != sj {
				t.Fatalf("TaskSeed not deterministic: (%d,%d) gave %d and %d", base, i, si, sj)
			}
			return
		}
		if si == sj {
			t.Fatalf("collision: TaskSeed(%d,%d) == TaskSeed(%d,%d) == %d", base, i, base, j, si)
		}
	})
}

// mapSeeds fills one slot per task with its derived seed using the given
// worker count.
func mapSeeds(t *testing.T, base int64, n, workers int) []int64 {
	t.Helper()
	out := make([]int64, n)
	if err := Map(context.Background(), n, workers, func(_ context.Context, i int) error {
		out[i] = TaskSeed(base, uint64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// FuzzMapSlotDeterminism runs the same task set at several worker counts
// and demands identical output slots — the runner's core contract.
func FuzzMapSlotDeterminism(f *testing.F) {
	f.Add(int64(1), uint8(5))
	f.Add(int64(-3), uint8(33))
	f.Fuzz(func(t *testing.T, base int64, nn uint8) {
		n := int(nn%64) + 1
		ref := mapSeeds(t, base, n, 1)
		for _, w := range []int{2, 4} {
			got := mapSeeds(t, base, n, w)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("workers=%d diverged at slot %d", w, i)
				}
			}
		}
	})
}
