package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapRunsEveryTask(t *testing.T) {
	const n = 100
	var done [n]atomic.Bool
	err := Map(context.Background(), n, 7, func(_ context.Context, i int) error {
		if done[i].Swap(true) {
			t.Errorf("task %d ran twice", i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range done {
		if !done[i].Load() {
			t.Fatalf("task %d never ran", i)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	err := Map(context.Background(), 40, workers, func(context.Context, int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, worker bound is %d", p, workers)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	// With one worker, tasks run in index order: task 2 fails first and
	// everything after it is skipped.
	ran := 0
	err := Map(context.Background(), 10, 1, func(_ context.Context, i int) error {
		ran++
		if i >= 2 {
			return fmt.Errorf("boom at %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "boom at 2" {
		t.Fatalf("error %v, want boom at 2", err)
	}
	if ran != 3 {
		t.Fatalf("%d tasks ran after first failure, want 3", ran)
	}
}

func TestMapErrorWithManyWorkers(t *testing.T) {
	sentinel := errors.New("sweep point failed")
	err := Map(context.Background(), 64, 8, func(_ context.Context, i int) error {
		if i%5 == 0 {
			return fmt.Errorf("task %d: %w", i, sentinel)
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not wrap the task failure", err)
	}
}

func TestMapCapturesPanics(t *testing.T) {
	err := Map(context.Background(), 4, 2, func(_ context.Context, i int) error {
		if i == 1 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic was swallowed")
	}
	if !strings.Contains(err.Error(), "task 1 panicked: kaboom") {
		t.Fatalf("panic error %q lacks task attribution", err)
	}
	if !strings.Contains(err.Error(), "runner_test.go") {
		t.Fatalf("panic error lacks a stack trace:\n%v", err)
	}
}

func TestMapCancellationSkipsPendingTasks(t *testing.T) {
	var ran atomic.Int64
	err := Map(context.Background(), 100, 4, func(_ context.Context, i int) error {
		ran.Add(1)
		if i < 4 {
			return fmt.Errorf("early failure %d", i)
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err == nil {
		t.Fatal("failure not reported")
	}
	if got := ran.Load(); got > 20 {
		t.Fatalf("%d tasks ran after cancellation; pool did not stop", got)
	}
}

func TestMapHonorsParentContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := Map(ctx, 10, 2, func(context.Context, int) error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("tasks ran under a cancelled parent context")
	}
}

func TestMapEdgeCases(t *testing.T) {
	if err := Map(context.Background(), 0, 4, func(context.Context, int) error { return nil }); err != nil {
		t.Fatalf("empty map: %v", err)
	}
	if err := Map(context.Background(), 4, 4, nil); err == nil {
		t.Fatal("nil task function accepted")
	}
	// workers <= 0 falls back to DefaultParallelism and still completes.
	var n atomic.Int64
	if err := Map(context.Background(), 9, 0, func(context.Context, int) error { n.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 9 {
		t.Fatalf("%d tasks ran with default workers", n.Load())
	}
	if DefaultParallelism() < 1 {
		t.Fatal("DefaultParallelism below 1")
	}
}

func TestGridCoversEveryCell(t *testing.T) {
	const rows, cols = 7, 5
	var mu sync.Mutex
	seen := make(map[[2]int]int)
	err := Grid(context.Background(), rows, cols, 4, func(_ context.Context, r, c int) error {
		mu.Lock()
		seen[[2]int{r, c}]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != rows*cols {
		t.Fatalf("%d distinct cells, want %d", len(seen), rows*cols)
	}
	for cell, count := range seen {
		if count != 1 {
			t.Fatalf("cell %v ran %d times", cell, count)
		}
	}
	if err := Grid(context.Background(), 0, 5, 1, func(context.Context, int, int) error { return nil }); err != nil {
		t.Fatalf("empty grid: %v", err)
	}
	if err := Grid(context.Background(), 2, 2, 1, nil); err == nil {
		t.Fatal("nil grid function accepted")
	}
}

func TestMapResultsIndependentOfWorkerCount(t *testing.T) {
	// The determinism contract: index-owned output slots make results
	// identical for any worker count.
	run := func(workers int) []int64 {
		out := make([]int64, 64)
		err := Map(context.Background(), len(out), workers, func(_ context.Context, i int) error {
			out[i] = TaskSeed(42, uint64(i))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(1)
	for _, w := range []int{2, 3, 8} {
		got := run(w)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d diverged at slot %d", w, i)
			}
		}
	}
}
