package lint

import (
	"go/ast"
	"go/types"
)

// unitKeywords are quantity words whose float64 carriers are ambiguous
// without an explicit unit: angles (degrees vs radians), lengths (meters vs
// kilometers), and the handful of other dimensioned quantities the
// simulator passes around. Dimensionless quantities (eccentricity, optical
// depth, transmissivity, Cn2) are deliberately absent.
var unitKeywords = map[string]bool{
	// Angles.
	"angle": true, "azimuth": true, "elevation": true, "inclination": true,
	"raan": true, "anomaly": true, "declination": true, "twilight": true,
	"jitter": true, "lat": true, "latitude": true, "lon": true,
	"longitude": true, "bearing": true,
	// Lengths.
	"alt": true, "altitude": true, "range": true, "dist": true,
	"distance": true, "radius": true, "height": true, "length": true,
	"waist": true, "wavelength": true, "lambda": true, "clearance": true,
	"aperture": true, "separation": true,
	// Times and frequencies carried as float64 (time.Duration values are
	// self-describing and skipped by the float64 type filter).
	"delay": true, "period": true, "interval": true, "frequency": true,
}

// unitSuffixes are the accepted final name words. "s"/"ms"/"sec" cover
// seconds and milliseconds, "mps"/"ms" metre-per-second style rates.
var unitSuffixes = map[string]bool{
	"rad": true, "deg": true, "m": true, "km": true, "mm": true,
	"sec": true, "s": true, "ms": true, "hz": true, "db": true,
	"mps": true,
}

// unitSuffixPackages are the geometry/physics packages whose exported
// surface must be unit-suffixed (matched against the final import-path
// element so the linttest testdata packages participate too).
var unitSuffixPackages = map[string]bool{
	"geo": true, "orbit": true, "astro": true, "atmosphere": true,
	"channel": true,
}

// UnitSuffix flags exported float64 struct fields and exported-function
// parameters whose names contain an angle/length keyword but no unit
// suffix, and flags call sites anywhere in the module that pass a
// ...Deg-named value into a ...Rad-named parameter (or M into Km, and vice
// versa).
var UnitSuffix = &Analyzer{
	Name: "unitsuffix",
	Doc: "float64 angle/length quantities must carry a unit suffix " +
		"(Rad, Deg, M, Km, Sec, Hz, DB) and units must agree at call sites",
	Run: runUnitSuffix,
}

func runUnitSuffix(pass *Pass) error {
	if unitSuffixPackages[pass.Pkg.lastPathElement()] {
		checkUnitNames(pass)
	}
	checkUnitCallSites(pass)
	return nil
}

// needsSuffix reports whether name contains a unit keyword but does not end
// in an accepted unit suffix.
func needsSuffix(name string) bool {
	return hasWord(name, unitKeywords) && !unitSuffixes[stripDigits(lastWord(name))]
}

// isFloat64 reports whether the object's type is exactly float64.
func isFloat64(obj types.Object) bool {
	if obj == nil {
		return false
	}
	b, ok := obj.Type().(*types.Basic)
	return ok && b.Kind() == types.Float64
}

func checkUnitNames(pass *Pass) {
	info := pass.Pkg.Info
	inspectFiles(pass.Pkg.Files, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StructType:
			for _, field := range n.Fields.List {
				for _, name := range field.Names {
					if !name.IsExported() || !isFloat64(info.Defs[name]) {
						continue
					}
					if needsSuffix(name.Name) {
						pass.Reportf(name.Pos(),
							"exported float64 field %s needs a unit suffix (Rad, Deg, M, Km, Sec, Hz, DB)",
							name.Name)
					}
				}
			}
		case *ast.FuncDecl:
			if !n.Name.IsExported() || n.Type.Params == nil {
				return true
			}
			for _, field := range n.Type.Params.List {
				for _, name := range field.Names {
					if !isFloat64(info.Defs[name]) {
						continue
					}
					if needsSuffix(name.Name) {
						pass.Reportf(name.Pos(),
							"float64 parameter %s of exported %s needs a unit suffix (Rad, Deg, M, Km, Sec, Hz, DB)",
							name.Name, n.Name.Name)
					}
				}
			}
		}
		return true
	})
}

// conflictingUnits maps a name suffix to the suffixes it must not be mixed
// with at a call boundary.
var conflictingUnits = map[string]map[string]bool{
	"deg": {"rad": true},
	"rad": {"deg": true},
	"m":   {"km": true, "mm": true},
	"km":  {"m": true, "mm": true},
	"mm":  {"m": true, "km": true},
	"sec": {"ms": true},
	"ms":  {"sec": true, "s": true},
	"s":   {"ms": true},
}

func checkUnitCallSites(pass *Pass) {
	info := pass.Pkg.Info
	inspectFiles(pass.Pkg.Files, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sig := callSignature(info, call)
		if sig == nil {
			return true
		}
		params := sig.Params()
		for i, arg := range call.Args {
			if i >= params.Len() || (sig.Variadic() && i >= params.Len()-1) {
				break
			}
			argName := exprName(arg)
			if argName == "" {
				continue
			}
			argSuffix := stripDigits(lastWord(argName))
			paramSuffix := stripDigits(lastWord(params.At(i).Name()))
			if conflictingUnits[argSuffix][paramSuffix] {
				pass.Reportf(arg.Pos(),
					"argument %s (unit %s) passed to parameter %s (unit %s)",
					argName, argSuffix, params.At(i).Name(), paramSuffix)
			}
		}
		return true
	})
}

// callSignature resolves the signature of a call's callee, or nil for type
// conversions and builtins.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// exprName returns the bare name of an identifier or field selection used
// as an argument, or "" for anything more complex (expressions carry no
// unit evidence).
func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}
