package lint_test

import (
	"testing"

	"qntn/internal/lint"
	"qntn/internal/lint/linttest"
)

func TestDetRand(t *testing.T) {
	linttest.Run(t, "testdata", lint.DetRand, "detrand/internal/sim")
}

// TestDetRandTransitive exercises the facts-driven upgrade: sinks hidden
// two call frames deep inside a non-internal helper package are flagged at
// the first in-module call site.
func TestDetRandTransitive(t *testing.T) {
	linttest.RunModule(t, "testdata", lint.DetRand, "detrandtrans")
}
