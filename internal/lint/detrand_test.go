package lint_test

import (
	"testing"

	"qntn/internal/lint"
	"qntn/internal/lint/linttest"
)

func TestDetRand(t *testing.T) {
	linttest.Run(t, "testdata", lint.DetRand, "detrand/internal/sim")
}
