package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"qntn/internal/lint"
	"qntn/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	linttest.RunModule(t, "testdata", lint.HotAlloc, "hotalloc")
}

// TestHotAllocDirectiveProblems asserts directly on the diagnostics for
// malformed and misplaced directives: their positions land on the
// directive's own line, where a want comment cannot sit.
func TestHotAllocDirectiveProblems(t *testing.T) {
	pkg, err := lint.LoadDir(filepath.Join("testdata", "src", "hotallocbad"), "hotallocbad")
	if err != nil {
		t.Fatalf("load hotallocbad: %v", err)
	}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{lint.HotAlloc})
	if err != nil {
		t.Fatalf("run hotalloc: %v", err)
	}
	want := []string{
		"//qntn:hotpath must appear in a function's doc comment",
		`unknown qntn directive "hotpth"`,
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d: %+v", len(diags), len(want), diags)
	}
	for i, w := range want {
		if !strings.Contains(diags[i].Message, w) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, diags[i].Message, w)
		}
	}
}
