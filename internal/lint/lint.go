// Package lint is a self-contained static-analysis framework plus the
// QNTN-specific invariant analyzers that run over it. It mirrors the shape
// of golang.org/x/tools/go/analysis (Analyzer / Pass / Diagnostic / facts)
// but is built entirely on the standard library's go/ast, go/parser,
// go/types and go/importer packages, so the linter needs no third-party
// dependency.
//
// The invariants it enforces are the ones the Go type system cannot see:
//
//   - unitsuffix: float64 quantities with angle/length names must encode
//     their unit in a name suffix (Rad, Deg, M, Km, ...), and call sites
//     must not pass a ...Deg value into a ...Rad parameter (or M into Km).
//   - detrand: simulation packages must draw randomness from an injected
//     seeded *rand.Rand and take timestamps as arguments — global
//     math/rand top-level functions and time.Now() break movement-sheet
//     replay determinism, even when hidden two helpers deep (the
//     cross-package facts engine flags the first in-module call frame).
//   - probrange: probability/fidelity/transmissivity-named values must not
//     be assigned literals outside [0,1], and channel/quantum functions
//     applying math.Sqrt/math.Log* to parameters must carry a NaN guard
//     (math.IsNaN/math.IsInf) or clamp.
//   - errcheckclose: errors from Close/Flush/Write/Sync must not be
//     silently discarded — a dropped writer error corrupts movement sheets
//     and experiment CSVs without any symptom.
//   - hotalloc: functions annotated //qntn:hotpath must contain no
//     allocation sites and call no allocating helpers (checked through the
//     facts engine), keeping the per-step fast path zero-alloc by
//     construction rather than by AllocsPerRun luck.
//   - poolsafe: sync.Pool discipline — checked type assertions on Get,
//     reset before reuse, no pooled value escaping into longer-lived
//     storage, pointer-shaped values only.
//   - atomicmix: a field accessed via sync/atomic in one place must not be
//     accessed by plain load/store in another.
//
// cmd/qntnlint composes all analyzers (plus `go vet`) into a one-command
// gate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"runtime"
	"sort"
	"sync"
)

// Analyzer is one invariant checker. It mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and documentation.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Facts holds the cross-package function facts of the whole loaded
	// set, computed bottom-up before any analyzer runs.
	Facts  *FactSet
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding. The JSON form is what `qntnlint -json` emits.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Position token.Position `json:"position"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{UnitSuffix, DetRand, ProbRange, ErrCheckClose, HotAlloc, PoolSafe, AtomicMix}
}

// RunAnalyzers computes cross-package facts over every loaded package
// (dependencies first), then applies every analyzer to every target
// package and returns the findings sorted by position. Packages are
// analyzed concurrently — analysis is read-only after fact computation —
// which also means a race-built linter run doubles as a race check on the
// framework itself.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	facts := ComputeFacts(pkgs)

	var (
		mu    sync.Mutex
		diags []Diagnostic
		errs  []error
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, pkg := range pkgs {
		if !pkg.Target {
			continue
		}
		wg.Add(1)
		go func(pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var local []Diagnostic
			for _, a := range analyzers {
				pass := &Pass{
					Analyzer: a,
					Pkg:      pkg,
					Facts:    facts,
					report:   func(d Diagnostic) { local = append(local, d) },
				}
				if err := a.Run(pass); err != nil {
					mu.Lock()
					errs = append(errs, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err))
					mu.Unlock()
					return
				}
			}
			mu.Lock()
			diags = append(diags, local...)
			mu.Unlock()
		}(pkg)
	}
	wg.Wait()
	if len(errs) > 0 {
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return nil, errs[0]
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// inspectFiles walks every file of the package.
func inspectFiles(files []*ast.File, fn func(ast.Node) bool) {
	for _, f := range files {
		ast.Inspect(f, fn)
	}
}
