// Package lint is a self-contained static-analysis framework plus the
// QNTN-specific invariant analyzers that run over it. It mirrors the shape
// of golang.org/x/tools/go/analysis (Analyzer / Pass / Diagnostic) but is
// built entirely on the standard library's go/ast, go/parser, go/types and
// go/importer packages, so the linter needs no third-party dependency.
//
// The invariants it enforces are the ones the Go type system cannot see:
//
//   - unitsuffix: float64 quantities with angle/length names must encode
//     their unit in a name suffix (Rad, Deg, M, Km, ...), and call sites
//     must not pass a ...Deg value into a ...Rad parameter (or M into Km).
//   - detrand: simulation packages must draw randomness from an injected
//     seeded *rand.Rand and take timestamps as arguments — global
//     math/rand top-level functions and time.Now() break movement-sheet
//     replay determinism.
//   - probrange: probability/fidelity/transmissivity-named values must not
//     be assigned literals outside [0,1], and channel/quantum functions
//     applying math.Sqrt/math.Log* to parameters must carry a NaN guard
//     (math.IsNaN/math.IsInf) or clamp.
//   - errcheckclose: errors from Close/Flush/Write/Sync must not be
//     silently discarded — a dropped writer error corrupts movement sheets
//     and experiment CSVs without any symptom.
//
// cmd/qntnlint composes all four (plus `go vet`) into a one-command gate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Analyzer is one invariant checker. It mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and documentation.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{UnitSuffix, DetRand, ProbRange, ErrCheckClose}
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// inspectFiles walks every file of the package.
func inspectFiles(files []*ast.File, fn func(ast.Node) bool) {
	for _, f := range files {
		ast.Inspect(f, fn)
	}
}
