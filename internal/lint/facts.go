package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// This file is the cross-package facts engine: for every function of every
// loaded package it computes semantic summaries ("facts") by walking the
// module's package import graph bottom-up, so analyzers in downstream
// packages can ask about the transitive behavior of their dependencies
// without re-walking them. It mirrors the facts mechanism of
// golang.org/x/tools/go/analysis, but stays stdlib-only: facts are keyed by
// the types.Func full name, which is stable across the separate
// type-checking of each package.
//
// Facts computed per function:
//
//   - WallClock: the function transitively reaches time.Now/Since/Until.
//   - GlobalRand: it transitively reaches a global math/rand top-level
//     function (drawing from shared process state).
//   - Allocates: its body contains an allocation site, or it calls a helper
//     whose facts say so. Sites under a //qntn:coldpath directive and error
//     construction inside return statements are excluded — those are
//     acknowledged amortized/failure paths, not the steady state.
//   - Retains: per-parameter, whether the function may store the argument
//     somewhere that outlives the call (struct field, package variable,
//     map, slice, channel, return value, or a callee that retains it).
//
// Calls are resolved statically: direct function calls and method calls on
// concrete receivers. Calls through interfaces and function values are
// invisible to the engine (documented limitation — the runtime AllocsPerRun
// and -race gates remain the backstop for those).

// Trace explains how a fact came to hold: the position and description of
// the originating sink or allocation site, plus the chain of intermediate
// in-module calls (outermost first) when the fact was inherited.
type Trace struct {
	Pos   token.Position
	What  string
	Chain []string
}

// describe renders the trace for a diagnostic message.
func (t *Trace) describe() string {
	if len(t.Chain) == 0 {
		return t.What
	}
	return fmt.Sprintf("%s via %s", t.What, strings.Join(t.Chain, " → "))
}

// FuncFact is the computed summary of one function.
type FuncFact struct {
	// Key is the types.Func full name, e.g.
	// "qntn/internal/geo.ToLLA" or "(*qntn/internal/routing.Graph).Reset".
	Key string
	// Hotpath reports whether the declaration carries //qntn:hotpath.
	Hotpath bool
	// WallClock, GlobalRand and Allocates are nil when the fact does not
	// hold; otherwise they carry the evidence.
	WallClock  *Trace
	GlobalRand *Trace
	Allocates  *Trace
	// Retains[i] reports whether parameter i may be retained past the call.
	Retains []bool
}

// FactSet holds the facts of every function of every loaded package, plus
// the per-package directive state and per-declaration body summaries the
// analyzers share.
type FactSet struct {
	fns  map[string]*FuncFact
	dirs map[string]*pkgDirectives
	sums map[*ast.FuncDecl]*funcSummary
}

// Lookup returns the fact for the given function key (types.Func full
// name), or nil when the function is outside the loaded set.
func (fs *FactSet) Lookup(key string) *FuncFact { return fs.fns[key] }

// ForFunc returns the fact for fn, or nil when fn is outside the loaded
// set.
func (fs *FactSet) ForFunc(fn *types.Func) *FuncFact {
	if fn == nil {
		return nil
	}
	return fs.fns[fn.FullName()]
}

// Directives returns the parsed qntn directives of the given package path,
// or nil.
func (fs *FactSet) Directives(pkgPath string) *pkgDirectives { return fs.dirs[pkgPath] }

// summary returns the body summary of decl, or nil.
func (fs *FactSet) summary(decl *ast.FuncDecl) *funcSummary { return fs.sums[decl] }

// allocSite is one allocation (or boxing) site in a function body.
type allocSite struct {
	pos  token.Pos
	what string
	// box marks interface-boxing sites. Boxing is frequently elided by
	// escape analysis when the callee does not retain its argument, so it
	// contributes to direct hotalloc diagnostics inside annotated
	// functions but never to the transitive Allocates fact.
	box bool
}

// callInfo is one statically resolved call.
type callInfo struct {
	pos token.Pos
	fn  *types.Func
	// exempt marks calls under a //qntn:coldpath directive; they do not
	// propagate the Allocates fact (determinism facts still do).
	exempt bool
	// argParams maps callee parameter index -> caller parameter index for
	// arguments that are plain references to the caller's parameters
	// (-1 otherwise). Used to propagate the Retains fact.
	argParams []int
}

// funcSummary is the walked body of one declaration.
type funcSummary struct {
	decl   *ast.FuncDecl
	fn     *types.Func
	key    string
	sites  []allocSite
	calls  []callInfo
	params []*types.Var
}

// --- stdlib knowledge -------------------------------------------------

// wallClockFuncs are the stdlib entry points that couple a caller to the
// wall clock.
var wallClockFuncs = map[string]string{
	"time.Now":   "time.Now()",
	"time.Since": "time.Since()",
	"time.Until": "time.Until()",
}

// globalRandFunc reports whether fn is a math/rand top-level function that
// draws from the shared global source (generator constructors stay legal).
func globalRandFunc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil || (pkg.Path() != "math/rand" && pkg.Path() != "math/rand/v2") {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false // *rand.Rand methods are the injected pattern
	}
	return !detRandAllowed[fn.Name()]
}

// allocatingStdlibPkgs are packages whose exported functions allocate as a
// rule (formatted output and error construction).
var allocatingStdlibPkgs = map[string]bool{"fmt": true}

// allocatingStdlibFuncs is the curated set of individually known-allocating
// stdlib functions. Stdlib calls outside this table are assumed clean —
// the engine cannot see stdlib bodies, and flagging every unknown call
// would bury real findings under math.Sqrt noise.
var allocatingStdlibFuncs = map[string]bool{
	"errors.New": true, "errors.Join": true,
	"strings.Join": true, "strings.Repeat": true, "strings.Replace": true,
	"strings.ReplaceAll": true, "strings.Split": true, "strings.SplitN": true,
	"strings.SplitAfter": true, "strings.Fields": true, "strings.Map": true,
	"strings.ToUpper": true, "strings.ToLower": true, "strings.Clone": true,
	"strings.NewReader": true, "strings.NewReplacer": true,
	"strconv.Itoa": true, "strconv.FormatInt": true, "strconv.FormatUint": true,
	"strconv.FormatFloat": true, "strconv.Quote": true,
	"strconv.AppendQuote": true, "strconv.AppendFloat": true, "strconv.AppendInt": true,
	"sort.Slice": true, "sort.SliceStable": true, "sort.Strings": true,
	"sort.Ints": true, "sort.Float64s": true, "sort.Sort": true,
	"time.After": true, "time.NewTimer": true, "time.NewTicker": true,
}

// errorCtorFuncs build error values; calls to them inside return statements
// are exempt from allocation accounting (failure is not the hot path).
var errorCtorFuncs = map[string]bool{
	"fmt.Errorf": true, "errors.New": true, "errors.Join": true,
}

// allocatingStdlib reports whether a call to fn is a known allocator.
func allocatingStdlib(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	if allocatingStdlibPkgs[pkg.Path()] {
		return true
	}
	return allocatingStdlibFuncs[fn.FullName()]
}

// stdlibFact synthesizes the fact of a function outside the loaded set from
// the curated tables above. The trace carries no position; callers
// substitute the call site.
func stdlibFact(fn *types.Func) *FuncFact {
	f := &FuncFact{Key: fn.FullName()}
	if what, ok := wallClockFuncs[f.Key]; ok {
		f.WallClock = &Trace{What: what}
	}
	if globalRandFunc(fn) {
		f.GlobalRand = &Trace{What: "rand." + fn.Name() + " (global math/rand source)"}
	}
	if allocatingStdlib(fn) {
		f.Allocates = &Trace{What: "call to " + f.Key}
	}
	return f
}

// --- call resolution --------------------------------------------------

// staticCallee resolves a call expression to the single function it must
// invoke, or nil for dynamic calls (interface methods, function values,
// builtins, conversions).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		var fn *types.Func
		if sel, ok := info.Selections[f]; ok {
			fn, _ = sel.Obj().(*types.Func)
		} else if use, ok := info.Uses[f.Sel].(*types.Func); ok {
			fn = use // package-qualified call
		}
		if fn == nil {
			return nil
		}
		if sig, ok := fn.Type().(*types.Signature); ok {
			if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
				return nil // dynamic dispatch
			}
		}
		return fn
	}
	return nil
}

// shortFuncName compresses a full function name for messages by replacing
// the package import path with the bare package name.
func shortFuncName(fn *types.Func) string {
	full := fn.FullName()
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() != pkg.Name() {
		full = strings.Replace(full, pkg.Path(), pkg.Name(), 1)
	}
	return full
}

// --- body walking -----------------------------------------------------

// bodyWalker scans one declaration body for allocation sites and resolved
// calls, honoring coldpath directives.
type bodyWalker struct {
	pkg      *Package
	cold     coldLines
	paramIdx map[types.Object]int
	stack    []ast.Node
	sites    []allocSite
	calls    []callInfo
}

// exemptAt reports whether pos, or any enclosing statement, is covered by a
// coldpath directive (on the same line or the line above).
func (w *bodyWalker) exemptAt(pos token.Pos) bool {
	p := w.pkg.Fset.Position(pos)
	if w.cold.exempt(p.Filename, p.Line) {
		return true
	}
	for _, n := range w.stack {
		if _, ok := n.(ast.Stmt); !ok {
			continue
		}
		sp := w.pkg.Fset.Position(n.Pos())
		if w.cold.exempt(sp.Filename, sp.Line) {
			return true
		}
	}
	return false
}

// inReturn reports whether the walker is inside a return statement.
func (w *bodyWalker) inReturn() bool {
	for _, n := range w.stack {
		if _, ok := n.(*ast.ReturnStmt); ok {
			return true
		}
	}
	return false
}

// parent returns the immediate enclosing node.
func (w *bodyWalker) parent() ast.Node {
	if len(w.stack) == 0 {
		return nil
	}
	return w.stack[len(w.stack)-1]
}

// site records an allocation site unless a coldpath directive covers it.
func (w *bodyWalker) site(pos token.Pos, what string, box bool) {
	if w.exemptAt(pos) {
		return
	}
	w.sites = append(w.sites, allocSite{pos: pos, what: what, box: box})
}

func (w *bodyWalker) walk(body ast.Node) {
	info := w.pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			w.stack = w.stack[:len(w.stack)-1]
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			w.visitCall(n, info)
		case *ast.CompositeLit:
			w.visitCompositeLit(n, info)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					w.site(n.Pos(), "address of composite literal escapes to the heap", false)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && w.isNonConstString(n, info) {
				w.site(n.Pos(), "string concatenation allocates", false)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ie, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if _, isMap := typeUnder(info, ie.X).(*types.Map); isMap {
						w.site(lhs.Pos(), "assignment into a map may allocate", false)
					}
				}
			}
		case *ast.FuncLit:
			if captured := capturedVars(n, info, body); len(captured) > 0 {
				w.site(n.Pos(), fmt.Sprintf("closure captures %s and allocates", strings.Join(captured, ", ")), false)
			}
		case *ast.GoStmt:
			w.site(n.Pos(), "go statement allocates a goroutine", false)
		}
		w.stack = append(w.stack, n)
		return true
	})
}

// visitCall classifies one call: builtin allocators, stdlib allocators and
// wall-clock/rand sinks, interface boxing of arguments, and statically
// resolved callees for fact propagation.
func (w *bodyWalker) visitCall(call *ast.CallExpr, info *types.Info) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if len(call.Args) > 0 {
					switch typeUnder(info, call.Args[0]).(type) {
					case *types.Map:
						w.site(call.Pos(), "make of a map allocates", false)
					case *types.Chan:
						w.site(call.Pos(), "make of a channel allocates", false)
					case *types.Slice:
						w.site(call.Pos(), "make of a slice allocates", false)
					}
				}
			case "new":
				w.site(call.Pos(), "new allocates", false)
			case "append":
				w.site(call.Pos(), "append may grow its backing array", false)
			}
			return
		}
	}
	// Conversions to interface types box their operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && w.boxable(call.Args[0], info) {
			w.site(call.Pos(), "conversion boxes a concrete value into an interface", false)
		}
		return
	}

	fn := staticCallee(info, call)
	if fn != nil {
		w.calls = append(w.calls, callInfo{
			pos:       call.Pos(),
			fn:        fn,
			exempt:    w.exemptAt(call.Pos()) || (w.inReturn() && errorCtorFuncs[fn.FullName()]),
			argParams: w.argParamMap(call, fn),
		})
	}

	// Interface boxing of call arguments. Skipped for error constructors
	// inside returns — the failure path is exempt wholesale.
	if fn != nil && w.inReturn() && errorCtorFuncs[fn.FullName()] {
		return
	}
	sig := callSignature(info, call)
	if sig == nil && fn != nil {
		sig, _ = fn.Type().(*types.Signature)
	}
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i, call.Ellipsis.IsValid())
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if w.boxable(arg, info) {
			w.site(arg.Pos(), fmt.Sprintf("argument %d boxes a concrete value into an interface", i+1), true)
		}
	}
}

// visitCompositeLit flags bare slice and map literals (heap-backed); struct
// and array value literals live on the stack and stay silent. Literals
// under a unary & are reported by the UnaryExpr case instead.
func (w *bodyWalker) visitCompositeLit(cl *ast.CompositeLit, info *types.Info) {
	if p, ok := w.parent().(*ast.UnaryExpr); ok && p.Op == token.AND {
		return
	}
	switch typeUnder(info, cl).(type) {
	case *types.Slice:
		w.site(cl.Pos(), "slice literal allocates", false)
	case *types.Map:
		w.site(cl.Pos(), "map literal allocates", false)
	}
}

// isNonConstString reports whether the binary expression is a non-constant
// string concatenation.
func (w *bodyWalker) isNonConstString(be *ast.BinaryExpr, info *types.Info) bool {
	tv, ok := info.Types[be]
	if !ok || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// boxable reports whether converting expr to an interface requires a heap
// box: a non-constant value of concrete, non-pointer-shaped type.
func (w *bodyWalker) boxable(expr ast.Expr, info *types.Info) bool {
	tv, ok := info.Types[ast.Unparen(expr)]
	if !ok || tv.Value != nil || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		b := tv.Type.Underlying().(*types.Basic)
		return b.Kind() != types.UnsafePointer && b.Kind() != types.UntypedNil
	}
	return true
}

// argParamMap maps callee parameter indices to the caller parameter passed
// there (or -1), for Retains propagation.
func (w *bodyWalker) argParamMap(call *ast.CallExpr, fn *types.Func) []int {
	if len(w.paramIdx) == 0 {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := make([]int, sig.Params().Len())
	for i := range out {
		out[i] = -1
	}
	info := w.pkg.Info
	any := false
	for i, arg := range call.Args {
		if i >= len(out) {
			break
		}
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		if pi, ok := w.paramIdx[info.Uses[id]]; ok {
			out[i] = pi
			any = true
		}
	}
	if !any {
		return nil
	}
	return out
}

// paramTypeAt returns the type of the parameter receiving argument i, nil
// when it cannot be determined. Variadic expansion with an explicit ...
// passes the slice through without boxing.
func paramTypeAt(sig *types.Signature, i int, ellipsis bool) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && !ellipsis && i >= n-1 {
		if sl, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}

// typeUnder returns the underlying type of an expression, or nil.
func typeUnder(info *types.Info, expr ast.Expr) types.Type {
	tv, ok := info.Types[ast.Unparen(expr)]
	if !ok || tv.Type == nil {
		return nil
	}
	return tv.Type.Underlying()
}

// capturedVars lists (up to 3) variables a function literal captures from
// its enclosing function.
func capturedVars(lit *ast.FuncLit, info *types.Info, encl ast.Node) []string {
	var out []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		// Captured: declared inside the enclosing declaration but outside
		// the literal.
		if v.Pos() >= encl.Pos() && v.Pos() <= encl.End() && (v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			seen[v] = true
			if len(out) < 3 {
				out = append(out, v.Name())
			}
		}
		return true
	})
	sort.Strings(out)
	return out
}

// --- fact computation -------------------------------------------------

// ComputeFacts walks every package bottom-up over the import graph
// (restricted to the loaded set) and returns the resulting fact set.
func ComputeFacts(pkgs []*Package) *FactSet {
	fs := &FactSet{
		fns:  make(map[string]*FuncFact),
		dirs: make(map[string]*pkgDirectives),
		sums: make(map[*ast.FuncDecl]*funcSummary),
	}
	for _, pkg := range topoSort(pkgs) {
		fs.addPackage(pkg)
	}
	return fs
}

// topoSort orders packages dependencies-first, considering only imports
// that resolve within the given set.
func topoSort(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	var order []*Package
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p.Path] != 0 {
			return
		}
		state[p.Path] = 1
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if dep, ok := byPath[path]; ok && state[path] == 0 {
					visit(dep)
				}
			}
		}
		state[p.Path] = 2
		order = append(order, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return order
}

// addPackage summarizes every declaration of pkg and runs the intra-package
// fixpoint (handling recursion and mutual calls) against the facts of the
// already-processed dependency packages.
func (fs *FactSet) addPackage(pkg *Package) {
	dirs := collectDirectives(pkg)
	fs.dirs[pkg.Path] = dirs

	var sums []*funcSummary
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			s := summarize(pkg, fn, obj, dirs.cold)
			sums = append(sums, s)
			fs.sums[fn] = s
			fact := &FuncFact{Key: s.key, Retains: make([]bool, len(s.params))}
			if _, hot := dirs.hot[fn]; hot {
				fact.Hotpath = true
			}
			// Direct allocation sites (boxing excluded: escape analysis
			// usually elides it, so it never crosses function boundaries).
			for _, site := range s.sites {
				if !site.box {
					fact.Allocates = &Trace{Pos: pkg.Fset.Position(site.pos), What: site.what}
					break
				}
			}
			// Direct local retention.
			localRetains(pkg, fn, s.params, fact.Retains)
			fs.fns[s.key] = fact
		}
	}

	// Fixpoint over the package's call edges: callee facts flow into
	// callers until nothing changes (bounded by the number of facts).
	for changed := true; changed; {
		changed = false
		for _, s := range sums {
			f := fs.fns[s.key]
			for _, c := range s.calls {
				cf := fs.fns[c.fn.FullName()]
				if cf == nil {
					cf = stdlibFact(c.fn)
				}
				if cf.WallClock != nil && f.WallClock == nil {
					f.WallClock = deriveTrace(pkg, c, cf.WallClock)
					changed = true
				}
				if cf.GlobalRand != nil && f.GlobalRand == nil {
					f.GlobalRand = deriveTrace(pkg, c, cf.GlobalRand)
					changed = true
				}
				if cf.Allocates != nil && f.Allocates == nil && !c.exempt {
					f.Allocates = deriveTrace(pkg, c, cf.Allocates)
					changed = true
				}
				for calleeIdx, callerIdx := range c.argParams {
					if callerIdx >= 0 && calleeIdx < len(cf.Retains) && cf.Retains[calleeIdx] && !f.Retains[callerIdx] {
						f.Retains[callerIdx] = true
						changed = true
					}
				}
			}
		}
	}
}

// deriveTrace builds the caller's trace from a callee's: stdlib sinks (no
// position) anchor at the call site; in-module traces keep the original
// sink position and grow the chain.
func deriveTrace(pkg *Package, c callInfo, t *Trace) *Trace {
	if !t.Pos.IsValid() {
		return &Trace{Pos: pkg.Fset.Position(c.pos), What: t.What}
	}
	chain := make([]string, 0, len(t.Chain)+1)
	chain = append(chain, shortFuncName(c.fn))
	chain = append(chain, t.Chain...)
	return &Trace{Pos: t.Pos, What: t.What, Chain: chain}
}

// summarize walks one declaration body.
func summarize(pkg *Package, decl *ast.FuncDecl, obj *types.Func, cold coldLines) *funcSummary {
	s := &funcSummary{decl: decl, fn: obj, key: obj.FullName()}
	if sig, ok := obj.Type().(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			s.params = append(s.params, sig.Params().At(i))
		}
	}
	w := &bodyWalker{pkg: pkg, cold: cold, paramIdx: make(map[types.Object]int, len(s.params))}
	for i, p := range s.params {
		w.paramIdx[p] = i
	}
	w.walk(decl.Body)
	s.sites = w.sites
	s.calls = w.calls
	return s
}

// localRetains marks parameters the body directly retains: assigned to a
// selector, index or package-level variable; appended; used as a map key or
// value; sent on a channel; or returned.
func localRetains(pkg *Package, decl *ast.FuncDecl, params []*types.Var, out []bool) {
	if len(params) == 0 {
		return
	}
	info := pkg.Info
	idx := make(map[types.Object]int, len(params))
	for i, p := range params {
		idx[p] = i
	}
	paramIndex := func(expr ast.Expr) (int, bool) {
		id, ok := ast.Unparen(expr).(*ast.Ident)
		if !ok {
			return 0, false
		}
		i, ok := idx[info.Uses[id]]
		return i, ok
	}
	nonLocalLHS := func(expr ast.Expr) bool {
		switch lhs := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			return true
		case *ast.Ident:
			if v, ok := info.Uses[lhs].(*types.Var); ok {
				return v.Parent() == pkg.Types.Scope() // package-level
			}
		}
		return false
	}
	mark := func(expr ast.Expr) {
		if i, ok := paramIndex(expr); ok {
			out[i] = true
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Rhs {
					if nonLocalLHS(n.Lhs[i]) {
						mark(n.Rhs[i])
					}
				}
			} else {
				anyNonLocal := false
				for _, lhs := range n.Lhs {
					if nonLocalLHS(lhs) {
						anyNonLocal = true
					}
				}
				if anyNonLocal {
					for _, rhs := range n.Rhs {
						mark(rhs)
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				mark(r)
			}
		case *ast.SendStmt:
			mark(n.Value)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					for _, a := range n.Args[1:] {
						mark(a)
					}
				}
			}
		}
		return true
	})
}
