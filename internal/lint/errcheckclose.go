package lint

import (
	"go/ast"
	"go/types"
)

// errCheckMethods are the writer-lifecycle methods whose errors carry the
// only evidence of a failed write: a movement sheet or experiment CSV that
// lost its tail looks complete until replay diverges.
var errCheckMethods = map[string]bool{
	"Close": true, "Flush": true, "Sync": true, "Write": true,
	"WriteString": true, "WriteAll": true,
}

// ErrCheckClose flags statements that discard the error returned by
// Close/Flush/Sync/Write method calls, including `defer f.Close()` on
// writers. (Methods that return no error — e.g. csv.Writer.Flush, which is
// checked via Error() — are not flagged.)
var ErrCheckClose = &Analyzer{
	Name: "errcheckclose",
	Doc: "errors from Close/Flush/Sync/Write must be checked; a dropped " +
		"writer error silently truncates movement sheets and CSVs",
	Run: runErrCheckClose,
}

func runErrCheckClose(pass *Pass) error {
	info := pass.Pkg.Info
	inspectFiles(pass.Pkg.Files, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok {
				if name := droppedErrorCall(info, call); name != "" {
					pass.Reportf(call.Pos(),
						"error from %s is discarded; check it (a failed write or close loses data silently)",
						name)
				}
			}
		case *ast.DeferStmt:
			if name := droppedErrorCall(info, stmt.Call); name != "" {
				pass.Reportf(stmt.Pos(),
					"deferred %s discards its error; close explicitly on the success path and check the error",
					name)
			}
		}
		return true
	})
	return nil
}

// droppedErrorCall reports the "recv.Method" label of a statement-position
// method call whose error result is being discarded, or "" when the call is
// not one of the watched methods, is a package-level function, or returns
// no error.
func droppedErrorCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !errCheckMethods[sel.Sel.Name] {
		return ""
	}
	// Package-level functions (trace.Write, fmt.Fprintf-style helpers) are
	// out of scope: the invariant targets writer objects.
	if selectedPackagePath(info, sel) != "" {
		return ""
	}
	sig := callSignature(info, call)
	if sig == nil || !signatureReturnsError(sig) {
		return ""
	}
	if tv, ok := info.Types[sel.X]; ok && neverFailingWriter(tv.Type) {
		return ""
	}
	return exprLabel(sel.X) + "." + sel.Sel.Name
}

// neverFailingWriter exempts receiver types whose Write-family methods are
// documented to never return an error: strings.Builder, bytes.Buffer, and
// hash.Hash implementations.
func neverFailingWriter(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "strings", "bytes", "hash":
		return true
	}
	return false
}

// signatureReturnsError reports whether any result of the signature is the
// built-in error type.
func signatureReturnsError(sig *types.Signature) bool {
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}

// exprLabel renders a short label for the receiver expression.
func exprLabel(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprLabel(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprLabel(e.Fun) + "()"
	case *ast.ParenExpr:
		return exprLabel(e.X)
	case *ast.IndexExpr:
		return exprLabel(e.X) + "[...]"
	}
	return "expression"
}
