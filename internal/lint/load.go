package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("qntn/internal/geo", or a testdata-relative
	// path like "unitsuffix/geo" under the linttest harness).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Target reports whether the package was matched by the load patterns
	// (as opposed to being pulled in as a dependency for fact computation).
	// Analyzers only report diagnostics for target packages.
	Target bool
}

// pathElements returns the slash-separated elements of the import path.
func (p *Package) pathElements() []string {
	return strings.Split(p.Path, "/")
}

// hasPathElement reports whether elem appears as a path element.
func (p *Package) hasPathElement(elem string) bool {
	for _, e := range p.pathElements() {
		if e == elem {
			return true
		}
	}
	return false
}

// lastPathElement returns the final element of the import path.
func (p *Package) lastPathElement() string {
	el := p.pathElements()
	return el[len(el)-1]
}

// importPathHasElement reports whether elem appears as an element of the
// slash-separated import path.
func importPathHasElement(path, elem string) bool {
	for _, e := range strings.Split(path, "/") {
		if e == elem {
			return true
		}
	}
	return false
}

// goList runs `go list` with the given format and patterns and returns the
// output lines.
func goList(format string, extra []string, patterns ...string) ([]string, error) {
	args := append([]string{"list"}, extra...)
	args = append(args, "-f", format)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var lines []string
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		if line != "" {
			lines = append(lines, line)
		}
	}
	return lines, nil
}

// Load enumerates the packages matching the go-command patterns (for
// example "./...") via `go list`, widens the set to their in-module
// dependency closure (so cross-package facts see every helper the targets
// call), then parses and type-checks each from source. Only the
// pattern-matched packages are marked Target; facts are computed for all,
// diagnostics reported only for targets. Test files (_test.go) are
// excluded: the invariants guard production simulation paths, and test
// helpers legitimately use patterns (fixed literals, buffers whose Close
// never fails) the analyzers flag.
func Load(patterns ...string) ([]*Package, error) {
	targets, err := goList("{{.ImportPath}}", nil, patterns...)
	if err != nil {
		return nil, err
	}
	targetSet := make(map[string]bool, len(targets))
	for _, t := range targets {
		targetSet[t] = true
	}

	// The dependency closure, restricted to packages that belong to a
	// module (dropping the stdlib, which the source importer handles).
	lines, err := goList("{{.ImportPath}}\t{{.Dir}}\t{{if .Module}}{{.Module.Path}}{{end}}", []string{"-deps"}, patterns...)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	for _, line := range lines {
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("lint: malformed go list line %q", line)
		}
		path, dir, module := parts[0], parts[1], parts[2]
		if module == "" {
			continue // stdlib dependency
		}
		pkg, err := loadDir(fset, imp, dir, path)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkg.Target = targetSet[path]
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir, giving it the
// provided import path. It is the entry point used by the linttest harness
// for standalone testdata packages that live outside the module.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, err := loadDir(fset, imp, dir, importPath)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg.Target = true
	return pkg, nil
}

// LoadTree loads every package in the directory tree rooted at root as a
// miniature module: import paths are root-relative ("hotalloc/helper"), and
// imports between packages of the tree resolve against it, so cross-package
// fact propagation is exercised exactly as in a real module. Imports not
// found under root fall back to the source importer (stdlib). This is the
// entry point for the linttest multi-package harness.
func LoadTree(root string) ([]*Package, error) {
	fset := token.NewFileSet()
	m := &moduleImporter{
		fset:     fset,
		root:     root,
		cache:    make(map[string]*Package),
		loading:  make(map[string]bool),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	var paths []string
	err := filepath.WalkDir(root, func(dir string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(root, dir)
				if err != nil {
					return err
				}
				paths = append(paths, filepath.ToSlash(rel))
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walk %s: %w", root, err)
	}
	sort.Strings(paths)
	var pkgs []*Package
	for _, path := range paths {
		pkg, err := m.load(path)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkg.Target = true
			pkgs = append(pkgs, pkg)
		}
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("lint: no Go packages under %s", root)
	}
	return pkgs, nil
}

// moduleImporter resolves import paths against a testdata directory tree,
// falling back to the source importer for everything else (stdlib). It is
// handed to the type checker, so imports between testdata packages load
// recursively on demand.
type moduleImporter struct {
	fset     *token.FileSet
	root     string
	cache    map[string]*Package
	loading  map[string]bool
	fallback types.Importer
}

// Import implements types.Importer.
func (m *moduleImporter) Import(path string) (*types.Package, error) {
	pkg, err := m.load(path)
	if err != nil {
		return nil, err
	}
	if pkg != nil {
		return pkg.Types, nil
	}
	return m.fallback.Import(path)
}

// load parses and type-checks the tree package at the given root-relative
// path, returning (nil, nil) when no such directory exists (the caller
// falls back to the source importer).
func (m *moduleImporter) load(path string) (*Package, error) {
	if pkg, ok := m.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(m.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return nil, nil
	}
	if m.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	m.loading[path] = true
	defer delete(m.loading, path)
	pkg, err := loadDir(m.fset, m, dir, path)
	if err != nil {
		return nil, err
	}
	m.cache[path] = pkg
	return pkg, nil
}

// loadDir parses the non-test Go files of dir and type-checks them with
// imports resolved from source. Returns (nil, nil) for directories with no
// buildable Go files (e.g. pattern matches with only test files).
func loadDir(fset *token.FileSet, imp types.Importer, dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
