package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("qntn/internal/geo", or a testdata-relative
	// path like "unitsuffix/geo" under the linttest harness).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// pathElements returns the slash-separated elements of the import path.
func (p *Package) pathElements() []string {
	return strings.Split(p.Path, "/")
}

// hasPathElement reports whether elem appears as a path element.
func (p *Package) hasPathElement(elem string) bool {
	for _, e := range p.pathElements() {
		if e == elem {
			return true
		}
	}
	return false
}

// lastPathElement returns the final element of the import path.
func (p *Package) lastPathElement() string {
	el := p.pathElements()
	return el[len(el)-1]
}

// Load enumerates the packages matching the go-command patterns (for
// example "./...") via `go list`, then parses and type-checks each from
// source. Test files (_test.go) are excluded: the invariants guard
// production simulation paths, and test helpers legitimately use patterns
// (fixed literals, buffers whose Close never fails) the analyzers flag.
func Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-f", "{{.ImportPath}}\t{{.Dir}}"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		if line == "" {
			continue
		}
		path, dir, ok := strings.Cut(line, "\t")
		if !ok {
			return nil, fmt.Errorf("lint: malformed go list line %q", line)
		}
		pkg, err := loadDir(fset, imp, dir, path)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir, giving it the
// provided import path. It is the entry point used by the linttest harness
// for testdata packages that live outside the module.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, err := loadDir(fset, imp, dir, importPath)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return pkg, nil
}

// loadDir parses the non-test Go files of dir and type-checks them with
// imports resolved from source. Returns (nil, nil) for directories with no
// buildable Go files (e.g. pattern matches with only test files).
func loadDir(fset *token.FileSet, imp types.Importer, dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
