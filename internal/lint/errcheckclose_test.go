package lint_test

import (
	"testing"

	"qntn/internal/lint"
	"qntn/internal/lint/linttest"
)

func TestErrCheckClose(t *testing.T) {
	linttest.Run(t, "testdata", lint.ErrCheckClose, "errcheckclose/trace")
}
