package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix flags variables that are accessed through sync/atomic in one
// place and by plain load or store in another. Mixing the two is not a
// slightly-stale read — it is an outright data race: the plain access
// carries no synchronization, so the race detector (and the memory model)
// reject it, and on weak architectures the plain read can observe torn or
// indefinitely stale values. This is the bug class one careless refactor
// away whenever an atomic.AddUint64 counter grows a "just read it quickly"
// accessor; the fix is to use atomic.Load/Store everywhere or switch the
// field to the atomic.Uint64 wrapper types (which make plain access
// impossible), as internal/telemetry does.
//
// Tracked variables are struct fields and package-level variables — the
// shapes that outlive a single goroutine. Composite-literal keys are not
// flagged: initialization before publication is the idiomatic construction
// pattern.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "a variable accessed via sync/atomic must not also be accessed " +
		"by plain load/store elsewhere",
	Run: runAtomicMix,
}

// atomicCallPrefixes are the sync/atomic operation families that take &x.
var atomicCallPrefixes = []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"}

func runAtomicMix(pass *Pass) error {
	info := pass.Pkg.Info

	// Pass 1: collect the objects used atomically, and every identifier
	// inside those atomic call arguments (so the &x in atomic.AddUint64(&x)
	// is not itself "plain access").
	atomicAt := make(map[types.Object]token.Pos)
	inAtomic := make(map[*ast.Ident]bool)
	inspectFiles(pass.Pkg.Files, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || selectedPackagePath(info, sel) != "sync/atomic" {
			return true
		}
		if !hasAtomicPrefix(sel.Sel.Name) || len(call.Args) == 0 {
			return true
		}
		un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			return true
		}
		if obj := addressedObject(info, un.X); obj != nil && sharedShape(pass, obj) {
			if _, seen := atomicAt[obj]; !seen {
				atomicAt[obj] = call.Pos()
			}
		}
		ast.Inspect(call.Args[0], func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				inAtomic[id] = true
			}
			return true
		})
		return true
	})
	if len(atomicAt) == 0 {
		return nil
	}

	// Pass 2: any other use of those objects is a plain access.
	for _, file := range pass.Pkg.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if id, ok := n.(*ast.Ident); ok && !inAtomic[id] {
				obj := info.Uses[id]
				if at, tracked := atomicAt[obj]; tracked && !isCompositeKey(stack, id) {
					pass.Reportf(id.Pos(),
						"%s is accessed atomically at %s but by plain load/store here; mixing the two is a data race",
						id.Name, pass.Pkg.Fset.Position(at))
				}
			}
			stack = append(stack, n)
			return true
		})
	}
	return nil
}

// hasAtomicPrefix reports whether name is one of the sync/atomic operation
// families (AddUint64, LoadInt32, CompareAndSwapPointer, ...).
func hasAtomicPrefix(name string) bool {
	for _, p := range atomicCallPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// addressedObject resolves the variable whose address is taken: a struct
// field selection or a plain identifier.
func addressedObject(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	case *ast.IndexExpr:
		return addressedObject(info, e.X)
	}
	return nil
}

// sharedShape reports whether obj is a struct field or package-level
// variable — state that plausibly outlives one goroutine. Locals are left
// to the race detector.
func sharedShape(pass *Pass, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.IsField() || v.Parent() == pass.Pkg.Types.Scope()
}

// isCompositeKey reports whether id is the key of a composite-literal
// element (S{n: 0} — construction, not access).
func isCompositeKey(stack []ast.Node, id *ast.Ident) bool {
	if len(stack) < 2 {
		return false
	}
	kv, ok := stack[len(stack)-1].(*ast.KeyValueExpr)
	if !ok || kv.Key != id {
		return false
	}
	_, ok = stack[len(stack)-2].(*ast.CompositeLit)
	return ok
}
