package lint_test

import (
	"testing"

	"qntn/internal/lint"
	"qntn/internal/lint/linttest"
)

func TestUnitSuffix(t *testing.T) {
	linttest.Run(t, "testdata", lint.UnitSuffix, "unitsuffix/geo")
}
