package lint

import (
	"go/ast"
	"go/types"
)

// DetRand forbids the two determinism leaks that would silently break
// movement-sheet replays inside internal/ simulation packages: calls to
// math/rand's global top-level functions (which share unseeded process
// state) and time.Now() (wall-clock coupling). Constructing a seeded
// generator — rand.New(rand.NewSource(seed)) — is the approved pattern and
// stays allowed.
//
// Beyond direct calls, the analyzer consults the cross-package facts
// engine: a call from an internal package into a non-internal module
// helper whose computed facts say it transitively reaches the wall clock
// or the global rand source is flagged at the call site — the first
// in-module frame — with the full call chain in the message. Internal
// callees are not re-reported here, since they are flagged directly at
// their own sink.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "simulation packages must use an injected seeded *rand.Rand and " +
		"explicit timestamps, not global math/rand functions or time.Now " +
		"(directly or through helpers)",
	Run: runDetRand,
}

// detRandAllowed are the math/rand functions that build injectable
// generators rather than drawing from the global source.
var detRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true,
	"NewChaCha8": true,
}

func runDetRand(pass *Pass) error {
	if !pass.Pkg.hasPathElement("internal") {
		return nil
	}
	info := pass.Pkg.Info
	inspectFiles(pass.Pkg.Files, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			pkgPath := selectedPackagePath(info, sel)
			switch pkgPath {
			case "math/rand", "math/rand/v2":
				if !detRandAllowed[sel.Sel.Name] {
					pass.Reportf(call.Pos(),
						"rand.%s draws from the global math/rand source; inject a seeded *rand.Rand (rand.New(rand.NewSource(seed)))",
						sel.Sel.Name)
				}
				return true
			case "time":
				if sel.Sel.Name == "Now" {
					pass.Reportf(call.Pos(),
						"time.Now couples the simulation to the wall clock; pass an explicit timestamp or simulated time instead")
				}
				return true
			}
		}
		reportTransitiveDetRand(pass, call)
		return true
	})
	return nil
}

// reportTransitiveDetRand flags calls into non-internal module helpers
// whose facts reach a determinism sink. Internal callees are skipped: they
// are internal packages themselves, so the sink is flagged directly where
// it occurs.
func reportTransitiveDetRand(pass *Pass, call *ast.CallExpr) {
	fn := staticCallee(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	fact := pass.Facts.ForFunc(fn)
	if fact == nil {
		return // outside the loaded module set
	}
	if importPathHasElement(fn.Pkg().Path(), "internal") {
		return
	}
	if fact.WallClock != nil {
		pass.Reportf(call.Pos(),
			"call to %s transitively couples the simulation to the wall clock (%s); pass an explicit timestamp or simulated time instead",
			shortFuncName(fn), fact.WallClock.describe())
	}
	if fact.GlobalRand != nil {
		pass.Reportf(call.Pos(),
			"call to %s transitively draws from the global math/rand source (%s); inject a seeded *rand.Rand instead",
			shortFuncName(fn), fact.GlobalRand.describe())
	}
}

// selectedPackagePath returns the import path of the package a selector
// selects from, or "" when the selector base is not a package name (method
// calls on values stay anonymous here, which is what keeps *rand.Rand
// method calls legal).
func selectedPackagePath(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pkgName.Imported().Path()
}
