package lint

import (
	"go/ast"
	"go/types"
)

// DetRand forbids the two determinism leaks that would silently break
// movement-sheet replays inside internal/ simulation packages: calls to
// math/rand's global top-level functions (which share unseeded process
// state) and time.Now() (wall-clock coupling). Constructing a seeded
// generator — rand.New(rand.NewSource(seed)) — is the approved pattern and
// stays allowed.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "simulation packages must use an injected seeded *rand.Rand and " +
		"explicit timestamps, not global math/rand functions or time.Now",
	Run: runDetRand,
}

// detRandAllowed are the math/rand functions that build injectable
// generators rather than drawing from the global source.
var detRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true,
	"NewChaCha8": true,
}

func runDetRand(pass *Pass) error {
	if !pass.Pkg.hasPathElement("internal") {
		return nil
	}
	info := pass.Pkg.Info
	inspectFiles(pass.Pkg.Files, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath := selectedPackagePath(info, sel)
		switch pkgPath {
		case "math/rand", "math/rand/v2":
			if !detRandAllowed[sel.Sel.Name] {
				pass.Reportf(call.Pos(),
					"rand.%s draws from the global math/rand source; inject a seeded *rand.Rand (rand.New(rand.NewSource(seed)))",
					sel.Sel.Name)
			}
		case "time":
			if sel.Sel.Name == "Now" {
				pass.Reportf(call.Pos(),
					"time.Now couples the simulation to the wall clock; pass an explicit timestamp or simulated time instead")
			}
		}
		return true
	})
	return nil
}

// selectedPackagePath returns the import path of the package a selector
// selects from, or "" when the selector base is not a package name (method
// calls on values stay anonymous here, which is what keeps *rand.Rand
// method calls legal).
func selectedPackagePath(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pkgName.Imported().Path()
}
