package lint_test

import (
	"testing"

	"qntn/internal/lint"
	"qntn/internal/lint/linttest"
)

func TestAtomicMix(t *testing.T) {
	linttest.RunModule(t, "testdata", lint.AtomicMix, "atomicmix")
}
