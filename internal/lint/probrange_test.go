package lint_test

import (
	"testing"

	"qntn/internal/lint"
	"qntn/internal/lint/linttest"
)

func TestProbRange(t *testing.T) {
	linttest.Run(t, "testdata", lint.ProbRange, "probrange/channel", "probrange/quantum", "probrange/stats")
}
