package lint_test

import (
	"strings"
	"testing"

	"qntn/internal/lint"
)

// FuzzParseDirective drives the //qntn: directive parser with arbitrary
// comment text and checks its invariants: it never panics, never reports
// both a parsed directive and an error, only yields known verbs, and
// ignores anything that is not unmistakably aimed at the tool.
func FuzzParseDirective(f *testing.F) {
	for _, seed := range []string{
		"//qntn:hotpath",
		"//qntn:hotpath one call per pair per step",
		"//qntn:coldpath amortized growth",
		"//qntn:hotpth typo",
		"//qntn:",
		"//qntn:hotpath\r",
		"//qntn:HOTPATH",
		"//qntn:hot path",
		"// qntn:hotpath",
		"/*qntn:hotpath*/",
		"//go:build linux",
		"//qntn:coldpath\targ after tab",
		"qntn:hotpath no slashes",
		"//qntn:cold\x00path",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		dir, ok, err := lint.ParseDirective(text)
		if ok && err != nil {
			t.Fatalf("ParseDirective(%q): both ok and err=%v", text, err)
		}
		if !ok && err == nil && dir != (lint.Directive{}) {
			t.Fatalf("ParseDirective(%q): non-directive returned %+v", text, dir)
		}
		if ok {
			if dir.Verb != "hotpath" && dir.Verb != "coldpath" {
				t.Fatalf("ParseDirective(%q): unknown verb %q accepted", text, dir.Verb)
			}
			if dir.Arg != strings.TrimSpace(dir.Arg) {
				t.Fatalf("ParseDirective(%q): arg %q not trimmed", text, dir.Arg)
			}
		}
		// Block comments and prose are never directives, with or without
		// an error.
		trimmed := strings.TrimPrefix(text, "//")
		if strings.HasPrefix(text, "/*") || !strings.HasPrefix(trimmed, "qntn:") {
			if ok || err != nil {
				t.Fatalf("ParseDirective(%q): non-directive got ok=%v err=%v", text, ok, err)
			}
		}
	})
}
