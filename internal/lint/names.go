package lint

import (
	"strings"
	"unicode"
)

// camelWords splits an identifier into lowercase words on camelCase (and
// snake_case) boundaries. Acronym runs stay together until a lowercase
// letter starts a new word: "RAANRad" -> ["raan", "rad"],
// "HAPLatDeg" -> ["hap", "lat", "deg"], "attenuationDBPerKm" ->
// ["attenuation", "db", "per", "km"]. Digits stay attached to the word they
// follow: "Eta1" -> ["eta1"].
func camelWords(name string) []string {
	var words []string
	runes := []rune(name)
	start := 0
	flush := func(end int) {
		if end > start {
			words = append(words, strings.ToLower(string(runes[start:end])))
		}
		start = end
	}
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		switch {
		case r == '_':
			flush(i)
			start = i + 1
		case unicode.IsUpper(r):
			if i > start && !unicode.IsUpper(runes[i-1]) {
				// lower/digit -> Upper: new word starts here.
				flush(i)
			} else if i > start && i+1 < len(runes) && unicode.IsLower(runes[i+1]) {
				// End of an acronym run: "RAANRad" splits before the 'R'
				// that begins "Rad".
				flush(i)
			}
		}
	}
	flush(len(runes))
	return words
}

// stripDigits removes trailing digits from a word ("eta1" -> "eta").
func stripDigits(w string) string {
	return strings.TrimRight(w, "0123456789")
}

// lastWord returns the final camel word of name, or "".
func lastWord(name string) string {
	words := camelWords(name)
	if len(words) == 0 {
		return ""
	}
	return words[len(words)-1]
}

// hasWord reports whether any camel word of name (with trailing digits
// stripped) is in set.
func hasWord(name string, set map[string]bool) bool {
	for _, w := range camelWords(name) {
		if set[stripDigits(w)] {
			return true
		}
	}
	return false
}
