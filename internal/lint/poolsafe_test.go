package lint_test

import (
	"testing"

	"qntn/internal/lint"
	"qntn/internal/lint/linttest"
)

func TestPoolSafe(t *testing.T) {
	linttest.RunModule(t, "testdata", lint.PoolSafe, "poolsafe")
}
