// Package hotallocbad carries deliberately broken qntn directives; the
// hotalloc analyzer must reject both (asserted directly, not via want
// comments, since the diagnostic lands on the directive's own line).
package hotallocbad

// Work is an ordinary function.
func Work() int {
	//qntn:hotpath misplaced: directives guard declarations, not statements
	n := 1
	return n
}

//qntn:hotpth typo in the verb
func Typo() {}
