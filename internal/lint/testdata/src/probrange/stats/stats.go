// Package stats is probrange testdata: the NaN-guard convention covers the
// descriptive-statistics helpers, where a NaN folded into an aggregate
// corrupts silently (no ordering holds, so mins stick at +Inf).
package stats

import "math"

// BadRMS feeds a parameter straight into math.Sqrt with no domain guard: a
// NaN or negative mean square propagates as NaN.
func BadRMS(meanSquare float64) float64 {
	return math.Sqrt(meanSquare) // want `math\.Sqrt on parameter "meanSquare" in BadRMS without a NaN guard`
}

// GoodRMS detects NaN and propagates it explicitly.
func GoodRMS(meanSquare float64) float64 {
	if math.IsNaN(meanSquare) || meanSquare < 0 {
		return math.NaN()
	}
	return math.Sqrt(meanSquare)
}

// BadGeoMean takes a log of an unguarded parameter.
func BadGeoMean(product float64, n int) float64 {
	return math.Exp(math.Log(product) / float64(n)) // want `math\.Log on parameter "product" in BadGeoMean without a NaN guard`
}

// sampleStd is unexported: callers inside the package own the domain.
func sampleStd(ss float64) float64 { return math.Sqrt(ss) }
