// Package channel is probrange testdata. BadLengthForEta mirrors the
// pre-cleanup internal/channel/fiber.go (math.Log10 of an unguarded
// parameter); GoodLengthForEta mirrors the fixed version.
package channel

import "math"

// BadLengthForEta inverts a transmissivity without guarding against NaN:
// a NaN eta slips past both comparisons and propagates.
func BadLengthForEta(eta float64) float64 {
	if eta <= 0 || eta > 1 {
		return math.Inf(1)
	}
	return -10 * math.Log10(eta) // want `math\.Log10 on parameter "eta" in BadLengthForEta without a NaN guard`
}

// GoodLengthForEta carries the explicit math.IsNaN guard.
func GoodLengthForEta(eta float64) float64 {
	if eta <= 0 || eta > 1 || math.IsNaN(eta) {
		return math.Inf(1)
	}
	return -10 * math.Log10(eta)
}

// BadWaist mirrors the pre-cleanup OptimalWaist: Sqrt of a parameter
// product with no domain guard.
func BadWaist(wavelengthM, rangeM float64) float64 {
	return math.Sqrt(wavelengthM * rangeM / math.Pi) // want `math\.Sqrt on parameter "wavelengthM" in BadWaist without a NaN guard`
}

// GoodWaist guards its domain first.
func GoodWaist(wavelengthM, rangeM float64) float64 {
	if wavelengthM <= 0 || rangeM <= 0 || math.IsNaN(wavelengthM) || math.IsNaN(rangeM) {
		return 0
	}
	return math.Sqrt(wavelengthM * rangeM / math.Pi)
}

// internalSqrt is unexported: callers inside the package own the domain.
func internalSqrt(x float64) float64 { return math.Sqrt(x) }

// Config exercises the literal range check on composite literals and
// assignments.
type Config struct {
	MinTransmissivity float64
	LossDB            float64
}

// BadConfig assigns out-of-range literals to probability-named values.
func BadConfig() Config {
	c := Config{
		MinTransmissivity: 1.4, // want `MinTransmissivity is a probability-like quantity; literal 1\.4 is outside \[0,1\]`
		LossDB:            3.5,
	}
	c.MinTransmissivity = -0.2 // want `MinTransmissivity is a probability-like quantity; literal -0\.2 is outside \[0,1\]`
	return c
}

// GoodConfig stays in range.
func GoodConfig() Config {
	return Config{MinTransmissivity: 0.7, LossDB: 3.5}
}

// DefaultFidelity returns a probability-like quantity; out-of-range
// literal returns are flagged.
func DefaultFidelity(ideal bool) float64 {
	if ideal {
		return 1
	}
	return 2.5 // want `DefaultFidelity returns a probability-like quantity; literal 2\.5 is outside \[0,1\]`
}
