// Package quantum is probrange testdata mirroring the clamp-style fixes in
// internal/quantum: a recognized clamp helper (or math.IsNaN) in the body
// marks the function as domain-aware.
package quantum

import "math"

// BadBellFidelity mirrors the pre-cleanup AnalyticBellFidelity: a manual
// if/else clamp that silently passes NaN through to math.Sqrt.
func BadBellFidelity(eta float64) float64 {
	if eta < 0 {
		eta = 0
	} else if eta > 1 {
		eta = 1
	}
	return (1 + math.Sqrt(eta)) / 2 // want `math\.Sqrt on parameter "eta" in BadBellFidelity without a NaN guard`
}

// GoodBellFidelity clamps through the package helper, which maps NaN into
// the domain as well.
func GoodBellFidelity(eta float64) float64 {
	eta = clamp01(eta)
	return (1 + math.Sqrt(eta)) / 2
}

// GoodDamping carries an explicit math.IsNaN rejection, the pattern the
// cleanup installed in AmplitudeDamping/PhaseDamping.
func GoodDamping(eta float64) (float64, bool) {
	if math.IsNaN(eta) || eta < 0 || eta > 1 {
		return 0, false
	}
	return math.Sqrt(1 - eta), true
}

func clamp01(x float64) float64 {
	if x < 0 || math.IsNaN(x) {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
