// Package mix exercises the atomicmix analyzer: fields and package
// variables touched both through sync/atomic and by plain load/store.
package mix

import "sync/atomic"

// Stats is a shared counter block.
type Stats struct {
	hits uint64
	miss uint64
}

// Hit records one hit atomically.
func (s *Stats) Hit() { atomic.AddUint64(&s.hits, 1) }

// Hits reads the hit count atomically.
func (s *Stats) Hits() uint64 { return atomic.LoadUint64(&s.hits) }

// Racy reads the atomically-updated counter without synchronization.
func (s *Stats) Racy() uint64 {
	return s.hits // want `hits is accessed atomically at .* but by plain load/store here`
}

// Miss tracks misses with plain accesses only — consistent, not flagged.
func (s *Stats) Miss() { s.miss++ }

// Misses reads the plain-only counter.
func (s *Stats) Misses() uint64 { return s.miss }

// ResetStats zeroes the counters with plain stores.
func ResetStats(s *Stats) {
	s.hits = 0 // want `hits is accessed atomically at .* but by plain load/store here`
	s.miss = 0
}

var total uint64

// Bump increments the package counter atomically.
func Bump() { atomic.AddUint64(&total, 1) }

// Total reads it without synchronization.
func Total() uint64 {
	return total // want `total is accessed atomically at .* but by plain load/store here`
}

// NewStats constructs a Stats; composite-literal keys are construction
// before publication, not shared access.
func NewStats() *Stats {
	return &Stats{hits: 0, miss: 0}
}
