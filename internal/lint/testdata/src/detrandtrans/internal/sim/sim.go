// Package sim is an internal simulation package calling into helpers that
// hide determinism sinks.
package sim

import (
	"time"

	"detrandtrans/util"
)

// Step mixes clean and tainted helper calls.
func Step() float64 {
	t := util.Clock()  // want `call to util\.Clock transitively couples the simulation to the wall clock \(time\.Now\(\) via util\.now\)`
	j := util.Jitter() // want `call to util\.Jitter transitively draws from the global math/rand source \(rand\.Float64 \(global math/rand source\) via util\.draw\)`
	r := util.Seeded(42)
	_ = t
	return j + util.Pure(r.Float64())
}

// Direct sinks keep their original single-frame diagnostics.
func Direct() time.Duration {
	return time.Since(time.Now()) // want `time\.Now couples the simulation to the wall clock`
}
