// Package util is a non-internal helper package whose functions hide
// determinism sinks behind call frames, exercising transitive fact
// propagation.
package util

import (
	"math/rand"
	"time"
)

// Clock reaches the wall clock two frames deep (Clock -> now -> time.Now).
func Clock() time.Time { return now() }

func now() time.Time { return time.Now() }

// Jitter reaches the global math/rand source through a helper.
func Jitter() float64 { return draw() }

func draw() float64 { return rand.Float64() }

// Seeded builds an injectable generator: deterministic, allowed.
func Seeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Pure is deterministic arithmetic.
func Pure(x float64) float64 { return x * 2 }
