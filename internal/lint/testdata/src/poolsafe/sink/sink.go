// Package sink provides helpers whose Retains facts the poolsafe fixtures
// exercise across the package boundary.
package sink

var kept any

// Keep retains its argument in a package variable.
func Keep(v any) { kept = v }

// Use inspects its argument without retaining it.
func Use(v any) int {
	if v == nil {
		return 0
	}
	return 1
}
