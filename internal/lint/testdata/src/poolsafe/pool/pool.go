// Package pool exercises the poolsafe analyzer: comma-ok discipline on
// Get, reset-before-use, escapes past the checkout, and pointer-shaped
// Put.
package pool

import (
	"sync"

	"poolsafe/sink"
)

// Obj is the pooled type: it carries per-step state and a Reset method.
type Obj struct {
	buf []byte
	n   int
}

// Reset clears the previous holder's state.
func (o *Obj) Reset() { o.buf = o.buf[:0]; o.n = 0 }

// Conn is a pooled type with the caller-must-Close handoff discipline.
type Conn struct{ n int }

// Reset clears the previous holder's state.
func (c *Conn) Reset() { c.n = 0 }

// Close hands the value back.
func (c *Conn) Close() {}

// Holder outlives a single checkout.
type Holder struct{ cur *Obj }

var pool = sync.Pool{New: func() any { return new(Obj) }}

var connPool sync.Pool

var global *Obj

// Good follows the full discipline: comma-ok Get, Reset, use, Put.
func Good() int {
	o, ok := pool.Get().(*Obj)
	if !ok {
		o = new(Obj)
	}
	o.Reset()
	n := o.n
	pool.Put(o)
	return n
}

// BadAssert asserts without the comma-ok form.
func BadAssert() {
	o := pool.Get().(*Obj) // want `sync\.Pool\.Get result asserted without the comma-ok form`
	o.Reset()
	pool.Put(o)
}

// BadUnchecked never asserts at all.
func BadUnchecked() {
	o := pool.Get() // want `sync\.Pool\.Get without a checked type assertion`
	_ = o
}

// BadNoReset uses the pooled value without clearing previous state.
func BadNoReset() int {
	o, ok := pool.Get().(*Obj) // want `pooled \*poolsafe/pool\.Obj is used without calling its Reset method`
	if !ok {
		return 0
	}
	n := o.n
	pool.Put(o)
	return n
}

// BadFieldStore lets the pooled value escape into a struct field.
func BadFieldStore(h *Holder) {
	o, ok := pool.Get().(*Obj)
	if !ok {
		return
	}
	o.Reset()
	h.cur = o // want `pooled value stored into a struct field`
	pool.Put(o)
}

// BadGlobal lets the pooled value escape into a package variable.
func BadGlobal() {
	o, ok := pool.Get().(*Obj)
	if !ok {
		return
	}
	o.Reset()
	global = o // want `pooled value stored into package-level variable global`
}

// BadReturn returns a pooled value whose type has no Close handoff.
func BadReturn() *Obj {
	o, ok := pool.Get().(*Obj)
	if !ok {
		return nil
	}
	o.Reset()
	return o // want `pooled value returned from BadReturn but \*poolsafe/pool\.Obj has no Close method`
}

// OkReturn hands a Close-capable pooled value to the caller.
func OkReturn() *Conn {
	c, ok := connPool.Get().(*Conn)
	if !ok {
		c = new(Conn)
	}
	c.Reset()
	return c
}

// BadRetain passes the pooled value to a helper whose facts say the
// argument is retained past the call.
func BadRetain() {
	o, ok := pool.Get().(*Obj)
	if !ok {
		return
	}
	o.Reset()
	sink.Keep(o) // want `pooled value passed to sink\.Keep, which may retain its argument past the call`
	pool.Put(o)
}

// OkUse passes the pooled value to a non-retaining helper.
func OkUse() {
	o, ok := pool.Get().(*Obj)
	if !ok {
		return
	}
	o.Reset()
	sink.Use(o)
	pool.Put(o)
}

// BadPut pools a value that boxes a copy on every Put.
func BadPut() {
	var buf [16]byte
	pool.Put(buf) // want `sync\.Pool\.Put of non-pointer-shaped \[16\]byte boxes a copy on every Put`
}
