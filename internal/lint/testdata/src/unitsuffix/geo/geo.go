// Package geo is unitsuffix testdata: the "bad" declarations mirror the
// unit-ambiguous shapes the analyzer exists to prevent; the "good" ones are
// the suffixed spellings the real internal/geo package uses.
package geo

// BadLook has exported float64 fields with angle/length names but no unit
// suffix.
type BadLook struct {
	Azimuth    float64 // want `exported float64 field Azimuth needs a unit suffix`
	Elevation  float64 // want `exported float64 field Elevation needs a unit suffix`
	SlantRange float64 // want `exported float64 field SlantRange needs a unit suffix`
}

// GoodLook is the fixed spelling.
type GoodLook struct {
	AzimuthRad   float64
	ElevationRad float64
	SlantRangeM  float64
}

// Dimensionless quantities carry no unit and need no suffix.
type Dimensionless struct {
	Eccentricity   float64
	Transmissivity float64
}

// BadHorizon takes unsuffixed angle/length parameters.
func BadHorizon(altitude, elevation float64) float64 { // want `parameter altitude of exported BadHorizon` `parameter elevation of exported BadHorizon`
	return altitude * elevation
}

// GoodHorizon is the fixed signature.
func GoodHorizon(altitudeM, elevationRad float64) float64 {
	return altitudeM * elevationRad
}

// unexported helpers may use short local names freely.
func slant(alt float64) float64 { return alt }

// PointAt converts; its parameter names carry the unit contract checked at
// call sites.
func PointAt(raanRad, altKm float64) float64 { return raanRad + altKm }

// CallSites exercises the cross-unit argument check.
func CallSites() float64 {
	var nodeRaanDeg float64 = 40
	var nodeRaanRad float64 = 0.7
	var siteAltM float64 = 500
	var siteAltKm float64 = 0.5
	a := PointAt(nodeRaanDeg, siteAltKm) // want `argument nodeRaanDeg \(unit deg\) passed to parameter raanRad \(unit rad\)`
	b := PointAt(nodeRaanRad, siteAltM)  // want `argument siteAltM \(unit m\) passed to parameter altKm \(unit km\)`
	c := PointAt(nodeRaanRad, siteAltKm)
	return a + b + c
}
