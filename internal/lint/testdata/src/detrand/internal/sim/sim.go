// Package sim is detrand testdata: an internal/ simulation package that
// must draw randomness from an injected seeded generator and take time as
// an argument.
package sim

import (
	"math/rand"
	"time"
)

// BadJitter draws from the global math/rand source — nondeterministic
// across runs and goroutine interleavings.
func BadJitter() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the global math/rand source`
}

// BadPick uses another global top-level function.
func BadPick(n int) int {
	return rand.Intn(n) // want `rand\.Intn draws from the global math/rand source`
}

// BadStamp couples the simulation to the wall clock.
func BadStamp() time.Duration {
	return time.Since(time.Now()) // want `time\.Now couples the simulation to the wall clock`
}

// GoodJitter is the injected-generator pattern used by
// internal/qntn/arrivals.go: constructing the seeded source is allowed, and
// method calls on the injected *rand.Rand are allowed.
func GoodJitter(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// GoodStamp takes simulated time explicitly.
func GoodStamp(now time.Duration) time.Duration {
	return now + time.Second
}
