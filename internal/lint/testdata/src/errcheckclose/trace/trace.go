// Package trace is errcheckclose testdata: movement-sheet-style writers
// whose Close/Flush/Write errors are the only evidence of a truncated
// file. BadExport mirrors the pre-cleanup cmd/constellation pattern
// (deferred Close on a writer); GoodExport mirrors the fix.
package trace

import (
	"encoding/csv"
	"os"
	"strings"
)

// BadExport drops writer errors twice: once on the deferred Close and once
// on a statement-position Write.
func BadExport(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()             // want `deferred f\.Close discards its error`
	f.Write([]byte("header\n")) // want `error from f\.Write is discarded`
	w := csv.NewWriter(f)
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	w.Flush() // csv.Writer.Flush returns no error; checked via w.Error()
	return w.Error()
}

// GoodExport closes explicitly on every path and returns the first error.
func GoodExport(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	var werr error
	for _, r := range rows {
		if werr = w.Write(r); werr != nil {
			break
		}
	}
	if werr == nil {
		w.Flush()
		werr = w.Error()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// Render uses a strings.Builder, whose WriteString is documented to never
// fail — exempt.
func Render(rows []string) string {
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(r)
		b.WriteString("\n")
	}
	return b.String()
}
