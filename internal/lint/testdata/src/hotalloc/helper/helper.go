// Package helper provides the callees the hotalloc fixtures reach through
// cross-package facts.
package helper

import "fmt"

// Grow allocates: append may grow the backing array.
func Grow(s []int, v int) []int { return append(s, v) }

// Sum is allocation-free.
func Sum(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}

// Format allocates through fmt.
func Format(v int) string { return fmt.Sprintf("%d", v) }
