// Package hot exercises the hotalloc analyzer: direct allocation sites,
// allocating helpers caught via facts, and the coldpath/error escape
// hatches.
package hot

import (
	"errors"
	"fmt"

	"hotalloc/helper"
)

// ErrNegative rejects negative inputs.
var ErrNegative = errors.New("negative")

// sink accepts anything, retaining nothing.
func sink(v any) { _ = v }

// Evaluate is the per-step fast path under test: one direct site, one
// allocating helper (caught via the facts engine), one clean helper.
//
//qntn:hotpath fixture fast path
func Evaluate(s []int, v int) int {
	s = append(s, v)      // want `append may grow its backing array in //qntn:hotpath function hot\.Evaluate`
	s = helper.Grow(s, v) // want `call from //qntn:hotpath function hot\.Evaluate to helper\.Grow, which allocates \(append may grow its backing array\)`
	return helper.Sum(s)
}

// Boxed passes a concrete value to an any parameter.
//
//qntn:hotpath
func Boxed(v int) {
	sink(v) // want `argument 1 boxes a concrete value into an interface in //qntn:hotpath function hot\.Boxed`
}

// Amortized grows a buffer under an acknowledged coldpath directive.
//
//qntn:hotpath
func Amortized(n int) []int {
	//qntn:coldpath one-time buffer growth is amortized across steps
	buf := make([]int, n)
	return buf
}

// Fail builds its error inside the return statement: the failure path is
// auto-exempt.
//
//qntn:hotpath
func Fail(n int) error {
	if n < 0 {
		return fmt.Errorf("bad n %d: %w", n, ErrNegative)
	}
	return nil
}

// Closure captures a local and therefore allocates.
//
//qntn:hotpath
func Closure(x int) func() int {
	y := x + 1
	f := func() int { return y } // want `closure captures y and allocates in //qntn:hotpath function hot\.Closure`
	return f
}
