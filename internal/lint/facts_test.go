package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"qntn/internal/lint"
)

// TestComputeFacts loads the multi-package fixture tree and checks the
// cross-package facts the analyzers consume: transitive wall-clock and
// global-rand reachability (with the call chain), allocation summaries,
// argument retention, and the hotpath flag.
func TestComputeFacts(t *testing.T) {
	pkgs, err := lint.LoadTree(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("load tree: %v", err)
	}
	fs := lint.ComputeFacts(pkgs)

	get := func(key string) *lint.FuncFact {
		t.Helper()
		f := fs.Lookup(key)
		if f == nil {
			t.Fatalf("no fact for %s", key)
		}
		return f
	}

	// Wall clock two frames deep: Clock -> now -> time.Now.
	clock := get("detrandtrans/util.Clock")
	if clock.WallClock == nil {
		t.Fatalf("util.Clock: want WallClock fact")
	}
	if d := clock.WallClock.Chain; len(d) != 1 || d[0] != "util.now" {
		t.Errorf("util.Clock chain = %v, want [util.now]", d)
	}
	if !strings.Contains(clock.WallClock.Pos.Filename, "util.go") {
		t.Errorf("util.Clock trace anchored at %s, want util.go", clock.WallClock.Pos.Filename)
	}

	// Global rand through a helper; seeded construction stays clean.
	if get("detrandtrans/util.Jitter").GlobalRand == nil {
		t.Errorf("util.Jitter: want GlobalRand fact")
	}
	if f := get("detrandtrans/util.Seeded"); f.GlobalRand != nil {
		t.Errorf("util.Seeded: unexpected GlobalRand fact (%s)", f.GlobalRand.What)
	}
	if f := get("detrandtrans/util.Pure"); f.WallClock != nil || f.GlobalRand != nil || f.Allocates != nil {
		t.Errorf("util.Pure: want no facts")
	}

	// Allocation summaries and the hotpath flag.
	if get("hotalloc/helper.Grow").Allocates == nil {
		t.Errorf("helper.Grow: want Allocates fact")
	}
	if f := get("hotalloc/helper.Sum"); f.Allocates != nil {
		t.Errorf("helper.Sum: unexpected Allocates fact (%s)", f.Allocates.What)
	}
	if get("hotalloc/helper.Format").Allocates == nil {
		t.Errorf("helper.Format: want Allocates fact via fmt.Sprintf")
	}
	if !get("hotalloc/hot.Evaluate").Hotpath {
		t.Errorf("hot.Evaluate: want Hotpath flag")
	}

	// Argument retention across the package boundary.
	if f := get("poolsafe/sink.Keep"); len(f.Retains) != 1 || !f.Retains[0] {
		t.Errorf("sink.Keep Retains = %v, want [true]", f.Retains)
	}
	if f := get("poolsafe/sink.Use"); len(f.Retains) != 1 || f.Retains[0] {
		t.Errorf("sink.Use Retains = %v, want [false]", f.Retains)
	}
}
