// Package linttest is an analysistest-style harness for the internal/lint
// analyzers: it loads a testdata package, runs one analyzer over it, and
// compares the diagnostics against `// want "regexp"` comments placed on
// the offending lines. Lines may carry several expectations; a diagnostic
// with no matching want — or a want with no matching diagnostic — fails
// the test.
package linttest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"qntn/internal/lint"
)

// expectation is one `// want` clause.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads each package directory under testdata/src and checks the
// analyzer's diagnostics against the package's want comments. pkgs are
// paths relative to testdata/src (for example "unitsuffix/geo"); they also
// become the package's import path, so analyzers that scope by path
// elements see the intended shape.
func Run(t *testing.T, testdata string, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	for _, rel := range pkgs {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(rel))
		pkg, err := lint.LoadDir(dir, rel)
		if err != nil {
			t.Fatalf("load %s: %v", rel, err)
		}
		diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a})
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, rel, err)
		}
		wants, err := collectWants(pkg)
		if err != nil {
			t.Fatalf("parse want comments in %s: %v", rel, err)
		}
		check(t, rel, diags, wants)
	}
}

// RunModule loads the whole directory tree rooted at testdata/src/<root> as
// a miniature module (import paths relative to testdata/src, so a package
// at testdata/src/hotalloc/helper imports as "hotalloc/helper"), computes
// cross-package facts over all of it, runs the analyzer on every package,
// and checks the combined diagnostics against the tree's want comments.
// This is the harness for analyzers whose findings depend on fact
// propagation across package boundaries.
func RunModule(t *testing.T, testdata string, a *lint.Analyzer, root string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	pkgs, err := lint.LoadTree(src)
	if err != nil {
		t.Fatalf("load tree %s: %v", src, err)
	}
	// Restrict analysis to packages under root; the rest of testdata/src
	// stays loaded for imports but reports nothing.
	var wants []*expectation
	var kept []*lint.Package
	for _, pkg := range pkgs {
		if pkg.Path != root && !strings.HasPrefix(pkg.Path, root+"/") {
			pkg.Target = false
			continue
		}
		kept = append(kept, pkg)
		w, err := collectWants(pkg)
		if err != nil {
			t.Fatalf("parse want comments in %s: %v", pkg.Path, err)
		}
		wants = append(wants, w...)
	}
	if len(kept) == 0 {
		t.Fatalf("no packages under %s in %s", root, src)
	}
	diags, err := lint.RunAnalyzers(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, root, err)
	}
	check(t, root, diags, wants)
}

// check matches diagnostics against expectations one-to-one by file+line.
func check(t *testing.T, pkg string, diags []lint.Diagnostic, wants []*expectation) {
	t.Helper()
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != filepath.Base(d.Position.Filename) || w.line != d.Position.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s",
				pkg, filepath.Base(d.Position.Filename), d.Position.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q",
				pkg, w.file, w.line, w.pattern)
		}
	}
}

// wantRE extracts the string literals of a want clause: double-quoted
// (backslash escapes allowed) or backquoted.
var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// collectWants scans every comment of the package for want clauses.
func collectWants(pkg *lint.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				exp, err := parseWant(pkg, c)
				if err != nil {
					return nil, err
				}
				wants = append(wants, exp...)
			}
		}
	}
	return wants, nil
}

func parseWant(pkg *lint.Package, c *ast.Comment) ([]*expectation, error) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, "want ") {
		return nil, nil
	}
	pos := pkg.Fset.Position(c.Pos())
	var wants []*expectation
	for _, lit := range wantRE.FindAllString(strings.TrimPrefix(text, "want "), -1) {
		pattern := lit[1 : len(lit)-1]
		if lit[0] == '"' {
			pattern = strings.NewReplacer(`\"`, `"`, `\\`, `\`).Replace(pattern)
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad want pattern %s: %w", pos.Filename, pos.Line, lit, err)
		}
		wants = append(wants, &expectation{
			file:    filepath.Base(pos.Filename),
			line:    pos.Line,
			pattern: re,
		})
	}
	if len(wants) == 0 {
		return nil, fmt.Errorf("%s:%d: want comment with no pattern", pos.Filename, pos.Line)
	}
	return wants, nil
}
