package lint

import "go/ast"

// HotAlloc enforces the zero-allocation invariant on the per-step fast
// path. A function whose doc comment carries //qntn:hotpath must contain no
// allocation sites — escaping composite literals, make of maps/chans/
// slices, growing append, capturing closures, interface boxing, fmt calls
// and string concatenation — and must not call an in-module helper whose
// cross-package facts say it allocates (unless that helper is itself
// hotpath-annotated, in which case it is checked at its own declaration).
//
// Two escape hatches keep the invariant honest rather than noisy:
// statements under //qntn:coldpath (amortized growth, pool-miss
// construction) are exempt, and error construction directly inside a
// return statement is auto-exempt — failure is not the hot path.
//
// The analyzer also owns the //qntn: directive namespace: malformed verbs
// and hotpath directives outside a function doc comment are reported here,
// so a typo fails the build instead of silently guarding nothing.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "functions marked //qntn:hotpath must not allocate, directly or " +
		"through helpers (per the cross-package facts engine)",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	dirs := pass.Facts.Directives(pass.Pkg.Path)
	if dirs == nil {
		return nil
	}
	for _, p := range dirs.problems {
		pass.Reportf(p.pos.Pos(), "%s", p.msg)
	}
	for decl := range dirs.hot {
		sum := pass.Facts.summary(decl)
		if sum == nil {
			continue // declaration without a body
		}
		name := shortFuncName(sum.fn)
		for _, site := range sum.sites {
			pass.Reportf(site.pos, "%s in //qntn:hotpath function %s", site.what, name)
		}
		for _, c := range sum.calls {
			if c.exempt {
				continue
			}
			cf := pass.Facts.ForFunc(c.fn)
			if cf == nil || cf.Allocates == nil || cf.Hotpath {
				// Outside the module, clean, or itself annotated (checked
				// at its own declaration — avoids cascading reports).
				continue
			}
			pass.Reportf(c.pos, "call from //qntn:hotpath function %s to %s, which allocates (%s)",
				name, shortFuncName(c.fn), cf.Allocates.describe())
		}
	}
	return nil
}

// declaredFuncs returns the function declarations of the package's files in
// source order (helper shared by analyzers that walk declarations).
func declaredFuncs(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				out = append(out, fn)
			}
		}
	}
	return out
}
