package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PoolSafe enforces the sync.Pool discipline the per-step evaluator caches
// rely on. Pooled objects are recycled across goroutines and steps, so
// every slip in the protocol is either a data race or a stale-state bug
// that only reproduces under contention:
//
//   - Get's result must go through a comma-ok type assertion — a bare
//     assertion panics the first time the pool is seeded with a different
//     type, and an unasserted interface value defeats the cache entirely.
//   - If the pooled type has a reset/init-style method, the function that
//     Gets the value must call it before use; pool.Get returns objects
//     still carrying the previous step's state.
//   - A pooled value must not escape its checkout: storing it into a
//     struct field, package variable, map, slice or channel — or passing
//     it to a helper whose facts say the argument is retained — lets it
//     outlive Put and be mutated concurrently by the next holder. Returns
//     are allowed only when the type has a Close method, the repo's
//     caller-must-Close handoff discipline.
//   - Put must receive a pointer-shaped value; putting structs or slices
//     boxes a copy on every Put, which is the allocation the pool existed
//     to avoid.
var PoolSafe = &Analyzer{
	Name: "poolsafe",
	Doc: "sync.Pool values must be type-checked on Get, reset before " +
		"reuse, must not escape their checkout, and must be pointer-shaped",
	Run: runPoolSafe,
}

// pooledVar is one checked-out pool value inside a function.
type pooledVar struct {
	obj types.Object
	typ types.Type // asserted type
	pos ast.Node
}

func runPoolSafe(pass *Pass) error {
	info := pass.Pkg.Info
	for _, decl := range declaredFuncs(pass.Pkg.Files) {
		checkPoolFunc(pass, info, decl)
	}
	return nil
}

func checkPoolFunc(pass *Pass, info *types.Info, decl *ast.FuncDecl) {
	// Pass 1: find checked Get assignments and record pooled variables.
	handled := make(map[*ast.CallExpr]bool)
	var pooled []pooledVar
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		ta, ok := ast.Unparen(as.Rhs[0]).(*ast.TypeAssertExpr)
		if !ok || ta.Type == nil {
			return true
		}
		call, ok := ast.Unparen(ta.X).(*ast.CallExpr)
		if !ok || !isPoolCall(info, call, "Get") {
			return true
		}
		handled[call] = true
		if len(as.Lhs) != 2 {
			pass.Reportf(as.Pos(),
				"sync.Pool.Get result asserted without the comma-ok form; a foreign value in the pool panics here")
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if tv, ok := info.Types[ta.Type]; ok && obj != nil {
			pooled = append(pooled, pooledVar{obj: obj, typ: tv.Type, pos: as})
		}
		return true
	})

	// Pass 2: every other Get is unchecked; every Put must be
	// pointer-shaped.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPoolCall(info, call, "Get") && !handled[call] {
			pass.Reportf(call.Pos(),
				"sync.Pool.Get without a checked type assertion (want `v, ok := pool.Get().(*T)`)")
		}
		if isPoolCall(info, call, "Put") && len(call.Args) == 1 {
			if t := exprType(info, call.Args[0]); t != nil && !pointerShaped(t) {
				pass.Reportf(call.Args[0].Pos(),
					"sync.Pool.Put of non-pointer-shaped %s boxes a copy on every Put; pool *T instead", t)
			}
		}
		return true
	})

	// Pass 3: per pooled variable, reset discipline and escapes.
	for _, pv := range pooled {
		checkPooledVar(pass, info, decl, pv)
	}
}

func checkPooledVar(pass *Pass, info *types.Info, decl *ast.FuncDecl, pv pooledVar) {
	isVar := func(expr ast.Expr) bool {
		id, ok := ast.Unparen(expr).(*ast.Ident)
		return ok && (info.Uses[id] == pv.obj || info.Defs[id] == pv.obj)
	}
	resetName, hasReset := resetMethod(pv.typ)
	hasClose := methodNamed(pv.typ, "Close")
	resetCalled := false

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if !isVar(rhs) {
					continue
				}
				switch lhs := ast.Unparen(n.Lhs[i]).(type) {
				case *ast.SelectorExpr:
					pass.Reportf(rhs.Pos(),
						"pooled value stored into a struct field; it escapes its checkout and will be mutated by the next Get")
				case *ast.IndexExpr:
					pass.Reportf(rhs.Pos(),
						"pooled value stored into a map or slice; it escapes its checkout")
				case *ast.Ident:
					if v, ok := info.Uses[lhs].(*types.Var); ok && v.Parent() == pass.Pkg.Types.Scope() {
						pass.Reportf(rhs.Pos(),
							"pooled value stored into package-level variable %s; it escapes its checkout", v.Name())
					}
				}
			}
		case *ast.SendStmt:
			if isVar(n.Value) {
				pass.Reportf(n.Value.Pos(), "pooled value sent on a channel; it escapes its checkout")
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isVar(r) && !hasClose {
					pass.Reportf(r.Pos(),
						"pooled value returned from %s but %s has no Close method to hand it back to the pool",
						decl.Name.Name, types.TypeString(pv.typ, nil))
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && isVar(sel.X) {
				if low := strings.ToLower(sel.Sel.Name); low == "reset" || low == "init" {
					resetCalled = true
				}
				return true
			}
			if isPoolCall(info, n, "Put") {
				return true // handing the value back is the point
			}
			fn := staticCallee(info, n)
			if fn == nil {
				return true
			}
			fact := pass.Facts.ForFunc(fn)
			if fact == nil {
				return true
			}
			for i, arg := range n.Args {
				if isVar(arg) && i < len(fact.Retains) && fact.Retains[i] {
					pass.Reportf(arg.Pos(),
						"pooled value passed to %s, which may retain its argument past the call",
						shortFuncName(fn))
				}
			}
		}
		return true
	})

	if hasReset && !resetCalled {
		pass.Reportf(pv.pos.Pos(),
			"pooled %s is used without calling its %s method; pool.Get returns values carrying previous state",
			types.TypeString(pv.typ, nil), resetName)
	}
}

// isPoolCall reports whether call invokes (*sync.Pool).<method>.
func isPoolCall(info *types.Info, call *ast.CallExpr, method string) bool {
	fn := staticCallee(info, call)
	return fn != nil && fn.FullName() == "(*sync.Pool)."+method
}

// exprType returns the type of expr, nil when unknown.
func exprType(info *types.Info, expr ast.Expr) types.Type {
	tv, ok := info.Types[ast.Unparen(expr)]
	if !ok {
		return nil
	}
	return tv.Type
}

// pointerShaped reports whether values of t fit in an interface word
// without boxing a copy.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// resetMethod returns the name of t's reset/init-style method, if any.
func resetMethod(t types.Type) (string, bool) {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		name := ms.At(i).Obj().Name()
		low := strings.ToLower(name)
		if low == "reset" || low == "init" {
			return name, true
		}
	}
	return "", false
}

// methodNamed reports whether t's method set contains the given name.
func methodNamed(t types.Type, name string) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}
