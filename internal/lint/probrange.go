package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// probWords are the camel words that mark a value as a probability-like
// quantity constrained to [0,1].
var probWords = map[string]bool{
	"fidelity": true, "transmissivity": true, "probability": true,
	"prob": true, "eta": true,
}

// probExcludeWords veto the classification: a "...Percent" value lives in
// [0,100] and a "...DB" value is logarithmic.
var probExcludeWords = map[string]bool{"percent": true, "db": true}

// nanGuardPackages are the numeric hot-path packages (matched on the final
// import-path element) where Sqrt/Log results must be NaN-guarded. stats
// joined the list when Summarize/Percentile learned to propagate NaN
// explicitly instead of corrupting silently; protocol joined with the
// scalar entanglement-protocol layer, whose Werner compositions run once
// per served request.
var nanGuardPackages = map[string]bool{
	"channel": true, "quantum": true, "stats": true, "protocol": true,
}

// nanSources are the math functions whose result is NaN for out-of-domain
// inputs.
var nanSources = map[string]bool{
	"Sqrt": true, "Log": true, "Log2": true, "Log10": true, "Log1p": true,
	"Asin": true, "Acos": true,
}

// nanGuards are the calls whose presence in a function body marks it as
// domain-aware: explicit NaN/Inf checks and the clamping helpers used
// throughout internal/quantum. The x != x idiom is deliberately not
// recognized — the lint's position is that math.IsNaN is the readable
// spelling.
var nanGuardFuncs = map[string]bool{
	"IsNaN": true, "IsInf": true, "Max": true, "Min": true, "Abs": true,
	"clamp01": true, "clamp": true, "Clamp": true, "Clamp01": true,
}

// ProbRange enforces the [0,1] invariant on probability-named values two
// ways: literal assignments/returns outside the interval are flagged
// everywhere, and in internal/channel + internal/quantum, exported
// functions that feed a float64 parameter into math.Sqrt/math.Log* must
// carry a NaN guard (math.IsNaN/math.IsInf) or clamp the input.
var ProbRange = &Analyzer{
	Name: "probrange",
	Doc: "probability/fidelity/transmissivity values must stay in [0,1]; " +
		"Sqrt/Log hot paths need math.IsNaN guards or clamps",
	Run: runProbRange,
}

func runProbRange(pass *Pass) error {
	checkProbLiterals(pass)
	if nanGuardPackages[pass.Pkg.lastPathElement()] {
		checkNaNGuards(pass)
	}
	return nil
}

// isProbName reports whether name denotes a [0,1] quantity.
func isProbName(name string) bool {
	if hasWord(name, probExcludeWords) {
		return false
	}
	return hasWord(name, probWords)
}

// literalFloat extracts the value of a numeric literal, handling a leading
// unary minus. ok is false for any non-literal expression.
func literalFloat(e ast.Expr) (v float64, ok bool) {
	neg := false
	if u, isUnary := e.(*ast.UnaryExpr); isUnary {
		switch u.Op {
		case token.SUB:
			neg, e = true, u.X
		case token.ADD:
			e = u.X
		default:
			return 0, false
		}
	}
	lit, isLit := e.(*ast.BasicLit)
	if !isLit || (lit.Kind != token.INT && lit.Kind != token.FLOAT) {
		return 0, false
	}
	f, err := strconv.ParseFloat(strings.ReplaceAll(lit.Value, "_", ""), 64)
	if err != nil {
		return 0, false
	}
	if neg {
		f = -f
	}
	return f, true
}

func checkProbLiterals(pass *Pass) {
	reportOutOfRange := func(pos token.Pos, name string, v float64) {
		if v < 0 || v > 1 {
			pass.Reportf(pos, "%s is a probability-like quantity; literal %g is outside [0,1]", name, v)
		}
	}
	inspectFiles(pass.Pkg.Files, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				name := exprName(lhs)
				if name == "" || !isProbName(name) {
					continue
				}
				if v, ok := literalFloat(n.Rhs[i]); ok {
					reportOutOfRange(n.Rhs[i].Pos(), name, v)
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if i >= len(n.Values) || !isProbName(id.Name) {
					continue
				}
				if v, ok := literalFloat(n.Values[i]); ok {
					reportOutOfRange(n.Values[i].Pos(), id.Name, v)
				}
			}
		case *ast.KeyValueExpr:
			key, ok := n.Key.(*ast.Ident)
			if !ok || !isProbName(key.Name) {
				return true
			}
			if v, ok := literalFloat(n.Value); ok {
				reportOutOfRange(n.Value.Pos(), key.Name, v)
			}
		case *ast.FuncDecl:
			checkProbReturns(pass, n)
		}
		return true
	})
}

// checkProbReturns flags out-of-range literal returns from functions whose
// name marks the result as a probability.
func checkProbReturns(pass *Pass, fn *ast.FuncDecl) {
	if fn.Body == nil || !isProbName(fn.Name.Name) {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested closures name their own contracts
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if v, ok := literalFloat(res); ok && (v < 0 || v > 1) {
				pass.Reportf(res.Pos(),
					"%s returns a probability-like quantity; literal %g is outside [0,1]",
					fn.Name.Name, v)
			}
		}
		return true
	})
}

func checkNaNGuards(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			params := float64Params(info, fn)
			if len(params) == 0 {
				continue
			}
			if bodyHasNaNGuard(info, fn.Body) {
				continue
			}
			reportUnguardedNaNSources(pass, fn, params)
		}
	}
}

// float64Params collects the types.Object of every float64 parameter.
func float64Params(info *types.Info, fn *ast.FuncDecl) map[types.Object]string {
	params := make(map[types.Object]string)
	if fn.Type.Params == nil {
		return params
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; isFloat64(obj) {
				params[obj] = name.Name
			}
		}
	}
	return params
}

// bodyHasNaNGuard reports whether the function body contains any
// recognized guard call (math.IsNaN, math.IsInf, math.Max/Min/Abs, or a
// clamp helper).
func bodyHasNaNGuard(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if selectedPackagePath(info, fun) == "math" && nanGuardFuncs[fun.Sel.Name] {
				found = true
			}
		case *ast.Ident:
			if nanGuardFuncs[fun.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}

// reportUnguardedNaNSources flags math.Sqrt/math.Log* calls whose argument
// mentions a float64 parameter of the enclosing unguarded function.
func reportUnguardedNaNSources(pass *Pass, fn *ast.FuncDecl, params map[types.Object]string) {
	info := pass.Pkg.Info
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || selectedPackagePath(info, sel) != "math" || !nanSources[sel.Sel.Name] {
			return true
		}
		for _, arg := range call.Args {
			if param := mentionsParam(info, arg, params); param != "" {
				pass.Reportf(call.Pos(),
					"math.%s on parameter %q in %s without a NaN guard: add math.IsNaN/math.IsInf checks or clamp the input",
					sel.Sel.Name, param, fn.Name.Name)
				return true
			}
		}
		return true
	})
}

// mentionsParam returns the name of the first function parameter referenced
// inside expr, or "".
func mentionsParam(info *types.Info, expr ast.Expr, params map[types.Object]string) string {
	name := ""
	ast.Inspect(expr, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if pname, isParam := params[info.Uses[id]]; isParam {
			name = pname
		}
		return true
	})
	return name
}
