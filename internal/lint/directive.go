package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// Directive is one //qntn:<verb> machine directive. Like Go's own //go:
// directives, a qntn directive is a line comment whose text starts exactly
// with "//qntn:" — no space after the slashes — so ordinary prose that
// happens to mention qntn is never misread as an instruction.
//
// Verbs:
//
//   - hotpath: placed in a function's doc comment, it declares the function
//     part of the per-step fast path. The hotalloc analyzer then rejects
//     every allocation site in its body and every call into a helper whose
//     computed facts say it allocates.
//   - coldpath: placed on (or on the line above) a statement inside a
//     hotpath function, it acknowledges an amortized or failure-only
//     allocation — one-time buffer growth, pool-miss construction, error
//     branches — and exempts that statement from hotalloc.
//
// Anything after the verb is a free-text rationale and is kept verbatim.
type Directive struct {
	Verb string
	Arg  string
}

// directiveVerbs are the recognized qntn directive verbs.
var directiveVerbs = map[string]bool{
	"hotpath":  true,
	"coldpath": true,
}

// ParseDirective parses one comment's raw text (with or without the leading
// "//"). The second result reports whether the comment is a qntn directive
// at all; non-directives (including "// qntn:..." with a space, block
// comments, and other //tool: directives such as //go:build) return
// (Directive{}, false, nil). A comment that is unmistakably aimed at this
// tool but malformed — empty verb, unknown verb, or junk glued to the verb —
// returns an error so typos fail loudly instead of silently disabling a
// check.
func ParseDirective(text string) (Directive, bool, error) {
	if strings.HasPrefix(text, "/*") {
		return Directive{}, false, nil
	}
	text = strings.TrimPrefix(text, "//")
	if !strings.HasPrefix(text, "qntn:") {
		return Directive{}, false, nil
	}
	rest := strings.TrimPrefix(text, "qntn:")
	verb := rest
	arg := ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		verb, arg = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	verb = strings.TrimRight(verb, "\r")
	if verb == "" {
		return Directive{}, false, fmt.Errorf("qntn directive with no verb")
	}
	for _, r := range verb {
		if r < 'a' || r > 'z' {
			return Directive{}, false, fmt.Errorf("malformed qntn directive verb %q", verb)
		}
	}
	if !directiveVerbs[verb] {
		return Directive{}, false, fmt.Errorf("unknown qntn directive %q (known: hotpath, coldpath)", verb)
	}
	return Directive{Verb: verb, Arg: arg}, true, nil
}

// coldLines maps filename -> set of line numbers carrying a coldpath
// directive. A statement is coldpath-exempt when a directive sits on its
// first line or on the line immediately above it (see exemptLine).
type coldLines map[string]map[int]bool

// exempt reports whether a node or statement starting at the given
// file:line is covered by a coldpath directive.
func (c coldLines) exempt(file string, line int) bool {
	lines := c[file]
	return lines[line] || lines[line-1]
}

// directiveProblem is a malformed or misplaced directive, reported by the
// hotalloc analyzer (which owns the directive namespace).
type directiveProblem struct {
	pos ast.Node
	msg string
}

// pkgDirectives is the parsed directive state of one package.
type pkgDirectives struct {
	// hot maps each //qntn:hotpath-annotated function declaration to its
	// directive.
	hot map[*ast.FuncDecl]Directive
	// cold holds the coldpath directive lines per file.
	cold coldLines
	// problems are malformed or misplaced directives.
	problems []directiveProblem
}

// collectDirectives parses every qntn directive in the package. hotpath
// directives must live in a function's doc comment; a hotpath found
// anywhere else is a problem (it would otherwise silently guard nothing).
func collectDirectives(pkg *Package) *pkgDirectives {
	d := &pkgDirectives{
		hot:  make(map[*ast.FuncDecl]Directive),
		cold: make(coldLines),
	}
	for _, file := range pkg.Files {
		// Map doc-comment groups to their function declarations so hotpath
		// placement can be validated.
		docOf := make(map[*ast.CommentGroup]*ast.FuncDecl)
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Doc != nil {
				docOf[fn.Doc] = fn
			}
		}
		for _, group := range file.Comments {
			for _, c := range group.List {
				dir, ok, err := ParseDirective(c.Text)
				if err != nil {
					d.problems = append(d.problems, directiveProblem{pos: c, msg: err.Error()})
					continue
				}
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				switch dir.Verb {
				case "hotpath":
					fn, attached := docOf[group]
					if !attached {
						d.problems = append(d.problems, directiveProblem{
							pos: c,
							msg: "//qntn:hotpath must appear in a function's doc comment",
						})
						continue
					}
					d.hot[fn] = dir
				case "coldpath":
					lines := d.cold[pos.Filename]
					if lines == nil {
						lines = make(map[int]bool)
						d.cold[pos.Filename] = lines
					}
					lines[pos.Line] = true
				}
			}
		}
	}
	return d
}
