package quantum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAmplitudeDampingKrausMatchEq3(t *testing.T) {
	eta := 0.49
	ch, err := AmplitudeDamping(eta)
	if err != nil {
		t.Fatal(err)
	}
	k0, k1 := ch.Kraus[0], ch.Kraus[1]
	if k0.At(0, 0) != 1 || !almostEq(real(k0.At(1, 1)), math.Sqrt(eta), 1e-15) {
		t.Fatalf("K0 wrong: %v", k0)
	}
	if !almostEq(real(k1.At(0, 1)), math.Sqrt(1-eta), 1e-15) || k1.At(1, 0) != 0 {
		t.Fatalf("K1 wrong: %v", k1)
	}
}

func TestAmplitudeDampingRange(t *testing.T) {
	for _, eta := range []float64{-0.1, 1.1, math.Inf(1)} {
		if _, err := AmplitudeDamping(eta); err == nil {
			t.Errorf("expected error for eta=%v", eta)
		}
	}
}

func TestAmplitudeDampingTracePreserving(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eta := rng.Float64()
		ch, err := AmplitudeDamping(eta)
		if err != nil {
			return false
		}
		if !ch.IsTracePreserving(1e-12) {
			return false
		}
		rho := randomDensity(rng, 1)
		out := ch.Apply(rho)
		return almostEq(real(out.Trace()), 1, 1e-10) && out.IsHermitian(1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAmplitudeDampingGroundStateFixed(t *testing.T) {
	// |0><0| is a fixed point of amplitude damping for any eta.
	ground := Basis(2, 0).Density()
	for _, eta := range []float64{0, 0.3, 1} {
		ch, err := AmplitudeDamping(eta)
		if err != nil {
			t.Fatal(err)
		}
		if ch.Apply(ground).MaxAbsDiff(ground) > 1e-12 {
			t.Errorf("|0> not fixed for eta=%g", eta)
		}
	}
}

func TestAmplitudeDampingExcitedDecay(t *testing.T) {
	// |1><1| decays to eta|1><1| + (1-eta)|0><0|.
	excited := Basis(2, 1).Density()
	eta := 0.6
	ch, err := AmplitudeDamping(eta)
	if err != nil {
		t.Fatal(err)
	}
	out := ch.Apply(excited)
	if !almostEq(real(out.At(0, 0)), 1-eta, 1e-12) || !almostEq(real(out.At(1, 1)), eta, 1e-12) {
		t.Fatalf("excited state decay wrong: %v", out)
	}
}

func TestComposeAmplitudeDamping(t *testing.T) {
	// AD(eta2) ∘ AD(eta1) = AD(eta1*eta2): losses multiply along a path.
	eta1, eta2 := 0.8, 0.9
	ad1, _ := AmplitudeDamping(eta1)
	ad2, _ := AmplitudeDamping(eta2)
	composed := Compose(ad1, ad2)
	direct, _ := AmplitudeDamping(eta1 * eta2)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		rho := randomDensity(rng, 1)
		a := composed.Apply(rho)
		b := direct.Apply(rho)
		if a.MaxAbsDiff(b) > 1e-12 {
			t.Fatalf("composition != product transmissivity, diff %g", a.MaxAbsDiff(b))
		}
	}
	if !composed.IsTracePreserving(1e-12) {
		t.Fatal("composed channel not trace preserving")
	}
}

func TestOnQubitActsOnCorrectQubit(t *testing.T) {
	// Damping qubit 1 of |11> leaves qubit 0 excited.
	state := Basis(2, 1).Tensor(Basis(2, 1)).Density() // |11>
	ch, _ := AmplitudeDamping(0)                       // full damping
	out := ch.OnQubit(1, 2).Apply(state)
	want := Basis(2, 1).Tensor(Basis(2, 0)).Density() // |10>
	if out.MaxAbsDiff(want) > 1e-12 {
		t.Fatalf("OnQubit(1) result wrong:\n%v", out)
	}
	out0 := ch.OnQubit(0, 2).Apply(state)
	want0 := Basis(2, 0).Tensor(Basis(2, 1)).Density() // |01>
	if out0.MaxAbsDiff(want0) > 1e-12 {
		t.Fatalf("OnQubit(0) result wrong:\n%v", out0)
	}
}

func TestOnQubitTracePreserving(t *testing.T) {
	ch, _ := AmplitudeDamping(0.42)
	for n := 2; n <= 4; n++ {
		for q := 0; q < n; q++ {
			if !ch.OnQubit(q, n).IsTracePreserving(1e-10) {
				t.Errorf("lifted channel (qubit %d of %d) not trace preserving", q, n)
			}
		}
	}
}

func TestIdentityChannelNoOp(t *testing.T) {
	ch, _ := AmplitudeDamping(1)
	rng := rand.New(rand.NewSource(31))
	rho := randomDensity(rng, 1)
	if ch.Apply(rho).MaxAbsDiff(rho) > 1e-12 {
		t.Fatal("eta=1 damping should be the identity channel")
	}
}

func TestDampBellArmRequiresTwoQubits(t *testing.T) {
	if _, err := DampBellArm(Identity(2), 0.5); err == nil {
		t.Fatal("expected dimension error")
	}
}
