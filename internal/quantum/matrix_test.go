package quantum

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestIdentityMul(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		id := Identity(n)
		m := randomMatrix(rand.New(rand.NewSource(int64(n))), n)
		if got := id.Mul(m); got.MaxAbsDiff(m) > 1e-12 {
			t.Errorf("I*M != M for n=%d (diff %g)", n, got.MaxAbsDiff(m))
		}
		if got := m.Mul(id); got.MaxAbsDiff(m) > 1e-12 {
			t.Errorf("M*I != M for n=%d", n)
		}
	}
}

func TestMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		a := randomMatrix(rng, 4)
		b := randomMatrix(rng, 4)
		c := randomMatrix(rng, 4)
		left := a.Mul(b).Mul(c)
		right := a.Mul(b.Mul(c))
		if left.MaxAbsDiff(right) > 1e-10 {
			t.Fatalf("(AB)C != A(BC), diff %g", left.MaxAbsDiff(right))
		}
	}
}

func TestDaggerInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randomMatrix(rng, 5)
	if m.Dagger().Dagger().MaxAbsDiff(m) > 1e-14 {
		t.Fatal("dagger is not an involution")
	}
}

func TestDaggerReversesProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomMatrix(rng, 4)
	b := randomMatrix(rng, 4)
	lhs := a.Mul(b).Dagger()
	rhs := b.Dagger().Mul(a.Dagger())
	if lhs.MaxAbsDiff(rhs) > 1e-10 {
		t.Fatalf("(AB)† != B†A†, diff %g", lhs.MaxAbsDiff(rhs))
	}
}

func TestTraceLinearCyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randomMatrix(rng, 4)
	b := randomMatrix(rng, 4)
	tab := a.Mul(b).Trace()
	tba := b.Mul(a).Trace()
	if cmplx.Abs(tab-tba) > 1e-10 {
		t.Fatalf("Tr(AB) != Tr(BA): %v vs %v", tab, tba)
	}
}

func TestTensorDimensionsAndTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := randomMatrix(rng, 2)
	b := randomMatrix(rng, 3)
	ab := a.Tensor(b)
	if ab.N != 6 {
		t.Fatalf("tensor dim = %d, want 6", ab.N)
	}
	// Tr(A⊗B) = Tr(A)Tr(B)
	want := a.Trace() * b.Trace()
	if cmplx.Abs(ab.Trace()-want) > 1e-10 {
		t.Fatalf("Tr(A⊗B) = %v, want %v", ab.Trace(), want)
	}
}

func TestTensorMixedProduct(t *testing.T) {
	// (A⊗B)(C⊗D) = (AC)⊗(BD)
	rng := rand.New(rand.NewSource(23))
	a, b, c, d := randomMatrix(rng, 2), randomMatrix(rng, 2), randomMatrix(rng, 2), randomMatrix(rng, 2)
	lhs := a.Tensor(b).Mul(c.Tensor(d))
	rhs := a.Mul(c).Tensor(b.Mul(d))
	if lhs.MaxAbsDiff(rhs) > 1e-10 {
		t.Fatalf("mixed-product property fails, diff %g", lhs.MaxAbsDiff(rhs))
	}
}

func TestInsertBit(t *testing.T) {
	cases := []struct {
		x, pos, b, want int
	}{
		{0, 0, 0, 0},
		{0, 0, 1, 1},
		{1, 0, 0, 2}, // 1 -> 10
		{1, 0, 1, 3}, // 1 -> 11
		{0b101, 1, 1, 0b1011},
		{0b101, 2, 0, 0b1001},
		{0b11, 2, 1, 0b111},
	}
	for _, c := range cases {
		if got := insertBit(c.x, c.pos, c.b); got != c.want {
			t.Errorf("insertBit(%b,%d,%d) = %b, want %b", c.x, c.pos, c.b, got, c.want)
		}
	}
}

func TestPartialTraceProductState(t *testing.T) {
	// For rho = rhoA ⊗ rhoB, tracing out either qubit must recover the
	// other factor.
	rng := rand.New(rand.NewSource(29))
	rhoA := randomDensity(rng, 1)
	rhoB := randomDensity(rng, 1)
	joint := rhoA.Tensor(rhoB)
	gotB := PartialTrace(joint, 0, 2) // trace out qubit 0 (A)
	if gotB.MaxAbsDiff(rhoB) > 1e-10 {
		t.Fatalf("Tr_A(A⊗B) != B, diff %g", gotB.MaxAbsDiff(rhoB))
	}
	gotA := PartialTrace(joint, 1, 2) // trace out qubit 1 (B)
	if gotA.MaxAbsDiff(rhoA) > 1e-10 {
		t.Fatalf("Tr_B(A⊗B) != A, diff %g", gotA.MaxAbsDiff(rhoA))
	}
}

func TestPartialTraceBellGivesMaximallyMixed(t *testing.T) {
	rho := PhiPlus().Density()
	for q := 0; q < 2; q++ {
		red := PartialTrace(rho, q, 2)
		want := Identity(2).Scale(0.5)
		if red.MaxAbsDiff(want) > 1e-12 {
			t.Errorf("reduced Bell state (trace qubit %d) is not I/2", q)
		}
	}
}

func TestPartialTracePreservesTrace(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rho := randomDensity(rng, 3)
		for q := 0; q < 3; q++ {
			red := PartialTrace(rho, q, 3)
			if !almostEq(real(red.Trace()), 1, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]complex128{{1, 2}, {3}})
}

// randomMatrix returns an n x n matrix with entries uniform in the unit
// square of the complex plane.
func randomMatrix(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n)
	for i := range m.Data {
		m.Data[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return m
}

// randomHermitian returns a random Hermitian n x n matrix.
func randomHermitian(rng *rand.Rand, n int) *Matrix {
	m := randomMatrix(rng, n)
	return m.Add(m.Dagger()).Scale(0.5)
}

// randomDensity returns a random density matrix on nQubits qubits (PSD,
// unit trace) built as G G† / Tr(G G†).
func randomDensity(rng *rand.Rand, nQubits int) *Matrix {
	n := 1 << nQubits
	g := randomMatrix(rng, n)
	rho := g.Mul(g.Dagger())
	tr := real(rho.Trace())
	return rho.Scale(complex(1/tr, 0))
}
