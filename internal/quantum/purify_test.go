package quantum

import (
	"math"
	"testing"
)

func TestPurifyImprovesDampedPairs(t *testing.T) {
	// BBPSSW on two identical amplitude-damped pairs must raise fidelity
	// across the paper-relevant transmissivity range.
	for _, eta := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95} {
		in, err := DistributeBellPair(eta)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Purify(in, in, BBPSSW)
		if err != nil {
			t.Fatal(err)
		}
		if res.FidelityAfter <= res.FidelityBefore {
			t.Errorf("eta=%g: BBPSSW did not improve fidelity (%g -> %g)", eta, res.FidelityBefore, res.FidelityAfter)
		}
		if res.SuccessProbability <= 0 || res.SuccessProbability > 1 {
			t.Errorf("eta=%g: success probability %g", eta, res.SuccessProbability)
		}
		// Output must be a valid 2-qubit density matrix.
		if res.State.N != 4 {
			t.Fatalf("output dim %d", res.State.N)
		}
		if tr := real(res.State.Trace()); math.Abs(tr-1) > 1e-9 {
			t.Errorf("eta=%g: output trace %g", eta, tr)
		}
		if !res.State.IsHermitian(1e-9) {
			t.Errorf("eta=%g: output not Hermitian", eta)
		}
	}
}

func TestPurifyKnownAnchor(t *testing.T) {
	// Empirically pinned regression anchor: eta=0.7, BBPSSW takes
	// F=0.9183 to ≈0.9771 with success probability ≈0.745.
	in, err := DistributeBellPair(0.7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Purify(in, in, BBPSSW)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FidelityAfter-0.9771) > 0.001 {
		t.Fatalf("fidelity after %g, want ≈0.9771", res.FidelityAfter)
	}
	if math.Abs(res.SuccessProbability-0.745) > 0.005 {
		t.Fatalf("success probability %g, want ≈0.745", res.SuccessProbability)
	}
}

func TestPurifyWernerBothSchemesAgree(t *testing.T) {
	// For Werner (Bell-diagonal) inputs the DEJMPS rotations are a basis
	// permutation: both schemes give the same fidelity gain.
	w := WernerState(0.8)
	b1, err := Purify(w, w, BBPSSW)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Purify(w, w, DEJMPS)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b1.FidelityAfter-b2.FidelityAfter) > 1e-9 {
		t.Fatalf("scheme mismatch on Werner input: %g vs %g", b1.FidelityAfter, b2.FidelityAfter)
	}
	if b1.FidelityAfter <= b1.FidelityBefore {
		t.Fatal("Werner purification did not improve fidelity")
	}
	// Closed-form check: Werner p=0.8 has Bell-state weight
	// W = p + (1-p)/4 = 0.85; BBPSSW success and output follow the
	// standard recurrence formula for Werner states.
	wgt := 0.85
	pSuccess := wgt*wgt + 2*wgt*(1-wgt)/3 + 5*(1-wgt)*(1-wgt)/9
	if math.Abs(b1.SuccessProbability-pSuccess) > 1e-9 {
		t.Fatalf("Werner success probability %g, closed form %g", b1.SuccessProbability, pSuccess)
	}
	fOut := (wgt*wgt + (1-wgt)*(1-wgt)/9) / pSuccess
	if math.Abs(b1.FidelityAfter*b1.FidelityAfter-fOut) > 1e-9 {
		t.Fatalf("Werner output weight %g, closed form %g", b1.FidelityAfter*b1.FidelityAfter, fOut)
	}
}

func TestPurifyPerfectInputIsFixedPoint(t *testing.T) {
	ideal := PhiPlus().Density()
	res, err := Purify(ideal, ideal, BBPSSW)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FidelityAfter-1) > 1e-9 {
		t.Fatalf("purifying perfect pairs gave %g", res.FidelityAfter)
	}
	if math.Abs(res.SuccessProbability-1) > 1e-9 {
		t.Fatalf("perfect input success probability %g", res.SuccessProbability)
	}
}

func TestPurifyRejectsWrongDims(t *testing.T) {
	if _, err := Purify(Identity(2), Identity(4), BBPSSW); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestPurifyLadderMonotone(t *testing.T) {
	in, err := DistributeBellPair(0.7)
	if err != nil {
		t.Fatal(err)
	}
	results, err := PurifyLadder(in, 3, BBPSSW)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d rounds", len(results))
	}
	// Entanglement pumping (fresh sacrificial pair of fixed fidelity each
	// round) improves quickly and then saturates at a fixed point below 1
	// — assert the first round improves, and that no round falls back
	// below the original input fidelity.
	base := BellFidelity(in)
	if results[0].FidelityAfter <= base {
		t.Fatalf("first round did not improve: %g -> %g", base, results[0].FidelityAfter)
	}
	for i, r := range results {
		if r.FidelityAfter < base {
			t.Fatalf("round %d fell below the input fidelity: %g < %g", i+1, r.FidelityAfter, base)
		}
	}
	if final := results[len(results)-1].FidelityAfter; final < 0.98 {
		t.Fatalf("pumping fixed point %g, expected ≥0.98 for eta=0.7 inputs", final)
	}
}

func TestPurifyLadderRejectsZeroRounds(t *testing.T) {
	if _, err := PurifyLadder(PhiPlus().Density(), 0, BBPSSW); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

func TestPurifySchemeString(t *testing.T) {
	if BBPSSW.String() != "BBPSSW" || DEJMPS.String() != "DEJMPS" {
		t.Fatal("scheme names wrong")
	}
	if PurifyScheme(9).String() == "" {
		t.Fatal("unknown scheme should render")
	}
}
