package quantum

import (
	"math"
	"testing"
)

func TestCHSHIdealBell(t *testing.T) {
	for _, bell := range BellStates() {
		s, err := CHSHMax(bell.Density())
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(s, 2*math.Sqrt2, 1e-9) {
			t.Fatalf("Bell state CHSH %g, want 2√2", s)
		}
	}
}

func TestCHSHProductState(t *testing.T) {
	// |00><00| has T = diag(0,0,1): S = 2, no violation.
	rho := Basis(4, 0).Density()
	ok, s, err := ViolatesCHSH(rho)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("product state violates CHSH with S=%g", s)
	}
	if !almostEq(s, 2, 1e-9) {
		t.Fatalf("product state S=%g, want 2", s)
	}
}

func TestCHSHWernerClosedForm(t *testing.T) {
	// Werner state: T = -p·diag? For p|Φ+><Φ+| + (1-p)I/4 the correlation
	// matrix is diag(p, -p, p): S = 2√2·p. Violation iff p > 1/√2.
	for _, p := range []float64{0.3, 0.6, 1 / math.Sqrt2, 0.8, 1} {
		s, err := CHSHMax(WernerState(p))
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(s, 2*math.Sqrt2*p, 1e-9) {
			t.Fatalf("Werner(%g) CHSH %g, want %g", p, s, 2*math.Sqrt2*p)
		}
		ok, _, err := ViolatesCHSH(WernerState(p))
		if err != nil {
			t.Fatal(err)
		}
		if want := p > 1/math.Sqrt2+1e-9; ok != want {
			t.Fatalf("Werner(%g) violation=%v, want %v", p, ok, want)
		}
	}
}

func TestCHSHMaximallyMixed(t *testing.T) {
	s, err := CHSHMax(Identity(4).Scale(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(s, 0, 1e-9) {
		t.Fatalf("maximally mixed CHSH %g, want 0", s)
	}
}

func TestCHSHMonotoneUnderDamping(t *testing.T) {
	prev := 3.0
	for eta := 1.0; eta >= 0; eta -= 0.1 {
		rho, err := DistributeBellPair(math.Max(0, eta))
		if err != nil {
			t.Fatal(err)
		}
		s, err := CHSHMax(rho)
		if err != nil {
			t.Fatal(err)
		}
		if s > prev+1e-9 {
			t.Fatalf("CHSH increased as eta fell at %g", eta)
		}
		prev = s
	}
}

func TestCHSHThresholdEta(t *testing.T) {
	eta, err := CHSHThresholdEta()
	if err != nil {
		t.Fatal(err)
	}
	// The threshold must be in (0,1): damped pairs violate down to some
	// finite transmissivity.
	if eta <= 0.01 || eta >= 0.99 {
		t.Fatalf("CHSH threshold eta %g implausible", eta)
	}
	// Check bracketing: just above violates, just below does not.
	above, err := DistributeBellPair(math.Min(1, eta+0.01))
	if err != nil {
		t.Fatal(err)
	}
	if ok, s, _ := ViolatesCHSH(above); !ok {
		t.Fatalf("eta=%g should violate (S=%g)", eta+0.01, s)
	}
	below, err := DistributeBellPair(math.Max(0, eta-0.01))
	if err != nil {
		t.Fatal(err)
	}
	if ok, s, _ := ViolatesCHSH(below); ok {
		t.Fatalf("eta=%g should not violate (S=%g)", eta-0.01, s)
	}
	// The paper's 0.7 transmissivity threshold keeps distributed pairs
	// nonlocal.
	thr, err := DistributeBellPair(0.7)
	if err != nil {
		t.Fatal(err)
	}
	if ok, s, _ := ViolatesCHSH(thr); !ok {
		t.Fatalf("paper-threshold pair should violate CHSH (S=%g)", s)
	}
}

func TestCorrelationMatrixRejectsWrongDim(t *testing.T) {
	if _, err := CorrelationMatrix(Identity(2)); err != nil {
		// expected
	} else {
		t.Fatal("expected dimension error")
	}
	if _, err := CHSHMax(Identity(8)); err == nil {
		t.Fatal("expected dimension error")
	}
}
