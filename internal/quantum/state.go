package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Vector is a pure quantum state vector of dimension 2^n.
type Vector struct {
	Data []complex128
}

// NewVector returns a zero vector of the given dimension.
func NewVector(dim int) *Vector {
	return &Vector{Data: make([]complex128, dim)}
}

// Dim returns the vector's dimension.
func (v *Vector) Dim() int { return len(v.Data) }

// Norm returns the 2-norm of v.
func (v *Vector) Norm() float64 {
	var s float64
	for _, c := range v.Data {
		s += real(c)*real(c) + imag(c)*imag(c)
	}
	return math.Sqrt(s)
}

// Normalize scales v to unit norm in place and returns it. A zero vector is
// returned unchanged.
func (v *Vector) Normalize() *Vector {
	n := v.Norm()
	if n == 0 {
		return v
	}
	inv := complex(1/n, 0)
	for i := range v.Data {
		v.Data[i] *= inv
	}
	return v
}

// Tensor returns the Kronecker product v ⊗ w.
func (v *Vector) Tensor(w *Vector) *Vector {
	out := NewVector(len(v.Data) * len(w.Data))
	for i, a := range v.Data {
		if a == 0 {
			continue
		}
		for j, b := range w.Data {
			out.Data[i*len(w.Data)+j] = a * b
		}
	}
	return out
}

// Density returns the density matrix |v><v|. The vector is assumed
// normalized.
func (v *Vector) Density() *Matrix {
	n := len(v.Data)
	m := NewMatrix(n)
	for i, a := range v.Data {
		if a == 0 {
			continue
		}
		for j, b := range v.Data {
			m.Data[i*n+j] = a * cmplx.Conj(b)
		}
	}
	return m
}

// InnerProduct returns <v|w>.
func (v *Vector) InnerProduct(w *Vector) complex128 {
	if len(v.Data) != len(w.Data) {
		panic(fmt.Sprintf("quantum: inner product dimension mismatch %d vs %d", len(v.Data), len(w.Data)))
	}
	var s complex128
	for i := range v.Data {
		s += cmplx.Conj(v.Data[i]) * w.Data[i]
	}
	return s
}

// Basis returns the computational basis state |index> of the given
// dimension.
func Basis(dim, index int) *Vector {
	if index < 0 || index >= dim {
		panic(fmt.Sprintf("quantum: basis index %d out of range [0,%d)", index, dim))
	}
	v := NewVector(dim)
	v.Data[index] = 1
	return v
}

// The four Bell states on two qubits. PhiPlus is the maximally entangled
// state (|00> + |11>)/sqrt(2) the paper uses as the ideal target |psi> in
// Eq. (5).
func PhiPlus() *Vector {
	v := NewVector(4)
	s := complex(1/math.Sqrt2, 0)
	v.Data[0], v.Data[3] = s, s
	return v
}

// PhiMinus returns (|00> - |11>)/sqrt(2).
func PhiMinus() *Vector {
	v := NewVector(4)
	s := complex(1/math.Sqrt2, 0)
	v.Data[0], v.Data[3] = s, -s
	return v
}

// PsiPlus returns (|01> + |10>)/sqrt(2).
func PsiPlus() *Vector {
	v := NewVector(4)
	s := complex(1/math.Sqrt2, 0)
	v.Data[1], v.Data[2] = s, s
	return v
}

// PsiMinus returns (|01> - |10>)/sqrt(2).
func PsiMinus() *Vector {
	v := NewVector(4)
	s := complex(1/math.Sqrt2, 0)
	v.Data[1], v.Data[2] = s, -s
	return v
}

// BellStates returns the four Bell states in the order PhiPlus, PhiMinus,
// PsiPlus, PsiMinus.
func BellStates() []*Vector {
	return []*Vector{PhiPlus(), PhiMinus(), PsiPlus(), PsiMinus()}
}

// WernerState returns the Werner state p|Φ+><Φ+| + (1-p) I/4, a standard
// noisy-entanglement model used in the test suite as an independent
// cross-check of the fidelity implementation (its Bell fidelity is
// p + (1-p)/4 in closed form).
func WernerState(p float64) *Matrix {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("quantum: Werner parameter %v outside [0,1]", p))
	}
	bell := PhiPlus().Density().Scale(complex(p, 0))
	mixed := Identity(4).Scale(complex((1-p)/4, 0))
	return bell.Add(mixed)
}
