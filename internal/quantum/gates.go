package quantum

import (
	"fmt"
	"math"
)

// Hadamard returns the single-qubit Hadamard gate.
func Hadamard() *Matrix {
	s := complex(1/math.Sqrt2, 0)
	m := NewMatrix(2)
	m.Set(0, 0, s)
	m.Set(0, 1, s)
	m.Set(1, 0, s)
	m.Set(1, 1, -s)
	return m
}

// RotationX returns exp(-i θ X / 2).
func RotationX(theta float64) *Matrix {
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	m := NewMatrix(2)
	m.Set(0, 0, c)
	m.Set(0, 1, s)
	m.Set(1, 0, s)
	m.Set(1, 1, c)
	return m
}

// CNOT returns the controlled-NOT on an n-qubit register with the given
// control and target indices (0 = most significant qubit).
func CNOT(control, target, nQubits int) *Matrix {
	if control == target {
		panic("quantum: CNOT control == target")
	}
	if control < 0 || control >= nQubits || target < 0 || target >= nQubits {
		panic(fmt.Sprintf("quantum: CNOT qubits (%d,%d) out of range [0,%d)", control, target, nQubits))
	}
	dim := 1 << nQubits
	m := NewMatrix(dim)
	cBit := nQubits - 1 - control
	tBit := nQubits - 1 - target
	for b := 0; b < dim; b++ {
		out := b
		if b&(1<<cBit) != 0 {
			out = b ^ (1 << tBit)
		}
		m.Set(out, b, 1)
	}
	return m
}

// Lift embeds a single-qubit unitary on qubit k of an n-qubit register.
func Lift(u *Matrix, k, nQubits int) *Matrix {
	if u.N != 2 {
		panic("quantum: Lift requires a single-qubit operator")
	}
	if k < 0 || k >= nQubits {
		panic(fmt.Sprintf("quantum: Lift qubit %d out of range [0,%d)", k, nQubits))
	}
	m := Identity(1)
	for q := 0; q < nQubits; q++ {
		if q == k {
			m = m.Tensor(u)
		} else {
			m = m.Tensor(Identity(2))
		}
	}
	return m
}

// ApplyUnitary returns U ρ U†.
func ApplyUnitary(rho, u *Matrix) *Matrix {
	return u.Mul(rho).Mul(u.Dagger())
}

// MeasureResult is one branch of a projective Z measurement.
type MeasureResult struct {
	Outcome     int // 0 or 1
	Probability float64
	// State is the normalized post-measurement state with the measured
	// qubit still in the register (collapsed); nil if Probability ≈ 0.
	State *Matrix
}

// MeasureZ performs a projective Z-basis measurement of qubit k on an
// n-qubit state, returning both branches.
func MeasureZ(rho *Matrix, k, nQubits int) []MeasureResult {
	dim := 1 << nQubits
	if rho.N != dim {
		panic(fmt.Sprintf("quantum: MeasureZ dim %d != 2^%d", rho.N, nQubits))
	}
	bit := nQubits - 1 - k
	results := make([]MeasureResult, 2)
	for outcome := 0; outcome < 2; outcome++ {
		proj := NewMatrix(dim)
		for b := 0; b < dim; b++ {
			if (b>>bit)&1 == outcome {
				proj.Set(b, b, 1)
			}
		}
		branch := proj.Mul(rho).Mul(proj)
		p := real(branch.Trace())
		res := MeasureResult{Outcome: outcome, Probability: p}
		if p > 1e-15 {
			res.State = branch.Scale(complex(1/p, 0))
		}
		results[outcome] = res
	}
	return results
}

// IsUnitary reports whether U U† = I within tol.
func IsUnitary(u *Matrix, tol float64) bool {
	return u.Mul(u.Dagger()).MaxAbsDiff(Identity(u.N)) <= tol
}

// Purity returns Tr(ρ²), which is 1 exactly for pure states and 1/N for
// the maximally mixed state.
func Purity(rho *Matrix) float64 {
	return real(rho.Mul(rho).Trace())
}
