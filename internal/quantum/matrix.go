// Package quantum implements the density-matrix machinery the paper's
// methodology depends on: complex matrices, tensor products and partial
// traces, Kraus-operator channels (in particular the amplitude-damping
// channel of Eq. 3-4), Bell states, Hermitian eigendecomposition, Uhlmann
// fidelity (Eq. 5), and entanglement swapping for multi-hop distribution.
//
// Everything is dense and exact (within floating point); the matrices
// involved are tiny (2^n x 2^n for n <= 4 qubits), so clarity wins over
// sparsity.
package quantum

import (
	"fmt"
	"math/cmplx"
	"strings"
)

// Matrix is a dense square complex matrix stored row-major.
type Matrix struct {
	N    int
	Data []complex128
}

// NewMatrix returns an N x N zero matrix.
func NewMatrix(n int) *Matrix {
	if n <= 0 {
		panic(fmt.Sprintf("quantum: invalid matrix dimension %d", n))
	}
	return &Matrix{N: n, Data: make([]complex128, n*n)}
}

// FromRows builds a matrix from row slices. All rows must have equal length
// len(rows).
func FromRows(rows [][]complex128) *Matrix {
	n := len(rows)
	m := NewMatrix(n)
	for i, r := range rows {
		if len(r) != n {
			panic(fmt.Sprintf("quantum: row %d has %d entries, want %d", i, len(r), n))
		}
		copy(m.Data[i*n:(i+1)*n], r)
	}
	return m
}

// Identity returns the N x N identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.N+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	copy(c.Data, m.Data)
	return c
}

// Add returns m + w.
func (m *Matrix) Add(w *Matrix) *Matrix {
	m.mustMatch(w)
	out := NewMatrix(m.N)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + w.Data[i]
	}
	return out
}

// Sub returns m - w.
func (m *Matrix) Sub(w *Matrix) *Matrix {
	m.mustMatch(w)
	out := NewMatrix(m.N)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - w.Data[i]
	}
	return out
}

// Scale returns s * m.
func (m *Matrix) Scale(s complex128) *Matrix {
	out := NewMatrix(m.N)
	for i := range m.Data {
		out.Data[i] = s * m.Data[i]
	}
	return out
}

// Mul returns the matrix product m * w.
func (m *Matrix) Mul(w *Matrix) *Matrix {
	m.mustMatch(w)
	n := m.N
	out := NewMatrix(n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			a := m.Data[i*n+k]
			if a == 0 {
				continue
			}
			row := w.Data[k*n:]
			dst := out.Data[i*n:]
			for j := 0; j < n; j++ {
				dst[j] += a * row[j]
			}
		}
	}
	return out
}

// Dagger returns the conjugate transpose of m.
func (m *Matrix) Dagger() *Matrix {
	n := m.N
	out := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*n+i] = cmplx.Conj(m.Data[i*n+j])
		}
	}
	return out
}

// Trace returns the sum of diagonal elements.
func (m *Matrix) Trace() complex128 {
	var t complex128
	for i := 0; i < m.N; i++ {
		t += m.Data[i*m.N+i]
	}
	return t
}

// Tensor returns the Kronecker product m ⊗ w.
func (m *Matrix) Tensor(w *Matrix) *Matrix {
	a, b := m.N, w.N
	out := NewMatrix(a * b)
	for i := 0; i < a; i++ {
		for j := 0; j < a; j++ {
			v := m.Data[i*a+j]
			if v == 0 {
				continue
			}
			for k := 0; k < b; k++ {
				for l := 0; l < b; l++ {
					out.Data[(i*b+k)*(a*b)+(j*b+l)] = v * w.Data[k*b+l]
				}
			}
		}
	}
	return out
}

// IsHermitian reports whether m equals its conjugate transpose within tol.
func (m *Matrix) IsHermitian(tol float64) bool {
	n := m.N
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			d := m.Data[i*n+j] - cmplx.Conj(m.Data[j*n+i])
			if cmplx.Abs(d) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the largest element-wise absolute difference between m
// and w. Useful in tests.
func (m *Matrix) MaxAbsDiff(w *Matrix) float64 {
	m.mustMatch(w)
	var max float64
	for i := range m.Data {
		if d := cmplx.Abs(m.Data[i] - w.Data[i]); d > max {
			max = d
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			v := m.At(i, j)
			fmt.Fprintf(&b, "%7.4f%+7.4fi ", real(v), imag(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (m *Matrix) mustMatch(w *Matrix) {
	if m.N != w.N {
		panic(fmt.Sprintf("quantum: dimension mismatch %d vs %d", m.N, w.N))
	}
}

// PartialTrace traces out the qubit at index k (0 = most significant) of an
// n-qubit density matrix, returning the (n-1)-qubit reduced state.
func PartialTrace(rho *Matrix, k, nQubits int) *Matrix {
	dim := 1 << nQubits
	if rho.N != dim {
		panic(fmt.Sprintf("quantum: partial trace: matrix dim %d != 2^%d", rho.N, nQubits))
	}
	if k < 0 || k >= nQubits {
		panic(fmt.Sprintf("quantum: partial trace: qubit %d out of range [0,%d)", k, nQubits))
	}
	outDim := dim / 2
	out := NewMatrix(outDim)
	// Bit position of qubit k counted from the most significant bit.
	shift := nQubits - 1 - k
	for i := 0; i < outDim; i++ {
		for j := 0; j < outDim; j++ {
			var sum complex128
			for b := 0; b < 2; b++ {
				fi := insertBit(i, shift, b)
				fj := insertBit(j, shift, b)
				sum += rho.Data[fi*dim+fj]
			}
			out.Data[i*outDim+j] = sum
		}
	}
	return out
}

// insertBit inserts bit b at position pos (counted from the least
// significant bit) into x, shifting higher bits left.
func insertBit(x, pos, b int) int {
	lowMask := (1 << pos) - 1
	low := x & lowMask
	high := x >> pos
	return (high << (pos + 1)) | (b << pos) | low
}
