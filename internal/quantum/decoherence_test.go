package quantum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestPhaseDampingTracePreserving(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gamma := rng.Float64()
		pd, err := PhaseDamping(gamma)
		if err != nil {
			return false
		}
		if !pd.IsTracePreserving(1e-12) {
			return false
		}
		rho := randomDensity(rng, 1)
		out := pd.Apply(rho)
		return almostEq(real(out.Trace()), 1, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseDampingPreservesPopulations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rho := randomDensity(rng, 1)
	pd, err := PhaseDamping(0.7)
	if err != nil {
		t.Fatal(err)
	}
	out := pd.Apply(rho)
	if !almostEq(real(out.At(0, 0)), real(rho.At(0, 0)), 1e-12) ||
		!almostEq(real(out.At(1, 1)), real(rho.At(1, 1)), 1e-12) {
		t.Fatal("phase damping changed populations")
	}
	// Coherence scales by sqrt(1-γ).
	want := rho.At(0, 1) * complex(math.Sqrt(0.3), 0)
	if d := out.At(0, 1) - want; math.Abs(real(d))+math.Abs(imag(d)) > 1e-12 {
		t.Fatalf("coherence scaling wrong: %v vs %v", out.At(0, 1), want)
	}
}

func TestPhaseDampingRange(t *testing.T) {
	for _, g := range []float64{-0.1, 1.2, math.NaN()} {
		if _, err := PhaseDamping(g); err == nil {
			t.Errorf("gamma=%v accepted", g)
		}
	}
	if _, err := PhaseDamping(1 + 1e-12); err != nil {
		t.Error("tiny overshoot should be tolerated")
	}
}

func TestDephasingGamma(t *testing.T) {
	if DephasingGamma(time.Second, 0) != 0 {
		t.Error("ideal memory should give zero gamma")
	}
	if DephasingGamma(0, time.Second) != 0 {
		t.Error("zero storage should give zero gamma")
	}
	// γ = 1 - exp(-2t/T2): at t = T2, γ = 1 - e⁻².
	g := DephasingGamma(time.Second, time.Second)
	if !almostEq(g, 1-math.Exp(-2), 1e-12) {
		t.Fatalf("gamma at t=T2: %g", g)
	}
	// Monotone in storage time.
	prev := -1.0
	for ms := 1; ms <= 1000; ms *= 10 {
		g := DephasingGamma(time.Duration(ms)*time.Millisecond, 100*time.Millisecond)
		if g <= prev {
			t.Fatal("gamma not monotone")
		}
		prev = g
	}
}

func TestStoreBellPairIdealIsIdentity(t *testing.T) {
	rho, err := DistributeBellPair(0.8)
	if err != nil {
		t.Fatal(err)
	}
	out, err := StoreBellPair(rho, time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.MaxAbsDiff(rho) > 1e-12 {
		t.Fatal("ideal memory changed the state")
	}
}

func TestStoreBellPairDecoheres(t *testing.T) {
	rho := PhiPlus().Density()
	out, err := StoreBellPair(rho, 50*time.Millisecond, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	fBefore := BellFidelity(rho)
	fAfter := BellFidelity(out)
	if fAfter >= fBefore {
		t.Fatalf("storage did not decohere: %g -> %g", fBefore, fAfter)
	}
	// Closed form: coherence retention λ = exp(-t/T2) per qubit; for a
	// perfect Bell pair F² = (1 + λ²)/2.
	lambda := math.Exp(-0.5)
	want := math.Sqrt((1 + lambda*lambda) / 2)
	if !almostEq(fAfter, want, 1e-9) {
		t.Fatalf("dephased Bell fidelity %g, closed form %g", fAfter, want)
	}
	// Trace preserved and Hermitian.
	if !almostEq(real(out.Trace()), 1, 1e-10) || !out.IsHermitian(1e-10) {
		t.Fatal("stored state not a density matrix")
	}
}

func TestStoreBellPairRejectsWrongDim(t *testing.T) {
	if _, err := StoreBellPair(Identity(2), time.Second, time.Second); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestStoredBellFidelityComposition(t *testing.T) {
	// With no storage this must equal the both-arms closed form.
	f, err := StoredBellFidelity(0.9, 0.8, 0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f, AnalyticBellFidelityBothArms(0.9, 0.8), 1e-10) {
		t.Fatalf("no-storage value %g", f)
	}
	// Adding storage strictly decreases fidelity.
	fs, err := StoredBellFidelity(0.9, 0.8, 20*time.Millisecond, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fs >= f {
		t.Fatalf("storage did not reduce fidelity: %g vs %g", fs, f)
	}
	// Infinite dephasing floor: coherences vanish; fidelity approaches
	// the classical-correlation bound sqrt((1+sqrt(η1η2))... compute via
	// long storage and just require (0, f).
	floor, err := StoredBellFidelity(0.9, 0.8, time.Hour, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if floor <= 0 || floor >= fs {
		t.Fatalf("floor %g not below %g", floor, fs)
	}
}
