package quantum

import "fmt"

// Pauli matrices and their use in Bell-measurement corrections.

// PauliX returns the bit-flip operator.
func PauliX() *Matrix {
	m := NewMatrix(2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	return m
}

// PauliY returns the Y operator.
func PauliY() *Matrix {
	m := NewMatrix(2)
	m.Set(0, 1, complex(0, -1))
	m.Set(1, 0, complex(0, 1))
	return m
}

// PauliZ returns the phase-flip operator.
func PauliZ() *Matrix {
	m := NewMatrix(2)
	m.Set(0, 0, 1)
	m.Set(1, 1, -1)
	return m
}

// SwapOutcome describes one Bell-measurement branch of an entanglement
// swap.
type SwapOutcome struct {
	// Bell index: 0 Φ+, 1 Φ-, 2 Ψ+, 3 Ψ-.
	Outcome int
	// Probability of the branch.
	Probability float64
	// Post-measurement, Pauli-corrected state of the two end qubits,
	// normalized. Nil when Probability is (numerically) zero.
	State *Matrix
}

// Swap performs deterministic entanglement swapping: given a pair shared
// between nodes A and B (rhoAB, qubit order A then B) and a pair shared
// between C and D (rhoCD, qubit order C then D), it Bell-measures qubits B
// and C, applies the standard Pauli correction on D for each outcome, and
// returns the average end-to-end state of A and D along with the individual
// branches.
//
// For ideal input pairs every branch yields exactly |Φ+>; for
// amplitude-damped inputs the branches differ slightly and the average is
// what a repeater that always announces its outcome delivers.
func Swap(rhoAB, rhoCD *Matrix) (*Matrix, []SwapOutcome, error) {
	if rhoAB.N != 4 || rhoCD.N != 4 {
		return nil, nil, fmt.Errorf("quantum: Swap requires two 2-qubit states, got dims %d and %d", rhoAB.N, rhoCD.N)
	}
	full := rhoAB.Tensor(rhoCD) // qubit order: A(0) B(1) C(2) D(3)

	bells := BellStates()
	// Pauli correction applied to D so that outcome k maps an ideal swap
	// back to Φ+: Φ+ -> I, Φ- -> Z, Ψ+ -> X, Ψ- -> Z·X.
	corrections := []*Matrix{
		Identity(2),
		PauliZ(),
		PauliX(),
		PauliZ().Mul(PauliX()),
	}

	id2 := Identity(2)
	avg := NewMatrix(4)
	outcomes := make([]SwapOutcome, 0, 4)
	var totalProb float64
	for k, bell := range bells {
		// Projector onto |β_k> for the adjacent qubits B, C.
		proj := id2.Tensor(bell.Density()).Tensor(id2)
		branch := proj.Mul(full).Mul(proj)
		p := real(branch.Trace())
		out := SwapOutcome{Outcome: k, Probability: p}
		if p > 1e-15 {
			// Trace out qubit B (index 1), then the former qubit C (now
			// index 1 of the 3-qubit remainder).
			reduced := PartialTrace(branch, 1, 4)
			reduced = PartialTrace(reduced, 1, 3)
			// Normalize and correct.
			reduced = reduced.Scale(complex(1/p, 0))
			corr := id2.Tensor(corrections[k])
			reduced = corr.Mul(reduced).Mul(corr.Dagger())
			out.State = reduced
			avg = avg.Add(reduced.Scale(complex(p, 0)))
		}
		totalProb += p
		outcomes = append(outcomes, out)
	}
	if totalProb < 1e-12 {
		return nil, outcomes, fmt.Errorf("quantum: Swap: all measurement branches have zero probability")
	}
	avg = avg.Scale(complex(1/totalProb, 0))
	return avg, outcomes, nil
}

// SwapChain distributes end-to-end entanglement across a chain of
// amplitude-damped elementary pairs with the given per-hop transmissivities
// by repeated swapping, returning the final two-qubit state between the
// chain's endpoints.
func SwapChain(etas []float64) (*Matrix, error) {
	if len(etas) == 0 {
		return nil, fmt.Errorf("quantum: SwapChain requires at least one hop")
	}
	state, err := DistributeBellPair(etas[0])
	if err != nil {
		return nil, err
	}
	for _, eta := range etas[1:] {
		next, err := DistributeBellPair(eta)
		if err != nil {
			return nil, err
		}
		state, _, err = Swap(state, next)
		if err != nil {
			return nil, err
		}
	}
	return state, nil
}
