package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// Conj returns the element-wise complex conjugate of m.
func (m *Matrix) Conj() *Matrix {
	out := NewMatrix(m.N)
	for i, v := range m.Data {
		out.Data[i] = cmplx.Conj(v)
	}
	return out
}

// Concurrence returns the Wootters concurrence of a two-qubit state:
// C = max(0, λ1 − λ2 − λ3 − λ4) with λi the decreasing square roots of the
// eigenvalues of ρ (σy⊗σy) ρ* (σy⊗σy). C = 0 for separable states and 1
// for maximally entangled ones.
func Concurrence(rho *Matrix) (float64, error) {
	if rho.N != 4 {
		return 0, fmt.Errorf("quantum: concurrence needs a 2-qubit state, got dim %d", rho.N)
	}
	yy := PauliY().Tensor(PauliY())
	rhoTilde := yy.Mul(rho.Conj()).Mul(yy)
	// ρρ~ has real non-negative eigenvalues but is not Hermitian; use the
	// similarity trick: the eigenvalues of ρρ~ equal those of √ρ ρ~ √ρ,
	// which is PSD Hermitian and safe for the Jacobi solver.
	sqrtRho, err := SqrtPSD(rho)
	if err != nil {
		return 0, err
	}
	herm := sqrtRho.Mul(rhoTilde).Mul(sqrtRho)
	eig, err := EigenHermitian(herm)
	if err != nil {
		return 0, err
	}
	lambdas := make([]float64, 0, 4)
	for _, v := range eig.Values {
		if v < 0 {
			v = 0
		}
		lambdas = append(lambdas, math.Sqrt(v))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(lambdas)))
	c := lambdas[0] - lambdas[1] - lambdas[2] - lambdas[3]
	if c < 0 {
		c = 0
	}
	if c > 1 {
		c = 1
	}
	return c, nil
}

// EntanglementOfFormation returns E_F in ebits from the concurrence via
// Wootters' formula: E_F = h((1 + sqrt(1−C²))/2) with h the binary
// entropy.
func EntanglementOfFormation(rho *Matrix) (float64, error) {
	c, err := Concurrence(rho)
	if err != nil {
		return 0, err
	}
	x := (1 + math.Sqrt(1-c*c)) / 2
	return binaryEntropy(x), nil
}

func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// PartialTranspose transposes the subsystem of qubit k (0 = most
// significant) of an n-qubit density matrix.
func PartialTranspose(rho *Matrix, k, nQubits int) *Matrix {
	dim := 1 << nQubits
	if rho.N != dim {
		panic(fmt.Sprintf("quantum: partial transpose dim %d != 2^%d", rho.N, nQubits))
	}
	bit := nQubits - 1 - k
	out := NewMatrix(dim)
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			// Swap the k-th bit between row and column indices.
			rb, cb := (r>>bit)&1, (c>>bit)&1
			nr := (r &^ (1 << bit)) | (cb << bit)
			nc := (c &^ (1 << bit)) | (rb << bit)
			out.Data[nr*dim+nc] = rho.Data[r*dim+c]
		}
	}
	return out
}

// Negativity returns the entanglement negativity of a two-qubit state:
// the absolute sum of the negative eigenvalues of the partial transpose.
// Zero exactly for separable (PPT) states; ½ for Bell states.
func Negativity(rho *Matrix) (float64, error) {
	if rho.N != 4 {
		return 0, fmt.Errorf("quantum: negativity needs a 2-qubit state, got dim %d", rho.N)
	}
	pt := PartialTranspose(rho, 1, 2)
	eig, err := EigenHermitian(pt)
	if err != nil {
		return 0, err
	}
	var neg float64
	for _, v := range eig.Values {
		if v < 0 {
			neg -= v
		}
	}
	return neg, nil
}
