package quantum

import (
	"fmt"
	"math"
)

// Fidelity returns the Uhlmann (root) fidelity between two density
// matrices:
//
//	F(rho, sigma) = Tr sqrt( sqrt(rho) sigma sqrt(rho) )
//
// For a pure target sigma = |psi><psi| this reduces to
// sqrt(<psi|rho|psi>). The paper's Eq. (5) writes the squared form, but its
// reported numbers (eta = 0.7 yielding fidelity > 0.9 in Fig. 5) match this
// root convention; FidelitySquared provides the literal Eq. (5) value. See
// DESIGN.md, "Fidelity convention".
func Fidelity(rho, sigma *Matrix) (float64, error) {
	sr, err := SqrtPSD(rho)
	if err != nil {
		return 0, fmt.Errorf("quantum: Fidelity: %w", err)
	}
	inner := sr.Mul(sigma).Mul(sr)
	s, err := SqrtPSD(inner)
	if err != nil {
		return 0, fmt.Errorf("quantum: Fidelity: %w", err)
	}
	f := real(s.Trace())
	return clamp01(f), nil
}

// FidelitySquared returns the squared Uhlmann fidelity, the literal form of
// the paper's Eq. (5).
func FidelitySquared(rho, sigma *Matrix) (float64, error) {
	f, err := Fidelity(rho, sigma)
	if err != nil {
		return 0, err
	}
	return f * f, nil
}

// FidelityWithPure returns the root fidelity between rho and a pure state
// |psi><psi| using the closed form sqrt(<psi|rho|psi>), avoiding the
// eigendecompositions of the general path.
func FidelityWithPure(rho *Matrix, psi *Vector) float64 {
	n := rho.N
	if len(psi.Data) != n {
		panic(fmt.Sprintf("quantum: FidelityWithPure: dimension mismatch %d vs %d", len(psi.Data), n))
	}
	// <psi|rho|psi> = sum_ij conj(psi_i) rho_ij psi_j
	var acc complex128
	for i := 0; i < n; i++ {
		ci := psi.Data[i]
		if ci == 0 {
			continue
		}
		row := rho.Data[i*n:]
		var rowSum complex128
		for j := 0; j < n; j++ {
			rowSum += row[j] * psi.Data[j]
		}
		acc += conj(ci) * rowSum
	}
	v := real(acc)
	return math.Sqrt(clamp01(v))
}

// BellFidelity returns the root fidelity of a two-qubit state against the
// maximally entangled Bell state PhiPlus, the target state of the paper's
// Eq. (5).
func BellFidelity(rho *Matrix) float64 {
	return FidelityWithPure(rho, PhiPlus())
}

// AnalyticBellFidelity returns, in closed form, the root fidelity of a Bell
// pair after one arm passes through an amplitude-damping channel of
// transmissivity eta: F = (1 + sqrt(eta)) / 2. Used as a fast path by the
// experiment harness and as an oracle in tests.
func AnalyticBellFidelity(eta float64) float64 {
	eta = clamp01(eta)
	return (1 + math.Sqrt(eta)) / 2
}

// AnalyticBellFidelityBothArms returns the root Bell fidelity when both
// arms of the pair pass through amplitude-damping channels of
// transmissivities eta1 and eta2 (the platform-source configuration, where
// the entanglement source sits on the satellite or HAP and each photon
// takes its own downlink):
//
//	F^2 = [ (1 + sqrt(eta1*eta2))^2 + (1-eta1)(1-eta2) ] / 4
func AnalyticBellFidelityBothArms(eta1, eta2 float64) float64 {
	eta1, eta2 = clamp01(eta1), clamp01(eta2)
	s := 1 + math.Sqrt(eta1*eta2)
	f2 := (s*s + (1-eta1)*(1-eta2)) / 4
	return math.Sqrt(clamp01(f2))
}

func clamp01(x float64) float64 {
	if x < 0 || math.IsNaN(x) {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func conj(c complex128) complex128 { return complex(real(c), -imag(c)) }
