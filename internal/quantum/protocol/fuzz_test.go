package protocol_test

import (
	"math"
	"testing"
	"time"

	"qntn/internal/quantum/protocol"
)

// FuzzSwapChain drives the full per-request composition — elementary-link
// fidelity, swap chain with seeded success draws, memory dephasing,
// distillation schedule — with arbitrary link fidelities, route lengths,
// seeds and waits, and asserts no NaN and no escape from the Werner domain
// anywhere in the pipeline.
func FuzzSwapChain(f *testing.F) {
	// Boundary corpus: floors, ceilings, zero-hop, huge waits, tiny T2,
	// adversarial float encodings.
	f.Add(0.5, uint8(0), int64(0), int64(0), int64(0), 0.5)
	f.Add(1.0, uint8(1), int64(1), int64(time.Hour), int64(time.Nanosecond), 1.0)
	f.Add(0.0, uint8(16), int64(-1), int64(-5), int64(-1), 0.001)
	f.Add(math.Inf(1), uint8(3), int64(math.MaxInt64), int64(math.MaxInt64), int64(1), 1.0)
	f.Add(math.NaN(), uint8(2), int64(7), int64(12345), int64(50_000_000), 0.25)
	f.Add(0.9999999999, uint8(8), int64(42), int64(1), int64(math.MaxInt64), 0.75)
	f.Fuzz(func(t *testing.T, rootF float64, hops uint8, seed, waitNs, t2Ns int64, pSwap float64) {
		inWerner := func(w float64) {
			t.Helper()
			if math.IsNaN(w) || w < protocol.MinWernerFidelity || w > 1 {
				t.Fatalf("fidelity %v escaped [%v,1]", w, protocol.MinWernerFidelity)
			}
		}
		link := protocol.WernerFromRoot(rootF)
		inWerner(link)
		w := link
		nHops := int(hops%24) + 1
		att := make([]float64, 0, 3)
		for j := 0; j < 3; j++ { // a few redundant path attempts
			w = link
			ok := true
			for s := 0; s+1 < nHops; s++ {
				d := protocol.Draw(seed, uint64(j), uint64(s))
				if d < 0 || d >= 1 || math.IsNaN(d) {
					t.Fatalf("draw %v outside [0,1)", d)
				}
				if pSwap > 0 && pSwap <= 1 && d >= pSwap {
					ok = false
					break
				}
				w = protocol.SwapWerner(w, link)
				inWerner(w)
			}
			if !ok {
				continue
			}
			w = protocol.DephaseWerner(w, time.Duration(waitNs), time.Duration(t2Ns))
			inWerner(w)
			att = append(att, w)
		}
		for i := 1; i < len(att); i++ {
			for j := i; j > 0 && att[j] > att[j-1]; j-- {
				att[j], att[j-1] = att[j-1], att[j]
			}
		}
		if out, okDist, rounds, accepted := protocol.Distill(att, seed); okDist {
			inWerner(out)
			root := protocol.RootFromWerner(out)
			if math.IsNaN(root) || root < 0.5 || root > 1 {
				t.Fatalf("root fidelity %v escaped [0.5,1]", root)
			}
			if accepted > rounds || rounds > len(att) {
				t.Fatalf("inconsistent distill counters: rounds=%d accepted=%d attempts=%d", rounds, accepted, len(att))
			}
		}
		fo, pOK := protocol.PurifyWerner(link, w)
		inWerner(fo)
		if math.IsNaN(pOK) || pOK < 0 || pOK > 1 {
			t.Fatalf("pSuccess %v outside [0,1]", pOK)
		}
	})
}
