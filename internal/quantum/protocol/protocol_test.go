package protocol_test

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"qntn/internal/quantum"
	"qntn/internal/quantum/protocol"
	"qntn/internal/runner"
)

const tol = 1e-9

// wernerOf returns the projection fidelity of WernerState(p): p + (1−p)/4.
func wernerOf(p float64) float64 { return p + (1-p)/4 }

// TestSwapWernerMatchesDensityMatrix pins the closed form against the exact
// Bell-measurement swap on Werner inputs: mixing parameters multiply.
func TestSwapWernerMatchesDensityMatrix(t *testing.T) {
	for _, p1 := range []float64{0, 0.2, 0.5, 0.8, 1} {
		for _, p2 := range []float64{0, 0.3, 0.7, 1} {
			avg, _, err := quantum.Swap(quantum.WernerState(p1), quantum.WernerState(p2))
			if err != nil {
				t.Fatalf("Swap(%g,%g): %v", p1, p2, err)
			}
			root := quantum.BellFidelity(avg)
			got := protocol.SwapWerner(wernerOf(p1), wernerOf(p2))
			if math.Abs(got-root*root) > tol {
				t.Errorf("SwapWerner(%g,%g) = %.12f, density matrix %.12f", p1, p2, got, root*root)
			}
		}
	}
}

// TestDephaseWernerMatchesStoreBellPair pins the closed form against the
// exact two-sided phase-damping channel on Werner inputs.
func TestDephaseWernerMatchesStoreBellPair(t *testing.T) {
	t2 := 50 * time.Millisecond
	for _, p := range []float64{0, 0.4, 0.75, 1} {
		for _, wait := range []time.Duration{0, time.Millisecond, 20 * time.Millisecond, 200 * time.Millisecond} {
			stored, err := quantum.StoreBellPair(quantum.WernerState(p), wait, t2)
			if err != nil {
				t.Fatalf("StoreBellPair: %v", err)
			}
			root := quantum.BellFidelity(stored)
			got := protocol.DephaseWerner(wernerOf(p), wait, t2)
			if math.Abs(got-root*root) > tol {
				t.Errorf("DephaseWerner(p=%g, wait=%v) = %.12f, density matrix %.12f", p, wait, got, root*root)
			}
		}
	}
}

// TestPurifyWernerMatchesDensityMatrix pins the closed form — output
// fidelity AND postselection probability — against the exact recurrence
// circuit. On Werner inputs BBPSSW and DEJMPS coincide, so both schemes
// must match the same closed form.
func TestPurifyWernerMatchesDensityMatrix(t *testing.T) {
	for _, scheme := range []quantum.PurifyScheme{quantum.BBPSSW, quantum.DEJMPS} {
		for _, p1 := range []float64{0.1, 0.5, 0.8, 1} {
			for _, p2 := range []float64{0.2, 0.6, 1} {
				res, err := quantum.Purify(quantum.WernerState(p1), quantum.WernerState(p2), scheme)
				if err != nil {
					t.Fatalf("Purify(%v): %v", scheme, err)
				}
				out, pOK := protocol.PurifyWerner(wernerOf(p1), wernerOf(p2))
				exact := res.FidelityAfter * res.FidelityAfter
				if math.Abs(out-exact) > tol {
					t.Errorf("%v: PurifyWerner(%g,%g) fidelity = %.12f, circuit %.12f", scheme, p1, p2, out, exact)
				}
				if math.Abs(pOK-res.SuccessProbability) > tol {
					t.Errorf("%v: PurifyWerner(%g,%g) pSuccess = %.12f, circuit %.12f", scheme, p1, p2, pOK, res.SuccessProbability)
				}
			}
		}
	}
}

// TestDephaseWernerMonotoneInWait: fidelity never increases with storage
// time, reaches the input at wait 0, and stays in the Werner domain.
func TestDephaseWernerMonotoneInWait(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		w := 0.25 + 0.75*rng.Float64()
		t2 := time.Duration(1+rng.Intn(1000)) * time.Millisecond
		prev := protocol.DephaseWerner(w, 0, t2)
		if prev != w {
			t.Fatalf("DephaseWerner(%g, 0) = %g, want unchanged", w, prev)
		}
		for wait := time.Millisecond; wait < 10*time.Second; wait *= 4 {
			cur := protocol.DephaseWerner(w, wait, t2)
			if cur > prev+tol {
				t.Fatalf("fidelity increased with wait: %g -> %g at wait=%v", prev, cur, wait)
			}
			if cur < protocol.MinWernerFidelity-tol || cur > 1+tol {
				t.Fatalf("DephaseWerner out of range: %g", cur)
			}
			prev = cur
		}
	}
}

// TestSwapChainMonotoneInHops: composing one more swap never increases the
// chain fidelity, and the result stays in the Werner domain.
func TestSwapChainMonotoneInHops(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		w := 0.25 + 0.75*rng.Float64()
		for hop := 0; hop < 12; hop++ {
			link := 0.25 + 0.75*rng.Float64()
			next := protocol.SwapWerner(w, link)
			if next > w+tol {
				t.Fatalf("fidelity increased across swap: %g -> %g (link %g)", w, next, link)
			}
			if next < protocol.MinWernerFidelity-tol || next > 1+tol {
				t.Fatalf("SwapWerner out of range: %g", next)
			}
			w = next
		}
	}
}

// TestPurifyWernerImprovesEqualInputs: one recurrence round on equal pairs
// above 1/2 strictly improves fidelity (the textbook BBPSSW threshold).
func TestPurifyWernerImprovesEqualInputs(t *testing.T) {
	for w := 0.51; w < 1.0; w += 0.02 {
		out, pOK := protocol.PurifyWerner(w, w)
		if out <= w {
			t.Errorf("PurifyWerner(%g,%g) = %g, want strict improvement", w, w, out)
		}
		if pOK <= 0 || pOK > 1+tol {
			t.Errorf("pSuccess %g outside (0,1] at w=%g", pOK, w)
		}
	}
	// At the fixed points there is no improvement.
	if out, _ := protocol.PurifyWerner(1, 1); out != 1 {
		t.Errorf("PurifyWerner(1,1) = %g, want 1", out)
	}
	if out, _ := protocol.PurifyWerner(0.25, 0.25); math.Abs(out-0.25) > tol {
		t.Errorf("PurifyWerner(0.25,0.25) = %g, want 0.25", out)
	}
}

// TestDistillNeverBelowBestInput: whenever every round of the schedule
// postselects successfully, the surviving fidelity is at least the best
// input — the schedule-level guarantee that raw recurrence (which can land
// below the better of two unequal inputs) does not give.
func TestDistillNeverBelowBestInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	allAccepted := 0
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(5)
		att := make([]float64, n)
		for i := range att {
			att[i] = 0.5 + 0.5*rng.Float64()
		}
		// The schedule contract: caller sorts descending.
		for i := 1; i < n; i++ {
			for j := i; j > 0 && att[j] > att[j-1]; j-- {
				att[j], att[j-1] = att[j-1], att[j]
			}
		}
		best := att[0]
		w, ok, rounds, accepted := protocol.Distill(att, int64(trial))
		if rounds < accepted {
			t.Fatalf("accepted %d > rounds %d", accepted, rounds)
		}
		if ok && (w < protocol.MinWernerFidelity-tol || w > 1+tol) {
			t.Fatalf("Distill out of range: %g", w)
		}
		if accepted == rounds {
			allAccepted++
			if !ok {
				t.Fatalf("all rounds accepted but no survivor")
			}
			if w < best-tol {
				t.Fatalf("Distill = %g below best input %g with all rounds accepted (att %v)", w, best, att)
			}
		}
	}
	if allAccepted < 200 {
		t.Fatalf("only %d/2000 trials had all-accepted schedules; draws suspiciously harsh", allAccepted)
	}
}

// TestDistillCounterexampleWithoutGuard documents why the schedule keeps
// max(output, bank): raw recurrence on very unequal inputs lands below the
// better input.
func TestDistillCounterexampleWithoutGuard(t *testing.T) {
	out, _ := protocol.PurifyWerner(0.99, 0.51)
	if out >= 0.99 {
		t.Fatalf("expected raw recurrence below best input, got %g", out)
	}
	if out < 0.7 || out > 0.8 {
		t.Fatalf("counterexample drifted: PurifyWerner(0.99, 0.51) = %g, expected ≈0.753", out)
	}
}

// TestDrawProperties: draws are deterministic in (seed, stream, index),
// land in [0,1), and distinct coordinates decorrelate.
func TestDrawProperties(t *testing.T) {
	seen := make(map[float64]bool)
	for stream := uint64(0); stream < 8; stream++ {
		for idx := uint64(0); idx < 8; idx++ {
			d := protocol.Draw(12345, stream, idx)
			if d < 0 || d >= 1 || math.IsNaN(d) {
				t.Fatalf("Draw(12345,%d,%d) = %g outside [0,1)", stream, idx, d)
			}
			if d != protocol.Draw(12345, stream, idx) {
				t.Fatalf("Draw not deterministic at (%d,%d)", stream, idx)
			}
			seen[d] = true
		}
	}
	if len(seen) < 60 {
		t.Fatalf("only %d/64 distinct draws; coordinates collide", len(seen))
	}
	if protocol.Draw(1, 0, 0) == protocol.Draw(2, 0, 0) {
		t.Fatalf("draws insensitive to seed")
	}
	// The reserved purification stream must not collide with small
	// path-attempt streams.
	if protocol.Draw(7, protocol.PurifyStream, 0) == protocol.Draw(7, 0, 0) {
		t.Fatalf("PurifyStream collides with attempt stream 0")
	}
}

// TestPairKeyMatchesBytesFold pins the allocation-free byte-buffer hash the
// serving fast path uses against the canonical Sprintf-based PairKey.
func TestPairKeyMatchesBytesFold(t *testing.T) {
	cases := []struct {
		src, dst string
		id       int
		at       int64
	}{
		{"or-gs", "mem-gs", 1, 0},
		{"a", "b", 42, 7_200_000_000_000},
		{"", "", 0, -1},
		{"x|y", "z", -3, math.MaxInt64},
	}
	for _, c := range cases {
		var buf []byte
		buf = append(buf, c.src...)
		buf = append(buf, '|')
		buf = append(buf, c.dst...)
		buf = append(buf, '|')
		buf = strconv.AppendInt(buf, int64(c.id), 10)
		buf = append(buf, '|')
		buf = strconv.AppendInt(buf, c.at, 10)
		if got, want := runner.FNV64aBytes(buf), protocol.PairKey(c.src, c.dst, c.id, c.at); got != want {
			t.Errorf("bytes fold %x != PairKey %x for %+v", got, want, c)
		}
	}
}

// TestRootWernerRoundTrip: the two convention conversions invert each other
// on the shared domain and clamp outside it.
func TestRootWernerRoundTrip(t *testing.T) {
	for f := 0.5; f <= 1.0; f += 0.01 {
		w := protocol.WernerFromRoot(f)
		if back := protocol.RootFromWerner(w); math.Abs(back-f) > tol {
			t.Errorf("round trip %g -> %g -> %g", f, w, back)
		}
	}
	if w := protocol.WernerFromRoot(math.NaN()); w != protocol.MinWernerFidelity {
		t.Errorf("WernerFromRoot(NaN) = %g, want floor", w)
	}
	if w := protocol.WernerFromRoot(2); w != 1 {
		t.Errorf("WernerFromRoot(2) = %g, want 1", w)
	}
	if r := protocol.RootFromWerner(0); r != 0.5 {
		t.Errorf("RootFromWerner(0) = %g, want clamp to 0.5", r)
	}
}

// TestConfigValidate covers the enabled/disabled split and each rejection.
func TestConfigValidate(t *testing.T) {
	if (protocol.Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if err := (protocol.Config{}).Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	good := protocol.Config{MemoryT2: 10 * time.Millisecond, SwapSuccess: 0.5, PurifyPaths: 2, Seed: 9}
	if !good.Enabled() {
		t.Fatal("configured protocol reports disabled")
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config invalid: %v", err)
	}
	bad := []protocol.Config{
		{MemoryT2: -time.Second, SwapSuccess: 1},
		{SwapSuccess: 0, Seed: 1},
		{SwapSuccess: 1.5},
		{SwapSuccess: 1, PurifyPaths: -1},
		{SwapSuccess: 1, PurifyPaths: 1000},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d (%+v) accepted", i, c)
		}
	}
	if got := (protocol.Config{SwapSuccess: 1}).Paths(); got != 1 {
		t.Errorf("Paths() = %d with zero budget, want 1", got)
	}
	if got := (protocol.Config{SwapSuccess: 1, PurifyPaths: 3}).Paths(); got != 3 {
		t.Errorf("Paths() = %d, want 3", got)
	}
}

// TestChainSeedDistinctKeys: distinct pair keys derive distinct chain seeds
// (splitmix injectivity), and the same key replays identically.
func TestChainSeedDistinctKeys(t *testing.T) {
	seen := make(map[int64]string)
	for i := 0; i < 100; i++ {
		key := protocol.PairKey("src", "dst", i, int64(i)*1e9)
		s := protocol.ChainSeed(5, key)
		if s != protocol.ChainSeed(5, key) {
			t.Fatal("ChainSeed not deterministic")
		}
		id := fmt.Sprintf("%d", i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("chain seed collision between request %s and %s", prev, id)
		}
		seen[s] = id
	}
}
