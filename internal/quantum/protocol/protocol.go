// Package protocol implements the scalar entanglement-protocol layer the
// serving experiments compose per request: time-dependent T2 dephasing of a
// pair stored in memory while it waits for its partner, entanglement-swap
// chains over multi-hop routes with seed-derived per-swap success draws, and
// DEJMPS-style recurrence purification that spends redundant disjoint routes
// to buy fidelity.
//
// All state is Werner-twirled: a pair is summarized by its projection
// fidelity F = ⟨Φ+|ρ|Φ+⟩ ∈ [1/4, 1], the fixed point of bilateral twirling.
// Composition then has closed forms — dephasing, swapping and recurrence
// purification each map Werner parameters to Werner parameters — which is
// what keeps the per-request protocol evaluation a handful of float ops on
// the serving fast path. Each closed form is pinned (to float tolerance)
// against the exact density-matrix channels in internal/quantum:
// StoreBellPair for DephaseWerner, Swap for SwapWerner and Purify for
// PurifyWerner; see protocol_test.go.
//
// The repo-wide fidelity convention elsewhere is the root fidelity
// sqrt(⟨Φ+|ρ|Φ+⟩) (see quantum.BellFidelity). WernerFromRoot / RootFromWerner
// convert at the boundary.
//
// Everything is deterministic: success draws are pure functions of
// (Config.Seed, request identity, event index) via the splitmix64 TaskSeed
// derivation — no clocks, no shared RNG state — so runs are reproducible and
// worker-count invariant by construction.
package protocol

import (
	"fmt"
	"math"
	"time"

	"qntn/internal/runner"
)

// MinWernerFidelity is the Φ+ projection fidelity of the maximally mixed
// state — the floor of every Werner-model composition in this package.
const MinWernerFidelity = 0.25

// PurifyStream is the Draw stream index reserved for the distillation
// schedule's per-round success draws. Swap chains draw from stream = attempt
// index, which is always small, so the reserved stream never collides.
const PurifyStream = ^uint64(0)

// Config parameterizes the protocol layer. The zero value disables it
// entirely: protocol-off runs never touch this package. It is distinct from
// Params.MemoryT2, which drives the DES timing experiment's end-node
// dephasing; Config.MemoryT2 governs the swap-chain storage of this layer.
type Config struct {
	// MemoryT2 is the coherence time of the relay and end-node memories a
	// multi-hop pair dephases in while the chain's heralding completes.
	// Zero means ideal memories.
	MemoryT2 time.Duration
	// SwapSuccess is the per-swap Bell-state-measurement success
	// probability in (0, 1]: 0.5 models a linear-optics BSM, 1 a
	// deterministic swap. Each relay of a route performs one swap.
	SwapSuccess float64
	// PurifyPaths is the distillation budget k: each request attempts its
	// primary route plus up to k−1 further internally-vertex-disjoint
	// routes, and the surviving pairs are pumped pairwise (DEJMPS-style
	// recurrence). 0 or 1 disables purification.
	PurifyPaths int
	// Seed varies every success draw of the layer.
	Seed int64
}

// Enabled reports whether the protocol layer is configured at all.
func (c Config) Enabled() bool { return c != Config{} }

// Paths returns the effective disjoint-route budget (at least the primary).
func (c Config) Paths() int {
	if c.PurifyPaths < 1 {
		return 1
	}
	return c.PurifyPaths
}

// maxPurifyPaths bounds the per-request route-extraction work.
const maxPurifyPaths = 64

// Validate reports whether an enabled config is self-consistent. The zero
// (disabled) config is always valid.
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	switch {
	case c.MemoryT2 < 0:
		return fmt.Errorf("protocol: negative memory T2")
	case c.SwapSuccess <= 0 || c.SwapSuccess > 1:
		return fmt.Errorf("protocol: swap success probability %g outside (0,1]", c.SwapSuccess)
	case c.PurifyPaths < 0 || c.PurifyPaths > maxPurifyPaths:
		return fmt.Errorf("protocol: purify path budget %d outside [0,%d]", c.PurifyPaths, maxPurifyPaths)
	}
	return nil
}

// ClampWerner forces a projection fidelity into the Werner domain
// [MinWernerFidelity, 1], mapping NaN to the floor.
func ClampWerner(f float64) float64 {
	if math.IsNaN(f) || f < MinWernerFidelity {
		return MinWernerFidelity
	}
	if f > 1 {
		return 1
	}
	return f
}

// WernerFromRoot converts a root-convention Bell fidelity (the repo-wide
// sqrt(⟨Φ+|ρ|Φ+⟩) convention of quantum.BellFidelity, in [1/2, 1] for the
// link models here) to the projection fidelity this package composes in.
func WernerFromRoot(f float64) float64 {
	return ClampWerner(f * f)
}

// RootFromWerner converts a projection fidelity back to the repo-wide root
// convention.
func RootFromWerner(w float64) float64 {
	r := math.Sqrt(ClampWerner(w))
	if math.IsNaN(r) {
		return 0.5 // unreachable after the clamp; keeps the domain explicit
	}
	return r
}

// wernerP maps a projection fidelity to the Werner mixing parameter
// p = (4F−1)/3, the weight of the Φ+ component over the maximally mixed
// background.
func wernerP(w float64) float64 { return (4*w - 1) / 3 }

// SwapWerner returns the fidelity of the pair produced by a Bell-state
// measurement connecting two Werner pairs: mixing parameters multiply,
// F_out = (1 + 3·p1·p2)/4. Monotone non-increasing in either input, with
// equality only at perfect pairs — every swap of a chain costs fidelity.
func SwapWerner(w1, w2 float64) float64 {
	p := wernerP(ClampWerner(w1)) * wernerP(ClampWerner(w2))
	return (1 + 3*p) / 4
}

// DephaseWerner applies phase damping to both halves of a Werner pair
// stored for wait in memories with coherence time t2: the Φ+ component's
// coherence decays by g = exp(−2·wait/T2) (exactly quantum.DephasingGamma's
// γ = 1−g), giving F = p·(1+g)/2 + (1−p)/4. Monotone non-increasing in
// wait, with floor (1+p)/4 ≥ 1/4. t2 ≤ 0 means ideal memories. The result
// is re-twirled to Werner form for further composition — the standard
// repeater-chain approximation, exact for the fidelity itself (asserted
// against StoreBellPair in the tests).
func DephaseWerner(w float64, wait, t2 time.Duration) float64 {
	cw := ClampWerner(w)
	if t2 <= 0 || wait <= 0 {
		return cw
	}
	g := math.Exp(-2 * wait.Seconds() / t2.Seconds())
	p := wernerP(cw)
	return p*(1+g)/2 + (1-p)/4
}

// PurifyWerner runs one DEJMPS-style recurrence round on two Werner pairs
// and returns the output fidelity and the postselection success
// probability:
//
//	F_out = (F1·F2 + (1−F1)(1−F2)/9) / D
//	D     =  F1·F2 + F1(1−F2)/3 + F2(1−F1)/3 + 5(1−F1)(1−F2)/9
//
// For equal inputs above 1/2 the round strictly improves fidelity; for
// unequal inputs the output can land BELOW the better input (e.g.
// F1 = 0.99, F2 = 0.51 → F_out ≈ 0.753), which is why the distillation
// schedule keeps max(output, banked input) rather than trusting the round.
func PurifyWerner(w1, w2 float64) (out, pSuccess float64) {
	f1, f2 := ClampWerner(w1), ClampWerner(w2)
	num := f1*f2 + (1-f1)*(1-f2)/9
	den := f1*f2 + f1*(1-f2)/3 + f2*(1-f1)/3 + 5*(1-f1)*(1-f2)/9
	if math.IsNaN(den) || den <= 0 {
		return f1, 0 // unreachable on the clamped domain; keeps the division total
	}
	return num / den, den
}

// Distill runs the greedy recurrence-pumping schedule over the Werner
// fidelities of one request's successful path attempts, which the caller
// sorts descending: the best pair is the bank; each further pair is pumped
// into it with PurifyWerner, drawing that round's postselection outcome
// from Draw(chainSeed, PurifyStream, round). An accepted round keeps
// max(output, bank) — recurrence can land below the better input for very
// unequal pairs — so under all-accepted draws the output never falls below
// the best input (the property tests pin this). A failed round destroys
// both pairs, making the next attempt the new bank; ok reports whether any
// pair survived the schedule (w is meaningless when ok is false). rounds
// and accepted count the draws taken and the ones that postselected.
//
//qntn:hotpath once per protocol-served request
func Distill(att []float64, chainSeed int64) (w float64, ok bool, rounds, accepted int) {
	if len(att) == 0 {
		return 0, false, 0, 0
	}
	result := att[0]
	valid := true
	var r uint64
	for i := 1; i < len(att); i++ {
		if !valid {
			result = att[i]
			valid = true
			continue
		}
		fOut, pOK := PurifyWerner(result, att[i])
		rounds++
		if Draw(chainSeed, PurifyStream, r) < pOK {
			accepted++
			if fOut > result {
				result = fOut
			}
		} else {
			valid = false
		}
		r++
	}
	return result, valid, rounds, accepted
}

// PairKey hashes the identity of one request attempt — endpoints, request
// ID and the evaluation instant — into the task index its draw seed derives
// from. A queued request retried at a later topology instant therefore
// redraws independently, while replays of the same instant are identical.
// The serving fast path computes the same hash allocation-free over the
// identical byte string (runner.FNV64aBytes); the equality is pinned by a
// test.
func PairKey(src, dst string, id int, atNanos int64) uint64 {
	return runner.FNV64a(fmt.Sprintf("%s|%s|%d|%d", src, dst, id, atNanos))
}

// ChainSeed derives the per-request draw seed from the layer seed and a
// PairKey.
func ChainSeed(base int64, pairKey uint64) int64 {
	return runner.TaskSeed(base, pairKey)
}

// Draw returns the uniform [0,1) variate of event (stream, index) under the
// request's chain seed: swap s of path attempt j draws Draw(seed, j, s),
// distillation round r draws Draw(seed, PurifyStream, r). Pure function —
// no RNG state — so protocol outcomes are replayable from the seed alone.
func Draw(chainSeed int64, stream, index uint64) float64 {
	return float64(uint64(runner.TaskSeed(runner.TaskSeed(chainSeed, stream), index))>>11) / (1 << 53)
}
