package quantum

import (
	"fmt"
	"math"
)

// Channel is a completely positive trace-preserving map described by Kraus
// operators, applied to density matrices as rho' = sum_k K_k rho K_k†
// (the paper's Eq. 4).
type Channel struct {
	Name  string
	Kraus []*Matrix
}

// Apply returns the channel output sum_k K rho K†.
func (c *Channel) Apply(rho *Matrix) *Matrix {
	if len(c.Kraus) == 0 {
		return rho.Clone()
	}
	out := NewMatrix(rho.N)
	for _, k := range c.Kraus {
		if k.N != rho.N {
			panic(fmt.Sprintf("quantum: channel %q: Kraus dim %d vs state dim %d", c.Name, k.N, rho.N))
		}
		term := k.Mul(rho).Mul(k.Dagger())
		out = out.Add(term)
	}
	return out
}

// IsTracePreserving verifies sum_k K† K = I within tol.
func (c *Channel) IsTracePreserving(tol float64) bool {
	if len(c.Kraus) == 0 {
		return true
	}
	n := c.Kraus[0].N
	sum := NewMatrix(n)
	for _, k := range c.Kraus {
		sum = sum.Add(k.Dagger().Mul(k))
	}
	return sum.MaxAbsDiff(Identity(n)) <= tol
}

// AmplitudeDamping returns the single-qubit amplitude-damping channel with
// transmissivity eta, with Kraus operators exactly as in the paper's
// Eq. (3):
//
//	K0 = [[1, 0], [0, sqrt(eta)]]
//	K1 = [[0, sqrt(1-eta)], [0, 0]]
func AmplitudeDamping(eta float64) (*Channel, error) {
	// Tolerate tiny floating-point overshoot from products/sweeps of
	// transmissivities; reject anything materially outside [0,1].
	const slack = 1e-9
	if eta < -slack || eta > 1+slack || math.IsNaN(eta) {
		return nil, fmt.Errorf("quantum: amplitude damping transmissivity %v outside [0,1]", eta)
	}
	if eta < 0 {
		eta = 0
	} else if eta > 1 {
		eta = 1
	}
	k0 := NewMatrix(2)
	k0.Set(0, 0, 1)
	k0.Set(1, 1, complex(math.Sqrt(eta), 0))
	k1 := NewMatrix(2)
	k1.Set(0, 1, complex(math.Sqrt(1-eta), 0))
	return &Channel{Name: fmt.Sprintf("amplitude-damping(η=%.4f)", eta), Kraus: []*Matrix{k0, k1}}, nil
}

// OnQubit lifts a single-qubit channel to act on qubit k (0 = most
// significant) of an n-qubit system, tensoring identities on the remaining
// qubits.
func (c *Channel) OnQubit(k, nQubits int) *Channel {
	if k < 0 || k >= nQubits {
		panic(fmt.Sprintf("quantum: OnQubit: qubit %d out of range [0,%d)", k, nQubits))
	}
	lifted := make([]*Matrix, 0, len(c.Kraus))
	for _, op := range c.Kraus {
		if op.N != 2 {
			panic("quantum: OnQubit requires a single-qubit channel")
		}
		m := Identity(1)
		for q := 0; q < nQubits; q++ {
			if q == k {
				m = m.Tensor(op)
			} else {
				m = m.Tensor(Identity(2))
			}
		}
		lifted = append(lifted, m)
	}
	return &Channel{Name: fmt.Sprintf("%s@qubit%d/%d", c.Name, k, nQubits), Kraus: lifted}
}

// Compose returns the channel that applies c first and then d
// (d ∘ c). Kraus operators multiply pairwise.
func Compose(c, d *Channel) *Channel {
	ops := make([]*Matrix, 0, len(c.Kraus)*len(d.Kraus))
	for _, kd := range d.Kraus {
		for _, kc := range c.Kraus {
			ops = append(ops, kd.Mul(kc))
		}
	}
	return &Channel{Name: d.Name + "∘" + c.Name, Kraus: ops}
}

// DampBellArm applies an amplitude-damping channel of transmissivity eta to
// the second qubit of a two-qubit state — the paper's model of sending one
// photon of a Bell pair across a lossy link.
func DampBellArm(rho *Matrix, eta float64) (*Matrix, error) {
	if rho.N != 4 {
		return nil, fmt.Errorf("quantum: DampBellArm requires a 2-qubit state, got dim %d", rho.N)
	}
	ad, err := AmplitudeDamping(eta)
	if err != nil {
		return nil, err
	}
	return ad.OnQubit(1, 2).Apply(rho), nil
}

// DistributeBellPair prepares |Φ+><Φ+| and sends the second qubit through
// an amplitude-damping channel with end-to-end transmissivity eta,
// returning the shared state. This is the elementary operation of the
// paper's entanglement distribution experiments.
func DistributeBellPair(eta float64) (*Matrix, error) {
	return DampBellArm(PhiPlus().Density(), eta)
}
