package quantum

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFidelitySelfIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		rho := randomDensity(rng, 2)
		f, err := Fidelity(rho, rho)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(f, 1, 1e-8) {
			t.Fatalf("F(rho,rho) = %g, want 1", f)
		}
	}
}

func TestFidelitySymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rho := randomDensity(rng, 2)
		sigma := randomDensity(rng, 2)
		f1, err1 := Fidelity(rho, sigma)
		f2, err2 := Fidelity(sigma, rho)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEq(f1, f2, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFidelityPurePureIsOverlap(t *testing.T) {
	// F(|a><a|, |b><b|) = |<a|b>|.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		a := randomPure(rng, 4)
		b := randomPure(rng, 4)
		f, err := Fidelity(a.Density(), b.Density())
		if err != nil {
			t.Fatal(err)
		}
		want := cmplx.Abs(a.InnerProduct(b))
		if !almostEq(f, want, 1e-8) {
			t.Fatalf("pure-pure fidelity %g, want overlap %g", f, want)
		}
	}
}

func TestFidelityWithPureMatchesGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		rho := randomDensity(rng, 2)
		psi := randomPure(rng, 4)
		fast := FidelityWithPure(rho, psi)
		gen, err := Fidelity(rho, psi.Density())
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(fast, gen, 1e-7) {
			t.Fatalf("fast pure fidelity %g != general %g", fast, gen)
		}
	}
}

func TestWernerFidelityClosedForm(t *testing.T) {
	// Root fidelity of a Werner state against Φ+ is sqrt(p + (1-p)/4).
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
		rho := WernerState(p)
		got := BellFidelity(rho)
		want := math.Sqrt(p + (1-p)/4)
		if !almostEq(got, want, 1e-10) {
			t.Errorf("Werner(p=%g): fidelity %g, want %g", p, got, want)
		}
	}
}

func TestDampedBellMatchesAnalytic(t *testing.T) {
	// The load-bearing identity of the whole experiment harness: Bell pair
	// with one amplitude-damped arm has root fidelity (1+sqrt(eta))/2.
	for eta := 0.0; eta <= 1.0001; eta += 0.05 {
		rho, err := DistributeBellPair(eta)
		if err != nil {
			t.Fatal(err)
		}
		gotFast := BellFidelity(rho)
		want := AnalyticBellFidelity(eta)
		if !almostEq(gotFast, want, 1e-10) {
			t.Fatalf("eta=%.2f: BellFidelity %g, want %g", eta, gotFast, want)
		}
		gotGen, err := Fidelity(rho, PhiPlus().Density())
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(gotGen, want, 1e-7) {
			t.Fatalf("eta=%.2f: general fidelity %g, want %g", eta, gotGen, want)
		}
	}
}

func TestFidelitySquaredIsSquare(t *testing.T) {
	rho, err := DistributeBellPair(0.7)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Fidelity(rho, PhiPlus().Density())
	if err != nil {
		t.Fatal(err)
	}
	f2, err := FidelitySquared(rho, PhiPlus().Density())
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f2, f*f, 1e-12) {
		t.Fatalf("FidelitySquared %g != %g²", f2, f)
	}
}

func TestPaperFig5Anchor(t *testing.T) {
	// The paper's Fig. 5 finding: transmissivity 0.7 yields fidelity > 0.9.
	f := AnalyticBellFidelity(0.7)
	if f <= 0.9 {
		t.Fatalf("fidelity at eta=0.7 is %g, paper requires > 0.9", f)
	}
	// And the squared (literal Eq. 5) value does NOT exceed 0.9 — this is
	// the discrepancy documented in DESIGN.md.
	if f*f > 0.9 {
		t.Fatalf("squared fidelity at eta=0.7 is %g; expected the documented < 0.9", f*f)
	}
}

func TestAnalyticBothArmsReducesToOneArm(t *testing.T) {
	// With one arm lossless the both-arm formula must match the one-arm
	// formula.
	for _, eta := range []float64{0, 0.3, 0.7, 1} {
		got := AnalyticBellFidelityBothArms(eta, 1)
		want := AnalyticBellFidelity(eta)
		if !almostEq(got, want, 1e-12) {
			t.Errorf("both-arms(η=%g, 1) = %g, want %g", eta, got, want)
		}
	}
}

func TestAnalyticBothArmsMatchesNumeric(t *testing.T) {
	for _, etas := range [][2]float64{{0.9, 0.8}, {0.7, 0.7}, {0.5, 1}, {0.95, 0.6}} {
		rho := PhiPlus().Density()
		ad1, err := AmplitudeDamping(etas[0])
		if err != nil {
			t.Fatal(err)
		}
		ad2, err := AmplitudeDamping(etas[1])
		if err != nil {
			t.Fatal(err)
		}
		rho = ad1.OnQubit(0, 2).Apply(rho)
		rho = ad2.OnQubit(1, 2).Apply(rho)
		got := BellFidelity(rho)
		want := AnalyticBellFidelityBothArms(etas[0], etas[1])
		if !almostEq(got, want, 1e-10) {
			t.Errorf("both arms %v: numeric %g, analytic %g", etas, got, want)
		}
	}
}

func TestFidelityMonotoneInEta(t *testing.T) {
	prev := -1.0
	for eta := 0.0; eta <= 1.0001; eta += 0.01 {
		f := AnalyticBellFidelity(eta)
		if f < prev {
			t.Fatalf("fidelity not monotone at eta=%.2f", eta)
		}
		prev = f
	}
}

func randomPure(rng *rand.Rand, dim int) *Vector {
	v := NewVector(dim)
	for i := range v.Data {
		v.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return v.Normalize()
}
