package quantum

import (
	"fmt"
	"math"
)

// Two-qubit state tomography by linear inversion: any two-qubit density
// matrix decomposes uniquely over the Pauli basis as
//
//	ρ = ¼ Σ_{i,j∈{I,X,Y,Z}} t_ij · σ_i ⊗ σ_j,   t_ij = Tr(ρ σ_i⊗σ_j).
//
// Measuring the sixteen expectation values t_ij (fifteen plus the trivial
// t_II = 1) is how an experiment — like the paper's fidelity measurements —
// would actually characterize a distributed pair.

// pauliBasis returns {I, X, Y, Z}.
func pauliBasis() []*Matrix {
	return []*Matrix{Identity(2), PauliX(), PauliY(), PauliZ()}
}

// PauliExpectations returns the full 4×4 table t_ij = Tr(ρ σ_i⊗σ_j) with
// indices ordered I, X, Y, Z. t[0][0] is the trace (1 for a normalized
// state).
func PauliExpectations(rho *Matrix) ([4][4]float64, error) {
	var t [4][4]float64
	if rho.N != 4 {
		return t, fmt.Errorf("quantum: tomography needs a 2-qubit state, got dim %d", rho.N)
	}
	basis := pauliBasis()
	for i, si := range basis {
		for j, sj := range basis {
			t[i][j] = real(si.Tensor(sj).Mul(rho).Trace())
		}
	}
	return t, nil
}

// ReconstructTwoQubit rebuilds the density matrix from a Pauli expectation
// table via linear inversion. The result is exactly the measured state
// when the table is exact; with noisy estimates it may have small negative
// eigenvalues (the usual caveat of linear-inversion tomography).
func ReconstructTwoQubit(t [4][4]float64) *Matrix {
	basis := pauliBasis()
	rho := NewMatrix(4)
	for i, si := range basis {
		for j, sj := range basis {
			if t[i][j] == 0 {
				continue
			}
			rho = rho.Add(si.Tensor(sj).Scale(complex(t[i][j]/4, 0)))
		}
	}
	return rho
}

// FidelityFromTomography estimates the Bell (root) fidelity directly from
// a Pauli expectation table, without reconstructing the full matrix:
// <Φ+|ρ|Φ+> = ¼ (1 + t_XX − t_YY + t_ZZ).
func FidelityFromTomography(t [4][4]float64) float64 {
	overlap := (t[0][0] + t[1][1] - t[2][2] + t[3][3]) / 4
	if overlap < 0 {
		overlap = 0
	} else if overlap > 1 {
		overlap = 1
	}
	return math.Sqrt(overlap)
}
