package quantum

import (
	"fmt"
	"math"
	"sort"
)

// CorrelationMatrix returns the 3×3 real correlation matrix
// T_ij = Tr(ρ σ_i ⊗ σ_j) of a two-qubit state.
func CorrelationMatrix(rho *Matrix) ([3][3]float64, error) {
	var t [3][3]float64
	if rho.N != 4 {
		return t, fmt.Errorf("quantum: correlation matrix needs a 2-qubit state, got dim %d", rho.N)
	}
	paulis := []*Matrix{PauliX(), PauliY(), PauliZ()}
	for i, si := range paulis {
		for j, sj := range paulis {
			op := si.Tensor(sj)
			t[i][j] = real(op.Mul(rho).Trace())
		}
	}
	return t, nil
}

// CHSHMax returns the maximal CHSH value S achievable on the state with
// optimally chosen measurement settings, via the Horodecki criterion:
// S = 2·sqrt(m1 + m2) where m1 ≥ m2 are the two largest eigenvalues of
// TᵀT. States with S > 2 violate the CHSH inequality (certifiable
// nonlocality); the maximum for quantum states is 2√2 ≈ 2.828.
func CHSHMax(rho *Matrix) (float64, error) {
	t, err := CorrelationMatrix(rho)
	if err != nil {
		return 0, err
	}
	// M = TᵀT as a complex Hermitian matrix for the eigensolver.
	m := NewMatrix(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var sum float64
			for k := 0; k < 3; k++ {
				sum += t[k][i] * t[k][j]
			}
			m.Set(i, j, complex(sum, 0))
		}
	}
	eig, err := EigenHermitian(m)
	if err != nil {
		return 0, err
	}
	vals := append([]float64(nil), eig.Values...)
	sort.Float64s(vals)
	s := 2 * math.Sqrt(math.Max(0, vals[2]+vals[1]))
	return s, nil
}

// ViolatesCHSH reports whether the state certifiably violates the CHSH
// inequality (S > 2 beyond numerical tolerance).
func ViolatesCHSH(rho *Matrix) (bool, float64, error) {
	s, err := CHSHMax(rho)
	if err != nil {
		return false, 0, err
	}
	return s > 2+1e-9, s, nil
}

// CHSHThresholdEta returns the smallest one-arm amplitude-damping
// transmissivity at which a Bell pair still violates CHSH, found by bisection
// — the nonlocality analog of the paper's Fig. 5 fidelity threshold.
func CHSHThresholdEta() (float64, error) {
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		rho, err := DistributeBellPair(mid)
		if err != nil {
			return 0, err
		}
		ok, _, err := ViolatesCHSH(rho)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
