package quantum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTomographyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rho := randomDensity(rng, 2)
		tab, err := PauliExpectations(rho)
		if err != nil {
			return false
		}
		back := ReconstructTwoQubit(tab)
		return back.MaxAbsDiff(rho) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTomographyBellExpectations(t *testing.T) {
	tab, err := PauliExpectations(PhiPlus().Density())
	if err != nil {
		t.Fatal(err)
	}
	// Φ+ has t_II = 1, t_XX = 1, t_YY = -1, t_ZZ = 1, all else 0.
	want := [4][4]float64{}
	want[0][0], want[1][1], want[2][2], want[3][3] = 1, 1, -1, 1
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(tab[i][j]-want[i][j]) > 1e-12 {
				t.Fatalf("t[%d][%d] = %g, want %g", i, j, tab[i][j], want[i][j])
			}
		}
	}
}

func TestTomographyTraceEntry(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rho := randomDensity(rng, 2)
	tab, err := PauliExpectations(rho)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tab[0][0]-1) > 1e-10 {
		t.Fatalf("t_II = %g, want 1", tab[0][0])
	}
	// Every expectation is bounded by 1.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(tab[i][j]) > 1+1e-10 {
				t.Fatalf("t[%d][%d] = %g out of range", i, j, tab[i][j])
			}
		}
	}
}

func TestFidelityFromTomographyMatchesDirect(t *testing.T) {
	for _, eta := range []float64{0.3, 0.7, 0.95, 1} {
		rho, err := DistributeBellPair(eta)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := PauliExpectations(rho)
		if err != nil {
			t.Fatal(err)
		}
		got := FidelityFromTomography(tab)
		want := BellFidelity(rho)
		if math.Abs(got-want) > 1e-10 {
			t.Fatalf("eta=%g: tomographic fidelity %g, direct %g", eta, got, want)
		}
	}
}

func TestTomographyRejectsWrongDim(t *testing.T) {
	if _, err := PauliExpectations(Identity(2)); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestTomographyCorrelationSubmatrixMatchesCHSH(t *testing.T) {
	// The 3×3 lower block of the expectation table is the correlation
	// matrix used by the CHSH criterion.
	rng := rand.New(rand.NewSource(5))
	rho := randomDensity(rng, 2)
	tab, err := PauliExpectations(rho)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := CorrelationMatrix(rho)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(tab[i+1][j+1]-corr[i][j]) > 1e-12 {
				t.Fatalf("correlation mismatch at (%d,%d)", i, j)
			}
		}
	}
}
