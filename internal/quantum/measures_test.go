package quantum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConcurrenceBellStates(t *testing.T) {
	for i, bell := range BellStates() {
		c, err := Concurrence(bell.Density())
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(c, 1, 1e-8) {
			t.Fatalf("Bell state %d concurrence %g, want 1", i, c)
		}
	}
}

func TestConcurrenceSeparable(t *testing.T) {
	// Product states and the maximally mixed state are separable.
	for _, rho := range []*Matrix{
		Basis(4, 0).Density(),
		Basis(2, 0).Density().Tensor(Basis(2, 1).Density()),
		Identity(4).Scale(0.25),
	} {
		c, err := Concurrence(rho)
		if err != nil {
			t.Fatal(err)
		}
		if c > 1e-8 {
			t.Fatalf("separable state has concurrence %g", c)
		}
	}
}

func TestConcurrenceWernerClosedForm(t *testing.T) {
	// Werner state: C = max(0, (3p−1)/2).
	for _, p := range []float64{0, 0.2, 1.0 / 3.0, 0.5, 0.8, 1} {
		c, err := Concurrence(WernerState(p))
		if err != nil {
			t.Fatal(err)
		}
		want := math.Max(0, (3*p-1)/2)
		if !almostEq(c, want, 1e-7) {
			t.Fatalf("Werner(%g) concurrence %g, want %g", p, c, want)
		}
	}
}

func TestConcurrenceDampedPair(t *testing.T) {
	// One-arm amplitude damping: C = sqrt(eta) in closed form.
	for _, eta := range []float64{0.25, 0.5, 0.7, 0.9, 1} {
		rho, err := DistributeBellPair(eta)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Concurrence(rho)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(c, math.Sqrt(eta), 1e-7) {
			t.Fatalf("eta=%g: concurrence %g, want %g", eta, c, math.Sqrt(eta))
		}
	}
}

func TestEntanglementOfFormationLimits(t *testing.T) {
	ef, err := EntanglementOfFormation(PhiPlus().Density())
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(ef, 1, 1e-7) {
		t.Fatalf("Bell E_F %g, want 1 ebit", ef)
	}
	ef, err = EntanglementOfFormation(Identity(4).Scale(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if ef > 1e-8 {
		t.Fatalf("mixed-state E_F %g, want 0", ef)
	}
	// Monotone in concurrence: damped pairs order correctly.
	lo, _ := DistributeBellPair(0.4)
	hi, _ := DistributeBellPair(0.9)
	efLo, err := EntanglementOfFormation(lo)
	if err != nil {
		t.Fatal(err)
	}
	efHi, err := EntanglementOfFormation(hi)
	if err != nil {
		t.Fatal(err)
	}
	if efHi <= efLo {
		t.Fatal("E_F not monotone in transmissivity")
	}
}

func TestNegativityBellAndSeparable(t *testing.T) {
	n, err := Negativity(PhiPlus().Density())
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(n, 0.5, 1e-8) {
		t.Fatalf("Bell negativity %g, want 0.5", n)
	}
	n, err = Negativity(Basis(4, 0).Density())
	if err != nil {
		t.Fatal(err)
	}
	if n > 1e-9 {
		t.Fatalf("separable negativity %g", n)
	}
}

func TestNegativityWernerClosedForm(t *testing.T) {
	// Werner: N = max(0, (3p−1)/4).
	for _, p := range []float64{0, 1.0 / 3.0, 0.6, 1} {
		n, err := Negativity(WernerState(p))
		if err != nil {
			t.Fatal(err)
		}
		want := math.Max(0, (3*p-1)/4)
		if !almostEq(n, want, 1e-8) {
			t.Fatalf("Werner(%g) negativity %g, want %g", p, n, want)
		}
	}
}

func TestPartialTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rho := randomDensity(rng, 2)
		for q := 0; q < 2; q++ {
			back := PartialTranspose(PartialTranspose(rho, q, 2), q, 2)
			if back.MaxAbsDiff(rho) > 1e-12 {
				return false
			}
		}
		// Transposing both subsystems equals the full transpose.
		both := PartialTranspose(PartialTranspose(rho, 0, 2), 1, 2)
		full := NewMatrix(4)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				full.Set(i, j, rho.At(j, i))
			}
		}
		return both.MaxAbsDiff(full) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasuresAgreeOnEntanglementDetection(t *testing.T) {
	// For two-qubit states, C > 0 iff N > 0 (PPT is necessary and
	// sufficient at this dimension).
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		rho := randomDensity(rng, 2)
		c, err := Concurrence(rho)
		if err != nil {
			t.Fatal(err)
		}
		n, err := Negativity(rho)
		if err != nil {
			t.Fatal(err)
		}
		if (c > 1e-6) != (n > 1e-6) {
			t.Fatalf("measures disagree: C=%g N=%g", c, n)
		}
	}
}

func TestMeasuresRejectWrongDims(t *testing.T) {
	if _, err := Concurrence(Identity(2)); err == nil {
		t.Fatal("concurrence accepted wrong dim")
	}
	if _, err := Negativity(Identity(8)); err == nil {
		t.Fatal("negativity accepted wrong dim")
	}
}

func TestConjugate(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 1, complex(1, 2))
	c := m.Conj()
	if c.At(0, 1) != complex(1, -2) {
		t.Fatal("conjugate wrong")
	}
}
