package quantum

import (
	"math"
	"testing"
)

func TestSwapIdealPairs(t *testing.T) {
	// Swapping two perfect Bell pairs yields a perfect Bell pair in every
	// branch, with uniform outcome probabilities 1/4.
	ideal := PhiPlus().Density()
	avg, outcomes, err := Swap(ideal, ideal)
	if err != nil {
		t.Fatal(err)
	}
	if got := BellFidelity(avg); !almostEq(got, 1, 1e-9) {
		t.Fatalf("average swapped fidelity %g, want 1", got)
	}
	var total float64
	for _, o := range outcomes {
		total += o.Probability
		if !almostEq(o.Probability, 0.25, 1e-9) {
			t.Errorf("outcome %d probability %g, want 0.25", o.Outcome, o.Probability)
		}
		if o.State == nil {
			t.Fatalf("outcome %d has nil state", o.Outcome)
		}
		if f := BellFidelity(o.State); !almostEq(f, 1, 1e-9) {
			t.Errorf("outcome %d fidelity %g, want 1 (Pauli correction wrong?)", o.Outcome, f)
		}
	}
	if !almostEq(total, 1, 1e-9) {
		t.Fatalf("outcome probabilities sum to %g", total)
	}
}

func TestSwapProbabilitiesSumToOne(t *testing.T) {
	a, err := DistributeBellPair(0.8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DistributeBellPair(0.6)
	if err != nil {
		t.Fatal(err)
	}
	avg, outcomes, err := Swap(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, o := range outcomes {
		total += o.Probability
	}
	if !almostEq(total, 1, 1e-9) {
		t.Fatalf("probabilities sum to %g", total)
	}
	if tr := real(avg.Trace()); !almostEq(tr, 1, 1e-9) {
		t.Fatalf("average state trace %g", tr)
	}
	if !avg.IsHermitian(1e-9) {
		t.Fatal("average state not Hermitian")
	}
}

func TestSwapChainSingleHop(t *testing.T) {
	// A one-hop chain is just a distributed pair.
	for _, eta := range []float64{0.5, 0.9, 1} {
		state, err := SwapChain([]float64{eta})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := BellFidelity(state), AnalyticBellFidelity(eta); !almostEq(got, want, 1e-10) {
			t.Fatalf("eta=%g: fidelity %g, want %g", eta, got, want)
		}
	}
}

func TestSwapChainDegradesWithHops(t *testing.T) {
	// Adding lossy hops can only reduce end-to-end fidelity.
	prev := 2.0
	for hops := 1; hops <= 3; hops++ {
		etas := make([]float64, hops)
		for i := range etas {
			etas[i] = 0.9
		}
		state, err := SwapChain(etas)
		if err != nil {
			t.Fatal(err)
		}
		f := BellFidelity(state)
		if f >= prev {
			t.Fatalf("fidelity did not decrease at %d hops: %g >= %g", hops, f, prev)
		}
		if f < 0.5 {
			t.Fatalf("fidelity %g at %d hops implausibly low for eta=0.9 links", f, hops)
		}
		prev = f
	}
}

func TestSwapChainPerfectLinks(t *testing.T) {
	state, err := SwapChain([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if f := BellFidelity(state); !almostEq(f, 1, 1e-9) {
		t.Fatalf("perfect chain fidelity %g, want 1", f)
	}
}

func TestSwapChainEmpty(t *testing.T) {
	if _, err := SwapChain(nil); err == nil {
		t.Fatal("expected error for empty chain")
	}
}

func TestSwapChainCloseToProductTransmissivity(t *testing.T) {
	// The experiment harness approximates a swapped chain by a single
	// damped pair with the product transmissivity. Verify the
	// approximation is tight for the high transmissivities the paper's
	// threshold admits (every link eta >= 0.7).
	cases := [][]float64{{0.9, 0.9}, {0.8, 0.95}, {0.7, 0.7}, {0.95, 0.9, 0.85}}
	for _, etas := range cases {
		state, err := SwapChain(etas)
		if err != nil {
			t.Fatal(err)
		}
		exact := BellFidelity(state)
		prod := 1.0
		for _, e := range etas {
			prod *= e
		}
		approx := AnalyticBellFidelity(prod)
		if math.Abs(exact-approx) > 0.02 {
			t.Errorf("chain %v: swap fidelity %g vs product approx %g differ by more than 0.02", etas, exact, approx)
		}
	}
}

func TestPauliMatricesInvolutory(t *testing.T) {
	for name, p := range map[string]*Matrix{"X": PauliX(), "Y": PauliY(), "Z": PauliZ()} {
		if p.Mul(p).MaxAbsDiff(Identity(2)) > 1e-12 {
			t.Errorf("Pauli %s squared is not identity", name)
		}
	}
}

func TestSwapRejectsWrongDims(t *testing.T) {
	if _, _, err := Swap(Identity(2), Identity(4)); err == nil {
		t.Fatal("expected dimension error")
	}
}
