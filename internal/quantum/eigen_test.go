package quantum

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEigenRejectsNonHermitian(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 1, 1) // not Hermitian: conjugate entry missing
	if _, err := EigenHermitian(m); err == nil {
		t.Fatal("expected error for non-Hermitian input")
	}
}

func TestEigenDiagonal(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 0, 3)
	m.Set(1, 1, -1)
	m.Set(2, 2, 0.5)
	e, err := EigenHermitian(m)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]float64(nil), e.Values...)
	sort.Float64s(got)
	want := []float64{-1, 0.5, 3}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Fatalf("eigenvalues %v, want %v", got, want)
		}
	}
}

func TestEigenReconstruct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5) // 2..6
		m := randomHermitian(rng, n)
		e, err := EigenHermitian(m)
		if err != nil {
			return false
		}
		return e.Reconstruct().MaxAbsDiff(m) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenVectorsUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		m := randomHermitian(rng, 4)
		e, err := EigenHermitian(m)
		if err != nil {
			t.Fatal(err)
		}
		vvd := e.Vectors.Mul(e.Vectors.Dagger())
		if vvd.MaxAbsDiff(Identity(4)) > 1e-9 {
			t.Fatalf("eigenvector matrix is not unitary, diff %g", vvd.MaxAbsDiff(Identity(4)))
		}
	}
}

func TestEigenTraceAndFrobeniusInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomHermitian(rng, 6)
	e, err := EigenHermitian(m)
	if err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	for _, v := range e.Values {
		sum += v
		sumSq += v * v
	}
	if !almostEq(sum, real(m.Trace()), 1e-9) {
		t.Errorf("eigenvalue sum %g != trace %g", sum, real(m.Trace()))
	}
	var frob float64
	for _, c := range m.Data {
		frob += real(c)*real(c) + imag(c)*imag(c)
	}
	if !almostEq(sumSq, frob, 1e-8) {
		t.Errorf("eigenvalue square sum %g != Frobenius norm² %g", sumSq, frob)
	}
}

func TestSqrtPSD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rho := randomDensity(rng, 2)
		s, err := SqrtPSD(rho)
		if err != nil {
			return false
		}
		// s must be Hermitian PSD with s*s = rho.
		if !s.IsHermitian(1e-9) {
			return false
		}
		return s.Mul(s).MaxAbsDiff(rho) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSqrtPSDIdentity(t *testing.T) {
	s, err := SqrtPSD(Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxAbsDiff(Identity(4)) > 1e-10 {
		t.Fatal("sqrt(I) != I")
	}
}

func TestSqrtPSDRejectsNegative(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, -1)
	m.Set(1, 1, 1)
	if _, err := SqrtPSD(m); err == nil {
		t.Fatal("expected error for negative-definite input")
	}
}

func TestEigenComplexEntries(t *testing.T) {
	// A Hermitian matrix with genuinely complex off-diagonals: Pauli Y has
	// eigenvalues ±1.
	e, err := EigenHermitian(PauliY())
	if err != nil {
		t.Fatal(err)
	}
	vals := append([]float64(nil), e.Values...)
	sort.Float64s(vals)
	if !almostEq(vals[0], -1, 1e-12) || !almostEq(vals[1], 1, 1e-12) {
		t.Fatalf("Pauli-Y eigenvalues %v, want [-1 1]", vals)
	}
	// Eigenvector check: A v = λ v for each column.
	for i := 0; i < 2; i++ {
		for r := 0; r < 2; r++ {
			var av complex128
			for c := 0; c < 2; c++ {
				av += PauliY().At(r, c) * e.Vectors.At(c, i)
			}
			want := complex(e.Values[i], 0) * e.Vectors.At(r, i)
			if cmplx.Abs(av-want) > 1e-10 {
				t.Fatalf("A v != λ v for eigenpair %d", i)
			}
		}
	}
}

func TestEigenNearDegenerate(t *testing.T) {
	// Nearly degenerate spectrum must still reconstruct.
	m := NewMatrix(3)
	m.Set(0, 0, 1)
	m.Set(1, 1, 1+1e-12)
	m.Set(2, 2, 1-1e-12)
	m.Set(0, 1, complex(1e-13, 1e-13))
	m.Set(1, 0, complex(1e-13, -1e-13))
	e, err := EigenHermitian(m)
	if err != nil {
		t.Fatal(err)
	}
	if e.Reconstruct().MaxAbsDiff(m) > 1e-10 {
		t.Fatal("near-degenerate reconstruction failed")
	}
	for _, v := range e.Values {
		if math.Abs(v-1) > 1e-9 {
			t.Fatalf("eigenvalue %g too far from 1", v)
		}
	}
}
