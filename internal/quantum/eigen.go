package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Eigen holds the spectral decomposition of a Hermitian matrix:
// A = V diag(Values) V†, with the columns of V the orthonormal
// eigenvectors.
type Eigen struct {
	Values  []float64
	Vectors *Matrix // column i is the eigenvector of Values[i]
}

// EigenHermitian computes the spectral decomposition of a Hermitian matrix
// using the cyclic complex Jacobi method. The input must be Hermitian; a
// defensive check rejects matrices whose Hermitian defect exceeds 1e-9.
func EigenHermitian(a *Matrix) (*Eigen, error) {
	if !a.IsHermitian(1e-9) {
		return nil, fmt.Errorf("quantum: EigenHermitian: matrix is not Hermitian")
	}
	n := a.N
	m := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(m)
		if off < 1e-14 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if cmplx.Abs(apq) < 1e-16 {
					continue
				}
				// Phase that makes the off-diagonal element real positive.
				phi := cmplx.Phase(apq)
				absApq := cmplx.Abs(apq)
				app := real(m.At(p, p))
				aqq := real(m.At(q, q))
				// Classic Jacobi rotation on the 2x2 Hermitian block.
				tau := (aqq - app) / (2 * absApq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Unitary J: J[p][p]=c, J[p][q]=-s*e^{i phi},
				// J[q][p]=s*e^{-i phi}, J[q][q]=c. Apply A <- J† A J and
				// V <- V J.
				eip := cmplx.Exp(complex(0, phi))
				emip := cmplx.Exp(complex(0, -phi))
				cs := complex(c, 0)
				ss := complex(s, 0)
				// Update rows/columns p and q of m.
				for k := 0; k < n; k++ {
					akp := m.At(k, p)
					akq := m.At(k, q)
					m.Set(k, p, cs*akp-ss*emip*akq)
					m.Set(k, q, ss*eip*akp+cs*akq)
				}
				for k := 0; k < n; k++ {
					apk := m.At(p, k)
					aqk := m.At(q, k)
					m.Set(p, k, cs*apk-ss*eip*aqk)
					m.Set(q, k, ss*emip*apk+cs*aqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, cs*vkp-ss*emip*vkq)
					v.Set(k, q, ss*eip*vkp+cs*vkq)
				}
			}
		}
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = real(m.At(i, i))
	}
	return &Eigen{Values: vals, Vectors: v}, nil
}

// offDiagNorm returns the Frobenius norm of the off-diagonal part.
func offDiagNorm(m *Matrix) float64 {
	var s float64
	n := m.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			a := cmplx.Abs(m.Data[i*n+j])
			s += a * a
		}
	}
	return math.Sqrt(s)
}

// Reconstruct returns V diag(Values) V†, which should equal the original
// matrix. Exposed for tests.
func (e *Eigen) Reconstruct() *Matrix {
	return e.apply(func(x float64) float64 { return x })
}

// apply returns V diag(f(Values)) V†.
func (e *Eigen) apply(f func(float64) float64) *Matrix {
	n := e.Vectors.N
	d := NewMatrix(n)
	for i := 0; i < n; i++ {
		d.Data[i*n+i] = complex(f(e.Values[i]), 0)
	}
	return e.Vectors.Mul(d).Mul(e.Vectors.Dagger())
}

// SqrtPSD returns the principal square root of a positive semi-definite
// Hermitian matrix. Small negative eigenvalues arising from floating-point
// noise are clamped to zero; eigenvalues below -tol are reported as an
// error.
func SqrtPSD(a *Matrix) (*Matrix, error) {
	const tol = 1e-8
	e, err := EigenHermitian(a)
	if err != nil {
		return nil, err
	}
	for _, v := range e.Values {
		if v < -tol {
			return nil, fmt.Errorf("quantum: SqrtPSD: matrix has negative eigenvalue %g", v)
		}
	}
	return e.apply(func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return math.Sqrt(x)
	}), nil
}
