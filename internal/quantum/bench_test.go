package quantum

import (
	"math/rand"
	"testing"
)

func BenchmarkMatrixMul4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m1 := randomMatrix(rng, 4)
	m2 := randomMatrix(rng, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m1.Mul(m2)
	}
}

func BenchmarkMatrixMul16(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m1 := randomMatrix(rng, 16)
	m2 := randomMatrix(rng, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m1.Mul(m2)
	}
}

func BenchmarkEigenHermitian4(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := randomHermitian(rng, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EigenHermitian(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigenHermitian16(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := randomHermitian(rng, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EigenHermitian(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUhlmannFidelity(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	rho := randomDensity(rng, 2)
	sigma := randomDensity(rng, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fidelity(rho, sigma); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBellFidelityFastPath(b *testing.B) {
	rho, err := DistributeBellPair(0.8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BellFidelity(rho)
	}
}

func BenchmarkAmplitudeDampingApply(b *testing.B) {
	ch, err := AmplitudeDamping(0.8)
	if err != nil {
		b.Fatal(err)
	}
	lifted := ch.OnQubit(1, 2)
	rho := PhiPlus().Density()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = lifted.Apply(rho)
	}
}

func BenchmarkEntanglementSwap(b *testing.B) {
	p1, err := DistributeBellPair(0.9)
	if err != nil {
		b.Fatal(err)
	}
	p2, err := DistributeBellPair(0.8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Swap(p1, p2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSwapChain4Hops(b *testing.B) {
	etas := []float64{0.95, 0.9, 0.85, 0.9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SwapChain(etas); err != nil {
			b.Fatal(err)
		}
	}
}
