package quantum

import (
	"fmt"
	"math"
	"time"
)

// PhaseDamping returns the single-qubit phase-damping (dephasing) channel
// with damping parameter gamma ∈ [0,1]:
//
//	K0 = [[1, 0], [0, sqrt(1-γ)]]
//	K1 = [[0, 0], [0, sqrt(γ)]]
//
// Populations are untouched; coherences scale by sqrt(1-γ).
func PhaseDamping(gamma float64) (*Channel, error) {
	const slack = 1e-9
	if gamma < -slack || gamma > 1+slack || math.IsNaN(gamma) {
		return nil, fmt.Errorf("quantum: phase damping parameter %v outside [0,1]", gamma)
	}
	if gamma < 0 {
		gamma = 0
	} else if gamma > 1 {
		gamma = 1
	}
	k0 := NewMatrix(2)
	k0.Set(0, 0, 1)
	k0.Set(1, 1, complex(math.Sqrt(1-gamma), 0))
	k1 := NewMatrix(2)
	k1.Set(1, 1, complex(math.Sqrt(gamma), 0))
	return &Channel{Name: fmt.Sprintf("phase-damping(γ=%.4f)", gamma), Kraus: []*Matrix{k0, k1}}, nil
}

// DephasingGamma converts a storage time and a memory coherence time T2
// into the phase-damping parameter: coherences decay as exp(-t/T2), so
// γ = 1 - exp(-2 t / T2). A zero or negative T2 means an ideal memory
// (γ = 0).
func DephasingGamma(storage, t2 time.Duration) float64 {
	if t2 <= 0 || storage <= 0 {
		return 0
	}
	r := math.Exp(-storage.Seconds() / t2.Seconds())
	return 1 - r*r
}

// StoreBellPair applies phase damping to both qubits of a two-qubit state,
// modeling a pair held in quantum memories for the given storage time — the
// wait for classical heralding that time-aware serving accounts for.
func StoreBellPair(rho *Matrix, storage, t2 time.Duration) (*Matrix, error) {
	if rho.N != 4 {
		return nil, fmt.Errorf("quantum: StoreBellPair requires a 2-qubit state, got dim %d", rho.N)
	}
	gamma := DephasingGamma(storage, t2)
	if gamma == 0 {
		return rho.Clone(), nil
	}
	pd, err := PhaseDamping(gamma)
	if err != nil {
		return nil, err
	}
	out := pd.OnQubit(0, 2).Apply(rho)
	return pd.OnQubit(1, 2).Apply(out), nil
}

// StoredBellFidelity returns the root Bell fidelity of a pair produced
// with arm transmissivities eta1, eta2 (platform-source amplitude damping)
// after both qubits dephase in memory for the given storage time. It
// evaluates the exact density-matrix pipeline; callers get the common case
// in one call.
func StoredBellFidelity(eta1, eta2 float64, storage, t2 time.Duration) (float64, error) {
	rho := PhiPlus().Density()
	ad1, err := AmplitudeDamping(eta1)
	if err != nil {
		return 0, err
	}
	ad2, err := AmplitudeDamping(eta2)
	if err != nil {
		return 0, err
	}
	rho = ad1.OnQubit(0, 2).Apply(rho)
	rho = ad2.OnQubit(1, 2).Apply(rho)
	rho, err = StoreBellPair(rho, storage, t2)
	if err != nil {
		return 0, err
	}
	return BellFidelity(rho), nil
}
