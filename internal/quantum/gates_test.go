package quantum

import (
	"math"
	"testing"
)

func TestHadamardUnitary(t *testing.T) {
	h := Hadamard()
	if !IsUnitary(h, 1e-12) {
		t.Fatal("Hadamard not unitary")
	}
	// H|0> = |+>, and H² = I.
	if h.Mul(h).MaxAbsDiff(Identity(2)) > 1e-12 {
		t.Fatal("H² != I")
	}
}

func TestRotationXUnitary(t *testing.T) {
	for _, theta := range []float64{0, 0.3, math.Pi / 2, math.Pi, -1.1} {
		r := RotationX(theta)
		if !IsUnitary(r, 1e-12) {
			t.Fatalf("Rx(%g) not unitary", theta)
		}
	}
	// Rx(0) = I; Rx(2π) = -I (spinor sign).
	if RotationX(0).MaxAbsDiff(Identity(2)) > 1e-12 {
		t.Fatal("Rx(0) != I")
	}
	if RotationX(2*math.Pi).MaxAbsDiff(Identity(2).Scale(-1)) > 1e-12 {
		t.Fatal("Rx(2π) != -I")
	}
	// Rx(π) = -iX.
	want := PauliX().Scale(complex(0, -1))
	if RotationX(math.Pi).MaxAbsDiff(want) > 1e-12 {
		t.Fatal("Rx(π) != -iX")
	}
}

func TestCNOTTruthTable(t *testing.T) {
	cx := CNOT(0, 1, 2)
	if !IsUnitary(cx, 1e-12) {
		t.Fatal("CNOT not unitary")
	}
	cases := [][2]int{{0, 0}, {1, 1}, {2, 3}, {3, 2}} // |00>->|00>, |01>->|01>, |10>->|11>, |11>->|10>
	for _, c := range cases {
		in := Basis(4, c[0])
		var out [4]complex128
		for r := 0; r < 4; r++ {
			for k := 0; k < 4; k++ {
				out[r] += cx.At(r, k) * in.Data[k]
			}
		}
		for r := 0; r < 4; r++ {
			want := complex128(0)
			if r == c[1] {
				want = 1
			}
			if out[r] != want {
				t.Fatalf("CNOT|%d> wrong: component %d = %v", c[0], r, out[r])
			}
		}
	}
}

func TestCNOTReversedControl(t *testing.T) {
	// Control on qubit 1, target qubit 0: |01> -> |11>.
	cx := CNOT(1, 0, 2)
	in := Basis(4, 1).Density() // |01>
	out := ApplyUnitary(in, cx)
	want := Basis(4, 3).Density() // |11>
	if out.MaxAbsDiff(want) > 1e-12 {
		t.Fatal("reversed CNOT wrong")
	}
}

func TestCNOTCreatesBellState(t *testing.T) {
	// CNOT(0,1)·(H⊗I)|00> = |Φ+>.
	h := Lift(Hadamard(), 0, 2)
	u := CNOT(0, 1, 2).Mul(h)
	rho := ApplyUnitary(Basis(4, 0).Density(), u)
	if f := BellFidelity(rho); math.Abs(f-1) > 1e-12 {
		t.Fatalf("Bell preparation fidelity %g", f)
	}
}

func TestCNOTPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { CNOT(0, 0, 2) },
		func() { CNOT(-1, 0, 2) },
		func() { CNOT(0, 2, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestLiftMatchesTensor(t *testing.T) {
	x := PauliX()
	if Lift(x, 0, 2).MaxAbsDiff(x.Tensor(Identity(2))) > 1e-12 {
		t.Fatal("Lift(0) wrong")
	}
	if Lift(x, 1, 2).MaxAbsDiff(Identity(2).Tensor(x)) > 1e-12 {
		t.Fatal("Lift(1) wrong")
	}
}

func TestMeasureZBellState(t *testing.T) {
	rho := PhiPlus().Density()
	for q := 0; q < 2; q++ {
		branches := MeasureZ(rho, q, 2)
		if len(branches) != 2 {
			t.Fatal("expected two branches")
		}
		total := 0.0
		for _, b := range branches {
			if math.Abs(b.Probability-0.5) > 1e-12 {
				t.Fatalf("Bell measurement branch p=%g, want 0.5", b.Probability)
			}
			total += b.Probability
			// Post-measurement state is perfectly correlated: measuring
			// the other qubit gives the same outcome with certainty.
			other := MeasureZ(b.State, 1-q, 2)
			if math.Abs(other[b.Outcome].Probability-1) > 1e-12 {
				t.Fatal("Bell correlation broken after measurement")
			}
		}
		if math.Abs(total-1) > 1e-12 {
			t.Fatalf("branch probabilities sum to %g", total)
		}
	}
}

func TestMeasureZDeterministic(t *testing.T) {
	rho := Basis(4, 2).Density() // |10>
	branches := MeasureZ(rho, 0, 2)
	if math.Abs(branches[1].Probability-1) > 1e-12 || branches[0].State != nil {
		t.Fatalf("deterministic measurement wrong: %+v", branches)
	}
}

func TestPurity(t *testing.T) {
	if p := Purity(PhiPlus().Density()); math.Abs(p-1) > 1e-12 {
		t.Fatalf("pure state purity %g", p)
	}
	if p := Purity(Identity(4).Scale(0.25)); math.Abs(p-0.25) > 1e-12 {
		t.Fatalf("maximally mixed purity %g", p)
	}
	// Damping reduces purity below 1 for entangled inputs.
	rho, _ := DistributeBellPair(0.7)
	if p := Purity(rho); p >= 1 || p <= 0.25 {
		t.Fatalf("damped purity %g out of expected range", p)
	}
}
