package quantum

import "fmt"

// PurifyScheme selects the recurrence purification variant.
type PurifyScheme int

const (
	// BBPSSW is the Bennett et al. recurrence protocol: bilateral CNOTs,
	// computational-basis measurement of the sacrificial pair, postselect
	// on coincident outcomes.
	BBPSSW PurifyScheme = iota
	// DEJMPS prepends the Deutsch et al. single-qubit rotations
	// (Rx(π/2) on Alice's qubits, Rx(-π/2) on Bob's), which converge
	// faster for non-Werner noise.
	DEJMPS
)

// String implements fmt.Stringer.
func (s PurifyScheme) String() string {
	switch s {
	case BBPSSW:
		return "BBPSSW"
	case DEJMPS:
		return "DEJMPS"
	default:
		return fmt.Sprintf("PurifyScheme(%d)", int(s))
	}
}

// PurifyResult reports one recurrence round.
type PurifyResult struct {
	// State is the surviving pair after a successful round, normalized.
	State *Matrix
	// SuccessProbability is the postselection probability.
	SuccessProbability float64
	// FidelityBefore and FidelityAfter are Bell (root) fidelities of the
	// first input pair and the output.
	FidelityBefore float64
	FidelityAfter  float64
}

// Purify runs one round of recurrence entanglement purification on two
// two-qubit pairs shared between Alice (first qubit of each pair) and Bob
// (second qubit). On success the sacrificial second pair is consumed and
// the surviving pair's fidelity (usually) improves; purification is the
// standard remedy for the fidelity decay the paper observes on long lossy
// paths.
func Purify(pair1, pair2 *Matrix, scheme PurifyScheme) (*PurifyResult, error) {
	if pair1.N != 4 || pair2.N != 4 {
		return nil, fmt.Errorf("quantum: Purify requires two 2-qubit states, got dims %d and %d", pair1.N, pair2.N)
	}
	// Register layout: A(0) B(1) A'(2) B'(3).
	full := pair1.Tensor(pair2)

	if scheme == DEJMPS {
		// Alice rotates her two qubits by Rx(π/2), Bob by Rx(-π/2).
		ra := RotationX(halfPi)
		rb := RotationX(-halfPi)
		u := Lift(ra, 0, 4).Mul(Lift(rb, 1, 4)).Mul(Lift(ra, 2, 4)).Mul(Lift(rb, 3, 4))
		full = ApplyUnitary(full, u)
	}

	// Bilateral CNOTs: surviving pair controls, sacrificial pair targets.
	u := CNOT(0, 2, 4).Mul(CNOT(1, 3, 4))
	full = ApplyUnitary(full, u)

	// Measure A' and B' in Z; keep coincident outcomes.
	var kept *Matrix
	var pSuccess float64
	for _, mA := range MeasureZ(full, 2, 4) {
		if mA.State == nil {
			continue
		}
		for _, mB := range MeasureZ(mA.State, 3, 4) {
			if mB.State == nil || mA.Outcome != mB.Outcome {
				continue
			}
			p := mA.Probability * mB.Probability
			branch := mB.State.Scale(complex(p, 0))
			if kept == nil {
				kept = branch
			} else {
				kept = kept.Add(branch)
			}
			pSuccess += p
		}
	}
	if kept == nil || pSuccess < 1e-15 {
		return nil, fmt.Errorf("quantum: Purify: postselection never succeeds for these inputs")
	}
	kept = kept.Scale(complex(1/pSuccess, 0))
	out := PartialTrace(kept, 3, 4)
	out = PartialTrace(out, 2, 3)

	return &PurifyResult{
		State:              out,
		SuccessProbability: pSuccess,
		FidelityBefore:     BellFidelity(pair1),
		FidelityAfter:      BellFidelity(out),
	}, nil
}

const halfPi = 1.5707963267948966

// PurifyLadder repeatedly purifies identical copies of pair for the given
// number of rounds (pairwise recurrence: each round consumes one fresh copy
// as the sacrificial pair). Returns the per-round results.
func PurifyLadder(pair *Matrix, rounds int, scheme PurifyScheme) ([]*PurifyResult, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("quantum: PurifyLadder requires at least one round")
	}
	current := pair
	results := make([]*PurifyResult, 0, rounds)
	for r := 0; r < rounds; r++ {
		res, err := Purify(current, pair, scheme)
		if err != nil {
			return nil, fmt.Errorf("quantum: PurifyLadder round %d: %w", r+1, err)
		}
		results = append(results, res)
		current = res.State
	}
	return results, nil
}
