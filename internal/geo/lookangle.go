package geo

import "math"

// LookAngle describes the geometry of a line-of-sight from an observer to a
// target: azimuth (clockwise from north), elevation above the local horizon,
// and the straight-line slant range.
type LookAngle struct {
	AzimuthRad   float64
	ElevationRad float64
	SlantRangeM  float64
}

// ENU returns the east, north, and up unit vectors of the local tangent
// frame at geodetic position p (on the spherical Earth).
func ENU(p LLA) (east, north, up Vec3) {
	lat, lon := p.Radians()
	sinLat, cosLat := math.Sin(lat), math.Cos(lat)
	sinLon, cosLon := math.Sin(lon), math.Cos(lon)
	east = Vec3{-sinLon, cosLon, 0}
	north = Vec3{-sinLat * cosLon, -sinLat * sinLon, cosLat}
	up = Vec3{cosLat * cosLon, cosLat * sinLon, sinLat}
	return east, north, up
}

// Frame is the precomputed observation frame of a fixed observer: its ECEF
// position and local ENU basis. Callers that evaluate many look angles from
// the same observer (one ground station against a whole constellation, or
// one satellite position against every peer at a topology instant) build
// the frame once and amortize the trigonometry that Look would otherwise
// redo per target. Frame.Look performs exactly the floating-point
// operations of the package-level Look, in the same order, so results are
// bit-identical.
type Frame struct {
	ECEF  Vec3
	East  Vec3
	North Vec3
	Up    Vec3
}

// NewFrame precomputes the observation frame at geodetic position obs.
func NewFrame(obs LLA) Frame {
	east, north, up := ENU(obs)
	return Frame{ECEF: obs.ECEF(), East: east, North: north, Up: up}
}

// Look computes the look angle from the frame's observer to a target at
// ECEF position target.
func (f Frame) Look(target Vec3) LookAngle {
	d := target.Sub(f.ECEF)
	e := d.Dot(f.East)
	n := d.Dot(f.North)
	u := d.Dot(f.Up)
	rng := d.Norm()
	la := LookAngle{SlantRangeM: rng}
	if rng == 0 {
		return la
	}
	la.ElevationRad = math.Asin(clamp(u/rng, -1, 1))
	la.AzimuthRad = math.Atan2(e, n)
	if la.AzimuthRad < 0 {
		la.AzimuthRad += 2 * math.Pi
	}
	return la
}

// AboveHorizon reports whether the target sits at or above the observer's
// local horizon (elevation >= 0), using only a subtraction and a dot
// product. It is the cheap prefilter for Look: a target below the horizon
// can never meet a non-negative elevation mask.
func (f Frame) AboveHorizon(target Vec3) bool {
	return target.Sub(f.ECEF).Dot(f.Up) >= 0
}

// Look computes the look angle from an observer at geodetic position obs to
// a target at ECEF position target.
func Look(obs LLA, target Vec3) LookAngle {
	return NewFrame(obs).Look(target)
}

// ElevationBetween computes the elevation of the line-of-sight between two
// ECEF positions as seen from the lower endpoint. For two spaceborne nodes
// (e.g. an inter-satellite link) this is the grazing elevation relative to
// the lower node's local horizon; callers typically use it to decide whether
// a path dips into the atmosphere.
func ElevationBetween(a, b Vec3) float64 {
	lo, hi := a, b
	if lo.Norm() > hi.Norm() {
		lo, hi = hi, lo
	}
	return Look(ToLLA(lo), hi).ElevationRad
}

// LineOfSight reports whether the straight segment between two ECEF
// positions clears the Earth's surface (plus an optional clearance margin in
// meters above the surface).
func LineOfSight(a, b Vec3, clearanceM float64) bool {
	r := EarthRadiusM + clearanceM
	// Minimum distance from Earth's center to the segment a-b.
	ab := b.Sub(a)
	t := -a.Dot(ab) / ab.Dot(ab)
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	closest := a.Add(ab.Scale(t))
	return closest.Norm() >= r
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Deg converts radians to degrees.
func Deg(rad float64) float64 { return rad * 180 / math.Pi }

// Rad converts degrees to radians.
func Rad(deg float64) float64 { return deg * math.Pi / 180 }
