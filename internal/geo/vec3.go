// Package geo provides the geodetic substrate for the QNTN simulator:
// Earth-fixed coordinates, latitude/longitude/altitude conversions, local
// tangent (ENU) frames, and look-angle computations (azimuth, elevation,
// slant range) between ground stations, high-altitude platforms, and
// satellites.
//
// The package uses a spherical Earth of radius EarthRadiusM, consistent with
// the paper's orbital configuration (semi-major axis 6871 km for a 500 km
// altitude, i.e. an Earth radius of 6371 km).
package geo

import "math"

// EarthRadiusM is the mean spherical Earth radius in meters. The paper's
// Table II uses a semi-major axis of 6871 km for 500 km altitude orbits,
// implying this radius.
const EarthRadiusM = 6371e3

// Vec3 is a three-dimensional Cartesian vector in meters. It is used for
// Earth-centered Earth-fixed (ECEF) and Earth-centered inertial (ECI)
// positions as well as local east-north-up offsets.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s * v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product v · w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Unit returns v normalized to length 1. The zero vector is returned
// unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Distance returns the Euclidean distance between v and w in meters.
func (v Vec3) Distance(w Vec3) float64 { return v.Sub(w).Norm() }
