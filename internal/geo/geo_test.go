package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestECEFRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := LLA{
			LatDeg: rng.Float64()*170 - 85,
			LonDeg: rng.Float64()*360 - 180,
			AltM:   rng.Float64() * 1e6,
		}
		back := ToLLA(p.ECEF())
		return math.Abs(back.LatDeg-p.LatDeg) < 1e-9 &&
			math.Abs(back.LonDeg-p.LonDeg) < 1e-9 &&
			math.Abs(back.AltM-p.AltM) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestECEFKnownPoints(t *testing.T) {
	// Equator/prime meridian at sea level is (R, 0, 0).
	p := LLA{0, 0, 0}.ECEF()
	if math.Abs(p.X-EarthRadiusM) > 1e-6 || math.Abs(p.Y) > 1e-6 || math.Abs(p.Z) > 1e-6 {
		t.Fatalf("equator ECEF %v", p)
	}
	// North pole.
	np := LLA{90, 0, 0}.ECEF()
	if math.Abs(np.Z-EarthRadiusM) > 1e-6 || math.Abs(np.X) > 1e-3 {
		t.Fatalf("north pole ECEF %v", np)
	}
}

func TestVec3Algebra(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-4, 5, 0.5}
	if got := a.Add(b).Sub(b); got.Distance(a) > 1e-12 {
		t.Fatal("add/sub not inverse")
	}
	if got := a.Cross(b).Dot(a); math.Abs(got) > 1e-10 {
		t.Fatal("cross product not orthogonal to a")
	}
	if got := a.Cross(b).Dot(b); math.Abs(got) > 1e-10 {
		t.Fatal("cross product not orthogonal to b")
	}
	if got := a.Scale(2).Norm(); math.Abs(got-2*a.Norm()) > 1e-12 {
		t.Fatal("scale does not scale norm")
	}
	if u := a.Unit(); math.Abs(u.Norm()-1) > 1e-12 {
		t.Fatal("unit vector not unit length")
	}
	if z := (Vec3{}).Unit(); z != (Vec3{}) {
		t.Fatal("unit of zero vector changed")
	}
}

func TestGreatCircleKnown(t *testing.T) {
	// Quarter circumference between equator and pole.
	d := GreatCircleM(LLA{0, 0, 0}, LLA{90, 0, 0})
	want := math.Pi / 2 * EarthRadiusM
	if math.Abs(d-want) > 1 {
		t.Fatalf("quarter circle %g, want %g", d, want)
	}
	// Symmetric and zero on identical points.
	a := LLA{36.17, -85.5, 0}
	b := LLA{35.04, -85.28, 0}
	if GreatCircleM(a, a) != 0 {
		t.Fatal("distance to self nonzero")
	}
	if math.Abs(GreatCircleM(a, b)-GreatCircleM(b, a)) > 1e-9 {
		t.Fatal("great circle not symmetric")
	}
}

func TestTennesseeCityDistances(t *testing.T) {
	// Sanity anchor for the QNTN layout: Cookeville (TTU) to Chattanooga
	// (EPB) is roughly 130 km; TTU to Oak Ridge roughly 110 km.
	ttu := LLA{36.1757, -85.5066, 0}
	epb := LLA{35.04159, -85.2799, 0}
	ornl := LLA{35.91, -84.3, 0}
	if d := GreatCircleM(ttu, epb) / 1000; d < 100 || d > 160 {
		t.Errorf("TTU-EPB distance %g km outside plausible range", d)
	}
	if d := GreatCircleM(ttu, ornl) / 1000; d < 80 || d > 140 {
		t.Errorf("TTU-ORNL distance %g km outside plausible range", d)
	}
}

func TestLookZenith(t *testing.T) {
	obs := LLA{36, -85, 0}
	// Target straight up 500 km.
	target := LLA{36, -85, 500e3}.ECEF()
	la := Look(obs, target)
	if math.Abs(la.ElevationRad-math.Pi/2) > 1e-9 {
		t.Fatalf("zenith elevation %g", Deg(la.ElevationRad))
	}
	if math.Abs(la.SlantRangeM-500e3) > 1e-3 {
		t.Fatalf("zenith range %g", la.SlantRangeM)
	}
}

func TestLookHorizonAndAzimuth(t *testing.T) {
	obs := LLA{0, 0, 0}
	// A point slightly north at same radius: elevation should be negative
	// (below horizon due to curvature), azimuth ~0 (north).
	north := LLA{1, 0, 0}.ECEF()
	la := Look(obs, north)
	if la.ElevationRad >= 0 {
		t.Fatalf("surface point should be below horizon, got elevation %g°", Deg(la.ElevationRad))
	}
	if math.Abs(la.AzimuthRad) > 1e-6 && math.Abs(la.AzimuthRad-2*math.Pi) > 1e-6 {
		t.Fatalf("azimuth to north %g°", Deg(la.AzimuthRad))
	}
	east := LLA{0, 1, 0}.ECEF()
	le := Look(obs, east)
	if math.Abs(le.AzimuthRad-math.Pi/2) > 1e-6 {
		t.Fatalf("azimuth to east %g°", Deg(le.AzimuthRad))
	}
}

func TestLookElevationDecreasesWithGroundDistance(t *testing.T) {
	obs := LLA{36, -85, 0}
	alt := 500e3
	prev := math.Inf(1)
	for _, dlat := range []float64{0, 1, 2, 4, 8} {
		sat := LLA{36 + dlat, -85, alt}.ECEF()
		el := Look(obs, sat).ElevationRad
		if el >= prev {
			t.Fatalf("elevation did not decrease at dlat=%g", dlat)
		}
		prev = el
	}
}

func TestENUOrthonormal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := LLA{rng.Float64()*170 - 85, rng.Float64()*360 - 180, 0}
		e, n, u := ENU(p)
		ok := math.Abs(e.Norm()-1) < 1e-12 &&
			math.Abs(n.Norm()-1) < 1e-12 &&
			math.Abs(u.Norm()-1) < 1e-12 &&
			math.Abs(e.Dot(n)) < 1e-12 &&
			math.Abs(e.Dot(u)) < 1e-12 &&
			math.Abs(n.Dot(u)) < 1e-12
		// Right-handed: e × n = u.
		return ok && e.Cross(n).Distance(u) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLineOfSight(t *testing.T) {
	a := LLA{36, -85, 500e3}.ECEF()
	b := LLA{36, -84, 500e3}.ECEF()
	if !LineOfSight(a, b, 0) {
		t.Fatal("nearby satellites should see each other")
	}
	// Antipodal satellites are blocked by the Earth.
	c := LLA{-36, 95, 500e3}.ECEF()
	if LineOfSight(a, c, 0) {
		t.Fatal("antipodal satellites should be blocked")
	}
	// Two ground points: blocked with any positive clearance.
	g1 := LLA{36, -85, 10}.ECEF()
	g2 := LLA{35, -85, 10}.ECEF()
	if LineOfSight(g1, g2, 100) {
		t.Fatal("long ground-to-ground path should be blocked by curvature")
	}
}

func TestElevationBetweenSymmetricChoice(t *testing.T) {
	ground := LLA{36, -85, 0}.ECEF()
	sat := LLA{37, -85, 500e3}.ECEF()
	e1 := ElevationBetween(ground, sat)
	e2 := ElevationBetween(sat, ground)
	if math.Abs(e1-e2) > 1e-12 {
		t.Fatal("ElevationBetween should not depend on argument order")
	}
	if e1 <= 0 || e1 >= math.Pi/2 {
		t.Fatalf("implausible elevation %g°", Deg(e1))
	}
}

func TestDegRadRoundTrip(t *testing.T) {
	for _, d := range []float64{-180, -20, 0, 53, 90, 360} {
		if got := Deg(Rad(d)); math.Abs(got-d) > 1e-12 {
			t.Errorf("Deg(Rad(%g)) = %g", d, got)
		}
	}
}
