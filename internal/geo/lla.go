package geo

import (
	"fmt"
	"math"
)

// LLA is a geodetic position: latitude and longitude in degrees and altitude
// above the spherical Earth surface in meters.
type LLA struct {
	LatDeg float64
	LonDeg float64
	AltM   float64
}

// String implements fmt.Stringer.
func (p LLA) String() string {
	return fmt.Sprintf("(%.5f°, %.5f°, %.0f m)", p.LatDeg, p.LonDeg, p.AltM)
}

// Radians returns the latitude and longitude of p in radians.
func (p LLA) Radians() (lat, lon float64) {
	return p.LatDeg * math.Pi / 180, p.LonDeg * math.Pi / 180
}

// ECEF converts p to Earth-centered Earth-fixed Cartesian coordinates on the
// spherical Earth.
func (p LLA) ECEF() Vec3 {
	lat, lon := p.Radians()
	r := EarthRadiusM + p.AltM
	clat := math.Cos(lat)
	return Vec3{
		X: r * clat * math.Cos(lon),
		Y: r * clat * math.Sin(lon),
		Z: r * math.Sin(lat),
	}
}

// ToLLA converts an ECEF position to geodetic coordinates on the spherical
// Earth.
func ToLLA(v Vec3) LLA {
	r := v.Norm()
	if r == 0 {
		return LLA{}
	}
	lat := math.Asin(v.Z / r)
	lon := math.Atan2(v.Y, v.X)
	return LLA{
		LatDeg: lat * 180 / math.Pi,
		LonDeg: lon * 180 / math.Pi,
		AltM:   r - EarthRadiusM,
	}
}

// GreatCircleM returns the great-circle (surface) distance between two
// geodetic positions in meters, ignoring altitude, using the haversine
// formula.
func GreatCircleM(a, b LLA) float64 {
	lat1, lon1 := a.Radians()
	lat2, lon2 := b.Radians()
	dlat := lat2 - lat1
	dlon := lon2 - lon1
	s := math.Sin(dlat/2)*math.Sin(dlat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dlon/2)*math.Sin(dlon/2)
	return 2 * EarthRadiusM * math.Asin(math.Min(1, math.Sqrt(s)))
}
