// Package atmosphere models the optical properties of the atmosphere needed
// by the FSO channel: slant-path extinction through an exponential
// atmosphere (Beer-Lambert), and optical turbulence via the Hufnagel-Valley
// Cn² profile with the resulting Rytov variance and beam-spread statistics.
//
// The paper follows Ghalaii & Pirandola ("Quantum communications in a
// moderate-to-strong turbulent space") in decomposing FSO transmissivity as
// η = η_turb · η_atm · η_eff; this package supplies η_atm and the
// turbulence statistics behind η_turb.
package atmosphere

import (
	"fmt"
	"math"
	"sync"
)

// DefaultScaleHeightM is the exponential scale height of atmospheric
// extinction, in meters. Aerosol+molecular extinction decays with altitude
// roughly on this scale.
const DefaultScaleHeightM = 6600.0

// Extinction describes Beer-Lambert attenuation through an exponentially
// stratified atmosphere.
type Extinction struct {
	// ZenithOpticalDepth is the total optical depth looking straight up
	// from sea level (dimensionless). Transmission at zenith from the
	// ground to space is exp(-ZenithOpticalDepth).
	ZenithOpticalDepth float64
	// ScaleHeightM is the exponential decay height of the extinction
	// coefficient. Zero selects DefaultScaleHeightM.
	ScaleHeightM float64
}

// Validate reports whether the parameters are physical.
func (e Extinction) Validate() error {
	if e.ZenithOpticalDepth < 0 {
		return fmt.Errorf("atmosphere: negative zenith optical depth %g", e.ZenithOpticalDepth)
	}
	if e.ScaleHeightM < 0 {
		return fmt.Errorf("atmosphere: negative scale height %g", e.ScaleHeightM)
	}
	return nil
}

func (e Extinction) scaleHeight() float64 {
	if e.ScaleHeightM == 0 {
		return DefaultScaleHeightM
	}
	return e.ScaleHeightM
}

// ColumnFraction returns the fraction of the total vertical extinction
// column lying between altitudes loM and hiM (loM <= hiM). A path entirely
// above the atmosphere (both endpoints high) traverses almost none of the
// column; a ground-to-space path traverses almost all of it.
func (e Extinction) ColumnFraction(loM, hiM float64) float64 {
	if hiM < loM {
		loM, hiM = hiM, loM
	}
	h := e.scaleHeight()
	lo := math.Exp(-math.Max(0, loM) / h)
	hi := math.Exp(-math.Max(0, hiM) / h)
	return lo - hi
}

// SlantOpticalDepth returns the optical depth along a straight path between
// altitudes loM and hiM at the given elevation angle (measured at the lower
// endpoint). The flat-atmosphere secant approximation is used, capped at an
// airmass of 38 (the horizontal limit for a curved atmosphere) to stay
// finite at grazing elevations.
func (e Extinction) SlantOpticalDepth(loM, hiM, elevationRad float64) float64 {
	const maxAirmass = 38.0
	frac := e.ColumnFraction(loM, hiM)
	if frac <= 0 {
		return 0
	}
	s := math.Sin(elevationRad)
	airmass := maxAirmass
	if s > 1.0/maxAirmass {
		airmass = 1 / s
	}
	return e.ZenithOpticalDepth * frac * airmass
}

// Transmission returns exp(-SlantOpticalDepth) for the given geometry — the
// η_atm factor of the FSO channel.
func (e Extinction) Transmission(loM, hiM, elevationRad float64) float64 {
	return math.Exp(-e.SlantOpticalDepth(loM, hiM, elevationRad))
}

// HufnagelValley is the standard HV model of the refractive-index structure
// parameter Cn²(h).
type HufnagelValley struct {
	// WindSpeedMS is the pseudo-wind (rms high-altitude wind speed), m/s.
	// The classic HV5/7 model uses 21 m/s.
	WindSpeedMS float64
	// GroundCn2 is Cn² at ground level in m^(-2/3). HV5/7 uses 1.7e-14.
	GroundCn2 float64
	// Scale multiplies the whole profile; zero means 1. Values above 1
	// model stronger-than-nominal turbulence (the ablation knob for the
	// paper's weather-sensitivity discussion).
	Scale float64
}

// Scaled returns a copy of the profile with the overall Scale multiplied
// by f.
func (p HufnagelValley) Scaled(f float64) HufnagelValley {
	s := p.Scale
	if s == 0 {
		s = 1
	}
	p.Scale = s * f
	return p
}

// HV57 returns the canonical Hufnagel-Valley 5/7 profile.
func HV57() HufnagelValley {
	return HufnagelValley{WindSpeedMS: 21, GroundCn2: 1.7e-14}
}

// Cn2 evaluates the profile at altitude hM meters.
func (p HufnagelValley) Cn2(hM float64) float64 {
	if hM < 0 {
		hM = 0
	}
	w := p.WindSpeedMS
	term1 := 0.00594 * math.Pow(w/27, 2) * math.Pow(hM*1e-5, 10) * math.Exp(-hM/1000)
	term2 := 2.7e-16 * math.Exp(-hM/1500)
	term3 := p.GroundCn2 * math.Exp(-hM/100)
	s := p.Scale
	if s == 0 {
		s = 1
	}
	return s * (term1 + term2 + term3)
}

// IntegrateCn2 integrates Cn² along a slant path from altitude loM to hiM at
// the given elevation angle, using Simpson's rule over altitude with the
// secant path-length factor. Returns ∫ Cn²(h(s)) ds in m^(1/3).
//
// The altitude integral is separable from the elevation factor, so it is
// memoized per (profile, loM, hiM): the network simulator evaluates the
// same two or three altitude pairs millions of times per sweep.
func (p HufnagelValley) IntegrateCn2(loM, hiM, elevationRad float64) float64 {
	if hiM < loM {
		loM, hiM = hiM, loM
	}
	if hiM == loM {
		return 0
	}
	s := math.Sin(elevationRad)
	if s < 0.02 {
		s = 0.02
	}
	v, _ := p.verticalIntegrals(loM, hiM)
	return v / s
}

// RytovVariance returns the weak-turbulence Rytov variance for a plane wave
// over a slant path from loM to hiM at the given elevation, for wavelength
// lambdaM. Values below ~1 indicate weak turbulence; values above ~1
// moderate-to-strong.
//
// σ_R² = 2.25 k^(7/6) ∫ Cn²(h) (h - h0)^(5/6) dh / sin^(11/6)(ε)
// (downlink form; a standard approximation for slant paths).
func (p HufnagelValley) RytovVariance(loM, hiM, elevationRad, lambdaM float64) float64 {
	if hiM < loM {
		loM, hiM = hiM, loM
	}
	if hiM == loM || lambdaM <= 0 {
		return 0
	}
	k := 2 * math.Pi / lambdaM
	s := math.Sin(elevationRad)
	if s < 0.02 {
		s = 0.02
	}
	_, weighted := p.verticalIntegrals(loM, hiM)
	return 2.25 * math.Pow(k, 7.0/6.0) * weighted / math.Pow(s, 11.0/6.0)
}

// vertKey memoizes vertical integrals; altitudes are quantized to 10 m,
// far finer than any effect on the result.
type vertKey struct {
	profile HufnagelValley
	lo, hi  int32
}

// vertVal carries both cached integrals.
type vertVal struct {
	plain    float64 // ∫ Cn²(h) dh
	weighted float64 // ∫ Cn²(h) (h-lo)^(5/6) dh
}

var vertCache sync.Map // vertKey -> vertVal

// verticalIntegrals returns (∫Cn² dh, ∫Cn² (h-lo)^(5/6) dh) over [loM, hiM]
// by Simpson's rule, memoized.
func (p HufnagelValley) verticalIntegrals(loM, hiM float64) (plain, weighted float64) {
	key := vertKey{profile: p, lo: int32(math.Round(loM / 10)), hi: int32(math.Round(hiM / 10))}
	if v, ok := vertCache.Load(key); ok {
		val := v.(vertVal)
		return val.plain, val.weighted
	}
	const steps = 400 // even
	dh := (hiM - loM) / steps
	var sumPlain, sumWeighted float64
	for i := 0; i <= steps; i++ {
		w := 2.0
		switch {
		case i == 0 || i == steps:
			w = 1.0
		case i%2 == 1:
			w = 4.0
		}
		h := loM + float64(i)*dh
		c := p.Cn2(h)
		sumPlain += w * c
		sumWeighted += w * c * math.Pow(h-loM, 5.0/6.0)
	}
	val := vertVal{plain: sumPlain * dh / 3, weighted: sumWeighted * dh / 3}
	vertCache.Store(key, val)
	return val.plain, val.weighted
}
