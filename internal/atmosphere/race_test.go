package atmosphere

import (
	"sync"
	"testing"
)

// TestVerticalIntegralsConcurrent is a regression test for the vertCache
// sync.Map: many goroutines hammer the memoized vertical integrals with a
// mix of shared keys (cache-hit contention) and per-goroutine keys
// (concurrent first-fill Stores), and every goroutine must observe the same
// values as a sequential run. Run under -race this pins the cache's
// thread-safety; the worst acceptable behavior is redundant computation,
// never a torn or stale value.
func TestVerticalIntegralsConcurrent(t *testing.T) {
	p := HV57()
	const (
		goroutines = 16
		iters      = 200
	)

	// Sequential reference values, computed before any concurrent access.
	type keyVal struct{ lo, hi float64 }
	keys := make([]keyVal, 0, goroutines+1)
	keys = append(keys, keyVal{0, 20_000}) // shared hot key
	for g := 0; g < goroutines; g++ {
		keys = append(keys, keyVal{float64(100 * g), 20_000 + float64(500*g)})
	}
	wantPlain := make([]float64, len(keys))
	wantWeighted := make([]float64, len(keys))
	for i, k := range keys {
		wantPlain[i], wantWeighted[i] = p.verticalIntegrals(k.lo, k.hi)
	}

	// Cold keys: never computed before the goroutines start, so all
	// goroutines race to fill them (concurrent Store on the same key). Each
	// goroutine records what it saw; afterwards every goroutine must agree.
	const coldKeys = 32
	cold := make([][]float64, goroutines)

	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				idx := i % len(keys)
				plain, weighted := p.verticalIntegrals(keys[idx].lo, keys[idx].hi)
				if plain != wantPlain[idx] || weighted != wantWeighted[idx] {
					errs <- "concurrent verticalIntegrals diverged from sequential value"
					return
				}
			}
			for i := 0; i < coldKeys; i++ {
				plain, weighted := p.verticalIntegrals(50, 30_000+float64(10*i))
				cold[g] = append(cold[g], plain, weighted)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	for g := 1; g < goroutines; g++ {
		if len(cold[g]) != len(cold[0]) {
			t.Fatalf("goroutine %d recorded %d cold values, want %d", g, len(cold[g]), len(cold[0]))
		}
		for i := range cold[g] {
			if cold[g][i] != cold[0][i] {
				t.Fatalf("goroutine %d cold value %d = %g, goroutine 0 saw %g",
					g, i, cold[g][i], cold[0][i])
			}
		}
	}
}

// TestRytovVarianceConcurrent drives the public entry point concurrently:
// RytovVariance shares vertCache with IntegrateCn2 and is what the channel
// package calls from parallel experiment sweeps.
func TestRytovVarianceConcurrent(t *testing.T) {
	p := HV57()
	want := p.RytovVariance(0, 500_000, 0.5, 1550e-9)
	wantCn2 := p.IntegrateCn2(0, 500_000, 0.5)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if got := p.RytovVariance(0, 500_000, 0.5, 1550e-9); got != want {
					t.Errorf("RytovVariance = %g, want %g", got, want)
					return
				}
				if got := p.IntegrateCn2(0, 500_000, 0.5); got != wantCn2 {
					t.Errorf("IntegrateCn2 = %g, want %g", got, wantCn2)
					return
				}
			}
		}()
	}
	wg.Wait()
}
