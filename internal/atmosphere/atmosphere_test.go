package atmosphere

import (
	"math"
	"testing"
	"testing/quick"
)

func TestColumnFraction(t *testing.T) {
	e := Extinction{ZenithOpticalDepth: 0.1}
	// Ground to space traverses essentially the whole column.
	if f := e.ColumnFraction(0, 500e3); f < 0.999 {
		t.Fatalf("ground-to-space fraction %g", f)
	}
	// A path entirely above 100 km sees essentially nothing.
	if f := e.ColumnFraction(100e3, 500e3); f > 1e-4 {
		t.Fatalf("exoatmospheric fraction %g", f)
	}
	// Ground to 30 km (HAP) still captures most of the column.
	if f := e.ColumnFraction(0, 30e3); f < 0.98 {
		t.Fatalf("ground-to-HAP fraction %g", f)
	}
	// Swapped arguments are handled.
	if e.ColumnFraction(30e3, 0) != e.ColumnFraction(0, 30e3) {
		t.Fatal("ColumnFraction not symmetric in argument order")
	}
}

func TestSlantOpticalDepthElevationScaling(t *testing.T) {
	e := Extinction{ZenithOpticalDepth: 0.1}
	zenith := e.SlantOpticalDepth(0, 500e3, math.Pi/2)
	if math.Abs(zenith-0.1) > 1e-3 {
		t.Fatalf("zenith depth %g, want ≈0.1", zenith)
	}
	at30 := e.SlantOpticalDepth(0, 500e3, math.Pi/6)
	if math.Abs(at30-2*zenith) > 1e-3 {
		t.Fatalf("30° depth %g, want ≈2x zenith", at30)
	}
	// Monotone decreasing with elevation.
	prev := math.Inf(1)
	for deg := 1.0; deg <= 90; deg++ {
		d := e.SlantOpticalDepth(0, 500e3, deg*math.Pi/180)
		if d > prev {
			t.Fatalf("optical depth not monotone at %g°", deg)
		}
		prev = d
	}
	// Grazing elevations stay finite (airmass cap).
	if d := e.SlantOpticalDepth(0, 500e3, 0); math.IsInf(d, 0) || d > 0.1*39 {
		t.Fatalf("horizontal depth %g", d)
	}
}

func TestTransmissionBounds(t *testing.T) {
	f := func(tau, lo, hi, elev float64) bool {
		e := Extinction{ZenithOpticalDepth: math.Abs(tau)}
		tr := e.Transmission(math.Abs(lo), math.Abs(hi), math.Mod(math.Abs(elev), math.Pi/2))
		return tr > 0 && tr <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTransmissionNoAtmosphere(t *testing.T) {
	e := Extinction{ZenithOpticalDepth: 0}
	if tr := e.Transmission(0, 500e3, 0.1); tr != 1 {
		t.Fatalf("zero optical depth should give unit transmission, got %g", tr)
	}
}

func TestValidate(t *testing.T) {
	if err := (Extinction{ZenithOpticalDepth: -1}).Validate(); err == nil {
		t.Error("negative depth accepted")
	}
	if err := (Extinction{ScaleHeightM: -1}).Validate(); err == nil {
		t.Error("negative scale height accepted")
	}
	if err := (Extinction{ZenithOpticalDepth: 0.05}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestHV57Profile(t *testing.T) {
	p := HV57()
	// Ground value dominated by the surface term.
	if c := p.Cn2(0); math.Abs(c-(1.7e-14+2.7e-16)) > 1e-16 {
		t.Fatalf("ground Cn² %g", c)
	}
	// Decreases from ground into the boundary layer.
	if p.Cn2(1000) >= p.Cn2(0) {
		t.Fatal("Cn² should fall with altitude near the ground")
	}
	// The tropopause bump from the wind term exists: Cn² at 10 km exceeds
	// Cn² at 30 km.
	if p.Cn2(10e3) <= p.Cn2(30e3) {
		t.Fatal("expected upper-atmosphere bump around 10 km")
	}
	// Negligible above 30 km.
	if p.Cn2(40e3) > 1e-19 {
		t.Fatalf("Cn² at 40 km %g should be negligible", p.Cn2(40e3))
	}
	// Negative altitude clamps.
	if p.Cn2(-10) != p.Cn2(0) {
		t.Fatal("negative altitude should clamp to ground")
	}
}

func TestIntegrateCn2(t *testing.T) {
	p := HV57()
	vertical := p.IntegrateCn2(0, 30e3, math.Pi/2)
	if vertical <= 0 {
		t.Fatal("vertical integral should be positive")
	}
	slant := p.IntegrateCn2(0, 30e3, math.Pi/6)
	if math.Abs(slant-2*vertical) > 1e-3*vertical {
		t.Fatalf("30° integral %g, want 2x vertical %g", slant, vertical)
	}
	if p.IntegrateCn2(10e3, 10e3, 1) != 0 {
		t.Fatal("degenerate path should integrate to zero")
	}
	if p.IntegrateCn2(30e3, 0, 1) != p.IntegrateCn2(0, 30e3, 1) {
		t.Fatal("integral should not depend on altitude order")
	}
}

func TestRytovVariance(t *testing.T) {
	p := HV57()
	lambda := 800e-9
	// Zenith downlink Rytov variance for HV5/7 at 800 nm is well under 1
	// (weak turbulence) — standard result.
	zenith := p.RytovVariance(0, 500e3, math.Pi/2, lambda)
	if zenith <= 0 || zenith > 1 {
		t.Fatalf("zenith Rytov variance %g, want weak (0,1]", zenith)
	}
	// Grows as elevation falls.
	low := p.RytovVariance(0, 500e3, math.Pi/9, lambda)
	if low <= zenith {
		t.Fatal("Rytov variance should grow at low elevation")
	}
	// Degenerate inputs.
	if p.RytovVariance(0, 0, 1, lambda) != 0 {
		t.Fatal("zero path should have zero variance")
	}
	if p.RytovVariance(0, 10e3, 1, 0) != 0 {
		t.Fatal("zero wavelength should return 0")
	}
}
