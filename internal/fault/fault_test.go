package fault

import (
	"math"
	"reflect"
	"testing"
	"time"

	"qntn/internal/geo"
	"qntn/internal/netsim"
)

// testNodes builds a small mixed fleet: two ground hosts in one LAN, one
// satellite-kind and one HAP-kind node (positions are irrelevant to the
// schedule, which only looks at IDs and kinds).
func testNodes(t *testing.T) []netsim.Node {
	t.Helper()
	g1 := netsim.NewGroundHost("G-1", "LAN", geo.LLA{LatDeg: 36, LonDeg: -85})
	g2 := netsim.NewGroundHost("G-2", "LAN", geo.LLA{LatDeg: 36.01, LonDeg: -85})
	hap := netsim.NewHAPNode("HAP-1", geo.LLA{LatDeg: 35.7, LonDeg: -85.1, AltM: 30e3})
	return []netsim.Node{g1, g2, hap}
}

func TestConfigEnabled(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want bool
	}{
		{"zero", Config{}, false},
		{"seed-only", Config{Seed: 7}, false},
		{"sat", Config{SatMTBF: time.Hour, SatMTTR: time.Minute}, true},
		{"hap", Config{HAPMTBF: time.Hour, HAPMTTR: time.Minute}, true},
		{"ground", Config{GroundMTBF: time.Hour, GroundMTTR: time.Minute}, true},
		{"weather", Config{WeatherP: 0.1}, true},
	}
	for _, tc := range cases {
		if got := tc.cfg.Enabled(); got != tc.want {
			t.Errorf("%s: Enabled() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SatMTBF: time.Hour},                        // MTBF without MTTR
		{SatMTTR: time.Minute},                      // MTTR without MTBF
		{HAPMTBF: -time.Hour, HAPMTTR: time.Minute}, // negative
		{GroundMTBF: time.Hour},                     // pair incomplete
		{WeatherP: 1},                               // fraction must stay below 1
		{WeatherP: -0.1},                            //
		{WeatherP: 0.1, WeatherAttenuation: 1.5},    // attenuation above 1
		{WeatherP: 0.1, WeatherMeanDuration: -1},    // negative mean
		{Horizon: -time.Hour},                       // negative horizon
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid config %+v", i, cfg)
		}
	}
	good := []Config{
		{},
		{Seed: -3},
		{SatMTBF: 2 * time.Hour, SatMTTR: 10 * time.Minute, WeatherP: 0.3, WeatherAttenuation: 0.5},
		AtIntensity(0.4, 9),
	}
	for i, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("case %d: Validate rejected valid config: %v", i, err)
		}
	}
}

func TestAtIntensity(t *testing.T) {
	if cfg := AtIntensity(0, 5); cfg.Enabled() || cfg.Seed != 5 {
		t.Fatalf("AtIntensity(0) should disable faults and keep the seed, got %+v", cfg)
	}
	cfg := AtIntensity(0.25, 1)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// u = MTTR/(MTBF+MTTR) must recover the requested intensity.
	u := float64(cfg.SatMTTR) / float64(cfg.SatMTBF+cfg.SatMTTR)
	if math.Abs(u-0.25) > 1e-9 {
		t.Errorf("implied unavailability %g, want 0.25", u)
	}
	if cfg.SatMTBF != cfg.HAPMTBF || cfg.SatMTTR != cfg.HAPMTTR {
		t.Error("satellite and HAP environments should degrade together")
	}
	if cfg.WeatherP != 0.125 {
		t.Errorf("weather fraction %g, want u/2 = 0.125", cfg.WeatherP)
	}
	if ext := AtIntensity(2, 1); ext.Validate() != nil {
		t.Errorf("clamped extreme intensity must still validate: %+v", ext)
	}
}

// TestScheduleDeterminism: the schedule is a pure function of (Config, node
// IDs) — rebuilding it, and rebuilding it from a reordered node list, gives
// identical spans.
func TestScheduleDeterminism(t *testing.T) {
	nodes := testNodes(t)
	cfg := Config{
		HAPMTBF: 90 * time.Minute, HAPMTTR: 15 * time.Minute,
		GroundMTBF: 4 * time.Hour, GroundMTTR: 20 * time.Minute,
		WeatherP: 0.2, Seed: 42,
	}
	s1, err := NewSchedule(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSchedule(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	reversed := []netsim.Node{nodes[2], nodes[1], nodes[0]}
	s3, err := NewSchedule(cfg, reversed)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"G-1", "G-2", "HAP-1"} {
		if !reflect.DeepEqual(s1.DownSpans(id), s2.DownSpans(id)) {
			t.Errorf("%s: rebuild changed the schedule", id)
		}
		if !reflect.DeepEqual(s1.DownSpans(id), s3.DownSpans(id)) {
			t.Errorf("%s: node order changed the schedule", id)
		}
	}
	if !reflect.DeepEqual(s1.WeatherSpans(), s3.WeatherSpans()) {
		t.Error("node order changed the weather sequence")
	}
	if len(s1.DownSpans("HAP-1")) == 0 {
		t.Error("90m MTBF over 24h should produce at least one HAP outage")
	}

	// A different seed must change at least one schedule.
	cfg2 := cfg
	cfg2.Seed = 43
	s4, err := NewSchedule(cfg2, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(s1.DownSpans("HAP-1"), s4.DownSpans("HAP-1")) &&
		reflect.DeepEqual(s1.WeatherSpans(), s4.WeatherSpans()) {
		t.Error("changing the seed changed nothing")
	}
}

// TestScheduleUnavailabilityFraction: over a long horizon the observed down
// fraction concentrates near MTTR/(MTBF+MTTR), and the weather fraction
// near WeatherP.
func TestScheduleUnavailabilityFraction(t *testing.T) {
	nodes := testNodes(t)
	cfg := Config{
		HAPMTBF: 2 * time.Hour, HAPMTTR: 30 * time.Minute, // u = 0.2
		WeatherP: 0.3,
		Horizon:  240 * time.Hour, // ~96 up/down cycles
		Seed:     1,
	}
	s, err := NewSchedule(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(TotalDown(s.DownSpans("HAP-1"))) / float64(cfg.Horizon)
	if frac < 0.1 || frac > 0.35 {
		t.Errorf("observed HAP unavailability %.3f far from configured 0.2", frac)
	}
	wfrac := float64(TotalDown(s.WeatherSpans())) / float64(cfg.Horizon)
	if wfrac < 0.15 || wfrac > 0.5 {
		t.Errorf("observed weather fraction %.3f far from configured 0.3", wfrac)
	}
}

func TestScheduleQueries(t *testing.T) {
	nodes := testNodes(t)
	cfg := Config{GroundMTBF: time.Hour, GroundMTTR: 30 * time.Minute, Seed: 3}
	s, err := NewSchedule(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	spans := s.DownSpans("G-1")
	if len(spans) == 0 {
		t.Fatal("expected at least one ground outage over 24h")
	}
	sp := spans[0]
	if !s.Down("G-1", sp.Start) {
		t.Error("interval start should be down (half-open [Start, End))")
	}
	if s.Down("G-1", sp.End) {
		t.Error("interval end should be up (half-open [Start, End))")
	}
	if sp.Start > 0 && s.Down("G-1", sp.Start-1) {
		t.Error("instant before the first outage should be up")
	}
	if s.Down("G-1", s.Horizon()+time.Hour) {
		t.Error("instants past the horizon must be operational")
	}
	if s.Down("NO-SUCH-NODE", sp.Start) {
		t.Error("unknown IDs must be operational")
	}
	// Relay kinds have no enabled pair here, so they never fail.
	if got := s.DownSpans("HAP-1"); got != nil {
		t.Errorf("HAP outages generated without an enabled HAP pair: %v", got)
	}
}

// constModel is a trivial inner model: every distinct pair has a usable
// link with a fixed transmissivity.
type constModel struct{ eta float64 }

func (m constModel) Evaluate(a, b netsim.Node, t time.Duration) (float64, bool) {
	return m.eta, true
}

func TestModelEvaluate(t *testing.T) {
	nodes := testNodes(t)
	cfg := Config{HAPMTBF: time.Hour, HAPMTTR: 30 * time.Minute, WeatherP: 0.3, WeatherAttenuation: 0.5, Seed: 11}
	sched, err := NewSchedule(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(constModel{eta: 0.8}, sched, 0.3)

	hapDown := sched.DownSpans("HAP-1")
	if len(hapDown) == 0 {
		t.Fatal("expected HAP outages")
	}
	tDown := hapDown[0].Start
	if _, ok := m.Evaluate(nodes[0], nodes[2], tDown); ok {
		t.Error("link to a failed platform must vanish")
	}
	// Ground-ground links survive the platform outage.
	if eta, ok := m.Evaluate(nodes[0], nodes[1], tDown); !ok || eta != 0.8 {
		t.Errorf("ground pair during HAP outage: got (%g, %v), want (0.8, true)", eta, ok)
	}

	weather := sched.WeatherSpans()
	if len(weather) == 0 {
		t.Fatal("expected weather blackouts")
	}
	// Find a blackout instant where the HAP is up.
	var tW time.Duration = -1
	for _, sp := range weather {
		for at := sp.Start; at < sp.End; at += time.Second {
			if !sched.Down("HAP-1", at) {
				tW = at
				break
			}
		}
		if tW >= 0 {
			break
		}
	}
	if tW < 0 {
		t.Fatal("no blackout instant with the HAP up")
	}
	// Ground↔relay attenuates: 0.8 × 0.5 = 0.4 ≥ minEta 0.3 → survives.
	if eta, ok := m.Evaluate(nodes[0], nodes[2], tW); !ok || math.Abs(eta-0.4) > 1e-12 {
		t.Errorf("attenuated ground-relay link: got (%g, %v), want (0.4, true)", eta, ok)
	}
	// Fiber (ground-ground) is weather-immune.
	if eta, ok := m.Evaluate(nodes[0], nodes[1], tW); !ok || eta != 0.8 {
		t.Errorf("fiber during weather: got (%g, %v), want (0.8, true)", eta, ok)
	}
	// A higher gate severs the attenuated link.
	strict := NewModel(constModel{eta: 0.8}, sched, 0.7)
	if _, ok := strict.Evaluate(nodes[0], nodes[2], tW); ok {
		t.Error("attenuated link below the threshold must be severed")
	}
	// Zero attenuation (the default) severs outright.
	cfgSever := cfg
	cfgSever.WeatherAttenuation = 0
	schedSever, err := NewSchedule(cfgSever, nodes)
	if err != nil {
		t.Fatal(err)
	}
	sever := NewModel(constModel{eta: 0.8}, schedSever, 0)
	if _, ok := sever.Evaluate(nodes[0], nodes[2], tW); ok {
		t.Error("zero attenuation must sever ground-relay links in a blackout")
	}
}

// TestModelStepEvaluatorMatchesEvaluate: the batched path must reproduce
// the per-pair reference bit by bit, including for inner models without a
// StepModel fast path.
func TestModelStepEvaluatorMatchesEvaluate(t *testing.T) {
	nodes := testNodes(t)
	cfg := Config{
		HAPMTBF: time.Hour, HAPMTTR: 20 * time.Minute,
		GroundMTBF: 3 * time.Hour, GroundMTTR: time.Hour,
		WeatherP: 0.25, WeatherAttenuation: 0.9, Seed: 19,
	}
	sched, err := NewSchedule(cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(constModel{eta: 0.85}, sched, 0.7)
	for at := time.Duration(0); at < 24*time.Hour; at += 7 * time.Minute {
		ev := m.BeginStep(nodes, at)
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				be, bok := ev.EvaluatePair(i, j)
				re, rok := m.Evaluate(nodes[i], nodes[j], at)
				if be != re || bok != rok {
					t.Fatalf("at %v pair (%d,%d): batched (%g, %v) != reference (%g, %v)",
						at, i, j, be, bok, re, rok)
				}
			}
		}
		ev.Close()
	}
}
