// Package fault injects deterministic platform outages and weather
// blackouts into a simulated network. The paper's evaluation assumes ideal
// platforms — satellites never fail, the HAP hovers indefinitely, FSO links
// exist whenever geometry allows — yet its architecture comparison hinges
// on availability. This package makes degraded operation a first-class,
// reproducible experiment input:
//
//   - Platform outages follow an alternating-renewal process (exponential
//     up times with mean MTBF, exponential repair times with mean MTTR),
//     sampled per platform from a seed derived with runner.TaskSeed so the
//     schedule is a pure function of (Config, node IDs) — independent of
//     evaluation order, worker count, and wall-clock time.
//   - Weather blackouts are region-wide intervals during which every
//     ground↔relay FSO link is attenuated (or severed when the attenuation
//     factor is zero); fiber and space-space links are unaffected.
//
// Schedules are precomputed once into immutable sorted interval lists, so
// concurrent sweep workers query them lock-free, and the Model decorator
// preserves the batched StepModel fast path of the underlying link model.
package fault

import (
	"fmt"
	"time"
)

// DefaultHorizon is the schedule length when Config.Horizon is zero: the
// paper's one-day evaluation window. Instants past the horizon report
// everything operational.
const DefaultHorizon = 24 * time.Hour

// DefaultWeatherMean is the mean weather-blackout duration when
// Config.WeatherMeanDuration is zero (a passing storm cell, not a climate).
const DefaultWeatherMean = 30 * time.Minute

// Config describes one deterministic fault environment. The zero value
// disables every fault class.
type Config struct {
	// SatMTBF/SatMTTR are the mean time between failures and mean time to
	// repair of satellites. Both must be positive to enable satellite
	// outages; both zero disables them.
	SatMTBF time.Duration
	SatMTTR time.Duration
	// HAPMTBF/HAPMTTR model HAP station-keeping gaps (drift, gusts,
	// maintenance descents).
	HAPMTBF time.Duration
	HAPMTTR time.Duration
	// GroundMTBF/GroundMTTR model ground-station downtime.
	GroundMTBF time.Duration
	GroundMTTR time.Duration

	// WeatherP is the long-run fraction of time the region is under a
	// weather blackout, in [0,1). Zero disables weather.
	WeatherP float64
	// WeatherMeanDuration is the mean length of one blackout
	// (DefaultWeatherMean when zero).
	WeatherMeanDuration time.Duration
	// WeatherAttenuation multiplies the transmissivity of every
	// ground↔relay FSO link during a blackout, in [0,1]. Zero (the
	// default) severs those links outright; after attenuation the link is
	// re-gated against the model's transmissivity threshold.
	WeatherAttenuation float64

	// Seed selects the deterministic schedule. Schedules with equal
	// (Config, node IDs) are identical.
	Seed int64
	// Horizon is the schedule length (DefaultHorizon when zero). Queries
	// past the horizon report everything operational.
	Horizon time.Duration
}

// Enabled reports whether any fault class is active. A disabled config
// leaves the simulation byte-identical to the fault-free baseline (callers
// skip installing the decorator entirely).
func (c Config) Enabled() bool {
	return (c.SatMTBF > 0 && c.SatMTTR > 0) ||
		(c.HAPMTBF > 0 && c.HAPMTTR > 0) ||
		(c.GroundMTBF > 0 && c.GroundMTTR > 0) ||
		c.WeatherP > 0
}

// Validate reports whether the configuration is self-consistent: MTBF/MTTR
// come in pairs (both zero or both positive), the weather fraction lives in
// [0,1), and the attenuation in [0,1].
func (c Config) Validate() error {
	pairs := []struct {
		name       string
		mtbf, mttr time.Duration
	}{
		{"satellite", c.SatMTBF, c.SatMTTR},
		{"HAP", c.HAPMTBF, c.HAPMTTR},
		{"ground", c.GroundMTBF, c.GroundMTTR},
	}
	for _, p := range pairs {
		if p.mtbf < 0 || p.mttr < 0 {
			return fmt.Errorf("fault: negative %s MTBF/MTTR (%v, %v)", p.name, p.mtbf, p.mttr)
		}
		if (p.mtbf > 0) != (p.mttr > 0) {
			return fmt.Errorf("fault: %s MTBF and MTTR must both be set or both be zero (%v, %v)", p.name, p.mtbf, p.mttr)
		}
	}
	switch {
	case c.WeatherP < 0 || c.WeatherP >= 1:
		return fmt.Errorf("fault: weather fraction %g outside [0,1)", c.WeatherP)
	case c.WeatherAttenuation < 0 || c.WeatherAttenuation > 1:
		return fmt.Errorf("fault: weather attenuation %g outside [0,1]", c.WeatherAttenuation)
	case c.WeatherMeanDuration < 0:
		return fmt.Errorf("fault: negative weather mean duration %v", c.WeatherMeanDuration)
	case c.Horizon < 0:
		return fmt.Errorf("fault: negative horizon %v", c.Horizon)
	}
	return nil
}

// horizon returns the effective schedule length.
func (c Config) horizon() time.Duration {
	if c.Horizon <= 0 {
		return DefaultHorizon
	}
	return c.Horizon
}

// weatherMean returns the effective mean blackout duration.
func (c Config) weatherMean() time.Duration {
	if c.WeatherMeanDuration <= 0 {
		return DefaultWeatherMean
	}
	return c.WeatherMeanDuration
}

// AtIntensity maps a scalar fault intensity u in [0, 1) onto a canonical
// degraded environment — the x-axis of the degradation study. u is the
// long-run unavailability of every relay platform: repairs take a fixed 10
// minutes, so MTBF = MTTR·(1−u)/u, and the region additionally spends u/2
// of the time under a link-severing weather blackout. u <= 0 returns a
// disabled config (only the seed set); u is clamped to 0.95 above.
func AtIntensity(u float64, seed int64) Config {
	if u <= 0 {
		return Config{Seed: seed}
	}
	if u > 0.95 {
		u = 0.95
	}
	const mttr = 10 * time.Minute
	mtbf := time.Duration(float64(mttr) * (1 - u) / u)
	return Config{
		SatMTBF:  mtbf,
		SatMTTR:  mttr,
		HAPMTBF:  mtbf,
		HAPMTTR:  mttr,
		WeatherP: u / 2,
		Seed:     seed,
	}
}
